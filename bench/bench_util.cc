#include "bench/bench_util.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "benchmark/benchmark.h"
#include "src/util/metrics.h"

namespace dmx {
namespace bench {

TempDir::TempDir(const std::string& tag) {
  char buf[256];
  snprintf(buf, sizeof(buf), "/tmp/dmx_bench_%s_%d_XXXXXX", tag.c_str(),
           static_cast<int>(getpid()));
  char* p = mkdtemp(buf);
  path_ = p ? p : "/tmp";
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
}

void BenchCheck(const Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "BENCH SETUP FAILED (%s): %s\n", what,
            s.ToString().c_str());
    abort();
  }
}

Schema ScopedDb::BenchSchema() {
  return Schema({{"id", TypeId::kInt64, false},
                 {"category", TypeId::kString, true},
                 {"score", TypeId::kDouble, true},
                 {"payload", TypeId::kString, true}});
}

ScopedDb::ScopedDb(uint64_t rows, const std::string& sm,
                   size_t buffer_pool_pages, size_t worker_threads)
    : dir_("db") {
  DatabaseOptions options;
  options.dir = dir_.path();
  options.buffer_pool_pages = buffer_pool_pages;
  options.worker_threads = worker_threads;
  BenchCheck(Database::Open(options, &db_), "open");
  Transaction* txn = db_->Begin();
  AttrList attrs;
  if (sm == "btree") attrs.Add("key", "id");
  BenchCheck(db_->CreateRelation(txn, "bench", BenchSchema(), sm, attrs),
             "create");
  BenchCheck(db_->Commit(txn), "commit ddl");
  BenchCheck(db_->FindRelation("bench", &desc_), "find");
  if (rows > 0) Load(0, rows);
}

namespace {

// Console output as usual, but keep every per-iteration run so BenchMain
// can serialize name/iterations/ns-per-op afterwards.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      captured_.push_back(run);
    }
    ConsoleReporter::ReportRuns(runs);
  }
  const std::vector<Run>& captured() const { return captured_; }

 private:
  std::vector<Run> captured_;
};

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += '"';
}

}  // namespace

int BenchMain(int argc, char** argv, const char* suite) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::string doc = "{\"suite\":";
  AppendJsonString(&doc, suite);
  doc += ",\"benchmarks\":[";
  bool first = true;
  for (const auto& run : reporter.captured()) {
    const double iters =
        run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
    const double ns_per_op = run.real_accumulated_time * 1e9 / iters;
    if (!first) doc += ",";
    first = false;
    doc += "{\"name\":";
    AppendJsonString(&doc, run.benchmark_name());
    char buf[96];
    snprintf(buf, sizeof(buf), ",\"iterations\":%lld,\"ns_per_op\":%.1f}",
             static_cast<long long>(run.iterations), ns_per_op);
    doc += buf;
  }
  doc += "],\"metrics\":";
  doc += MetricsRegistry::Global()->ToJson();
  doc += "}\n";

  const char* dir = getenv("DMX_BENCH_JSON_DIR");
  std::string path =
      std::string(dir != nullptr ? dir : ".") + "/BENCH_" + suite + ".json";
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    benchmark::Shutdown();
    return 1;
  }
  fwrite(doc.data(), 1, doc.size(), f);
  fclose(f);
  benchmark::Shutdown();
  return 0;
}

void ScopedDb::Load(uint64_t begin, uint64_t end) {
  const std::string payload(64, 'p');
  Transaction* txn = db_->Begin();
  for (uint64_t i = begin; i < end; ++i) {
    BenchCheck(
        db_->Insert(txn, "bench",
                    {Value::Int(static_cast<int64_t>(i)),
                     Value::String("c" + std::to_string(i % 100)),
                     Value::Double(static_cast<double>(i) * 0.5),
                     Value::String(payload)}),
        "load insert");
  }
  BenchCheck(db_->Commit(txn), "commit load");
}

}  // namespace bench
}  // namespace dmx
