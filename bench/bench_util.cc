#include "bench/bench_util.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace dmx {
namespace bench {

TempDir::TempDir(const std::string& tag) {
  char buf[256];
  snprintf(buf, sizeof(buf), "/tmp/dmx_bench_%s_%d_XXXXXX", tag.c_str(),
           static_cast<int>(getpid()));
  char* p = mkdtemp(buf);
  path_ = p ? p : "/tmp";
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
}

void BenchCheck(const Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "BENCH SETUP FAILED (%s): %s\n", what,
            s.ToString().c_str());
    abort();
  }
}

Schema ScopedDb::BenchSchema() {
  return Schema({{"id", TypeId::kInt64, false},
                 {"category", TypeId::kString, true},
                 {"score", TypeId::kDouble, true},
                 {"payload", TypeId::kString, true}});
}

ScopedDb::ScopedDb(uint64_t rows, const std::string& sm,
                   size_t buffer_pool_pages)
    : dir_("db") {
  DatabaseOptions options;
  options.dir = dir_.path();
  options.buffer_pool_pages = buffer_pool_pages;
  BenchCheck(Database::Open(options, &db_), "open");
  Transaction* txn = db_->Begin();
  AttrList attrs;
  if (sm == "btree") attrs.Add("key", "id");
  BenchCheck(db_->CreateRelation(txn, "bench", BenchSchema(), sm, attrs),
             "create");
  BenchCheck(db_->Commit(txn), "commit ddl");
  BenchCheck(db_->FindRelation("bench", &desc_), "find");
  if (rows > 0) Load(0, rows);
}

void ScopedDb::Load(uint64_t begin, uint64_t end) {
  const std::string payload(64, 'p');
  Transaction* txn = db_->Begin();
  for (uint64_t i = begin; i < end; ++i) {
    BenchCheck(
        db_->Insert(txn, "bench",
                    {Value::Int(static_cast<int64_t>(i)),
                     Value::String("c" + std::to_string(i % 100)),
                     Value::Double(static_cast<double>(i) * 0.5),
                     Value::String(payload)}),
        "load insert");
  }
  BenchCheck(db_->Commit(txn), "commit load");
}

}  // namespace bench
}  // namespace dmx
