// E1 — "vectors of routine entry points ... makes the activation of the
// appropriate extension quite efficient."
//
// Compares the cost of activating an extension entry point through:
//   * the paper's mechanism: a small-integer id indexing a vector of
//     operation tables (what ExtensionRegistry does),
//   * a std::map keyed by extension name,
//   * a std::unordered_map keyed by extension name,
//   * a virtual interface call (the common OO alternative).
//
// Expected shape: vector indexing beats name lookups by a wide margin and
// matches or beats virtual dispatch.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/registry.h"

namespace dmx {
namespace {

// A trivial entry point with the same calling shape as real SmOps entries.
Status NoopInsert(SmContext&, const Slice&, std::string*) {
  return Status::OK();
}

SmOps MakeOps(const char* name) {
  // dmx-lint: allow-sm-incomplete (dispatch-cost rig: only insert fires)
  SmOps ops;
  ops.name = name;
  ops.insert = NoopInsert;
  return ops;
}

constexpr int kNumExtensions = 8;

const char* kNames[kNumExtensions] = {"heap",   "temp",   "mainmem",
                                      "btree",  "append", "foreign",
                                      "striped", "custom"};

void BM_ProcedureVector(benchmark::State& state) {
  ExtensionRegistry registry;
  for (const char* name : kNames) registry.RegisterStorageMethod(MakeOps(name));
  SmContext ctx;
  std::string key;
  SmId id = 0;
  for (auto _ : state) {
    // The descriptor-held small integer indexes the vector directly.
    const SmOps& ops = registry.sm_ops(id);
    benchmark::DoNotOptimize(ops.insert(ctx, Slice(), &key));
    id = static_cast<SmId>((id + 1) % kNumExtensions);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProcedureVector);

void BM_NameMapLookup(benchmark::State& state) {
  std::map<std::string, SmOps> table;
  for (const char* name : kNames) table[name] = MakeOps(name);
  SmContext ctx;
  std::string key;
  int i = 0;
  for (auto _ : state) {
    const SmOps& ops = table.find(kNames[i])->second;
    benchmark::DoNotOptimize(ops.insert(ctx, Slice(), &key));
    i = (i + 1) % kNumExtensions;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameMapLookup);

void BM_NameHashLookup(benchmark::State& state) {
  std::unordered_map<std::string, SmOps> table;
  for (const char* name : kNames) table[name] = MakeOps(name);
  SmContext ctx;
  std::string key;
  int i = 0;
  for (auto _ : state) {
    const SmOps& ops = table.find(kNames[i])->second;
    benchmark::DoNotOptimize(ops.insert(ctx, Slice(), &key));
    i = (i + 1) % kNumExtensions;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameHashLookup);

class VirtualSm {
 public:
  virtual ~VirtualSm() = default;
  virtual Status Insert(SmContext&, const Slice&, std::string*) = 0;
};

class NoopVirtualSm : public VirtualSm {
 public:
  Status Insert(SmContext&, const Slice&, std::string*) override {
    return Status::OK();
  }
};

void BM_VirtualDispatch(benchmark::State& state) {
  std::vector<std::unique_ptr<VirtualSm>> table;
  for (int i = 0; i < kNumExtensions; ++i) {
    table.push_back(std::make_unique<NoopVirtualSm>());
  }
  SmContext ctx;
  std::string key;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table[static_cast<size_t>(i)]->Insert(
        ctx, Slice(), &key));
    i = (i + 1) % kNumExtensions;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VirtualDispatch);

}  // namespace
}  // namespace dmx

DMX_BENCH_MAIN("dispatch")
