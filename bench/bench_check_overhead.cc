// Cost of the CHECK consistency sweep (DESIGN.md §9): what a full
// `CheckRelation` pass costs as a function of row count and of which
// components must be cross-checked against the base relation. The sweep
// is read-only and runs under a relation S lock, so this is the price of
// a background integrity scrub on a live system.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"

namespace dmx {
namespace bench {
namespace {

void RunCheck(Database* db, benchmark::State& state) {
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    CheckResult check;
    BenchCheck(db->CheckRelation(txn, "bench", &check), "check");
    BenchCheck(db->Commit(txn), "commit");
    if (!check.clean) state.SkipWithError("CHECK found damage");
    benchmark::DoNotOptimize(check.items);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

// Storage-method verify only: one pass over the heap, every record
// revalidated (and every page checksum re-checked on the way in).
void BM_CheckStorageOnly(benchmark::State& state) {
  ScopedDb sdb(static_cast<uint64_t>(state.range(0)));
  RunCheck(sdb.db(), state);
}
BENCHMARK(BM_CheckStorageOnly)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Plus a B-tree index: the verifier walks the tree structure and then
// probes it once per base record (membership both ways).
void BM_CheckWithBtree(benchmark::State& state) {
  ScopedDb sdb(static_cast<uint64_t>(state.range(0)));
  Transaction* ddl = sdb.db()->Begin();
  BenchCheck(sdb.db()->CreateAttachment(ddl, "bench", "btree_index",
                                        {{"fields", "id"}}),
             "create index");
  BenchCheck(sdb.db()->Commit(ddl), "commit ddl");
  RunCheck(sdb.db(), state);
}
BENCHMARK(BM_CheckWithBtree)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Plus a unique constraint on top of the index: its verify recomputes the
// key-count map from a second base scan and compares it to the
// in-memory state.
void BM_CheckWithBtreeAndUnique(benchmark::State& state) {
  ScopedDb sdb(static_cast<uint64_t>(state.range(0)));
  Transaction* ddl = sdb.db()->Begin();
  BenchCheck(sdb.db()->CreateAttachment(ddl, "bench", "btree_index",
                                        {{"fields", "id"}}),
             "create index");
  BenchCheck(sdb.db()->CreateAttachment(ddl, "bench", "unique",
                                        {{"fields", "id"}}),
             "create unique");
  BenchCheck(sdb.db()->Commit(ddl), "commit ddl");
  RunCheck(sdb.db(), state);
}
BENCHMARK(BM_CheckWithBtreeAndUnique)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("check_overhead")
