// E3 — "it is important to evaluate filter predicates as early as
// possible... The intention of this common service facility is to allow
// filter predicates to be evaluated while the field values from the
// relation storage or access path are still in the buffer pool."
//
// Scans 100k rows at selectivities {1, 10, 50, 90}% two ways:
//   * in-pool: the predicate is pushed into the storage-method scan and
//     evaluated against the pinned page (zero copy);
//   * copy-out: every record is copied out of the scan and the predicate
//     evaluated by the caller (what a system without the common service
//     would do).
// Expected shape: in-pool wins, and the gap grows as selectivity drops
// (fewer records ever leave the buffer pool).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace dmx {
namespace bench {
namespace {

constexpr uint64_t kRows = 100000;

ScopedDb* Fixture() {
  static ScopedDb* fixture = new ScopedDb(kRows);
  return fixture;
}

ExprPtr PredicateFor(int64_t selectivity_pct) {
  // id < kRows * pct / 100.
  return Expr::Cmp(ExprOp::kLt, 0,
                   Value::Int(static_cast<int64_t>(kRows) *
                              selectivity_pct / 100));
}

void BM_FilterInBufferPool(benchmark::State& state) {
  Database* db = Fixture()->db();
  const RelationDescriptor* desc = Fixture()->desc();
  ExprPtr pred = PredicateFor(state.range(0));
  uint64_t matched = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    ScanSpec spec;
    spec.filter = pred;  // evaluated inside the scan, against the page
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(), spec,
                              &scan),
               "scan");
    matched = 0;
    ScanItem item;
    while (scan->Next(&item).ok()) ++matched;
    scan.reset();
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["matched"] = static_cast<double>(matched);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kRows));
}
BENCHMARK(BM_FilterInBufferPool)
    ->Arg(1)->Arg(10)->Arg(50)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_FilterAfterCopyOut(benchmark::State& state) {
  Database* db = Fixture()->db();
  const RelationDescriptor* desc = Fixture()->desc();
  ExprPtr pred = PredicateFor(state.range(0));
  uint64_t matched = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(),
                              ScanSpec{}, &scan),
               "scan");
    matched = 0;
    ScanItem item;
    while (scan->Next(&item).ok()) {
      // Copy the record out of the buffer pool, then evaluate.
      std::string copy(item.view.raw().data(), item.view.raw().size());
      RecordView copied{Slice(copy), &desc->schema};
      bool passes = false;
      BenchCheck(db->evaluator()->EvalPredicate(*pred, copied, &passes),
                 "eval");
      if (passes) ++matched;
    }
    scan.reset();
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["matched"] = static_cast<double>(matched);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kRows));
}
BENCHMARK(BM_FilterAfterCopyOut)
    ->Arg(1)->Arg(10)->Arg(50)->Arg(90)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("predicate")
