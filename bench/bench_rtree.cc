// E10 — "spatial database applications can make use of an R-tree access
// path [GUTTMAN 84] to efficiently compute certain spatial predicates."
//
// 100k rectangles; OVERLAPS / ENCLOSES probes at query-window sizes from
// highly selective to non-selective, via the R-tree access path vs a full
// scan with the common predicate evaluator. Expected shape: the R-tree
// wins by orders of magnitude on selective windows and converges toward
// (or loses to) the scan as the window covers everything.

#include <benchmark/benchmark.h>

#include <random>

#include "bench/bench_util.h"
#include "src/attach/rtree_index.h"

namespace dmx {
namespace bench {
namespace {

constexpr int64_t kRects = 100000;
constexpr double kWorld = 1000.0;

Schema RectSchema() {
  return Schema({{"id", TypeId::kInt64, false},
                 {"xmin", TypeId::kDouble, false},
                 {"ymin", TypeId::kDouble, false},
                 {"xmax", TypeId::kDouble, false},
                 {"ymax", TypeId::kDouble, false}});
}

struct Fixture {
  Fixture() : dir("rtree") {
    DatabaseOptions options;
    options.dir = dir.path();
    options.buffer_pool_pages = 8192;
    BenchCheck(Database::Open(options, &db), "open");
    Transaction* txn = db->Begin();
    BenchCheck(db->CreateRelation(txn, "rects", RectSchema(), "heap", {}),
               "create");
    uint32_t inst = 0;
    BenchCheck(db->CreateAttachment(txn, "rects", "rtree_index",
                                    {{"fields", "xmin,ymin,xmax,ymax"}},
                                    &inst),
               "rtree");
    rtree_instance = inst;
    BenchCheck(db->Commit(txn), "ddl");
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> coord(0, kWorld);
    std::uniform_real_distribution<double> extent(0.1, 4.0);
    txn = db->Begin();
    for (int64_t i = 0; i < kRects; ++i) {
      double x = coord(rng), y = coord(rng);
      BenchCheck(db->Insert(txn, "rects",
                            {Value::Int(i), Value::Double(x),
                             Value::Double(y), Value::Double(x + extent(rng)),
                             Value::Double(y + extent(rng))}),
                 "load");
    }
    BenchCheck(db->Commit(txn), "load");
    BenchCheck(db->FindRelation("rects", &desc), "find");
    rtree_at = static_cast<AtId>(
        db->registry()->FindAttachmentType("rtree_index"));
  }

  TempDir dir;
  std::unique_ptr<Database> db;
  const RelationDescriptor* desc;
  uint32_t rtree_instance;
  AtId rtree_at;
};

Fixture* F() {
  static Fixture* fixture = new Fixture();
  return fixture;
}

ExprPtr WindowPredicate(ExprOp op, double size) {
  double lo = (kWorld - size) / 2, hi = lo + size;
  return Expr::Spatial(
      op, {Expr::Field(1), Expr::Field(2), Expr::Field(3), Expr::Field(4)},
      {Expr::Const(Value::Double(lo)), Expr::Const(Value::Double(lo)),
       Expr::Const(Value::Double(hi)), Expr::Const(Value::Double(hi))});
}

void BM_RTreeOverlaps(benchmark::State& state) {
  Fixture* fixture = F();
  Database* db = fixture->db.get();
  ExprPtr pred = WindowPredicate(ExprOp::kOverlaps,
                                 static_cast<double>(state.range(0)));
  uint64_t matches = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    ScanSpec spec;
    spec.filter = pred;
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(
                   txn, fixture->desc,
                   AccessPathId::Attachment(fixture->rtree_at,
                                            fixture->rtree_instance),
                   spec, &scan),
               "rtree scan");
    matches = 0;
    ScanItem item;
    while (scan->Next(&item).ok()) ++matches;
    scan.reset();
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_RTreeOverlaps)
    ->Arg(2)->Arg(10)->Arg(50)->Arg(250)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_HeapScanOverlaps(benchmark::State& state) {
  Fixture* fixture = F();
  Database* db = fixture->db.get();
  ExprPtr pred = WindowPredicate(ExprOp::kOverlaps,
                                 static_cast<double>(state.range(0)));
  uint64_t matches = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    ScanSpec spec;
    spec.filter = pred;
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, fixture->desc,
                              AccessPathId::StorageMethod(), spec, &scan),
               "scan");
    matches = 0;
    ScanItem item;
    while (scan->Next(&item).ok()) ++matches;
    scan.reset();
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_HeapScanOverlaps)
    ->Arg(2)->Arg(10)->Arg(50)->Arg(250)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

// Direct ENCLOSES probe through the access-path lookup interface — the
// exact operation the paper's costing example names.
void BM_RTreeEnclosesProbe(benchmark::State& state) {
  Fixture* fixture = F();
  Database* db = fixture->db.get();
  double point[4] = {kWorld / 2, kWorld / 2, kWorld / 2 + 0.01,
                     kWorld / 2 + 0.01};
  std::string probe = EncodeRTreeProbe(ExprOp::kEncloses, point);
  uint64_t matches = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    std::vector<std::string> keys;
    BenchCheck(db->Lookup(txn, "rects",
                          AccessPathId::Attachment(fixture->rtree_at,
                                                   fixture->rtree_instance),
                          Slice(probe), &keys),
               "probe");
    matches = keys.size();
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeEnclosesProbe)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("rtree")
