// E5 — cost-based access-path selection: "the B-tree access path will
// return a low cost if there is a predicate on the key of the B-tree, and
// the R-tree access path will recognize the ENCLOSES predicate and report
// a low cost."
//
// A relation with a B-tree (id), a hash (category), and an R-tree (bbox)
// access path. For each predicate class the bench reports which path the
// planner chose and measures the chosen path against a forced full scan.
// The reproduction holds if the chosen path is also the fastest measured.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/query/executor.h"
#include "src/query/planner.h"

namespace dmx {
namespace bench {
namespace {

constexpr int64_t kRows = 50000;

Schema SpatialSchema() {
  return Schema({{"id", TypeId::kInt64, false},
                 {"category", TypeId::kString, true},
                 {"xmin", TypeId::kDouble, false},
                 {"ymin", TypeId::kDouble, false},
                 {"xmax", TypeId::kDouble, false},
                 {"ymax", TypeId::kDouble, false}});
}

struct Fixture {
  Fixture() : dir("access") {
    DatabaseOptions options;
    options.dir = dir.path();
    options.buffer_pool_pages = 4096;
    BenchCheck(Database::Open(options, &db), "open");
    Transaction* txn = db->Begin();
    BenchCheck(db->CreateRelation(txn, "objects", SpatialSchema(), "heap",
                                  {}),
               "create");
    BenchCheck(db->Commit(txn), "ddl");
    txn = db->Begin();
    for (int64_t i = 0; i < kRows; ++i) {
      double x = static_cast<double>(i % 1000);
      double y = static_cast<double>((i / 1000) % 1000);
      BenchCheck(db->Insert(txn, "objects",
                            {Value::Int(i),
                             Value::String("c" + std::to_string(i % 50)),
                             Value::Double(x), Value::Double(y),
                             Value::Double(x + 2), Value::Double(y + 2)}),
                 "load");
    }
    BenchCheck(db->Commit(txn), "load commit");
    txn = db->Begin();
    BenchCheck(db->CreateAttachment(txn, "objects", "btree_index",
                                    {{"fields", "id"}}),
               "btree");
    BenchCheck(db->CreateAttachment(txn, "objects", "hash_index",
                                    {{"fields", "category"}}),
               "hash");
    BenchCheck(db->CreateAttachment(txn, "objects", "rtree_index",
                                    {{"fields", "xmin,ymin,xmax,ymax"}}),
               "rtree");
    BenchCheck(db->Commit(txn), "ddl2");
    BenchCheck(db->FindRelation("objects", &desc), "find");
  }

  TempDir dir;
  std::unique_ptr<Database> db;
  const RelationDescriptor* desc;
};

Fixture* F() {
  static Fixture* fixture = new Fixture();
  return fixture;
}

ExprPtr PredicateFor(int kind) {
  switch (kind) {
    case 0:  // equality on the B-tree key
      return Expr::Cmp(ExprOp::kEq, 0, Value::Int(kRows / 2));
    case 1:  // range on the B-tree key (1% of rows)
      return Expr::And(
          Expr::Cmp(ExprOp::kGe, 0, Value::Int(kRows / 2)),
          Expr::Cmp(ExprOp::kLt, 0, Value::Int(kRows / 2 + kRows / 100)));
    case 2:  // equality on the hashed column
      return Expr::Cmp(ExprOp::kEq, 1, Value::String("c7"));
    case 3:  // spatial overlap (small window)
      return Expr::Spatial(
          ExprOp::kOverlaps,
          {Expr::Field(2), Expr::Field(3), Expr::Field(4), Expr::Field(5)},
          {Expr::Const(Value::Double(500)), Expr::Const(Value::Double(20)),
           Expr::Const(Value::Double(510)), Expr::Const(Value::Double(26))});
    default:  // predicate on an unindexed expression: full scan expected
      return Expr::Cmp(ExprOp::kGt, 3, Value::Double(990.0));
  }
}

const char* KindName(int kind) {
  switch (kind) {
    case 0: return "eq_id";
    case 1: return "range_id";
    case 2: return "eq_category";
    case 3: return "spatial_overlap";
    default: return "unindexed";
  }
}

uint64_t Execute(Database* db, Transaction* txn, const BoundPlan& plan) {
  AccessSource source(db, txn, &plan);
  Row row;
  uint64_t n = 0;
  while (source.Next(&row).ok()) ++n;
  return n;
}

void BM_PlannerChosenPath(benchmark::State& state) {
  Fixture* fixture = F();
  Database* db = fixture->db.get();
  const int kind = static_cast<int>(state.range(0));
  ExprPtr pred = PredicateFor(kind);
  BoundPlan plan;
  plan.relation = *fixture->desc;
  {
    Transaction* txn = db->Begin();
    BenchCheck(PlanAccess(db, txn, fixture->desc, pred, &plan.access),
               "plan");
    BenchCheck(db->Commit(txn), "commit");
  }
  state.SetLabel(std::string(KindName(kind)) + " -> " +
                 plan.access.DebugString(db->registry()));
  uint64_t rows = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    rows = Execute(db, txn, plan);
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["est_cost"] = plan.access.cost.total();
}
BENCHMARK(BM_PlannerChosenPath)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_ForcedFullScan(benchmark::State& state) {
  Fixture* fixture = F();
  Database* db = fixture->db.get();
  const int kind = static_cast<int>(state.range(0));
  BoundPlan plan;
  plan.relation = *fixture->desc;
  plan.access.path = AccessPathId::StorageMethod();
  plan.access.spec.filter = PredicateFor(kind);
  state.SetLabel(KindName(kind));
  uint64_t rows = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    rows = Execute(db, txn, plan);
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_ForcedFullScan)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("access_select")
