// E7 — veto + log-driven partial rollback. "When a relation modification
// operation fails, for any reason, the common recovery log is used to
// drive the storage method and attachment implementations to undo the
// partial effects of the aborted relation modification."
//
// Measures:
//   * the cost of a vetoed insert as the number of index attachments that
//     must be undone grows (0..3 indexes before the vetoing constraint),
//   * savepoint rollback cost as a function of the operations performed
//     since the savepoint.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"
#include "src/attach/check_constraint.h"

namespace dmx {
namespace bench {
namespace {

// Level k: k B-tree indexes + the vetoing check constraint (registered so
// the constraint's attachment type id is *after* the indexes, i.e. the
// indexes have already run when the veto fires).
ScopedDb* DbWithIndexes(int k) {
  static std::map<int, std::unique_ptr<ScopedDb>>* dbs =
      new std::map<int, std::unique_ptr<ScopedDb>>();
  auto it = dbs->find(k);
  if (it != dbs->end()) return it->second.get();
  auto holder = std::make_unique<ScopedDb>(0);
  Database* db = holder->db();
  Transaction* txn = db->Begin();
  const char* fields[3] = {"id", "category", "score"};
  for (int i = 0; i < k; ++i) {
    BenchCheck(db->CreateAttachment(txn, "bench", "btree_index",
                                    {{"fields", fields[i]}}),
               "index");
  }
  auto pred = Expr::Cmp(ExprOp::kGe, 2, Value::Double(0.0));
  BenchCheck(
      db->CreateAttachment(txn, "bench", "check",
                           {{"predicate", EncodePredicateAttr(pred)}}),
      "check");
  BenchCheck(db->Commit(txn), "ddl");
  ScopedDb* raw = holder.get();
  (*dbs)[k] = std::move(holder);
  return raw;
}

void BM_VetoedInsertRollback(benchmark::State& state) {
  ScopedDb* holder = DbWithIndexes(static_cast<int>(state.range(0)));
  Database* db = holder->db();
  int64_t id = 1;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    // Negative score: the storage method and all k indexes execute, then
    // the check vetoes and the log drives their undo.
    Status s = db->Insert(txn, "bench",
                          {Value::Int(id++), Value::String("x"),
                           Value::Double(-1.0), Value::String("p")});
    if (!s.IsConstraint()) BenchCheck(Status::Internal("no veto"), "veto");
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["undos_per_op"] = static_cast<double>(state.range(0) + 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VetoedInsertRollback)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMicrosecond);

// Contrast: the same insert succeeding (score >= 0) at each level.
void BM_SuccessfulInsertSameConfig(benchmark::State& state) {
  ScopedDb* holder = DbWithIndexes(static_cast<int>(state.range(0)));
  Database* db = holder->db();
  int64_t id = 1000000 + state.range(0) * 1000000;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    BenchCheck(db->Insert(txn, "bench",
                          {Value::Int(id++), Value::String("x"),
                           Value::Double(1.0), Value::String("p")}),
               "insert");
    BenchCheck(db->Commit(txn), "commit");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SuccessfulInsertSameConfig)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMicrosecond);

// Savepoint rollback cost vs operations performed since the savepoint.
void BM_SavepointRollback(benchmark::State& state) {
  static ScopedDb* holder = new ScopedDb(0);
  Database* db = holder->db();
  const int64_t ops = state.range(0);
  int64_t id = 1;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    BenchCheck(db->txn_manager()->Savepoint(txn, "sp"), "savepoint");
    for (int64_t i = 0; i < ops; ++i) {
      BenchCheck(db->Insert(txn, "bench",
                            {Value::Int(id++), Value::String("x"),
                             Value::Double(1.0), Value::String("p")}),
                 "insert");
    }
    BenchCheck(db->txn_manager()->RollbackToSavepoint(txn, "sp"),
               "rollback");
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["ops_rolled_back"] = static_cast<double>(ops);
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_SavepointRollback)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("rollback")
