// Ablation benchmarks for design choices called out in DESIGN.md §5:
//
//  A1. B-tree iterator leaf cache: key-sequential access with the
//      image-validated leaf cache vs re-descending from the root and
//      re-parsing the leaf on every Next().
//  A2. Buffer pool size: heap scans under eviction pressure (pool smaller
//      than the relation) vs fully cached.
//  A3. Two-step dispatch bookkeeping: raw storage-method insert through
//      the procedure vector vs the full Database::Insert path (locks,
//      attachment iteration over an empty descriptor, stats).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"
#include "src/sm/btree_core.h"

namespace dmx {
namespace bench {
namespace {

// -- A1 ------------------------------------------------------------------------

struct BtreeFixture {
  BtreeFixture() : dir("abl") {
    BenchCheck(pf.Open(dir.path() + "/db", true), "open");
    bp = std::make_unique<BufferPool>(&pf, 1024);
    BenchCheck(BTree::Create(bp.get(), &anchor), "create");
    BTree tree(bp.get(), anchor);
    for (int i = 0; i < 20000; ++i) {
      char key[16];
      snprintf(key, sizeof(key), "k%08d", i);
      BenchCheck(tree.Insert(Slice(key), Slice("value-payload")), "insert");
    }
  }
  TempDir dir;
  PageFile pf;
  std::unique_ptr<BufferPool> bp;
  PageId anchor;
};

BtreeFixture* BF() {
  static BtreeFixture* fixture = new BtreeFixture();
  return fixture;
}

void RunIteration(benchmark::State& state, bool cache_enabled) {
  BTreeIteratorSetLeafCacheEnabled(cache_enabled);
  BTree tree(BF()->bp.get(), BF()->anchor);
  uint64_t n = 0;
  for (auto _ : state) {
    std::unique_ptr<BTreeIterator> it;
    BenchCheck(tree.NewIterator(&it), "iterator");
    std::string key, value;
    n = 0;
    while (it->Next(&key, &value).ok()) ++n;
  }
  BTreeIteratorSetLeafCacheEnabled(true);
  state.counters["entries"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_IteratorWithLeafCache(benchmark::State& state) {
  RunIteration(state, true);
}
BENCHMARK(BM_IteratorWithLeafCache)->Unit(benchmark::kMillisecond);

void BM_IteratorNoLeafCache(benchmark::State& state) {
  RunIteration(state, false);
}
BENCHMARK(BM_IteratorNoLeafCache)->Unit(benchmark::kMillisecond);

// -- A2 ------------------------------------------------------------------------

void RunHeapScan(benchmark::State& state, size_t pool_pages) {
  // ~40k rows of ~100B = ~550 data pages; a 64-page pool thrashes.
  static std::map<size_t, std::unique_ptr<ScopedDb>>* dbs =
      new std::map<size_t, std::unique_ptr<ScopedDb>>();
  auto it = dbs->find(pool_pages);
  if (it == dbs->end()) {
    auto holder = std::make_unique<ScopedDb>(0, "heap", pool_pages);
    holder->Load(0, 40000);
    it = dbs->emplace(pool_pages, std::move(holder)).first;
  }
  Database* db = it->second->db();
  const RelationDescriptor* desc = it->second->desc();
  uint64_t n = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(),
                              ScanSpec{}, &scan),
               "scan");
    n = 0;
    ScanItem item;
    while (scan->Next(&item).ok()) ++n;
    scan.reset();
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["rows"] = static_cast<double>(n);
  state.counters["pool_pages"] = static_cast<double>(pool_pages);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_HeapScanCachedPool(benchmark::State& state) {
  RunHeapScan(state, 2048);
}
BENCHMARK(BM_HeapScanCachedPool)->Unit(benchmark::kMillisecond);

void BM_HeapScanThrashingPool(benchmark::State& state) {
  RunHeapScan(state, 64);
}
BENCHMARK(BM_HeapScanThrashingPool)->Unit(benchmark::kMillisecond);

// -- A3 ------------------------------------------------------------------------

void BM_RawStorageMethodInsert(benchmark::State& state) {
  static ScopedDb* holder = new ScopedDb(0);
  Database* db = holder->db();
  const RelationDescriptor* desc = holder->desc();
  const SmOps& sm = db->registry()->sm_ops(desc->sm_id);
  Transaction* txn = db->Begin();
  SmContext ctx;
  BenchCheck(db->MakeSmContext(txn, desc, &ctx), "ctx");
  Record rec;
  BenchCheck(Record::Encode(desc->schema,
                            {Value::Int(1), Value::String("c"),
                             Value::Double(1.0), Value::String("p")},
                            &rec),
             "encode");
  for (auto _ : state) {
    std::string key;
    BenchCheck(sm.insert(ctx, rec.slice(), &key), "raw insert");
  }
  BenchCheck(db->Abort(txn), "abort");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RawStorageMethodInsert);

void BM_FullDispatchInsert(benchmark::State& state) {
  static ScopedDb* holder = new ScopedDb(0);
  Database* db = holder->db();
  const RelationDescriptor* desc = holder->desc();
  Record rec;
  BenchCheck(Record::Encode(desc->schema,
                            {Value::Int(1), Value::String("c"),
                             Value::Double(1.0), Value::String("p")},
                            &rec),
             "encode");
  Transaction* txn = db->Begin();
  for (auto _ : state) {
    std::string key;
    BenchCheck(db->InsertRecord(txn, desc, rec.slice(), &key),
               "dispatch insert");
  }
  BenchCheck(db->Abort(txn), "abort");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullDispatchInsert);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("ablation")
