#!/bin/sh
# Re-run every benchmark from a Release build and rewrite bench/baseline.json
# from the BENCH_*.json files they emit. Run from the repo root:
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#   sh bench/refresh_baseline.sh [min_time_seconds]
set -e
MIN_TIME="${1:-0.05}"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
export DMX_BENCH_JSON_DIR="$OUT_DIR"
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  "$b" --benchmark_min_time="$MIN_TIME"
done
python3 - "$OUT_DIR" <<'EOF'
import glob, json, os, sys
suites = {}
for path in sorted(glob.glob(os.path.join(sys.argv[1], "BENCH_*.json"))):
    doc = json.load(open(path))
    suites[doc["suite"]] = {b["name"]: b["ns_per_op"] for b in doc["benchmarks"]}
json.dump({"suites": suites}, open("bench/baseline.json", "w"),
          indent=1, sort_keys=True)
print(f"wrote bench/baseline.json ({sum(len(s) for s in suites.values())} benchmarks)")
EOF
