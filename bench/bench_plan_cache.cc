// E4 — "it is important to retain the translations of queries into query
// execution plans ... This query binding approach avoids the non-trivial
// costs of accessing the relation descriptions and optimizing the query at
// query execution time."
//
// Runs the same point query (a) through the bound-plan cache, (b)
// re-planned from the catalog on every execution, and (c) measures the
// re-translation triggered when DDL invalidates a dependent plan.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/query/executor.h"
#include "src/query/plan_cache.h"

namespace dmx {
namespace bench {
namespace {

constexpr uint64_t kRows = 20000;

struct Fixture {
  Fixture() : db(kRows) {
    Transaction* txn = db.db()->Begin();
    BenchCheck(db.db()->CreateAttachment(txn, "bench", "btree_index",
                                         {{"fields", "id"}}),
               "index");
    BenchCheck(db.db()->Commit(txn), "ddl");
  }
  ScopedDb db;
};

Fixture* F() {
  static Fixture* fixture = new Fixture();
  return fixture;
}

ExprPtr PointPredicate() {
  return Expr::Cmp(ExprOp::kEq, 0, Value::Int(777));
}

uint64_t RunPlan(Database* db, Transaction* txn, const BoundPlan* plan) {
  AccessSource source(db, txn, plan);
  Row row;
  uint64_t n = 0;
  while (source.Next(&row).ok()) ++n;
  return n;
}

void BM_CachedBoundPlan(benchmark::State& state) {
  Database* db = F()->db.db();
  PlanCache cache(db);
  ExprPtr pred = PointPredicate();
  uint64_t rows = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    std::shared_ptr<const BoundPlan> plan;
    BenchCheck(cache.GetAccessPlan(txn, "bench", pred, "q", &plan), "get");
    rows += RunPlan(db, txn, plan.get());
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["plan_cache_hits"] =
      static_cast<double>(cache.stats().hits);
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedBoundPlan);

void BM_RePlanEveryExecution(benchmark::State& state) {
  Database* db = F()->db.db();
  const RelationDescriptor* desc = F()->db.desc();
  ExprPtr pred = PointPredicate();
  uint64_t rows = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    // Catalog access + full access-path enumeration, every time.
    BoundPlan plan;
    const RelationDescriptor* fresh;
    BenchCheck(db->FindRelation("bench", &fresh), "catalog");
    plan.relation = *fresh;
    BenchCheck(PlanAccess(db, txn, fresh, pred, &plan.access), "plan");
    rows += RunPlan(db, txn, &plan);
    BenchCheck(db->Commit(txn), "commit");
  }
  (void)desc;
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RePlanEveryExecution);

// Invalidation: each iteration performs DDL (attach/drop a hash index on a
// side table named in the plan's dependency) and then re-executes, forcing
// a re-translation.
void BM_InvalidationRetranslate(benchmark::State& state) {
  Database* db = F()->db.db();
  PlanCache cache(db);
  ExprPtr pred = PointPredicate();
  uint64_t rows = 0;
  for (auto _ : state) {
    // DDL bumps the relation version -> plan invalid.
    Transaction* ddl = db->Begin();
    uint32_t inst = 0;
    BenchCheck(db->CreateAttachment(ddl, "bench", "hash_index",
                                    {{"fields", "category"}}, &inst),
               "attach");
    BenchCheck(db->Commit(ddl), "commit ddl");
    Transaction* txn = db->Begin();
    std::shared_ptr<const BoundPlan> plan;
    BenchCheck(cache.GetAccessPlan(txn, "bench", pred, "q", &plan), "get");
    rows += RunPlan(db, txn, plan.get());
    BenchCheck(db->Commit(txn), "commit");
    Transaction* drop = db->Begin();
    BenchCheck(db->DropAttachment(drop, "bench", "hash_index", inst),
               "drop");
    BenchCheck(db->Commit(drop), "commit drop");
  }
  state.counters["retranslations"] =
      static_cast<double>(cache.stats().retranslations);
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InvalidationRetranslate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("plan_cache")
