// Fault-free overhead of the graceful-degradation machinery: the
// per-operation degraded-mode gate (one atomic load when healthy), the
// Busy construction cost when degraded, fault classification, and the
// end-to-end insert+commit path now that every durable byte goes through
// the RetryingEnv and every write is gated on the ErrorHandler. Compare
// BM_InsertCommitDegradedGate against faultfree_overhead's
// BM_InsertCommitDurable: the delta is the price of this subsystem.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "src/core/error_handler.h"

namespace dmx {
namespace bench {
namespace {

// The hot-path cost every relation modification now pays: one acquire
// load on the healthy fast path.
void BM_WritableGateHealthy(benchmark::State& state) {
  ErrorHandler eh;  // never started, never degraded
  for (auto _ : state) {
    benchmark::DoNotOptimize(eh.CheckWritable());
  }
}
BENCHMARK(BM_WritableGateHealthy);

// The refusal path while degraded: builds the descriptive Busy. Cold by
// definition (writes are being refused), benchmarked to keep it from
// accidentally becoming pathological.
void BM_WritableGateDegraded(benchmark::State& state) {
  ErrorHandler eh;  // no recovery thread: stays degraded
  eh.ReportWriteFailure("wal commit force",
                        // dmx-lint: allow-raw-ioerror (fault input)
                        Status::RetryableIOError("no space left on device"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eh.CheckWritable());
  }
}
BENCHMARK(BM_WritableGateDegraded);

// Taxonomy classification of a failed Status (runs on every reported
// write failure).
void BM_ClassifyStatus(benchmark::State& state) {
  // dmx-lint: allow-raw-ioerror (bench fabricates classifier inputs)
  const Status transient = Status::RetryableIOError("enospc");
  const Status hard = Status::Corruption("bad crc");
  // dmx-lint: allow-raw-ioerror (bench fabricates classifier inputs)
  const Status fatal = Status::IOError("foreign server unreachable");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ErrorHandler::Classify(transient));
    benchmark::DoNotOptimize(ErrorHandler::Classify(hard));
    benchmark::DoNotOptimize(ErrorHandler::Classify(fatal));
  }
}
BENCHMARK(BM_ClassifyStatus);

// End-to-end durable insert+commit with the full degradation machinery in
// place: RetryingEnv wrapping every file operation, the write gate on the
// insert path, and the recovery thread parked on its condvar.
void BM_InsertCommitDegradedGate(benchmark::State& state) {
  ScopedDb sdb(0);
  int64_t id = 0;
  for (auto _ : state) {
    Transaction* txn = sdb.db()->Begin();
    BenchCheck(sdb.db()->Insert(txn, "bench",
                                {Value::Int(id), Value::String("c1"),
                                 Value::Double(0.5),
                                 Value::String(std::string(64, 'p'))}),
               "insert");
    BenchCheck(sdb.db()->Commit(txn), "commit");
    ++id;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertCommitDegradedGate);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("degraded_overhead")
