// Group commit — commit throughput vs committer count under the three
// durability protocols:
//
//   * fsync-per-commit (DatabaseOptions::group_commit = false): the
//     pre-group-commit baseline; every committer pays a private
//     write+fsync under the log mutex.
//   * group commit (the default): leader/follower — one leader fsyncs the
//     whole buffered batch while followers wait on the flush condvar, so
//     N concurrent committers share ~1 fsync.
//   * relaxed (DatabaseOptions::durability = kRelaxed): commit
//     acknowledges at WAL-append; the background flusher makes the tail
//     durable within its cadence.
//
// The interesting read is items_per_second at Threads(16)/Threads(32):
// group commit should scale near-linearly while fsync-per-commit stays
// flat at ~1/fsync-latency, and Threads(1) group vs legacy bounds the
// single-writer overhead of the leader/follower protocol (<10% target,
// see EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>

#include "bench/bench_util.h"

namespace dmx {
namespace bench {
namespace {

/// One database per durability protocol, shared by every thread count so
/// repeated runs keep appending fresh keys.
class ModeDb {
 public:
  ModeDb(bool group_commit, Durability durability, uint64_t window_us = 0)
      : dir_("group_commit") {
    DatabaseOptions options;
    options.dir = dir_.path() + "/db";
    options.group_commit = group_commit;
    options.durability = durability;
    options.group_commit_window_us = window_us;
    BenchCheck(Database::Open(options, &db_), "open");
    Transaction* ddl = db_->Begin();
    Schema schema({{"k", TypeId::kInt64, false},
                   {"v", TypeId::kString, true}});
    BenchCheck(db_->CreateRelation(ddl, "t", schema, "heap", {}), "create");
    BenchCheck(db_->Commit(ddl), "ddl");
  }

  Database* db() { return db_.get(); }
  int64_t NextKey() { return next_key_.fetch_add(1); }

 private:
  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::atomic<int64_t> next_key_{0};
};

ModeDb* GroupDb() {
  // Default configuration: pure leader/follower batching — the batch is
  // whatever accumulated during the previous leader's fsync.
  static ModeDb* fixture = new ModeDb(true, Durability::kStrict);
  return fixture;
}

ModeDb* LegacyDb() {
  static ModeDb* fixture = new ModeDb(false, Durability::kStrict);
  return fixture;
}

ModeDb* GroupWindowDb() {
  // A short batching window makes the leader linger for stragglers
  // (sibling-gated, quiet-gap early exit), widening the batch at some
  // commit latency cost.
  static ModeDb* fixture =
      new ModeDb(true, Durability::kStrict, /*window_us=*/200);
  return fixture;
}

ModeDb* RelaxedDb() {
  static ModeDb* fixture = new ModeDb(true, Durability::kRelaxed);
  return fixture;
}

void CommitLoop(benchmark::State& state, ModeDb* fixture) {
  Database* db = fixture->db();
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    BenchCheck(db->Insert(txn, "t",
                          {Value::Int(fixture->NextKey()),
                           Value::String("payload")}),
               "insert");
    BenchCheck(db->Commit(txn), "commit");
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CommitFsyncPerCommit(benchmark::State& state) {
  CommitLoop(state, LegacyDb());
}
BENCHMARK(BM_CommitFsyncPerCommit)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->Threads(32)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_CommitGroup(benchmark::State& state) {
  CommitLoop(state, GroupDb());
}
BENCHMARK(BM_CommitGroup)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->Threads(32)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_CommitGroupWindow(benchmark::State& state) {
  CommitLoop(state, GroupWindowDb());
}
BENCHMARK(BM_CommitGroupWindow)
    ->Threads(1)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_CommitRelaxed(benchmark::State& state) {
  CommitLoop(state, RelaxedDb());
}
BENCHMARK(BM_CommitRelaxed)
    ->Threads(1)
    ->Threads(16)
    ->Threads(32)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("group_commit")
