// E6 — attachment side-effect overhead. "Whenever a record is inserted,
// updated, or deleted, the (old and new) record is presented ... to each
// attachment type with instances defined on the relation being modified."
//
// Measures insert / update / delete cost as attachments accumulate:
//   0: bare storage method
//   1: + B-tree index            2: + hash index
//   3: + check constraint        4: + unique constraint
//   5: + stats
// Expected shape: roughly linear growth, with index attachments (which
// maintain storage and write log records) costing more than the pure
// predicate check.

#include <benchmark/benchmark.h>

#include <atomic>
#include <map>

#include "bench/bench_util.h"
#include "src/attach/check_constraint.h"

namespace dmx {
namespace bench {
namespace {

// A fresh database per configuration level (they cannot be detached
// without affecting other levels' runs, so each level owns its state).
ScopedDb* DbForLevel(int level) {
  static std::map<int, std::unique_ptr<ScopedDb>>* dbs =
      new std::map<int, std::unique_ptr<ScopedDb>>();
  auto it = dbs->find(level);
  if (it != dbs->end()) return it->second.get();
  auto holder = std::make_unique<ScopedDb>(0);
  Database* db = holder->db();
  Transaction* txn = db->Begin();
  if (level >= 1) {
    BenchCheck(db->CreateAttachment(txn, "bench", "btree_index",
                                    {{"fields", "id"}}),
               "btree");
  }
  if (level >= 2) {
    BenchCheck(db->CreateAttachment(txn, "bench", "hash_index",
                                    {{"fields", "category"}}),
               "hash");
  }
  if (level >= 3) {
    auto pred = Expr::Cmp(ExprOp::kGe, 2, Value::Double(0.0));
    BenchCheck(db->CreateAttachment(
                   txn, "bench", "check",
                   {{"predicate", EncodePredicateAttr(pred)}}),
               "check");
  }
  if (level >= 4) {
    BenchCheck(db->CreateAttachment(txn, "bench", "unique",
                                    {{"fields", "id"}}),
               "unique");
  }
  if (level >= 5) {
    BenchCheck(db->CreateAttachment(txn, "bench", "stats",
                                    {{"field", "score"}}),
               "stats");
  }
  BenchCheck(db->Commit(txn), "ddl");
  ScopedDb* raw = holder.get();
  (*dbs)[level] = std::move(holder);
  return raw;
}

void BM_InsertWithAttachments(benchmark::State& state) {
  ScopedDb* holder = DbForLevel(static_cast<int>(state.range(0)));
  Database* db = holder->db();
  static std::atomic<int64_t> g_id{10000000};  // never reused across reruns
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    BenchCheck(db->Insert(txn, "bench",
                          {Value::Int(g_id.fetch_add(1)), Value::String("cat"),
                           Value::Double(1.0), Value::String("p")}),
               "insert");
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["at_calls_per_op"] = benchmark::Counter(
      static_cast<double>(db->stats().at_calls), benchmark::Counter::kDefaults);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertWithAttachments)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMicrosecond);

void BM_UpdateWithAttachments(benchmark::State& state) {
  ScopedDb* holder = DbForLevel(static_cast<int>(state.range(0)));
  Database* db = holder->db();
  // Seed one row to update repeatedly. The id comes from a fresh range so
  // re-entries of this function (benchmark iteration tuning) never collide
  // with an earlier seed in the cached database.
  static std::atomic<int64_t> g_id{30000000};
  const int64_t seed_id = g_id.fetch_add(1);
  std::string key;
  {
    Transaction* txn = db->Begin();
    BenchCheck(db->Insert(txn, "bench",
                          {Value::Int(seed_id), Value::String("u"),
                           Value::Double(1.0), Value::String("p")},
                          &key),
               "seed");
    BenchCheck(db->Commit(txn), "commit");
  }
  double score = 2.0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    std::string new_key;
    BenchCheck(db->Update(txn, "bench", Slice(key),
                          {Value::Int(seed_id), Value::String("u"),
                           Value::Double(score), Value::String("p")},
                          &new_key),
               "update");
    key = new_key;
    score += 1.0;
    BenchCheck(db->Commit(txn), "commit");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateWithAttachments)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMicrosecond);

void BM_DeleteWithAttachments(benchmark::State& state) {
  ScopedDb* holder = DbForLevel(static_cast<int>(state.range(0)));
  Database* db = holder->db();
  static std::atomic<int64_t> g_id{50000000};
  for (auto _ : state) {
    state.PauseTiming();
    std::string key;
    {
      Transaction* txn = db->Begin();
      BenchCheck(db->Insert(txn, "bench",
                            {Value::Int(g_id.fetch_add(1)), Value::String("d"),
                             Value::Double(1.0), Value::String("p")},
                            &key),
                 "seed");
      BenchCheck(db->Commit(txn), "commit");
    }
    state.ResumeTiming();
    Transaction* txn = db->Begin();
    BenchCheck(db->Delete(txn, "bench", Slice(key)), "delete");
    BenchCheck(db->Commit(txn), "commit");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeleteWithAttachments)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("attach_overhead")
