// E8 — deferred actions. "Certain integrity constraints cannot be
// evaluated when a single modification occurs but must be evaluated after
// all of the modifications have been made in the transaction."
//
// Batch-updates N rows under (a) an immediate check constraint re-evaluated
// per modification and (b) a deferred check evaluated once per touched row
// at the before-prepare event. Also shows the semantic difference: a batch
// that is transiently invalid commits under (b) and fails under (a).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"
#include "src/attach/check_constraint.h"

namespace dmx {
namespace bench {
namespace {

constexpr uint64_t kRows = 2000;

ScopedDb* DbWith(const char* attachment) {
  static std::map<std::string, std::unique_ptr<ScopedDb>>* dbs =
      new std::map<std::string, std::unique_ptr<ScopedDb>>();
  auto it = dbs->find(attachment);
  if (it != dbs->end()) return it->second.get();
  auto holder = std::make_unique<ScopedDb>(kRows);
  Database* db = holder->db();
  if (std::string(attachment) != "none") {
    Transaction* txn = db->Begin();
    auto pred = Expr::Cmp(ExprOp::kGe, 2, Value::Double(0.0));
    BenchCheck(
        db->CreateAttachment(txn, "bench", attachment,
                             {{"predicate", EncodePredicateAttr(pred)}}),
        "attach");
    BenchCheck(db->Commit(txn), "ddl");
  }
  ScopedDb* raw = holder.get();
  (*dbs)[attachment] = std::move(holder);
  return raw;
}

void RunBatchUpdate(benchmark::State& state, const char* attachment) {
  ScopedDb* holder = DbWith(attachment);
  Database* db = holder->db();
  const RelationDescriptor* desc = holder->desc();
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    // Touch `batch` rows via a scan collecting keys, then update each.
    std::vector<std::pair<std::string, std::vector<Value>>> targets;
    {
      std::unique_ptr<Scan> scan;
      BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(),
                                ScanSpec{}, &scan),
                 "scan");
      ScanItem item;
      while (static_cast<int64_t>(targets.size()) < batch &&
             scan->Next(&item).ok()) {
        targets.emplace_back(item.record_key, item.view.GetValues());
      }
    }
    for (auto& [key, values] : targets) {
      values[2] = Value::Double(values[2].AsDouble() + 1.0);
      std::string new_key;
      BenchCheck(db->UpdateRecord(
                     txn, desc,
                     Slice(key),
                     [&] {
                       Record rec;
                       BenchCheck(Record::Encode(desc->schema, values, &rec),
                                  "encode");
                       return rec;
                     }()
                         .slice(),
                     &new_key),
                 "update");
    }
    BenchCheck(db->Commit(txn), "commit");
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_NoConstraint(benchmark::State& state) {
  RunBatchUpdate(state, "none");
}
BENCHMARK(BM_NoConstraint)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_ImmediateCheck(benchmark::State& state) {
  RunBatchUpdate(state, "check");
}
BENCHMARK(BM_ImmediateCheck)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_DeferredCheck(benchmark::State& state) {
  RunBatchUpdate(state, "deferred_check");
}
BENCHMARK(BM_DeferredCheck)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

// Semantics: a transiently-invalid batch (debit then credit) only commits
// under the deferred constraint. Reported as counters: 1 = committed.
void BM_TransientViolationSemantics(benchmark::State& state) {
  const char* attachment = state.range(0) == 0 ? "check" : "deferred_check";
  state.SetLabel(attachment);
  ScopedDb* holder = DbWith(attachment);
  Database* db = holder->db();
  const RelationDescriptor* desc = holder->desc();
  double committed = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    std::string key;
    std::vector<Value> row;
    {
      std::unique_ptr<Scan> scan;
      BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(),
                                ScanSpec{}, &scan),
                 "scan");
      ScanItem item;
      BenchCheck(scan->Next(&item), "first");
      key = item.record_key;
      row = item.view.GetValues();
    }
    auto update_score = [&](double score) -> Status {
      row[2] = Value::Double(score);
      Record rec;
      BenchCheck(Record::Encode(desc->schema, row, &rec), "encode");
      std::string new_key;
      Status s = db->UpdateRecord(txn, desc, Slice(key), rec.slice(),
                                  &new_key);
      if (s.ok()) key = new_key;
      return s;
    };
    Status s = update_score(-5.0);         // transiently invalid
    if (s.ok()) s = update_score(100.0);   // fixed before commit
    if (s.ok()) s = db->Commit(txn);
    if (!s.ok() && txn->active()) db->Abort(txn);
    committed = s.ok() ? 1 : 0;
  }
  state.counters["committed"] = committed;
}
BENCHMARK(BM_TransientViolationSemantics)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("deferred")
