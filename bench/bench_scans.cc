// E12 — scan position maintenance. Key-sequential accesses must keep a
// well-defined position across deletions at the position, and positions
// are saved when a rollback point is established and restored after a
// partial rollback (scan moves themselves are not logged).
//
// Measures: plain scan throughput; scan with interleaved delete-at-
// position; savepoint establishment cost as the number of open scans
// grows (each open scan's position must be captured); and partial
// rollback with open-scan position restore.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace dmx {
namespace bench {
namespace {

constexpr uint64_t kRows = 20000;

ScopedDb* F() {
  static ScopedDb* fixture = new ScopedDb(kRows);
  return fixture;
}

void BM_PlainScan(benchmark::State& state) {
  Database* db = F()->db();
  const RelationDescriptor* desc = F()->desc();
  uint64_t n = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(),
                              ScanSpec{}, &scan),
               "scan");
    n = 0;
    ScanItem item;
    while (scan->Next(&item).ok()) ++n;
    scan.reset();
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["rows"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_PlainScan)->Unit(benchmark::kMillisecond);

// Delete every 10th record at the scan position while scanning, then
// abort (so the fixture stays intact). Exercises the "scan positioned just
// after the deleted item" semantics under load.
void BM_ScanWithInterleavedDeletes(benchmark::State& state) {
  Database* db = F()->db();
  const RelationDescriptor* desc = F()->desc();
  uint64_t n = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(),
                              ScanSpec{}, &scan),
               "scan");
    n = 0;
    ScanItem item;
    while (scan->Next(&item).ok()) {
      ++n;
      if (n % 10 == 0) {
        BenchCheck(db->DeleteRecord(txn, desc, Slice(item.record_key)),
                   "delete at position");
      }
    }
    scan.reset();
    BenchCheck(db->Abort(txn), "abort");
  }
  state.counters["rows_seen"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ScanWithInterleavedDeletes)->Unit(benchmark::kMillisecond);

// Savepoint cost with k open scans (positions captured per savepoint).
void BM_SavepointWithOpenScans(benchmark::State& state) {
  Database* db = F()->db();
  const RelationDescriptor* desc = F()->desc();
  const int64_t k = state.range(0);
  Transaction* txn = db->Begin();
  std::vector<std::unique_ptr<Scan>> scans;
  for (int64_t i = 0; i < k; ++i) {
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(),
                              ScanSpec{}, &scan),
               "scan");
    ScanItem item;
    scan->Next(&item).ok();
    scans.push_back(std::move(scan));
  }
  for (auto _ : state) {
    BenchCheck(db->Savepoint(txn, "sp"), "savepoint");
  }
  scans.clear();
  BenchCheck(db->Commit(txn), "commit");
  state.counters["open_scans"] = static_cast<double>(k);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SavepointWithOpenScans)
    ->Arg(0)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// Partial rollback restoring an open scan's position: do some work after
// the savepoint, roll back, verify the scan resumes at the saved point.
void BM_PartialRollbackRestoresScan(benchmark::State& state) {
  Database* db = F()->db();
  const RelationDescriptor* desc = F()->desc();
  int64_t id = 90000000;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(),
                              ScanSpec{}, &scan),
               "scan");
    ScanItem item;
    BenchCheck(scan->Next(&item), "advance");
    BenchCheck(db->Savepoint(txn, "sp"), "savepoint");
    for (int i = 0; i < 10; ++i) {
      BenchCheck(db->Insert(txn, "bench",
                            {Value::Int(id++), Value::String("x"),
                             Value::Double(1.0), Value::String("p")}),
                 "insert");
      BenchCheck(scan->Next(&item), "drift");
    }
    BenchCheck(db->txn_manager()->RollbackToSavepoint(txn, "sp"),
               "rollback");
    BenchCheck(scan->Next(&item), "resume");  // from the restored position
    scan.reset();
    BenchCheck(db->Abort(txn), "abort");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartialRollbackRestoresScan)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("scans")
