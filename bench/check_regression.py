#!/usr/bin/env python3
"""Benchmark regression gate.

Usage: check_regression.py <baseline.json> <results-dir> [--threshold 0.25]
                           [--summary PATH]

Compares every BENCH_*.json in <results-dir> against the checked-in
baseline and exits non-zero if any benchmark's ns/op regressed by more
than the threshold (default 25%). Benchmarks missing from the baseline
are reported but do not fail the gate (refresh the baseline to adopt
them); benchmarks missing from the results fail it, because a silently
dropped benchmark is how regressions hide.

Improvements beyond the threshold are reported too (they never fail):
the baseline was recorded on a single-core container, so suites like
parallel_scan are expected to show large speedups on multi-core CI
runners, and surfacing them is how that is verified without baking
machine-dependent numbers into the gate.

With --summary PATH, a markdown table of every benchmark's ns/op delta
against the baseline is appended to PATH (pass $GITHUB_STEP_SUMMARY in CI
to publish it on the run's summary page). The table is written whether or
not the gate passes.

Refresh the baseline with bench/refresh_baseline.sh.
"""

import argparse
import glob
import json
import os
import sys


def load_results(results_dir):
    suites = {}
    for path in sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json"))):
        with open(path) as f:
            doc = json.load(f)
        suites[doc["suite"]] = {
            b["name"]: b["ns_per_op"] for b in doc["benchmarks"]
        }
    return suites


def write_summary(path, baseline, results, threshold):
    """Append a markdown ns/op delta table (for $GITHUB_STEP_SUMMARY)."""
    lines = ["## Benchmark deltas vs baseline", "",
             "| Benchmark | Baseline ns/op | Now ns/op | Delta |",
             "|---|---:|---:|---:|"]
    base_suites = baseline.get("suites", {})
    for suite, benches in sorted(results.items()):
        base = base_suites.get(suite, {})
        for name, now_ns in sorted(benches.items()):
            base_ns = base.get(name)
            if base_ns:
                pct = 100.0 * (now_ns / base_ns - 1.0)
                delta = f"{pct:+.1f}%"
                if now_ns > base_ns * (1.0 + threshold):
                    delta += " :x:"
                elif now_ns < base_ns * (1.0 - threshold):
                    delta += " :rocket:"
                lines.append(f"| {suite}/{name} | {base_ns:.1f} | "
                             f"{now_ns:.1f} | {delta} |")
            else:
                lines.append(f"| {suite}/{name} | — | {now_ns:.1f} | new |")
    for suite, benches in sorted(base_suites.items()):
        got = results.get(suite, {})
        for name in sorted(benches):
            if name not in got:
                lines.append(f"| {suite}/{name} | "
                             f"{benches[name]:.1f} | — | missing :x: |")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("results_dir")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional ns/op regression that fails (0.25 = 25%%)")
    parser.add_argument("--summary", metavar="PATH",
                        help="append a markdown ns/op delta table to PATH "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    results = load_results(args.results_dir)
    if not results:
        print(f"FAIL: no BENCH_*.json files found in {args.results_dir}")
        return 1
    if args.summary:
        write_summary(args.summary, baseline, results, args.threshold)

    failures = []
    improvements = []
    new_benchmarks = []
    for suite, benches in sorted(baseline.get("suites", {}).items()):
        got = results.get(suite)
        if got is None:
            failures.append(f"suite '{suite}' produced no results")
            continue
        for name, base_ns in sorted(benches.items()):
            if name not in got:
                failures.append(f"{suite}/{name} missing from results")
                continue
            now_ns = got[name]
            if base_ns > 0 and now_ns > base_ns * (1.0 + args.threshold):
                pct = 100.0 * (now_ns / base_ns - 1.0)
                failures.append(
                    f"{suite}/{name}: {base_ns:.1f} -> {now_ns:.1f} ns/op "
                    f"(+{pct:.0f}%, limit +{args.threshold * 100:.0f}%)")
            elif base_ns > 0 and now_ns < base_ns * (1.0 - args.threshold):
                improvements.append(
                    f"{suite}/{name}: {base_ns:.1f} -> {now_ns:.1f} ns/op "
                    f"({base_ns / now_ns:.2f}x speedup)")

    for suite, benches in sorted(results.items()):
        base = baseline.get("suites", {}).get(suite, {})
        for name in sorted(benches):
            if name not in base:
                new_benchmarks.append(f"{suite}/{name}")

    if improvements:
        print("Benchmark improvements (consider refreshing the baseline):")
        for i in improvements:
            print(f"  {i}")
    if new_benchmarks:
        print("Not in baseline (refresh to adopt):")
        for n in new_benchmarks:
            print(f"  {n}")
    if failures:
        print("Benchmark regressions:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    total = sum(len(b) for b in results.values())
    print(f"OK: {total} benchmarks within +{args.threshold * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
