// E2 — "the join of two moderate sized relations can easily result in
// thousands of calls to storage method and attachment routines. It is
// imperative, therefore, that the linkage to storage method and attachment
// routines ... be very efficient."
//
// Joins an outer relation (1k rows) with an inner relation (10k rows):
//   * nested-loop join (inner fully rescanned per outer row), and
//   * index nested-loop join through a hash access path.
// Reports the storage-method/attached-procedure call counts per join so
// the tuple-at-a-time call volume is visible, and ns per generic call.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/query/executor.h"
#include "src/query/sql.h"

namespace dmx {
namespace bench {
namespace {

constexpr int kOuterRows = 1000;
constexpr int kInnerRows = 10000;

struct JoinFixture {
  JoinFixture() : db_holder(0) {
    Database* db = db_holder.db();
    Session session(db);
    QueryResult r;
    BenchCheck(session.Execute("CREATE TABLE outer_rel (k INT, tag STRING)",
                               &r),
               "outer ddl");
    BenchCheck(session.Execute(
                   "CREATE TABLE inner_rel (k INT, weight DOUBLE)", &r),
               "inner ddl");
    Transaction* txn = db->Begin();
    for (int i = 0; i < kOuterRows; ++i) {
      BenchCheck(db->Insert(txn, "outer_rel",
                            {Value::Int(i % (kInnerRows / 10)),
                             Value::String("t")}),
                 "outer load");
    }
    for (int i = 0; i < kInnerRows; ++i) {
      BenchCheck(db->Insert(txn, "inner_rel",
                            {Value::Int(i / 10), Value::Double(i * 1.0)}),
                 "inner load");
    }
    BenchCheck(db->Commit(txn), "load");
    // Hash access path on the inner join column (for the index join).
    txn = db->Begin();
    BenchCheck(db->CreateAttachment(txn, "inner_rel", "hash_index",
                                    {{"fields", "k"}}),
               "hash");
    BenchCheck(db->Commit(txn), "ddl");
  }

  ScopedDb db_holder;
};

JoinFixture* Fixture() {
  static JoinFixture* fixture = new JoinFixture();
  return fixture;
}

void RunJoin(benchmark::State& state, const char* sql) {
  Database* db = Fixture()->db_holder.db();
  Session session(db);
  uint64_t rows = 0, calls = 0;
  for (auto _ : state) {
    db->ResetStats();
    QueryResult r;
    BenchCheck(session.Execute(sql, &r), "join");
    rows = static_cast<uint64_t>(r.rows.size());
    calls = db->stats().sm_calls + db->stats().at_calls;
  }
  state.counters["result_rows"] = static_cast<double>(rows);
  state.counters["generic_calls_per_join"] = static_cast<double>(calls);
  state.counters["ns_per_call"] = benchmark::Counter(
      static_cast<double>(calls * state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

// The session plans an index join when the inner has a usable access path
// on the join column — this query joins on k, which has one.
void BM_IndexNestedLoopJoin(benchmark::State& state) {
  RunJoin(state,
          "SELECT outer_rel.k, inner_rel.weight FROM outer_rel, inner_rel "
          "WHERE outer_rel.k = inner_rel.k");
}
BENCHMARK(BM_IndexNestedLoopJoin)->Unit(benchmark::kMillisecond);

// Forcing a plain nested loop: join on an expression the index cannot
// serve (k + 0 defeats the equi-join detector).
void BM_PlainNestedLoopJoin(benchmark::State& state) {
  RunJoin(state,
          "SELECT outer_rel.k, inner_rel.weight FROM outer_rel, inner_rel "
          "WHERE outer_rel.k = inner_rel.k + 0");
}
BENCHMARK(BM_PlainNestedLoopJoin)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("join_calls")
