// Checkpoint / restart-recovery benchmarks (extension beyond the paper:
// DESIGN.md §5): restart time as a function of log length, the cost of a
// quiesced checkpoint, and restart time right after a checkpoint.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace dmx {
namespace bench {
namespace {

// Build a database with `ops` logged operations (mainmemory relation so
// restart replays every record), optionally checkpointed at the end.
// Returns the directory holder; caller reopens to measure restart.
std::unique_ptr<TempDir> BuildLoggedDb(int64_t ops, bool checkpoint) {
  auto dir = std::make_unique<TempDir>("ckpt");
  DatabaseOptions options;
  options.dir = dir->path();
  std::unique_ptr<Database> db;
  BenchCheck(Database::Open(options, &db), "open");
  Schema schema({{"k", TypeId::kInt64, false},
                 {"v", TypeId::kString, true}});
  Transaction* txn = db->Begin();
  BenchCheck(db->CreateRelation(txn, "m", schema, "mainmemory", {}),
             "create");
  BenchCheck(db->Commit(txn), "ddl");
  txn = db->Begin();
  for (int64_t i = 0; i < ops; ++i) {
    BenchCheck(
        db->Insert(txn, "m", {Value::Int(i), Value::String("payload")}),
        "insert");
  }
  BenchCheck(db->Commit(txn), "load");
  if (checkpoint) BenchCheck(db->Checkpoint(), "checkpoint");
  db.reset();  // clean close
  return dir;
}

void BM_RestartAfterLoggedOps(benchmark::State& state) {
  const int64_t ops = state.range(0);
  auto dir = BuildLoggedDb(ops, /*checkpoint=*/false);
  for (auto _ : state) {
    DatabaseOptions options;
    options.dir = dir->path();
    std::unique_ptr<Database> db;
    BenchCheck(Database::Open(options, &db), "restart");
    benchmark::DoNotOptimize(db.get());
  }
  state.counters["logged_ops"] = static_cast<double>(ops);
}
BENCHMARK(BM_RestartAfterLoggedOps)
    ->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_RestartAfterCheckpoint(benchmark::State& state) {
  const int64_t ops = state.range(0);
  auto dir = BuildLoggedDb(ops, /*checkpoint=*/true);
  for (auto _ : state) {
    DatabaseOptions options;
    options.dir = dir->path();
    std::unique_ptr<Database> db;
    BenchCheck(Database::Open(options, &db), "restart");
    benchmark::DoNotOptimize(db.get());
  }
  state.counters["logged_ops"] = static_cast<double>(ops);
}
BENCHMARK(BM_RestartAfterCheckpoint)
    ->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointCost(benchmark::State& state) {
  const int64_t rows = state.range(0);
  TempDir dir("ckptcost");
  DatabaseOptions options;
  options.dir = dir.path();
  std::unique_ptr<Database> db;
  BenchCheck(Database::Open(options, &db), "open");
  Schema schema({{"k", TypeId::kInt64, false},
                 {"v", TypeId::kString, true}});
  Transaction* txn = db->Begin();
  BenchCheck(db->CreateRelation(txn, "m", schema, "mainmemory", {}),
             "create");
  for (int64_t i = 0; i < rows; ++i) {
    BenchCheck(
        db->Insert(txn, "m", {Value::Int(i), Value::String("payload")}),
        "insert");
  }
  BenchCheck(db->Commit(txn), "load");
  for (auto _ : state) {
    BenchCheck(db->Checkpoint(), "checkpoint");
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_CheckpointCost)
    ->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("checkpoint")
