// Cost of the online-backup subsystem, in three layers: the steady-state
// tax of WAL segment rotation + archiving on the commit path, the writer
// throughput dip while an online backup is actually running, and the
// latency of the backup itself. Compare BM_InsertCommitNoArchive against
// BM_InsertCommitWithArchiving for the always-on price, and against
// BM_InsertCommitDuringBackup for the worst case (a backup's checkpoint
// and page-file snapshot competing for the same core and disk).

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "bench/bench_util.h"

namespace dmx {
namespace bench {
namespace {

void InsertOne(Database* db, int64_t id) {
  Transaction* txn = db->Begin();
  BenchCheck(db->Insert(txn, "bench",
                        {Value::Int(id), Value::String("c1"),
                         Value::Double(0.5),
                         Value::String(std::string(64, 'p'))}),
             "insert");
  BenchCheck(db->Commit(txn), "commit");
}

// Baseline: durable insert+commit with the backup subsystem idle (no
// archive dir, so the WAL never rotates and the archiver never runs).
void BM_InsertCommitNoArchive(benchmark::State& state) {
  ScopedDb sdb(0);
  int64_t id = 0;
  for (auto _ : state) InsertOne(sdb.db(), id++);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertCommitNoArchive);

// Steady-state archiving tax: segments deliberately tiny (64 KiB) so the
// commit loop keeps rotating the live log and the background archiver
// keeps copying sealed segments — rotation, seal fsyncs, and archive
// copies all land inside the measured loop.
void BM_InsertCommitWithArchiving(benchmark::State& state) {
  TempDir dir("bkarch");
  DatabaseOptions options;
  options.dir = dir.path() + "/db";
  options.wal_archive_dir = dir.path() + "/archive";
  options.wal_segment_bytes = 64 << 10;
  options.worker_threads = 1;
  std::unique_ptr<Database> db;
  BenchCheck(Database::Open(options, &db), "open");
  Transaction* txn = db->Begin();
  BenchCheck(db->CreateRelation(txn, "bench", ScopedDb::BenchSchema(), "heap",
                                AttrList()),
             "create");
  BenchCheck(db->Commit(txn), "commit ddl");
  int64_t id = 0;
  for (auto _ : state) InsertOne(db.get(), id++);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertCommitWithArchiving);

// Writer throughput while online backups run back to back in a second
// thread: the dip against BM_InsertCommitNoArchive is what a production
// writer sees during its backup window.
void BM_InsertCommitDuringBackup(benchmark::State& state) {
  ScopedDb sdb(512);
  TempDir out("bkbg");
  std::atomic<bool> stop{false};
  std::thread backups([&] {
    uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string dest = out.path() + "/b" + std::to_string(n++);
      BenchCheck(sdb.db()->Backup(dest), "backup");
      std::error_code ec;
      std::filesystem::remove_all(dest, ec);
    }
  });
  int64_t id = 1 << 20;  // clear of the preloaded ids
  for (auto _ : state) InsertOne(sdb.db(), id++);
  stop.store(true, std::memory_order_relaxed);
  backups.join();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertCommitDuringBackup);

// Latency of one online backup of a 512-row database: checkpoint, page
// snapshot, catalog + WAL copies, manifest.
void BM_BackupOnline(benchmark::State& state) {
  ScopedDb sdb(512);
  TempDir out("bkout");
  uint64_t n = 0;
  for (auto _ : state) {
    const std::string dest = out.path() + "/b" + std::to_string(n++);
    BenchCheck(sdb.db()->Backup(dest), "backup");
    state.PauseTiming();
    std::error_code ec;
    std::filesystem::remove_all(dest, ec);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BackupOnline);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("backup_overhead")
