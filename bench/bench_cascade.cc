// E11 — cascading modifications. "Attachments may access or modify other
// data in the database by calling the appropriate storage method or
// attachment routines. In this manner, modifications may cascade in the
// database."
//
// Deletes one parent with fanout {1, 10, 100, 1000} children, and a
// two-level chain (parent -> child -> grandchild with fanout 10 each
// level, 100 leaves). A hash access path on the child's foreign key keeps
// the per-level child discovery cheap; cost should scale linearly with the
// number of cascaded deletes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace dmx {
namespace bench {
namespace {

Schema KeyedSchema(const char* key_col, const char* fk_col) {
  return Schema({{key_col, TypeId::kInt64, false},
                 {fk_col, TypeId::kInt64, true}});
}

struct Fixture {
  Fixture() : dir("cascade") {
    DatabaseOptions options;
    options.dir = dir.path();
    options.buffer_pool_pages = 4096;
    BenchCheck(Database::Open(options, &db), "open");
    Transaction* txn = db->Begin();
    BenchCheck(db->CreateRelation(txn, "parent", KeyedSchema("pid", "x"),
                                  "heap", {}),
               "parent");
    BenchCheck(db->CreateRelation(txn, "child", KeyedSchema("cid", "pid"),
                                  "heap", {}),
               "child");
    BenchCheck(db->CreateRelation(txn, "grandchild",
                                  KeyedSchema("gid", "cid"), "heap", {}),
               "grandchild");
    BenchCheck(db->CreateAttachment(txn, "parent", "refint",
                                    {{"role", "parent"}, {"other", "child"},
                                     {"fields", "pid"},
                                     {"other_fields", "pid"},
                                     {"action", "cascade"}}),
               "cascade 1");
    BenchCheck(db->CreateAttachment(txn, "child", "refint",
                                    {{"role", "parent"},
                                     {"other", "grandchild"},
                                     {"fields", "cid"},
                                     {"other_fields", "cid"},
                                     {"action", "cascade"}}),
               "cascade 2");
    BenchCheck(db->Commit(txn), "ddl");
  }

  // Build one parent with `fanout` children; returns the parent key.
  std::string SeedFlat(int64_t parent_id, int64_t fanout) {
    Transaction* txn = db->Begin();
    std::string pkey;
    BenchCheck(db->Insert(txn, "parent",
                          {Value::Int(parent_id), Value::Null()}, &pkey),
               "seed parent");
    for (int64_t i = 0; i < fanout; ++i) {
      BenchCheck(db->Insert(txn, "child",
                            {Value::Int(parent_id * 1000000 + i),
                             Value::Int(parent_id)}),
                 "seed child");
    }
    BenchCheck(db->Commit(txn), "seed commit");
    return pkey;
  }

  // Parent -> 10 children -> 10 grandchildren each (100 leaves).
  std::string SeedChain(int64_t parent_id) {
    Transaction* txn = db->Begin();
    std::string pkey;
    BenchCheck(db->Insert(txn, "parent",
                          {Value::Int(parent_id), Value::Null()}, &pkey),
               "seed parent");
    for (int64_t c = 0; c < 10; ++c) {
      int64_t cid = parent_id * 1000000 + c;
      BenchCheck(db->Insert(txn, "child",
                            {Value::Int(cid), Value::Int(parent_id)}),
                 "seed child");
      for (int64_t g = 0; g < 10; ++g) {
        BenchCheck(db->Insert(txn, "grandchild",
                              {Value::Int(cid * 100 + g), Value::Int(cid)}),
                   "seed grandchild");
      }
    }
    BenchCheck(db->Commit(txn), "seed commit");
    return pkey;
  }

  TempDir dir;
  std::unique_ptr<Database> db;
};

Fixture* F() {
  static Fixture* fixture = new Fixture();
  return fixture;
}

void BM_CascadeDeleteFanout(benchmark::State& state) {
  Fixture* fixture = F();
  Database* db = fixture->db.get();
  const int64_t fanout = state.range(0);
  int64_t parent_id = 1 + fanout * 100000;
  for (auto _ : state) {
    state.PauseTiming();
    std::string pkey = fixture->SeedFlat(parent_id, fanout);
    state.ResumeTiming();
    Transaction* txn = db->Begin();
    BenchCheck(db->Delete(txn, "parent", Slice(pkey)), "cascade delete");
    BenchCheck(db->Commit(txn), "commit");
    ++parent_id;
  }
  state.counters["cascaded_deletes"] = static_cast<double>(fanout);
  state.SetItemsProcessed(state.iterations() * (1 + fanout));
}
BENCHMARK(BM_CascadeDeleteFanout)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_CascadeDeleteTwoLevels(benchmark::State& state) {
  Fixture* fixture = F();
  Database* db = fixture->db.get();
  int64_t parent_id = 900000000;
  for (auto _ : state) {
    state.PauseTiming();
    std::string pkey = fixture->SeedChain(parent_id);
    state.ResumeTiming();
    Transaction* txn = db->Begin();
    BenchCheck(db->Delete(txn, "parent", Slice(pkey)), "cascade delete");
    BenchCheck(db->Commit(txn), "commit");
    ++parent_id;
  }
  state.counters["cascaded_deletes"] = 110;  // 10 children + 100 leaves
  state.SetItemsProcessed(state.iterations() * 111);
}
BENCHMARK(BM_CascadeDeleteTwoLevels)->Unit(benchmark::kMillisecond);

// Abort after the cascade: the whole subtree must be restored by the
// common log.
void BM_CascadeDeleteThenAbort(benchmark::State& state) {
  Fixture* fixture = F();
  Database* db = fixture->db.get();
  // One reusable chain (abort restores it every iteration).
  static std::string pkey = fixture->SeedChain(950000000);
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    BenchCheck(db->Delete(txn, "parent", Slice(pkey)), "cascade delete");
    BenchCheck(db->Abort(txn), "abort");
  }
  state.SetItemsProcessed(state.iterations() * 111 * 2);  // do + undo
}
BENCHMARK(BM_CascadeDeleteThenAbort)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("cascade")
