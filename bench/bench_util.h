// Shared benchmark helpers.

#ifndef DMX_BENCH_BENCH_UTIL_H_
#define DMX_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>

#include "src/core/database.h"

namespace dmx {
namespace bench {

/// Scoped temporary directory, recursively removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag = "b");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A database in a temp dir with a standard benchmark relation:
///   bench(id INT NOT NULL, category STRING, score DOUBLE, payload STRING)
/// loaded with `rows` rows: id = 0..rows-1, category = "c<id%100>",
/// score = id * 0.5, payload = 64 chars.
class ScopedDb {
 public:
  /// `worker_threads` follows DatabaseOptions::worker_threads (0 =
  /// hardware concurrency; 1 keeps every scan serial).
  explicit ScopedDb(uint64_t rows = 0, const std::string& sm = "heap",
                    size_t buffer_pool_pages = 2048,
                    size_t worker_threads = 1);

  Database* db() { return db_.get(); }
  const RelationDescriptor* desc() const { return desc_; }
  static Schema BenchSchema();

  /// Insert rows [begin, end) into "bench" in one transaction.
  void Load(uint64_t begin, uint64_t end);

 private:
  TempDir dir_;
  std::unique_ptr<Database> db_;
  const RelationDescriptor* desc_ = nullptr;
};

/// Abort-on-error helper for setup code.
void BenchCheck(const Status& s, const char* what);

/// Unified benchmark entry point: runs the registered benchmarks with the
/// normal console output, then writes one JSON document
/// (`BENCH_<suite>.json`, into $DMX_BENCH_JSON_DIR or the working
/// directory) holding every benchmark's name, iteration count, and ns/op,
/// plus the process-wide metrics snapshot. The regression gate in CI
/// compares these files against bench/baseline.json.
int BenchMain(int argc, char** argv, const char* suite);

}  // namespace bench
}  // namespace dmx

/// Replaces BENCHMARK_MAIN(): same flags, plus the JSON emission above.
#define DMX_BENCH_MAIN(suite)                          \
  int main(int argc, char** argv) {                    \
    return ::dmx::bench::BenchMain(argc, argv, suite); \
  }

#endif  // DMX_BENCH_BENCH_UTIL_H_
