// E9 — alternative storage methods. The intro motivates "main memory data
// storage methods for selected high traffic relations"; the architecture
// makes heap, B-tree-organized, main-memory, and temporary storage
// interchangeable behind the same generic operations.
//
// Measures insert, point fetch (by record key), and full scan across the
// four storage methods on identical data. Expected shape: mainmemory/temp
// fastest for point access and insert; heap competitive for bulk scan;
// btree pays ordering costs on insert but scans in key order.

#include <benchmark/benchmark.h>

#include <atomic>
#include <map>

#include "bench/bench_util.h"
#include "src/sm/key_codec.h"

namespace dmx {
namespace bench {
namespace {

constexpr uint64_t kRows = 10000;

struct SmFixture {
  explicit SmFixture(const std::string& sm) : holder(0, sm) {
    holder.Load(0, kRows);
    Database* db = holder.db();
    const RelationDescriptor* desc = holder.desc();
    // Collect record keys for point fetches.
    Transaction* txn = db->Begin();
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(),
                              ScanSpec{}, &scan),
               "scan");
    ScanItem item;
    while (scan->Next(&item).ok()) keys.push_back(item.record_key);
    scan.reset();
    BenchCheck(db->Commit(txn), "commit");
  }
  ScopedDb holder;
  std::vector<std::string> keys;
};

const char* SmName(int arg) {
  switch (arg) {
    case 0: return "heap";
    case 1: return "temp";
    case 2: return "mainmemory";
    default: return "btree";
  }
}

SmFixture* F(int arg) {
  static std::map<int, std::unique_ptr<SmFixture>>* fixtures =
      new std::map<int, std::unique_ptr<SmFixture>>();
  auto it = fixtures->find(arg);
  if (it != fixtures->end()) return it->second.get();
  auto fixture = std::make_unique<SmFixture>(SmName(arg));
  SmFixture* raw = fixture.get();
  (*fixtures)[arg] = std::move(fixture);
  return raw;
}

void BM_Insert(benchmark::State& state) {
  SmFixture* fixture = F(static_cast<int>(state.range(0)));
  state.SetLabel(SmName(static_cast<int>(state.range(0))));
  Database* db = fixture->holder.db();
  static std::atomic<int64_t> g_id{1000000};  // never reused across reruns
  // Batch 100 inserts per transaction so the commit's log force does not
  // dominate and the storage methods' own costs are visible.
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    for (int i = 0; i < 100; ++i) {
      BenchCheck(db->Insert(txn, "bench",
                            {Value::Int(g_id.fetch_add(1)), Value::String("c"),
                             Value::Double(1.0), Value::String("p")}),
                 "insert");
    }
    BenchCheck(db->Commit(txn), "commit");
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_Insert)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_PointFetch(benchmark::State& state) {
  SmFixture* fixture = F(static_cast<int>(state.range(0)));
  state.SetLabel(SmName(static_cast<int>(state.range(0))));
  Database* db = fixture->holder.db();
  const RelationDescriptor* desc = fixture->holder.desc();
  size_t i = 0;
  // 100 fetches per transaction (see BM_Insert).
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    for (int k = 0; k < 100; ++k) {
      std::string record;
      BenchCheck(db->FetchRecord(
                     txn, desc,
                     Slice(fixture->keys[i % fixture->keys.size()]),
                     &record),
                 "fetch");
      benchmark::DoNotOptimize(record);
      i += 7919;  // pseudo-random walk
    }
    BenchCheck(db->Commit(txn), "commit");
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_PointFetch)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_FullScan(benchmark::State& state) {
  SmFixture* fixture = F(static_cast<int>(state.range(0)));
  state.SetLabel(SmName(static_cast<int>(state.range(0))));
  Database* db = fixture->holder.db();
  const RelationDescriptor* desc = fixture->holder.desc();
  uint64_t count = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(),
                              ScanSpec{}, &scan),
               "scan");
    count = 0;
    ScanItem item;
    while (scan->Next(&item).ok()) ++count;
    scan.reset();
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["rows"] = static_cast<double>(count);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(count));
}
BENCHMARK(BM_FullScan)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// Keyed range scan: only the btree storage method can seek; others scan
// with a pushed filter. (id in [4000, 4100))
void BM_KeyRange(benchmark::State& state) {
  SmFixture* fixture = F(static_cast<int>(state.range(0)));
  state.SetLabel(SmName(static_cast<int>(state.range(0))));
  Database* db = fixture->holder.db();
  const RelationDescriptor* desc = fixture->holder.desc();
  auto pred = Expr::And(Expr::Cmp(ExprOp::kGe, 0, Value::Int(4000)),
                        Expr::Cmp(ExprOp::kLt, 0, Value::Int(4100)));
  uint64_t count = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    ScanSpec spec;
    spec.filter = pred;
    if (std::string(SmName(static_cast<int>(state.range(0)))) == "btree") {
      // The btree SM can also seek directly to the low key.
      std::string low;
      BenchCheck(EncodeValueKey({Value::Int(4000)}, &low), "key");
      spec.low_key = low;
    }
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(), spec,
                              &scan),
               "scan");
    count = 0;
    ScanItem item;
    while (scan->Next(&item).ok()) {
      ++count;
      if (count >= 100) break;  // btree path would otherwise read to end
    }
    scan.reset();
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["rows"] = static_cast<double>(count);
}
BENCHMARK(BM_KeyRange)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("storage_methods")
