// Parallel scan throughput: a 100k-row heap scan with a selective
// predicate (category = 'c7', ~1% of rows), serial vs the ParallelScanSource
// exchange at 1/2/4/8 workers, plus the partial-aggregate pushdown. The
// speedup target only materializes on multi-core hardware; on a single
// core the parallel numbers measure the exchange overhead instead (see
// EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/query/executor.h"
#include "src/query/planner.h"

namespace dmx {
namespace bench {
namespace {

constexpr uint64_t kRows = 100000;

ScopedDb* F() {
  static ScopedDb* fixture =
      new ScopedDb(kRows, "heap", /*buffer_pool_pages=*/4096,
                   /*worker_threads=*/8);
  return fixture;
}

ExprPtr SelectivePredicate() {
  // category (field 1) = 'c7' — 1% of rows.
  return Expr::Cmp(ExprOp::kEq, 1, Value::String("c7"));
}

std::shared_ptr<BoundPlan> MakeScanPlan() {
  auto plan = std::make_shared<BoundPlan>();
  plan->relation = *F()->desc();
  plan->access.path = AccessPathId::StorageMethod();
  plan->access.spec.filter = SelectivePredicate();
  return plan;
}

void BM_SerialScan(benchmark::State& state) {
  Database* db = F()->db();
  const RelationDescriptor* desc = F()->desc();
  uint64_t n = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    ScanSpec spec;
    spec.filter = SelectivePredicate();
    std::unique_ptr<Scan> scan;
    BenchCheck(db->OpenScanOn(txn, desc, AccessPathId::StorageMethod(),
                              spec, &scan),
               "scan");
    n = 0;
    ScanItem item;
    while (scan->Next(&item).ok()) ++n;
    scan.reset();
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["rows"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRows));
}
BENCHMARK(BM_SerialScan)->Unit(benchmark::kMillisecond);

void BM_ParallelScan(benchmark::State& state) {
  Database* db = F()->db();
  const int workers = static_cast<int>(state.range(0));
  auto plan = MakeScanPlan();
  uint64_t n = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    ParallelScanSource source(db, txn, plan.get(), workers);
    n = 0;
    Row row;
    while (source.Next(&row).ok()) ++n;
    BenchCheck(db->Commit(txn), "commit");
  }
  state.counters["rows"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRows));
}
BENCHMARK(BM_ParallelScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Aggregation pushed below the exchange: workers emit one partial row each.
void BM_ParallelSum(benchmark::State& state) {
  Database* db = F()->db();
  const int workers = static_cast<int>(state.range(0));
  auto plan = MakeScanPlan();
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    auto source =
        std::make_unique<ParallelScanSource>(db, txn, plan.get(), workers);
    source->EnablePartialAggregate(AggKind::kSum, /*column=*/2);
    ParallelAggregateMergeSource merge(std::move(source), AggKind::kSum);
    Row row;
    BenchCheck(merge.Next(&row), "merge");
    benchmark::DoNotOptimize(row.values[0].AsDouble());
    BenchCheck(db->Commit(txn), "commit");
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRows));
}
BENCHMARK(BM_ParallelSum)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("parallel_scan")
