// Fault-free overhead of the robustness machinery: CRC32C throughput
// (hardware vs software), the per-page checksum cost on PageFile
// read/write, WAL frame checksumming on append, and the end-to-end
// durable-commit path. Everything here runs on the default Env with no
// faults injected — the numbers are the price paid on the happy path.

#include <benchmark/benchmark.h>

#include <cstring>
#include <random>
#include <string>

#include "bench/bench_util.h"
#include "src/storage/page_file.h"
#include "src/util/crc32c.h"
#include "src/wal/log_manager.h"

namespace dmx {
namespace bench {
namespace {

std::string RandomBuffer(size_t n) {
  std::mt19937_64 rng(42);
  std::string buf(n, '\0');
  for (char& c : buf) c = static_cast<char>(rng());
  return buf;
}

void BM_Crc32c(benchmark::State& state) {
  const std::string buf = RandomBuffer(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  state.SetLabel(Crc32cHardwareAccelerated() ? "sse4.2" : "software");
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(8192)->Arg(65536);

void BM_Crc32cSoftware(benchmark::State& state) {
  const std::string buf = RandomBuffer(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        internal::Crc32cExtendSoftware(0, buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32cSoftware)->Arg(8192)->Arg(65536);

// One page write + read back: two CRC computations plus the pwrite/pread
// through the Env, no sync.
void BM_PageWriteReadRoundtrip(benchmark::State& state) {
  TempDir dir("ffpage");
  PageFile pf;
  BenchCheck(pf.Open(dir.path() + "/db", true), "open");
  PageId id;
  BenchCheck(pf.Allocate(&id), "alloc");
  Page p;
  memset(p.data, 0x5A, kPageSize);
  Page q;
  for (auto _ : state) {
    BenchCheck(pf.Write(id, p), "write");
    BenchCheck(pf.Read(id, &q), "read");
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(kPageSize));
}
BENCHMARK(BM_PageWriteReadRoundtrip);

// WAL append only: record encode + frame CRC into the in-memory buffer.
void BM_WalAppend(benchmark::State& state) {
  TempDir dir("ffwal");
  LogManager log;
  BenchCheck(log.Open(dir.path() + "/wal", true), "open");
  const std::string payload = RandomBuffer(128);
  uint64_t n = 0;
  for (auto _ : state) {
    LogRecord rec = MakeUpdateRecord(1, ExtKind::kStorageMethod, 0, 1,
                                     payload);
    BenchCheck(log.Append(&rec), "append");
    if (++n % 4096 == 0) {
      state.PauseTiming();
      BenchCheck(log.FlushAll(), "flush");
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WalAppend);

// Durable WAL append: one record, one flush, one fsync per iteration.
void BM_WalAppendFlushSync(benchmark::State& state) {
  TempDir dir("ffwals");
  LogManager log;
  BenchCheck(log.Open(dir.path() + "/wal", true), "open");
  const std::string payload = RandomBuffer(128);
  for (auto _ : state) {
    LogRecord rec = MakeUpdateRecord(1, ExtKind::kStorageMethod, 0, 1,
                                     payload);
    BenchCheck(log.Append(&rec), "append");
    BenchCheck(log.FlushAll(), "flush");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WalAppendFlushSync);

// End-to-end: insert one row and commit (commit forces the checksummed log
// to disk). The full fault-free tax of the robustness layer in context.
void BM_InsertCommitDurable(benchmark::State& state) {
  ScopedDb sdb(0);
  int64_t id = 0;
  for (auto _ : state) {
    Transaction* txn = sdb.db()->Begin();
    BenchCheck(sdb.db()->Insert(txn, "bench",
                                {Value::Int(id), Value::String("c1"),
                                 Value::Double(0.5),
                                 Value::String(std::string(64, 'p'))}),
               "insert");
    BenchCheck(sdb.db()->Commit(txn), "commit");
    ++id;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertCommitDurable);

}  // namespace
}  // namespace bench
}  // namespace dmx

DMX_BENCH_MAIN("faultfree_overhead")
