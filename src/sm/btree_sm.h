// "btree" storage method: records stored in the leaves of a B-tree, keyed
// by designated fields (the paper's example of an alternative recoverable
// storage method: "the records of the relation ... may be stored in the
// leaves of a B-tree index").
//
// DDL attributes: key=<col>[,<col>...] — the key fields; they must be
// unique across records (the record key must identify the record).
//
// Descriptor: fixed32 anchor page | varint field count | varint fields...
// Log payloads are logical ('I' key rec / 'D' key rec / 'U' old-key old
// new-key new); undo/redo replay them idempotently through the tree.

#ifndef DMX_SM_BTREE_SM_H_
#define DMX_SM_BTREE_SM_H_

#include "src/core/extension.h"

namespace dmx {

const SmOps& BTreeStorageMethodOps();

/// Parse a comma-separated column list into field indexes (shared with the
/// attachments that take key-field attributes).
Status ParseFieldList(const Schema& schema, const std::string& list,
                      std::vector<int>* fields);

}  // namespace dmx

#endif  // DMX_SM_BTREE_SM_H_
