// Heap storage method: records in a chain of slotted pages; record key =
// RID. The default recoverable relation storage method (the analogue of the
// paper's sequential disk-file storage).
//
// Descriptor encoding: fixed32 first-page id (the chain anchor; immutable
// for the life of the relation).
//
// Log payloads (ExtKind::kStorageMethod):
//   'I' rid[6] link_prev[4] record          — insert (link_prev != 0 when a
//                                             fresh page was chained on)
//   'D' rid[6] old_record                   — delete
//   'U' rid[6] varlen(old) varlen(new)      — in-place update
// A growing update that no longer fits its page is executed (and logged)
// as delete + insert, changing the record key, as the architecture allows.

#ifndef DMX_SM_HEAP_H_
#define DMX_SM_HEAP_H_

#include "src/core/extension.h"

namespace dmx {

/// Entry-point table of the heap storage method (registered by
/// RegisterBuiltinExtensions as "heap").
const SmOps& HeapStorageMethodOps();

}  // namespace dmx

#endif  // DMX_SM_HEAP_H_
