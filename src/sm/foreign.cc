#include "src/sm/foreign.h"

#include <map>

#include "src/core/costing.h"
#include "src/core/database.h"
#include "src/util/coding.h"

namespace dmx {

namespace {

Mutex g_servers_mu;
std::map<std::string, Database*>& Servers() {
  static auto* servers = new std::map<std::string, Database*>();
  return *servers;
}

}  // namespace

void RegisterForeignServer(const std::string& name, Database* db) {
  MutexLock lock(&g_servers_mu);
  Servers()[name] = db;
}

void UnregisterForeignServer(const std::string& name) {
  MutexLock lock(&g_servers_mu);
  Servers().erase(name);
}

Database* FindForeignServer(const std::string& name) {
  MutexLock lock(&g_servers_mu);
  auto it = Servers().find(name);
  return it == Servers().end() ? nullptr : it->second;
}

namespace {

struct ForeignState : public ExtState {
  std::string server;
  std::string relation;
};

ForeignState* StateOf(SmContext& ctx) {
  return static_cast<ForeignState*>(ctx.state);
}

Status DecodeDesc(const Slice& sm_desc, std::string* server,
                  std::string* relation) {
  Slice in = sm_desc;
  Slice s, r;
  if (!GetLengthPrefixedSlice(&in, &s) || !GetLengthPrefixedSlice(&in, &r)) {
    return Status::Corruption("foreign descriptor");
  }
  *server = s.ToString();
  *relation = r.ToString();
  return Status::OK();
}

// Resolve the foreign database and its relation descriptor.
Status Resolve(ForeignState* st, Database** fdb,
               const RelationDescriptor** fdesc) {
  *fdb = FindForeignServer(st->server);
  if (*fdb == nullptr) {
    // An unreachable foreign server is transient-fatal-to-op: the local
    // environment is healthy, so this IOError is deliberately
    // non-retryable and never trips degraded mode.
    return Status::IOError(  // dmx-lint: allow-raw-ioerror (no Env beneath)
        "foreign server '" + st->server + "' unreachable");
  }
  return (*fdb)->FindRelation(st->relation, fdesc);
}

Status ForeignValidate(const Schema& schema, const AttrList& attrs,
                       std::string* sm_desc) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({"server", "relation"}));
  if (!attrs.Has("server") || !attrs.Has("relation")) {
    return Status::InvalidArgument(
        "foreign storage requires server=<name>, relation=<name>");
  }
  Database* fdb = FindForeignServer(attrs.Get("server"));
  if (fdb == nullptr) {
    return Status::InvalidArgument("unknown foreign server '" +
                                   attrs.Get("server") + "'");
  }
  const RelationDescriptor* fdesc;
  DMX_RETURN_IF_ERROR(fdb->FindRelation(attrs.Get("relation"), &fdesc));
  if (!(fdesc->schema == schema)) {
    return Status::InvalidArgument(
        "local schema does not match the foreign relation's schema");
  }
  sm_desc->clear();
  PutLengthPrefixedSlice(sm_desc, attrs.Get("server"));
  PutLengthPrefixedSlice(sm_desc, attrs.Get("relation"));
  return Status::OK();
}

Status ForeignCreate(SmContext&, std::string*) { return Status::OK(); }
Status ForeignDrop(SmContext&) { return Status::OK(); }  // foreign data stays

Status ForeignOpen(SmContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<ForeignState>();
  DMX_RETURN_IF_ERROR(
      DecodeDesc(Slice(ctx.desc->sm_desc), &st->server, &st->relation));
  *state = std::move(st);
  return Status::OK();
}

Status ForeignLog(SmContext& ctx, std::string payload) {
  LogRecord rec = MakeUpdateRecord(
      ctx.txn != nullptr ? ctx.txn->id() : kInvalidTxnId,
      ExtKind::kStorageMethod, ctx.desc->sm_id, ctx.desc->id,
      std::move(payload));
  rec.prev_lsn = ctx.txn != nullptr ? ctx.txn->last_lsn() : kInvalidLsn;
  DMX_RETURN_IF_ERROR(ctx.db->log()->Append(&rec));
  if (ctx.txn != nullptr) ctx.txn->set_last_lsn(rec.lsn);
  return Status::OK();
}

// Run `fn` in an auto-commit foreign transaction.
template <typename Fn>
Status WithForeignTxn(Database* fdb, Fn&& fn) {
  Transaction* ftxn = fdb->Begin();
  Status s = fn(ftxn);
  if (s.ok()) return fdb->Commit(ftxn);
  (void)fdb->Abort(ftxn);  // the operation's own failure takes precedence
  return s;
}

Status ForeignInsert(SmContext& ctx, const Slice& record,
                     std::string* record_key) {
  ForeignState* st = StateOf(ctx);
  Database* fdb;
  const RelationDescriptor* fdesc;
  DMX_RETURN_IF_ERROR(Resolve(st, &fdb, &fdesc));
  std::string fkey;
  DMX_RETURN_IF_ERROR(WithForeignTxn(fdb, [&](Transaction* ftxn) {
    return fdb->InsertRecord(ftxn, fdesc, record, &fkey);
  }));
  std::string payload = "I";
  PutLengthPrefixedSlice(&payload, fkey);
  payload.append(record.data(), record.size());
  DMX_RETURN_IF_ERROR(ForeignLog(ctx, std::move(payload)));
  *record_key = std::move(fkey);
  return Status::OK();
}

Status ForeignUpdate(SmContext& ctx, const Slice& record_key,
                     const Slice& old_record, const Slice& new_record,
                     std::string* new_key) {
  ForeignState* st = StateOf(ctx);
  Database* fdb;
  const RelationDescriptor* fdesc;
  DMX_RETURN_IF_ERROR(Resolve(st, &fdb, &fdesc));
  std::string nkey;
  DMX_RETURN_IF_ERROR(WithForeignTxn(fdb, [&](Transaction* ftxn) {
    return fdb->UpdateRecord(ftxn, fdesc, record_key, new_record, &nkey);
  }));
  std::string payload = "U";
  PutLengthPrefixedSlice(&payload, record_key);
  PutLengthPrefixedSlice(&payload, old_record);
  PutLengthPrefixedSlice(&payload, nkey);
  PutLengthPrefixedSlice(&payload, new_record);
  DMX_RETURN_IF_ERROR(ForeignLog(ctx, std::move(payload)));
  *new_key = std::move(nkey);
  return Status::OK();
}

Status ForeignErase(SmContext& ctx, const Slice& record_key,
                    const Slice& old_record) {
  ForeignState* st = StateOf(ctx);
  Database* fdb;
  const RelationDescriptor* fdesc;
  DMX_RETURN_IF_ERROR(Resolve(st, &fdb, &fdesc));
  DMX_RETURN_IF_ERROR(WithForeignTxn(fdb, [&](Transaction* ftxn) {
    return fdb->DeleteRecord(ftxn, fdesc, record_key);
  }));
  std::string payload = "D";
  PutLengthPrefixedSlice(&payload, record_key);
  payload.append(old_record.data(), old_record.size());
  return ForeignLog(ctx, std::move(payload));
}

Status ForeignFetch(SmContext& ctx, const Slice& record_key,
                    std::string* record) {
  ForeignState* st = StateOf(ctx);
  Database* fdb;
  const RelationDescriptor* fdesc;
  DMX_RETURN_IF_ERROR(Resolve(st, &fdb, &fdesc));
  return WithForeignTxn(fdb, [&](Transaction* ftxn) {
    return fdb->FetchRecord(ftxn, fdesc, record_key, record);
  });
}

// A scan holds its own foreign transaction open for its lifetime.
class ForeignScan : public Scan {
 public:
  ForeignScan(Database* fdb, Transaction* ftxn, std::unique_ptr<Scan> inner)
      : fdb_(fdb), ftxn_(ftxn), inner_(std::move(inner)) {}

  ~ForeignScan() override {
    inner_.reset();  // deregister before the foreign txn ends
    // Read-only foreign txn; a commit failure is unreportable here.
    (void)fdb_->Commit(ftxn_);
  }

  Status Next(ScanItem* out) override { return inner_->Next(out); }
  Status SavePosition(std::string* out) const override {
    return inner_->SavePosition(out);
  }
  Status RestorePosition(const Slice& pos) override {
    return inner_->RestorePosition(pos);
  }

 private:
  Database* fdb_;
  Transaction* ftxn_;
  std::unique_ptr<Scan> inner_;
};

Status ForeignOpenScan(SmContext& ctx, const ScanSpec& spec,
                       std::unique_ptr<Scan>* scan) {
  ForeignState* st = StateOf(ctx);
  Database* fdb;
  const RelationDescriptor* fdesc;
  DMX_RETURN_IF_ERROR(Resolve(st, &fdb, &fdesc));
  Transaction* ftxn = fdb->Begin();
  std::unique_ptr<Scan> inner;
  Status s = fdb->OpenScanOn(ftxn, fdesc, AccessPathId::StorageMethod(),
                             spec, &inner);
  if (!s.ok()) {
    (void)fdb->Abort(ftxn);  // the open failure takes precedence
    return s;
  }
  *scan = std::make_unique<ForeignScan>(fdb, ftxn, std::move(inner));
  return Status::OK();
}

Status ForeignCost(SmContext& ctx, const std::vector<ExprPtr>& predicates,
                   AccessCost* out) {
  ForeignState* st = StateOf(ctx);
  Database* fdb;
  const RelationDescriptor* fdesc;
  DMX_RETURN_IF_ERROR(Resolve(st, &fdb, &fdesc));
  uint64_t n = 0;
  Transaction* ftxn = fdb->Begin();
  // Best-effort: an unreachable count leaves n = 0, which only skews the
  // cost estimate — never correctness.
  (void)fdb->CountRecords(ftxn, fdesc, &n);
  (void)fdb->Commit(ftxn);  // read-only txn; nothing to undo
  out->usable = true;
  // Remote accesses are charged a per-record messaging premium.
  out->io_cost = static_cast<double>(n) * 0.1;
  out->cpu_cost = static_cast<double>(n) * 2.0;
  out->selectivity = EstimateSelectivity(predicates);
  out->handled_predicates.clear();
  for (size_t i = 0; i < predicates.size(); ++i) {
    out->handled_predicates.push_back(static_cast<int>(i));
  }
  return Status::OK();
}

Status ForeignCount(SmContext& ctx, uint64_t* records) {
  ForeignState* st = StateOf(ctx);
  Database* fdb;
  const RelationDescriptor* fdesc;
  DMX_RETURN_IF_ERROR(Resolve(st, &fdb, &fdesc));
  Transaction* ftxn = fdb->Begin();
  Status s = fdb->CountRecords(ftxn, fdesc, records);
  Status c = fdb->Commit(ftxn);
  return s.ok() ? c : s;
}

// Undo = compensating operation against the foreign database. Redo is a
// no-op: the foreign database has its own durability.
Status ForeignUndo(SmContext& ctx, const LogRecord& rec, Lsn) {
  ForeignState* st = StateOf(ctx);
  Database* fdb;
  const RelationDescriptor* fdesc;
  Status rs = Resolve(st, &fdb, &fdesc);
  if (!rs.ok()) return Status::OK();  // server gone: nothing to compensate
  Slice in(rec.payload);
  if (in.empty()) return Status::Corruption("foreign payload");
  char op = in[0];
  in.remove_prefix(1);
  Slice key;
  if (!GetLengthPrefixedSlice(&in, &key)) {
    return Status::Corruption("foreign key");
  }
  switch (op) {
    case 'I':
      return WithForeignTxn(fdb, [&](Transaction* ftxn) {
        Status s = fdb->DeleteRecord(ftxn, fdesc, key);
        return s.IsNotFound() ? Status::OK() : s;
      });
    case 'D':
      return WithForeignTxn(fdb, [&](Transaction* ftxn) {
        std::string ignored;
        return fdb->InsertRecord(ftxn, fdesc, in, &ignored);
      });
    case 'U': {
      Slice old_rec, nkey, new_rec;
      if (!GetLengthPrefixedSlice(&in, &old_rec) ||
          !GetLengthPrefixedSlice(&in, &nkey) ||
          !GetLengthPrefixedSlice(&in, &new_rec)) {
        return Status::Corruption("foreign update payload");
      }
      return WithForeignTxn(fdb, [&](Transaction* ftxn) {
        std::string ignored;
        return fdb->UpdateRecord(ftxn, fdesc, nkey, old_rec, &ignored);
      });
    }
    default:
      return Status::Corruption("foreign op");
  }
}

Status ForeignRedo(SmContext&, const LogRecord&, Lsn) { return Status::OK(); }

// Consistency sweep: the foreign database owns its own storage, so the
// local structure to check is the binding — server reachable, relation
// present, schemas still in agreement — plus a scan to confirm every
// remote record is actually readable through the link.
Status ForeignVerify(SmContext& ctx, VerifyReport* report) {
  ForeignState* st = StateOf(ctx);
  Database* fdb = FindForeignServer(st->server);
  if (fdb == nullptr) {
    report->Problem("foreign server '" + st->server + "' unreachable");
    return Status::OK();
  }
  const RelationDescriptor* fdesc;
  Status s = fdb->FindRelation(st->relation, &fdesc);
  if (!s.ok()) {
    report->Problem("foreign relation '" + st->relation +
                    "' missing on server '" + st->server + "'");
    return Status::OK();
  }
  if (!(fdesc->schema == ctx.desc->schema)) {
    report->Problem("schema drift: foreign relation '" + st->relation +
                    "' no longer matches the local schema");
  }
  return WithForeignTxn(fdb, [&](Transaction* ftxn) {
    std::unique_ptr<Scan> scan;
    DMX_RETURN_IF_ERROR(fdb->OpenScanOn(ftxn, fdesc,
                                        AccessPathId::StorageMethod(),
                                        ScanSpec{}, &scan));
    ScanItem item;
    while (true) {
      Status n = scan->Next(&item);
      if (n.IsNotFound()) break;
      if (!n.ok()) {
        report->Problem("foreign scan failed: " + n.ToString());
        break;
      }
      ++report->items;
    }
    return Status::OK();
  });
}

}  // namespace

const SmOps& ForeignStorageMethodOps() {
  static const SmOps ops = [] {
    SmOps o;
    o.name = "foreign";
    o.validate = ForeignValidate;
    o.create = ForeignCreate;
    o.drop = ForeignDrop;
    o.open = ForeignOpen;
    o.insert = ForeignInsert;
    o.update = ForeignUpdate;
    o.erase = ForeignErase;
    o.fetch = ForeignFetch;
    o.open_scan = ForeignOpenScan;
    o.cost = ForeignCost;
    o.undo = ForeignUndo;
    o.redo = ForeignRedo;
    o.count = ForeignCount;
    o.verify = ForeignVerify;
    return o;
  }();
  return ops;
}

}  // namespace dmx
