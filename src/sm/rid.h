// RID: the record key of page-based storage methods — (page, slot),
// encoded big-endian so memcmp order equals physical scan order.

#ifndef DMX_SM_RID_H_
#define DMX_SM_RID_H_

#include <string>

#include "src/util/common.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dmx {

struct Rid {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  std::string Encode() const {
    std::string out(6, '\0');
    out[0] = static_cast<char>(page >> 24);
    out[1] = static_cast<char>(page >> 16);
    out[2] = static_cast<char>(page >> 8);
    out[3] = static_cast<char>(page);
    out[4] = static_cast<char>(slot >> 8);
    out[5] = static_cast<char>(slot);
    return out;
  }

  static Status Decode(const Slice& in, Rid* out) {
    if (in.size() != 6) return Status::InvalidArgument("bad RID length");
    auto b = [&](int i) { return static_cast<uint8_t>(in[i]); };
    out->page = (static_cast<PageId>(b(0)) << 24) |
                (static_cast<PageId>(b(1)) << 16) |
                (static_cast<PageId>(b(2)) << 8) | b(3);
    out->slot = static_cast<uint16_t>((b(4) << 8) | b(5));
    return Status::OK();
  }

  bool operator==(const Rid& o) const {
    return page == o.page && slot == o.slot;
  }
};

}  // namespace dmx

#endif  // DMX_SM_RID_H_
