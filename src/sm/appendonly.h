// "appendonly" storage method: write-once relation storage standing in for
// the paper's read-only optical-disk "database publishing" motivation (see
// DESIGN.md substitutions). Shares the heap's page format and recovery; the
// generic update and delete operations are rejected with NotSupported —
// the architecture's point being that such restricted storage methods plug
// into the same procedure vectors (compare the paper's remark that
// ENCOMPASS allows alternative relation storage only "with significant
// restrictions (e.g., no updates)").

#ifndef DMX_SM_APPENDONLY_H_
#define DMX_SM_APPENDONLY_H_

#include "src/core/extension.h"

namespace dmx {

const SmOps& AppendOnlyStorageMethodOps();

}  // namespace dmx

#endif  // DMX_SM_APPENDONLY_H_
