// Memory-resident storage methods.
//
//  * "temp" — temporary relations (the base system's storage method with
//    internal identifier 1, per the paper's example). Not logged, not
//    recoverable: contents live only as long as the process, and survive
//    transaction abort (classic System-R temporary-relation semantics).
//
//  * "mainmemory" — the paper's intro motivation: "main memory data storage
//    methods for selected high traffic relations". Fully transactional:
//    operations are logged logically through the common log; state is
//    reconstructed by restart redo replaying the log into the empty table
//    (an extension exercising its latitude to choose a recovery technique).
//
// Record keys are 8-byte big-endian insertion counters, so key-sequential
// order is insertion order.

#ifndef DMX_SM_MEMORY_H_
#define DMX_SM_MEMORY_H_

#include "src/core/extension.h"

namespace dmx {

const SmOps& TempStorageMethodOps();
const SmOps& MainMemoryStorageMethodOps();

}  // namespace dmx

#endif  // DMX_SM_MEMORY_H_
