#include "src/sm/btree_core.h"

#include <algorithm>
#include <cassert>

#include "src/util/coding.h"

namespace dmx {

namespace {

// Node layout after the 8-byte page LSN:
//   [8]      node type: 1 = leaf, 2 = internal
//   [9,11)   entry count (u16)
//   [11,15)  leaf: next-leaf page id; internal: leftmost child page id
//   [15..)   entries
// Leaf entries: varint32 length + composite bytes, sorted ascending.
// Internal entries: varint32 length + separator composite + u32 child;
// child subtree holds composites >= separator (leftmost holds the rest).
constexpr size_t kTypeOff = 8;
constexpr size_t kCountOff = 9;
constexpr size_t kLinkOff = 11;
constexpr size_t kEntriesOff = 15;
constexpr char kLeaf = 1;
constexpr char kInternal = 2;
// Split threshold: rewrite must always fit a page.
constexpr size_t kNodeCapacity = kPageSize - 64;

struct LeafNode {
  PageId next = kInvalidPageId;
  std::vector<std::string> entries;
};

struct InternalNode {
  PageId leftmost = kInvalidPageId;
  std::vector<std::pair<std::string, PageId>> entries;
};

char NodeType(const Page& p) { return p.data[kTypeOff]; }

uint16_t EntryCount(const Page& p) { return DecodeFixed16(p.data + kCountOff); }

PageId NodeLink(const Page& p) { return DecodeFixed32(p.data + kLinkOff); }

Status ParseLeaf(const Page& p, LeafNode* out) {
  out->next = NodeLink(p);
  uint16_t n = EntryCount(p);
  Slice in(p.data + kEntriesOff, kPageSize - kEntriesOff);
  out->entries.clear();
  out->entries.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    Slice e;
    if (!GetLengthPrefixedSlice(&in, &e)) {
      return Status::Corruption("btree leaf entry");
    }
    out->entries.push_back(e.ToString());
  }
  return Status::OK();
}

Status ParseInternal(const Page& p, InternalNode* out) {
  out->leftmost = NodeLink(p);
  uint16_t n = EntryCount(p);
  Slice in(p.data + kEntriesOff, kPageSize - kEntriesOff);
  out->entries.clear();
  out->entries.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    Slice sep;
    if (!GetLengthPrefixedSlice(&in, &sep)) {
      return Status::Corruption("btree internal separator");
    }
    uint32_t child;
    if (!GetFixed32(&in, &child)) {
      return Status::Corruption("btree internal child");
    }
    out->entries.emplace_back(sep.ToString(), child);
  }
  return Status::OK();
}

size_t SerializedLeafSize(const LeafNode& n) {
  size_t s = kEntriesOff;
  for (const auto& e : n.entries) s += 5 + e.size();
  return s;
}

size_t SerializedInternalSize(const InternalNode& n) {
  size_t s = kEntriesOff;
  for (const auto& [sep, child] : n.entries) s += 5 + sep.size() + 4;
  return s;
}

void WriteLeaf(Page* p, const LeafNode& n, Lsn keep_lsn) {
  memset(p->data + 8, 0, kPageSize - 8);
  SetPageLsn(p, keep_lsn);
  p->data[kTypeOff] = kLeaf;
  uint16_t count = static_cast<uint16_t>(n.entries.size());
  memcpy(p->data + kCountOff, &count, 2);
  memcpy(p->data + kLinkOff, &n.next, 4);
  std::string body;
  for (const auto& e : n.entries) PutLengthPrefixedSlice(&body, e);
  assert(kEntriesOff + body.size() <= kPageSize);
  memcpy(p->data + kEntriesOff, body.data(), body.size());
}

void WriteInternal(Page* p, const InternalNode& n, Lsn keep_lsn) {
  memset(p->data + 8, 0, kPageSize - 8);
  SetPageLsn(p, keep_lsn);
  p->data[kTypeOff] = kInternal;
  uint16_t count = static_cast<uint16_t>(n.entries.size());
  memcpy(p->data + kCountOff, &count, 2);
  memcpy(p->data + kLinkOff, &n.leftmost, 4);
  std::string body;
  for (const auto& [sep, child] : n.entries) {
    PutLengthPrefixedSlice(&body, sep);
    PutFixed32(&body, child);
  }
  assert(kEntriesOff + body.size() <= kPageSize);
  memcpy(p->data + kEntriesOff, body.data(), body.size());
}

}  // namespace

std::string BTreeComposeEntry(const Slice& key, const Slice& value) {
  // Escape 0x00 in the key as 0x00 0xFF and terminate with 0x00 0x00 so
  // that composite memcmp order equals (key, value) lexicographic order.
  std::string out;
  out.reserve(key.size() + value.size() + 2);
  for (size_t i = 0; i < key.size(); ++i) {
    out.push_back(key[i]);
    if (key[i] == '\0') out.push_back('\xff');
  }
  out.push_back('\0');
  out.push_back('\0');
  out.append(value.data(), value.size());
  return out;
}

Status BTreeSplitEntry(const Slice& entry, std::string* key,
                       std::string* value) {
  key->clear();
  size_t i = 0;
  while (i < entry.size()) {
    if (entry[i] == '\0') {
      if (i + 1 >= entry.size()) return Status::Corruption("btree composite");
      if (entry[i + 1] == '\0') {
        value->assign(entry.data() + i + 2, entry.size() - i - 2);
        return Status::OK();
      }
      key->push_back('\0');
      i += 2;
    } else {
      key->push_back(entry[i]);
      ++i;
    }
  }
  return Status::Corruption("btree composite unterminated");
}

Status BTree::Create(BufferPool* bp, PageId* anchor) {
  PageId root;
  PageHandle rh;
  DMX_RETURN_IF_ERROR(bp->New(&root, &rh));
  LeafNode empty;
  WriteLeaf(rh.page(), empty, kInvalidLsn);
  rh.MarkDirty();

  PageHandle ah;
  DMX_RETURN_IF_ERROR(bp->New(anchor, &ah));
  memcpy(ah.page()->data + 8, &root, 4);
  ah.MarkDirty();
  return Status::OK();
}

Status BTree::Destroy(BufferPool* bp, PageId anchor) {
  PageId root;
  {
    PageHandle ah;
    DMX_RETURN_IF_ERROR(bp->Fetch(anchor, &ah));
    root = DecodeFixed32(ah.page()->data + 8);
  }
  // Iterative DFS freeing all nodes.
  std::vector<PageId> stack = {root};
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    {
      PageHandle h;
      DMX_RETURN_IF_ERROR(bp->Fetch(id, &h));
      if (NodeType(*h.page()) == kInternal) {
        InternalNode n;
        DMX_RETURN_IF_ERROR(ParseInternal(*h.page(), &n));
        stack.push_back(n.leftmost);
        for (const auto& [sep, child] : n.entries) stack.push_back(child);
      }
    }
    DMX_RETURN_IF_ERROR(bp->FreePage(id));
  }
  return bp->FreePage(anchor);
}

Status BTree::RootPage(PageId* root) {
  PageHandle ah;
  DMX_RETURN_IF_ERROR(bp_->Fetch(anchor_, &ah));
  *root = DecodeFixed32(ah.page()->data + 8);
  return Status::OK();
}

Status BTree::SetRootPage(PageId root) {
  PageHandle ah;
  DMX_RETURN_IF_ERROR(bp_->Fetch(anchor_, &ah));
  memcpy(ah.page()->data + 8, &root, 4);
  ah.MarkDirty();
  return Status::OK();
}

Status BTree::FindLeaf(const Slice& key, const Slice& value, PageId* leaf) {
  std::string composite = BTreeComposeEntry(key, value);
  PageId node;
  DMX_RETURN_IF_ERROR(RootPage(&node));
  while (true) {
    PageHandle h;
    DMX_RETURN_IF_ERROR(bp_->Fetch(node, &h));
    if (NodeType(*h.page()) == kLeaf) {
      *leaf = node;
      return Status::OK();
    }
    InternalNode n;
    DMX_RETURN_IF_ERROR(ParseInternal(*h.page(), &n));
    PageId child = n.leftmost;
    for (const auto& [sep, ch] : n.entries) {
      if (Slice(composite).compare(Slice(sep)) >= 0) {
        child = ch;
      } else {
        break;
      }
    }
    node = child;
  }
}

namespace {

struct SplitResult {
  std::string separator;
  PageId right;
};

}  // namespace

// Recursive insert helper declared here to keep BTree's header small.
namespace {

Status InsertRec(BufferPool* bp, PageId node, const std::string& composite,
                 std::optional<SplitResult>* split, bool* inserted) {
  PageHandle h;
  DMX_RETURN_IF_ERROR(bp->Fetch(node, &h));
  if (NodeType(*h.page()) == kLeaf) {
    LeafNode leaf;
    DMX_RETURN_IF_ERROR(ParseLeaf(*h.page(), &leaf));
    auto it = std::lower_bound(leaf.entries.begin(), leaf.entries.end(),
                               composite);
    if (it != leaf.entries.end() && *it == composite) {
      *inserted = false;  // exact (key,value) already present: idempotent
      return Status::OK();
    }
    leaf.entries.insert(it, composite);
    if (SerializedLeafSize(leaf) > kNodeCapacity && leaf.entries.size() > 1) {
      // Split: right half to a fresh page.
      size_t mid = leaf.entries.size() / 2;
      LeafNode right;
      right.entries.assign(leaf.entries.begin() + mid, leaf.entries.end());
      leaf.entries.resize(mid);
      right.next = leaf.next;
      PageId right_id;
      PageHandle rh;
      DMX_RETURN_IF_ERROR(bp->New(&right_id, &rh));
      leaf.next = right_id;
      WriteLeaf(rh.page(), right, kInvalidLsn);
      rh.MarkDirty();
      *split = SplitResult{right.entries.front(), right_id};
    }
    WriteLeaf(h.page(), leaf, PageLsn(*h.page()));
    h.MarkDirty();
    *inserted = true;
    return Status::OK();
  }

  InternalNode n;
  DMX_RETURN_IF_ERROR(ParseInternal(*h.page(), &n));
  PageId child = n.leftmost;
  size_t child_pos = 0;  // 0 = leftmost, i+1 = entries[i].child
  for (size_t i = 0; i < n.entries.size(); ++i) {
    if (Slice(composite).compare(Slice(n.entries[i].first)) >= 0) {
      child = n.entries[i].second;
      child_pos = i + 1;
    } else {
      break;
    }
  }
  std::optional<SplitResult> child_split;
  DMX_RETURN_IF_ERROR(InsertRec(bp, child, composite, &child_split, inserted));
  if (!child_split.has_value()) return Status::OK();

  n.entries.insert(n.entries.begin() + static_cast<long>(child_pos),
                   {child_split->separator, child_split->right});
  if (SerializedInternalSize(n) > kNodeCapacity && n.entries.size() > 2) {
    size_t mid = n.entries.size() / 2;
    InternalNode right;
    right.leftmost = n.entries[mid].second;
    right.entries.assign(n.entries.begin() + static_cast<long>(mid) + 1,
                         n.entries.end());
    std::string promoted = n.entries[mid].first;
    n.entries.resize(mid);
    PageId right_id;
    PageHandle rh;
    DMX_RETURN_IF_ERROR(bp->New(&right_id, &rh));
    WriteInternal(rh.page(), right, kInvalidLsn);
    rh.MarkDirty();
    *split = SplitResult{std::move(promoted), right_id};
  }
  WriteInternal(h.page(), n, PageLsn(*h.page()));
  h.MarkDirty();
  return Status::OK();
}

}  // namespace

Status BTree::Insert(const Slice& key, const Slice& value, bool unique) {
  std::string composite = BTreeComposeEntry(key, value);
  if (composite.size() > kPageSize / 8) {
    return Status::InvalidArgument("btree entry too large");
  }
  if (unique) {
    // A duplicate (key, other-value) may live in a different leaf than the
    // one the full composite routes to, so uniqueness is checked by key.
    std::vector<std::string> existing;
    DMX_RETURN_IF_ERROR(Lookup(key, &existing));
    for (const std::string& v : existing) {
      if (Slice(v) != value) {
        return Status::Constraint("duplicate key in unique index");
      }
    }
  }
  PageId root;
  DMX_RETURN_IF_ERROR(RootPage(&root));
  std::optional<SplitResult> split;
  bool inserted = false;
  DMX_RETURN_IF_ERROR(InsertRec(bp_, root, composite, &split, &inserted));
  if (split.has_value()) {
    // Grow a new root.
    InternalNode new_root;
    new_root.leftmost = root;
    new_root.entries.emplace_back(split->separator, split->right);
    PageId new_root_id;
    PageHandle h;
    DMX_RETURN_IF_ERROR(bp_->New(&new_root_id, &h));
    WriteInternal(h.page(), new_root, kInvalidLsn);
    h.MarkDirty();
    DMX_RETURN_IF_ERROR(SetRootPage(new_root_id));
  }
  return Status::OK();
}

Status BTree::Remove(const Slice& key, const Slice& value, bool idempotent) {
  std::string composite = BTreeComposeEntry(key, value);
  PageId leaf_id;
  DMX_RETURN_IF_ERROR(FindLeaf(key, value, &leaf_id));
  PageHandle h;
  DMX_RETURN_IF_ERROR(bp_->Fetch(leaf_id, &h));
  LeafNode leaf;
  DMX_RETURN_IF_ERROR(ParseLeaf(*h.page(), &leaf));
  auto it = std::lower_bound(leaf.entries.begin(), leaf.entries.end(),
                             composite);
  if (it == leaf.entries.end() || *it != composite) {
    return idempotent ? Status::OK()
                      : Status::NotFound("btree entry absent");
  }
  leaf.entries.erase(it);
  WriteLeaf(h.page(), leaf, PageLsn(*h.page()));
  h.MarkDirty();
  return Status::OK();
}

Status BTree::Lookup(const Slice& key, std::vector<std::string>* values) {
  values->clear();
  std::unique_ptr<BTreeIterator> it;
  DMX_RETURN_IF_ERROR(
      NewIterator(&it, BTreeComposeEntry(key, Slice()), true));
  // The iterator position composite(key,"") sorts before all (key, v>"")
  // and any equal entry (key,"") itself; use inclusive start.
  std::string k, v;
  while (true) {
    Status s = it->Next(&k, &v);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    if (Slice(k) != key) break;
    values->push_back(v);
  }
  return Status::OK();
}

Status BTree::Contains(const Slice& key, bool* found) {
  std::vector<std::string> values;
  DMX_RETURN_IF_ERROR(Lookup(key, &values));
  *found = !values.empty();
  return Status::OK();
}

Status BTree::NewIterator(std::unique_ptr<BTreeIterator>* it,
                          const std::optional<std::string>& low,
                          bool low_inclusive) {
  std::string pos = low.value_or("");
  // "Inclusive" means an entry equal to pos may be returned.
  *it = std::make_unique<BTreeIterator>(this, std::move(pos),
                                        /*position_exclusive=*/!low_inclusive);
  return Status::OK();
}

Status BTree::Count(uint64_t* n) {
  *n = 0;
  PageId node;
  DMX_RETURN_IF_ERROR(RootPage(&node));
  // Descend to the leftmost leaf.
  while (true) {
    PageHandle h;
    DMX_RETURN_IF_ERROR(bp_->Fetch(node, &h));
    if (NodeType(*h.page()) == kLeaf) break;
    InternalNode in;
    DMX_RETURN_IF_ERROR(ParseInternal(*h.page(), &in));
    node = in.leftmost;
  }
  while (node != kInvalidPageId) {
    PageHandle h;
    DMX_RETURN_IF_ERROR(bp_->Fetch(node, &h));
    *n += EntryCount(*h.page());
    node = NodeLink(*h.page());
  }
  return Status::OK();
}

Status BTree::LeafPages(uint64_t* n) {
  *n = 0;
  PageId node;
  DMX_RETURN_IF_ERROR(RootPage(&node));
  while (true) {
    PageHandle h;
    DMX_RETURN_IF_ERROR(bp_->Fetch(node, &h));
    if (NodeType(*h.page()) == kLeaf) break;
    InternalNode in;
    DMX_RETURN_IF_ERROR(ParseInternal(*h.page(), &in));
    node = in.leftmost;
  }
  while (node != kInvalidPageId) {
    PageHandle h;
    DMX_RETURN_IF_ERROR(bp_->Fetch(node, &h));
    ++*n;
    node = NodeLink(*h.page());
  }
  return Status::OK();
}

Status BTree::SeparatorKeys(int target, std::vector<std::string>* seps) {
  seps->clear();
  if (target < 2) return Status::OK();
  // Breadth-first by level: any single internal level's separators are
  // globally sorted (left-to-right across siblings), so the first level
  // with enough of them is a valid cut set — no parent context needed.
  std::vector<PageId> level;
  PageId root;
  DMX_RETURN_IF_ERROR(RootPage(&root));
  level.push_back(root);
  std::vector<std::string> best;  // deepest internal level seen so far
  while (true) {
    std::vector<std::string> level_seps;
    std::vector<PageId> next_level;
    bool hit_leaf = false;
    for (PageId id : level) {
      PageHandle h;
      DMX_RETURN_IF_ERROR(bp_->Fetch(id, &h));
      if (NodeType(*h.page()) == kLeaf) {
        hit_leaf = true;
        break;
      }
      InternalNode in;
      DMX_RETURN_IF_ERROR(ParseInternal(*h.page(), &in));
      next_level.push_back(in.leftmost);
      for (auto& [sep, child] : in.entries) {
        level_seps.push_back(std::move(sep));
        next_level.push_back(child);
      }
    }
    if (!hit_leaf && !level_seps.empty()) best = std::move(level_seps);
    bool enough = static_cast<int>(best.size()) >= target - 1;
    if (hit_leaf || enough || next_level.size() > 256 ||
        next_level.size() == level.size()) {
      // Leaves reached, enough cuts, or the next level is too wide to be
      // worth reading: downsample the best level evenly and stop.
      size_t want = std::min<size_t>(target - 1, best.size());
      for (size_t k = 1; k <= want; ++k) {
        size_t idx = k * best.size() / (want + 1);
        if (idx >= best.size()) idx = best.size() - 1;
        if (!seps->empty() && seps->back() == best[idx]) continue;
        seps->push_back(best[idx]);
      }
      return Status::OK();
    }
    level = std::move(next_level);
  }
}

Status BTree::Verify(std::vector<std::string>* problems, uint64_t* entries) {
  *entries = 0;
  auto bad = [&](PageId id, const std::string& what) {
    problems->push_back("btree page " + std::to_string(id) + ": " + what);
  };
  PageId root;
  {
    PageHandle ah;
    Status s = bp_->Fetch(anchor_, &ah);
    if (!s.ok()) {
      bad(anchor_, "anchor unreadable: " + s.ToString());
      return Status::OK();
    }
    root = DecodeFixed32(ah.page()->data + 8);
  }

  // DFS with separator bounds; children pushed right-to-left so leaves are
  // visited in key order (needed to validate the leaf chain).
  struct Frame {
    PageId id;
    std::string low;   // inclusive lower bound on composites
    std::string high;  // exclusive upper bound (valid iff has_high)
    bool has_high;
    uint32_t depth;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root, "", "", false, 0});
  std::vector<std::pair<PageId, PageId>> leaves;  // (id, next) in key order
  int64_t leaf_depth = -1;
  size_t visited = 0;
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (++visited > (1u << 22)) {
      bad(f.id, "traversal exceeded page budget (cycle?)");
      break;
    }
    PageHandle h;
    Status s = bp_->Fetch(f.id, &h);
    if (!s.ok()) {
      bad(f.id, "unreadable: " + s.ToString());
      continue;
    }
    char type = NodeType(*h.page());
    if (type == kLeaf) {
      if (leaf_depth < 0) {
        leaf_depth = f.depth;
      } else if (f.depth != static_cast<uint32_t>(leaf_depth)) {
        bad(f.id, "leaf at depth " + std::to_string(f.depth) +
                      ", expected " + std::to_string(leaf_depth));
      }
      LeafNode leaf;
      s = ParseLeaf(*h.page(), &leaf);
      if (!s.ok()) {
        bad(f.id, "unparsable leaf: " + s.ToString());
        continue;
      }
      const std::string* prev = nullptr;
      for (const std::string& e : leaf.entries) {
        ++*entries;
        std::string k, v;
        if (!BTreeSplitEntry(Slice(e), &k, &v).ok()) {
          bad(f.id, "malformed composite entry");
          break;
        }
        if (prev != nullptr && !(*prev < e)) {
          bad(f.id, "entries out of order");
          break;
        }
        if (e < f.low || (f.has_high && !(e < f.high))) {
          bad(f.id, "entry outside separator bounds");
          break;
        }
        prev = &e;
      }
      leaves.emplace_back(f.id, leaf.next);
      continue;
    }
    if (type != kInternal) {
      bad(f.id, "unknown node type " + std::to_string(type));
      continue;
    }
    InternalNode n;
    s = ParseInternal(*h.page(), &n);
    if (!s.ok()) {
      bad(f.id, "unparsable internal node: " + s.ToString());
      continue;
    }
    for (size_t i = 0; i < n.entries.size(); ++i) {
      const std::string& sep = n.entries[i].first;
      if (i > 0 && !(n.entries[i - 1].first < sep)) {
        bad(f.id, "separators out of order");
      }
      if (sep < f.low || (f.has_high && !(sep < f.high))) {
        bad(f.id, "separator outside parent bounds");
      }
    }
    // Child i's range: [sep[i-1], sep[i]) with the parent's bounds at the
    // edges (leftmost uses the parent's low, last child the parent's high).
    for (size_t i = n.entries.size() + 1; i-- > 0;) {
      Frame c;
      c.depth = f.depth + 1;
      c.id = (i == 0) ? n.leftmost : n.entries[i - 1].second;
      c.low = (i == 0) ? f.low : n.entries[i - 1].first;
      if (i == n.entries.size()) {
        c.high = f.high;
        c.has_high = f.has_high;
      } else {
        c.high = n.entries[i].first;
        c.has_high = true;
      }
      stack.push_back(std::move(c));
    }
  }
  for (size_t i = 0; i < leaves.size(); ++i) {
    PageId expect =
        (i + 1 < leaves.size()) ? leaves[i + 1].first : kInvalidPageId;
    if (leaves[i].second != expect) {
      bad(leaves[i].first,
          "leaf chain link " + std::to_string(leaves[i].second) +
              ", expected " + std::to_string(expect));
    }
  }
  return Status::OK();
}

Status BTree::Height(uint32_t* height) {
  *height = 1;
  PageId node;
  DMX_RETURN_IF_ERROR(RootPage(&node));
  while (true) {
    PageHandle h;
    DMX_RETURN_IF_ERROR(bp_->Fetch(node, &h));
    if (NodeType(*h.page()) == kLeaf) return Status::OK();
    InternalNode in;
    DMX_RETURN_IF_ERROR(ParseInternal(*h.page(), &in));
    node = in.leftmost;
    ++*height;
  }
}

namespace {
bool g_leaf_cache_enabled = true;
}  // namespace

void BTreeIteratorSetLeafCacheEnabled(bool enabled) {
  g_leaf_cache_enabled = enabled;
}

struct BTreeIterator::LeafCache {
  PageId page_id = kInvalidPageId;
  Page image;         // raw page bytes at parse time
  LeafNode parsed;
  size_t index = 0;   // next entry to serve
};

Status BTreeIterator::Next(std::string* key, std::string* value) {
  if (!g_leaf_cache_enabled) cache_.reset();
  // Fast path: the cached leaf still matches the on-disk image and has an
  // unserved entry.
  if (cache_ != nullptr && cache_->page_id != kInvalidPageId) {
    PageHandle h;
    Status s = tree_->bp_->Fetch(cache_->page_id, &h);
    if (s.ok() &&
        memcmp(h.page()->data, cache_->image.data, kPageSize) == 0) {
      if (cache_->index < cache_->parsed.entries.size()) {
        const std::string& entry = cache_->parsed.entries[cache_->index++];
        DMX_RETURN_IF_ERROR(BTreeSplitEntry(Slice(entry), key, value));
        pos_ = entry;
        exclusive_ = true;
        return Status::OK();
      }
      // Exhausted this leaf: hop to the next via the chain, below.
    } else {
      cache_.reset();  // leaf changed (or vanished): full re-descend
    }
  }

  PageId node;
  if (cache_ != nullptr && cache_->page_id != kInvalidPageId &&
      cache_->index >= cache_->parsed.entries.size()) {
    node = cache_->parsed.next;
    cache_.reset();
  } else {
    // Locate the leaf that would contain pos_. pos_ is a composite;
    // FindLeaf wants (key, value) — decompose when possible, else treat
    // the whole position as a key with empty value.
    std::string pk, pv;
    if (BTreeSplitEntry(Slice(pos_), &pk, &pv).ok()) {
      DMX_RETURN_IF_ERROR(tree_->FindLeaf(Slice(pk), Slice(pv), &node));
    } else {
      DMX_RETURN_IF_ERROR(tree_->FindLeaf(Slice(pos_), Slice(), &node));
    }
  }
  while (node != kInvalidPageId) {
    PageHandle h;
    DMX_RETURN_IF_ERROR(tree_->bp_->Fetch(node, &h));
    LeafNode leaf;
    DMX_RETURN_IF_ERROR(ParseLeaf(*h.page(), &leaf));
    auto it = exclusive_
                  ? std::upper_bound(leaf.entries.begin(), leaf.entries.end(),
                                     pos_)
                  : std::lower_bound(leaf.entries.begin(), leaf.entries.end(),
                                     pos_);
    if (it != leaf.entries.end()) {
      DMX_RETURN_IF_ERROR(BTreeSplitEntry(Slice(*it), key, value));
      pos_ = *it;
      exclusive_ = true;
      if (!g_leaf_cache_enabled) return Status::OK();
      // Populate the cache for subsequent Next() calls.
      cache_ = std::make_shared<LeafCache>();
      cache_->page_id = node;
      memcpy(cache_->image.data, h.page()->data, kPageSize);
      cache_->index =
          static_cast<size_t>(it - leaf.entries.begin()) + 1;
      cache_->parsed = std::move(leaf);
      return Status::OK();
    }
    node = leaf.next;
  }
  return Status::NotFound("end of btree");
}

void BTreeIterator::SavePosition(std::string* out) const {
  out->assign(1, exclusive_ ? 1 : 0);
  out->append(pos_);
}

Status BTreeIterator::RestorePosition(const Slice& pos) {
  if (pos.empty()) return Status::InvalidArgument("empty btree position");
  exclusive_ = pos[0] != 0;
  pos_.assign(pos.data() + 1, pos.size() - 1);
  cache_.reset();  // position moved: the cached cursor is meaningless
  return Status::OK();
}

}  // namespace dmx
