#include "src/sm/key_codec.h"

#include "src/util/coding.h"

namespace dmx {

Status EncodeKeyValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    out->push_back('\0');
    return Status::OK();
  }
  out->push_back('\1');
  switch (v.type()) {
    case TypeId::kBool:
      out->push_back(v.bool_value() ? 1 : 0);
      return Status::OK();
    case TypeId::kInt64:
      // Encode integers as ordered doubles so that INT and DOUBLE key
      // components compare consistently (cross-type numeric predicates).
      PutOrderedDouble(out, static_cast<double>(v.int_value()));
      return Status::OK();
    case TypeId::kDouble:
      PutOrderedDouble(out, v.double_value());
      return Status::OK();
    case TypeId::kString: {
      const std::string& s = v.string_value();
      for (char c : s) {
        out->push_back(c);
        if (c == '\0') out->push_back('\xff');
      }
      out->push_back('\0');
      out->push_back('\0');
      return Status::OK();
    }
    case TypeId::kNull:
      return Status::OK();
  }
  return Status::InvalidArgument("unencodable key value");
}

Status EncodeFieldKey(const RecordView& view, const std::vector<int>& fields,
                      std::string* out) {
  for (int f : fields) {
    DMX_RETURN_IF_ERROR(
        EncodeKeyValue(view.GetValue(static_cast<size_t>(f)), out));
  }
  return Status::OK();
}

Status EncodeValueKey(const std::vector<Value>& values, std::string* out) {
  for (const Value& v : values) {
    DMX_RETURN_IF_ERROR(EncodeKeyValue(v, out));
  }
  return Status::OK();
}

Status DecodeKeyValue(Slice* in, TypeId type, Value* out) {
  if (in->empty()) return Status::Corruption("key truncated");
  char tag = (*in)[0];
  in->remove_prefix(1);
  if (tag == '\0') {
    *out = Value::Null();
    return Status::OK();
  }
  switch (type) {
    case TypeId::kBool:
      if (in->empty()) return Status::Corruption("key bool");
      *out = Value::Bool((*in)[0] != 0);
      in->remove_prefix(1);
      return Status::OK();
    case TypeId::kInt64: {
      if (in->size() < 8) return Status::Corruption("key int");
      double d = DecodeOrderedDouble(in->data());
      in->remove_prefix(8);
      // Integers were widened to ordered doubles; narrow back.
      *out = Value::Int(static_cast<int64_t>(d));
      return Status::OK();
    }
    case TypeId::kDouble: {
      if (in->size() < 8) return Status::Corruption("key double");
      *out = Value::Double(DecodeOrderedDouble(in->data()));
      in->remove_prefix(8);
      return Status::OK();
    }
    case TypeId::kString: {
      std::string s;
      while (true) {
        if (in->empty()) return Status::Corruption("key string");
        char c = (*in)[0];
        in->remove_prefix(1);
        if (c != '\0') {
          s.push_back(c);
          continue;
        }
        if (in->empty()) return Status::Corruption("key string escape");
        char next = (*in)[0];
        in->remove_prefix(1);
        if (next == '\0') break;  // terminator
        if (next != '\xff') return Status::Corruption("key string escape");
        s.push_back('\0');
      }
      *out = Value::String(std::move(s));
      return Status::OK();
    }
    case TypeId::kNull:
      *out = Value::Null();
      return Status::OK();
  }
  return Status::Corruption("key type");
}

Status DecodeFieldKey(const Slice& key, const std::vector<TypeId>& types,
                      std::vector<Value>* out) {
  out->clear();
  Slice in = key;
  for (TypeId t : types) {
    Value v;
    DMX_RETURN_IF_ERROR(DecodeKeyValue(&in, t, &v));
    out->push_back(std::move(v));
  }
  if (!in.empty()) return Status::Corruption("trailing key bytes");
  return Status::OK();
}

}  // namespace dmx
