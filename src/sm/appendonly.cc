#include "src/sm/appendonly.h"

#include "src/sm/heap.h"

namespace dmx {
namespace {

Status RejectUpdate(SmContext&, const Slice&, const Slice&, const Slice&,
                    std::string*) {
  return Status::NotSupported("appendonly relations cannot be updated");
}

Status RejectErase(SmContext&, const Slice&, const Slice&) {
  return Status::NotSupported("appendonly relations cannot be deleted from");
}

}  // namespace

const SmOps& AppendOnlyStorageMethodOps() {
  static const SmOps ops = [] {
    SmOps o = HeapStorageMethodOps();  // same pages, keys, scans, recovery
    o.name = "appendonly";
    o.update = RejectUpdate;
    o.erase = RejectErase;
    return o;
  }();
  return ops;
}

}  // namespace dmx
