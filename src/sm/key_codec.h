// Order-preserving encoding of field values into index / record keys.
//
// Every field is encoded as a tag byte (0 = NULL, 1 = value) followed by a
// type-specific order-preserving encoding; memcmp order of the
// concatenation equals (field1, field2, ...) tuple order with NULLs first.
// Strings are 0x00-escaped and 0x00 0x00 terminated so that multi-field
// keys with variable-length strings still compare correctly.

#ifndef DMX_SM_KEY_CODEC_H_
#define DMX_SM_KEY_CODEC_H_

#include <string>
#include <vector>

#include "src/types/record.h"
#include "src/types/value.h"
#include "src/util/status.h"

namespace dmx {

/// Append the order-preserving encoding of `v` to `out`.
Status EncodeKeyValue(const Value& v, std::string* out);

/// Compose a key from the given fields of a record.
Status EncodeFieldKey(const RecordView& view, const std::vector<int>& fields,
                      std::string* out);

/// Compose a key from explicit values (planner-side bound construction).
Status EncodeValueKey(const std::vector<Value>& values, std::string* out);

/// Decode one field from the front of an encoded key, advancing `in`.
/// `type` is the column type the field was encoded from. The inverse of
/// EncodeKeyValue — used for index-only access, where the paper notes an
/// access path "may be able to return record fields when the access path
/// key is a multi-field value".
Status DecodeKeyValue(Slice* in, TypeId type, Value* out);

/// Decode an entire key composed from fields of the given types.
Status DecodeFieldKey(const Slice& key, const std::vector<TypeId>& types,
                      std::vector<Value>* out);

}  // namespace dmx

#endif  // DMX_SM_KEY_CODEC_H_
