// "foreign" storage method: a relation whose storage lives in another
// database instance, accessed through a narrow server registry — the
// paper's "another relation storage method might support access to a
// foreign database by simulating relation accesses via (remote) accesses
// to relations in the foreign database".
//
// The remote side is simulated by a second in-process Database (see
// DESIGN.md substitutions). Each forwarded operation runs in its own
// foreign transaction (auto-commit); local rollback issues compensating
// operations, so there is no distributed atomicity — a documented property
// of the simulation, not of the architecture.
//
// DDL attributes: server=<registered name>, relation=<foreign relation>.

#ifndef DMX_SM_FOREIGN_H_
#define DMX_SM_FOREIGN_H_

#include <string>

#include "src/core/extension.h"

namespace dmx {

class Database;

const SmOps& ForeignStorageMethodOps();

/// Process-global registry of foreign servers ("at the factory" wiring).
/// The caller keeps ownership of the Database and must unregister before
/// destroying it.
void RegisterForeignServer(const std::string& name, Database* db);
void UnregisterForeignServer(const std::string& name);
Database* FindForeignServer(const std::string& name);

}  // namespace dmx

#endif  // DMX_SM_FOREIGN_H_
