// BTree: shared page-based B+-tree used by the "btree" storage method
// (records stored in the leaves) and by the B-tree index attachment
// (index key -> record key mappings).
//
// Entries are (key, value) byte-string pairs, ordered by (key, value) so
// duplicate keys are supported deterministically. Leaves are chained for
// key-sequential access. An anchor page (whose id never changes and is what
// descriptors reference) stores the current root page id, so root splits do
// not mutate descriptors.
//
// Concurrency: callers serialize through the lock manager (record/relation
// locks); the tree itself performs no latching beyond buffer-pool pins.
// Recovery: callers log *logical* operations; BTree::Insert/Remove are
// idempotent (insert skips an already-present (key,value); remove of an
// absent entry is a no-op success when `idempotent` is set), which makes
// logical redo/undo safe. Structural changes (splits) are not themselves
// logged — see DESIGN.md for the crash-consistency discussion.

#ifndef DMX_SM_BTREE_CORE_H_
#define DMX_SM_BTREE_CORE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/storage/buffer_pool.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dmx {

class BTreeIterator;

class BTree {
 public:
  /// Allocate anchor + empty root leaf; returns the anchor page id.
  static Status Create(BufferPool* bp, PageId* anchor);

  /// Free every page of the tree including the anchor.
  static Status Destroy(BufferPool* bp, PageId anchor);

  BTree(BufferPool* bp, PageId anchor) : bp_(bp), anchor_(anchor) {}

  /// Insert (key, value). If `unique` and an entry with equal key (any
  /// value) exists, fails with Constraint. If the exact (key, value) pair
  /// exists already, succeeds without change (logical idempotence).
  Status Insert(const Slice& key, const Slice& value, bool unique = false);

  /// Remove the exact (key, value) entry. Absent entry: NotFound, unless
  /// `idempotent` (recovery replay) in which case OK.
  Status Remove(const Slice& key, const Slice& value,
                bool idempotent = false);

  /// All values for `key`, in value order.
  Status Lookup(const Slice& key, std::vector<std::string>* values);

  /// True if any entry with `key` exists.
  Status Contains(const Slice& key, bool* found);

  /// Iterator positioned before the first entry with key >= `low`
  /// (or the tree start if `low` is unset).
  Status NewIterator(std::unique_ptr<BTreeIterator>* it,
                     const std::optional<std::string>& low = std::nullopt,
                     bool low_inclusive = true);

  /// Entry count (walks the leaf chain).
  Status Count(uint64_t* n);
  /// Leaf page count (costing).
  Status LeafPages(uint64_t* n);

  /// Tree height (1 = root is a leaf). For cost estimation.
  Status Height(uint32_t* h);

  /// Structural consistency sweep (CHECK support): validates node types,
  /// entry parse and ordering, separator bounds, uniform leaf depth, and
  /// the leaf chain. Findings — including unreadable (CRC-failing) pages —
  /// are appended to *problems; *entries receives the number of leaf
  /// entries seen. Returns non-OK only when the sweep itself cannot run.
  Status Verify(std::vector<std::string>* problems, uint64_t* entries);

  /// Up to `target - 1` composite separator entries (key + value, the
  /// internal-node form; split with BTreeSplitEntry) that cut the tree
  /// into roughly equal key ranges, in ascending order. Descends from the
  /// root until one internal level yields enough separators, then
  /// downsamples evenly. Empty result when the root is a leaf. Used by
  /// scan partitioning; exactness of the placement is a balance question
  /// only — every range boundary is a real entry boundary.
  Status SeparatorKeys(int target, std::vector<std::string>* seps);

  BufferPool* buffer_pool() const { return bp_; }
  PageId anchor() const { return anchor_; }

 private:
  friend class BTreeIterator;

  Status RootPage(PageId* root);
  Status SetRootPage(PageId root);
  /// Leaf that should contain `key`+`value`.
  Status FindLeaf(const Slice& key, const Slice& value, PageId* leaf);

  BufferPool* bp_;
  PageId anchor_;
};

/// Key-sequential access over a BTree. Position = the composite
/// (key, value) of the last returned entry; Next returns the first entry
/// strictly greater, so deletions at the position leave the iterator
/// "just after" the deleted entry (the paper's scan semantics).
///
/// Next() caches the current leaf (page id, raw image, parsed entries):
/// while the on-disk leaf image is byte-identical to the cache, successive
/// entries are served without re-descending or re-parsing; any
/// modification of the leaf (including a delete at the position) is
/// detected by the image comparison and falls back to a fresh descent,
/// preserving the position semantics exactly.
class BTreeIterator {
 public:
  BTreeIterator(BTree* tree, std::string position, bool position_exclusive)
      : tree_(tree),
        pos_(std::move(position)),
        exclusive_(position_exclusive) {}

  /// Advance; fills key/value; NotFound at end.
  Status Next(std::string* key, std::string* value);

  /// Serialize / restore the position (savepoint support).
  void SavePosition(std::string* out) const;
  Status RestorePosition(const Slice& pos);

 private:
  struct LeafCache;  // defined in btree_core.cc

  BTree* tree_;
  std::string pos_;  // composite (key,value) encoding of last returned
  bool exclusive_;   // if false, an entry equal to pos_ may be returned
  std::shared_ptr<LeafCache> cache_;
};

/// Ablation toggle (benchmarks): disable the iterator's leaf cache so
/// every Next() re-descends from the root and re-parses the leaf. Global;
/// not for concurrent flipping.
void BTreeIteratorSetLeafCacheEnabled(bool enabled);

/// Composite entry encoding helpers (key + value, length-framed so the
/// composite ordering equals (key, value) lexicographic ordering).
std::string BTreeComposeEntry(const Slice& key, const Slice& value);
Status BTreeSplitEntry(const Slice& entry, std::string* key,
                       std::string* value);

}  // namespace dmx

#endif  // DMX_SM_BTREE_CORE_H_
