#include "src/sm/heap.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "src/core/costing.h"
#include "src/core/database.h"
#include "src/sm/rid.h"
#include "src/storage/slotted_page.h"
#include "src/util/coding.h"

namespace dmx {
namespace {

// Slack kept free on fresh inserts so in-place update growth and undo
// restores rarely fail (see DESIGN.md, heap recovery notes).
constexpr size_t kUpdateReserve = 256;

struct HeapState : public ExtState {
  PageId first = kInvalidPageId;
  PageId last = kInvalidPageId;
  uint64_t pages = 0;
  uint64_t records = 0;
  /// Serializes page mutation and the chain-tail/counter fields across
  /// concurrent writer transactions. Record X locks don't help here: two
  /// inserters lock different records yet mutate the same tail page.
  /// Readers need no lock — their relation S lock conflicts with the
  /// writers' IX, so state reads never race a writer. GUARDED_BY would
  /// therefore be wrong: it would force readers to take a lock they are
  /// correct not to need.
  Mutex mu;  // dmx-lint: allow-unguarded (reader exclusion via S lock)
};

HeapState* StateOf(SmContext& ctx) {
  return static_cast<HeapState*>(ctx.state);
}

PageId FirstPageOf(const Slice& sm_desc) {
  if (sm_desc.size() < 4) return kInvalidPageId;
  return DecodeFixed32(sm_desc.data());
}

Status HeapValidate(const Schema& schema, const AttrList& attrs,
                    std::string* sm_desc) {
  (void)schema;
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({}));
  sm_desc->clear();
  return Status::OK();
}

Status HeapCreate(SmContext& ctx, std::string* sm_desc) {
  PageId first;
  PageHandle h;
  DMX_RETURN_IF_ERROR(ctx.db->buffer_pool()->New(&first, &h));
  SlottedPage sp(h.page());
  sp.Init();
  h.MarkDirty();
  sm_desc->clear();
  PutFixed32(sm_desc, first);
  return Status::OK();
}

Status HeapDrop(SmContext& ctx) {
  PageId page = FirstPageOf(Slice(ctx.desc->sm_desc));
  BufferPool* bp = ctx.db->buffer_pool();
  while (page != kInvalidPageId) {
    PageId next;
    {
      PageHandle h;
      DMX_RETURN_IF_ERROR(bp->Fetch(page, &h));
      next = SlottedPage(h.page()).next_page();
    }
    DMX_RETURN_IF_ERROR(bp->FreePage(page));
    page = next;
  }
  return Status::OK();
}

Status HeapOpen(SmContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<HeapState>();
  st->first = FirstPageOf(Slice(ctx.desc->sm_desc));
  if (st->first == kInvalidPageId) {
    return Status::Corruption("heap descriptor missing first page");
  }
  BufferPool* bp = ctx.db->buffer_pool();
  PageId page = st->first;
  while (page != kInvalidPageId) {
    PageHandle h;
    DMX_RETURN_IF_ERROR(bp->Fetch(page, &h));
    SlottedPage sp(h.page());
    for (uint16_t s = 0; s < sp.num_slots(); ++s) {
      if (sp.IsLive(s)) ++st->records;
    }
    ++st->pages;
    st->last = page;
    page = sp.next_page();
  }
  *state = std::move(st);
  return Status::OK();
}

// Appends a heap update record to the common log and returns its LSN.
Status LogHeapOp(SmContext& ctx, std::string payload, Lsn* lsn) {
  LogRecord rec = MakeUpdateRecord(
      ctx.txn != nullptr ? ctx.txn->id() : kInvalidTxnId,
      ExtKind::kStorageMethod, ctx.desc->sm_id, ctx.desc->id,
      std::move(payload));
  rec.prev_lsn = ctx.txn != nullptr ? ctx.txn->last_lsn() : kInvalidLsn;
  DMX_RETURN_IF_ERROR(ctx.db->log()->Append(&rec));
  if (ctx.txn != nullptr) ctx.txn->set_last_lsn(rec.lsn);
  *lsn = rec.lsn;
  return Status::OK();
}

// Callers hold HeapState::mu.
Status HeapInsertLocked(SmContext& ctx, const Slice& record,
                        std::string* record_key) {
  HeapState* st = StateOf(ctx);
  BufferPool* bp = ctx.db->buffer_pool();

  // Try the tail page; if full, chain on a fresh page.
  PageHandle h;
  DMX_RETURN_IF_ERROR(bp->Fetch(st->last, &h));
  SlottedPage sp(h.page());
  uint16_t slot;
  PageId target = st->last;
  PageId link_prev = kInvalidPageId;
  Status s = sp.Insert(record, &slot, kUpdateReserve);
  if (s.IsBusy()) {
    PageId fresh;
    PageHandle nh;
    DMX_RETURN_IF_ERROR(bp->New(&fresh, &nh));
    SlottedPage nsp(nh.page());
    nsp.Init();
    DMX_RETURN_IF_ERROR(nsp.Insert(record, &slot, kUpdateReserve));
    // Link: old tail -> fresh.
    sp.set_next_page(fresh);
    h.MarkDirty();
    link_prev = st->last;
    st->last = fresh;
    ++st->pages;
    target = fresh;
    h = std::move(nh);
  } else if (!s.ok()) {
    return s;
  }

  Rid rid{target, slot};
  std::string payload = "I" + rid.Encode();
  PutFixed32(&payload, link_prev);
  payload.append(record.data(), record.size());
  Lsn lsn;
  DMX_RETURN_IF_ERROR(LogHeapOp(ctx, std::move(payload), &lsn));
  SetPageLsn(h.page(), lsn);
  h.MarkDirty();
  ++st->records;
  *record_key = rid.Encode();
  return Status::OK();
}

// Callers hold HeapState::mu.
Status HeapEraseLocked(SmContext& ctx, const Slice& record_key,
                       const Slice& old_record) {
  HeapState* st = StateOf(ctx);
  Rid rid;
  DMX_RETURN_IF_ERROR(Rid::Decode(record_key, &rid));
  PageHandle h;
  DMX_RETURN_IF_ERROR(ctx.db->buffer_pool()->Fetch(rid.page, &h));
  SlottedPage sp(h.page());
  DMX_RETURN_IF_ERROR(sp.Delete(rid.slot));
  std::string payload = "D" + rid.Encode();
  payload.append(old_record.data(), old_record.size());
  Lsn lsn;
  DMX_RETURN_IF_ERROR(LogHeapOp(ctx, std::move(payload), &lsn));
  SetPageLsn(h.page(), lsn);
  h.MarkDirty();
  --st->records;
  return Status::OK();
}

Status HeapInsert(SmContext& ctx, const Slice& record,
                  std::string* record_key) {
  MutexLock lock(&StateOf(ctx)->mu);
  return HeapInsertLocked(ctx, record, record_key);
}

Status HeapErase(SmContext& ctx, const Slice& record_key,
                 const Slice& old_record) {
  MutexLock lock(&StateOf(ctx)->mu);
  return HeapEraseLocked(ctx, record_key, old_record);
}

Status HeapUpdate(SmContext& ctx, const Slice& record_key,
                  const Slice& old_record, const Slice& new_record,
                  std::string* new_key) {
  MutexLock lock(&StateOf(ctx)->mu);
  Rid rid;
  DMX_RETURN_IF_ERROR(Rid::Decode(record_key, &rid));
  {
    PageHandle h;
    DMX_RETURN_IF_ERROR(ctx.db->buffer_pool()->Fetch(rid.page, &h));
    SlottedPage sp(h.page());
    Status s = sp.Update(rid.slot, new_record);
    if (s.ok()) {
      std::string payload = "U" + rid.Encode();
      PutLengthPrefixedSlice(&payload, old_record);
      PutLengthPrefixedSlice(&payload, new_record);
      Lsn lsn;
      DMX_RETURN_IF_ERROR(LogHeapOp(ctx, std::move(payload), &lsn));
      SetPageLsn(h.page(), lsn);
      h.MarkDirty();
      *new_key = record_key.ToString();
      return Status::OK();
    }
    if (!s.IsBusy()) return s;
    // Doesn't fit: Update() tombstoned the slot; revive it before moving.
    sp.InsertAt(rid.slot, old_record).ok();
  }
  // Move: delete + insert (the record key changes).
  DMX_RETURN_IF_ERROR(HeapEraseLocked(ctx, record_key, old_record));
  return HeapInsertLocked(ctx, new_record, new_key);
}

Status HeapFetch(SmContext& ctx, const Slice& record_key,
                 std::string* record) {
  Rid rid;
  DMX_RETURN_IF_ERROR(Rid::Decode(record_key, &rid));
  PageHandle h;
  DMX_RETURN_IF_ERROR(ctx.db->buffer_pool()->Fetch(rid.page, &h));
  SlottedPage sp(h.page());
  Slice data;
  DMX_RETURN_IF_ERROR(sp.Get(rid.slot, &data));
  record->assign(data.data(), data.size());
  return Status::OK();
}

// -- scan ---------------------------------------------------------------------

// A partition descriptor is a page-chain segment: (start_page, stop_page)
// as two Fixed32s, stop exclusive, kInvalidPageId = run to the chain end.
// Segments rather than page-id ranges because chain order is not page-id
// order once FreePage has recycled pages.
void EncodeHeapPartition(PageId start, PageId stop, std::string* out) {
  out->clear();
  PutFixed32(out, start);
  PutFixed32(out, stop);
}

bool DecodeHeapPartition(const Slice& in, PageId* start, PageId* stop) {
  if (in.size() != 8) return false;
  *start = DecodeFixed32(in.data());
  *stop = DecodeFixed32(in.data() + 4);
  return true;
}

class HeapScan : public Scan {
 public:
  HeapScan(Database* db, const RelationDescriptor* desc, PageId first,
           const ScanSpec& spec)
      : db_(db), desc_(desc), spec_(spec) {
    next_ = Rid{first, 0};
    if (spec_.partition.has_value()) {
      PageId start, stop;
      if (DecodeHeapPartition(Slice(*spec_.partition), &start, &stop)) {
        next_ = Rid{start, 0};
        stop_page_ = stop;
      }
    }
    if (spec_.low_key.has_value()) {
      Rid low;
      if (Rid::Decode(Slice(*spec_.low_key), &low).ok()) {
        next_ = low;
        if (!spec_.low_inclusive) ++next_.slot;
      }
    }
  }

  Status Next(ScanItem* out) override {
    while (true) {
      if (next_.page == kInvalidPageId || next_.page == stop_page_) {
        return Status::NotFound("end of scan");
      }
      if (!pinned_.valid() || pinned_.page_id() != next_.page) {
        pinned_.Release();
        DMX_RETURN_IF_ERROR(db_->buffer_pool()->Fetch(next_.page, &pinned_));
      }
      SlottedPage sp(pinned_.page());
      if (next_.slot >= sp.num_slots()) {
        next_ = Rid{sp.next_page(), 0};
        continue;
      }
      Rid current = next_;
      ++next_.slot;
      Slice data;
      if (!sp.Get(current.slot, &data).ok()) continue;  // tombstone
      if (spec_.high_key.has_value()) {
        std::string enc = current.Encode();
        int cmp = Slice(enc).compare(Slice(*spec_.high_key));
        if (cmp > 0 || (cmp == 0 && !spec_.high_inclusive)) {
          return Status::NotFound("end of scan");
        }
      }
      // Evaluate the filter against the record while it is still in the
      // buffer pool (common predicate-evaluation service; zero copy).
      RecordView view(data, &desc_->schema);
      if (spec_.filter != nullptr) {
        bool passes = false;
        DMX_RETURN_IF_ERROR(
            db_->evaluator()->EvalPredicate(*spec_.filter, view, &passes));
        if (!passes) continue;
      }
      out->record_key = current.Encode();
      out->view = view;
      last_returned_ = current;
      return Status::OK();
    }
  }

  Status SavePosition(std::string* out) const override {
    // Position = next candidate; deletions at the current item naturally
    // leave the scan "just after" it.
    *out = next_.Encode();
    return Status::OK();
  }

  Status RestorePosition(const Slice& pos) override {
    return Rid::Decode(pos, &next_);
  }

 private:
  Database* db_;
  const RelationDescriptor* desc_;
  ScanSpec spec_;
  Rid next_;
  Rid last_returned_;
  /// Exclusive chain-segment bound (kInvalidPageId = scan to the end).
  PageId stop_page_ = kInvalidPageId;
  PageHandle pinned_;
};

Status HeapOpenScan(SmContext& ctx, const ScanSpec& spec,
                    std::unique_ptr<Scan>* scan) {
  HeapState* st = StateOf(ctx);
  *scan = std::make_unique<HeapScan>(ctx.db, ctx.desc, st->first, spec);
  return Status::OK();
}

// Split the page chain into up to `target` contiguous segments. Declines
// (single-element result) on bounded scans: low/high keys are Rid
// positions, and honouring them per-segment would need the chain prefix
// order that partitions are meant to avoid recomputing.
Status HeapPartitionScan(SmContext& ctx, const ScanSpec& spec, int target,
                         std::vector<ScanSpec>* partitions) {
  partitions->clear();
  HeapState* st = StateOf(ctx);
  if (target < 2 || spec.low_key.has_value() || spec.high_key.has_value() ||
      st->pages < 2 || st->first == kInvalidPageId) {
    partitions->push_back(spec);
    return Status::OK();
  }
  // Walk the chain once to learn its order (not page-id order after frees).
  std::vector<PageId> chain;
  chain.reserve(st->pages);
  BufferPool* bp = ctx.db->buffer_pool();
  PageId page = st->first;
  while (page != kInvalidPageId) {
    chain.push_back(page);
    PageHandle h;
    DMX_RETURN_IF_ERROR(bp->Fetch(page, &h));
    page = SlottedPage(h.page()).next_page();
  }
  size_t parts = std::min<size_t>(target, chain.size());
  for (size_t i = 0; i < parts; ++i) {
    size_t begin = chain.size() * i / parts;
    size_t end = chain.size() * (i + 1) / parts;
    ScanSpec sub = spec;
    sub.partition.emplace();
    EncodeHeapPartition(chain[begin],
                        end < chain.size() ? chain[end] : kInvalidPageId,
                        &*sub.partition);
    partitions->push_back(std::move(sub));
  }
  return Status::OK();
}

Status HeapCost(SmContext& ctx, const std::vector<ExprPtr>& predicates,
                AccessCost* out) {
  HeapState* st = StateOf(ctx);
  out->usable = true;
  out->io_cost = static_cast<double>(st->pages);
  out->cpu_cost = static_cast<double>(st->records);
  out->selectivity = EstimateSelectivity(predicates);
  // A full scan evaluates every eligible predicate itself (pushed filter).
  out->handled_predicates.clear();
  for (size_t i = 0; i < predicates.size(); ++i) {
    out->handled_predicates.push_back(static_cast<int>(i));
  }
  return Status::OK();
}

Status HeapCount(SmContext& ctx, uint64_t* records) {
  *records = StateOf(ctx)->records;
  return Status::OK();
}

// -- recovery ------------------------------------------------------------------

// Parse a heap log payload.
struct HeapLogOp {
  char op;
  Rid rid;
  PageId link_prev = kInvalidPageId;
  Slice record;        // I: record, D: old record
  Slice old_rec, new_rec;  // U
};

Status ParseHeapPayload(const Slice& payload, HeapLogOp* out) {
  Slice in = payload;
  if (in.size() < 7) return Status::Corruption("heap log payload");
  out->op = in[0];
  in.remove_prefix(1);
  DMX_RETURN_IF_ERROR(Rid::Decode(Slice(in.data(), 6), &out->rid));
  in.remove_prefix(6);
  switch (out->op) {
    case 'I': {
      uint32_t prev;
      if (!GetFixed32(&in, &prev)) return Status::Corruption("heap I link");
      out->link_prev = prev;
      out->record = in;
      return Status::OK();
    }
    case 'D':
      out->record = in;
      return Status::OK();
    case 'U':
      if (!GetLengthPrefixedSlice(&in, &out->old_rec) ||
          !GetLengthPrefixedSlice(&in, &out->new_rec)) {
        return Status::Corruption("heap U payload");
      }
      return Status::OK();
    default:
      return Status::Corruption("heap log op");
  }
}

// Apply one parsed op (or its inverse) to the page, stamping apply_lsn.
Status ApplyHeapOp(SmContext& ctx, const HeapLogOp& op, bool undo,
                   Lsn apply_lsn, bool gate_on_page_lsn) {
  HeapState* st = StateOf(ctx);
  BufferPool* bp = ctx.db->buffer_pool();

  // Redo of an insert that chained a fresh page must restore the link.
  if (!undo && op.op == 'I' && op.link_prev != kInvalidPageId) {
    PageHandle ph;
    DMX_RETURN_IF_ERROR(bp->Fetch(op.link_prev, &ph));
    SlottedPage prev(ph.page());
    if (prev.next_page() == kInvalidPageId) {
      prev.set_next_page(op.rid.page);
      ph.MarkDirty();
      if (st->last == op.link_prev) {
        st->last = op.rid.page;
        ++st->pages;
      }
    }
  }

  PageHandle h;
  DMX_RETURN_IF_ERROR(bp->Fetch(op.rid.page, &h));
  if (gate_on_page_lsn && PageLsn(*h.page()) >= apply_lsn) {
    return Status::OK();  // effect already on the page
  }
  SlottedPage sp(h.page());
  if (sp.num_slots() == 0 && sp.next_page() == kInvalidPageId &&
      PageLsn(*h.page()) == kInvalidLsn) {
    sp.Init();  // fresh page whose format was lost in the crash
  }
  Status s;
  char effective = op.op;
  if (undo && op.op == 'I') effective = 'd';   // undo insert = delete
  if (undo && op.op == 'D') effective = 'i';   // undo delete = revive
  if (undo && op.op == 'U') effective = 'u';   // undo update = restore old
  switch (effective) {
    case 'I':
    case 'i':
      s = sp.InsertAt(op.rid.slot, op.record);
      if (s.ok()) ++st->records;
      break;
    case 'D':
    case 'd':
      s = sp.Delete(op.rid.slot);
      if (s.ok()) --st->records;
      break;
    case 'U':
      s = sp.Update(op.rid.slot, op.new_rec);
      break;
    case 'u':
      s = sp.Update(op.rid.slot, op.old_rec);
      break;
    default:
      s = Status::Corruption("heap apply op");
  }
  // Idempotence slack for redo: "already deleted" / "already present" are
  // fine when gating could not apply (e.g. slot states already match).
  if (!s.ok() && gate_on_page_lsn &&
      (s.IsNotFound() || s.IsInvalidArgument())) {
    s = Status::OK();
  }
  DMX_RETURN_IF_ERROR(s);
  SetPageLsn(h.page(), apply_lsn);
  h.MarkDirty();
  return Status::OK();
}

Status HeapUndo(SmContext& ctx, const LogRecord& rec, Lsn apply_lsn) {
  // Transaction-time undo (abort, veto, savepoint rollback) can run while
  // other writer transactions mutate the same pages; restart recovery is
  // single-threaded and merely pays an uncontended lock.
  MutexLock lock(&StateOf(ctx)->mu);
  HeapLogOp op;
  DMX_RETURN_IF_ERROR(ParseHeapPayload(Slice(rec.payload), &op));
  // Gate on the page LSN only when *redoing a CLR* (restart replaying an
  // interrupted rollback): the page may already carry the compensation.
  // During rollback of the original update (rec is kUpdate) the undo must
  // apply unconditionally — concurrent transactions modifying *other*
  // records on the same page stamp newer page LSNs, and gating would then
  // silently skip the undo (lost-undo; caught by the bank-transfer
  // invariant test under sanitizer timing). The record itself is protected
  // by this transaction's X lock, so unconditional apply is safe.
  return ApplyHeapOp(ctx, op, /*undo=*/true, apply_lsn,
                     /*gate_on_page_lsn=*/rec.type == LogRecType::kClr);
}

Status HeapRedo(SmContext& ctx, const LogRecord& rec, Lsn apply_lsn) {
  MutexLock lock(&StateOf(ctx)->mu);
  HeapLogOp op;
  DMX_RETURN_IF_ERROR(ParseHeapPayload(Slice(rec.payload), &op));
  return ApplyHeapOp(ctx, op, /*undo=*/false, apply_lsn,
                     /*gate_on_page_lsn=*/true);
}

// -- consistency sweep ---------------------------------------------------------

// Walk the page chain validating slot directories, record encodings, and
// the chain itself; recount and compare against the open-state counters.
// Unreadable (CRC-failing) pages become findings, not errors.
Status HeapVerify(SmContext& ctx, VerifyReport* report) {
  MutexLock lock(&StateOf(ctx)->mu);
  HeapState* st = StateOf(ctx);
  BufferPool* bp = ctx.db->buffer_pool();
  PageId page = FirstPageOf(Slice(ctx.desc->sm_desc));
  if (page == kInvalidPageId) {
    report->Problem("heap descriptor missing first page");
    return Status::OK();
  }
  std::set<PageId> visited;
  uint64_t live = 0, pages = 0;
  PageId last = kInvalidPageId;
  while (page != kInvalidPageId) {
    if (!visited.insert(page).second) {
      report->Problem("heap page chain cycles back to page " +
                      std::to_string(page));
      break;
    }
    PageHandle h;
    Status fs = bp->Fetch(page, &h);
    if (!fs.ok()) {
      report->Problem("heap page " + std::to_string(page) +
                      " unreadable: " + fs.ToString());
      break;  // the chain link lives on the unreadable page
    }
    SlottedPage sp(h.page());
    for (uint16_t s = 0; s < sp.num_slots(); ++s) {
      if (!sp.IsLive(s)) continue;
      Slice data;
      Status gs = sp.Get(s, &data);
      if (!gs.ok()) {
        report->Problem("heap page " + std::to_string(page) + " slot " +
                        std::to_string(s) + ": " + gs.ToString());
        continue;
      }
      RecordView view(data, &ctx.desc->schema);
      Status vs = view.Validate();
      if (!vs.ok()) {
        report->Problem("heap page " + std::to_string(page) + " slot " +
                        std::to_string(s) +
                        ": record fails to decode: " + vs.ToString());
        continue;
      }
      ++live;
    }
    ++pages;
    last = page;
    page = sp.next_page();
  }
  report->items += live;
  if (report->clean()) {
    if (live != st->records) {
      report->Problem("heap record count mismatch: chain holds " +
                      std::to_string(live) + ", state says " +
                      std::to_string(st->records));
    }
    if (pages != st->pages) {
      report->Problem("heap page count mismatch: chain holds " +
                      std::to_string(pages) + ", state says " +
                      std::to_string(st->pages));
    }
    if (last != st->last) {
      report->Problem("heap chain tail is page " + std::to_string(last) +
                      ", state says " + std::to_string(st->last));
    }
  }
  return Status::OK();
}

}  // namespace

const SmOps& HeapStorageMethodOps() {
  static const SmOps ops = [] {
    SmOps o;
    o.name = "heap";
    o.validate = HeapValidate;
    o.create = HeapCreate;
    o.drop = HeapDrop;
    o.open = HeapOpen;
    o.insert = HeapInsert;
    o.update = HeapUpdate;
    o.erase = HeapErase;
    o.fetch = HeapFetch;
    o.open_scan = HeapOpenScan;
    o.partition_scan = HeapPartitionScan;
    o.cost = HeapCost;
    o.undo = HeapUndo;
    o.redo = HeapRedo;
    o.count = HeapCount;
    o.verify = HeapVerify;
    return o;
  }();
  return ops;
}

}  // namespace dmx
