#include "src/sm/btree_sm.h"

#include "src/core/costing.h"
#include "src/core/database.h"
#include "src/sm/btree_core.h"
#include "src/sm/key_codec.h"
#include "src/util/coding.h"

namespace dmx {

Status ParseFieldList(const Schema& schema, const std::string& list,
                      std::vector<int>* fields) {
  fields->clear();
  std::string cur;
  auto flush = [&]() -> Status {
    // Trim spaces.
    size_t b = cur.find_first_not_of(' ');
    size_t e = cur.find_last_not_of(' ');
    if (b == std::string::npos) {
      return Status::InvalidArgument("empty column name in list");
    }
    std::string name = cur.substr(b, e - b + 1);
    int idx = schema.FindColumn(name);
    if (idx < 0) return Status::InvalidArgument("no column '" + name + "'");
    fields->push_back(idx);
    cur.clear();
    return Status::OK();
  };
  for (char c : list) {
    if (c == ',') {
      DMX_RETURN_IF_ERROR(flush());
    } else {
      cur.push_back(c);
    }
  }
  DMX_RETURN_IF_ERROR(flush());
  return Status::OK();
}

namespace {

struct BtSmState : public ExtState {
  PageId anchor = kInvalidPageId;
  std::vector<int> key_fields;
  std::unique_ptr<BTree> tree;
};

BtSmState* StateOf(SmContext& ctx) {
  return static_cast<BtSmState*>(ctx.state);
}

Status DecodeDesc(const Slice& sm_desc, PageId* anchor,
                  std::vector<int>* fields) {
  Slice in = sm_desc;
  uint32_t a, n;
  if (!GetFixed32(&in, &a) || !GetVarint32(&in, &n)) {
    return Status::Corruption("btree sm descriptor");
  }
  *anchor = a;
  fields->clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t f;
    if (!GetVarint32(&in, &f)) return Status::Corruption("btree sm field");
    fields->push_back(static_cast<int>(f));
  }
  return Status::OK();
}

Status BtValidate(const Schema& schema, const AttrList& attrs,
                  std::string* sm_desc) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({"key"}));
  if (!attrs.Has("key")) {
    return Status::InvalidArgument("btree storage requires key=<columns>");
  }
  std::vector<int> fields;
  DMX_RETURN_IF_ERROR(ParseFieldList(schema, attrs.Get("key"), &fields));
  sm_desc->clear();
  PutFixed32(sm_desc, kInvalidPageId);  // anchor assigned by create
  PutVarint32(sm_desc, static_cast<uint32_t>(fields.size()));
  for (int f : fields) PutVarint32(sm_desc, static_cast<uint32_t>(f));
  return Status::OK();
}

Status BtCreate(SmContext& ctx, std::string* sm_desc) {
  PageId anchor;
  std::vector<int> fields;
  DMX_RETURN_IF_ERROR(DecodeDesc(Slice(*sm_desc), &anchor, &fields));
  DMX_RETURN_IF_ERROR(BTree::Create(ctx.db->buffer_pool(), &anchor));
  sm_desc->clear();
  PutFixed32(sm_desc, anchor);
  PutVarint32(sm_desc, static_cast<uint32_t>(fields.size()));
  for (int f : fields) PutVarint32(sm_desc, static_cast<uint32_t>(f));
  return Status::OK();
}

Status BtDrop(SmContext& ctx) {
  PageId anchor;
  std::vector<int> fields;
  DMX_RETURN_IF_ERROR(
      DecodeDesc(Slice(ctx.desc->sm_desc), &anchor, &fields));
  return BTree::Destroy(ctx.db->buffer_pool(), anchor);
}

Status BtOpen(SmContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<BtSmState>();
  DMX_RETURN_IF_ERROR(
      DecodeDesc(Slice(ctx.desc->sm_desc), &st->anchor, &st->key_fields));
  st->tree = std::make_unique<BTree>(ctx.db->buffer_pool(), st->anchor);
  *state = std::move(st);
  return Status::OK();
}

Status BtLog(SmContext& ctx, std::string payload) {
  LogRecord rec = MakeUpdateRecord(
      ctx.txn != nullptr ? ctx.txn->id() : kInvalidTxnId,
      ExtKind::kStorageMethod, ctx.desc->sm_id, ctx.desc->id,
      std::move(payload));
  rec.prev_lsn = ctx.txn != nullptr ? ctx.txn->last_lsn() : kInvalidLsn;
  DMX_RETURN_IF_ERROR(ctx.db->log()->Append(&rec));
  if (ctx.txn != nullptr) ctx.txn->set_last_lsn(rec.lsn);
  return Status::OK();
}

Status BtInsert(SmContext& ctx, const Slice& record,
                std::string* record_key) {
  BtSmState* st = StateOf(ctx);
  RecordView view(record, &ctx.desc->schema);
  std::string key;
  DMX_RETURN_IF_ERROR(EncodeFieldKey(view, st->key_fields, &key));
  Status s = st->tree->Insert(Slice(key), record, /*unique=*/true);
  if (s.IsConstraint()) {
    return Status::Constraint("duplicate key for btree-organized relation");
  }
  DMX_RETURN_IF_ERROR(s);
  std::string payload = "I";
  PutLengthPrefixedSlice(&payload, key);
  payload.append(record.data(), record.size());
  DMX_RETURN_IF_ERROR(BtLog(ctx, std::move(payload)));
  *record_key = std::move(key);
  return Status::OK();
}

Status BtErase(SmContext& ctx, const Slice& record_key,
               const Slice& old_record) {
  BtSmState* st = StateOf(ctx);
  DMX_RETURN_IF_ERROR(st->tree->Remove(record_key, old_record));
  std::string payload = "D";
  PutLengthPrefixedSlice(&payload, record_key);
  payload.append(old_record.data(), old_record.size());
  return BtLog(ctx, std::move(payload));
}

Status BtUpdate(SmContext& ctx, const Slice& record_key,
                const Slice& old_record, const Slice& new_record,
                std::string* new_key) {
  BtSmState* st = StateOf(ctx);
  RecordView view(new_record, &ctx.desc->schema);
  std::string nkey;
  DMX_RETURN_IF_ERROR(EncodeFieldKey(view, st->key_fields, &nkey));
  DMX_RETURN_IF_ERROR(st->tree->Remove(record_key, old_record));
  Status s = st->tree->Insert(Slice(nkey), new_record, /*unique=*/true);
  if (!s.ok()) {
    // Restore the removed entry before surfacing the failure.
    st->tree->Insert(record_key, old_record).ok();
    return s;
  }
  std::string payload = "U";
  PutLengthPrefixedSlice(&payload, record_key);
  PutLengthPrefixedSlice(&payload, old_record);
  PutLengthPrefixedSlice(&payload, nkey);
  PutLengthPrefixedSlice(&payload, new_record);
  DMX_RETURN_IF_ERROR(BtLog(ctx, std::move(payload)));
  *new_key = std::move(nkey);
  return Status::OK();
}

Status BtFetch(SmContext& ctx, const Slice& record_key, std::string* record) {
  BtSmState* st = StateOf(ctx);
  std::vector<std::string> values;
  DMX_RETURN_IF_ERROR(st->tree->Lookup(record_key, &values));
  if (values.empty()) return Status::NotFound("record");
  *record = std::move(values[0]);
  return Status::OK();
}

class BtSmScan : public Scan {
 public:
  BtSmScan(Database* db, const RelationDescriptor* desc,
           std::unique_ptr<BTreeIterator> it, const ScanSpec& spec)
      : db_(db), desc_(desc), it_(std::move(it)), spec_(spec) {}

  Status Next(ScanItem* out) override {
    std::string key, value;
    while (true) {
      Status s = it_->Next(&key, &value);
      if (s.IsNotFound()) return Status::NotFound("end of scan");
      DMX_RETURN_IF_ERROR(s);
      if (spec_.high_key.has_value()) {
        int cmp = Slice(key).compare(Slice(*spec_.high_key));
        if (cmp > 0 || (cmp == 0 && !spec_.high_inclusive)) {
          return Status::NotFound("end of scan");
        }
      }
      holder_ = std::move(value);
      RecordView view(Slice(holder_), &desc_->schema);
      if (spec_.filter != nullptr) {
        bool passes = false;
        DMX_RETURN_IF_ERROR(
            db_->evaluator()->EvalPredicate(*spec_.filter, view, &passes));
        if (!passes) continue;
      }
      out->record_key = key;
      out->view = view;
      return Status::OK();
    }
  }

  Status SavePosition(std::string* out) const override {
    it_->SavePosition(out);
    return Status::OK();
  }

  Status RestorePosition(const Slice& pos) override {
    return it_->RestorePosition(pos);
  }

 private:
  Database* db_;
  const RelationDescriptor* desc_;
  std::unique_ptr<BTreeIterator> it_;
  ScanSpec spec_;
  std::string holder_;  // keeps the returned record bytes alive
};

Status BtOpenScan(SmContext& ctx, const ScanSpec& spec,
                  std::unique_ptr<Scan>* scan) {
  BtSmState* st = StateOf(ctx);
  std::unique_ptr<BTreeIterator> it;
  std::optional<std::string> low;
  if (spec.low_key.has_value()) {
    low = BTreeComposeEntry(Slice(*spec.low_key), Slice());
    if (!spec.low_inclusive) {
      // Skip every entry whose key equals low_key: the composite encoding
      // is escaped(key) + 00 00 + value, so escaped(key) + 00 01 sorts
      // after all of them and before the next key.
      low->back() = '\x01';
    }
  }
  DMX_RETURN_IF_ERROR(st->tree->NewIterator(&it, low, /*low_inclusive=*/true));
  *scan = std::make_unique<BtSmScan>(ctx.db, ctx.desc, std::move(it), spec);
  return Status::OK();
}

// Partition by separator keys: each sub-spec is a key range expressed with
// the ordinary low_key/high_key fields (half-open at the separator), so
// BtOpenScan needs no partition-specific path — every worker does a fresh
// descent. Correctness does not depend on separator placement: any set of
// strictly increasing keys cuts the key space into disjoint, covering
// ranges.
Status BtPartitionScan(SmContext& ctx, const ScanSpec& spec, int target,
                       std::vector<ScanSpec>* partitions) {
  partitions->clear();
  BtSmState* st = StateOf(ctx);
  std::vector<std::string> composites;
  if (target >= 2) {
    DMX_RETURN_IF_ERROR(st->tree->SeparatorKeys(target, &composites));
  }
  std::vector<std::string> cuts;
  for (const std::string& c : composites) {
    std::string key, value;
    if (!BTreeSplitEntry(Slice(c), &key, &value).ok()) continue;
    // Clamp to the requested range; a cut at or outside a bound would
    // produce an empty partition.
    if (spec.low_key.has_value() &&
        Slice(key).compare(Slice(*spec.low_key)) <= 0) {
      continue;
    }
    if (spec.high_key.has_value() &&
        Slice(key).compare(Slice(*spec.high_key)) >= 0) {
      continue;
    }
    if (!cuts.empty() && cuts.back() == key) continue;
    cuts.push_back(std::move(key));
  }
  if (cuts.empty()) {
    partitions->push_back(spec);  // declined: serial fallback
    return Status::OK();
  }
  for (size_t i = 0; i <= cuts.size(); ++i) {
    ScanSpec sub = spec;
    if (i > 0) {
      sub.low_key = cuts[i - 1];
      sub.low_inclusive = true;
    }
    if (i < cuts.size()) {
      sub.high_key = cuts[i];
      sub.high_inclusive = false;
    }
    partitions->push_back(std::move(sub));
  }
  return Status::OK();
}

Status BtCost(SmContext& ctx, const std::vector<ExprPtr>& predicates,
              AccessCost* out) {
  BtSmState* st = StateOf(ctx);
  uint64_t leaves = 0, records = 0;
  uint32_t height = 1;
  DMX_RETURN_IF_ERROR(st->tree->LeafPages(&leaves));
  DMX_RETURN_IF_ERROR(st->tree->Count(&records));
  DMX_RETURN_IF_ERROR(st->tree->Height(&height));
  out->usable = true;
  out->selectivity = EstimateSelectivity(predicates);
  out->handled_predicates.clear();
  // A predicate on the first key field lets the tree descend instead of
  // scanning every leaf ("a B-tree access path will return a low cost if
  // there is a predicate on the key of the B-tree").
  bool keyed = false;
  double key_selectivity = 1.0;
  for (size_t i = 0; i < predicates.size(); ++i) {
    int field;
    ExprOp op;
    Value constant;
    if (MatchFieldCompare(predicates[i], &field, &op, &constant) &&
        !st->key_fields.empty() && field == st->key_fields[0] &&
        op != ExprOp::kNe) {
      keyed = true;
      key_selectivity *= EstimateSelectivity(predicates[i]);
      out->handled_predicates.push_back(static_cast<int>(i));
    }
  }
  if (keyed) {
    out->io_cost = height + key_selectivity * static_cast<double>(leaves);
    out->cpu_cost = key_selectivity * static_cast<double>(records);
  } else {
    out->io_cost = static_cast<double>(leaves);
    out->cpu_cost = static_cast<double>(records);
    for (size_t i = 0; i < predicates.size(); ++i) {
      out->handled_predicates.push_back(static_cast<int>(i));
    }
  }
  return Status::OK();
}

Status BtCount(SmContext& ctx, uint64_t* records) {
  return StateOf(ctx)->tree->Count(records);
}

Status BtApply(SmContext& ctx, const LogRecord& rec, bool undo) {
  BtSmState* st = StateOf(ctx);
  Slice in(rec.payload);
  if (in.empty()) return Status::Corruption("btree sm payload");
  char op = in[0];
  in.remove_prefix(1);
  Slice key;
  if (!GetLengthPrefixedSlice(&in, &key)) {
    return Status::Corruption("btree sm key");
  }
  switch (op) {
    case 'I':
      return undo ? st->tree->Remove(key, in, /*idempotent=*/true)
                  : st->tree->Insert(key, in);
    case 'D':
      return undo ? st->tree->Insert(key, in)
                  : st->tree->Remove(key, in, /*idempotent=*/true);
    case 'U': {
      Slice old_rec, nkey, new_rec;
      if (!GetLengthPrefixedSlice(&in, &old_rec) ||
          !GetLengthPrefixedSlice(&in, &nkey) ||
          !GetLengthPrefixedSlice(&in, &new_rec)) {
        return Status::Corruption("btree sm update payload");
      }
      if (undo) {
        DMX_RETURN_IF_ERROR(st->tree->Remove(nkey, new_rec, true));
        return st->tree->Insert(key, old_rec);
      }
      DMX_RETURN_IF_ERROR(st->tree->Remove(key, old_rec, true));
      return st->tree->Insert(nkey, new_rec);
    }
    default:
      return Status::Corruption("btree sm op");
  }
}

// Structural sweep plus a record-decode pass: the stored values are the
// relation's records, so a corrupted leaf payload must surface here.
Status BtVerify(SmContext& ctx, VerifyReport* report) {
  BtSmState* st = StateOf(ctx);
  std::vector<std::string> problems;
  uint64_t entries = 0;
  DMX_RETURN_IF_ERROR(st->tree->Verify(&problems, &entries));
  for (std::string& p : problems) report->Problem(std::move(p));
  report->items += entries;
  if (!report->clean()) return Status::OK();
  std::unique_ptr<BTreeIterator> it;
  DMX_RETURN_IF_ERROR(st->tree->NewIterator(&it));
  std::string key, value;
  while (true) {
    Status s = it->Next(&key, &value);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    RecordView view(Slice(value), &ctx.desc->schema);
    Status vs = view.Validate();
    if (!vs.ok()) {
      report->Problem("btree record at key fails to decode: " +
                      vs.ToString());
      continue;
    }
    std::string expect;
    Status ks = EncodeFieldKey(view, st->key_fields, &expect);
    if (ks.ok() && expect != key) {
      report->Problem("btree entry key does not match its record's "
                      "key fields");
    }
  }
  return Status::OK();
}

Status BtUndo(SmContext& ctx, const LogRecord& rec, Lsn) {
  return BtApply(ctx, rec, /*undo=*/true);
}

Status BtRedo(SmContext& ctx, const LogRecord& rec, Lsn) {
  return BtApply(ctx, rec, /*undo=*/false);
}

}  // namespace

const SmOps& BTreeStorageMethodOps() {
  static const SmOps ops = [] {
    SmOps o;
    o.name = "btree";
    o.validate = BtValidate;
    o.create = BtCreate;
    o.drop = BtDrop;
    o.open = BtOpen;
    o.insert = BtInsert;
    o.update = BtUpdate;
    o.erase = BtErase;
    o.fetch = BtFetch;
    o.open_scan = BtOpenScan;
    o.partition_scan = BtPartitionScan;
    o.cost = BtCost;
    o.undo = BtUndo;
    o.redo = BtRedo;
    o.count = BtCount;
    o.verify = BtVerify;
    return o;
  }();
  return ops;
}

}  // namespace dmx
