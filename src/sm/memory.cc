#include "src/sm/memory.h"

#include <map>

#include "src/core/costing.h"
#include "src/core/database.h"
#include "src/util/coding.h"

namespace dmx {
namespace {

struct MemState : public ExtState {
  std::map<std::string, std::string> rows;  // key -> record image
  uint64_t next = 1;
};

MemState* StateOf(SmContext& ctx) { return static_cast<MemState*>(ctx.state); }

std::string EncodeMemKey(uint64_t n) {
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[i] = static_cast<char>(n & 0xff);
    n >>= 8;
  }
  return out;
}

uint64_t DecodeMemKey(const Slice& key) {
  uint64_t n = 0;
  for (size_t i = 0; i < key.size() && i < 8; ++i) {
    n = (n << 8) | static_cast<uint8_t>(key[i]);
  }
  return n;
}

Status MemValidate(const Schema&, const AttrList& attrs,
                   std::string* sm_desc) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({}));
  sm_desc->clear();
  return Status::OK();
}

Status MemCreate(SmContext&, std::string*) { return Status::OK(); }
Status MemDrop(SmContext&) { return Status::OK(); }

Status MemOpen(SmContext&, std::unique_ptr<ExtState>* state) {
  *state = std::make_unique<MemState>();
  return Status::OK();
}

// -- mainmemory snapshots (checkpoint support) --------------------------------

std::string SnapshotPath(SmContext& ctx) {
  return ctx.db->dir() + "/mm_" + std::to_string(ctx.desc->id) + ".snapshot";
}

// Snapshot encoding: fixed64 next-counter | varint row count |
// per row: lps(key) lps(record).
Status MainMemCheckpoint(SmContext& ctx) {
  MemState* st = StateOf(ctx);
  std::string data;
  PutFixed64(&data, st->next);
  PutVarint32(&data, static_cast<uint32_t>(st->rows.size()));
  for (const auto& [key, record] : st->rows) {
    PutLengthPrefixedSlice(&data, key);
    PutLengthPrefixedSlice(&data, record);
  }
  return ctx.db->env()->WriteFileAtomic(SnapshotPath(ctx), data);
}

Status MainMemOpen(SmContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<MemState>();
  std::string data;
  if (ctx.db->env()->ReadFileToString(SnapshotPath(ctx), &data).ok()) {
    Slice s(data);
    uint64_t next;
    uint32_t count;
    if (!GetFixed64(&s, &next) || !GetVarint32(&s, &count)) {
      return Status::Corruption("mainmemory snapshot header");
    }
    st->next = next;
    for (uint32_t i = 0; i < count; ++i) {
      Slice key, record;
      if (!GetLengthPrefixedSlice(&s, &key) ||
          !GetLengthPrefixedSlice(&s, &record)) {
        return Status::Corruption("mainmemory snapshot row");
      }
      st->rows[key.ToString()] = record.ToString();
    }
  }
  *state = std::move(st);
  return Status::OK();
}

Status MainMemDrop(SmContext& ctx) {
  ctx.db->env()->DeleteFile(SnapshotPath(ctx)).ok();  // may not exist
  return Status::OK();
}

// Core table operations shared by both methods; `logged` selects whether
// changes flow through the common recovery log.
Status MemLog(SmContext& ctx, std::string payload) {
  LogRecord rec = MakeUpdateRecord(
      ctx.txn != nullptr ? ctx.txn->id() : kInvalidTxnId,
      ExtKind::kStorageMethod, ctx.desc->sm_id, ctx.desc->id,
      std::move(payload));
  rec.prev_lsn = ctx.txn != nullptr ? ctx.txn->last_lsn() : kInvalidLsn;
  DMX_RETURN_IF_ERROR(ctx.db->log()->Append(&rec));
  if (ctx.txn != nullptr) ctx.txn->set_last_lsn(rec.lsn);
  return Status::OK();
}

template <bool kLogged>
Status MemInsert(SmContext& ctx, const Slice& record,
                 std::string* record_key) {
  MemState* st = StateOf(ctx);
  std::string key = EncodeMemKey(st->next++);
  st->rows[key] = record.ToString();
  if (kLogged) {
    std::string payload = "I";
    PutLengthPrefixedSlice(&payload, key);
    payload.append(record.data(), record.size());
    DMX_RETURN_IF_ERROR(MemLog(ctx, std::move(payload)));
  }
  *record_key = std::move(key);
  return Status::OK();
}

template <bool kLogged>
Status MemUpdate(SmContext& ctx, const Slice& record_key,
                 const Slice& old_record, const Slice& new_record,
                 std::string* new_key) {
  MemState* st = StateOf(ctx);
  auto it = st->rows.find(record_key.ToString());
  if (it == st->rows.end()) return Status::NotFound("record");
  it->second = new_record.ToString();
  if (kLogged) {
    std::string payload = "U";
    PutLengthPrefixedSlice(&payload, record_key);
    PutLengthPrefixedSlice(&payload, old_record);
    PutLengthPrefixedSlice(&payload, new_record);
    DMX_RETURN_IF_ERROR(MemLog(ctx, std::move(payload)));
  }
  *new_key = record_key.ToString();
  return Status::OK();
}

template <bool kLogged>
Status MemErase(SmContext& ctx, const Slice& record_key,
                const Slice& old_record) {
  MemState* st = StateOf(ctx);
  auto it = st->rows.find(record_key.ToString());
  if (it == st->rows.end()) return Status::NotFound("record");
  st->rows.erase(it);
  if (kLogged) {
    std::string payload = "D";
    PutLengthPrefixedSlice(&payload, record_key);
    payload.append(old_record.data(), old_record.size());
    DMX_RETURN_IF_ERROR(MemLog(ctx, std::move(payload)));
  }
  return Status::OK();
}

Status MemFetch(SmContext& ctx, const Slice& record_key,
                std::string* record) {
  MemState* st = StateOf(ctx);
  auto it = st->rows.find(record_key.ToString());
  if (it == st->rows.end()) return Status::NotFound("record");
  *record = it->second;
  return Status::OK();
}

class MemScan : public Scan {
 public:
  MemScan(Database* db, const RelationDescriptor* desc, MemState* st,
          const ScanSpec& spec)
      : db_(db), desc_(desc), st_(st), spec_(spec) {
    if (spec_.low_key.has_value()) {
      pos_ = *spec_.low_key;
      exclusive_ = !spec_.low_inclusive;
    }
  }

  Status Next(ScanItem* out) override {
    while (true) {
      auto it = exclusive_ ? st_->rows.upper_bound(pos_)
                           : st_->rows.lower_bound(pos_);
      if (it == st_->rows.end()) return Status::NotFound("end of scan");
      pos_ = it->first;
      exclusive_ = true;
      if (spec_.high_key.has_value()) {
        int cmp = Slice(it->first).compare(Slice(*spec_.high_key));
        if (cmp > 0 || (cmp == 0 && !spec_.high_inclusive)) {
          return Status::NotFound("end of scan");
        }
      }
      RecordView view(Slice(it->second), &desc_->schema);
      if (spec_.filter != nullptr) {
        bool passes = false;
        DMX_RETURN_IF_ERROR(
            db_->evaluator()->EvalPredicate(*spec_.filter, view, &passes));
        if (!passes) continue;
      }
      out->record_key = it->first;
      out->view = view;
      return Status::OK();
    }
  }

  Status SavePosition(std::string* out) const override {
    out->assign(1, exclusive_ ? 1 : 0);
    out->append(pos_);
    return Status::OK();
  }

  Status RestorePosition(const Slice& pos) override {
    if (pos.empty()) return Status::InvalidArgument("empty position");
    exclusive_ = pos[0] != 0;
    pos_.assign(pos.data() + 1, pos.size() - 1);
    return Status::OK();
  }

 private:
  Database* db_;
  const RelationDescriptor* desc_;
  MemState* st_;
  ScanSpec spec_;
  std::string pos_;
  bool exclusive_ = false;
};

Status MemOpenScan(SmContext& ctx, const ScanSpec& spec,
                   std::unique_ptr<Scan>* scan) {
  *scan = std::make_unique<MemScan>(ctx.db, ctx.desc, StateOf(ctx), spec);
  return Status::OK();
}

Status MemCost(SmContext& ctx, const std::vector<ExprPtr>& predicates,
               AccessCost* out) {
  MemState* st = StateOf(ctx);
  out->usable = true;
  out->io_cost = 0;  // memory-resident: the intro's motivation
  out->cpu_cost = static_cast<double>(st->rows.size());
  out->selectivity = EstimateSelectivity(predicates);
  out->handled_predicates.clear();
  for (size_t i = 0; i < predicates.size(); ++i) {
    out->handled_predicates.push_back(static_cast<int>(i));
  }
  return Status::OK();
}

Status MemCount(SmContext& ctx, uint64_t* records) {
  *records = StateOf(ctx)->rows.size();
  return Status::OK();
}

// In-memory table sweep: every row must decode against the schema and no
// key may exceed the insertion counter (a stale counter would hand out
// duplicate record keys).
Status MemVerify(SmContext& ctx, VerifyReport* report) {
  MemState* st = StateOf(ctx);
  for (const auto& [key, record] : st->rows) {
    RecordView view(Slice(record), &ctx.desc->schema);
    Status vs = view.Validate();
    if (!vs.ok()) {
      report->Problem("memory row " + std::to_string(DecodeMemKey(Slice(key))) +
                      " fails to decode: " + vs.ToString());
      continue;
    }
    if (DecodeMemKey(Slice(key)) >= st->next) {
      report->Problem("memory row key " +
                      std::to_string(DecodeMemKey(Slice(key))) +
                      " at or above the insertion counter " +
                      std::to_string(st->next));
    }
    ++report->items;
  }
  return Status::OK();
}

Status MemNoUndo(SmContext&, const LogRecord&, Lsn) { return Status::OK(); }
Status MemNoRedo(SmContext&, const LogRecord&, Lsn) { return Status::OK(); }

// Logged (mainmemory) recovery: logical replay into the in-memory table.
Status MainMemApply(SmContext& ctx, const LogRecord& rec, bool undo) {
  MemState* st = StateOf(ctx);
  Slice in(rec.payload);
  if (in.empty()) return Status::Corruption("mainmemory payload");
  char op = in[0];
  in.remove_prefix(1);
  Slice key;
  if (!GetLengthPrefixedSlice(&in, &key)) {
    return Status::Corruption("mainmemory key");
  }
  // Keep the insertion counter ahead of every key ever seen so replayed
  // tables continue numbering correctly.
  uint64_t kn = DecodeMemKey(key);
  if (kn >= st->next) st->next = kn + 1;
  switch (op) {
    case 'I':
      if (undo) {
        st->rows.erase(key.ToString());
      } else {
        st->rows[key.ToString()] = in.ToString();
      }
      return Status::OK();
    case 'D':
      if (undo) {
        st->rows[key.ToString()] = in.ToString();
      } else {
        st->rows.erase(key.ToString());
      }
      return Status::OK();
    case 'U': {
      Slice old_rec, new_rec;
      if (!GetLengthPrefixedSlice(&in, &old_rec) ||
          !GetLengthPrefixedSlice(&in, &new_rec)) {
        return Status::Corruption("mainmemory update payload");
      }
      st->rows[key.ToString()] = undo ? old_rec.ToString()
                                      : new_rec.ToString();
      return Status::OK();
    }
    default:
      return Status::Corruption("mainmemory op");
  }
}

Status MainMemUndo(SmContext& ctx, const LogRecord& rec, Lsn) {
  return MainMemApply(ctx, rec, /*undo=*/true);
}

Status MainMemRedo(SmContext& ctx, const LogRecord& rec, Lsn) {
  return MainMemApply(ctx, rec, /*undo=*/false);
}

}  // namespace

const SmOps& TempStorageMethodOps() {
  static const SmOps ops = [] {
    SmOps o;
    o.name = "temp";
    o.validate = MemValidate;
    o.create = MemCreate;
    o.drop = MemDrop;
    o.open = MemOpen;
    o.insert = MemInsert<false>;
    o.update = MemUpdate<false>;
    o.erase = MemErase<false>;
    o.fetch = MemFetch;
    o.open_scan = MemOpenScan;
    o.cost = MemCost;
    o.undo = MemNoUndo;
    o.redo = MemNoRedo;
    o.count = MemCount;
    o.verify = MemVerify;
    return o;
  }();
  return ops;
}

const SmOps& MainMemoryStorageMethodOps() {
  static const SmOps ops = [] {
    SmOps o;
    o.name = "mainmemory";
    o.validate = MemValidate;
    o.create = MemCreate;
    o.drop = MainMemDrop;
    o.open = MainMemOpen;
    o.checkpoint = MainMemCheckpoint;
    o.insert = MemInsert<true>;
    o.update = MemUpdate<true>;
    o.erase = MemErase<true>;
    o.fetch = MemFetch;
    o.open_scan = MemOpenScan;
    o.cost = MemCost;
    o.undo = MainMemUndo;
    o.redo = MainMemRedo;
    o.count = MemCount;
    o.verify = MemVerify;
    return o;
  }();
  return ops;
}

}  // namespace dmx
