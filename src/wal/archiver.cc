#include "src/wal/archiver.h"

#include <chrono>

namespace dmx {

namespace {

std::string BasenameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

WalArchiver::WalArchiver(LogManager* log, Env* env, Options options)
    : log_(log), env_(env), options_(std::move(options)) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metric_archived_ = metrics->GetCounter("wal.archived_segments");
  metric_failures_ = metrics->GetCounter("wal.archive_failures");
}

WalArchiver::~WalArchiver() { Stop(); }

Status WalArchiver::Start(std::function<void(const Status&)> on_failure) {
  DMX_RETURN_IF_ERROR(env_->CreateDir(options_.archive_dir));
  DMX_RETURN_IF_ERROR(env_->SyncDir(DirnameOf(options_.archive_dir)));
  if (thread_.joinable()) return Status::OK();
  {
    MutexLock lock(&mu_);
    stop_ = false;
    parked_ = false;
    on_failure_ = std::move(on_failure);
  }
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void WalArchiver::Stop() {
  if (!thread_.joinable()) return;
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
}

void WalArchiver::Kick() {
  {
    MutexLock lock(&mu_);
    kicked_ = true;
    parked_ = false;
  }
  cv_.NotifyAll();
}

void WalArchiver::Loop() {
  while (true) {
    {
      MutexLock lock(&mu_);
      if (!stop_ && !kicked_) {
        if (parked_) {
          cv_.Wait();
        } else {
          // Timed poll; a timeout wake is the normal case.
          (void)cv_.WaitUntil(
              std::chrono::steady_clock::now() +
              std::chrono::microseconds(options_.poll_interval_us));
        }
      }
      if (stop_) return;
      kicked_ = false;
      if (parked_) continue;
    }
    Status s = Poll();
    if (!s.ok() && !s.IsBusy()) {
      metric_failures_->Increment();
      std::function<void(const Status&)> cb;
      {
        MutexLock lock(&mu_);
        parked_ = true;  // recovery (or Stop) wakes us
        cb = on_failure_;
      }
      if (cb) cb(s);
    }
  }
}

Status WalArchiver::Poll() {
  // Rotate when the flushed frames of the live log pass the size target
  // (LSNs are byte offsets, so no file stat is needed). Busy — a pin, an
  // in-flight group flush, or freshly appended bytes — just means "not
  // now"; the next poll retries.
  if (log_->flushed_lsn() >
      log_->base_lsn() + options_.segment_target_bytes) {
    Status fs = log_->FlushAll();
    if (fs.ok()) {
      Status rs = log_->Rotate();
      if (!rs.ok() && !rs.IsBusy()) return rs;
    } else if (!fs.IsBusy()) {
      return fs;
    }
  }
  return ArchivePending();
}

Status WalArchiver::ArchivePending() {
  for (const LogManager::SegmentInfo& seg : log_->segments()) {
    if (seg.archived) continue;
    DMX_RETURN_IF_ERROR(ArchiveOne(seg));
    log_->MarkArchived(seg.seqno);
    metric_archived_->Increment();
  }
  return Status::OK();
}

Status WalArchiver::ArchiveOne(const LogManager::SegmentInfo& seg) {
  // Verify the source before a single byte leaves the database directory:
  // the archive must never launder local corruption into "safe" history.
  SegmentHeader hdr;
  DMX_RETURN_IF_ERROR(VerifySegmentFile(env_, seg.path, &hdr));
  if (hdr.seqno != seg.seqno || hdr.base_lsn != seg.base_lsn ||
      hdr.end_lsn != seg.end_lsn) {
    return Status::Corruption("segment '" + seg.path +
                              "' header disagrees with the wal registry");
  }
  const std::string final_path =
      options_.archive_dir + "/" + BasenameOf(seg.path);
  if (env_->FileExists(final_path).ok()) {
    // A previous pass (or a pre-crash incarnation) already published this
    // segment. Trust it only if it verifies identically; otherwise
    // replace it.
    SegmentHeader existing;
    Status v = VerifySegmentFile(env_, final_path, &existing);
    if (v.ok() && existing.seqno == hdr.seqno &&
        existing.base_lsn == hdr.base_lsn &&
        existing.end_lsn == hdr.end_lsn && existing.gen == hdr.gen) {
      return Status::OK();
    }
    DMX_RETURN_IF_ERROR(env_->DeleteFile(final_path));
  }
  // Copy under a temporary name, then publish with rename + dir sync, so
  // a reader of the archive never observes a partial segment and a crash
  // mid-copy leaves only a harmless .tmp the next pass overwrites.
  const std::string tmp_path = final_path + ".tmp";
  if (env_->FileExists(tmp_path).ok()) {
    DMX_RETURN_IF_ERROR(env_->DeleteFile(tmp_path));
  }
  DMX_RETURN_IF_ERROR(env_->LinkOrCopyFile(seg.path, tmp_path));
  // Re-verify the landed bytes: the copy path itself (a flaky NFS mount,
  // a lying controller) is part of what the archive guards against.
  SegmentHeader copied;
  DMX_RETURN_IF_ERROR(VerifySegmentFile(env_, tmp_path, &copied));
  if (copied.seqno != hdr.seqno || copied.base_lsn != hdr.base_lsn ||
      copied.end_lsn != hdr.end_lsn) {
    // Best-effort: the mismatched copy is garbage either way.
    (void)env_->DeleteFile(tmp_path);
    return Status::Corruption("archived copy of '" + seg.path +
                              "' does not match its source");
  }
  DMX_RETURN_IF_ERROR(env_->RenameFile(tmp_path, final_path));
  return env_->SyncDir(options_.archive_dir);
}

}  // namespace dmx
