// LogManager: append-only write-ahead log with group buffering and
// per-record checksums.
//
// File layout:
//   header (24 bytes): u32 magic | u64 base_lsn | u32 generation |
//                      u32 crc of the preceding 16 bytes | u32 pad
//   frames:            u32 length | u32 crc | body
//
// The frame crc is a CRC32C over the header's generation number followed by
// the body, so replay can tell three situations apart:
//   * torn tail — the final frame is incomplete or fails its crc: the write
//     never finished before a crash; replay stops cleanly and the tail is
//     truncated away;
//   * stale frames — a crc that matches a *previous* generation marks bytes
//     left over from before a checkpoint truncation that crashed between
//     writing the new header and shrinking the file; replay discards them;
//   * corruption — a crc mismatch anywhere else (e.g. a flipped bit in the
//     middle of the log) is real damage: ReadAll returns kCorruption rather
//     than silently replaying a prefix.
//
// LSN = base_lsn + (file offset - header) + 1, so kInvalidLsn = 0 is never a
// real LSN and LSNs keep increasing across checkpoint truncations (page LSNs
// stamped before a checkpoint must stay smaller than every post-checkpoint
// LSN for redo gating to work). A frame occupies 8 + length bytes of LSN
// space.
//
// Checkpoint truncation is crash-safe: Truncate writes and syncs the new
// header (advanced base, bumped generation) before shrinking the file, so a
// crash at any point leaves either the old log or the new empty log, never a
// file whose header disagrees with its frames. If Truncate fails after the
// point of no return the manager poisons itself — every later operation
// returns IOError until the log is reopened.
//
// All I/O goes through a pluggable Env (fault injection in tests).

#ifndef DMX_WAL_LOG_MANAGER_H_
#define DMX_WAL_LOG_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/common.h"
#include "src/util/env.h"
#include "src/util/metrics.h"
#include "src/util/status.h"
#include "src/wal/log_record.h"

namespace dmx {

class LogManager {
 public:
  LogManager();
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Open (or create) the log file through `env` (Env::Default() when
  /// null). Creation syncs the file and its parent directory.
  Status Open(const std::string& path, bool create, Env* env = nullptr);
  Status Close();

  /// Append a record; assigns rec->lsn. Does not force to disk — call
  /// FlushTo (the buffer-pool WAL hook and commits do).
  Status Append(LogRecord* rec);

  /// Ensure all records with lsn <= `lsn` are durable.
  Status FlushTo(Lsn lsn);
  /// Flush everything appended so far.
  Status FlushAll();

  Lsn flushed_lsn() const { return flushed_lsn_; }
  Lsn next_lsn() const { return next_lsn_; }

  /// Read the entire log (for restart recovery). A torn final record or a
  /// stale post-truncation tail is tolerated: replay stops before it and
  /// the tail is truncated off the file. Mid-log damage returns
  /// kCorruption.
  Status ReadAll(std::vector<LogRecord>* out);

  /// Read a single record by LSN (for rollback chains), verifying its crc.
  Status ReadRecord(Lsn lsn, LogRecord* out);

  /// Discard every record (checkpoint): the file becomes an empty log
  /// whose base is the current end, so future LSNs continue from here.
  /// The caller must ensure nothing in the discarded range is still
  /// needed (no active transactions; all pages/snapshots flushed).
  Status Truncate();

  /// Statistics: number of records appended this session.
  uint64_t records_appended() const { return records_appended_; }

 private:
  Status WriteHeaderLocked();

  Env* env_ = nullptr;
  std::unique_ptr<RandomAccessFile> file_;
  std::string path_;
  Lsn base_lsn_ = 0;     // LSNs below this were truncated away
  uint32_t gen_ = 1;     // bumped on every truncation
  Lsn next_lsn_ = 1;
  Lsn flushed_lsn_ = 0;  // highest durable LSN
  std::string buffer_;   // unflushed bytes
  Lsn buffer_start_ = 1; // LSN of buffer_[0]
  Counter records_appended_;  // atomic: read by stats while writers append
  bool poisoned_ = false;  // set on unrecoverable Truncate failure
  // Registry metrics ("wal.*"), resolved once at construction. Appends are
  // a few hundred ns, so their latency is sampled 1-in-64; fsyncs are µs+
  // and every one is timed. The sampling tick is guarded by mu_ like the
  // rest of the append path, so it needs no atomicity of its own.
  Counter* metric_appends_;
  Histogram* metric_append_ns_;
  Counter* metric_syncs_;
  Histogram* metric_sync_ns_;
  uint64_t append_tick_ = 0;
  mutable std::mutex mu_;
};

}  // namespace dmx

#endif  // DMX_WAL_LOG_MANAGER_H_
