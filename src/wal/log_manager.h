// LogManager: append-only write-ahead log with group buffering and
// per-record checksums.
//
// File layout:
//   header (24 bytes): u32 magic | u64 base_lsn | u32 generation |
//                      u32 crc of the preceding 16 bytes | u32 pad
//   frames:            u32 length | u32 crc | body
//
// The frame crc is a CRC32C over the header's generation number followed by
// the body, so replay can tell three situations apart:
//   * torn tail — the final frame is incomplete or fails its crc: the write
//     never finished before a crash; replay stops cleanly and the tail is
//     truncated away;
//   * stale frames — a crc that matches a *previous* generation marks bytes
//     left over from before a checkpoint truncation that crashed between
//     writing the new header and shrinking the file; replay discards them;
//   * corruption — a crc mismatch anywhere else (e.g. a flipped bit in the
//     middle of the log) is real damage: ReadAll returns kCorruption rather
//     than silently replaying a prefix.
//
// LSN = base_lsn + (file offset - header) + 1, so kInvalidLsn = 0 is never a
// real LSN and LSNs keep increasing across checkpoint truncations (page LSNs
// stamped before a checkpoint must stay smaller than every post-checkpoint
// LSN for redo gating to work). A frame occupies 8 + length bytes of LSN
// space.
//
// Checkpoint truncation is crash-safe: Truncate writes and syncs the new
// header (advanced base, bumped generation) before shrinking the file, so a
// crash at any point leaves either the old log or the new empty log, never a
// file whose header disagrees with its frames. If Truncate fails after the
// point of no return the manager poisons itself — every later operation
// returns IOError (carrying the original failing Status) until the log is
// reopened or Resume() repairs it in place.
//
// Resume() is the un-poison contract for the ErrorHandler's background
// recovery: it finishes whichever half of the failed truncation is
// outstanding (rewrite the restored header, or complete the shrink), then
// probes the full append+sync path, and only clears the poison when every
// step succeeds. While the fault persists, Resume keeps failing and the
// manager stays poisoned; callers retry on their own schedule.
//
// Group commit (the default flush mode): a committer that needs lsn N
// durable becomes the *leader* if no flush is running — it snapshots the
// whole buffer, releases the mutex, and pays one write+fsync for every
// record appended so far; committers that arrive while that fsync is in
// flight append their frames (the mutex is free) and wait as *followers*
// on the condvar. When the leader finishes it acknowledges every follower
// whose LSN the batch covered; an uncovered follower becomes the next
// leader, so batches form naturally from fsync latency without any timer.
// An optional batching window (group_window_us/max_batch) lets a leader
// linger for stragglers when the workload is bursty. On a failed group
// flush nothing is acknowledged: the buffer and counters are left intact,
// every follower inside the failed batch gets the leader's original
// failing Status (never a fabricated one), and strict committers can
// abort cleanly exactly as with the old fsync-per-commit path.
//
// Segments and archiving: Rotate() freezes the flushed frames of the live
// file into an immutable sealed segment (`<wal>.NNNNNN.seg`, wal_format.h)
// and resets the live file, so LSNs keep increasing while history becomes a
// chain of verifiable files an archiver can copy off-box. With
// SetRetainSegments(true), CheckpointTruncate() reclaims only segments the
// archiver has confirmed archived — archive-before-truncate — and ReadAll /
// ReadRecord transparently serve records from sealed segments, so restart
// recovery and rollback chains are unaware of rotation. PinWal() (held by
// online backup) makes rotation/truncation/reclaim return Busy so the WAL
// range a backup needs cannot vanish mid-copy.
//
// Relaxed durability: AppendCommitRelaxed acknowledges a commit at
// append; a background flusher thread (StartFlusher) groups such commits
// and makes them durable within ~flush_interval. unflushed_commits()
// exposes how many acknowledged-but-not-yet-durable commits exist (the
// window a crash may lose — by design, and only in relaxed mode).
//
// All I/O goes through a pluggable Env (fault injection in tests).

#ifndef DMX_WAL_LOG_MANAGER_H_
#define DMX_WAL_LOG_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/util/common.h"
#include "src/util/env.h"
#include "src/util/metrics.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/wal/log_record.h"
#include "src/wal/wal_format.h"

namespace dmx {

class LogManager {
 public:
  LogManager();
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Open (or create) the log file through `env` (Env::Default() when
  /// null). Creation syncs the file and its parent directory.
  Status Open(const std::string& path, bool create, Env* env = nullptr);
  Status Close();

  /// Append a record; assigns rec->lsn. Does not force to disk — call
  /// FlushTo (the buffer-pool WAL hook and commits do).
  Status Append(LogRecord* rec);

  /// Append + force in one unit (the strict commit record). In group
  /// mode the force joins the leader/follower protocol, so concurrent
  /// callers share one fsync. If the flush fails and the frame is still
  /// the unflushed buffer tail, it is removed again and rec->lsn reset to
  /// kInvalidLsn, so the caller's rollback chain never crosses an
  /// unacknowledged commit record and a clean Abort remains possible
  /// while the disk misbehaves. When concurrent appends have already
  /// buried the frame, it stays in the buffer — harmless, because the
  /// caller's abort chain (kAbort + CLRs + kEnd) replays the transaction
  /// to the aborted state (see DESIGN.md §11/§12).
  Status AppendAndFlush(LogRecord* rec);

  /// Relaxed-durability commit: append the commit record and return at
  /// once. Durability is deferred to the background flusher (or to any
  /// later flush). A crash before that flush loses the commit — the
  /// contract the caller opted into with Durability::kRelaxed.
  Status AppendCommitRelaxed(LogRecord* rec);

  /// Commits acknowledged under relaxed durability whose records are not
  /// yet on disk (DESCRIBE surfaces this as db.unflushed_commits).
  uint64_t unflushed_commits() const {
    return relaxed_unflushed_.load(std::memory_order_acquire);
  }

  /// Select the flush protocol: group commit (default) or the legacy
  /// hold-the-lock fsync-per-commit path (baseline for benchmarks).
  void SetGroupCommit(bool enabled);

  /// Tune the leader's batching window: wait up to `window_us` for more
  /// commit records (up to `max_batch`) before paying the fsync. A zero
  /// window (default) relies purely on natural batching.
  void SetGroupCommitWindow(uint64_t window_us, uint32_t max_batch);

  /// Start the background group flusher for relaxed commits: wakes when
  /// relaxed commits are pending, batches them for `interval_us`, and
  /// forces the log. `on_failure` is invoked (without the log mutex) with
  /// the failing Status so the ErrorHandler can degrade the database.
  void StartFlusher(uint64_t interval_us,
                    std::function<void(const Status&)> on_failure);

  /// Stop and join the background flusher (idempotent).
  void StopFlusher();

  /// Ensure all records with lsn <= `lsn` are durable.
  Status FlushTo(Lsn lsn);
  /// Flush everything appended so far.
  Status FlushAll();

  Lsn flushed_lsn() const {
    return flushed_lsn_.load(std::memory_order_acquire);
  }
  Lsn next_lsn() const { return next_lsn_.load(std::memory_order_acquire); }

  /// Read the entire log (for restart recovery). A torn final record or a
  /// stale post-truncation tail is tolerated: replay stops before it and
  /// the tail is truncated off the file. Mid-log damage returns
  /// kCorruption.
  Status ReadAll(std::vector<LogRecord>* out);

  /// Read a single record by LSN (for rollback chains), verifying its crc.
  Status ReadRecord(Lsn lsn, LogRecord* out);

  /// Discard every record (checkpoint): the file becomes an empty log
  /// whose base is the current end, so future LSNs continue from here.
  /// The caller must ensure nothing in the discarded range is still
  /// needed (no active transactions; all pages/snapshots flushed).
  /// Sealed segments are untouched. Busy while the WAL is pinned.
  Status Truncate();

  // -- segmentation / archiving ---------------------------------------------

  /// A sealed, immutable log segment produced by Rotate() — see
  /// wal_format.h for the on-disk layout. Frames cover (base_lsn, end_lsn].
  struct SegmentInfo {
    uint32_t seqno = 0;
    Lsn base_lsn = 0;
    Lsn end_lsn = 0;
    uint32_t gen = 0;  // generation the frames were crc'd with
    std::string path;
    bool archived = false;  // a verified archive copy exists
  };

  /// Retain sealed segments across checkpoints for an archiver. Off (the
  /// pre-archiving behavior) CheckpointTruncate discards history exactly
  /// like Truncate. Set once at open, before concurrent use.
  void SetRetainSegments(bool retain);

  /// Seal the flushed frames of the live log into a new segment file
  /// (written and synced before the live file is touched) and reset the
  /// live file to an empty log continuing at the same LSN/new generation.
  /// Busy when unflushed bytes, an in-flight group flush, or a WAL pin
  /// make sealing unsafe right now; OK no-op on an empty live log. A crash
  /// at any point leaves either the old live log (a duplicate segment is
  /// deleted at the next Open) or the sealed segment + empty live log.
  Status Rotate();

  /// The checkpoint-time reclaim. With segment retention on: rotate the
  /// live log, then delete only segments already confirmed archived — the
  /// "archive before truncate" invariant; an unarchived segment is never
  /// reclaimed, so WAL space grows while the archive is unreachable
  /// instead of losing history. Retention off: plain Truncate() plus
  /// removal of any leftover segments. Same Busy conditions as Truncate.
  Status CheckpointTruncate();

  /// Snapshot of the sealed-segment registry, oldest first.
  std::vector<SegmentInfo> segments() const;

  /// Record that a verified copy of segment `seqno` exists in the archive
  /// (makes it reclaimable at the next checkpoint).
  void MarkArchived(uint32_t seqno);

  /// Sealed segments not yet confirmed archived — the archive-lag gauge
  /// DESCRIBE surfaces. Always 0 when retention is off.
  uint64_t sealed_unarchived() const;

  /// Block rotation, truncation, and segment reclaim (Busy) while held —
  /// online backup pins the WAL so the history it is copying stays put.
  /// Nestable; every PinWal needs a matching UnpinWal.
  void PinWal();
  void UnpinWal();

  /// LSNs at or below this live in sealed segments (or are gone).
  Lsn base_lsn() const;

  /// Copy the live log's durable prefix (header + flushed frames, never
  /// the unflushed buffer) to `dest_path` through the same Env. The copy
  /// is a valid standalone live-log file for a later Open.
  Status SnapshotLiveTo(const std::string& dest_path);

  /// Statistics: number of records appended this session.
  uint64_t records_appended() const { return records_appended_; }

  /// True while a failed truncation has the log refusing all work.
  bool poisoned() const {
    MutexLock lock(&mu_);
    return poison_ != PoisonKind::kNone;
  }

  /// Repair a poisoned log in place (the background-recovery contract):
  /// finish the interrupted truncation, probe the write path (flush any
  /// buffered frames, or rewrite + sync the header when the buffer is
  /// empty), and clear the poison. Also usable on a healthy log as a pure
  /// write-path probe. Fails — and leaves the poison set — while the
  /// underlying fault persists.
  Status Resume();

 private:
  /// Why the log is refusing work (see Truncate's two failure windows).
  enum class PoisonKind : uint8_t {
    kNone = 0,
    kHeaderUnknown,  // neither new nor restored header made it to disk
    kStaleTail,      // new header durable; old frames still in the file
  };

  Status WriteHeaderLocked() REQUIRES(mu_);
  /// Truncate's body (header-first advance + shrink + poison windows);
  /// callers have already verified the Busy preconditions.
  Status TruncateLocked() REQUIRES(mu_);
  /// Rotate's body; same contract.
  Status RotateLocked() REQUIRES(mu_);
  /// Shared Busy preconditions for Truncate/Rotate/CheckpointTruncate.
  Status ReclaimBlockedLocked() const REQUIRES(mu_);
  /// Discover sealed segments next to the live log at Open: delete
  /// crashed-rotation leftovers, verify the retained chain ends at the
  /// live base, and seed the seqno counter.
  Status DiscoverSegmentsLocked() REQUIRES(mu_);
  std::string SegmentPathLocked(uint32_t seqno) const REQUIRES(mu_);
  /// Refresh the wal.sealed_unarchived gauge from segments_.
  void UpdateLagGaugeLocked() REQUIRES(mu_);
  /// Dispatches to the group or legacy protocol per group_commit_.
  Status FlushToLocked(Lsn lsn) REQUIRES(mu_);
  /// Legacy flush: write + fsync the whole buffer with mu_ held.
  Status LegacyFlushLocked(Lsn lsn) REQUIRES(mu_);
  /// Group flush: leader/follower protocol. Releases mu_ around the disk
  /// I/O (re-acquired before returning), so concurrent appenders form the
  /// next batch while the leader's fsync is in flight.
  Status GroupFlushLocked(Lsn lsn) REQUIRES(mu_);
  Status AppendLocked(LogRecord* rec) REQUIRES(mu_);
  /// Body of the background flusher thread.
  void FlusherLoop();
  /// The error every operation returns while poisoned; names the original
  /// failing operation and errno so operators see the root cause.
  Status PoisonedLocked() const REQUIRES(mu_);

  Env* env_ GUARDED_BY(mu_) = nullptr;
  std::unique_ptr<RandomAccessFile> file_ GUARDED_BY(mu_);
  std::string path_ GUARDED_BY(mu_);
  Lsn base_lsn_ GUARDED_BY(mu_) = 0;  // LSNs below this were truncated away
  uint32_t gen_ GUARDED_BY(mu_) = 1;  // bumped on every truncation
  // next_lsn_ / flushed_lsn_ are written only under mu_ but read lock-free
  // by the public accessors (stats, tests) while appenders run, so they are
  // atomics, not GUARDED_BY members.
  std::atomic<Lsn> next_lsn_{1};
  std::atomic<Lsn> flushed_lsn_{0};  // highest durable LSN
  std::string buffer_ GUARDED_BY(mu_);    // unflushed bytes
  Lsn buffer_start_ GUARDED_BY(mu_) = 1;  // LSN of buffer_[0]
  Counter records_appended_;  // atomic: read by stats while writers append
  // Set on unrecoverable Truncate failure; cause keeps the first failing
  // Status for PoisonedLocked() and the operators reading it.
  PoisonKind poison_ GUARDED_BY(mu_) = PoisonKind::kNone;
  Status poison_cause_ GUARDED_BY(mu_);
  // --- sealed segments ---
  std::vector<SegmentInfo> segments_ GUARDED_BY(mu_);  // oldest first
  uint32_t next_seg_seqno_ GUARDED_BY(mu_) = 1;
  bool retain_segments_ GUARDED_BY(mu_) = false;
  uint64_t pins_ GUARDED_BY(mu_) = 0;  // backup holds these
  // Registry metrics ("wal.*"), resolved once at construction. Appends are
  // a few hundred ns, so their latency is sampled 1-in-64; fsyncs are µs+
  // and every one is timed. The sampling tick is guarded by mu_ like the
  // rest of the append path, so it needs no atomicity of its own.
  Counter* metric_appends_;
  Histogram* metric_append_ns_;
  Counter* metric_syncs_;
  Histogram* metric_sync_ns_;
  Counter* metric_group_commits_;
  Histogram* metric_group_size_;
  Counter* metric_relaxed_commits_;
  Counter* metric_segments_sealed_;
  /// Gauge mirror of sealed_unarchived() for MetricsSnapshot
  /// ("wal.sealed_unarchived"); refreshed whenever the registry changes.
  Counter* metric_sealed_unarchived_;
  uint64_t append_tick_ GUARDED_BY(mu_) = 0;

  // --- group-commit state ---
  bool group_commit_ GUARDED_BY(mu_) = true;
  uint64_t group_window_us_ GUARDED_BY(mu_) = 0;
  uint32_t group_max_batch_ GUARDED_BY(mu_) = 64;
  // One flush at a time; followers wait for flush_seq_ to advance, then
  // consult flush_target_/flush_result_ to learn whether the batch that
  // covered their LSN succeeded (and with which original Status).
  bool flush_active_ GUARDED_BY(mu_) = false;
  uint64_t flush_seq_ GUARDED_BY(mu_) = 0;
  Lsn flush_target_ GUARDED_BY(mu_) = 0;
  Status flush_result_ GUARDED_BY(mu_);
  // Commit records currently buffered (feeds wal.group_size and the
  // batching window's early-exit test).
  uint64_t buffered_commits_ GUARDED_BY(mu_) = 0;
  // Relaxed commits acknowledged but not yet durable. Written under mu_,
  // read lock-free by unflushed_commits() (DESCRIBE, stats).
  std::atomic<uint64_t> relaxed_unflushed_{0};
  CondVar flush_cv_{&mu_};
  // Wakes only the lingering leader when a commit record lands during the
  // batching window. Kept separate from flush_cv_ so each arrival wakes
  // one thread, not the whole follower crowd (an O(batch^2) wakeup storm
  // that dominates commit CPU on small machines).
  CondVar batch_cv_{&mu_};

  // --- background flusher (relaxed durability) ---
  bool flusher_stop_ GUARDED_BY(mu_) = false;
  uint64_t flusher_interval_us_ GUARDED_BY(mu_) = 500;
  std::function<void(const Status&)> flusher_on_failure_ GUARDED_BY(mu_);
  CondVar flusher_cv_{&mu_};
  // The thread object itself is only touched by StartFlusher/StopFlusher/
  // ~LogManager, which the Database serializes (open/close path).
  std::thread flusher_;

  mutable Mutex mu_;
};

}  // namespace dmx

#endif  // DMX_WAL_LOG_MANAGER_H_
