// LogManager: append-only write-ahead log with group buffering.
//
// The file begins with a 16-byte header {magic, base_lsn}; records are
// framed as u32 length + body. LSN = base_lsn + (file offset - header) + 1,
// so kInvalidLsn = 0 is never a real LSN and LSNs keep increasing across
// checkpoint truncations (page LSNs stamped before a checkpoint must stay
// smaller than every post-checkpoint LSN for redo gating to work).

#ifndef DMX_WAL_LOG_MANAGER_H_
#define DMX_WAL_LOG_MANAGER_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/util/common.h"
#include "src/util/status.h"
#include "src/wal/log_record.h"

namespace dmx {

class LogManager {
 public:
  LogManager() = default;
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Open (or create) the log file.
  Status Open(const std::string& path, bool create);
  Status Close();

  /// Append a record; assigns rec->lsn. Does not force to disk — call
  /// FlushTo (the buffer-pool WAL hook and commits do).
  Status Append(LogRecord* rec);

  /// Ensure all records with lsn <= `lsn` are durable.
  Status FlushTo(Lsn lsn);
  /// Flush everything appended so far.
  Status FlushAll();

  Lsn flushed_lsn() const { return flushed_lsn_; }
  Lsn next_lsn() const { return next_lsn_; }

  /// Read the entire log (for restart recovery). Truncated tails (torn
  /// final record) are tolerated and ignored.
  Status ReadAll(std::vector<LogRecord>* out);

  /// Read a single record by LSN (for rollback chains).
  Status ReadRecord(Lsn lsn, LogRecord* out);

  /// Discard every record (checkpoint): the file is truncated to an empty
  /// log whose base is the current end, so future LSNs continue from here.
  /// The caller must ensure nothing in the discarded range is still
  /// needed (no active transactions; all pages/snapshots flushed).
  Status Truncate();

  /// Statistics: number of records appended this session.
  uint64_t records_appended() const { return records_appended_; }

 private:
  Status WriteHeader();

  int fd_ = -1;
  std::string path_;
  Lsn base_lsn_ = 0;     // LSNs below this were truncated away
  Lsn next_lsn_ = 1;
  Lsn flushed_lsn_ = 0;  // highest durable LSN
  std::string buffer_;   // unflushed bytes
  Lsn buffer_start_ = 1; // LSN of buffer_[0]
  uint64_t records_appended_ = 0;
  mutable std::mutex mu_;
};

}  // namespace dmx

#endif  // DMX_WAL_LOG_MANAGER_H_
