#include "src/wal/log_record.h"

#include "src/util/coding.h"

namespace dmx {

void LogRecord::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutVarint64(dst, txn);
  PutVarint64(dst, prev_lsn);
  switch (type) {
    case LogRecType::kUpdate:
    case LogRecType::kClr:
      dst->push_back(static_cast<char>(ext_kind));
      PutFixed16(dst, ext_id);
      PutFixed32(dst, relation);
      PutLengthPrefixedSlice(dst, payload);
      if (type == LogRecType::kClr) PutVarint64(dst, undo_next);
      break;
    case LogRecType::kSavepoint:
      PutLengthPrefixedSlice(dst, savepoint_name);
      break;
    default:
      break;
  }
}

Status LogRecord::DecodeFrom(Slice* input, LogRecord* out) {
  if (input->empty()) return Status::Corruption("log record truncated");
  out->type = static_cast<LogRecType>((*input)[0]);
  input->remove_prefix(1);
  uint64_t txn, prev;
  if (!GetVarint64(input, &txn) || !GetVarint64(input, &prev)) {
    return Status::Corruption("log record header");
  }
  out->txn = txn;
  out->prev_lsn = prev;
  switch (out->type) {
    case LogRecType::kUpdate:
    case LogRecType::kClr: {
      if (input->empty()) return Status::Corruption("update record");
      out->ext_kind = static_cast<ExtKind>((*input)[0]);
      input->remove_prefix(1);
      if (input->size() < 6) return Status::Corruption("update record ids");
      out->ext_id = DecodeFixed16(input->data());
      input->remove_prefix(2);
      uint32_t rel;
      if (!GetFixed32(input, &rel)) return Status::Corruption("relation id");
      out->relation = rel;
      Slice payload;
      if (!GetLengthPrefixedSlice(input, &payload)) {
        return Status::Corruption("update payload");
      }
      out->payload = payload.ToString();
      if (out->type == LogRecType::kClr) {
        uint64_t un;
        if (!GetVarint64(input, &un)) return Status::Corruption("undo_next");
        out->undo_next = un;
      }
      break;
    }
    case LogRecType::kSavepoint: {
      Slice name;
      if (!GetLengthPrefixedSlice(input, &name)) {
        return Status::Corruption("savepoint name");
      }
      out->savepoint_name = name.ToString();
      break;
    }
    case LogRecType::kBegin:
    case LogRecType::kCommit:
    case LogRecType::kAbort:
    case LogRecType::kEnd:
      break;
    default:
      return Status::Corruption("unknown log record type");
  }
  return Status::OK();
}

LogRecord MakeUpdateRecord(TxnId txn, ExtKind kind, uint16_t ext_id,
                           RelationId relation, std::string payload) {
  LogRecord rec;
  rec.type = LogRecType::kUpdate;
  rec.txn = txn;
  rec.ext_kind = kind;
  rec.ext_id = ext_id;
  rec.relation = relation;
  rec.payload = std::move(payload);
  return rec;
}

}  // namespace dmx
