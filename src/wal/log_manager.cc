#include "src/wal/log_manager.h"

#include <cstring>

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace dmx {

namespace {

constexpr size_t kLogHeaderSize = 24;
constexpr size_t kFrameHeaderSize = 8;  // u32 length | u32 crc
constexpr uint32_t kLogMagic = 0x444D584C;  // "DMXL"

// CRC32C over the generation number followed by the frame body. Mixing the
// generation in lets replay distinguish a stale pre-truncation frame (crc
// matches an older generation) from genuine corruption (matches nothing).
uint32_t FrameCrc(uint32_t gen, const char* body, size_t n) {
  char g[4];
  memcpy(g, &gen, 4);
  return Crc32cExtend(Crc32c(g, 4), body, n);
}

}  // namespace

LogManager::LogManager() {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metric_appends_ = metrics->GetCounter("wal.appends");
  metric_append_ns_ = metrics->GetHistogram("wal.append_ns");
  metric_syncs_ = metrics->GetCounter("wal.syncs");
  metric_sync_ns_ = metrics->GetHistogram("wal.sync_ns");
}

LogManager::~LogManager() {
  (void)Close();  // best-effort final flush; errors unreportable here
}

Status LogManager::Open(const std::string& path, bool create, Env* env) {
  MutexLock lock(&mu_);
  env_ = env != nullptr ? env : Env::Default();
  const bool existed = env_->FileExists(path).ok();
  DMX_RETURN_IF_ERROR(env_->NewRandomAccessFile(path, create, &file_));
  path_ = path;
  poison_ = PoisonKind::kNone;
  poison_cause_ = Status::OK();
  buffer_.clear();
  uint64_t size = 0;
  Status s = file_->Size(&size);
  if (s.ok() && size == 0) {
    base_lsn_ = 0;
    gen_ = 1;
    s = WriteHeaderLocked();
    if (s.ok()) s = file_->Sync(/*data_only=*/false);
    if (s.ok() && !existed) s = env_->SyncDir(DirnameOf(path));
    size = kLogHeaderSize;
  } else if (s.ok()) {
    char hdr[kLogHeaderSize];
    size_t n = 0;
    s = file_->Read(0, kLogHeaderSize, hdr, &n);
    if (s.ok() && n != kLogHeaderSize) {
      s = Status::Corruption("short log header in '" + path + "'");
    }
    if (s.ok() && DecodeFixed32(hdr) != kLogMagic) {
      s = Status::Corruption("bad log magic in '" + path + "'");
    }
    if (s.ok() && DecodeFixed32(hdr + 16) != Crc32c(hdr, 16)) {
      s = Status::Corruption("log header checksum mismatch in '" + path + "'");
    }
    if (s.ok()) {
      base_lsn_ = DecodeFixed64(hdr + 4);
      gen_ = DecodeFixed32(hdr + 12);
    }
  }
  if (!s.ok()) {
    (void)file_->Close();  // the open failure takes precedence
    file_.reset();
    return s;
  }
  const Lsn next = base_lsn_ + static_cast<Lsn>(size) - kLogHeaderSize + 1;
  next_lsn_.store(next, std::memory_order_release);
  flushed_lsn_.store(next - 1, std::memory_order_release);
  buffer_start_ = next;
  return Status::OK();
}

Status LogManager::WriteHeaderLocked() {
  std::string enc;
  PutFixed32(&enc, kLogMagic);
  PutFixed64(&enc, base_lsn_);
  PutFixed32(&enc, gen_);
  PutFixed32(&enc, Crc32c(enc.data(), enc.size()));
  PutFixed32(&enc, 0);  // pad
  return file_->Write(0, enc.data(), enc.size());
}

Status LogManager::Close() {
  MutexLock lock(&mu_);
  if (!file_) return Status::OK();
  Status s =
      FlushToLocked(next_lsn_.load(std::memory_order_relaxed) - 1);
  Status c = file_->Close();
  file_.reset();
  return s.ok() ? c : s;
}

Status LogManager::PoisonedLocked() const {
  return Status::IOError("log poisoned by failed truncation (" +
                         poison_cause_.ToString() + ")");
}

Status LogManager::AppendLocked(LogRecord* rec) {
  ScopedTimer timer((append_tick_++ & 63) == 0 ? metric_append_ns_ : nullptr);
  if (poison_ != PoisonKind::kNone) return PoisonedLocked();
  rec->lsn = next_lsn_.load(std::memory_order_relaxed);
  std::string body;
  rec->EncodeTo(&body);
  std::string framed;
  PutFixed32(&framed, static_cast<uint32_t>(body.size()));
  PutFixed32(&framed, FrameCrc(gen_, body.data(), body.size()));
  framed += body;
  buffer_ += framed;
  next_lsn_.store(rec->lsn + framed.size(), std::memory_order_release);
  records_appended_.Increment();
  metric_appends_->Increment();
  return Status::OK();
}

Status LogManager::Append(LogRecord* rec) {
  MutexLock lock(&mu_);
  return AppendLocked(rec);
}

Status LogManager::AppendAndFlush(LogRecord* rec) {
  MutexLock lock(&mu_);
  const size_t buffered_before = buffer_.size();
  const Lsn lsn_before = next_lsn_.load(std::memory_order_relaxed);
  DMX_RETURN_IF_ERROR(AppendLocked(rec));
  Status s = FlushToLocked(rec->lsn);
  if (!s.ok()) {
    // The flush failed before it could clear the buffer, so our frame is
    // still its tail (we held mu_ throughout): drop it again. The caller's
    // last_lsn chain stays untouched and its Abort rolls back normally.
    // Caveat (documented in DESIGN.md §11): if the failed flush's write
    // reached the platter and the process dies before the tail bytes are
    // overwritten by a later flush, replay can still see this record — an
    // errored commit is ambiguous, like every WAL system's.
    buffer_.resize(buffered_before);
    next_lsn_.store(lsn_before, std::memory_order_release);
    rec->lsn = kInvalidLsn;
  }
  return s;
}

Status LogManager::FlushTo(Lsn lsn) {
  MutexLock lock(&mu_);
  return FlushToLocked(lsn);
}

Status LogManager::FlushToLocked(Lsn lsn) {
  if (poison_ != PoisonKind::kNone) return PoisonedLocked();
  if (lsn <= flushed_lsn_.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  if (buffer_.empty()) return Status::OK();
  ScopedTimer timer(metric_sync_ns_);
  metric_syncs_->Increment();
  DMX_RETURN_IF_ERROR(file_->Write(
      buffer_start_ - base_lsn_ - 1 + kLogHeaderSize, buffer_.data(),
      buffer_.size()));
  DMX_RETURN_IF_ERROR(file_->Sync(/*data_only=*/true));
  buffer_start_ += buffer_.size();
  flushed_lsn_.store(buffer_start_ - 1, std::memory_order_release);
  buffer_.clear();
  return Status::OK();
}

Status LogManager::FlushAll() {
  MutexLock lock(&mu_);
  if (!file_) return Status::OK();
  return FlushToLocked(next_lsn_.load(std::memory_order_relaxed) - 1);
}

Status LogManager::ReadAll(std::vector<LogRecord>* out) {
  DMX_RETURN_IF_ERROR(FlushAll());
  MutexLock lock(&mu_);
  uint64_t size = 0;
  DMX_RETURN_IF_ERROR(file_->Size(&size));
  if (size <= kLogHeaderSize) return Status::OK();
  std::string data(static_cast<size_t>(size) - kLogHeaderSize, '\0');
  size_t got = 0;
  DMX_RETURN_IF_ERROR(file_->Read(kLogHeaderSize, data.size(), data.data(),
                                  &got));
  if (got != data.size()) return Status::IOError("short log read");
  size_t pos = 0;
  while (pos + kFrameHeaderSize <= data.size()) {
    const uint32_t len = DecodeFixed32(data.data() + pos);
    if (len == 0) break;  // zero fill: torn tail
    if (pos + kFrameHeaderSize + len > data.size()) break;  // torn tail
    const uint32_t crc = DecodeFixed32(data.data() + pos + 4);
    const char* body = data.data() + pos + kFrameHeaderSize;
    if (crc != FrameCrc(gen_, body, len)) {
      bool stale = false;
      for (uint32_t back = 1; back <= 8 && back < gen_; ++back) {
        if (crc == FrameCrc(gen_ - back, body, len)) {
          stale = true;
          break;
        }
      }
      if (stale) break;  // leftovers from a crash-interrupted truncation
      if (pos + kFrameHeaderSize + len == data.size()) break;  // torn tail
      return Status::Corruption(
          "wal frame checksum mismatch at log offset " +
          std::to_string(kLogHeaderSize + pos) + " in '" + path_ + "'");
    }
    Slice in(body, len);
    LogRecord rec;
    if (!LogRecord::DecodeFrom(&in, &rec).ok()) {
      // The bytes are intact (crc passed) yet undecodable: a writer bug or
      // format mismatch, not a torn tail.
      return Status::Corruption(
          "undecodable wal record at log offset " +
          std::to_string(kLogHeaderSize + pos) + " in '" + path_ + "'");
    }
    rec.lsn = base_lsn_ + static_cast<Lsn>(pos) + 1;
    out->push_back(std::move(rec));
    pos += kFrameHeaderSize + len;
  }
  if (pos < data.size()) {
    // Self-heal: cut the torn or stale tail off so later appends never
    // interleave with its bytes. Propagate failure — continuing with the
    // tail in place risks replaying garbage after the next crash.
    DMX_RETURN_IF_ERROR(file_->Truncate(kLogHeaderSize + pos));
    DMX_RETURN_IF_ERROR(file_->Sync(/*data_only=*/true));
    const Lsn next = base_lsn_ + static_cast<Lsn>(pos) + 1;
    next_lsn_.store(next, std::memory_order_release);
    flushed_lsn_.store(next - 1, std::memory_order_release);
    buffer_start_ = next;
  }
  return Status::OK();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* out) {
  MutexLock lock(&mu_);
  if (poison_ != PoisonKind::kNone) return PoisonedLocked();
  if (lsn == kInvalidLsn || lsn <= base_lsn_ ||
      lsn >= next_lsn_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("bad lsn " + std::to_string(lsn));
  }
  // Serve from the in-memory buffer if not yet flushed.
  if (lsn >= buffer_start_) {
    size_t off = static_cast<size_t>(lsn - buffer_start_);
    if (off + kFrameHeaderSize > buffer_.size()) {
      return Status::Corruption("lsn in buffer");
    }
    uint32_t len = DecodeFixed32(buffer_.data() + off);
    if (off + kFrameHeaderSize + len > buffer_.size()) {
      return Status::Corruption("lsn body in buffer");
    }
    Slice body(buffer_.data() + off + kFrameHeaderSize, len);
    DMX_RETURN_IF_ERROR(LogRecord::DecodeFrom(&body, out));
    out->lsn = lsn;
    return Status::OK();
  }
  const uint64_t file_off = lsn - base_lsn_ - 1 + kLogHeaderSize;
  char hdr[kFrameHeaderSize];
  size_t n = 0;
  DMX_RETURN_IF_ERROR(file_->Read(file_off, kFrameHeaderSize, hdr, &n));
  if (n != kFrameHeaderSize) return Status::IOError("log frame header read");
  const uint32_t len = DecodeFixed32(hdr);
  const uint32_t crc = DecodeFixed32(hdr + 4);
  std::string body(len, '\0');
  DMX_RETURN_IF_ERROR(
      file_->Read(file_off + kFrameHeaderSize, len, body.data(), &n));
  if (n != len) return Status::IOError("log frame body read");
  if (crc != FrameCrc(gen_, body.data(), len)) {
    return Status::Corruption("wal frame checksum mismatch at lsn " +
                              std::to_string(lsn));
  }
  Slice in(body);
  DMX_RETURN_IF_ERROR(LogRecord::DecodeFrom(&in, out));
  out->lsn = lsn;
  return Status::OK();
}

Status LogManager::Truncate() {
  MutexLock lock(&mu_);
  if (poison_ != PoisonKind::kNone) return PoisonedLocked();
  if (!buffer_.empty()) {
    return Status::Busy("flush the log before truncating");
  }
  const Lsn old_base = base_lsn_;
  const uint32_t old_gen = gen_;
  base_lsn_ = next_lsn_.load(std::memory_order_relaxed) - 1;
  gen_ += 1;
  // Header first: once the new header (advanced base, bumped generation) is
  // durable, any frames still in the file belong to the old generation and
  // replay discards them, so a crash before the shrink below is harmless.
  Status s = WriteHeaderLocked();
  if (s.ok()) s = file_->Sync(/*data_only=*/false);
  if (!s.ok()) {
    base_lsn_ = old_base;
    gen_ = old_gen;
    Status restore = WriteHeaderLocked();
    if (restore.ok()) restore = file_->Sync(/*data_only=*/false);
    // If we cannot tell which header is on disk, refuse all further work.
    if (!restore.ok()) {
      poison_ = PoisonKind::kHeaderUnknown;
      poison_cause_ = restore;
    }
    return s;
  }
  s = file_->Truncate(kLogHeaderSize);
  if (s.ok()) s = file_->Sync(/*data_only=*/true);
  if (!s.ok()) {
    // The new header is durable but the old frames may linger; in-memory
    // offsets no longer match the file reliably. Refuse further work.
    poison_ = PoisonKind::kStaleTail;
    poison_cause_ = s;
    return s;
  }
  buffer_start_ = next_lsn_.load(std::memory_order_relaxed);
  flushed_lsn_.store(buffer_start_ - 1, std::memory_order_release);
  return Status::OK();
}

Status LogManager::Resume() {
  MutexLock lock(&mu_);
  if (!file_) return Status::IOError("log not open");
  switch (poison_) {
    case PoisonKind::kNone:
      break;
    case PoisonKind::kHeaderUnknown:
      // Neither the new nor the restored (current in-memory) header is
      // known to be on disk: rewrite ours and make it durable. Until this
      // succeeds the poison stays set and we keep returning the fault.
      DMX_RETURN_IF_ERROR(WriteHeaderLocked());
      DMX_RETURN_IF_ERROR(file_->Sync(/*data_only=*/false));
      break;
    case PoisonKind::kStaleTail:
      // The advanced header is durable; finish the interrupted shrink so
      // old-generation frames cannot linger past the next crash.
      DMX_RETURN_IF_ERROR(file_->Truncate(kLogHeaderSize));
      DMX_RETURN_IF_ERROR(file_->Sync(/*data_only=*/true));
      buffer_start_ = next_lsn_.load(std::memory_order_relaxed);
      flushed_lsn_.store(buffer_start_ - 1, std::memory_order_release);
      break;
  }
  poison_ = PoisonKind::kNone;
  poison_cause_ = Status::OK();
  // Probe the full append/force path before declaring the log healthy: a
  // pending buffer is the real thing to flush; otherwise rewrite + sync
  // the header as a same-shape write.
  if (!buffer_.empty()) {
    return FlushToLocked(next_lsn_.load(std::memory_order_relaxed) - 1);
  }
  DMX_RETURN_IF_ERROR(WriteHeaderLocked());
  return file_->Sync(/*data_only=*/false);
}

}  // namespace dmx
