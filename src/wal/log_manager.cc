#include "src/wal/log_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/coding.h"

namespace dmx {

namespace {
constexpr size_t kLogHeaderSize = 16;
constexpr uint32_t kLogMagic = 0x444D584C;  // "DMXL"
}  // namespace

LogManager::~LogManager() {
  if (fd_ >= 0) Close();
}

Status LogManager::Open(const std::string& path, bool create) {
  int flags = O_RDWR;
  if (create) flags |= O_CREAT;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open log '" + path + "': " + strerror(errno));
  }
  fd_ = fd;
  path_ = path;
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size == 0) {
    base_lsn_ = 0;
    DMX_RETURN_IF_ERROR(WriteHeader());
    size = static_cast<off_t>(kLogHeaderSize);
  } else {
    char hdr[kLogHeaderSize];
    if (::pread(fd_, hdr, kLogHeaderSize, 0) !=
        static_cast<ssize_t>(kLogHeaderSize)) {
      return Status::IOError("log header read");
    }
    if (DecodeFixed32(hdr) != kLogMagic) {
      return Status::Corruption("bad log magic in '" + path + "'");
    }
    base_lsn_ = DecodeFixed64(hdr + 4);
  }
  next_lsn_ = base_lsn_ + static_cast<Lsn>(size) - kLogHeaderSize + 1;
  flushed_lsn_ = next_lsn_ - 1;
  buffer_start_ = next_lsn_;
  return Status::OK();
}

Status LogManager::WriteHeader() {
  char hdr[kLogHeaderSize];
  memset(hdr, 0, sizeof(hdr));
  std::string enc;
  PutFixed32(&enc, kLogMagic);
  PutFixed64(&enc, base_lsn_);
  memcpy(hdr, enc.data(), enc.size());
  if (::pwrite(fd_, hdr, kLogHeaderSize, 0) !=
      static_cast<ssize_t>(kLogHeaderSize)) {
    return Status::IOError("log header write");
  }
  return Status::OK();
}

Status LogManager::Close() {
  Status s = FlushAll();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return s;
}

Status LogManager::Append(LogRecord* rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec->lsn = next_lsn_;
  std::string body;
  rec->EncodeTo(&body);
  std::string framed;
  PutFixed32(&framed, static_cast<uint32_t>(body.size()));
  framed += body;
  buffer_ += framed;
  next_lsn_ += framed.size();
  ++records_appended_;
  return Status::OK();
}

Status LogManager::FlushTo(Lsn lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lsn <= flushed_lsn_) return Status::OK();
  if (buffer_.empty()) return Status::OK();
  ssize_t n = ::pwrite(
      fd_, buffer_.data(), buffer_.size(),
      static_cast<off_t>(buffer_start_ - base_lsn_ - 1 + kLogHeaderSize));
  if (n != static_cast<ssize_t>(buffer_.size())) {
    return Status::IOError("log pwrite");
  }
  if (::fdatasync(fd_) != 0) return Status::IOError("log fdatasync");
  buffer_start_ += buffer_.size();
  flushed_lsn_ = buffer_start_ - 1;
  buffer_.clear();
  return Status::OK();
}

Status LogManager::FlushAll() {
  if (fd_ < 0) return Status::OK();
  return FlushTo(next_lsn_ - 1);
}

Status LogManager::ReadAll(std::vector<LogRecord>* out) {
  DMX_RETURN_IF_ERROR(FlushAll());
  std::lock_guard<std::mutex> lock(mu_);
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size <= static_cast<off_t>(kLogHeaderSize)) return Status::OK();
  std::string data(static_cast<size_t>(size) - kLogHeaderSize, '\0');
  ssize_t n = ::pread(fd_, data.data(), data.size(), kLogHeaderSize);
  if (n != static_cast<ssize_t>(data.size())) {
    return Status::IOError("log read");
  }
  size_t pos = 0;
  while (pos + 4 <= data.size()) {
    uint32_t len = DecodeFixed32(data.data() + pos);
    if (pos + 4 + len > data.size()) break;  // torn tail: stop
    Slice body(data.data() + pos + 4, len);
    LogRecord rec;
    Status s = LogRecord::DecodeFrom(&body, &rec);
    if (!s.ok()) break;  // treat as torn tail
    rec.lsn = base_lsn_ + static_cast<Lsn>(pos) + 1;
    out->push_back(std::move(rec));
    pos += 4 + len;
  }
  return Status::OK();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lsn == kInvalidLsn || lsn <= base_lsn_ || lsn >= next_lsn_) {
    return Status::InvalidArgument("bad lsn " + std::to_string(lsn));
  }
  // Serve from the in-memory buffer if not yet flushed.
  if (lsn >= buffer_start_) {
    size_t off = static_cast<size_t>(lsn - buffer_start_);
    if (off + 4 > buffer_.size()) return Status::Corruption("lsn in buffer");
    uint32_t len = DecodeFixed32(buffer_.data() + off);
    if (off + 4 + len > buffer_.size()) {
      return Status::Corruption("lsn body in buffer");
    }
    Slice body(buffer_.data() + off + 4, len);
    DMX_RETURN_IF_ERROR(LogRecord::DecodeFrom(&body, out));
    out->lsn = lsn;
    return Status::OK();
  }
  const off_t file_off =
      static_cast<off_t>(lsn - base_lsn_ - 1 + kLogHeaderSize);
  char lenbuf[4];
  if (::pread(fd_, lenbuf, 4, file_off) != 4) {
    return Status::IOError("log pread len");
  }
  uint32_t len = DecodeFixed32(lenbuf);
  std::string body(len, '\0');
  if (::pread(fd_, body.data(), len, file_off + 4) !=
      static_cast<ssize_t>(len)) {
    return Status::IOError("log pread body");
  }
  Slice in(body);
  DMX_RETURN_IF_ERROR(LogRecord::DecodeFrom(&in, out));
  out->lsn = lsn;
  return Status::OK();
}

Status LogManager::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!buffer_.empty()) {
    return Status::Busy("flush the log before truncating");
  }
  base_lsn_ = next_lsn_ - 1;
  if (::ftruncate(fd_, static_cast<off_t>(kLogHeaderSize)) != 0) {
    return Status::IOError("log ftruncate");
  }
  DMX_RETURN_IF_ERROR(WriteHeader());
  if (::fdatasync(fd_) != 0) return Status::IOError("log fdatasync");
  buffer_start_ = next_lsn_;
  flushed_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

}  // namespace dmx
