#include "src/wal/log_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace dmx {

namespace {

// Sizes, magics, and the generation-mixing frame crc moved to wal_format.h
// when segments arrived (the archiver and dmx_backup_verify share them).
uint32_t FrameCrc(uint32_t gen, const char* body, size_t n) {
  return WalFrameCrc(gen, body, n);
}

}  // namespace

LogManager::LogManager() {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metric_appends_ = metrics->GetCounter("wal.appends");
  metric_append_ns_ = metrics->GetHistogram("wal.append_ns");
  metric_syncs_ = metrics->GetCounter("wal.syncs");
  metric_sync_ns_ = metrics->GetHistogram("wal.sync_ns");
  metric_group_commits_ = metrics->GetCounter("wal.group_commits");
  metric_group_size_ = metrics->GetHistogram("wal.group_size");
  metric_relaxed_commits_ = metrics->GetCounter("wal.relaxed_commits");
  metric_segments_sealed_ = metrics->GetCounter("wal.segments_sealed");
  metric_sealed_unarchived_ = metrics->GetCounter("wal.sealed_unarchived");
}

LogManager::~LogManager() {
  StopFlusher();
  (void)Close();  // best-effort final flush; errors unreportable here
}

void LogManager::SetGroupCommit(bool enabled) {
  MutexLock lock(&mu_);
  group_commit_ = enabled;
}

void LogManager::SetGroupCommitWindow(uint64_t window_us,
                                      uint32_t max_batch) {
  MutexLock lock(&mu_);
  group_window_us_ = window_us;
  group_max_batch_ = max_batch == 0 ? 1 : max_batch;
}

void LogManager::StartFlusher(uint64_t interval_us,
                              std::function<void(const Status&)> on_failure) {
  if (flusher_.joinable()) return;
  {
    MutexLock lock(&mu_);
    flusher_stop_ = false;
    flusher_interval_us_ = interval_us;
    flusher_on_failure_ = std::move(on_failure);
  }
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void LogManager::StopFlusher() {
  if (!flusher_.joinable()) return;
  {
    MutexLock lock(&mu_);
    flusher_stop_ = true;
  }
  flusher_cv_.NotifyAll();
  flusher_.join();
}

void LogManager::FlusherLoop() {
  mu_.Lock();
  while (!flusher_stop_) {
    if (relaxed_unflushed_.load(std::memory_order_relaxed) == 0 || !file_ ||
        poison_ != PoisonKind::kNone) {
      // Nothing to do (or the log is down — background recovery flushes
      // the pending tail itself via Resume): sleep until the next relaxed
      // commit, a Resume, or Stop wakes us.
      flusher_cv_.Wait();
      continue;
    }
    // Absorb a burst: give other relaxed committers one interval to join
    // this group before paying the sync.
    (void)flusher_cv_.WaitUntil(
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(flusher_interval_us_));
    if (flusher_stop_ || !file_) continue;
    Status s = FlushToLocked(next_lsn_.load(std::memory_order_relaxed) - 1);
    if (!s.ok()) {
      // Report with mu_ released: the ErrorHandler wakes its recovery
      // thread, whose repair path re-enters this LogManager.
      auto cb = flusher_on_failure_;
      mu_.Unlock();
      if (cb) cb(s);
      mu_.Lock();
      if (flusher_stop_) break;
      // Don't spin against a persistent fault; the next relaxed commit or
      // a successful recovery flush wakes us.
      flusher_cv_.Wait();
    }
  }
  mu_.Unlock();
}

// Recovery-time open: the log is not yet shared, and discovery must
// finish before any append.
// deeplint: allow(blocking-under-lock, recovery open precedes sharing)
Status LogManager::Open(const std::string& path, bool create, Env* env) {
  MutexLock lock(&mu_);
  env_ = env != nullptr ? env : Env::Default();
  const bool existed = env_->FileExists(path).ok();
  DMX_RETURN_IF_ERROR(env_->NewRandomAccessFile(path, create, &file_));
  path_ = path;
  poison_ = PoisonKind::kNone;
  poison_cause_ = Status::OK();
  buffer_.clear();
  flush_active_ = false;
  flush_target_ = 0;
  flush_result_ = Status::OK();
  buffered_commits_ = 0;
  relaxed_unflushed_.store(0, std::memory_order_release);
  uint64_t size = 0;
  Status s = file_->Size(&size);
  if (s.ok() && size == 0) {
    base_lsn_ = 0;
    gen_ = 1;
    s = WriteHeaderLocked();
    if (s.ok()) s = file_->Sync(/*data_only=*/false);
    if (s.ok() && !existed) s = env_->SyncDir(DirnameOf(path));
    size = kLogHeaderSize;
  } else if (s.ok()) {
    char hdr[kLogHeaderSize];
    size_t n = 0;
    s = file_->Read(0, kLogHeaderSize, hdr, &n);
    if (s.ok() && n != kLogHeaderSize) {
      s = Status::Corruption("short log header in '" + path + "'");
    }
    if (s.ok() && DecodeFixed32(hdr) != kLogMagic) {
      s = Status::Corruption("bad log magic in '" + path + "'");
    }
    if (s.ok() && DecodeFixed32(hdr + 16) != Crc32c(hdr, 16)) {
      s = Status::Corruption("log header checksum mismatch in '" + path + "'");
    }
    if (s.ok()) {
      base_lsn_ = DecodeFixed64(hdr + 4);
      gen_ = DecodeFixed32(hdr + 12);
    }
  }
  if (!s.ok()) {
    (void)file_->Close();  // the open failure takes precedence
    file_.reset();
    return s;
  }
  const Lsn next = base_lsn_ + static_cast<Lsn>(size) - kLogHeaderSize + 1;
  next_lsn_.store(next, std::memory_order_release);
  flushed_lsn_.store(next - 1, std::memory_order_release);
  buffer_start_ = next;
  s = DiscoverSegmentsLocked();
  if (!s.ok()) {
    // Surface the discovery error; the close is cleanup.
    (void)file_->Close();
    file_.reset();
    return s;
  }
  return Status::OK();
}

Status LogManager::DiscoverSegmentsLocked() {
  segments_.clear();
  next_seg_seqno_ = 1;
  const std::string dir = DirnameOf(path_);
  const size_t slash = path_.find_last_of('/');
  const std::string basename =
      slash == std::string::npos ? path_ : path_.substr(slash + 1);
  std::vector<std::string> names;
  Status ls = env_->ListDir(dir, &names);
  if (ls.IsNotFound()) return Status::OK();
  DMX_RETURN_IF_ERROR(ls);
  for (const std::string& name : names) {
    uint32_t seqno = 0;
    if (!ParseSegmentName(name, basename, &seqno)) continue;
    const std::string seg_path = dir + "/" + name;
    std::unique_ptr<RandomAccessFile> f;
    SegmentHeader hdr;
    char buf[kSegHeaderSize];
    size_t n = 0;
    Status s = env_->NewRandomAccessFile(seg_path, /*create=*/false, &f);
    if (s.ok()) s = f->Read(0, kSegHeaderSize, buf, &n);
    if (s.ok() && n == kSegHeaderSize) s = DecodeSegmentHeader(buf, &hdr);
    // Read-only header probe; nothing buffered to lose.
    if (f) (void)f->Close();
    if (!s.ok() || n != kSegHeaderSize || hdr.base_lsn >= base_lsn_) {
      // Either an unreadable header (the partially written product of a
      // rotation that crashed before its segment sync) or a seemingly
      // valid segment whose frames the live log still owns (the rotation
      // crashed after the segment sync but before the live header
      // advanced). Both are duplicates of live content: discard.
      (void)env_->DeleteFile(seg_path);
      continue;
    }
    SegmentInfo info;
    info.seqno = hdr.seqno;
    info.base_lsn = hdr.base_lsn;
    info.end_lsn = hdr.end_lsn;
    info.gen = hdr.gen;
    info.path = seg_path;
    segments_.push_back(std::move(info));
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return a.seqno < b.seqno;
            });
  // The retained chain must be contiguous and end exactly at the live
  // base — reclaim only ever removes a prefix, so any gap means lost WAL.
  for (size_t i = 0; i < segments_.size(); ++i) {
    const Lsn expect_end =
        i + 1 < segments_.size() ? segments_[i + 1].base_lsn : base_lsn_;
    if (segments_[i].end_lsn != expect_end) {
      return Status::Corruption(
          "wal segment chain gap after '" + segments_[i].path +
          "' (ends at lsn " + std::to_string(segments_[i].end_lsn) +
          ", next begins at " + std::to_string(expect_end) + ")");
    }
  }
  if (!segments_.empty()) next_seg_seqno_ = segments_.back().seqno + 1;
  UpdateLagGaugeLocked();
  return Status::OK();
}

void LogManager::UpdateLagGaugeLocked() {
  uint64_t n = 0;
  for (const SegmentInfo& seg : segments_) {
    if (!seg.archived) ++n;
  }
  metric_sealed_unarchived_->Reset();
  metric_sealed_unarchived_->Increment(n);
}

Status LogManager::WriteHeaderLocked() {
  std::string enc;
  PutFixed32(&enc, kLogMagic);
  PutFixed64(&enc, base_lsn_);
  PutFixed32(&enc, gen_);
  PutFixed32(&enc, Crc32c(enc.data(), enc.size()));
  PutFixed32(&enc, 0);  // pad
  return file_->Write(0, enc.data(), enc.size());
}

// Teardown: final flush after the group-commit leader quiesces; no
// writer can need mu_ again.
// deeplint: allow(blocking-under-lock, teardown flush after quiesce)
Status LogManager::Close() {
  MutexLock lock(&mu_);
  if (!file_) return Status::OK();
  // Let any in-flight group flush finish before the file goes away (its
  // leader holds a raw file pointer across the unlocked fsync).
  while (flush_active_) flush_cv_.Wait();
  Status s =
      FlushToLocked(next_lsn_.load(std::memory_order_relaxed) - 1);
  Status c = file_->Close();
  file_.reset();
  flusher_cv_.NotifyAll();  // flusher re-checks file_ and parks
  return s.ok() ? c : s;
}

Status LogManager::PoisonedLocked() const {
  return Status::IOError("log poisoned by failed truncation (" +
                         poison_cause_.ToString() + ")");
}

Status LogManager::AppendLocked(LogRecord* rec) {
  ScopedTimer timer((append_tick_++ & 63) == 0 ? metric_append_ns_ : nullptr);
  if (poison_ != PoisonKind::kNone) return PoisonedLocked();
  rec->lsn = next_lsn_.load(std::memory_order_relaxed);
  std::string body;
  rec->EncodeTo(&body);
  std::string framed;
  PutFixed32(&framed, static_cast<uint32_t>(body.size()));
  PutFixed32(&framed, FrameCrc(gen_, body.data(), body.size()));
  framed += body;
  buffer_ += framed;
  next_lsn_.store(rec->lsn + framed.size(), std::memory_order_release);
  records_appended_.Increment();
  metric_appends_->Increment();
  if (rec->type == LogRecType::kCommit) {
    ++buffered_commits_;
    // A leader lingering in its batching window exits early once the
    // batch is full or goes quiet; wake it (and only it) to re-check.
    if (flush_active_) batch_cv_.NotifyOne();
  }
  return Status::OK();
}

Status LogManager::Append(LogRecord* rec) {
  MutexLock lock(&mu_);
  return AppendLocked(rec);
}

Status LogManager::AppendAndFlush(LogRecord* rec) {
  MutexLock lock(&mu_);
  const size_t buffered_before = buffer_.size();
  DMX_RETURN_IF_ERROR(AppendLocked(rec));
  const size_t frame_size = buffer_.size() - buffered_before;
  Status s = FlushToLocked(rec->lsn);
  if (!s.ok() && poison_ == PoisonKind::kNone && !flush_active_ &&
      rec->lsn >= buffer_start_ &&
      rec->lsn + static_cast<Lsn>(frame_size) ==
          next_lsn_.load(std::memory_order_relaxed)) {
    // The failed flush left our frame as the unflushed buffer tail (no
    // concurrent append buried it, no snapshot is in flight): drop it
    // again. The caller's last_lsn chain stays untouched and its Abort
    // rolls back normally. If concurrent committers did append past us,
    // the frame stays buffered — their retry/abort chain replays the
    // transaction to the aborted state, so recovery never resurrects it
    // as committed. Caveat (documented in DESIGN.md §11): if the failed
    // flush's write reached the platter and the process dies before the
    // tail bytes are overwritten by a later flush, replay can still see
    // this record — an errored commit is ambiguous, like every WAL
    // system's.
    buffer_.resize(static_cast<size_t>(rec->lsn - buffer_start_));
    next_lsn_.store(rec->lsn, std::memory_order_release);
    if (buffered_commits_ > 0) --buffered_commits_;
    rec->lsn = kInvalidLsn;
  }
  return s;
}

Status LogManager::AppendCommitRelaxed(LogRecord* rec) {
  MutexLock lock(&mu_);
  DMX_RETURN_IF_ERROR(AppendLocked(rec));
  relaxed_unflushed_.fetch_add(1, std::memory_order_release);
  metric_relaxed_commits_->Increment();
  flusher_cv_.NotifyOne();
  return Status::OK();
}

Status LogManager::FlushTo(Lsn lsn) {
  MutexLock lock(&mu_);
  return FlushToLocked(lsn);
}

Status LogManager::FlushToLocked(Lsn lsn) {
  return group_commit_ ? GroupFlushLocked(lsn) : LegacyFlushLocked(lsn);
}

Status LogManager::LegacyFlushLocked(Lsn lsn) {
  if (poison_ != PoisonKind::kNone) return PoisonedLocked();
  if (lsn <= flushed_lsn_.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  if (buffer_.empty()) return Status::OK();
  ScopedTimer timer(metric_sync_ns_);
  metric_syncs_->Increment();
  DMX_RETURN_IF_ERROR(file_->Write(
      buffer_start_ - base_lsn_ - 1 + kLogHeaderSize, buffer_.data(),
      buffer_.size()));
  DMX_RETURN_IF_ERROR(file_->Sync(/*data_only=*/true));
  buffer_start_ += buffer_.size();
  flushed_lsn_.store(buffer_start_ - 1, std::memory_order_release);
  buffer_.clear();
  buffered_commits_ = 0;
  relaxed_unflushed_.store(0, std::memory_order_release);
  return Status::OK();
}

Status LogManager::GroupFlushLocked(Lsn lsn) {
  while (true) {
    if (poison_ != PoisonKind::kNone) return PoisonedLocked();
    if (lsn <= flushed_lsn_.load(std::memory_order_relaxed)) {
      return Status::OK();
    }
    if (!flush_active_) break;  // become the leader
    // Follower: wait for the in-flight batch to finish, then learn our
    // fate from its outcome.
    const uint64_t seq = flush_seq_;
    while (flush_active_ && flush_seq_ == seq) flush_cv_.Wait();
    if (lsn <= flushed_lsn_.load(std::memory_order_relaxed)) {
      return Status::OK();
    }
    if (!flush_result_.ok() && lsn <= flush_target_) {
      // Our frame was inside the failed batch: report the leader's
      // original failing Status, never a fabricated one.
      return flush_result_;
    }
    // Appended after the snapshot (or the batch failed below us): loop —
    // we will either follow the next leader or lead ourselves.
  }
  if (buffer_.empty()) return Status::OK();
  flush_active_ = true;
  if (group_window_us_ > 0 && buffered_commits_ > 1 &&
      buffered_commits_ < group_max_batch_) {
    // Batching window: linger for stragglers, but only when at least one
    // sibling commit is already aboard — a lone committer must not pay
    // the window as latency. AppendLocked notifies when a commit record
    // lands; the linger ends early once the batch is full or goes quiet
    // (every active committer is already aboard, so waiting out the full
    // window would be pure added latency).
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(group_window_us_);
    const auto quiet = std::chrono::microseconds(group_window_us_ / 4 + 1);
    while (buffered_commits_ < group_max_batch_ &&
           poison_ == PoisonKind::kNone) {
      const auto limit =
          std::min(deadline, std::chrono::steady_clock::now() + quiet);
      const uint64_t before = buffered_commits_;
      if (!batch_cv_.WaitUntil(limit) && buffered_commits_ == before) {
        break;  // window exhausted, or no straggler within the quiet gap
      }
    }
  }
  // Snapshot under the lock, then release it for the disk I/O: committers
  // arriving during the write+fsync append freely and form the next
  // batch. The buffer keeps its bytes until the flush succeeds, so
  // ReadRecord (rollback chains) stays serviceable throughout.
  const Lsn target = next_lsn_.load(std::memory_order_relaxed) - 1;
  const std::string batch = buffer_;
  const uint64_t file_off = buffer_start_ - base_lsn_ - 1 + kLogHeaderSize;
  const uint64_t batch_commits = buffered_commits_;
  const uint64_t batch_relaxed =
      relaxed_unflushed_.load(std::memory_order_relaxed);
  RandomAccessFile* file = file_.get();
  mu_.Unlock();
  Status s;
  {
    ScopedTimer timer(metric_sync_ns_);
    metric_syncs_->Increment();
    s = file->Write(file_off, batch.data(), batch.size());
    if (s.ok()) s = file->Sync(/*data_only=*/true);
  }
  mu_.Lock();
  flush_active_ = false;
  ++flush_seq_;
  flush_target_ = target;
  flush_result_ = s;
  if (s.ok()) {
    buffer_.erase(0, batch.size());
    buffer_start_ += batch.size();
    flushed_lsn_.store(target, std::memory_order_release);
    buffered_commits_ -= batch_commits;
    relaxed_unflushed_.fetch_sub(batch_relaxed, std::memory_order_release);
    if (batch_commits > 0) {
      metric_group_commits_->Increment();
      metric_group_size_->Record(static_cast<uint64_t>(batch_commits));
    }
  }
  // On failure nothing moved: the buffer, counters, and flushed_lsn_ are
  // exactly as before the attempt, so the log is still cleanly usable the
  // moment the fault clears (and Resume can flush the same bytes).
  flush_cv_.NotifyAll();
  return s;
}

Status LogManager::FlushAll() {
  MutexLock lock(&mu_);
  if (!file_) return Status::OK();
  return FlushToLocked(next_lsn_.load(std::memory_order_relaxed) - 1);
}

// Recovery replay owns the log; mu_ pins the segment chain for the
// whole scan by design.
// deeplint: allow(blocking-under-lock, recovery replay pins the chain)
Status LogManager::ReadAll(std::vector<LogRecord>* out) {
  DMX_RETURN_IF_ERROR(FlushAll());
  MutexLock lock(&mu_);
  // Sealed segments first (oldest to newest), then the live file. The
  // chain was verified contiguous at Open, so this replays an unbroken
  // LSN range ending at the live base. Replaying pre-checkpoint segments
  // that merely await archiving is harmless: redo is page-LSN gated and
  // every transaction they contain has ended. Unlike the live file, a
  // sealed segment admits no torn or stale tail — it was complete and
  // synced before the live log moved on — so any mismatch is corruption.
  for (const SegmentInfo& seg : segments_) {
    std::unique_ptr<RandomAccessFile> f;
    DMX_RETURN_IF_ERROR(
        env_->NewRandomAccessFile(seg.path, /*create=*/false, &f));
    std::string data(static_cast<size_t>(seg.end_lsn - seg.base_lsn), '\0');
    size_t seg_got = 0;
    Status s = f->Read(kSegHeaderSize, data.size(), data.data(), &seg_got);
    // Read-only segment handle; the read status is the outcome.
    (void)f->Close();
    DMX_RETURN_IF_ERROR(s);
    if (seg_got != data.size()) {
      return Status::Corruption("short read of wal segment '" + seg.path +
                                "'");
    }
    size_t pos = 0;
    while (pos < data.size()) {
      if (pos + kFrameHeaderSize > data.size()) {
        return Status::Corruption("truncated frame in wal segment '" +
                                  seg.path + "'");
      }
      const uint32_t len = DecodeFixed32(data.data() + pos);
      if (pos + kFrameHeaderSize + len > data.size()) {
        return Status::Corruption("truncated frame in wal segment '" +
                                  seg.path + "'");
      }
      const uint32_t crc = DecodeFixed32(data.data() + pos + 4);
      const char* body = data.data() + pos + kFrameHeaderSize;
      if (crc != FrameCrc(seg.gen, body, len)) {
        return Status::Corruption(
            "wal frame checksum mismatch at offset " +
            std::to_string(kSegHeaderSize + pos) + " in segment '" +
            seg.path + "'");
      }
      Slice in(body, len);
      LogRecord rec;
      if (!LogRecord::DecodeFrom(&in, &rec).ok()) {
        return Status::Corruption("undecodable wal record at offset " +
                                  std::to_string(kSegHeaderSize + pos) +
                                  " in segment '" + seg.path + "'");
      }
      rec.lsn = seg.base_lsn + static_cast<Lsn>(pos) + 1;
      out->push_back(std::move(rec));
      pos += kFrameHeaderSize + len;
    }
  }
  uint64_t size = 0;
  DMX_RETURN_IF_ERROR(file_->Size(&size));
  if (size <= kLogHeaderSize) return Status::OK();
  std::string data(static_cast<size_t>(size) - kLogHeaderSize, '\0');
  size_t got = 0;
  DMX_RETURN_IF_ERROR(file_->Read(kLogHeaderSize, data.size(), data.data(),
                                  &got));
  if (got != data.size()) return Status::IOError("short log read");
  size_t pos = 0;
  while (pos + kFrameHeaderSize <= data.size()) {
    const uint32_t len = DecodeFixed32(data.data() + pos);
    if (len == 0) break;  // zero fill: torn tail
    if (pos + kFrameHeaderSize + len > data.size()) break;  // torn tail
    const uint32_t crc = DecodeFixed32(data.data() + pos + 4);
    const char* body = data.data() + pos + kFrameHeaderSize;
    if (crc != FrameCrc(gen_, body, len)) {
      bool stale = false;
      for (uint32_t back = 1; back <= 8 && back < gen_; ++back) {
        if (crc == FrameCrc(gen_ - back, body, len)) {
          stale = true;
          break;
        }
      }
      if (stale) break;  // leftovers from a crash-interrupted truncation
      if (pos + kFrameHeaderSize + len == data.size()) break;  // torn tail
      return Status::Corruption(
          "wal frame checksum mismatch at log offset " +
          std::to_string(kLogHeaderSize + pos) + " in '" + path_ + "'");
    }
    Slice in(body, len);
    LogRecord rec;
    if (!LogRecord::DecodeFrom(&in, &rec).ok()) {
      // The bytes are intact (crc passed) yet undecodable: a writer bug or
      // format mismatch, not a torn tail.
      return Status::Corruption(
          "undecodable wal record at log offset " +
          std::to_string(kLogHeaderSize + pos) + " in '" + path_ + "'");
    }
    rec.lsn = base_lsn_ + static_cast<Lsn>(pos) + 1;
    out->push_back(std::move(rec));
    pos += kFrameHeaderSize + len;
  }
  if (pos < data.size()) {
    // Self-heal: cut the torn or stale tail off so later appends never
    // interleave with its bytes. Propagate failure — continuing with the
    // tail in place risks replaying garbage after the next crash.
    DMX_RETURN_IF_ERROR(file_->Truncate(kLogHeaderSize + pos));
    DMX_RETURN_IF_ERROR(file_->Sync(/*data_only=*/true));
    const Lsn next = base_lsn_ + static_cast<Lsn>(pos) + 1;
    next_lsn_.store(next, std::memory_order_release);
    flushed_lsn_.store(next - 1, std::memory_order_release);
    buffer_start_ = next;
  }
  return Status::OK();
}

// Undo-path point read: mu_ pins the chain so rotation cannot unlink
// the frame mid-read.
// deeplint: allow(blocking-under-lock, point read pins chain vs rotation)
Status LogManager::ReadRecord(Lsn lsn, LogRecord* out) {
  MutexLock lock(&mu_);
  if (poison_ != PoisonKind::kNone) return PoisonedLocked();
  if (lsn == kInvalidLsn ||
      lsn >= next_lsn_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("bad lsn " + std::to_string(lsn));
  }
  if (lsn <= base_lsn_) {
    // Rotated past: a rollback chain reaching across a rotation reads its
    // record from the sealed segment that owns the LSN.
    for (const SegmentInfo& seg : segments_) {
      if (lsn <= seg.base_lsn || lsn > seg.end_lsn) continue;
      std::unique_ptr<RandomAccessFile> f;
      DMX_RETURN_IF_ERROR(
          env_->NewRandomAccessFile(seg.path, /*create=*/false, &f));
      const uint64_t off = kSegHeaderSize + (lsn - seg.base_lsn - 1);
      char hdr[kFrameHeaderSize];
      size_t n = 0;
      Status s = f->Read(off, kFrameHeaderSize, hdr, &n);
      if (s.ok() && n != kFrameHeaderSize) {
        s = Status::IOError("segment frame header read");
      }
      std::string body;
      uint32_t len = 0, crc = 0;
      if (s.ok()) {
        len = DecodeFixed32(hdr);
        crc = DecodeFixed32(hdr + 4);
        body.resize(len);
        s = f->Read(off + kFrameHeaderSize, len, body.data(), &n);
        if (s.ok() && n != len) s = Status::IOError("segment frame body read");
      }
      // Read-only segment handle; the frame status is the outcome.
      (void)f->Close();
      DMX_RETURN_IF_ERROR(s);
      if (crc != FrameCrc(seg.gen, body.data(), len)) {
        return Status::Corruption("wal frame checksum mismatch at lsn " +
                                  std::to_string(lsn) + " in segment '" +
                                  seg.path + "'");
      }
      Slice in(body);
      DMX_RETURN_IF_ERROR(LogRecord::DecodeFrom(&in, out));
      out->lsn = lsn;
      return Status::OK();
    }
    return Status::InvalidArgument("bad lsn " + std::to_string(lsn));
  }
  // Serve from the in-memory buffer if not yet flushed.
  if (lsn >= buffer_start_) {
    size_t off = static_cast<size_t>(lsn - buffer_start_);
    if (off + kFrameHeaderSize > buffer_.size()) {
      return Status::Corruption("lsn in buffer");
    }
    uint32_t len = DecodeFixed32(buffer_.data() + off);
    if (off + kFrameHeaderSize + len > buffer_.size()) {
      return Status::Corruption("lsn body in buffer");
    }
    Slice body(buffer_.data() + off + kFrameHeaderSize, len);
    DMX_RETURN_IF_ERROR(LogRecord::DecodeFrom(&body, out));
    out->lsn = lsn;
    return Status::OK();
  }
  const uint64_t file_off = lsn - base_lsn_ - 1 + kLogHeaderSize;
  char hdr[kFrameHeaderSize];
  size_t n = 0;
  DMX_RETURN_IF_ERROR(file_->Read(file_off, kFrameHeaderSize, hdr, &n));
  if (n != kFrameHeaderSize) return Status::IOError("log frame header read");
  const uint32_t len = DecodeFixed32(hdr);
  const uint32_t crc = DecodeFixed32(hdr + 4);
  std::string body(len, '\0');
  DMX_RETURN_IF_ERROR(
      file_->Read(file_off + kFrameHeaderSize, len, body.data(), &n));
  if (n != len) return Status::IOError("log frame body read");
  if (crc != FrameCrc(gen_, body.data(), len)) {
    return Status::Corruption("wal frame checksum mismatch at lsn " +
                              std::to_string(lsn));
  }
  Slice in(body);
  DMX_RETURN_IF_ERROR(LogRecord::DecodeFrom(&in, out));
  out->lsn = lsn;
  return Status::OK();
}

Status LogManager::ReclaimBlockedLocked() const {
  if (poison_ != PoisonKind::kNone) return PoisonedLocked();
  if (flush_active_) {
    // A leader is mid-fsync with the file offsets we are about to change.
    return Status::Busy("group flush in progress; retry the truncation");
  }
  if (pins_ > 0) {
    return Status::Busy("wal pinned (online backup in progress)");
  }
  if (!buffer_.empty()) {
    return Status::Busy("flush the log before truncating");
  }
  return Status::OK();
}

Status LogManager::Truncate() {
  MutexLock lock(&mu_);
  DMX_RETURN_IF_ERROR(ReclaimBlockedLocked());
  return TruncateLocked();
}

Status LogManager::TruncateLocked() {
  const Lsn old_base = base_lsn_;
  const uint32_t old_gen = gen_;
  base_lsn_ = next_lsn_.load(std::memory_order_relaxed) - 1;
  gen_ += 1;
  // Header first: once the new header (advanced base, bumped generation) is
  // durable, any frames still in the file belong to the old generation and
  // replay discards them, so a crash before the shrink below is harmless.
  Status s = WriteHeaderLocked();
  if (s.ok()) s = file_->Sync(/*data_only=*/false);
  if (!s.ok()) {
    base_lsn_ = old_base;
    gen_ = old_gen;
    Status restore = WriteHeaderLocked();
    if (restore.ok()) restore = file_->Sync(/*data_only=*/false);
    // If we cannot tell which header is on disk, refuse all further work.
    if (!restore.ok()) {
      poison_ = PoisonKind::kHeaderUnknown;
      poison_cause_ = restore;
    }
    return s;
  }
  s = file_->Truncate(kLogHeaderSize);
  if (s.ok()) s = file_->Sync(/*data_only=*/true);
  if (!s.ok()) {
    // The new header is durable but the old frames may linger; in-memory
    // offsets no longer match the file reliably. Refuse further work.
    poison_ = PoisonKind::kStaleTail;
    poison_cause_ = s;
    return s;
  }
  buffer_start_ = next_lsn_.load(std::memory_order_relaxed);
  flushed_lsn_.store(buffer_start_ - 1, std::memory_order_release);
  return Status::OK();
}

std::string LogManager::SegmentPathLocked(uint32_t seqno) const {
  const size_t slash = path_.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "" : path_.substr(0, slash + 1);
  const std::string basename =
      slash == std::string::npos ? path_ : path_.substr(slash + 1);
  return dir + SegmentFileName(basename, seqno);
}

void LogManager::SetRetainSegments(bool retain) {
  MutexLock lock(&mu_);
  retain_segments_ = retain;
}

Status LogManager::Rotate() {
  MutexLock lock(&mu_);
  DMX_RETURN_IF_ERROR(ReclaimBlockedLocked());
  return RotateLocked();
}

Status LogManager::RotateLocked() {
  const Lsn flushed = flushed_lsn_.load(std::memory_order_relaxed);
  if (flushed <= base_lsn_) return Status::OK();  // empty live log: no-op
  // Seal first: the segment must be durable (file + directory entry)
  // before the live header advances past its frames, so a crash at any
  // point leaves at least one complete copy of every flushed record.
  const uint64_t body_size = flushed - base_lsn_;
  std::string body(static_cast<size_t>(body_size), '\0');
  size_t got = 0;
  DMX_RETURN_IF_ERROR(
      file_->Read(kLogHeaderSize, body.size(), body.data(), &got));
  if (got != body.size()) {
    return Status::IOError("short live-wal read during rotation");
  }
  SegmentInfo info;
  info.seqno = next_seg_seqno_;
  info.base_lsn = base_lsn_;
  info.end_lsn = flushed;
  info.gen = gen_;
  info.path = SegmentPathLocked(info.seqno);
  std::string hdr;
  EncodeSegmentHeader(
      SegmentHeader{info.seqno, info.base_lsn, info.end_lsn, info.gen}, &hdr);
  std::unique_ptr<RandomAccessFile> seg;
  Status s = env_->NewRandomAccessFile(info.path, /*create=*/true, &seg);
  if (s.ok()) s = seg->Truncate(0);
  if (s.ok()) s = seg->Write(0, hdr.data(), hdr.size());
  if (s.ok()) s = seg->Write(kSegHeaderSize, body.data(), body.size());
  if (s.ok()) s = seg->Sync(/*data_only=*/false);
  if (s.ok()) s = seg->Close();
  if (s.ok()) s = env_->SyncDir(DirnameOf(path_));
  if (!s.ok()) {
    // The live log is untouched and fully usable; discard the partial
    // segment so a later rotation starts clean.
    if (seg) (void)seg->Close();
    // Best-effort: a leftover partial segment is garbage either way.
    (void)env_->DeleteFile(info.path);
    return s;
  }
  segments_.push_back(info);
  ++next_seg_seqno_;
  Status ts = TruncateLocked();
  if (!ts.ok() && base_lsn_ < info.end_lsn) {
    // The live header never advanced (kHeaderUnknown window or an early
    // failure with the old header restored): the live file still owns
    // these frames, so the sealed copy is a duplicate — exactly what
    // DiscoverSegmentsLocked would delete after a crash here. In the
    // kStaleTail window the header did advance and the segment is the
    // only complete copy; it stays registered.
    segments_.pop_back();
    --next_seg_seqno_;
    // Best-effort: the duplicate copy is re-deleted at next discovery.
    (void)env_->DeleteFile(info.path);
    return ts;
  }
  DMX_RETURN_IF_ERROR(ts);
  metric_segments_sealed_->Increment();
  UpdateLagGaugeLocked();
  return Status::OK();
}

// Truncation must be atomic with respect to appends; the rewrite is
// small and checkpoint-rate.
// deeplint: allow(blocking-under-lock, truncate is atomic vs appends)
Status LogManager::CheckpointTruncate() {
  MutexLock lock(&mu_);
  DMX_RETURN_IF_ERROR(ReclaimBlockedLocked());
  if (!retain_segments_) {
    DMX_RETURN_IF_ERROR(TruncateLocked());
    // No archiver: sealed segments (left over from a config change) are
    // dead history like everything else the checkpoint discards.
    for (const SegmentInfo& seg : segments_) (void)env_->DeleteFile(seg.path);
    segments_.clear();
    UpdateLagGaugeLocked();
    return Status::OK();
  }
  DMX_RETURN_IF_ERROR(RotateLocked());
  // Archive-before-truncate: only segments with a verified archive copy
  // are reclaimable. An unreachable archive stalls reclaim (WAL grows),
  // never costs history.
  while (!segments_.empty() && segments_.front().archived) {
    Status s = env_->DeleteFile(segments_.front().path);
    if (!s.ok() && !s.IsNotFound()) return s;  // retry at next checkpoint
    segments_.erase(segments_.begin());
  }
  UpdateLagGaugeLocked();
  return Status::OK();
}

std::vector<LogManager::SegmentInfo> LogManager::segments() const {
  MutexLock lock(&mu_);
  return segments_;
}

void LogManager::MarkArchived(uint32_t seqno) {
  MutexLock lock(&mu_);
  for (SegmentInfo& seg : segments_) {
    if (seg.seqno == seqno) seg.archived = true;
  }
  UpdateLagGaugeLocked();
}

uint64_t LogManager::sealed_unarchived() const {
  MutexLock lock(&mu_);
  uint64_t n = 0;
  for (const SegmentInfo& seg : segments_) {
    if (!seg.archived) ++n;
  }
  return n;
}

void LogManager::PinWal() {
  MutexLock lock(&mu_);
  ++pins_;
}

void LogManager::UnpinWal() {
  MutexLock lock(&mu_);
  if (pins_ > 0) --pins_;
}

Lsn LogManager::base_lsn() const {
  MutexLock lock(&mu_);
  return base_lsn_;
}

// Backup copies a frozen durable prefix; mu_ keeps rotation and
// truncation out for the copy.
// deeplint: allow(blocking-under-lock, backup copies a frozen prefix)
Status LogManager::SnapshotLiveTo(const std::string& dest_path) {
  MutexLock lock(&mu_);
  if (poison_ != PoisonKind::kNone) return PoisonedLocked();
  if (!file_) return Status::IOError("log not open");
  // Wait out an in-flight group flush so the durable prefix is stable
  // (the leader writes the file with mu_ released).
  while (flush_active_) flush_cv_.Wait();
  const Lsn flushed = flushed_lsn_.load(std::memory_order_relaxed);
  const uint64_t n = kLogHeaderSize + (flushed - base_lsn_);
  std::string bytes(static_cast<size_t>(n), '\0');
  size_t got = 0;
  DMX_RETURN_IF_ERROR(file_->Read(0, bytes.size(), bytes.data(), &got));
  if (got != bytes.size()) {
    return Status::IOError("short live-wal read during backup");
  }
  std::unique_ptr<RandomAccessFile> dest;
  DMX_RETURN_IF_ERROR(
      env_->NewRandomAccessFile(dest_path, /*create=*/true, &dest));
  DMX_RETURN_IF_ERROR(dest->Truncate(0));
  DMX_RETURN_IF_ERROR(dest->Write(0, bytes.data(), bytes.size()));
  DMX_RETURN_IF_ERROR(dest->Sync(/*data_only=*/false));
  return dest->Close();
}

// Poison recovery: the log is quiesced by the poison gate, and repair
// I/O must be exclusive.
// deeplint: allow(blocking-under-lock, poison repair I/O is exclusive)
Status LogManager::Resume() {
  MutexLock lock(&mu_);
  if (!file_) return Status::IOError("log not open");
  switch (poison_) {
    case PoisonKind::kNone:
      break;
    case PoisonKind::kHeaderUnknown:
      // Neither the new nor the restored (current in-memory) header is
      // known to be on disk: rewrite ours and make it durable. Until this
      // succeeds the poison stays set and we keep returning the fault.
      DMX_RETURN_IF_ERROR(WriteHeaderLocked());
      DMX_RETURN_IF_ERROR(file_->Sync(/*data_only=*/false));
      break;
    case PoisonKind::kStaleTail:
      // The advanced header is durable; finish the interrupted shrink so
      // old-generation frames cannot linger past the next crash.
      DMX_RETURN_IF_ERROR(file_->Truncate(kLogHeaderSize));
      DMX_RETURN_IF_ERROR(file_->Sync(/*data_only=*/true));
      buffer_start_ = next_lsn_.load(std::memory_order_relaxed);
      flushed_lsn_.store(buffer_start_ - 1, std::memory_order_release);
      break;
  }
  poison_ = PoisonKind::kNone;
  poison_cause_ = Status::OK();
  // Probe the full append/force path before declaring the log healthy: a
  // pending buffer is the real thing to flush; otherwise rewrite + sync
  // the header as a same-shape write.
  if (!buffer_.empty()) {
    return FlushToLocked(next_lsn_.load(std::memory_order_relaxed) - 1);
  }
  DMX_RETURN_IF_ERROR(WriteHeaderLocked());
  return file_->Sync(/*data_only=*/false);
}

}  // namespace dmx
