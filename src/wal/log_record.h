// Log records for the common recovery facility.
//
// The paper: "The data management extension architecture relies on the use
// of a common recovery facility to drive, not only system restart and
// transaction abort, but also the *partial rollback* of the actions of the
// transaction... the common recovery log is used to drive the storage
// method and attachment implementations to undo the partial effects of the
// aborted relation modification."
//
// Update records therefore carry the *extension identity* (storage method or
// attachment type id) plus an opaque payload that only that extension can
// interpret; the recovery driver dispatches undo/redo back through the
// extension procedure vectors.

#ifndef DMX_WAL_LOG_RECORD_H_
#define DMX_WAL_LOG_RECORD_H_

#include <string>

#include "src/util/common.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dmx {

enum class LogRecType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,      // abort decided; undo follows, then kEnd
  kEnd = 4,        // transaction fully finished (committed or rolled back)
  kUpdate = 5,     // extension-specific action with undo/redo payload
  kClr = 6,        // compensation record for one undone kUpdate
  kSavepoint = 7,  // partial-rollback point
};

/// Which procedure-vector family interprets an update payload.
enum class ExtKind : uint8_t {
  kStorageMethod = 0,
  kAttachment = 1,
};

/// One log record. `lsn` is assigned by the log manager on append.
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  LogRecType type = LogRecType::kBegin;
  TxnId txn = kInvalidTxnId;
  Lsn prev_lsn = kInvalidLsn;  // previous record of the same transaction

  // kUpdate / kClr:
  ExtKind ext_kind = ExtKind::kStorageMethod;
  uint16_t ext_id = 0;            // SmId or AtId
  RelationId relation = kInvalidRelationId;
  std::string payload;            // extension-private undo/redo encoding

  // kClr only: next record to undo when this CLR is encountered during
  // rollback (the prev_lsn of the compensated update).
  Lsn undo_next = kInvalidLsn;

  // kSavepoint only:
  std::string savepoint_name;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, LogRecord* out);
};

/// Convenience constructor for an extension update record.
LogRecord MakeUpdateRecord(TxnId txn, ExtKind kind, uint16_t ext_id,
                           RelationId relation, std::string payload);

}  // namespace dmx

#endif  // DMX_WAL_LOG_RECORD_H_
