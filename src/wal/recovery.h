// RecoveryDriver: the common log-driven undo/redo machinery.
//
// The same driver serves three duties the paper assigns to the common
// recovery facility: (1) undoing the partial effects of a vetoed relation
// modification, (2) transaction abort and partial (savepoint) rollback, and
// (3) system restart recovery. In every case the driver reads the common
// log and *dispatches back into the extension implementations* — it never
// interprets an update payload itself.

#ifndef DMX_WAL_RECOVERY_H_
#define DMX_WAL_RECOVERY_H_

#include <functional>
#include <map>

#include "src/wal/log_manager.h"

namespace dmx {

/// Callback installed by the data manager: apply (redo) or reverse (undo)
/// one logged extension action by dispatching through the procedure
/// vectors. `apply_lsn` is the LSN to stamp on any page images touched
/// (the record's own LSN for redo; the CLR's LSN for undo).
using ApplyLogFn =
    std::function<Status(const LogRecord& rec, bool undo, Lsn apply_lsn)>;

/// Per-transaction info discovered by restart analysis.
struct TxnAnalysis {
  Lsn last_lsn = kInvalidLsn;
  bool committed = false;
  bool ended = false;
};

class RecoveryDriver {
 public:
  RecoveryDriver(LogManager* log, ApplyLogFn apply)
      : log_(log), apply_(std::move(apply)) {}

  /// Undo the transaction's actions strictly after `to_lsn`, writing CLRs.
  /// `last_lsn` is the transaction's current chain head in/out parameter:
  /// on return it points at the newest CLR. `to_lsn == kInvalidLsn` undoes
  /// everything (full abort). Used for vetoed modifications (to_lsn = LSN
  /// before the operation), savepoint rollback, and abort.
  Status Rollback(TxnId txn, Lsn to_lsn, Lsn* last_lsn);

  /// Restart recovery: analysis over the whole log, redo of all update and
  /// CLR records (extensions gate on page LSNs), then rollback of loser
  /// transactions with kEnd records appended. Returns the set of loser
  /// transaction ids via `losers` if non-null.
  Status Restart(std::vector<TxnId>* losers = nullptr);

  /// Number of undo actions dispatched (tests/benchmarks).
  uint64_t undo_count() const { return undo_count_; }
  uint64_t redo_count() const { return redo_count_; }

  /// Highest transaction id seen in the log during Restart. New
  /// transaction ids must start above this so they never collide with
  /// logged history.
  TxnId max_txn_seen() const { return max_txn_seen_; }

 private:
  LogManager* log_;
  ApplyLogFn apply_;
  uint64_t undo_count_ = 0;
  uint64_t redo_count_ = 0;
  TxnId max_txn_seen_ = 0;
};

}  // namespace dmx

#endif  // DMX_WAL_RECOVERY_H_
