// WalArchiver: background WAL segment rotation and archiving.
//
// The archiver watches the live log's flushed size; past the segment size
// target it asks the LogManager to Rotate() (sealing flushed frames into
// an immutable segment file), then copies every sealed-but-unarchived
// segment into the archive directory. Each copy is CRC-verified end to
// end before it counts: the source segment's header and every frame crc
// are checked, the bytes land under a temporary name, and only a
// rename + directory sync publishes the archived file — so the archive
// never contains a torn or silently corrupt segment, and a crash mid-copy
// leaves at most a `.tmp` orphan that the next pass overwrites.
//
// Only after a segment is confirmed archived does LogManager::
// CheckpointTruncate() reclaim it (the archive-before-truncate
// invariant). While the archive is unreachable, sealed segments pile up
// in the database directory — WAL space grows, history is never lost —
// and the failure is reported through `on_failure` so the ErrorHandler
// can degrade the database and drive recovery (RecoverWritePath drains
// the backlog via ArchivePending()).
//
// Metrics: wal.archived_segments, wal.archive_failures (plus
// wal.segments_sealed from the LogManager).

#ifndef DMX_WAL_ARCHIVER_H_
#define DMX_WAL_ARCHIVER_H_

#include <functional>
#include <string>
#include <thread>

#include "src/util/env.h"
#include "src/util/metrics.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/wal/log_manager.h"

namespace dmx {

class WalArchiver {
 public:
  struct Options {
    std::string archive_dir;
    /// Rotate when the live log's flushed frames exceed this many bytes.
    uint64_t segment_target_bytes = 4ull << 20;
    /// Background poll cadence.
    uint64_t poll_interval_us = 20000;
  };

  /// `log` and `env` must outlive the archiver. The env should be the
  /// database's (retrying) env so transient archive faults are absorbed.
  WalArchiver(LogManager* log, Env* env, Options options);
  ~WalArchiver();

  WalArchiver(const WalArchiver&) = delete;
  WalArchiver& operator=(const WalArchiver&) = delete;

  /// Create the archive directory and start the background thread.
  /// `on_failure` (optional) is invoked outside any archiver lock with
  /// the Status of a failed archive pass — the ErrorHandler hook.
  Status Start(std::function<void(const Status&)> on_failure);
  /// Stop and join the background thread (idempotent).
  void Stop();

  /// One synchronous pass: rotate if the live log is past the size
  /// target, then archive everything pending. Foreground-callable; the
  /// recovery path uses it to prove the archive is reachable again.
  Status Poll();

  /// Verify + copy every sealed-but-unarchived segment into the archive.
  Status ArchivePending();

  /// Wake the background thread (after recovery, or in tests).
  void Kick();

  const Options& options() const { return options_; }

 private:
  void Loop();
  Status ArchiveOne(const LogManager::SegmentInfo& seg);

  LogManager* log_;
  Env* env_;
  Options options_;
  Counter* metric_archived_;
  Counter* metric_failures_;

  mutable Mutex mu_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool kicked_ GUARDED_BY(mu_) = false;
  // After a failed pass the loop parks until kicked (recovery) or
  // stopped, instead of hammering a broken archive volume.
  bool parked_ GUARDED_BY(mu_) = false;
  std::function<void(const Status&)> on_failure_ GUARDED_BY(mu_);
  CondVar cv_{&mu_};
  // Touched only by Start/Stop/~WalArchiver, which the Database
  // serializes on its open/close path.
  std::thread thread_;
};

}  // namespace dmx

#endif  // DMX_WAL_ARCHIVER_H_
