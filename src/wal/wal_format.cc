#include "src/wal/wal_format.h"

#include <cstdio>
#include <cstring>

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace dmx {

uint32_t WalFrameCrc(uint32_t gen, const char* body, size_t n) {
  char g[4];
  memcpy(g, &gen, 4);
  return Crc32cExtend(Crc32c(g, 4), body, n);
}

void EncodeLiveHeader(Lsn base_lsn, uint32_t gen, std::string* out) {
  const size_t start = out->size();
  PutFixed32(out, kLogMagic);
  PutFixed64(out, base_lsn);
  PutFixed32(out, gen);
  PutFixed32(out, Crc32c(out->data() + start, 16));
  PutFixed32(out, 0);  // pad to kLogHeaderSize
}

Status DecodeLiveHeader(const char* buf, Lsn* base_lsn, uint32_t* gen) {
  if (DecodeFixed32(buf) != kLogMagic) {
    return Status::Corruption("bad log magic");
  }
  if (DecodeFixed32(buf + 16) != Crc32c(buf, 16)) {
    return Status::Corruption("log header checksum mismatch");
  }
  *base_lsn = DecodeFixed64(buf + 4);
  *gen = DecodeFixed32(buf + 12);
  return Status::OK();
}

void EncodeSegmentHeader(const SegmentHeader& hdr, std::string* out) {
  const size_t start = out->size();
  PutFixed32(out, kSegMagic);
  PutFixed32(out, hdr.seqno);
  PutFixed64(out, hdr.base_lsn);
  PutFixed64(out, hdr.end_lsn);
  PutFixed32(out, hdr.gen);
  PutFixed32(out, Crc32c(out->data() + start, 28));
  PutFixed64(out, 0);  // pad to kSegHeaderSize
}

Status DecodeSegmentHeader(const char* buf, SegmentHeader* out) {
  if (DecodeFixed32(buf) != kSegMagic) {
    return Status::Corruption("bad wal segment magic");
  }
  if (DecodeFixed32(buf + 28) != Crc32c(buf, 28)) {
    return Status::Corruption("wal segment header checksum mismatch");
  }
  out->seqno = DecodeFixed32(buf + 4);
  out->base_lsn = DecodeFixed64(buf + 8);
  out->end_lsn = DecodeFixed64(buf + 16);
  out->gen = DecodeFixed32(buf + 24);
  if (out->end_lsn < out->base_lsn) {
    return Status::Corruption("wal segment header lsn range inverted");
  }
  return Status::OK();
}

std::string SegmentFileName(const std::string& wal_basename, uint32_t seqno) {
  char suffix[24];
  snprintf(suffix, sizeof(suffix), ".%06u.seg", seqno);
  return wal_basename + suffix;
}

bool ParseSegmentName(const std::string& name, const std::string& wal_basename,
                      uint32_t* seqno) {
  // `<basename>.<digits>.seg`
  const std::string prefix = wal_basename + ".";
  const std::string suffix = ".seg";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() || digits.size() > 9) return false;
  uint32_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  *seqno = value;
  return true;
}

Status VerifySegmentFile(Env* env, const std::string& path,
                         SegmentHeader* out) {
  std::unique_ptr<RandomAccessFile> file;
  DMX_RETURN_IF_ERROR(env->NewRandomAccessFile(path, /*create=*/false, &file));
  uint64_t size = 0;
  Status s = file->Size(&size);
  char hdr[kSegHeaderSize];
  size_t n = 0;
  if (s.ok() && size < kSegHeaderSize) {
    s = Status::Corruption("wal segment '" + path + "' shorter than header");
  }
  if (s.ok()) {
    s = file->Read(0, kSegHeaderSize, hdr, &n);
    if (s.ok() && n != kSegHeaderSize) {
      s = Status::Corruption("short header read of '" + path + "'");
    }
  }
  SegmentHeader parsed;
  if (s.ok()) {
    s = DecodeSegmentHeader(hdr, &parsed);
    if (!s.ok()) s = Status::Corruption(s.message() + " in '" + path + "'");
  }
  if (s.ok() &&
      size != kSegHeaderSize + (parsed.end_lsn - parsed.base_lsn)) {
    s = Status::Corruption("wal segment '" + path +
                           "' length disagrees with its header");
  }
  std::string body;
  if (s.ok()) {
    body.resize(static_cast<size_t>(size) - kSegHeaderSize);
    s = file->Read(kSegHeaderSize, body.size(), body.data(), &n);
    if (s.ok() && n != body.size()) {
      s = Status::Corruption("short body read of '" + path + "'");
    }
  }
  if (s.ok()) {
    size_t pos = 0;
    while (pos < body.size()) {
      if (pos + kFrameHeaderSize > body.size()) {
        s = Status::Corruption("truncated frame header in '" + path + "'");
        break;
      }
      const uint32_t len = DecodeFixed32(body.data() + pos);
      if (pos + kFrameHeaderSize + len > body.size()) {
        s = Status::Corruption("truncated frame body in '" + path + "'");
        break;
      }
      const uint32_t crc = DecodeFixed32(body.data() + pos + 4);
      if (crc != WalFrameCrc(parsed.gen, body.data() + pos + kFrameHeaderSize,
                             len)) {
        s = Status::Corruption("frame checksum mismatch at segment offset " +
                               std::to_string(kSegHeaderSize + pos) + " in '" +
                               path + "'");
        break;
      }
      pos += kFrameHeaderSize + len;
    }
  }
  Status c = file->Close();
  if (!s.ok()) return s;
  DMX_RETURN_IF_ERROR(c);
  if (out != nullptr) *out = parsed;
  return Status::OK();
}

}  // namespace dmx
