#include "src/wal/recovery.h"

namespace dmx {

Status RecoveryDriver::Rollback(TxnId txn, Lsn to_lsn, Lsn* last_lsn) {
  Lsn cursor = *last_lsn;
  while (cursor != kInvalidLsn && cursor > to_lsn) {
    LogRecord rec;
    DMX_RETURN_IF_ERROR(log_->ReadRecord(cursor, &rec));
    if (rec.txn != txn) {
      return Status::Corruption("rollback chain crossed transactions");
    }
    switch (rec.type) {
      case LogRecType::kUpdate: {
        // Write the CLR first so its LSN can stamp the undone pages, then
        // dispatch the undo through the extension.
        LogRecord clr;
        clr.type = LogRecType::kClr;
        clr.txn = txn;
        clr.prev_lsn = *last_lsn;
        clr.ext_kind = rec.ext_kind;
        clr.ext_id = rec.ext_id;
        clr.relation = rec.relation;
        clr.payload = rec.payload;
        clr.undo_next = rec.prev_lsn;
        DMX_RETURN_IF_ERROR(log_->Append(&clr));
        DMX_RETURN_IF_ERROR(apply_(rec, /*undo=*/true, clr.lsn));
        ++undo_count_;
        *last_lsn = clr.lsn;
        cursor = rec.prev_lsn;
        break;
      }
      case LogRecType::kClr:
        // Already-compensated work: skip to what the CLR points at.
        cursor = rec.undo_next;
        break;
      case LogRecType::kSavepoint:
      case LogRecType::kBegin:
      case LogRecType::kAbort:
        cursor = rec.prev_lsn;
        break;
      case LogRecType::kCommit:
      case LogRecType::kEnd:
        return Status::Internal("rollback past commit/end");
    }
  }
  return Status::OK();
}

Status RecoveryDriver::Restart(std::vector<TxnId>* losers) {
  std::vector<LogRecord> records;
  DMX_RETURN_IF_ERROR(log_->ReadAll(&records));

  // -- Analysis: find transaction outcomes and chain heads.
  std::map<TxnId, TxnAnalysis> txns;
  for (const LogRecord& rec : records) {
    if (rec.txn > max_txn_seen_) max_txn_seen_ = rec.txn;
    TxnAnalysis& t = txns[rec.txn];
    t.last_lsn = rec.lsn;
    if (rec.type == LogRecType::kCommit) t.committed = true;
    if (rec.type == LogRecType::kEnd) t.ended = true;
  }

  // -- Redo: replay every update and compensation in log order. The
  // extension's redo entry point is responsible for idempotence (page-LSN
  // gating for page-based stores).
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecType::kUpdate) {
      DMX_RETURN_IF_ERROR(apply_(rec, /*undo=*/false, rec.lsn));
      ++redo_count_;
    } else if (rec.type == LogRecType::kClr) {
      // Redo of a CLR re-applies the compensation, i.e. the undo action.
      DMX_RETURN_IF_ERROR(apply_(rec, /*undo=*/true, rec.lsn));
      ++redo_count_;
    }
  }

  // -- Undo: roll back losers (neither committed nor ended).
  for (auto& [txn, info] : txns) {
    if (txn == kInvalidTxnId || info.committed || info.ended) continue;
    Lsn last = info.last_lsn;
    DMX_RETURN_IF_ERROR(Rollback(txn, kInvalidLsn, &last));
    LogRecord end;
    end.type = LogRecType::kEnd;
    end.txn = txn;
    end.prev_lsn = last;
    DMX_RETURN_IF_ERROR(log_->Append(&end));
    if (losers) losers->push_back(txn);
  }
  return log_->FlushAll();
}

}  // namespace dmx
