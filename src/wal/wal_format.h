// On-disk WAL format shared by the LogManager, the archiver, the backup
// subsystem, and the offline dmx_backup_verify tool.
//
// Live log file:
//   header (24 bytes): u32 magic "DMXL" | u64 base_lsn | u32 generation |
//                      u32 crc of the preceding 16 bytes | u32 pad
//   frames:            u32 length | u32 crc | body
//
// Sealed segment file (`<wal>.NNNNNN.seg`, produced by LogManager::Rotate):
//   header (40 bytes): u32 magic "DMXS" | u32 seqno | u64 base_lsn |
//                      u64 end_lsn | u32 generation |
//                      u32 crc of the preceding 28 bytes | u64 pad
//   frames:            copied verbatim from the live log; their crcs carry
//                      the generation recorded in the segment header
//
// A segment's frames cover the LSN range (base_lsn, end_lsn]; the frame at
// body offset `pos` has LSN base_lsn + pos + 1 — the same arithmetic as the
// live file, so a sealed segment is simply a frozen prefix of history.

#ifndef DMX_WAL_WAL_FORMAT_H_
#define DMX_WAL_WAL_FORMAT_H_

#include <cstdint>
#include <string>

#include "src/util/common.h"
#include "src/util/env.h"
#include "src/util/status.h"

namespace dmx {

constexpr size_t kLogHeaderSize = 24;
constexpr size_t kFrameHeaderSize = 8;       // u32 length | u32 crc
constexpr uint32_t kLogMagic = 0x444D584C;   // "DMXL"
constexpr size_t kSegHeaderSize = 40;
constexpr uint32_t kSegMagic = 0x444D5853;   // "DMXS"

/// CRC32C over the owning generation number followed by the frame body.
/// Mixing the generation in lets replay distinguish a stale pre-truncation
/// frame (crc matches an older generation) from genuine corruption.
uint32_t WalFrameCrc(uint32_t gen, const char* body, size_t n);

/// Append the kLogHeaderSize-byte live-log header for an empty-or-resumed
/// log with the given base LSN and generation. Restore materializes the
/// tail of a reconstructed WAL chain as a live file with this.
void EncodeLiveHeader(Lsn base_lsn, uint32_t gen, std::string* out);

/// Decode a live-log header (magic + checksum verified).
Status DecodeLiveHeader(const char* buf, Lsn* base_lsn, uint32_t* gen);

/// Parsed segment header.
struct SegmentHeader {
  uint32_t seqno = 0;
  Lsn base_lsn = 0;  // frames cover (base_lsn, end_lsn]
  Lsn end_lsn = 0;
  uint32_t gen = 0;
};

/// Append the kSegHeaderSize-byte encoding of `hdr` to `*out`.
void EncodeSegmentHeader(const SegmentHeader& hdr, std::string* out);

/// Decode a segment header from `buf` (must hold kSegHeaderSize bytes).
/// Corruption on bad magic or checksum.
Status DecodeSegmentHeader(const char* buf, SegmentHeader* out);

/// `<wal_basename>.NNNNNN.seg` for seqno NNNNNN.
std::string SegmentFileName(const std::string& wal_basename, uint32_t seqno);

/// True (and sets *seqno) when `name` is a segment of the named live log.
bool ParseSegmentName(const std::string& name, const std::string& wal_basename,
                      uint32_t* seqno);

/// Full offline verification of a sealed segment: header magic + checksum,
/// body length against the header's LSN range, and every frame's crc under
/// the header's generation. Used by the archiver before a segment is copied
/// into the archive, and by restore/dmx_backup_verify before replay.
Status VerifySegmentFile(Env* env, const std::string& path,
                         SegmentHeader* out);

}  // namespace dmx

#endif  // DMX_WAL_WAL_FORMAT_H_
