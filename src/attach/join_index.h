// Join-index attachment [VALDURIEZ 85] — the paper's example that "access
// paths need not be limited to a single table (e.g., join indexes)".
//
// A join index over relations R1 ⋈ R2 on equal join fields is maintained
// as a shared in-memory structure named by the DDL; an instance is created
// on *each* participating relation (side=1 on R1, side=2 on R2), and the
// attached procedures of both instances keep the pair set current as
// either relation changes. AtOps::lookup on either side's instance takes
// the encoded join-key and returns the matching record keys of the
// *other* side (the useful direction for an index join).
//
// In-memory, rebuilt after restart, logical undo logging.
//
// DDL attributes: name=<shared join index name>, side=1|2,
//                 fields=<local join columns>.

#ifndef DMX_ATTACH_JOIN_INDEX_H_
#define DMX_ATTACH_JOIN_INDEX_H_

#include "src/core/extension.h"

namespace dmx {

const AtOps& JoinIndexOps();

/// Pairs currently materialized in the named join index (tests/benches).
size_t JoinIndexPairCount(const std::string& name);

}  // namespace dmx

#endif  // DMX_ATTACH_JOIN_INDEX_H_
