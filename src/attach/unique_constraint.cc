#include "src/attach/unique_constraint.h"

#include <map>

#include "src/core/database.h"
#include "src/sm/btree_sm.h"
#include "src/sm/key_codec.h"
#include "src/util/coding.h"

namespace dmx {
namespace {

struct UniqueInstance {
  uint32_t no = 0;
  std::string name;
  std::vector<int> fields;
};

struct UniqueTypeDesc {
  uint32_t next_no = 1;
  std::vector<UniqueInstance> instances;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, next_no);
    PutVarint32(dst, static_cast<uint32_t>(instances.size()));
    for (const UniqueInstance& inst : instances) {
      PutVarint32(dst, inst.no);
      PutLengthPrefixedSlice(dst, inst.name);
      PutVarint32(dst, static_cast<uint32_t>(inst.fields.size()));
      for (int f : inst.fields) PutVarint32(dst, static_cast<uint32_t>(f));
    }
  }

  static Status DecodeFrom(Slice in, UniqueTypeDesc* out) {
    out->instances.clear();
    if (in.empty()) {
      out->next_no = 1;
      return Status::OK();
    }
    uint32_t next, count;
    if (!GetVarint32(&in, &next) || !GetVarint32(&in, &count)) {
      return Status::Corruption("unique descriptor");
    }
    out->next_no = next;
    for (uint32_t i = 0; i < count; ++i) {
      UniqueInstance inst;
      uint32_t no, nfields;
      Slice name;
      if (!GetVarint32(&in, &no) || !GetLengthPrefixedSlice(&in, &name) ||
          !GetVarint32(&in, &nfields)) {
        return Status::Corruption("unique instance");
      }
      inst.no = no;
      inst.name = name.ToString();
      for (uint32_t f = 0; f < nfields; ++f) {
        uint32_t idx;
        if (!GetVarint32(&in, &idx)) return Status::Corruption("unique field");
        inst.fields.push_back(static_cast<int>(idx));
      }
      out->instances.push_back(std::move(inst));
    }
    return Status::OK();
  }
};

struct UniqueState : public ExtState {
  UniqueTypeDesc desc;
  // Per instance: key encoding -> live count (should be 0 or 1, but kept
  // as a count so undo/redo replay composes).
  std::map<uint32_t, std::map<std::string, int64_t>> counts;
};

UniqueState* StateOf(AtContext& ctx) {
  return static_cast<UniqueState*>(ctx.state);
}

// A row participates only if none of its constrained fields is NULL.
bool KeyOf(const RecordView& view, const std::vector<int>& fields,
           std::string* key) {
  for (int f : fields) {
    if (view.IsNull(static_cast<size_t>(f))) return false;
  }
  key->clear();
  return EncodeFieldKey(view, fields, key).ok();
}

Status UqLog(AtContext& ctx, char op, uint32_t instance, const Slice& key) {
  std::string payload(1, op);
  PutVarint32(&payload, instance);
  payload.append(key.data(), key.size());
  LogRecord rec = MakeUpdateRecord(
      ctx.txn != nullptr ? ctx.txn->id() : kInvalidTxnId,
      ExtKind::kAttachment, ctx.at_id, ctx.desc->id, std::move(payload));
  rec.prev_lsn = ctx.txn != nullptr ? ctx.txn->last_lsn() : kInvalidLsn;
  DMX_RETURN_IF_ERROR(ctx.db->log()->Append(&rec));
  if (ctx.txn != nullptr) ctx.txn->set_last_lsn(rec.lsn);
  return Status::OK();
}

// (Re)build the key-count tables by scanning the base relation — used both
// at first open and as the restart-recovery rebuild hook ("wide latitude in
// the selection of recovery techniques").
Status UqRebuild(AtContext& ctx);

Status UqOpen(AtContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<UniqueState>();
  DMX_RETURN_IF_ERROR(UniqueTypeDesc::DecodeFrom(ctx.at_desc, &st->desc));
  AtContext prime_ctx = ctx;
  prime_ctx.state = st.get();
  DMX_RETURN_IF_ERROR(UqRebuild(prime_ctx));
  *state = std::move(st);
  return Status::OK();
}

Status UqRebuild(AtContext& ctx) {
  UniqueState* st = StateOf(ctx);
  st->counts.clear();
  if (st->desc.instances.empty()) return Status::OK();
  std::unique_ptr<Scan> scan;
  const SmOps& sm = ctx.db->registry()->sm_ops(ctx.desc->sm_id);
  SmContext sctx;
  DMX_RETURN_IF_ERROR(ctx.db->MakeSmContext(nullptr, ctx.desc, &sctx));
  DMX_RETURN_IF_ERROR(sm.open_scan(sctx, ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    for (const UniqueInstance& inst : st->desc.instances) {
      std::string key;
      if (KeyOf(item.view, inst.fields, &key)) ++st->counts[inst.no][key];
    }
  }
  return Status::OK();
}

Status UqCreateInstance(AtContext& ctx, const AttrList& attrs,
                        std::string* new_desc, uint32_t* instance_no) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({"fields", "name"}));
  if (!attrs.Has("fields")) {
    return Status::InvalidArgument("unique requires fields=<columns>");
  }
  UniqueInstance inst;
  inst.name = attrs.Get("name");
  DMX_RETURN_IF_ERROR(
      ParseFieldList(ctx.desc->schema, attrs.Get("fields"), &inst.fields));

  UniqueTypeDesc desc;
  DMX_RETURN_IF_ERROR(UniqueTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  inst.no = desc.next_no++;

  // Scan existing data: reject creation on a relation that already has
  // duplicates. (The post-DDL reopen rescans to prime the live table.)
  std::map<std::string, int64_t> seen;
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, ctx.desc, AccessPathId::StorageMethod(), ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    std::string key;
    if (!KeyOf(item.view, inst.fields, &key)) continue;
    if (++seen[key] > 1) {
      return Status::Constraint("existing duplicates prevent unique '" +
                                inst.name + "'");
    }
  }

  *instance_no = inst.no;
  desc.instances.push_back(std::move(inst));
  new_desc->clear();
  desc.EncodeTo(new_desc);
  return Status::OK();
}

Status UqDropInstance(AtContext& ctx, uint32_t instance_no,
                      std::string* new_desc) {
  UniqueTypeDesc desc;
  DMX_RETURN_IF_ERROR(UniqueTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  bool found = false;
  std::vector<UniqueInstance> kept;
  for (UniqueInstance& inst : desc.instances) {
    if (inst.no == instance_no) {
      found = true;
    } else {
      kept.push_back(std::move(inst));
    }
  }
  if (!found) {
    return Status::NotFound("unique instance " + std::to_string(instance_no));
  }
  desc.instances = std::move(kept);
  new_desc->clear();
  if (!desc.instances.empty()) desc.EncodeTo(new_desc);
  return Status::OK();
}

Status UqAdd(AtContext& ctx, UniqueState* st, const UniqueInstance& inst,
             const RecordView& view) {
  std::string key;
  if (!KeyOf(view, inst.fields, &key)) return Status::OK();
  int64_t& count = st->counts[inst.no][key];
  if (count > 0) {
    return Status::Constraint(
        "unique constraint" +
        (inst.name.empty() ? "" : " '" + inst.name + "'") + " violated");
  }
  ++count;
  return UqLog(ctx, 'I', inst.no, Slice(key));
}

Status UqRemove(AtContext& ctx, UniqueState* st, const UniqueInstance& inst,
                const RecordView& view) {
  std::string key;
  if (!KeyOf(view, inst.fields, &key)) return Status::OK();
  auto& table = st->counts[inst.no];
  auto it = table.find(key);
  if (it != table.end() && --it->second <= 0) table.erase(it);
  return UqLog(ctx, 'D', inst.no, Slice(key));
}

Status UqOnInsert(AtContext& ctx, const Slice&, const Slice& new_record) {
  UniqueState* st = StateOf(ctx);
  RecordView view(new_record, &ctx.desc->schema);
  for (const UniqueInstance& inst : st->desc.instances) {
    DMX_RETURN_IF_ERROR(UqAdd(ctx, st, inst, view));
  }
  return Status::OK();
}

Status UqOnUpdate(AtContext& ctx, const Slice&, const Slice&,
                  const Slice& old_record, const Slice& new_record) {
  UniqueState* st = StateOf(ctx);
  RecordView old_view(old_record, &ctx.desc->schema);
  RecordView new_view(new_record, &ctx.desc->schema);
  for (const UniqueInstance& inst : st->desc.instances) {
    std::string okey, nkey;
    bool had = KeyOf(old_view, inst.fields, &okey);
    bool has = KeyOf(new_view, inst.fields, &nkey);
    if (had && has && okey == nkey) continue;  // key unchanged
    if (had) DMX_RETURN_IF_ERROR(UqRemove(ctx, st, inst, old_view));
    if (has) DMX_RETURN_IF_ERROR(UqAdd(ctx, st, inst, new_view));
  }
  return Status::OK();
}

Status UqOnDelete(AtContext& ctx, const Slice&, const Slice& old_record) {
  UniqueState* st = StateOf(ctx);
  RecordView view(old_record, &ctx.desc->schema);
  for (const UniqueInstance& inst : st->desc.instances) {
    DMX_RETURN_IF_ERROR(UqRemove(ctx, st, inst, view));
  }
  return Status::OK();
}

Status UqApply(AtContext& ctx, const LogRecord& rec, bool undo) {
  UniqueState* st = StateOf(ctx);
  Slice in(rec.payload);
  if (in.empty()) return Status::Corruption("unique payload");
  char op = in[0];
  in.remove_prefix(1);
  uint32_t instance;
  if (!GetVarint32(&in, &instance)) {
    return Status::Corruption("unique instance id");
  }
  bool add = (op == 'I');
  if (undo) add = !add;
  auto& table = st->counts[instance];
  if (add) {
    ++table[in.ToString()];
  } else {
    auto it = table.find(in.ToString());
    if (it != table.end() && --it->second <= 0) table.erase(it);
  }
  return Status::OK();
}

Status UqUndo(AtContext& ctx, const LogRecord& rec, Lsn) {
  return UqApply(ctx, rec, /*undo=*/true);
}

// Redo at restart is a no-op: rebuild() reconstructs from the base
// relation after redo/undo complete, which supersedes replay.
Status UqRedo(AtContext&, const LogRecord&, Lsn) { return Status::OK(); }

uint32_t UqInstanceCount(const Slice& at_desc) {
  UniqueTypeDesc desc;
  if (!UniqueTypeDesc::DecodeFrom(at_desc, &desc).ok()) return 0;
  return static_cast<uint32_t>(desc.instances.size());
}

Status UqListInstances(const Slice& at_desc, std::vector<uint32_t>* out) {
  UniqueTypeDesc desc;
  DMX_RETURN_IF_ERROR(UniqueTypeDesc::DecodeFrom(at_desc, &desc));
  out->clear();
  for (const UniqueInstance& inst : desc.instances) out->push_back(inst.no);
  return Status::OK();
}

// Verify re-derives key multiplicities straight from the base relation, so
// it catches both genuine duplicate data and a drifted live table.
Status UqVerify(AtContext& ctx, uint32_t instance_no, VerifyReport* report) {
  UniqueState* st = StateOf(ctx);
  const UniqueInstance* inst = nullptr;
  for (const UniqueInstance& i : st->desc.instances) {
    if (i.no == instance_no) inst = &i;
  }
  if (inst == nullptr) {
    return Status::NotFound("unique instance " + std::to_string(instance_no));
  }
  const std::string tag = "unique#" + std::to_string(instance_no) + ": ";

  std::map<std::string, int64_t> seen;
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, ctx.desc, AccessPathId::StorageMethod(), ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    std::string key;
    if (!KeyOf(item.view, inst->fields, &key)) continue;
    if (++seen[key] == 2) {
      report->Problem(tag + "duplicate value for unique constraint" +
                      (inst->name.empty() ? "" : " '" + inst->name + "'"));
    }
    ++report->items;
  }

  // Cross-check the live count table against the recomputed one.
  auto live_it = st->counts.find(instance_no);
  static const std::map<std::string, int64_t> kEmpty;
  const auto& live = live_it != st->counts.end() ? live_it->second : kEmpty;
  if (live != seen) {
    report->Problem(tag + "in-memory key counts disagree with base relation");
  }
  return Status::OK();
}

// Every unique instance guards integrity: with the constraint quarantined
// its veto no longer fires, so writes must be refused until REPAIR.
bool UqGuardsIntegrity(const Slice& at_desc, uint32_t instance_no) {
  UniqueTypeDesc desc;
  if (!UniqueTypeDesc::DecodeFrom(at_desc, &desc).ok()) return false;
  for (const UniqueInstance& inst : desc.instances) {
    if (inst.no == instance_no) return true;
  }
  return false;
}

}  // namespace

const AtOps& UniqueConstraintOps() {
  static const AtOps ops = [] {
    AtOps o;
    o.name = "unique";
    o.create_instance = UqCreateInstance;
    o.drop_instance = UqDropInstance;
    o.open = UqOpen;
    o.on_insert = UqOnInsert;
    o.on_update = UqOnUpdate;
    o.on_delete = UqOnDelete;
    o.undo = UqUndo;
    o.redo = UqRedo;
    o.rebuild = UqRebuild;
    o.instance_count = UqInstanceCount;
    o.list_instances = UqListInstances;
    o.verify = UqVerify;
    o.guards_integrity = UqGuardsIntegrity;
    return o;
  }();
  return ops;
}

}  // namespace dmx
