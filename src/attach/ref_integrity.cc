#include "src/attach/ref_integrity.h"

#include "src/core/database.h"
#include "src/sm/btree_sm.h"
#include "src/util/coding.h"

namespace dmx {
namespace {

struct RiInstance {
  uint32_t no = 0;
  bool is_parent = false;
  bool cascade = false;  // parent role: cascade vs restrict
  RelationId other = kInvalidRelationId;
  std::vector<int> fields;        // on this relation
  std::vector<int> other_fields;  // on the other relation
};

struct RiTypeDesc {
  uint32_t next_no = 1;
  std::vector<RiInstance> instances;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, next_no);
    PutVarint32(dst, static_cast<uint32_t>(instances.size()));
    for (const RiInstance& inst : instances) {
      PutVarint32(dst, inst.no);
      dst->push_back(inst.is_parent ? 1 : 0);
      dst->push_back(inst.cascade ? 1 : 0);
      PutFixed32(dst, inst.other);
      PutVarint32(dst, static_cast<uint32_t>(inst.fields.size()));
      for (int f : inst.fields) PutVarint32(dst, static_cast<uint32_t>(f));
      PutVarint32(dst, static_cast<uint32_t>(inst.other_fields.size()));
      for (int f : inst.other_fields) {
        PutVarint32(dst, static_cast<uint32_t>(f));
      }
    }
  }

  static Status DecodeFrom(Slice in, RiTypeDesc* out) {
    out->instances.clear();
    if (in.empty()) {
      out->next_no = 1;
      return Status::OK();
    }
    uint32_t next, count;
    if (!GetVarint32(&in, &next) || !GetVarint32(&in, &count)) {
      return Status::Corruption("refint descriptor");
    }
    out->next_no = next;
    for (uint32_t i = 0; i < count; ++i) {
      RiInstance inst;
      uint32_t no, other, n;
      if (!GetVarint32(&in, &no) || in.size() < 2) {
        return Status::Corruption("refint instance");
      }
      inst.no = no;
      inst.is_parent = in[0] != 0;
      inst.cascade = in[1] != 0;
      in.remove_prefix(2);
      if (!GetFixed32(&in, &other) || !GetVarint32(&in, &n)) {
        return Status::Corruption("refint other");
      }
      inst.other = other;
      for (uint32_t f = 0; f < n; ++f) {
        uint32_t idx;
        if (!GetVarint32(&in, &idx)) return Status::Corruption("refint field");
        inst.fields.push_back(static_cast<int>(idx));
      }
      if (!GetVarint32(&in, &n)) return Status::Corruption("refint ofields");
      for (uint32_t f = 0; f < n; ++f) {
        uint32_t idx;
        if (!GetVarint32(&in, &idx)) return Status::Corruption("refint field");
        inst.other_fields.push_back(static_cast<int>(idx));
      }
      out->instances.push_back(std::move(inst));
    }
    return Status::OK();
  }
};

struct RiState : public ExtState {
  RiTypeDesc desc;
};

RiState* StateOf(AtContext& ctx) { return static_cast<RiState*>(ctx.state); }

Status RiOpen(AtContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<RiState>();
  DMX_RETURN_IF_ERROR(RiTypeDesc::DecodeFrom(ctx.at_desc, &st->desc));
  *state = std::move(st);
  return Status::OK();
}

// Extract the key values of `fields`; false if any is NULL.
bool KeyValues(const RecordView& view, const std::vector<int>& fields,
               std::vector<Value>* out) {
  out->clear();
  for (int f : fields) {
    if (view.IsNull(static_cast<size_t>(f))) return false;
    out->push_back(view.GetValue(static_cast<size_t>(f)));
  }
  return true;
}

// Equality predicate "other_fields == values" for probing the other side.
ExprPtr MatchPredicate(const std::vector<int>& fields,
                       const std::vector<Value>& values) {
  std::vector<ExprPtr> conjuncts;
  for (size_t i = 0; i < fields.size(); ++i) {
    conjuncts.push_back(Expr::Cmp(ExprOp::kEq, fields[i], values[i]));
  }
  return JoinConjuncts(conjuncts);
}

// Find record keys on the other relation matching `values`.
Status FindMatches(AtContext& ctx, const RiInstance& inst,
                   const std::vector<Value>& values, bool first_only,
                   std::vector<std::string>* keys) {
  keys->clear();
  const RelationDescriptor* other = ctx.db->catalog()->Find(inst.other);
  if (other == nullptr) {
    return Status::Corruption("refint references dropped relation");
  }
  ScanSpec spec;
  spec.filter = MatchPredicate(inst.other_fields, values);
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, other, AccessPathId::StorageMethod(), spec, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    keys->push_back(item.record_key);
    if (first_only) break;
  }
  return Status::OK();
}

Status RiCreateInstance(AtContext& ctx, const AttrList& attrs,
                        std::string* new_desc, uint32_t* instance_no) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed(
      {"role", "other", "fields", "other_fields", "action"}));
  RiInstance inst;
  const std::string role = attrs.Get("role");
  if (role == "parent") {
    inst.is_parent = true;
  } else if (role != "child") {
    return Status::InvalidArgument("refint requires role=parent|child");
  }
  const std::string action = attrs.Get("action");
  if (inst.is_parent) {
    if (action == "cascade") {
      inst.cascade = true;
    } else if (!action.empty() && action != "restrict") {
      return Status::InvalidArgument("refint action=cascade|restrict");
    }
  }
  const RelationDescriptor* other;
  DMX_RETURN_IF_ERROR(ctx.db->FindRelation(attrs.Get("other"), &other));
  inst.other = other->id;
  DMX_RETURN_IF_ERROR(
      ParseFieldList(ctx.desc->schema, attrs.Get("fields"), &inst.fields));
  DMX_RETURN_IF_ERROR(ParseFieldList(other->schema,
                                     attrs.Get("other_fields"),
                                     &inst.other_fields));
  if (inst.fields.size() != inst.other_fields.size()) {
    return Status::InvalidArgument("refint field lists differ in length");
  }

  RiTypeDesc desc;
  DMX_RETURN_IF_ERROR(RiTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  inst.no = desc.next_no++;
  *instance_no = inst.no;
  desc.instances.push_back(std::move(inst));
  new_desc->clear();
  desc.EncodeTo(new_desc);
  return Status::OK();
}

Status RiDropInstance(AtContext& ctx, uint32_t instance_no,
                      std::string* new_desc) {
  RiTypeDesc desc;
  DMX_RETURN_IF_ERROR(RiTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  bool found = false;
  std::vector<RiInstance> kept;
  for (RiInstance& inst : desc.instances) {
    if (inst.no == instance_no) {
      found = true;
    } else {
      kept.push_back(std::move(inst));
    }
  }
  if (!found) {
    return Status::NotFound("refint instance " + std::to_string(instance_no));
  }
  desc.instances = std::move(kept);
  new_desc->clear();
  if (!desc.instances.empty()) desc.EncodeTo(new_desc);
  return Status::OK();
}

// Child-side check: the parent must contain a matching record.
Status RiCheckParentExists(AtContext& ctx, const RiInstance& inst,
                           const RecordView& view) {
  std::vector<Value> values;
  if (!KeyValues(view, inst.fields, &values)) return Status::OK();  // NULL fk
  std::vector<std::string> matches;
  DMX_RETURN_IF_ERROR(FindMatches(ctx, inst, values, true, &matches));
  if (matches.empty()) {
    return Status::Constraint("no parent record for foreign key");
  }
  return Status::OK();
}

Status RiOnInsert(AtContext& ctx, const Slice&, const Slice& new_record) {
  RiState* st = StateOf(ctx);
  RecordView view(new_record, &ctx.desc->schema);
  for (const RiInstance& inst : st->desc.instances) {
    if (inst.is_parent) continue;
    DMX_RETURN_IF_ERROR(RiCheckParentExists(ctx, inst, view));
  }
  return Status::OK();
}

Status RiOnUpdate(AtContext& ctx, const Slice&, const Slice&,
                  const Slice& old_record, const Slice& new_record) {
  RiState* st = StateOf(ctx);
  RecordView old_view(old_record, &ctx.desc->schema);
  RecordView new_view(new_record, &ctx.desc->schema);
  for (const RiInstance& inst : st->desc.instances) {
    if (!inst.is_parent) {
      DMX_RETURN_IF_ERROR(RiCheckParentExists(ctx, inst, new_view));
      continue;
    }
    // Parent update: changing referenced fields is restricted while
    // children point at them.
    std::vector<Value> old_vals, new_vals;
    bool had = KeyValues(old_view, inst.fields, &old_vals);
    KeyValues(new_view, inst.fields, &new_vals);
    bool changed = old_vals.size() != new_vals.size();
    for (size_t i = 0; !changed && i < old_vals.size(); ++i) {
      changed = old_vals[i].Compare(new_vals[i]) != 0;
    }
    if (had && changed) {
      std::vector<std::string> children;
      DMX_RETURN_IF_ERROR(FindMatches(ctx, inst, old_vals, true, &children));
      if (!children.empty()) {
        return Status::Constraint(
            "cannot change referenced fields: child records exist");
      }
    }
  }
  return Status::OK();
}

Status RiOnDelete(AtContext& ctx, const Slice&, const Slice& old_record) {
  RiState* st = StateOf(ctx);
  RecordView view(old_record, &ctx.desc->schema);
  for (const RiInstance& inst : st->desc.instances) {
    if (!inst.is_parent) continue;
    std::vector<Value> values;
    if (!KeyValues(view, inst.fields, &values)) continue;
    std::vector<std::string> children;
    DMX_RETURN_IF_ERROR(
        FindMatches(ctx, inst, values, /*first_only=*/!inst.cascade,
                    &children));
    if (children.empty()) continue;
    if (!inst.cascade) {
      return Status::Constraint("child records exist (restrict)");
    }
    // Cascade: delete matching children through the full two-step
    // machinery, so their own attachments fire — "modifications may
    // cascade in the database".
    const RelationDescriptor* child_rel = ctx.db->catalog()->Find(inst.other);
    if (child_rel == nullptr) {
      return Status::Corruption("refint child relation vanished");
    }
    for (const std::string& key : children) {
      Status s = ctx.db->DeleteRecord(ctx.txn, child_rel, Slice(key));
      // A concurrentless same-transaction cascade may find the record
      // already deleted by a sibling cascade path.
      if (!s.ok() && !s.IsNotFound()) return s;
    }
  }
  return Status::OK();
}

uint32_t RiInstanceCount(const Slice& at_desc) {
  RiTypeDesc desc;
  if (!RiTypeDesc::DecodeFrom(at_desc, &desc).ok()) return 0;
  return static_cast<uint32_t>(desc.instances.size());
}

Status RiListInstances(const Slice& at_desc, std::vector<uint32_t>* out) {
  RiTypeDesc desc;
  DMX_RETURN_IF_ERROR(RiTypeDesc::DecodeFrom(at_desc, &desc));
  out->clear();
  for (const RiInstance& inst : desc.instances) out->push_back(inst.no);
  return Status::OK();
}

// Child-side verify: every non-NULL foreign key must have a parent row.
// Parent-side instances are passive (the child side holds the invariant),
// so they verify trivially.
Status RiVerify(AtContext& ctx, uint32_t instance_no, VerifyReport* report) {
  RiState* st = StateOf(ctx);
  const RiInstance* inst = nullptr;
  for (const RiInstance& i : st->desc.instances) {
    if (i.no == instance_no) inst = &i;
  }
  if (inst == nullptr) {
    return Status::NotFound("refint instance " + std::to_string(instance_no));
  }
  if (inst->is_parent) return Status::OK();
  const std::string tag = "refint#" + std::to_string(instance_no) + ": ";

  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, ctx.desc, AccessPathId::StorageMethod(), ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    std::vector<Value> values;
    if (!KeyValues(item.view, inst->fields, &values)) continue;  // NULL fk
    std::vector<std::string> matches;
    DMX_RETURN_IF_ERROR(FindMatches(ctx, *inst, values, true, &matches));
    if (matches.empty()) {
      report->Problem(tag + "orphaned foreign key: no parent record");
    }
    ++report->items;
  }
  return Status::OK();
}

// Child-side refint guards integrity: while quarantined its parent-exists
// veto is skipped, so writes are refused. Parent-side instances enforce
// nothing on this relation's own writes that the child side can't recheck,
// but dangling children could still be created through them — guard both.
bool RiGuardsIntegrity(const Slice& at_desc, uint32_t instance_no) {
  RiTypeDesc desc;
  if (!RiTypeDesc::DecodeFrom(at_desc, &desc).ok()) return false;
  for (const RiInstance& inst : desc.instances) {
    if (inst.no == instance_no) return true;
  }
  return false;
}

}  // namespace

const AtOps& RefIntegrityOps() {
  static const AtOps ops = [] {
    AtOps o;
    o.name = "refint";
    o.create_instance = RiCreateInstance;
    o.drop_instance = RiDropInstance;
    o.open = RiOpen;
    o.on_insert = RiOnInsert;
    o.on_update = RiOnUpdate;
    o.on_delete = RiOnDelete;
    o.instance_count = RiInstanceCount;
    o.list_instances = RiListInstances;
    o.verify = RiVerify;
    o.guards_integrity = RiGuardsIntegrity;
    return o;
  }();
  return ops;
}

}  // namespace dmx
