#include "src/attach/stats.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/core/database.h"
#include "src/util/coding.h"

namespace dmx {
namespace {

struct StatsInstance {
  uint32_t no = 0;
  int field = -1;
};

struct StatsTypeDesc {
  uint32_t next_no = 1;
  std::vector<StatsInstance> instances;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, next_no);
    PutVarint32(dst, static_cast<uint32_t>(instances.size()));
    for (const StatsInstance& inst : instances) {
      PutVarint32(dst, inst.no);
      PutVarint32(dst, static_cast<uint32_t>(inst.field));
    }
  }

  static Status DecodeFrom(Slice in, StatsTypeDesc* out) {
    out->instances.clear();
    if (in.empty()) {
      out->next_no = 1;
      return Status::OK();
    }
    uint32_t next, count;
    if (!GetVarint32(&in, &next) || !GetVarint32(&in, &count)) {
      return Status::Corruption("stats descriptor");
    }
    out->next_no = next;
    for (uint32_t i = 0; i < count; ++i) {
      StatsInstance inst;
      uint32_t no, field;
      if (!GetVarint32(&in, &no) || !GetVarint32(&in, &field)) {
        return Status::Corruption("stats instance");
      }
      inst.no = no;
      inst.field = static_cast<int>(field);
      out->instances.push_back(inst);
    }
    return Status::OK();
  }

  const StatsInstance* Find(uint32_t no) const {
    for (const StatsInstance& inst : instances) {
      if (inst.no == no) return &inst;
    }
    return nullptr;
  }
};

struct StatsState : public ExtState {
  StatsTypeDesc desc;
  std::map<uint32_t, StatsSnapshot> values;
};

StatsState* StateOf(AtContext& ctx) {
  return static_cast<StatsState*>(ctx.state);
}

// Delta payload: 'A'(apply) varint instance | i64 dcount | double dsum.
Status StLog(AtContext& ctx, uint32_t instance, int64_t dcount, double dsum) {
  std::string payload(1, 'A');
  PutVarint32(&payload, instance);
  PutFixed64(&payload, static_cast<uint64_t>(dcount));
  PutDouble(&payload, dsum);
  LogRecord rec = MakeUpdateRecord(
      ctx.txn != nullptr ? ctx.txn->id() : kInvalidTxnId,
      ExtKind::kAttachment, ctx.at_id, ctx.desc->id, std::move(payload));
  rec.prev_lsn = ctx.txn != nullptr ? ctx.txn->last_lsn() : kInvalidLsn;
  DMX_RETURN_IF_ERROR(ctx.db->log()->Append(&rec));
  if (ctx.txn != nullptr) ctx.txn->set_last_lsn(rec.lsn);
  return Status::OK();
}

void ApplyDelta(StatsState* st, uint32_t instance, int64_t dcount,
                double dsum) {
  StatsSnapshot& snap = st->values[instance];
  snap.count = static_cast<uint64_t>(static_cast<int64_t>(snap.count) +
                                     dcount);
  snap.sum += dsum;
}

double FieldValue(const RecordView& view, int field) {
  if (view.IsNull(static_cast<size_t>(field))) return 0;
  return view.GetValue(static_cast<size_t>(field)).AsDouble();
}

Status StRebuild(AtContext& ctx);

Status StOpen(AtContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<StatsState>();
  DMX_RETURN_IF_ERROR(StatsTypeDesc::DecodeFrom(ctx.at_desc, &st->desc));
  AtContext prime = ctx;
  prime.state = st.get();
  DMX_RETURN_IF_ERROR(StRebuild(prime));
  *state = std::move(st);
  return Status::OK();
}

Status StRebuild(AtContext& ctx) {
  StatsState* st = StateOf(ctx);
  st->values.clear();
  if (st->desc.instances.empty()) return Status::OK();
  const SmOps& sm = ctx.db->registry()->sm_ops(ctx.desc->sm_id);
  SmContext sctx;
  DMX_RETURN_IF_ERROR(ctx.db->MakeSmContext(nullptr, ctx.desc, &sctx));
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(sm.open_scan(sctx, ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    for (const StatsInstance& inst : st->desc.instances) {
      ApplyDelta(st, inst.no, 1, FieldValue(item.view, inst.field));
    }
  }
  return Status::OK();
}

Status StCreateInstance(AtContext& ctx, const AttrList& attrs,
                        std::string* new_desc, uint32_t* instance_no) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({"field"}));
  if (!attrs.Has("field")) {
    return Status::InvalidArgument("stats requires field=<column>");
  }
  StatsInstance inst;
  inst.field = ctx.desc->schema.FindColumn(attrs.Get("field"));
  if (inst.field < 0) {
    return Status::InvalidArgument("no column '" + attrs.Get("field") + "'");
  }
  TypeId t = ctx.desc->schema.column(static_cast<size_t>(inst.field)).type;
  if (t != TypeId::kInt64 && t != TypeId::kDouble) {
    return Status::InvalidArgument("stats field must be numeric");
  }
  StatsTypeDesc desc;
  DMX_RETURN_IF_ERROR(StatsTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  inst.no = desc.next_no++;
  *instance_no = inst.no;
  desc.instances.push_back(inst);
  new_desc->clear();
  desc.EncodeTo(new_desc);
  return Status::OK();
}

Status StDropInstance(AtContext& ctx, uint32_t instance_no,
                      std::string* new_desc) {
  StatsTypeDesc desc;
  DMX_RETURN_IF_ERROR(StatsTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  bool found = false;
  std::vector<StatsInstance> kept;
  for (const StatsInstance& inst : desc.instances) {
    if (inst.no == instance_no) {
      found = true;
    } else {
      kept.push_back(inst);
    }
  }
  if (!found) {
    return Status::NotFound("stats instance " + std::to_string(instance_no));
  }
  desc.instances = std::move(kept);
  new_desc->clear();
  if (!desc.instances.empty()) desc.EncodeTo(new_desc);
  return Status::OK();
}

Status StOnInsert(AtContext& ctx, const Slice&, const Slice& new_record) {
  StatsState* st = StateOf(ctx);
  RecordView view(new_record, &ctx.desc->schema);
  for (const StatsInstance& inst : st->desc.instances) {
    double v = FieldValue(view, inst.field);
    ApplyDelta(st, inst.no, 1, v);
    DMX_RETURN_IF_ERROR(StLog(ctx, inst.no, 1, v));
  }
  return Status::OK();
}

Status StOnUpdate(AtContext& ctx, const Slice&, const Slice&,
                  const Slice& old_record, const Slice& new_record) {
  StatsState* st = StateOf(ctx);
  RecordView old_view(old_record, &ctx.desc->schema);
  RecordView new_view(new_record, &ctx.desc->schema);
  for (const StatsInstance& inst : st->desc.instances) {
    double dv = FieldValue(new_view, inst.field) -
                FieldValue(old_view, inst.field);
    if (dv == 0) continue;
    ApplyDelta(st, inst.no, 0, dv);
    DMX_RETURN_IF_ERROR(StLog(ctx, inst.no, 0, dv));
  }
  return Status::OK();
}

Status StOnDelete(AtContext& ctx, const Slice&, const Slice& old_record) {
  StatsState* st = StateOf(ctx);
  RecordView view(old_record, &ctx.desc->schema);
  for (const StatsInstance& inst : st->desc.instances) {
    double v = FieldValue(view, inst.field);
    ApplyDelta(st, inst.no, -1, -v);
    DMX_RETURN_IF_ERROR(StLog(ctx, inst.no, -1, -v));
  }
  return Status::OK();
}

Status StLookup(AtContext& ctx, uint32_t instance_no, const Slice& key,
                std::vector<std::string>* record_keys) {
  StatsState* st = StateOf(ctx);
  record_keys->clear();
  if (st->desc.Find(instance_no) == nullptr) {
    return Status::NotFound("stats instance " + std::to_string(instance_no));
  }
  const StatsSnapshot& snap = st->values[instance_no];
  char buf[64];
  if (key == Slice("count")) {
    snprintf(buf, sizeof(buf), "%llu",
             static_cast<unsigned long long>(snap.count));
  } else if (key == Slice("sum")) {
    snprintf(buf, sizeof(buf), "%.17g", snap.sum);
  } else if (key == Slice("avg")) {
    snprintf(buf, sizeof(buf), "%.17g", snap.avg());
  } else {
    return Status::InvalidArgument("stats lookup key: count|sum|avg");
  }
  record_keys->push_back(buf);
  return Status::OK();
}

Status StApply(AtContext& ctx, const LogRecord& rec, bool undo) {
  StatsState* st = StateOf(ctx);
  Slice in(rec.payload);
  if (in.empty() || in[0] != 'A') return Status::Corruption("stats payload");
  in.remove_prefix(1);
  uint32_t instance;
  uint64_t dcount_bits;
  double dsum;
  if (!GetVarint32(&in, &instance) || !GetFixed64(&in, &dcount_bits) ||
      !GetDouble(&in, &dsum)) {
    return Status::Corruption("stats payload body");
  }
  int64_t dcount = static_cast<int64_t>(dcount_bits);
  if (undo) {
    dcount = -dcount;
    dsum = -dsum;
  }
  ApplyDelta(st, instance, dcount, dsum);
  return Status::OK();
}

Status StUndo(AtContext& ctx, const LogRecord& rec, Lsn) {
  return StApply(ctx, rec, /*undo=*/true);
}

Status StRedo(AtContext&, const LogRecord&, Lsn) { return Status::OK(); }

uint32_t StInstanceCount(const Slice& at_desc) {
  StatsTypeDesc desc;
  if (!StatsTypeDesc::DecodeFrom(at_desc, &desc).ok()) return 0;
  return static_cast<uint32_t>(desc.instances.size());
}

Status StListInstances(const Slice& at_desc, std::vector<uint32_t>* out) {
  StatsTypeDesc desc;
  DMX_RETURN_IF_ERROR(StatsTypeDesc::DecodeFrom(at_desc, &desc));
  out->clear();
  for (const StatsInstance& inst : desc.instances) out->push_back(inst.no);
  return Status::OK();
}

// Verify recomputes count/sum from the base relation and compares against
// the live snapshot. Sums tolerate float rounding from delta maintenance.
Status StVerify(AtContext& ctx, uint32_t instance_no, VerifyReport* report) {
  StatsState* st = StateOf(ctx);
  const StatsInstance* inst = st->desc.Find(instance_no);
  if (inst == nullptr) {
    return Status::NotFound("stats instance " + std::to_string(instance_no));
  }
  const std::string tag = "stats#" + std::to_string(instance_no) + ": ";

  uint64_t count = 0;
  double sum = 0;
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, ctx.desc, AccessPathId::StorageMethod(), ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    ++count;
    sum += FieldValue(item.view, inst->field);
    ++report->items;
  }

  const StatsSnapshot& snap = st->values[instance_no];
  if (snap.count != count) {
    report->Problem(tag + "row count drifted: stats say " +
                    std::to_string(snap.count) + ", base relation has " +
                    std::to_string(count));
  }
  double tol = 1e-9 * std::max({std::fabs(sum), std::fabs(snap.sum), 1.0});
  if (std::fabs(snap.sum - sum) > tol) {
    report->Problem(tag + "sum drifted beyond rounding tolerance");
  }
  return Status::OK();
}

}  // namespace

Status ReadStats(Database* db, Transaction* txn, const std::string& rel,
                 uint32_t instance_no, StatsSnapshot* out) {
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(db->FindRelation(rel, &desc));
  int at = db->registry()->FindAttachmentType("stats");
  if (at < 0) return Status::Internal("stats attachment not registered");
  AtContext ctx;
  DMX_RETURN_IF_ERROR(
      db->MakeAtContext(txn, desc, static_cast<AtId>(at), &ctx));
  StatsState* st = StateOf(ctx);
  if (st == nullptr || st->desc.Find(instance_no) == nullptr) {
    return Status::NotFound("stats instance");
  }
  *out = st->values[instance_no];
  return Status::OK();
}

const AtOps& StatsOps() {
  static const AtOps ops = [] {
    AtOps o;
    o.name = "stats";
    o.create_instance = StCreateInstance;
    o.drop_instance = StDropInstance;
    o.open = StOpen;
    o.on_insert = StOnInsert;
    o.on_update = StOnUpdate;
    o.on_delete = StOnDelete;
    o.lookup = StLookup;
    o.undo = StUndo;
    o.redo = StRedo;
    o.rebuild = StRebuild;
    o.instance_count = StInstanceCount;
    o.list_instances = StListInstances;
    o.verify = StVerify;
    return o;
  }();
  return ops;
}

}  // namespace dmx
