// B-tree index attachment: the paper's canonical access path. Maintains
// (index key -> record key) mappings in shared B-tree structures; multiple
// instances per relation; optional uniqueness (vetoing duplicates).
//
// DDL attributes: fields=<col>[,<col>...], unique=0|1.
//
// Type descriptor (field N of the relation descriptor — all instances of
// the type in one field, as the paper requires):
//   varint next_instance_no | varint count |
//   per instance: varint no | fixed32 anchor | u8 unique |
//                 varint nfields | varint field...
//
// Log payloads (ExtKind::kAttachment):
//   'I' varint instance | lps(key) | record_key   — entry added
//   'D' varint instance | lps(key) | record_key   — entry removed

#ifndef DMX_ATTACH_BTREE_INDEX_H_
#define DMX_ATTACH_BTREE_INDEX_H_

#include "src/core/extension.h"

namespace dmx {

const AtOps& BTreeIndexOps();

/// Count of on_update invocations that were skipped entirely because no
/// indexed field changed (the paper: "the B-tree update operation should be
/// able to detect when no indexed fields for a given index are modified").
uint64_t BTreeIndexSkippedUpdates();

}  // namespace dmx

#endif  // DMX_ATTACH_BTREE_INDEX_H_
