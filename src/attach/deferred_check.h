// Deferred-check attachment: integrity constraints evaluated via the
// deferred-action queues at the "before transaction enters the prepared
// state" event — the paper's worked example: "certain integrity constraints
// cannot be evaluated when a single modification occurs but must be
// evaluated after all of the modifications have been made in the
// transaction... the attachment can place an entry on the deferred action
// queue for the 'before transaction enters prepared state' event... If the
// integrity constraint is not satisfied then the transaction can be aborted
// by the attachment."
//
// Each modified record is re-checked against the predicate at commit time,
// against its *final* state (a record deleted later in the transaction is
// exempt). A failed check aborts the whole transaction.
//
// DDL attributes: predicate=<Expr::EncodeTo bytes>, name=<label> (optional).

#ifndef DMX_ATTACH_DEFERRED_CHECK_H_
#define DMX_ATTACH_DEFERRED_CHECK_H_

#include "src/core/extension.h"

namespace dmx {

const AtOps& DeferredCheckOps();

}  // namespace dmx

#endif  // DMX_ATTACH_DEFERRED_CHECK_H_
