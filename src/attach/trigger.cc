#include "src/attach/trigger.h"

#include <map>

#include "src/core/database.h"
#include "src/util/coding.h"

namespace dmx {

namespace {

Mutex g_trigger_mu;
std::map<std::string, TriggerFn>& TriggerRegistry() {
  static auto* registry = new std::map<std::string, TriggerFn>();
  return *registry;
}

TriggerFn FindTrigger(const std::string& name) {
  MutexLock lock(&g_trigger_mu);
  auto it = TriggerRegistry().find(name);
  return it == TriggerRegistry().end() ? nullptr : it->second;
}

struct TriggerInstance {
  uint32_t no = 0;
  std::string call;
  bool on_insert = true, on_update = true, on_delete = true;
};

struct TriggerTypeDesc {
  uint32_t next_no = 1;
  std::vector<TriggerInstance> instances;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, next_no);
    PutVarint32(dst, static_cast<uint32_t>(instances.size()));
    for (const TriggerInstance& inst : instances) {
      PutVarint32(dst, inst.no);
      PutLengthPrefixedSlice(dst, inst.call);
      dst->push_back(static_cast<char>((inst.on_insert ? 1 : 0) |
                                       (inst.on_update ? 2 : 0) |
                                       (inst.on_delete ? 4 : 0)));
    }
  }

  static Status DecodeFrom(Slice in, TriggerTypeDesc* out) {
    out->instances.clear();
    if (in.empty()) {
      out->next_no = 1;
      return Status::OK();
    }
    uint32_t next, count;
    if (!GetVarint32(&in, &next) || !GetVarint32(&in, &count)) {
      return Status::Corruption("trigger descriptor");
    }
    out->next_no = next;
    for (uint32_t i = 0; i < count; ++i) {
      TriggerInstance inst;
      uint32_t no;
      Slice call;
      if (!GetVarint32(&in, &no) || !GetLengthPrefixedSlice(&in, &call) ||
          in.empty()) {
        return Status::Corruption("trigger instance");
      }
      inst.no = no;
      inst.call = call.ToString();
      char mask = in[0];
      in.remove_prefix(1);
      inst.on_insert = mask & 1;
      inst.on_update = mask & 2;
      inst.on_delete = mask & 4;
      out->instances.push_back(std::move(inst));
    }
    return Status::OK();
  }
};

struct TriggerState : public ExtState {
  TriggerTypeDesc desc;
};

Status TrOpen(AtContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<TriggerState>();
  DMX_RETURN_IF_ERROR(TriggerTypeDesc::DecodeFrom(ctx.at_desc, &st->desc));
  *state = std::move(st);
  return Status::OK();
}

Status TrCreateInstance(AtContext& ctx, const AttrList& attrs,
                        std::string* new_desc, uint32_t* instance_no) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({"call", "on"}));
  TriggerInstance inst;
  inst.call = attrs.Get("call");
  if (inst.call.empty()) {
    return Status::InvalidArgument("trigger requires call=<function>");
  }
  if (FindTrigger(inst.call) == nullptr) {
    return Status::InvalidArgument("no trigger function '" + inst.call +
                                   "' registered");
  }
  auto events = attrs.GetAll("on");
  if (!events.empty()) {
    inst.on_insert = inst.on_update = inst.on_delete = false;
    for (const std::string& e : events) {
      if (e == "insert") {
        inst.on_insert = true;
      } else if (e == "update") {
        inst.on_update = true;
      } else if (e == "delete") {
        inst.on_delete = true;
      } else {
        return Status::InvalidArgument("trigger on=insert|update|delete");
      }
    }
  }
  TriggerTypeDesc desc;
  DMX_RETURN_IF_ERROR(TriggerTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  inst.no = desc.next_no++;
  *instance_no = inst.no;
  desc.instances.push_back(std::move(inst));
  new_desc->clear();
  desc.EncodeTo(new_desc);
  return Status::OK();
}

Status TrDropInstance(AtContext& ctx, uint32_t instance_no,
                      std::string* new_desc) {
  TriggerTypeDesc desc;
  DMX_RETURN_IF_ERROR(TriggerTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  bool found = false;
  std::vector<TriggerInstance> kept;
  for (TriggerInstance& inst : desc.instances) {
    if (inst.no == instance_no) {
      found = true;
    } else {
      kept.push_back(std::move(inst));
    }
  }
  if (!found) {
    return Status::NotFound("trigger instance " +
                            std::to_string(instance_no));
  }
  desc.instances = std::move(kept);
  new_desc->clear();
  if (!desc.instances.empty()) desc.EncodeTo(new_desc);
  return Status::OK();
}

Status TrFire(AtContext& ctx, TriggerEvent::Op op, const Slice& old_key,
              const Slice& new_key, const Slice& old_rec,
              const Slice& new_rec) {
  TriggerState* st = static_cast<TriggerState*>(ctx.state);
  TriggerEvent event;
  event.db = ctx.db;
  event.txn = ctx.txn;
  event.relation = ctx.desc;
  event.op = op;
  event.old_key = old_key;
  event.new_key = new_key;
  if (!old_rec.empty()) event.old_record = RecordView(old_rec,
                                                      &ctx.desc->schema);
  if (!new_rec.empty()) event.new_record = RecordView(new_rec,
                                                      &ctx.desc->schema);
  for (const TriggerInstance& inst : st->desc.instances) {
    bool fires = (op == TriggerEvent::Op::kInsert && inst.on_insert) ||
                 (op == TriggerEvent::Op::kUpdate && inst.on_update) ||
                 (op == TriggerEvent::Op::kDelete && inst.on_delete);
    if (!fires) continue;
    TriggerFn fn = FindTrigger(inst.call);
    if (fn == nullptr) {
      return Status::Internal("trigger function '" + inst.call +
                              "' disappeared");
    }
    DMX_RETURN_IF_ERROR(fn(event));  // non-OK vetoes the modification
  }
  return Status::OK();
}

Status TrOnInsert(AtContext& ctx, const Slice& record_key,
                  const Slice& new_record) {
  return TrFire(ctx, TriggerEvent::Op::kInsert, Slice(), record_key, Slice(),
                new_record);
}

Status TrOnUpdate(AtContext& ctx, const Slice& old_key, const Slice& new_key,
                  const Slice& old_record, const Slice& new_record) {
  return TrFire(ctx, TriggerEvent::Op::kUpdate, old_key, new_key, old_record,
                new_record);
}

Status TrOnDelete(AtContext& ctx, const Slice& record_key,
                  const Slice& old_record) {
  return TrFire(ctx, TriggerEvent::Op::kDelete, record_key, Slice(),
                old_record, Slice());
}

uint32_t TrInstanceCount(const Slice& at_desc) {
  TriggerTypeDesc desc;
  if (!TriggerTypeDesc::DecodeFrom(at_desc, &desc).ok()) return 0;
  return static_cast<uint32_t>(desc.instances.size());
}

}  // namespace

void RegisterTriggerFunction(const std::string& name, TriggerFn fn) {
  MutexLock lock(&g_trigger_mu);
  TriggerRegistry()[name] = std::move(fn);
}

const AtOps& TriggerOps() {
  static const AtOps ops = [] {
    AtOps o;
    o.name = "trigger";
    o.create_instance = TrCreateInstance;
    o.drop_instance = TrDropInstance;
    o.open = TrOpen;
    o.on_insert = TrOnInsert;
    o.on_update = TrOnUpdate;
    o.on_delete = TrOnDelete;
    o.instance_count = TrInstanceCount;
    return o;
  }();
  return ops;
}

}  // namespace dmx
