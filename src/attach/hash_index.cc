#include "src/attach/hash_index.h"

#include <unordered_map>

#include "src/core/costing.h"
#include "src/core/database.h"
#include "src/sm/btree_sm.h"
#include "src/sm/key_codec.h"
#include "src/util/coding.h"

namespace dmx {
namespace {

struct HashInstance {
  uint32_t no = 0;
  std::vector<int> fields;
};

struct HashTypeDesc {
  uint32_t next_no = 1;
  std::vector<HashInstance> instances;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, next_no);
    PutVarint32(dst, static_cast<uint32_t>(instances.size()));
    for (const HashInstance& inst : instances) {
      PutVarint32(dst, inst.no);
      PutVarint32(dst, static_cast<uint32_t>(inst.fields.size()));
      for (int f : inst.fields) PutVarint32(dst, static_cast<uint32_t>(f));
    }
  }

  static Status DecodeFrom(Slice in, HashTypeDesc* out) {
    out->instances.clear();
    if (in.empty()) {
      out->next_no = 1;
      return Status::OK();
    }
    uint32_t next, count;
    if (!GetVarint32(&in, &next) || !GetVarint32(&in, &count)) {
      return Status::Corruption("hash descriptor");
    }
    out->next_no = next;
    for (uint32_t i = 0; i < count; ++i) {
      HashInstance inst;
      uint32_t no, nfields;
      if (!GetVarint32(&in, &no) || !GetVarint32(&in, &nfields)) {
        return Status::Corruption("hash instance");
      }
      inst.no = no;
      for (uint32_t f = 0; f < nfields; ++f) {
        uint32_t idx;
        if (!GetVarint32(&in, &idx)) return Status::Corruption("hash field");
        inst.fields.push_back(static_cast<int>(idx));
      }
      out->instances.push_back(std::move(inst));
    }
    return Status::OK();
  }

  const HashInstance* Find(uint32_t no) const {
    for (const HashInstance& inst : instances) {
      if (inst.no == no) return &inst;
    }
    return nullptr;
  }
};

struct HashState : public ExtState {
  HashTypeDesc desc;
  // instance -> (key -> record keys)
  std::unordered_map<uint32_t,
                     std::unordered_multimap<std::string, std::string>>
      tables;
};

HashState* StateOf(AtContext& ctx) {
  return static_cast<HashState*>(ctx.state);
}

Status HashLog(AtContext& ctx, char op, uint32_t instance, const Slice& key,
               const Slice& record_key) {
  std::string payload(1, op);
  PutVarint32(&payload, instance);
  PutLengthPrefixedSlice(&payload, key);
  payload.append(record_key.data(), record_key.size());
  LogRecord rec = MakeUpdateRecord(
      ctx.txn != nullptr ? ctx.txn->id() : kInvalidTxnId,
      ExtKind::kAttachment, ctx.at_id, ctx.desc->id, std::move(payload));
  rec.prev_lsn = ctx.txn != nullptr ? ctx.txn->last_lsn() : kInvalidLsn;
  DMX_RETURN_IF_ERROR(ctx.db->log()->Append(&rec));
  if (ctx.txn != nullptr) ctx.txn->set_last_lsn(rec.lsn);
  return Status::OK();
}

void TableAdd(HashState* st, uint32_t instance, const std::string& key,
              const std::string& record_key) {
  st->tables[instance].emplace(key, record_key);
}

void TableRemove(HashState* st, uint32_t instance, const std::string& key,
                 const std::string& record_key) {
  auto& table = st->tables[instance];
  auto [begin, end] = table.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == record_key) {
      table.erase(it);
      return;
    }
  }
}

Status HashRebuild(AtContext& ctx);

Status HashOpen(AtContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<HashState>();
  DMX_RETURN_IF_ERROR(HashTypeDesc::DecodeFrom(ctx.at_desc, &st->desc));
  AtContext prime = ctx;
  prime.state = st.get();
  DMX_RETURN_IF_ERROR(HashRebuild(prime));
  *state = std::move(st);
  return Status::OK();
}

Status HashRebuild(AtContext& ctx) {
  HashState* st = StateOf(ctx);
  st->tables.clear();
  if (st->desc.instances.empty()) return Status::OK();
  const SmOps& sm = ctx.db->registry()->sm_ops(ctx.desc->sm_id);
  SmContext sctx;
  DMX_RETURN_IF_ERROR(ctx.db->MakeSmContext(nullptr, ctx.desc, &sctx));
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(sm.open_scan(sctx, ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    for (const HashInstance& inst : st->desc.instances) {
      std::string key;
      DMX_RETURN_IF_ERROR(EncodeFieldKey(item.view, inst.fields, &key));
      TableAdd(st, inst.no, key, item.record_key);
    }
  }
  return Status::OK();
}

Status HashCreateInstance(AtContext& ctx, const AttrList& attrs,
                          std::string* new_desc, uint32_t* instance_no) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({"fields"}));
  if (!attrs.Has("fields")) {
    return Status::InvalidArgument("hash_index requires fields=<columns>");
  }
  HashInstance inst;
  DMX_RETURN_IF_ERROR(
      ParseFieldList(ctx.desc->schema, attrs.Get("fields"), &inst.fields));
  HashTypeDesc desc;
  DMX_RETURN_IF_ERROR(HashTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  inst.no = desc.next_no++;
  *instance_no = inst.no;
  desc.instances.push_back(std::move(inst));
  new_desc->clear();
  desc.EncodeTo(new_desc);
  return Status::OK();
}

Status HashDropInstance(AtContext& ctx, uint32_t instance_no,
                        std::string* new_desc) {
  HashTypeDesc desc;
  DMX_RETURN_IF_ERROR(HashTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  bool found = false;
  std::vector<HashInstance> kept;
  for (HashInstance& inst : desc.instances) {
    if (inst.no == instance_no) {
      found = true;
    } else {
      kept.push_back(std::move(inst));
    }
  }
  if (!found) {
    return Status::NotFound("hash instance " + std::to_string(instance_no));
  }
  desc.instances = std::move(kept);
  new_desc->clear();
  if (!desc.instances.empty()) desc.EncodeTo(new_desc);
  return Status::OK();
}

Status HashOnInsert(AtContext& ctx, const Slice& record_key,
                    const Slice& new_record) {
  HashState* st = StateOf(ctx);
  RecordView view(new_record, &ctx.desc->schema);
  for (const HashInstance& inst : st->desc.instances) {
    if (ctx.desc->IsQuarantined(ctx.at_id, inst.no)) continue;
    std::string key;
    DMX_RETURN_IF_ERROR(EncodeFieldKey(view, inst.fields, &key));
    TableAdd(st, inst.no, key, record_key.ToString());
    DMX_RETURN_IF_ERROR(
        HashLog(ctx, 'I', inst.no, Slice(key), record_key));
  }
  return Status::OK();
}

Status HashOnUpdate(AtContext& ctx, const Slice& old_key,
                    const Slice& new_key, const Slice& old_record,
                    const Slice& new_record) {
  HashState* st = StateOf(ctx);
  RecordView old_view(old_record, &ctx.desc->schema);
  RecordView new_view(new_record, &ctx.desc->schema);
  for (const HashInstance& inst : st->desc.instances) {
    if (ctx.desc->IsQuarantined(ctx.at_id, inst.no)) continue;
    std::string okey, nkey;
    DMX_RETURN_IF_ERROR(EncodeFieldKey(old_view, inst.fields, &okey));
    DMX_RETURN_IF_ERROR(EncodeFieldKey(new_view, inst.fields, &nkey));
    if (okey == nkey && old_key == new_key) continue;
    TableRemove(st, inst.no, okey, old_key.ToString());
    DMX_RETURN_IF_ERROR(HashLog(ctx, 'D', inst.no, Slice(okey), old_key));
    TableAdd(st, inst.no, nkey, new_key.ToString());
    DMX_RETURN_IF_ERROR(HashLog(ctx, 'I', inst.no, Slice(nkey), new_key));
  }
  return Status::OK();
}

Status HashOnDelete(AtContext& ctx, const Slice& record_key,
                    const Slice& old_record) {
  HashState* st = StateOf(ctx);
  RecordView view(old_record, &ctx.desc->schema);
  for (const HashInstance& inst : st->desc.instances) {
    if (ctx.desc->IsQuarantined(ctx.at_id, inst.no)) continue;
    std::string key;
    DMX_RETURN_IF_ERROR(EncodeFieldKey(view, inst.fields, &key));
    TableRemove(st, inst.no, key, record_key.ToString());
    DMX_RETURN_IF_ERROR(HashLog(ctx, 'D', inst.no, Slice(key), record_key));
  }
  return Status::OK();
}

Status HashLookup(AtContext& ctx, uint32_t instance_no, const Slice& key,
                  std::vector<std::string>* record_keys) {
  HashState* st = StateOf(ctx);
  record_keys->clear();
  auto tit = st->tables.find(instance_no);
  if (tit == st->tables.end()) {
    if (st->desc.Find(instance_no) == nullptr) {
      return Status::NotFound("hash instance " +
                              std::to_string(instance_no));
    }
    return Status::OK();
  }
  auto [begin, end] = tit->second.equal_range(key.ToString());
  for (auto it = begin; it != end; ++it) record_keys->push_back(it->second);
  return Status::OK();
}

Status HashCost(AtContext& ctx, uint32_t instance_no,
                const std::vector<ExprPtr>& predicates, AccessCost* out) {
  HashState* st = StateOf(ctx);
  const HashInstance* inst = st->desc.Find(instance_no);
  out->usable = false;
  if (inst == nullptr) return Status::OK();
  // Relevant only when equality predicates cover every hashed field.
  std::vector<int> handled;
  size_t covered = 0;
  for (int field : inst->fields) {
    bool found = false;
    for (size_t i = 0; i < predicates.size(); ++i) {
      int f;
      ExprOp op;
      Value constant;
      if (MatchFieldCompare(predicates[i], &f, &op, &constant) &&
          op == ExprOp::kEq && f == field) {
        handled.push_back(static_cast<int>(i));
        found = true;
        break;
      }
    }
    if (found) ++covered;
  }
  if (covered != inst->fields.size()) return Status::OK();
  size_t entries = 0;
  auto tit = st->tables.find(instance_no);
  if (tit != st->tables.end()) entries = tit->second.size();
  out->usable = true;
  out->handled_predicates = std::move(handled);
  out->selectivity = entries == 0 ? 0.0 : 1.0 / static_cast<double>(entries);
  // One O(1) probe, then fetch the expected single match.
  double expected = entries == 0 ? 0.0 : 1.0;
  out->fetch_cost = expected * kRecordFetchCost;
  out->io_cost = out->fetch_cost;
  out->cpu_cost = 1.0 + expected;
  return Status::OK();
}

Status HashApply(AtContext& ctx, const LogRecord& rec, bool undo) {
  HashState* st = StateOf(ctx);
  Slice in(rec.payload);
  if (in.empty()) return Status::Corruption("hash payload");
  char op = in[0];
  in.remove_prefix(1);
  uint32_t instance;
  Slice key;
  if (!GetVarint32(&in, &instance) || !GetLengthPrefixedSlice(&in, &key)) {
    return Status::Corruption("hash payload body");
  }
  bool add = (op == 'I');
  if (undo) add = !add;
  if (add) {
    TableAdd(st, instance, key.ToString(), in.ToString());
  } else {
    TableRemove(st, instance, key.ToString(), in.ToString());
  }
  return Status::OK();
}

Status HashUndo(AtContext& ctx, const LogRecord& rec, Lsn) {
  return HashApply(ctx, rec, /*undo=*/true);
}

// Restart redo is superseded by rebuild().
Status HashRedo(AtContext&, const LogRecord&, Lsn) { return Status::OK(); }

uint32_t HashInstanceCount(const Slice& at_desc) {
  HashTypeDesc desc;
  if (!HashTypeDesc::DecodeFrom(at_desc, &desc).ok()) return 0;
  return static_cast<uint32_t>(desc.instances.size());
}

Status HashListInstances(const Slice& at_desc, std::vector<uint32_t>* out) {
  HashTypeDesc desc;
  DMX_RETURN_IF_ERROR(HashTypeDesc::DecodeFrom(at_desc, &desc));
  out->clear();
  for (const HashInstance& inst : desc.instances) out->push_back(inst.no);
  return Status::OK();
}

// Cross-check the live table for one instance against a fresh enumeration
// of the base relation: every base record's key must map to its record key
// exactly once, and the table must hold nothing else.
Status HashVerify(AtContext& ctx, uint32_t instance_no, VerifyReport* report) {
  HashState* st = StateOf(ctx);
  const HashInstance* inst = st->desc.Find(instance_no);
  if (inst == nullptr) {
    return Status::NotFound("hash instance " + std::to_string(instance_no));
  }
  static const std::unordered_multimap<std::string, std::string> kEmpty;
  auto tit = st->tables.find(instance_no);
  const auto& table = tit != st->tables.end() ? tit->second : kEmpty;
  const std::string tag = "hash_index#" + std::to_string(instance_no) + ": ";

  uint64_t base_records = 0;
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, ctx.desc, AccessPathId::StorageMethod(), ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    ++base_records;
    std::string key;
    Status ks = EncodeFieldKey(item.view, inst->fields, &key);
    if (!ks.ok()) {
      report->Problem(tag + "cannot compose key for a base record: " +
                      ks.ToString());
      continue;
    }
    auto [begin, end] = table.equal_range(key);
    bool found = false;
    for (auto it = begin; it != end; ++it) {
      if (it->second == item.record_key) {
        found = true;
        break;
      }
    }
    if (!found) {
      report->Problem(tag + "base record has no matching hash entry");
    }
  }
  report->items += table.size();
  if (table.size() != base_records) {
    report->Problem(tag + "holds " + std::to_string(table.size()) +
                    " entries but the relation holds " +
                    std::to_string(base_records) + " records");
  }
  return Status::OK();
}

Status HashInstanceFields(const Slice& at_desc, uint32_t instance,
                          std::vector<int>* fields) {
  HashTypeDesc desc;
  DMX_RETURN_IF_ERROR(HashTypeDesc::DecodeFrom(at_desc, &desc));
  const HashInstance* inst = desc.Find(instance);
  if (inst == nullptr) return Status::NotFound("hash instance");
  *fields = inst->fields;
  return Status::OK();
}

}  // namespace

const AtOps& HashIndexOps() {
  static const AtOps ops = [] {
    AtOps o;
    o.name = "hash_index";
    o.create_instance = HashCreateInstance;
    o.drop_instance = HashDropInstance;
    o.open = HashOpen;
    o.on_insert = HashOnInsert;
    o.on_update = HashOnUpdate;
    o.on_delete = HashOnDelete;
    o.lookup = HashLookup;
    o.cost = HashCost;
    o.undo = HashUndo;
    o.redo = HashRedo;
    o.rebuild = HashRebuild;
    o.instance_count = HashInstanceCount;
    o.list_instances = HashListInstances;
    o.instance_fields = HashInstanceFields;
    o.verify = HashVerify;
    return o;
  }();
  return ops;
}

}  // namespace dmx
