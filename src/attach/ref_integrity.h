// Referential-integrity attachment.
//
// The paper's worked example of attached procedures that cascade: "the
// referential integrity attachment to a 'parent' relation would perform
// record delete operations on the 'child' relation when a 'parent' record
// is deleted. If the 'child' relation also has a referential integrity
// attachment, it would perform record delete operations on its 'child'
// relation. Thus, cascaded deletes can be supported. On insert, the same
// attachment type on the 'child' relation would test the 'parent' relation
// for a record with matching referential integrity fields."
//
// One attachment type, instances in two roles:
//   role=child:  other=<parent rel>, fields=<fk cols>, other_fields=<pk
//                cols> — inserts/updates must find a matching parent (NULL
//                foreign keys are exempt).
//   role=parent: other=<child rel>, fields=<pk cols>, other_fields=<fk
//                cols>, action=cascade|restrict — deletes cascade to (or
//                are vetoed by) matching children; updates that change the
//                referenced fields are restricted.

#ifndef DMX_ATTACH_REF_INTEGRITY_H_
#define DMX_ATTACH_REF_INTEGRITY_H_

#include "src/core/extension.h"

namespace dmx {

const AtOps& RefIntegrityOps();

}  // namespace dmx

#endif  // DMX_ATTACH_REF_INTEGRITY_H_
