// Unique-constraint attachment: vetoes modifications that would duplicate
// the designated field combination. An attachment *with associated storage*
// that is not an access path (the paper: attachments "may have associated
// storage ... used to maintain access structures, and even to maintain
// statistics"): it keeps an in-memory key-count table, rebuilt from the
// base relation after restart, with logical undo logging for rollback.
//
// Rows with a NULL in any constrained field are exempt (SQL semantics).
//
// DDL attributes: fields=<col>[,<col>...], name=<label> (optional).

#ifndef DMX_ATTACH_UNIQUE_CONSTRAINT_H_
#define DMX_ATTACH_UNIQUE_CONSTRAINT_H_

#include "src/core/extension.h"

namespace dmx {

const AtOps& UniqueConstraintOps();

}  // namespace dmx

#endif  // DMX_ATTACH_UNIQUE_CONSTRAINT_H_
