// Hash-index attachment: the paper's "hash tables" attachment example.
// In-memory equality access path: key -> record keys, O(1) probes, no
// ordered scans. Rebuilt from the base relation after restart (an
// extension choosing rebuild over paged redo); logical undo logging covers
// transaction rollback.
//
// DDL attributes: fields=<col>[,<col>...].

#ifndef DMX_ATTACH_HASH_INDEX_H_
#define DMX_ATTACH_HASH_INDEX_H_

#include "src/core/extension.h"

namespace dmx {

const AtOps& HashIndexOps();

}  // namespace dmx

#endif  // DMX_ATTACH_HASH_INDEX_H_
