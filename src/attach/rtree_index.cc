#include "src/attach/rtree_index.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "src/core/costing.h"
#include "src/core/database.h"
#include "src/sm/btree_sm.h"
#include "src/util/coding.h"

namespace dmx {
namespace {

// -- in-memory Guttman R-tree -------------------------------------------------

struct Rect {
  double xmin = 0, ymin = 0, xmax = 0, ymax = 0;

  bool Overlaps(const Rect& o) const {
    return xmin <= o.xmax && o.xmin <= xmax && ymin <= o.ymax &&
           o.ymin <= ymax;
  }
  bool Encloses(const Rect& o) const {
    return xmin <= o.xmin && ymin <= o.ymin && xmax >= o.xmax &&
           ymax >= o.ymax;
  }
  double Area() const { return (xmax - xmin) * (ymax - ymin); }

  static Rect Join(const Rect& a, const Rect& b) {
    return {std::min(a.xmin, b.xmin), std::min(a.ymin, b.ymin),
            std::max(a.xmax, b.xmax), std::max(a.ymax, b.ymax)};
  }
  double Enlargement(const Rect& o) const {
    return Join(*this, o).Area() - Area();
  }
  bool operator==(const Rect& o) const {
    return xmin == o.xmin && ymin == o.ymin && xmax == o.xmax &&
           ymax == o.ymax;
  }
};

constexpr size_t kMaxEntries = 16;

struct RNode;

struct REntry {
  Rect rect;
  std::unique_ptr<RNode> child;  // internal
  std::string key;               // leaf: record key
};

struct RNode {
  bool leaf = true;
  std::vector<REntry> entries;

  Rect Mbr() const {
    Rect r = entries.empty() ? Rect{} : entries[0].rect;
    for (size_t i = 1; i < entries.size(); ++i) {
      r = Rect::Join(r, entries[i].rect);
    }
    return r;
  }
};

// Quadratic split [GUTTMAN 84, §3.5.2].
void QuadraticSplit(std::vector<REntry> entries, RNode* left, RNode* right) {
  // Pick the pair wasting the most area as seeds.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      double waste = Rect::Join(entries[i].rect, entries[j].rect).Area() -
                     entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  left->entries.clear();
  right->entries.clear();
  left->entries.push_back(std::move(entries[seed_a]));
  right->entries.push_back(std::move(entries[seed_b]));
  Rect lrect = left->entries[0].rect, rrect = right->entries[0].rect;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == seed_a || i == seed_b) continue;
    double dl = lrect.Enlargement(entries[i].rect);
    double dr = rrect.Enlargement(entries[i].rect);
    if (dl < dr || (dl == dr && left->entries.size() <=
                                    right->entries.size())) {
      lrect = Rect::Join(lrect, entries[i].rect);
      left->entries.push_back(std::move(entries[i]));
    } else {
      rrect = Rect::Join(rrect, entries[i].rect);
      right->entries.push_back(std::move(entries[i]));
    }
  }
}

class RTree {
 public:
  RTree() : root_(std::make_unique<RNode>()) {}

  void Insert(const Rect& rect, const std::string& key) {
    std::unique_ptr<RNode> split = InsertRec(root_.get(), rect, key);
    if (split != nullptr) {
      auto new_root = std::make_unique<RNode>();
      new_root->leaf = false;
      REntry a, b;
      a.rect = root_->Mbr();
      a.child = std::move(root_);
      b.rect = split->Mbr();
      b.child = std::move(split);
      new_root->entries.push_back(std::move(a));
      new_root->entries.push_back(std::move(b));
      root_ = std::move(new_root);
    }
    ++size_;
  }

  bool Remove(const Rect& rect, const std::string& key) {
    if (RemoveRec(root_.get(), rect, key)) {
      --size_;
      return true;
    }
    return false;
  }

  // op: 'O' record overlaps query, 'E' record encloses query,
  //     'W' record within query.
  void Search(char op, const Rect& query,
              std::vector<std::string>* keys) const {
    SearchRec(root_.get(), op, query, keys);
  }

  size_t size() const { return size_; }
  size_t NodeCount() const { return CountNodes(root_.get()); }

 private:
  std::unique_ptr<RNode> InsertRec(RNode* node, const Rect& rect,
                                   const std::string& key) {
    if (node->leaf) {
      REntry e;
      e.rect = rect;
      e.key = key;
      node->entries.push_back(std::move(e));
    } else {
      // Choose the child needing least enlargement.
      size_t best = 0;
      double best_enl = node->entries[0].rect.Enlargement(rect);
      for (size_t i = 1; i < node->entries.size(); ++i) {
        double enl = node->entries[i].rect.Enlargement(rect);
        if (enl < best_enl ||
            (enl == best_enl &&
             node->entries[i].rect.Area() < node->entries[best].rect.Area())) {
          best = i;
          best_enl = enl;
        }
      }
      std::unique_ptr<RNode> split =
          InsertRec(node->entries[best].child.get(), rect, key);
      node->entries[best].rect = node->entries[best].child->Mbr();
      if (split != nullptr) {
        REntry e;
        e.rect = split->Mbr();
        e.child = std::move(split);
        node->entries.push_back(std::move(e));
      }
    }
    if (node->entries.size() > kMaxEntries) {
      auto right = std::make_unique<RNode>();
      right->leaf = node->leaf;
      RNode left;
      left.leaf = node->leaf;
      QuadraticSplit(std::move(node->entries), &left, right.get());
      node->entries = std::move(left.entries);
      return right;
    }
    return nullptr;
  }

  bool RemoveRec(RNode* node, const Rect& rect, const std::string& key) {
    if (node->leaf) {
      for (size_t i = 0; i < node->entries.size(); ++i) {
        if (node->entries[i].key == key && node->entries[i].rect == rect) {
          node->entries.erase(node->entries.begin() + static_cast<long>(i));
          return true;
        }
      }
      return false;
    }
    for (REntry& e : node->entries) {
      if (!e.rect.Encloses(rect)) continue;
      if (RemoveRec(e.child.get(), rect, key)) {
        e.rect = e.child->Mbr();
        return true;
      }
    }
    return false;
  }

  void SearchRec(const RNode* node, char op, const Rect& query,
                 std::vector<std::string>* keys) const {
    for (const REntry& e : node->entries) {
      if (node->leaf) {
        bool match = false;
        switch (op) {
          case 'O': match = e.rect.Overlaps(query); break;
          case 'E': match = e.rect.Encloses(query); break;
          case 'W': match = query.Encloses(e.rect); break;
          default: break;
        }
        if (match) keys->push_back(e.key);
        continue;
      }
      // Pruning: a descendant can only satisfy the predicate if the MBR
      // passes the corresponding necessary condition.
      bool descend = false;
      switch (op) {
        case 'O':
        case 'W': descend = e.rect.Overlaps(query); break;
        case 'E': descend = e.rect.Encloses(query); break;
        default: break;
      }
      if (descend) SearchRec(e.child.get(), op, query, keys);
    }
  }

  size_t CountNodes(const RNode* node) const {
    size_t n = 1;
    if (!node->leaf) {
      for (const REntry& e : node->entries) n += CountNodes(e.child.get());
    }
    return n;
  }

  std::unique_ptr<RNode> root_;
  size_t size_ = 0;
};

// -- attachment plumbing --------------------------------------------------------

struct RtInstance {
  uint32_t no = 0;
  int fields[4] = {-1, -1, -1, -1};
};

struct RtTypeDesc {
  uint32_t next_no = 1;
  std::vector<RtInstance> instances;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, next_no);
    PutVarint32(dst, static_cast<uint32_t>(instances.size()));
    for (const RtInstance& inst : instances) {
      PutVarint32(dst, inst.no);
      for (int f : inst.fields) PutVarint32(dst, static_cast<uint32_t>(f));
    }
  }

  static Status DecodeFrom(Slice in, RtTypeDesc* out) {
    out->instances.clear();
    if (in.empty()) {
      out->next_no = 1;
      return Status::OK();
    }
    uint32_t next, count;
    if (!GetVarint32(&in, &next) || !GetVarint32(&in, &count)) {
      return Status::Corruption("rtree descriptor");
    }
    out->next_no = next;
    for (uint32_t i = 0; i < count; ++i) {
      RtInstance inst;
      uint32_t no;
      if (!GetVarint32(&in, &no)) return Status::Corruption("rtree instance");
      inst.no = no;
      for (int& f : inst.fields) {
        uint32_t idx;
        if (!GetVarint32(&in, &idx)) return Status::Corruption("rtree field");
        f = static_cast<int>(idx);
      }
      out->instances.push_back(inst);
    }
    return Status::OK();
  }

  const RtInstance* Find(uint32_t no) const {
    for (const RtInstance& inst : instances) {
      if (inst.no == no) return &inst;
    }
    return nullptr;
  }
};

struct RtState : public ExtState {
  RtTypeDesc desc;
  std::map<uint32_t, RTree> trees;
};

RtState* StateOf(AtContext& ctx) { return static_cast<RtState*>(ctx.state); }

Status RectOf(const RecordView& view, const RtInstance& inst, Rect* out,
              bool* has_null) {
  double v[4];
  for (int i = 0; i < 4; ++i) {
    size_t f = static_cast<size_t>(inst.fields[i]);
    if (view.IsNull(f)) {
      *has_null = true;
      return Status::OK();
    }
    v[i] = view.GetValue(f).AsDouble();
  }
  *has_null = false;
  *out = Rect{v[0], v[1], v[2], v[3]};
  return Status::OK();
}

std::string RectPayload(char op, uint32_t instance, const Rect& r,
                        const Slice& record_key) {
  std::string payload(1, op);
  PutVarint32(&payload, instance);
  PutDouble(&payload, r.xmin);
  PutDouble(&payload, r.ymin);
  PutDouble(&payload, r.xmax);
  PutDouble(&payload, r.ymax);
  payload.append(record_key.data(), record_key.size());
  return payload;
}

Status RtLog(AtContext& ctx, std::string payload) {
  LogRecord rec = MakeUpdateRecord(
      ctx.txn != nullptr ? ctx.txn->id() : kInvalidTxnId,
      ExtKind::kAttachment, ctx.at_id, ctx.desc->id, std::move(payload));
  rec.prev_lsn = ctx.txn != nullptr ? ctx.txn->last_lsn() : kInvalidLsn;
  DMX_RETURN_IF_ERROR(ctx.db->log()->Append(&rec));
  if (ctx.txn != nullptr) ctx.txn->set_last_lsn(rec.lsn);
  return Status::OK();
}

Status RtRebuild(AtContext& ctx);

Status RtOpen(AtContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<RtState>();
  DMX_RETURN_IF_ERROR(RtTypeDesc::DecodeFrom(ctx.at_desc, &st->desc));
  AtContext prime = ctx;
  prime.state = st.get();
  DMX_RETURN_IF_ERROR(RtRebuild(prime));
  *state = std::move(st);
  return Status::OK();
}

Status RtRebuild(AtContext& ctx) {
  RtState* st = StateOf(ctx);
  st->trees.clear();
  if (st->desc.instances.empty()) return Status::OK();
  const SmOps& sm = ctx.db->registry()->sm_ops(ctx.desc->sm_id);
  SmContext sctx;
  DMX_RETURN_IF_ERROR(ctx.db->MakeSmContext(nullptr, ctx.desc, &sctx));
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(sm.open_scan(sctx, ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    for (const RtInstance& inst : st->desc.instances) {
      Rect r;
      bool has_null;
      DMX_RETURN_IF_ERROR(RectOf(item.view, inst, &r, &has_null));
      if (!has_null) st->trees[inst.no].Insert(r, item.record_key);
    }
  }
  return Status::OK();
}

Status RtCreateInstance(AtContext& ctx, const AttrList& attrs,
                        std::string* new_desc, uint32_t* instance_no) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({"fields"}));
  std::vector<int> fields;
  DMX_RETURN_IF_ERROR(
      ParseFieldList(ctx.desc->schema, attrs.Get("fields"), &fields));
  if (fields.size() != 4) {
    return Status::InvalidArgument(
        "rtree_index requires fields=<xmin>,<ymin>,<xmax>,<ymax>");
  }
  for (int f : fields) {
    TypeId t = ctx.desc->schema.column(static_cast<size_t>(f)).type;
    if (t != TypeId::kDouble && t != TypeId::kInt64) {
      return Status::InvalidArgument("rtree fields must be numeric");
    }
  }
  RtInstance inst;
  for (int i = 0; i < 4; ++i) inst.fields[i] = fields[static_cast<size_t>(i)];
  RtTypeDesc desc;
  DMX_RETURN_IF_ERROR(RtTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  inst.no = desc.next_no++;
  *instance_no = inst.no;
  desc.instances.push_back(inst);
  new_desc->clear();
  desc.EncodeTo(new_desc);
  return Status::OK();
}

Status RtDropInstance(AtContext& ctx, uint32_t instance_no,
                      std::string* new_desc) {
  RtTypeDesc desc;
  DMX_RETURN_IF_ERROR(RtTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  bool found = false;
  std::vector<RtInstance> kept;
  for (const RtInstance& inst : desc.instances) {
    if (inst.no == instance_no) {
      found = true;
    } else {
      kept.push_back(inst);
    }
  }
  if (!found) {
    return Status::NotFound("rtree instance " + std::to_string(instance_no));
  }
  desc.instances = std::move(kept);
  new_desc->clear();
  if (!desc.instances.empty()) desc.EncodeTo(new_desc);
  return Status::OK();
}

Status RtOnInsert(AtContext& ctx, const Slice& record_key,
                  const Slice& new_record) {
  RtState* st = StateOf(ctx);
  RecordView view(new_record, &ctx.desc->schema);
  for (const RtInstance& inst : st->desc.instances) {
    Rect r;
    bool has_null;
    DMX_RETURN_IF_ERROR(RectOf(view, inst, &r, &has_null));
    if (has_null) continue;
    st->trees[inst.no].Insert(r, record_key.ToString());
    DMX_RETURN_IF_ERROR(RtLog(ctx, RectPayload('I', inst.no, r, record_key)));
  }
  return Status::OK();
}

Status RtOnUpdate(AtContext& ctx, const Slice& old_key, const Slice& new_key,
                  const Slice& old_record, const Slice& new_record) {
  RtState* st = StateOf(ctx);
  RecordView old_view(old_record, &ctx.desc->schema);
  RecordView new_view(new_record, &ctx.desc->schema);
  for (const RtInstance& inst : st->desc.instances) {
    Rect orect, nrect;
    bool onull, nnull;
    DMX_RETURN_IF_ERROR(RectOf(old_view, inst, &orect, &onull));
    DMX_RETURN_IF_ERROR(RectOf(new_view, inst, &nrect, &nnull));
    bool same = !onull && !nnull && orect == nrect && old_key == new_key;
    if (same || (onull && nnull)) continue;
    if (!onull) {
      st->trees[inst.no].Remove(orect, old_key.ToString());
      DMX_RETURN_IF_ERROR(
          RtLog(ctx, RectPayload('D', inst.no, orect, old_key)));
    }
    if (!nnull) {
      st->trees[inst.no].Insert(nrect, new_key.ToString());
      DMX_RETURN_IF_ERROR(
          RtLog(ctx, RectPayload('I', inst.no, nrect, new_key)));
    }
  }
  return Status::OK();
}

Status RtOnDelete(AtContext& ctx, const Slice& record_key,
                  const Slice& old_record) {
  RtState* st = StateOf(ctx);
  RecordView view(old_record, &ctx.desc->schema);
  for (const RtInstance& inst : st->desc.instances) {
    Rect r;
    bool has_null;
    DMX_RETURN_IF_ERROR(RectOf(view, inst, &r, &has_null));
    if (has_null) continue;
    st->trees[inst.no].Remove(r, record_key.ToString());
    DMX_RETURN_IF_ERROR(RtLog(ctx, RectPayload('D', inst.no, r, record_key)));
  }
  return Status::OK();
}

char ProbeOpOf(ExprOp op) {
  switch (op) {
    case ExprOp::kOverlaps: return 'O';
    case ExprOp::kEncloses: return 'E';
    case ExprOp::kWithin: return 'W';
    default: return 0;
  }
}

Status RtLookup(AtContext& ctx, uint32_t instance_no, const Slice& key,
                std::vector<std::string>* record_keys) {
  RtState* st = StateOf(ctx);
  record_keys->clear();
  if (st->desc.Find(instance_no) == nullptr) {
    return Status::NotFound("rtree instance " + std::to_string(instance_no));
  }
  if (key.size() != 33) {
    return Status::InvalidArgument("rtree probe key must be 33 bytes");
  }
  char op = key[0];
  Rect q{DecodeDouble(key.data() + 1), DecodeDouble(key.data() + 9),
         DecodeDouble(key.data() + 17), DecodeDouble(key.data() + 25)};
  st->trees[instance_no].Search(op, q, record_keys);
  return Status::OK();
}

Status RtCost(AtContext& ctx, uint32_t instance_no,
              const std::vector<ExprPtr>& predicates, AccessCost* out) {
  RtState* st = StateOf(ctx);
  const RtInstance* inst = st->desc.Find(instance_no);
  out->usable = false;
  if (inst == nullptr) return Status::OK();
  // Relevance: a spatial predicate whose record rectangle is exactly this
  // instance's four fields. "The R-tree access path will recognize the
  // ENCLOSES predicate and report a low cost."
  for (size_t i = 0; i < predicates.size(); ++i) {
    ExprOp op;
    double query[4];
    if (MatchSpatial(predicates[i], inst->fields, &op, query)) {
      const RTree& tree = st->trees[instance_no];
      double n = static_cast<double>(tree.size());
      out->usable = true;
      out->handled_predicates = {static_cast<int>(i)};
      out->selectivity = EstimateSelectivity(predicates[i]);
      // log-ish traversal, then fetch every qualifying record.
      double expected = out->selectivity * n;
      out->io_cost = std::log2(std::max(2.0, n)) +
                     expected * kRecordFetchCost;
      out->cpu_cost = std::log2(std::max(2.0, n)) + expected;
      return Status::OK();
    }
  }
  return Status::OK();
}

// A materialized spatial-search scan: the qualifying record keys are
// computed on open (the structure is in memory) and replayed in order;
// positions are ordinal.
class RTreeScan : public Scan {
 public:
  explicit RTreeScan(std::vector<std::string> keys)
      : keys_(std::move(keys)) {}

  Status Next(ScanItem* out) override {
    if (pos_ >= keys_.size()) return Status::NotFound("end of scan");
    out->record_key = keys_[pos_++];
    out->view = RecordView();
    return Status::OK();
  }

  Status SavePosition(std::string* out) const override {
    out->clear();
    PutFixed64(out, pos_);
    return Status::OK();
  }

  Status RestorePosition(const Slice& pos) override {
    if (pos.size() != 8) return Status::InvalidArgument("rtree position");
    pos_ = DecodeFixed64(pos.data());
    return Status::OK();
  }

 private:
  std::vector<std::string> keys_;
  size_t pos_ = 0;
};

Status RtOpenScan(AtContext& ctx, uint32_t instance_no, const ScanSpec& spec,
                  std::unique_ptr<Scan>* scan) {
  RtState* st = StateOf(ctx);
  const RtInstance* inst = st->desc.Find(instance_no);
  if (inst == nullptr) {
    return Status::NotFound("rtree instance " + std::to_string(instance_no));
  }
  // The query rectangle comes from a recognized spatial conjunct of the
  // pushed filter.
  std::vector<std::string> keys;
  bool matched = false;
  if (spec.filter != nullptr) {
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(spec.filter, &conjuncts);
    for (const ExprPtr& c : conjuncts) {
      ExprOp op;
      double query[4];
      if (MatchSpatial(c, inst->fields, &op, query)) {
        st->trees[instance_no].Search(
            ProbeOpOf(op), Rect{query[0], query[1], query[2], query[3]},
            &keys);
        matched = true;
        break;
      }
    }
  }
  if (!matched) {
    return Status::InvalidArgument(
        "rtree scan requires a spatial predicate on the indexed fields");
  }
  std::sort(keys.begin(), keys.end());
  *scan = std::make_unique<RTreeScan>(std::move(keys));
  return Status::OK();
}

Status RtApply(AtContext& ctx, const LogRecord& rec, bool undo) {
  RtState* st = StateOf(ctx);
  Slice in(rec.payload);
  if (in.empty()) return Status::Corruption("rtree payload");
  char op = in[0];
  in.remove_prefix(1);
  uint32_t instance;
  if (!GetVarint32(&in, &instance)) {
    return Status::Corruption("rtree instance id");
  }
  if (in.size() < 32) return Status::Corruption("rtree rect");
  Rect r{DecodeDouble(in.data()), DecodeDouble(in.data() + 8),
         DecodeDouble(in.data() + 16), DecodeDouble(in.data() + 24)};
  in.remove_prefix(32);
  bool add = (op == 'I');
  if (undo) add = !add;
  if (add) {
    st->trees[instance].Insert(r, in.ToString());
  } else {
    st->trees[instance].Remove(r, in.ToString());
  }
  return Status::OK();
}

Status RtUndo(AtContext& ctx, const LogRecord& rec, Lsn) {
  return RtApply(ctx, rec, /*undo=*/true);
}

Status RtRedo(AtContext&, const LogRecord&, Lsn) { return Status::OK(); }

uint32_t RtInstanceCount(const Slice& at_desc) {
  RtTypeDesc desc;
  if (!RtTypeDesc::DecodeFrom(at_desc, &desc).ok()) return 0;
  return static_cast<uint32_t>(desc.instances.size());
}

Status RtListInstances(const Slice& at_desc, std::vector<uint32_t>* out) {
  RtTypeDesc desc;
  DMX_RETURN_IF_ERROR(RtTypeDesc::DecodeFrom(at_desc, &desc));
  out->clear();
  for (const RtInstance& inst : desc.instances) out->push_back(inst.no);
  return Status::OK();
}

// Verify cross-checks the in-memory tree against the base relation: every
// base record with a non-NULL rectangle must be findable by an exact-rect
// probe, and the entry count must match.
Status RtVerify(AtContext& ctx, uint32_t instance_no, VerifyReport* report) {
  RtState* st = StateOf(ctx);
  const RtInstance* inst = st->desc.Find(instance_no);
  if (inst == nullptr) {
    return Status::NotFound("rtree instance " + std::to_string(instance_no));
  }
  const std::string tag = "rtree_index#" + std::to_string(instance_no) + ": ";
  const RTree& tree = st->trees[instance_no];

  uint64_t indexed_rows = 0;
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, ctx.desc, AccessPathId::StorageMethod(), ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    Rect r;
    bool has_null;
    DMX_RETURN_IF_ERROR(RectOf(item.view, *inst, &r, &has_null));
    if (has_null) continue;
    ++indexed_rows;
    std::vector<std::string> keys;
    tree.Search('E', r, &keys);
    bool found = false;
    for (const std::string& k : keys) found = found || k == item.record_key;
    if (!found) {
      report->Problem(tag + "base record '" + item.record_key +
                      "' has no matching rtree entry");
    }
  }
  report->items += tree.size();
  if (tree.size() != indexed_rows) {
    report->Problem(tag + "entry count " + std::to_string(tree.size()) +
                    " != indexed base rows " + std::to_string(indexed_rows));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeRTreeProbe(ExprOp op, const double query_rect[4]) {
  std::string key;
  switch (op) {
    case ExprOp::kOverlaps: key.push_back('O'); break;
    case ExprOp::kEncloses: key.push_back('E'); break;
    case ExprOp::kWithin: key.push_back('W'); break;
    default: key.push_back('O'); break;
  }
  for (int i = 0; i < 4; ++i) PutDouble(&key, query_rect[i]);
  return key;
}

const AtOps& RTreeIndexOps() {
  static const AtOps ops = [] {
    AtOps o;
    o.name = "rtree_index";
    o.create_instance = RtCreateInstance;
    o.drop_instance = RtDropInstance;
    o.open = RtOpen;
    o.on_insert = RtOnInsert;
    o.on_update = RtOnUpdate;
    o.on_delete = RtOnDelete;
    o.open_scan = RtOpenScan;
    o.lookup = RtLookup;
    o.cost = RtCost;
    o.undo = RtUndo;
    o.redo = RtRedo;
    o.rebuild = RtRebuild;
    o.instance_count = RtInstanceCount;
    o.list_instances = RtListInstances;
    o.verify = RtVerify;
    return o;
  }();
  return ops;
}

}  // namespace dmx
