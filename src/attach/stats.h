// Statistics attachment: maintains COUNT and SUM (hence AVG) of a numeric
// field incrementally — the paper's observation that attachment storage
// "can be used ... even to maintain statistics about relations or
// precomputed function values for data stored in relations".
//
// In-memory, rebuilt after restart; logical delta logging covers rollback.
//
// DDL attributes: field=<numeric col>.
//
// Read the maintained values with ReadStats(), or via AtOps::lookup with
// key "count" / "sum" / "avg" (returns the decimal string).

#ifndef DMX_ATTACH_STATS_H_
#define DMX_ATTACH_STATS_H_

#include "src/core/extension.h"

namespace dmx {

class Database;
class Transaction;

const AtOps& StatsOps();

struct StatsSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double avg() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
};

/// Read instance `instance_no`'s maintained statistics on `rel`.
Status ReadStats(Database* db, Transaction* txn, const std::string& rel,
                 uint32_t instance_no, StatsSnapshot* out);

}  // namespace dmx

#endif  // DMX_ATTACH_STATS_H_
