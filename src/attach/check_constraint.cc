#include "src/attach/check_constraint.h"

#include "src/core/database.h"
#include "src/util/coding.h"

namespace dmx {

std::string EncodePredicateAttr(const ExprPtr& predicate) {
  std::string out;
  predicate->EncodeTo(&out);
  return out;
}

namespace {

struct CheckInstance {
  uint32_t no = 0;
  std::string name;
  ExprPtr predicate;
  std::string predicate_bytes;
};

struct CheckTypeDesc {
  uint32_t next_no = 1;
  std::vector<CheckInstance> instances;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, next_no);
    PutVarint32(dst, static_cast<uint32_t>(instances.size()));
    for (const CheckInstance& inst : instances) {
      PutVarint32(dst, inst.no);
      PutLengthPrefixedSlice(dst, inst.name);
      PutLengthPrefixedSlice(dst, inst.predicate_bytes);
    }
  }

  static Status DecodeFrom(Slice in, CheckTypeDesc* out) {
    out->instances.clear();
    if (in.empty()) {
      out->next_no = 1;
      return Status::OK();
    }
    uint32_t next, count;
    if (!GetVarint32(&in, &next) || !GetVarint32(&in, &count)) {
      return Status::Corruption("check descriptor");
    }
    out->next_no = next;
    for (uint32_t i = 0; i < count; ++i) {
      CheckInstance inst;
      uint32_t no;
      Slice name, pred;
      if (!GetVarint32(&in, &no) || !GetLengthPrefixedSlice(&in, &name) ||
          !GetLengthPrefixedSlice(&in, &pred)) {
        return Status::Corruption("check instance");
      }
      inst.no = no;
      inst.name = name.ToString();
      inst.predicate_bytes = pred.ToString();
      Slice pin(inst.predicate_bytes);
      DMX_RETURN_IF_ERROR(Expr::DecodeFrom(&pin, &inst.predicate));
      out->instances.push_back(std::move(inst));
    }
    return Status::OK();
  }
};

struct CheckState : public ExtState {
  CheckTypeDesc desc;
};

Status ChkOpen(AtContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<CheckState>();
  DMX_RETURN_IF_ERROR(CheckTypeDesc::DecodeFrom(ctx.at_desc, &st->desc));
  *state = std::move(st);
  return Status::OK();
}

Status ChkCreateInstance(AtContext& ctx, const AttrList& attrs,
                         std::string* new_desc, uint32_t* instance_no) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({"predicate", "name"}));
  if (!attrs.Has("predicate")) {
    return Status::InvalidArgument("check requires predicate=<encoded expr>");
  }
  CheckInstance inst;
  inst.name = attrs.Get("name");
  inst.predicate_bytes = attrs.Get("predicate");
  Slice pin(inst.predicate_bytes);
  DMX_RETURN_IF_ERROR(Expr::DecodeFrom(&pin, &inst.predicate));
  // Validate field references against the schema.
  std::vector<int> fields;
  inst.predicate->CollectFields(&fields);
  for (int f : fields) {
    if (f < 0 || static_cast<size_t>(f) >= ctx.desc->schema.num_columns()) {
      return Status::InvalidArgument("check predicate references field " +
                                     std::to_string(f));
    }
  }
  // Existing records must already satisfy the constraint.
  ScanSpec spec;
  spec.filter = Expr::Unary(ExprOp::kNot, inst.predicate);
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, ctx.desc, AccessPathId::StorageMethod(), spec, &scan));
  ScanItem item;
  Status s = scan->Next(&item);
  if (s.ok()) {
    return Status::Constraint("existing record violates check constraint" +
                              (inst.name.empty() ? "" : " '" + inst.name +
                                                            "'"));
  }
  if (!s.IsNotFound()) return s;

  CheckTypeDesc desc;
  DMX_RETURN_IF_ERROR(CheckTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  inst.no = desc.next_no++;
  *instance_no = inst.no;
  desc.instances.push_back(std::move(inst));
  new_desc->clear();
  desc.EncodeTo(new_desc);
  return Status::OK();
}

Status ChkDropInstance(AtContext& ctx, uint32_t instance_no,
                       std::string* new_desc) {
  CheckTypeDesc desc;
  DMX_RETURN_IF_ERROR(CheckTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  bool found = false;
  std::vector<CheckInstance> kept;
  for (CheckInstance& inst : desc.instances) {
    if (inst.no == instance_no) {
      found = true;
    } else {
      kept.push_back(std::move(inst));
    }
  }
  if (!found) {
    return Status::NotFound("check instance " + std::to_string(instance_no));
  }
  desc.instances = std::move(kept);
  new_desc->clear();
  if (!desc.instances.empty()) desc.EncodeTo(new_desc);
  return Status::OK();
}

Status ChkTest(AtContext& ctx, const Slice& record) {
  CheckState* st = static_cast<CheckState*>(ctx.state);
  RecordView view(record, &ctx.desc->schema);
  for (const CheckInstance& inst : st->desc.instances) {
    bool passes = false;
    DMX_RETURN_IF_ERROR(
        ctx.db->evaluator()->EvalPredicate(*inst.predicate, view, &passes));
    if (!passes) {
      return Status::Constraint(
          "check constraint" +
          (inst.name.empty() ? "" : " '" + inst.name + "'") + " violated: " +
          inst.predicate->ToString());
    }
  }
  return Status::OK();
}

Status ChkOnInsert(AtContext& ctx, const Slice&, const Slice& new_record) {
  return ChkTest(ctx, new_record);
}

Status ChkOnUpdate(AtContext& ctx, const Slice&, const Slice&, const Slice&,
                   const Slice& new_record) {
  return ChkTest(ctx, new_record);
}

uint32_t ChkInstanceCount(const Slice& at_desc) {
  CheckTypeDesc desc;
  if (!CheckTypeDesc::DecodeFrom(at_desc, &desc).ok()) return 0;
  return static_cast<uint32_t>(desc.instances.size());
}

Status ChkListInstances(const Slice& at_desc, std::vector<uint32_t>* out) {
  CheckTypeDesc desc;
  DMX_RETURN_IF_ERROR(CheckTypeDesc::DecodeFrom(at_desc, &desc));
  out->clear();
  for (const CheckInstance& inst : desc.instances) out->push_back(inst.no);
  return Status::OK();
}

// Verify re-evaluates the predicate over every base record — catches rows
// that slipped in while the constraint was quarantined or before it existed.
Status ChkVerify(AtContext& ctx, uint32_t instance_no, VerifyReport* report) {
  CheckState* st = static_cast<CheckState*>(ctx.state);
  const CheckInstance* inst = nullptr;
  for (const CheckInstance& i : st->desc.instances) {
    if (i.no == instance_no) inst = &i;
  }
  if (inst == nullptr) {
    return Status::NotFound("check instance " + std::to_string(instance_no));
  }
  const std::string tag = "check#" + std::to_string(instance_no) + ": ";

  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, ctx.desc, AccessPathId::StorageMethod(), ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    bool passes = false;
    DMX_RETURN_IF_ERROR(ctx.db->evaluator()->EvalPredicate(*inst->predicate,
                                                           item.view,
                                                           &passes));
    if (!passes) {
      report->Problem(tag + "record violates check constraint" +
                      (inst->name.empty() ? "" : " '" + inst->name + "'"));
    }
    ++report->items;
  }
  return Status::OK();
}

// A quarantined check constraint stops vetoing writes, so writes must be
// refused until REPAIR re-validates the data.
bool ChkGuardsIntegrity(const Slice& at_desc, uint32_t instance_no) {
  CheckTypeDesc desc;
  if (!CheckTypeDesc::DecodeFrom(at_desc, &desc).ok()) return false;
  for (const CheckInstance& inst : desc.instances) {
    if (inst.no == instance_no) return true;
  }
  return false;
}

}  // namespace

const AtOps& CheckConstraintOps() {
  static const AtOps ops = [] {
    AtOps o;
    o.name = "check";
    o.create_instance = ChkCreateInstance;
    o.drop_instance = ChkDropInstance;
    o.open = ChkOpen;
    o.on_insert = ChkOnInsert;
    o.on_update = ChkOnUpdate;
    o.instance_count = ChkInstanceCount;
    o.list_instances = ChkListInstances;
    o.verify = ChkVerify;
    o.guards_integrity = ChkGuardsIntegrity;
    return o;
  }();
  return ops;
}

}  // namespace dmx
