// R-tree spatial access path attachment [GUTTMAN 84] — the paper's opening
// motivation: "spatial database applications can make use of an R-tree
// access path to efficiently compute certain spatial predicates", and its
// costing example: "the R-tree access path will recognize the ENCLOSES
// predicate and report a low cost".
//
// An instance indexes a rectangle stored in four numeric columns
// (xmin, ymin, xmax, ymax). In-memory Guttman R-tree with quadratic split,
// rebuilt from the base relation after restart; logical undo logging
// covers transaction rollback.
//
// DDL attributes: fields=<xmin>,<ymin>,<xmax>,<ymax>.
//
// Direct probes (AtOps::lookup) take a 33-byte key: op byte ('O' overlaps,
// 'E' encloses, 'W' within) + 4 little-endian doubles (the query
// rectangle); EncodeRTreeProbe builds one.

#ifndef DMX_ATTACH_RTREE_INDEX_H_
#define DMX_ATTACH_RTREE_INDEX_H_

#include "src/core/extension.h"

namespace dmx {

const AtOps& RTreeIndexOps();

/// Build the probe key for AtOps::lookup on an rtree_index instance.
std::string EncodeRTreeProbe(ExprOp op, const double query_rect[4]);

}  // namespace dmx

#endif  // DMX_ATTACH_RTREE_INDEX_H_
