#include "src/attach/deferred_check.h"

#include "src/core/database.h"
#include "src/util/coding.h"

namespace dmx {
namespace {

// Reuses the check-constraint descriptor shape: instances with a name and
// an encoded predicate.
struct DcInstance {
  uint32_t no = 0;
  std::string name;
  ExprPtr predicate;
  std::string predicate_bytes;
};

struct DcTypeDesc {
  uint32_t next_no = 1;
  std::vector<DcInstance> instances;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, next_no);
    PutVarint32(dst, static_cast<uint32_t>(instances.size()));
    for (const DcInstance& inst : instances) {
      PutVarint32(dst, inst.no);
      PutLengthPrefixedSlice(dst, inst.name);
      PutLengthPrefixedSlice(dst, inst.predicate_bytes);
    }
  }

  static Status DecodeFrom(Slice in, DcTypeDesc* out) {
    out->instances.clear();
    if (in.empty()) {
      out->next_no = 1;
      return Status::OK();
    }
    uint32_t next, count;
    if (!GetVarint32(&in, &next) || !GetVarint32(&in, &count)) {
      return Status::Corruption("deferred check descriptor");
    }
    out->next_no = next;
    for (uint32_t i = 0; i < count; ++i) {
      DcInstance inst;
      uint32_t no;
      Slice name, pred;
      if (!GetVarint32(&in, &no) || !GetLengthPrefixedSlice(&in, &name) ||
          !GetLengthPrefixedSlice(&in, &pred)) {
        return Status::Corruption("deferred check instance");
      }
      inst.no = no;
      inst.name = name.ToString();
      inst.predicate_bytes = pred.ToString();
      Slice pin(inst.predicate_bytes);
      DMX_RETURN_IF_ERROR(Expr::DecodeFrom(&pin, &inst.predicate));
      out->instances.push_back(std::move(inst));
    }
    return Status::OK();
  }
};

struct DcState : public ExtState {
  DcTypeDesc desc;
};

Status DcOpen(AtContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<DcState>();
  DMX_RETURN_IF_ERROR(DcTypeDesc::DecodeFrom(ctx.at_desc, &st->desc));
  *state = std::move(st);
  return Status::OK();
}

Status DcCreateInstance(AtContext& ctx, const AttrList& attrs,
                        std::string* new_desc, uint32_t* instance_no) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({"predicate", "name"}));
  if (!attrs.Has("predicate")) {
    return Status::InvalidArgument(
        "deferred_check requires predicate=<encoded expr>");
  }
  DcInstance inst;
  inst.name = attrs.Get("name");
  inst.predicate_bytes = attrs.Get("predicate");
  Slice pin(inst.predicate_bytes);
  DMX_RETURN_IF_ERROR(Expr::DecodeFrom(&pin, &inst.predicate));
  DcTypeDesc desc;
  DMX_RETURN_IF_ERROR(DcTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  inst.no = desc.next_no++;
  *instance_no = inst.no;
  desc.instances.push_back(std::move(inst));
  new_desc->clear();
  desc.EncodeTo(new_desc);
  return Status::OK();
}

Status DcDropInstance(AtContext& ctx, uint32_t instance_no,
                      std::string* new_desc) {
  DcTypeDesc desc;
  DMX_RETURN_IF_ERROR(DcTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  bool found = false;
  std::vector<DcInstance> kept;
  for (DcInstance& inst : desc.instances) {
    if (inst.no == instance_no) {
      found = true;
    } else {
      kept.push_back(std::move(inst));
    }
  }
  if (!found) {
    return Status::NotFound("deferred check instance " +
                            std::to_string(instance_no));
  }
  desc.instances = std::move(kept);
  new_desc->clear();
  if (!desc.instances.empty()) desc.EncodeTo(new_desc);
  return Status::OK();
}

// Enqueue the commit-time evaluation of all instances against the record's
// final state. This is the paper's deferred-action-queue protocol: the
// entry carries "the address of the attachment routine that should be
// invoked ... and a pointer to data" — here, a closure over (relation id,
// record key).
Status DcDefer(AtContext& ctx, const Slice& record_key) {
  Database* db = ctx.db;
  RelationId rel = ctx.desc->id;
  std::string key = record_key.ToString();
  ctx.txn->Defer(TxnEvent::kBeforePrepare, [db, rel,
                                            key](Transaction* txn) -> Status {
    const RelationDescriptor* desc = db->catalog()->Find(rel);
    if (desc == nullptr) return Status::OK();  // relation dropped
    int at = db->registry()->FindAttachmentType("deferred_check");
    AtContext actx;
    DMX_RETURN_IF_ERROR(
        db->MakeAtContext(txn, desc, static_cast<AtId>(at), &actx));
    DcState* st = static_cast<DcState*>(actx.state);
    if (st == nullptr || st->desc.instances.empty()) return Status::OK();
    std::string record;
    Status fs = db->FetchRecord(txn, desc, Slice(key), &record);
    if (fs.IsNotFound()) return Status::OK();  // deleted later in the txn
    DMX_RETURN_IF_ERROR(fs);
    RecordView view(Slice(record), &desc->schema);
    for (const DcInstance& inst : st->desc.instances) {
      bool passes = false;
      DMX_RETURN_IF_ERROR(
          db->evaluator()->EvalPredicate(*inst.predicate, view, &passes));
      if (!passes) {
        return Status::Constraint(
            "deferred constraint" +
            (inst.name.empty() ? "" : " '" + inst.name + "'") +
            " violated at commit");
      }
    }
    return Status::OK();
  });
  return Status::OK();
}

Status DcOnInsert(AtContext& ctx, const Slice& record_key, const Slice&) {
  return DcDefer(ctx, record_key);
}

Status DcOnUpdate(AtContext& ctx, const Slice&, const Slice& new_key,
                  const Slice&, const Slice&) {
  return DcDefer(ctx, new_key);
}

uint32_t DcInstanceCount(const Slice& at_desc) {
  DcTypeDesc desc;
  if (!DcTypeDesc::DecodeFrom(at_desc, &desc).ok()) return 0;
  return static_cast<uint32_t>(desc.instances.size());
}

}  // namespace

const AtOps& DeferredCheckOps() {
  static const AtOps ops = [] {
    AtOps o;
    o.name = "deferred_check";
    o.create_instance = DcCreateInstance;
    o.drop_instance = DcDropInstance;
    o.open = DcOpen;
    o.on_insert = DcOnInsert;
    o.on_update = DcOnUpdate;
    o.instance_count = DcInstanceCount;
    return o;
  }();
  return ops;
}

}  // namespace dmx
