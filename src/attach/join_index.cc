#include "src/attach/join_index.h"

#include <map>
#include <memory>
#include <set>

#include "src/core/database.h"
#include "src/sm/btree_sm.h"
#include "src/sm/key_codec.h"
#include "src/util/coding.h"

namespace dmx {
namespace {

// Shared pair table, keyed by join-index name. Both sides' instances (and
// both relations' rebuilds) converge on the same object.
struct JoinData {
  Mutex mu;
  // join key -> record keys present on each side.
  std::map<std::string, std::pair<std::set<std::string>,
                                  std::set<std::string>>>
      sides GUARDED_BY(mu);

  void Add(int side, const std::string& jk, const std::string& rkey) {
    MutexLock lock(&mu);
    auto& entry = sides[jk];
    (side == 1 ? entry.first : entry.second).insert(rkey);
  }
  void Remove(int side, const std::string& jk, const std::string& rkey) {
    MutexLock lock(&mu);
    auto it = sides.find(jk);
    if (it == sides.end()) return;
    (side == 1 ? it->second.first : it->second.second).erase(rkey);
    if (it->second.first.empty() && it->second.second.empty()) {
      sides.erase(it);
    }
  }
  void ClearSide(int side) {
    MutexLock lock(&mu);
    for (auto it = sides.begin(); it != sides.end();) {
      (side == 1 ? it->second.first : it->second.second).clear();
      if (it->second.first.empty() && it->second.second.empty()) {
        it = sides.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::vector<std::string> OtherSide(int side, const std::string& jk) {
    MutexLock lock(&mu);
    auto it = sides.find(jk);
    if (it == sides.end()) return {};
    const auto& others = side == 1 ? it->second.second : it->second.first;
    return std::vector<std::string>(others.begin(), others.end());
  }
  size_t PairCount() {
    MutexLock lock(&mu);
    size_t n = 0;
    for (const auto& [jk, entry] : sides) {
      n += entry.first.size() * entry.second.size();
    }
    return n;
  }
  bool Contains(int side, const std::string& jk, const std::string& rkey) {
    MutexLock lock(&mu);
    auto it = sides.find(jk);
    if (it == sides.end()) return false;
    const auto& s = side == 1 ? it->second.first : it->second.second;
    return s.contains(rkey);
  }
  size_t SideCount(int side) {
    MutexLock lock(&mu);
    size_t n = 0;
    for (const auto& [jk, entry] : sides) {
      n += side == 1 ? entry.first.size() : entry.second.size();
    }
    return n;
  }
};

Mutex g_join_mu;
std::map<std::string, std::shared_ptr<JoinData>>& JoinRegistry() {
  static auto* registry =
      new std::map<std::string, std::shared_ptr<JoinData>>();
  return *registry;
}

std::shared_ptr<JoinData> JoinDataOf(const std::string& name) {
  MutexLock lock(&g_join_mu);
  auto& slot = JoinRegistry()[name];
  if (slot == nullptr) slot = std::make_shared<JoinData>();
  return slot;
}

struct JiInstance {
  uint32_t no = 0;
  std::string name;
  int side = 1;
  std::vector<int> fields;
};

struct JiTypeDesc {
  uint32_t next_no = 1;
  std::vector<JiInstance> instances;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, next_no);
    PutVarint32(dst, static_cast<uint32_t>(instances.size()));
    for (const JiInstance& inst : instances) {
      PutVarint32(dst, inst.no);
      PutLengthPrefixedSlice(dst, inst.name);
      dst->push_back(static_cast<char>(inst.side));
      PutVarint32(dst, static_cast<uint32_t>(inst.fields.size()));
      for (int f : inst.fields) PutVarint32(dst, static_cast<uint32_t>(f));
    }
  }

  static Status DecodeFrom(Slice in, JiTypeDesc* out) {
    out->instances.clear();
    if (in.empty()) {
      out->next_no = 1;
      return Status::OK();
    }
    uint32_t next, count;
    if (!GetVarint32(&in, &next) || !GetVarint32(&in, &count)) {
      return Status::Corruption("join index descriptor");
    }
    out->next_no = next;
    for (uint32_t i = 0; i < count; ++i) {
      JiInstance inst;
      uint32_t no, nfields;
      Slice name;
      if (!GetVarint32(&in, &no) || !GetLengthPrefixedSlice(&in, &name) ||
          in.empty()) {
        return Status::Corruption("join index instance");
      }
      inst.no = no;
      inst.name = name.ToString();
      inst.side = in[0];
      in.remove_prefix(1);
      if (!GetVarint32(&in, &nfields)) {
        return Status::Corruption("join index fields");
      }
      for (uint32_t f = 0; f < nfields; ++f) {
        uint32_t idx;
        if (!GetVarint32(&in, &idx)) {
          return Status::Corruption("join index field");
        }
        inst.fields.push_back(static_cast<int>(idx));
      }
      out->instances.push_back(std::move(inst));
    }
    return Status::OK();
  }

  const JiInstance* Find(uint32_t no) const {
    for (const JiInstance& inst : instances) {
      if (inst.no == no) return &inst;
    }
    return nullptr;
  }
};

struct JiState : public ExtState {
  JiTypeDesc desc;
  std::map<uint32_t, std::shared_ptr<JoinData>> data;
};

JiState* StateOf(AtContext& ctx) { return static_cast<JiState*>(ctx.state); }

Status JiLog(AtContext& ctx, char op, const JiInstance& inst,
             const Slice& jk, const Slice& rkey) {
  std::string payload(1, op);
  PutVarint32(&payload, inst.no);
  PutLengthPrefixedSlice(&payload, inst.name);
  payload.push_back(static_cast<char>(inst.side));
  PutLengthPrefixedSlice(&payload, jk);
  payload.append(rkey.data(), rkey.size());
  LogRecord rec = MakeUpdateRecord(
      ctx.txn != nullptr ? ctx.txn->id() : kInvalidTxnId,
      ExtKind::kAttachment, ctx.at_id, ctx.desc->id, std::move(payload));
  rec.prev_lsn = ctx.txn != nullptr ? ctx.txn->last_lsn() : kInvalidLsn;
  DMX_RETURN_IF_ERROR(ctx.db->log()->Append(&rec));
  if (ctx.txn != nullptr) ctx.txn->set_last_lsn(rec.lsn);
  return Status::OK();
}

Status JiRebuild(AtContext& ctx);

Status JiOpen(AtContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<JiState>();
  DMX_RETURN_IF_ERROR(JiTypeDesc::DecodeFrom(ctx.at_desc, &st->desc));
  for (const JiInstance& inst : st->desc.instances) {
    st->data[inst.no] = JoinDataOf(inst.name);
  }
  AtContext prime = ctx;
  prime.state = st.get();
  DMX_RETURN_IF_ERROR(JiRebuild(prime));
  *state = std::move(st);
  return Status::OK();
}

// Rescan this relation's side of every named join structure.
Status JiRebuild(AtContext& ctx) {
  JiState* st = StateOf(ctx);
  if (st->desc.instances.empty()) return Status::OK();
  for (const JiInstance& inst : st->desc.instances) {
    st->data[inst.no]->ClearSide(inst.side);
  }
  const SmOps& sm = ctx.db->registry()->sm_ops(ctx.desc->sm_id);
  SmContext sctx;
  DMX_RETURN_IF_ERROR(ctx.db->MakeSmContext(nullptr, ctx.desc, &sctx));
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(sm.open_scan(sctx, ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    for (const JiInstance& inst : st->desc.instances) {
      std::string jk;
      DMX_RETURN_IF_ERROR(EncodeFieldKey(item.view, inst.fields, &jk));
      st->data[inst.no]->Add(inst.side, jk, item.record_key);
    }
  }
  return Status::OK();
}

Status JiCreateInstance(AtContext& ctx, const AttrList& attrs,
                        std::string* new_desc, uint32_t* instance_no) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({"name", "side", "fields"}));
  JiInstance inst;
  inst.name = attrs.Get("name");
  if (inst.name.empty()) {
    return Status::InvalidArgument("join_index requires name=<shared name>");
  }
  const std::string side = attrs.Get("side");
  if (side == "1") {
    inst.side = 1;
  } else if (side == "2") {
    inst.side = 2;
  } else {
    return Status::InvalidArgument("join_index requires side=1|2");
  }
  DMX_RETURN_IF_ERROR(
      ParseFieldList(ctx.desc->schema, attrs.Get("fields"), &inst.fields));
  JiTypeDesc desc;
  DMX_RETURN_IF_ERROR(JiTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  inst.no = desc.next_no++;
  *instance_no = inst.no;
  desc.instances.push_back(std::move(inst));
  new_desc->clear();
  desc.EncodeTo(new_desc);
  return Status::OK();
}

Status JiDropInstance(AtContext& ctx, uint32_t instance_no,
                      std::string* new_desc) {
  JiTypeDesc desc;
  DMX_RETURN_IF_ERROR(JiTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  bool found = false;
  std::vector<JiInstance> kept;
  for (JiInstance& inst : desc.instances) {
    if (inst.no == instance_no) {
      found = true;
      JoinDataOf(inst.name)->ClearSide(inst.side);
    } else {
      kept.push_back(std::move(inst));
    }
  }
  if (!found) {
    return Status::NotFound("join index instance " +
                            std::to_string(instance_no));
  }
  desc.instances = std::move(kept);
  new_desc->clear();
  if (!desc.instances.empty()) desc.EncodeTo(new_desc);
  return Status::OK();
}

Status JiOnInsert(AtContext& ctx, const Slice& record_key,
                  const Slice& new_record) {
  JiState* st = StateOf(ctx);
  RecordView view(new_record, &ctx.desc->schema);
  for (const JiInstance& inst : st->desc.instances) {
    std::string jk;
    DMX_RETURN_IF_ERROR(EncodeFieldKey(view, inst.fields, &jk));
    st->data[inst.no]->Add(inst.side, jk, record_key.ToString());
    DMX_RETURN_IF_ERROR(JiLog(ctx, 'I', inst, Slice(jk), record_key));
  }
  return Status::OK();
}

Status JiOnUpdate(AtContext& ctx, const Slice& old_key, const Slice& new_key,
                  const Slice& old_record, const Slice& new_record) {
  JiState* st = StateOf(ctx);
  RecordView old_view(old_record, &ctx.desc->schema);
  RecordView new_view(new_record, &ctx.desc->schema);
  for (const JiInstance& inst : st->desc.instances) {
    std::string ojk, njk;
    DMX_RETURN_IF_ERROR(EncodeFieldKey(old_view, inst.fields, &ojk));
    DMX_RETURN_IF_ERROR(EncodeFieldKey(new_view, inst.fields, &njk));
    if (ojk == njk && old_key == new_key) continue;
    st->data[inst.no]->Remove(inst.side, ojk, old_key.ToString());
    DMX_RETURN_IF_ERROR(JiLog(ctx, 'D', inst, Slice(ojk), old_key));
    st->data[inst.no]->Add(inst.side, njk, new_key.ToString());
    DMX_RETURN_IF_ERROR(JiLog(ctx, 'I', inst, Slice(njk), new_key));
  }
  return Status::OK();
}

Status JiOnDelete(AtContext& ctx, const Slice& record_key,
                  const Slice& old_record) {
  JiState* st = StateOf(ctx);
  RecordView view(old_record, &ctx.desc->schema);
  for (const JiInstance& inst : st->desc.instances) {
    std::string jk;
    DMX_RETURN_IF_ERROR(EncodeFieldKey(view, inst.fields, &jk));
    st->data[inst.no]->Remove(inst.side, jk, record_key.ToString());
    DMX_RETURN_IF_ERROR(JiLog(ctx, 'D', inst, Slice(jk), record_key));
  }
  return Status::OK();
}

Status JiLookup(AtContext& ctx, uint32_t instance_no, const Slice& key,
                std::vector<std::string>* record_keys) {
  JiState* st = StateOf(ctx);
  const JiInstance* inst = st->desc.Find(instance_no);
  if (inst == nullptr) {
    return Status::NotFound("join index instance " +
                            std::to_string(instance_no));
  }
  *record_keys = st->data[instance_no]->OtherSide(inst->side, key.ToString());
  return Status::OK();
}

Status JiApply(AtContext& ctx, const LogRecord& rec, bool undo) {
  (void)ctx;
  Slice in(rec.payload);
  if (in.empty()) return Status::Corruption("join index payload");
  char op = in[0];
  in.remove_prefix(1);
  uint32_t instance;
  Slice name, jk;
  if (!GetVarint32(&in, &instance) || !GetLengthPrefixedSlice(&in, &name) ||
      in.empty()) {
    return Status::Corruption("join index payload body");
  }
  int side = in[0];
  in.remove_prefix(1);
  if (!GetLengthPrefixedSlice(&in, &jk)) {
    return Status::Corruption("join index jk");
  }
  auto data = JoinDataOf(name.ToString());
  bool add = (op == 'I');
  if (undo) add = !add;
  if (add) {
    data->Add(side, jk.ToString(), in.ToString());
  } else {
    data->Remove(side, jk.ToString(), in.ToString());
  }
  return Status::OK();
}

Status JiUndo(AtContext& ctx, const LogRecord& rec, Lsn) {
  return JiApply(ctx, rec, /*undo=*/true);
}

Status JiRedo(AtContext&, const LogRecord&, Lsn) { return Status::OK(); }

uint32_t JiInstanceCount(const Slice& at_desc) {
  JiTypeDesc desc;
  if (!JiTypeDesc::DecodeFrom(at_desc, &desc).ok()) return 0;
  return static_cast<uint32_t>(desc.instances.size());
}

Status JiListInstances(const Slice& at_desc, std::vector<uint32_t>* out) {
  JiTypeDesc desc;
  DMX_RETURN_IF_ERROR(JiTypeDesc::DecodeFrom(at_desc, &desc));
  out->clear();
  for (const JiInstance& inst : desc.instances) out->push_back(inst.no);
  return Status::OK();
}

// Verify covers this relation's side of the shared pair table: every base
// record must appear under its join key, and the side's entry count must
// match the base row count (the other side is verified by its own relation).
Status JiVerify(AtContext& ctx, uint32_t instance_no, VerifyReport* report) {
  JiState* st = StateOf(ctx);
  const JiInstance* inst = st->desc.Find(instance_no);
  if (inst == nullptr) {
    return Status::NotFound("join index instance " +
                            std::to_string(instance_no));
  }
  const std::string tag = "join_index#" + std::to_string(instance_no) + ": ";
  JoinData* data = st->data[instance_no].get();

  uint64_t base_rows = 0;
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, ctx.desc, AccessPathId::StorageMethod(), ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    std::string jk;
    DMX_RETURN_IF_ERROR(EncodeFieldKey(item.view, inst->fields, &jk));
    if (!data->Contains(inst->side, jk, item.record_key)) {
      report->Problem(tag + "base record '" + item.record_key +
                      "' missing from join pair table");
    }
    ++base_rows;
  }
  size_t side_count = data->SideCount(inst->side);
  report->items += side_count;
  if (side_count != base_rows) {
    report->Problem(tag + "side entry count " + std::to_string(side_count) +
                    " != base rows " + std::to_string(base_rows));
  }
  return Status::OK();
}

}  // namespace

size_t JoinIndexPairCount(const std::string& name) {
  return JoinDataOf(name)->PairCount();
}

const AtOps& JoinIndexOps() {
  static const AtOps ops = [] {
    AtOps o;
    o.name = "join_index";
    o.create_instance = JiCreateInstance;
    o.drop_instance = JiDropInstance;
    o.open = JiOpen;
    o.on_insert = JiOnInsert;
    o.on_update = JiOnUpdate;
    o.on_delete = JiOnDelete;
    o.lookup = JiLookup;
    o.undo = JiUndo;
    o.redo = JiRedo;
    o.rebuild = JiRebuild;
    o.instance_count = JiInstanceCount;
    o.list_instances = JiListInstances;
    o.verify = JiVerify;
    return o;
  }();
  return ops;
}

}  // namespace dmx
