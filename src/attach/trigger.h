// Trigger attachment: invokes registered procedures as side effects of
// relation modifications. Trigger functions are installed "at the factory"
// (compile-time registration) and named in the DDL; they may read and
// modify other relations (cascading through the full two-step machinery),
// enqueue deferred actions, take actions outside the database, or veto the
// modification by returning a non-OK status.
//
// DDL attributes: call=<registered function>, on=<insert|update|delete>
// (repeatable; default all three).

#ifndef DMX_ATTACH_TRIGGER_H_
#define DMX_ATTACH_TRIGGER_H_

#include <functional>
#include <string>

#include "src/core/extension.h"

namespace dmx {

class Database;

/// What a trigger function receives.
struct TriggerEvent {
  Database* db = nullptr;
  Transaction* txn = nullptr;
  const RelationDescriptor* relation = nullptr;
  enum class Op { kInsert, kUpdate, kDelete } op = Op::kInsert;
  /// Keys/records as available for the operation (see AtOps::on_*).
  Slice old_key, new_key;
  RecordView old_record, new_record;
};

using TriggerFn = std::function<Status(const TriggerEvent&)>;

/// Install a trigger function under `name` (process-global, "factory"
/// linkage). Re-registration replaces.
void RegisterTriggerFunction(const std::string& name, TriggerFn fn);

const AtOps& TriggerOps();

}  // namespace dmx

#endif  // DMX_ATTACH_TRIGGER_H_
