#include "src/attach/btree_index.h"

#include <atomic>

#include "src/core/costing.h"
#include "src/core/database.h"
#include "src/sm/btree_core.h"
#include "src/sm/btree_sm.h"
#include "src/sm/key_codec.h"
#include "src/util/coding.h"

namespace dmx {
namespace {

std::atomic<uint64_t> g_skipped_updates{0};

struct IndexInstance {
  uint32_t no = 0;
  PageId anchor = kInvalidPageId;
  bool unique = false;
  std::vector<int> fields;
};

struct IndexTypeDesc {
  uint32_t next_no = 1;
  std::vector<IndexInstance> instances;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, next_no);
    PutVarint32(dst, static_cast<uint32_t>(instances.size()));
    for (const IndexInstance& inst : instances) {
      PutVarint32(dst, inst.no);
      PutFixed32(dst, inst.anchor);
      dst->push_back(inst.unique ? 1 : 0);
      PutVarint32(dst, static_cast<uint32_t>(inst.fields.size()));
      for (int f : inst.fields) PutVarint32(dst, static_cast<uint32_t>(f));
    }
  }

  static Status DecodeFrom(Slice in, IndexTypeDesc* out) {
    out->instances.clear();
    if (in.empty()) {
      out->next_no = 1;
      return Status::OK();
    }
    uint32_t next, count;
    if (!GetVarint32(&in, &next) || !GetVarint32(&in, &count)) {
      return Status::Corruption("btree index descriptor");
    }
    out->next_no = next;
    for (uint32_t i = 0; i < count; ++i) {
      IndexInstance inst;
      uint32_t no, anchor, nfields;
      if (!GetVarint32(&in, &no) || !GetFixed32(&in, &anchor) ||
          in.empty()) {
        return Status::Corruption("btree index instance");
      }
      inst.no = no;
      inst.anchor = anchor;
      inst.unique = in[0] != 0;
      in.remove_prefix(1);
      if (!GetVarint32(&in, &nfields)) {
        return Status::Corruption("btree index fields");
      }
      for (uint32_t f = 0; f < nfields; ++f) {
        uint32_t idx;
        if (!GetVarint32(&in, &idx)) {
          return Status::Corruption("btree index field");
        }
        inst.fields.push_back(static_cast<int>(idx));
      }
      out->instances.push_back(std::move(inst));
    }
    return Status::OK();
  }

  const IndexInstance* Find(uint32_t no) const {
    for (const IndexInstance& inst : instances) {
      if (inst.no == no) return &inst;
    }
    return nullptr;
  }
};

struct IndexState : public ExtState {
  IndexTypeDesc desc;
  // Parallel to desc.instances.
  std::vector<std::unique_ptr<BTree>> trees;

  BTree* TreeFor(uint32_t no) {
    for (size_t i = 0; i < desc.instances.size(); ++i) {
      if (desc.instances[i].no == no) return trees[i].get();
    }
    return nullptr;
  }
};

IndexState* StateOf(AtContext& ctx) {
  return static_cast<IndexState*>(ctx.state);
}

Status IdxOpen(AtContext& ctx, std::unique_ptr<ExtState>* state) {
  auto st = std::make_unique<IndexState>();
  DMX_RETURN_IF_ERROR(IndexTypeDesc::DecodeFrom(ctx.at_desc, &st->desc));
  for (const IndexInstance& inst : st->desc.instances) {
    st->trees.push_back(
        std::make_unique<BTree>(ctx.db->buffer_pool(), inst.anchor));
  }
  *state = std::move(st);
  return Status::OK();
}

Status IdxLog(AtContext& ctx, std::string payload) {
  LogRecord rec = MakeUpdateRecord(
      ctx.txn != nullptr ? ctx.txn->id() : kInvalidTxnId,
      ExtKind::kAttachment, ctx.at_id, ctx.desc->id, std::move(payload));
  rec.prev_lsn = ctx.txn != nullptr ? ctx.txn->last_lsn() : kInvalidLsn;
  DMX_RETURN_IF_ERROR(ctx.db->log()->Append(&rec));
  if (ctx.txn != nullptr) ctx.txn->set_last_lsn(rec.lsn);
  return Status::OK();
}

std::string EntryPayload(char op, uint32_t instance, const Slice& key,
                         const Slice& record_key) {
  std::string payload(1, op);
  PutVarint32(&payload, instance);
  PutLengthPrefixedSlice(&payload, key);
  payload.append(record_key.data(), record_key.size());
  return payload;
}

Status AddEntry(AtContext& ctx, const IndexInstance& inst, BTree* tree,
                const Slice& key, const Slice& record_key) {
  Status s = tree->Insert(key, record_key, inst.unique);
  if (s.IsConstraint()) {
    return Status::Constraint("unique index " + std::to_string(inst.no) +
                              " violated");
  }
  DMX_RETURN_IF_ERROR(s);
  return IdxLog(ctx, EntryPayload('I', inst.no, key, record_key));
}

Status RemoveEntry(AtContext& ctx, BTree* tree, uint32_t instance,
                   const Slice& key, const Slice& record_key) {
  DMX_RETURN_IF_ERROR(tree->Remove(key, record_key, /*idempotent=*/true));
  return IdxLog(ctx, EntryPayload('D', instance, key, record_key));
}

Status IdxCreateInstance(AtContext& ctx, const AttrList& attrs,
                         std::string* new_desc, uint32_t* instance_no) {
  DMX_RETURN_IF_ERROR(attrs.CheckAllowed({"fields", "unique"}));
  if (!attrs.Has("fields")) {
    return Status::InvalidArgument("btree_index requires fields=<columns>");
  }
  IndexInstance inst;
  DMX_RETURN_IF_ERROR(
      ParseFieldList(ctx.desc->schema, attrs.Get("fields"), &inst.fields));
  inst.unique = attrs.Get("unique") == "1" || attrs.Get("unique") == "true";

  IndexTypeDesc desc;
  DMX_RETURN_IF_ERROR(IndexTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  inst.no = desc.next_no++;
  DMX_RETURN_IF_ERROR(BTree::Create(ctx.db->buffer_pool(), &inst.anchor));

  // Bulk-load from the existing relation contents.
  BTree tree(ctx.db->buffer_pool(), inst.anchor);
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, ctx.desc, AccessPathId::StorageMethod(), ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    std::string key;
    DMX_RETURN_IF_ERROR(EncodeFieldKey(item.view, inst.fields, &key));
    Status is = tree.Insert(Slice(key), Slice(item.record_key), inst.unique);
    if (!is.ok()) {
      BTree::Destroy(ctx.db->buffer_pool(), inst.anchor).ok();
      return is;
    }
  }

  desc.instances.push_back(inst);
  new_desc->clear();
  desc.EncodeTo(new_desc);
  *instance_no = inst.no;
  return Status::OK();
}

Status IdxDropInstance(AtContext& ctx, uint32_t instance_no,
                       std::string* new_desc) {
  IndexTypeDesc desc;
  DMX_RETURN_IF_ERROR(IndexTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  bool found = false;
  std::vector<IndexInstance> kept;
  for (const IndexInstance& inst : desc.instances) {
    if (inst.no == instance_no) {
      found = true;
    } else {
      kept.push_back(inst);
    }
  }
  if (!found) {
    return Status::NotFound("btree index instance " +
                            std::to_string(instance_no));
  }
  desc.instances = std::move(kept);
  new_desc->clear();
  // An empty instance list makes descriptor field N NULL again; instance
  // numbers of dropped indexes are then allowed to restart from 1.
  if (!desc.instances.empty()) desc.EncodeTo(new_desc);
  return Status::OK();
}

Status IdxReleaseInstance(AtContext& ctx, uint32_t instance_no) {
  // Deferred storage release at commit of the dropping transaction (or of
  // a relation drop, instance_no == UINT32_MAX). The descriptor visible in
  // the context may already lack the instance (attachment drop), so also
  // consult the cached state parsed from the pre-drop descriptor.
  IndexTypeDesc desc;
  IndexTypeDesc::DecodeFrom(ctx.at_desc, &desc).ok();
  if (instance_no == UINT32_MAX) {
    for (const IndexInstance& inst : desc.instances) {
      DMX_RETURN_IF_ERROR(BTree::Destroy(ctx.db->buffer_pool(), inst.anchor));
    }
    return Status::OK();
  }
  const IndexInstance* inst = desc.Find(instance_no);
  if (inst == nullptr && ctx.state != nullptr) {
    inst = StateOf(ctx)->desc.Find(instance_no);
  }
  if (inst == nullptr) return Status::OK();
  return BTree::Destroy(ctx.db->buffer_pool(), inst->anchor);
}

Status IdxOnInsert(AtContext& ctx, const Slice& record_key,
                   const Slice& new_record) {
  IndexState* st = StateOf(ctx);
  RecordView view(new_record, &ctx.desc->schema);
  for (size_t i = 0; i < st->desc.instances.size(); ++i) {
    const IndexInstance& inst = st->desc.instances[i];
    // Quarantined instances skip maintenance: REPAIR rebuilds them from
    // the base relation, so falling behind is safe.
    if (ctx.desc->IsQuarantined(ctx.at_id, inst.no)) continue;
    std::string key;
    DMX_RETURN_IF_ERROR(EncodeFieldKey(view, inst.fields, &key));
    DMX_RETURN_IF_ERROR(
        AddEntry(ctx, inst, st->trees[i].get(), Slice(key), record_key));
  }
  return Status::OK();
}

Status IdxOnUpdate(AtContext& ctx, const Slice& old_key,
                   const Slice& new_key, const Slice& old_record,
                   const Slice& new_record) {
  IndexState* st = StateOf(ctx);
  RecordView old_view(old_record, &ctx.desc->schema);
  RecordView new_view(new_record, &ctx.desc->schema);
  for (size_t i = 0; i < st->desc.instances.size(); ++i) {
    const IndexInstance& inst = st->desc.instances[i];
    if (ctx.desc->IsQuarantined(ctx.at_id, inst.no)) continue;
    std::string okey, nkey;
    DMX_RETURN_IF_ERROR(EncodeFieldKey(old_view, inst.fields, &okey));
    DMX_RETURN_IF_ERROR(EncodeFieldKey(new_view, inst.fields, &nkey));
    if (okey == nkey && old_key == new_key) {
      // "The B-tree update operation should be able to detect when no
      // indexed fields for a given index are modified."
      ++g_skipped_updates;
      continue;
    }
    DMX_RETURN_IF_ERROR(
        RemoveEntry(ctx, st->trees[i].get(), inst.no, Slice(okey), old_key));
    DMX_RETURN_IF_ERROR(
        AddEntry(ctx, inst, st->trees[i].get(), Slice(nkey), new_key));
  }
  return Status::OK();
}

Status IdxOnDelete(AtContext& ctx, const Slice& record_key,
                   const Slice& old_record) {
  IndexState* st = StateOf(ctx);
  RecordView view(old_record, &ctx.desc->schema);
  for (size_t i = 0; i < st->desc.instances.size(); ++i) {
    const IndexInstance& inst = st->desc.instances[i];
    if (ctx.desc->IsQuarantined(ctx.at_id, inst.no)) continue;
    std::string key;
    DMX_RETURN_IF_ERROR(EncodeFieldKey(view, inst.fields, &key));
    DMX_RETURN_IF_ERROR(
        RemoveEntry(ctx, st->trees[i].get(), inst.no, Slice(key), record_key));
  }
  return Status::OK();
}

// Key-only scan: yields storage-method record keys in index-key order.
// Filters are NOT applied here (the record is not available); the executor
// applies residual predicates after fetching via the storage method.
class IndexScan : public Scan {
 public:
  IndexScan(std::unique_ptr<BTreeIterator> it, const ScanSpec& spec)
      : it_(std::move(it)), spec_(spec) {}

  Status Next(ScanItem* out) override {
    std::string key, value;
    Status s = it_->Next(&key, &value);
    if (s.IsNotFound()) return Status::NotFound("end of scan");
    DMX_RETURN_IF_ERROR(s);
    if (spec_.high_key.has_value()) {
      int cmp = Slice(key).compare(Slice(*spec_.high_key));
      if (cmp > 0 || (cmp == 0 && !spec_.high_inclusive)) {
        return Status::NotFound("end of scan");
      }
    }
    out->record_key = std::move(value);
    out->view = RecordView();
    out->access_key = std::move(key);
    return Status::OK();
  }

  Status SavePosition(std::string* out) const override {
    it_->SavePosition(out);
    return Status::OK();
  }

  Status RestorePosition(const Slice& pos) override {
    return it_->RestorePosition(pos);
  }

 private:
  std::unique_ptr<BTreeIterator> it_;
  ScanSpec spec_;
};

Status IdxOpenScan(AtContext& ctx, uint32_t instance_no, const ScanSpec& spec,
                   std::unique_ptr<Scan>* scan) {
  IndexState* st = StateOf(ctx);
  BTree* tree = st->TreeFor(instance_no);
  if (tree == nullptr) {
    return Status::NotFound("btree index instance " +
                            std::to_string(instance_no));
  }
  std::optional<std::string> low;
  if (spec.low_key.has_value()) {
    low = BTreeComposeEntry(Slice(*spec.low_key), Slice());
    if (!spec.low_inclusive) low->back() = '\x01';
  }
  std::unique_ptr<BTreeIterator> it;
  DMX_RETURN_IF_ERROR(tree->NewIterator(&it, low, true));
  *scan = std::make_unique<IndexScan>(std::move(it), spec);
  return Status::OK();
}

Status IdxLookup(AtContext& ctx, uint32_t instance_no, const Slice& key,
                 std::vector<std::string>* record_keys) {
  IndexState* st = StateOf(ctx);
  BTree* tree = st->TreeFor(instance_no);
  if (tree == nullptr) {
    return Status::NotFound("btree index instance " +
                            std::to_string(instance_no));
  }
  return tree->Lookup(key, record_keys);
}

Status IdxCost(AtContext& ctx, uint32_t instance_no,
               const std::vector<ExprPtr>& predicates, AccessCost* out) {
  IndexState* st = StateOf(ctx);
  const IndexInstance* inst = st->desc.Find(instance_no);
  BTree* tree = st->TreeFor(instance_no);
  out->usable = false;
  if (inst == nullptr || tree == nullptr) return Status::OK();
  uint64_t leaves = 0, entries = 0;
  uint32_t height = 1;
  DMX_RETURN_IF_ERROR(tree->LeafPages(&leaves));
  DMX_RETURN_IF_ERROR(tree->Count(&entries));
  DMX_RETURN_IF_ERROR(tree->Height(&height));

  // Relevance: "a B-tree access path will return a low cost if there is a
  // predicate on the key of the B-tree" — here generalized to multi-field
  // partial keys: an equality prefix over the leading key fields, plus
  // optional range predicates on the next field.
  double key_selectivity = 1.0;
  out->handled_predicates.clear();
  auto match_on_field = [&](int field, bool eq_only,
                            bool* any) {
    for (size_t i = 0; i < predicates.size(); ++i) {
      int f;
      ExprOp op;
      Value constant;
      if (!MatchFieldCompare(predicates[i], &f, &op, &constant) ||
          f != field || op == ExprOp::kNe) {
        continue;
      }
      if (eq_only && op != ExprOp::kEq) continue;
      if (!eq_only && op == ExprOp::kEq) continue;
      key_selectivity *= EstimateSelectivity(predicates[i]);
      out->handled_predicates.push_back(static_cast<int>(i));
      *any = true;
      if (eq_only) return;  // one equality per prefix position
    }
  };
  size_t prefix = 0;
  for (int field : inst->fields) {
    bool any = false;
    match_on_field(field, /*eq_only=*/true, &any);
    if (!any) break;
    ++prefix;
  }
  if (prefix < inst->fields.size()) {
    // Ranges on the field right after the equality prefix still narrow the
    // key range.
    bool any = false;
    match_on_field(inst->fields[prefix], /*eq_only=*/false, &any);
    (void)any;
  }
  if (out->handled_predicates.empty()) {
    return Status::OK();  // not usable without a key predicate
  }
  out->usable = true;
  out->selectivity = key_selectivity;
  // Descend + scan the qualifying leaf fraction, then fetch every
  // qualifying record through the storage method (the expensive part —
  // reported separately so the planner can elide it for index-only plans).
  double qualifying = key_selectivity * static_cast<double>(entries);
  out->fetch_cost = qualifying * kRecordFetchCost;
  out->io_cost = height + key_selectivity * static_cast<double>(leaves) +
                 out->fetch_cost;
  out->cpu_cost = height * 4 + qualifying + 1;
  return Status::OK();
}

Status IdxApply(AtContext& ctx, const LogRecord& rec, bool undo) {
  IndexState* st = StateOf(ctx);
  Slice in(rec.payload);
  if (in.empty()) return Status::Corruption("btree index payload");
  char op = in[0];
  in.remove_prefix(1);
  uint32_t instance;
  Slice key;
  if (!GetVarint32(&in, &instance) || !GetLengthPrefixedSlice(&in, &key)) {
    return Status::Corruption("btree index payload body");
  }
  BTree* tree = st->TreeFor(instance);
  if (tree == nullptr) return Status::OK();  // instance dropped since
  bool insert = (op == 'I');
  if (undo) insert = !insert;
  if (insert) return tree->Insert(key, in);
  return tree->Remove(key, in, /*idempotent=*/true);
}

Status IdxUndo(AtContext& ctx, const LogRecord& rec, Lsn) {
  return IdxApply(ctx, rec, /*undo=*/true);
}

Status IdxRedo(AtContext& ctx, const LogRecord& rec, Lsn) {
  return IdxApply(ctx, rec, /*undo=*/false);
}

uint32_t IdxInstanceCount(const Slice& at_desc) {
  IndexTypeDesc desc;
  if (!IndexTypeDesc::DecodeFrom(at_desc, &desc).ok()) return 0;
  return static_cast<uint32_t>(desc.instances.size());
}

Status IdxListInstances(const Slice& at_desc, std::vector<uint32_t>* out) {
  IndexTypeDesc desc;
  DMX_RETURN_IF_ERROR(IndexTypeDesc::DecodeFrom(at_desc, &desc));
  out->clear();
  for (const IndexInstance& inst : desc.instances) out->push_back(inst.no);
  return Status::OK();
}

// Dual-enumeration consistency check: a structural sweep of the tree, then
// every base record must appear in the index under its computed key, the
// entry count must match the relation's record count (which together rule
// out orphaned entries), and unique instances must hold no duplicate keys.
Status IdxVerify(AtContext& ctx, uint32_t instance_no, VerifyReport* report) {
  IndexState* st = StateOf(ctx);
  const IndexInstance* inst = st->desc.Find(instance_no);
  BTree* tree = st->TreeFor(instance_no);
  if (inst == nullptr || tree == nullptr) {
    return Status::NotFound("btree index instance " +
                            std::to_string(instance_no));
  }
  std::vector<std::string> problems;
  uint64_t entries = 0;
  DMX_RETURN_IF_ERROR(tree->Verify(&problems, &entries));
  const std::string tag = "btree_index#" + std::to_string(instance_no) + ": ";
  for (const std::string& p : problems) report->Problem(tag + p);
  report->items += entries;
  if (!report->clean()) return Status::OK();  // don't walk a broken tree

  uint64_t base_records = 0;
  std::unique_ptr<Scan> scan;
  DMX_RETURN_IF_ERROR(ctx.db->OpenScanOn(
      ctx.txn, ctx.desc, AccessPathId::StorageMethod(), ScanSpec{}, &scan));
  ScanItem item;
  while (true) {
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    ++base_records;
    std::string key;
    Status ks = EncodeFieldKey(item.view, inst->fields, &key);
    if (!ks.ok()) {
      report->Problem(tag + "cannot compose key for a base record: " +
                      ks.ToString());
      continue;
    }
    std::vector<std::string> rkeys;
    Status ls = tree->Lookup(Slice(key), &rkeys);
    bool found = false;
    if (ls.ok()) {
      for (const std::string& rk : rkeys) {
        if (Slice(rk) == Slice(item.record_key)) {
          found = true;
          break;
        }
      }
    }
    if (!found) {
      report->Problem(tag + "base record has no matching index entry");
    }
  }
  if (entries != base_records) {
    report->Problem(tag + "holds " + std::to_string(entries) +
                    " entries but the relation holds " +
                    std::to_string(base_records) + " records");
  }
  if (inst->unique) {
    std::unique_ptr<BTreeIterator> it;
    DMX_RETURN_IF_ERROR(tree->NewIterator(&it));
    std::string key, value, prev;
    bool has_prev = false;
    while (it->Next(&key, &value).ok()) {
      if (has_prev && key == prev) {
        report->Problem(tag + "duplicate key in unique index");
        break;
      }
      prev = key;
      has_prev = true;
    }
  }
  return Status::OK();
}

// Online rebuild (REPAIR): build a fresh tree off the base relation and
// point the instance at its anchor. The damaged tree's pages are left
// untouched — the caller releases them via release_instance (with the
// pre-repair descriptor) only at commit.
Status IdxRepairInstance(AtContext& ctx, uint32_t instance_no,
                         std::string* new_desc) {
  IndexTypeDesc desc;
  DMX_RETURN_IF_ERROR(IndexTypeDesc::DecodeFrom(ctx.at_desc, &desc));
  IndexInstance* inst = nullptr;
  for (IndexInstance& i : desc.instances) {
    if (i.no == instance_no) inst = &i;
  }
  if (inst == nullptr) {
    return Status::NotFound("btree index instance " +
                            std::to_string(instance_no));
  }
  PageId fresh;
  DMX_RETURN_IF_ERROR(BTree::Create(ctx.db->buffer_pool(), &fresh));
  BTree tree(ctx.db->buffer_pool(), fresh);
  std::unique_ptr<Scan> scan;
  Status s = ctx.db->OpenScanOn(ctx.txn, ctx.desc,
                                AccessPathId::StorageMethod(), ScanSpec{},
                                &scan);
  if (s.ok()) {
    ScanItem item;
    while (true) {
      Status ns = scan->Next(&item);
      if (ns.IsNotFound()) break;
      if (!ns.ok()) {
        s = ns;
        break;
      }
      std::string key;
      s = EncodeFieldKey(item.view, inst->fields, &key);
      if (s.ok()) {
        s = tree.Insert(Slice(key), Slice(item.record_key), inst->unique);
        if (s.IsConstraint()) {
          s = Status::Constraint("unique index " +
                                 std::to_string(instance_no) +
                                 " cannot be rebuilt: the base relation "
                                 "holds duplicate keys");
        }
      }
      if (!s.ok()) break;
    }
  }
  if (!s.ok()) {
    BTree::Destroy(ctx.db->buffer_pool(), fresh).ok();
    return s;
  }
  inst->anchor = fresh;
  new_desc->clear();
  desc.EncodeTo(new_desc);
  return Status::OK();
}

// Unique indexes enforce a data invariant; while one is quarantined its
// maintenance skip would let duplicates slip in, so writes must be refused.
bool IdxGuardsIntegrity(const Slice& at_desc, uint32_t instance_no) {
  IndexTypeDesc desc;
  if (!IndexTypeDesc::DecodeFrom(at_desc, &desc).ok()) return false;
  const IndexInstance* inst = desc.Find(instance_no);
  return inst != nullptr && inst->unique;
}

Status IdxInstanceFields(const Slice& at_desc, uint32_t instance,
                         std::vector<int>* fields) {
  IndexTypeDesc desc;
  DMX_RETURN_IF_ERROR(IndexTypeDesc::DecodeFrom(at_desc, &desc));
  const IndexInstance* inst = desc.Find(instance);
  if (inst == nullptr) return Status::NotFound("btree index instance");
  *fields = inst->fields;
  return Status::OK();
}

}  // namespace

uint64_t BTreeIndexSkippedUpdates() { return g_skipped_updates.load(); }

const AtOps& BTreeIndexOps() {
  static const AtOps ops = [] {
    AtOps o;
    o.name = "btree_index";
    o.create_instance = IdxCreateInstance;
    o.drop_instance = IdxDropInstance;
    o.release_instance = IdxReleaseInstance;
    o.open = IdxOpen;
    o.on_insert = IdxOnInsert;
    o.on_update = IdxOnUpdate;
    o.on_delete = IdxOnDelete;
    o.open_scan = IdxOpenScan;
    o.lookup = IdxLookup;
    o.cost = IdxCost;
    o.undo = IdxUndo;
    o.redo = IdxRedo;
    o.instance_count = IdxInstanceCount;
    o.list_instances = IdxListInstances;
    o.instance_fields = IdxInstanceFields;
    o.verify = IdxVerify;
    o.repair_instance = IdxRepairInstance;
    o.guards_integrity = IdxGuardsIntegrity;
    return o;
  }();
  return ops;
}

}  // namespace dmx
