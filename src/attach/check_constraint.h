// Check-constraint attachment: intra-record integrity constraints.
//
// The paper's simplest integrity-constraint example: the descriptor
// contains "a (Common Service) encoding of the predicate to be tested when
// records of the relation are inserted or updated"; a violation vetoes the
// modification, which the common log then rolls back.
//
// DDL attributes: predicate=<Expr::EncodeTo bytes>, name=<label> (optional,
// used in error messages).

#ifndef DMX_ATTACH_CHECK_CONSTRAINT_H_
#define DMX_ATTACH_CHECK_CONSTRAINT_H_

#include "src/core/extension.h"

namespace dmx {

const AtOps& CheckConstraintOps();

/// Helper for building the DDL attribute: serialize a predicate.
std::string EncodePredicateAttr(const ExprPtr& predicate);

}  // namespace dmx

#endif  // DMX_ATTACH_CHECK_CONSTRAINT_H_
