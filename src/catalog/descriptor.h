// RelationDescriptor: the extensible relation descriptor.
//
// The paper: "The relation descriptor is composed of a relation storage
// method descriptor and descriptors for any attachments defined on the
// relation instance. The structure of the relation descriptor is a record
// whose header contains the storage method identifier and whose first field
// contains the storage method descriptor. Each attachment has an assigned
// identifier, and the descriptor for the attachment with identifier N is
// found in field N of the relation descriptor. If there are no instances of
// attachment type N defined on a particular relation, then field N of that
// relation's descriptor will be NULL."
//
// Each extension supplies and interprets the contents of its own descriptor
// field; the common system only manages the composite. Descriptors are
// fetched from the catalog at query compilation time and embedded in bound
// plans, eliminating catalog access at run time.

#ifndef DMX_CATALOG_DESCRIPTOR_H_
#define DMX_CATALOG_DESCRIPTOR_H_

#include <array>
#include <string>
#include <vector>

#include "src/types/schema.h"
#include "src/util/common.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dmx {

struct RelationDescriptor {
  RelationId id = kInvalidRelationId;
  std::string name;
  Schema schema;

  /// Header: the storage method identifier (procedure-vector index).
  SmId sm_id = 0;
  /// Field 0: the storage method's private descriptor encoding.
  std::string sm_desc;
  /// Field N: attachment type N's private descriptor (all instances of the
  /// type are encoded within the one field). Empty string = NULL = no
  /// instances of that type on this relation.
  std::array<std::string, kMaxAttachmentTypes> at_desc;

  /// Monotone version, bumped by every DDL change to this relation; bound
  /// plans record it to detect invalidation.
  uint64_t version = 1;

  /// Catalog-persisted damage record for one attachment instance that
  /// failed verification (or tripped kCorruption during normal access).
  /// While quarantined, the planner skips the access path, maintenance
  /// hooks skip the instance, and — when the instance guards integrity —
  /// writes to the relation are refused until REPAIR clears it.
  struct QuarantineEntry {
    uint16_t at = 0;        // attachment type id
    uint32_t instance = 0;  // instance number within the type
    std::string reason;     // first finding that triggered the quarantine
  };

  /// Base storage quarantined: the stored relation itself failed its
  /// structural sweep. Reads keep working best-effort; writes are refused.
  bool sm_quarantined = false;
  std::string sm_quarantine_reason;
  std::vector<QuarantineEntry> quarantined;

  bool HasAttachment(AtId at) const {
    return at < at_desc.size() && !at_desc[at].empty();
  }

  bool IsQuarantined(AtId at, uint32_t instance) const {
    for (const QuarantineEntry& q : quarantined) {
      if (q.at == at && q.instance == instance) return true;
    }
    return false;
  }

  bool AnyQuarantined() const {
    return sm_quarantined || !quarantined.empty();
  }

  /// Record damage (idempotent; the first reason wins).
  void Quarantine(AtId at, uint32_t instance, std::string reason) {
    if (IsQuarantined(at, instance)) return;
    quarantined.push_back(QuarantineEntry{
        static_cast<uint16_t>(at), instance, std::move(reason)});
  }

  /// Lift the quarantine after a successful repair.
  void ClearQuarantine(AtId at, uint32_t instance) {
    for (auto it = quarantined.begin(); it != quarantined.end(); ++it) {
      if (it->at == at && it->instance == instance) {
        quarantined.erase(it);
        return;
      }
    }
  }

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, RelationDescriptor* out);
};

}  // namespace dmx

#endif  // DMX_CATALOG_DESCRIPTOR_H_
