// RelationDescriptor: the extensible relation descriptor.
//
// The paper: "The relation descriptor is composed of a relation storage
// method descriptor and descriptors for any attachments defined on the
// relation instance. The structure of the relation descriptor is a record
// whose header contains the storage method identifier and whose first field
// contains the storage method descriptor. Each attachment has an assigned
// identifier, and the descriptor for the attachment with identifier N is
// found in field N of the relation descriptor. If there are no instances of
// attachment type N defined on a particular relation, then field N of that
// relation's descriptor will be NULL."
//
// Each extension supplies and interprets the contents of its own descriptor
// field; the common system only manages the composite. Descriptors are
// fetched from the catalog at query compilation time and embedded in bound
// plans, eliminating catalog access at run time.

#ifndef DMX_CATALOG_DESCRIPTOR_H_
#define DMX_CATALOG_DESCRIPTOR_H_

#include <array>
#include <string>

#include "src/types/schema.h"
#include "src/util/common.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dmx {

struct RelationDescriptor {
  RelationId id = kInvalidRelationId;
  std::string name;
  Schema schema;

  /// Header: the storage method identifier (procedure-vector index).
  SmId sm_id = 0;
  /// Field 0: the storage method's private descriptor encoding.
  std::string sm_desc;
  /// Field N: attachment type N's private descriptor (all instances of the
  /// type are encoded within the one field). Empty string = NULL = no
  /// instances of that type on this relation.
  std::array<std::string, kMaxAttachmentTypes> at_desc;

  /// Monotone version, bumped by every DDL change to this relation; bound
  /// plans record it to detect invalidation.
  uint64_t version = 1;

  bool HasAttachment(AtId at) const {
    return at < at_desc.size() && !at_desc[at].empty();
  }

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, RelationDescriptor* out);
};

}  // namespace dmx

#endif  // DMX_CATALOG_DESCRIPTOR_H_
