// Catalog: the common descriptor management facility.
//
// "Instead of requiring each relation storage or access path to store and
// access its own descriptor data, the common system will maintain and
// manage relation descriptors. Each extension supplies and interprets the
// contents of its own descriptor data, but the common system manages the
// composite relation descriptor."
//
// The catalog is loaded entirely at open; descriptors are handed to query
// compilation by value so plans never touch the catalog at run time.
// Persistence is an atomic whole-file rewrite (write temp + rename),
// performed when a DDL transaction commits.

#ifndef DMX_CATALOG_CATALOG_H_
#define DMX_CATALOG_CATALOG_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/descriptor.h"
#include "src/util/env.h"
#include "src/util/thread_annotations.h"

namespace dmx {

class Catalog {
 public:
  Catalog() = default;

  /// Load the catalog from `path` through `env` (Env::Default() when null;
  /// missing file = empty catalog).
  Status Load(const std::string& path, Env* env = nullptr);
  /// Atomically persist the current state (durable once OK).
  Status Save() const;

  /// Register a new relation; assigns descriptor->id. Fails if the name is
  /// taken. In-memory only; call Save at commit.
  Status AddRelation(RelationDescriptor desc, RelationId* id);

  /// Remove a relation from the name/id maps. Returns the removed
  /// descriptor so a drop can be restored if the transaction aborts.
  Status RemoveRelation(RelationId id, RelationDescriptor* removed);

  /// Restore a previously removed descriptor (DDL abort path).
  Status RestoreRelation(RelationDescriptor desc);

  /// Replace a relation's descriptor (attachment create/drop). Bumps the
  /// version so dependent plans invalidate. The previous descriptor object
  /// is retired, never mutated: readers that already hold its pointer (or
  /// Slices into its strings) keep a valid — if stale — snapshot.
  Status UpdateRelation(const RelationDescriptor& desc);

  /// Atomic read-modify-write of a relation's descriptor: `fn` receives a
  /// copy of the *current* descriptor under the catalog lock and returns
  /// whether it changed anything. On true the copy is installed (version
  /// bumped, old descriptor retired as in UpdateRelation); on false the
  /// call is a no-op. This is the safe way to flip quarantine state from
  /// paths that hold only a shared relation lock: concurrent mutators
  /// merge instead of overwriting each other's entries.
  Status MutateRelation(RelationId id,
                        const std::function<bool(RelationDescriptor&)>& fn);

  /// Rename a relation (storage-method migration swaps names). Bumps the
  /// version.
  Status RenameRelation(RelationId id, const std::string& new_name);

  /// Lookup by name / id. Returns a stable pointer owned by the catalog;
  /// valid until the relation is dropped, but frozen at the state it had
  /// when fetched — an Update/Mutate/Rename swaps in a fresh object, so
  /// re-Find after updating to observe the change. Copy the descriptor
  /// when embedding into a plan.
  const RelationDescriptor* Find(const std::string& name) const;
  const RelationDescriptor* Find(RelationId id) const;

  /// Current version of a relation, or 0 if dropped — the plan-validity
  /// check ("a uniform mechanism for recording the dependencies of
  /// execution plans on the relations they use").
  uint64_t VersionOf(RelationId id) const;

  std::vector<RelationId> AllRelationIds() const;

 private:
  mutable Mutex mu_;
  Env* env_ GUARDED_BY(mu_) = nullptr;
  std::string path_ GUARDED_BY(mu_);
  RelationId next_id_ GUARDED_BY(mu_) = 1;
  std::map<RelationId, std::unique_ptr<RelationDescriptor>> by_id_
      GUARDED_BY(mu_);
  std::map<std::string, RelationId> by_name_ GUARDED_BY(mu_);
  /// Superseded descriptors, kept alive so readers that fetched a pointer
  /// before an update never dangle. Bounded by the number of DDL /
  /// quarantine events in the process lifetime.
  std::vector<std::unique_ptr<RelationDescriptor>> retired_ GUARDED_BY(mu_);
};

}  // namespace dmx

#endif  // DMX_CATALOG_CATALOG_H_
