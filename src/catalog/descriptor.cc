#include "src/catalog/descriptor.h"

#include "src/util/coding.h"

namespace dmx {

void RelationDescriptor::EncodeTo(std::string* dst) const {
  PutFixed32(dst, id);
  PutLengthPrefixedSlice(dst, name);
  schema.EncodeTo(dst);
  PutFixed16(dst, sm_id);
  PutLengthPrefixedSlice(dst, sm_desc);
  // Sparse attachment fields: count, then (id, blob) pairs.
  uint32_t present = 0;
  for (const auto& d : at_desc) {
    if (!d.empty()) ++present;
  }
  PutVarint32(dst, present);
  for (size_t i = 0; i < at_desc.size(); ++i) {
    if (at_desc[i].empty()) continue;
    PutFixed16(dst, static_cast<uint16_t>(i));
    PutLengthPrefixedSlice(dst, at_desc[i]);
  }
  PutVarint64(dst, version);
  // Quarantine state (corruption containment).
  dst->push_back(sm_quarantined ? 1 : 0);
  PutLengthPrefixedSlice(dst, sm_quarantine_reason);
  PutVarint32(dst, static_cast<uint32_t>(quarantined.size()));
  for (const QuarantineEntry& q : quarantined) {
    PutFixed16(dst, q.at);
    PutVarint32(dst, q.instance);
    PutLengthPrefixedSlice(dst, q.reason);
  }
}

Status RelationDescriptor::DecodeFrom(Slice* input, RelationDescriptor* out) {
  uint32_t id;
  if (!GetFixed32(input, &id)) return Status::Corruption("descriptor id");
  out->id = id;
  Slice name;
  if (!GetLengthPrefixedSlice(input, &name)) {
    return Status::Corruption("descriptor name");
  }
  out->name = name.ToString();
  DMX_RETURN_IF_ERROR(Schema::DecodeFrom(input, &out->schema));
  if (input->size() < 2) return Status::Corruption("descriptor sm_id");
  out->sm_id = DecodeFixed16(input->data());
  input->remove_prefix(2);
  Slice sm_desc;
  if (!GetLengthPrefixedSlice(input, &sm_desc)) {
    return Status::Corruption("descriptor sm_desc");
  }
  out->sm_desc = sm_desc.ToString();
  uint32_t present;
  if (!GetVarint32(input, &present)) {
    return Status::Corruption("descriptor attachment count");
  }
  out->at_desc.fill("");
  for (uint32_t i = 0; i < present; ++i) {
    if (input->size() < 2) return Status::Corruption("attachment field id");
    uint16_t at = DecodeFixed16(input->data());
    input->remove_prefix(2);
    if (at >= out->at_desc.size()) {
      return Status::Corruption("attachment id out of range");
    }
    Slice blob;
    if (!GetLengthPrefixedSlice(input, &blob)) {
      return Status::Corruption("attachment descriptor blob");
    }
    out->at_desc[at] = blob.ToString();
  }
  uint64_t version;
  if (!GetVarint64(input, &version)) {
    return Status::Corruption("descriptor version");
  }
  out->version = version;
  if (input->empty()) return Status::Corruption("descriptor quarantine flag");
  out->sm_quarantined = (*input)[0] != 0;
  input->remove_prefix(1);
  Slice sm_reason;
  if (!GetLengthPrefixedSlice(input, &sm_reason)) {
    return Status::Corruption("descriptor quarantine reason");
  }
  out->sm_quarantine_reason = sm_reason.ToString();
  uint32_t nquarantined;
  if (!GetVarint32(input, &nquarantined)) {
    return Status::Corruption("descriptor quarantine count");
  }
  out->quarantined.clear();
  for (uint32_t i = 0; i < nquarantined; ++i) {
    QuarantineEntry q;
    if (input->size() < 2) return Status::Corruption("quarantine entry at");
    q.at = DecodeFixed16(input->data());
    input->remove_prefix(2);
    if (!GetVarint32(input, &q.instance)) {
      return Status::Corruption("quarantine entry instance");
    }
    Slice reason;
    if (!GetLengthPrefixedSlice(input, &reason)) {
      return Status::Corruption("quarantine entry reason");
    }
    q.reason = reason.ToString();
    out->quarantined.push_back(std::move(q));
  }
  return Status::OK();
}

}  // namespace dmx
