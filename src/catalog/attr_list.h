// AttrList: the attribute/value list carried by data-definition operations.
//
// The paper: "the data definition language of the DBMS has been extended to
// allow specification of a storage method or attachment type and an
// attribute / value list for extension-specific parameters. Storage method
// and attachment implementations supply generic operations to validate and
// process the attribute lists."

#ifndef DMX_CATALOG_ATTR_LIST_H_
#define DMX_CATALOG_ATTR_LIST_H_

#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace dmx {

/// Ordered attribute/value pairs, e.g. {("key_fields","id"),("unique","1")}.
class AttrList {
 public:
  AttrList() = default;
  AttrList(std::initializer_list<std::pair<std::string, std::string>> init)
      : attrs_(init.begin(), init.end()) {}

  void Add(std::string name, std::string value) {
    attrs_.emplace_back(std::move(name), std::move(value));
  }

  /// Value of the first attribute named `name`, or empty if absent.
  std::string Get(const std::string& name) const {
    for (const auto& [k, v] : attrs_) {
      if (k == name) return v;
    }
    return "";
  }

  bool Has(const std::string& name) const {
    for (const auto& [k, v] : attrs_) {
      if (k == name) return true;
    }
    return false;
  }

  /// All values for a repeated attribute, in order.
  std::vector<std::string> GetAll(const std::string& name) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : attrs_) {
      if (k == name) out.push_back(v);
    }
    return out;
  }

  /// Validation helper for extensions: fail on attributes outside `allowed`.
  Status CheckAllowed(const std::vector<std::string>& allowed) const {
    for (const auto& [k, v] : attrs_) {
      bool ok = false;
      for (const auto& a : allowed) {
        if (k == a) {
          ok = true;
          break;
        }
      }
      if (!ok) return Status::InvalidArgument("unknown attribute '" + k + "'");
    }
    return Status::OK();
  }

  size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace dmx

#endif  // DMX_CATALOG_ATTR_LIST_H_
