#include "src/catalog/catalog.h"

#include "src/util/coding.h"

namespace dmx {

Status Catalog::Load(const std::string& path, Env* env) {
  MutexLock lock(&mu_);
  env_ = env != nullptr ? env : Env::Default();
  path_ = path;
  std::string data;
  // Startup read before the catalog is shared; mu_ only guards against
  // a racing early Save.
  // deeplint: allow(blocking-under-lock, startup read precedes sharing)
  Status read = env_->ReadFileToString(path, &data);
  if (read.IsNotFound()) return Status::OK();  // fresh database
  DMX_RETURN_IF_ERROR(read);
  Slice s(data);
  uint32_t next_id, count;
  if (!GetFixed32(&s, &next_id) || !GetVarint32(&s, &count)) {
    return Status::Corruption("catalog header");
  }
  next_id_ = next_id;
  for (uint32_t i = 0; i < count; ++i) {
    auto desc = std::make_unique<RelationDescriptor>();
    DMX_RETURN_IF_ERROR(RelationDescriptor::DecodeFrom(&s, desc.get()));
    by_name_[desc->name] = desc->id;
    by_id_[desc->id] = std::move(desc);
  }
  return Status::OK();
}

Status Catalog::Save() const {
  MutexLock lock(&mu_);
  // Never opened (e.g. Database::Open failed before Catalog::Open and the
  // half-built Database's destructor flushes): nothing to save.
  if (env_ == nullptr) return Status::OK();
  std::string data;
  PutFixed32(&data, next_id_);
  PutVarint32(&data, static_cast<uint32_t>(by_id_.size()));
  for (const auto& [id, desc] : by_id_) {
    desc->EncodeTo(&data);
  }
  // Rename order must match snapshot order: two unlocked Saves could
  // land their renames newest-first.
  // deeplint: allow(blocking-under-lock, rename order must match mu_)
  return env_->WriteFileAtomic(path_, data);
}

Status Catalog::AddRelation(RelationDescriptor desc, RelationId* id) {
  MutexLock lock(&mu_);
  if (by_name_.contains(desc.name)) {
    return Status::InvalidArgument("relation '" + desc.name +
                                   "' already exists");
  }
  desc.id = next_id_++;
  desc.version = 1;
  *id = desc.id;
  by_name_[desc.name] = desc.id;
  by_id_[desc.id] = std::make_unique<RelationDescriptor>(std::move(desc));
  return Status::OK();
}

Status Catalog::RemoveRelation(RelationId id, RelationDescriptor* removed) {
  MutexLock lock(&mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("relation id " + std::to_string(id));
  }
  if (removed) *removed = *it->second;
  by_name_.erase(it->second->name);
  by_id_.erase(it);
  return Status::OK();
}

Status Catalog::RestoreRelation(RelationDescriptor desc) {
  MutexLock lock(&mu_);
  if (by_id_.contains(desc.id) || by_name_.contains(desc.name)) {
    return Status::InvalidArgument("restore collides");
  }
  by_name_[desc.name] = desc.id;
  RelationId id = desc.id;
  by_id_[id] = std::make_unique<RelationDescriptor>(std::move(desc));
  return Status::OK();
}

Status Catalog::UpdateRelation(const RelationDescriptor& desc) {
  MutexLock lock(&mu_);
  auto it = by_id_.find(desc.id);
  if (it == by_id_.end()) {
    return Status::NotFound("relation id " + std::to_string(desc.id));
  }
  // Copy-on-write: retire the old object instead of assigning over it, so
  // readers holding its pointer (or Slices into its strings) never race
  // with the replacement.
  auto fresh = std::make_unique<RelationDescriptor>(desc);
  fresh->version = it->second->version + 1;
  retired_.push_back(std::move(it->second));
  it->second = std::move(fresh);
  return Status::OK();
}

Status Catalog::MutateRelation(
    RelationId id, const std::function<bool(RelationDescriptor&)>& fn) {
  MutexLock lock(&mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("relation id " + std::to_string(id));
  }
  auto fresh = std::make_unique<RelationDescriptor>(*it->second);
  if (!fn(*fresh)) return Status::OK();
  ++fresh->version;
  retired_.push_back(std::move(it->second));
  it->second = std::move(fresh);
  return Status::OK();
}

Status Catalog::RenameRelation(RelationId id, const std::string& new_name) {
  MutexLock lock(&mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("relation id " + std::to_string(id));
  }
  if (by_name_.contains(new_name)) {
    return Status::InvalidArgument("relation '" + new_name +
                                   "' already exists");
  }
  auto fresh = std::make_unique<RelationDescriptor>(*it->second);
  fresh->name = new_name;
  ++fresh->version;
  by_name_.erase(it->second->name);
  retired_.push_back(std::move(it->second));
  it->second = std::move(fresh);
  by_name_[new_name] = id;
  return Status::OK();
}

const RelationDescriptor* Catalog::Find(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return by_id_.at(it->second).get();
}

const RelationDescriptor* Catalog::Find(RelationId id) const {
  MutexLock lock(&mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second.get();
}

uint64_t Catalog::VersionOf(RelationId id) const {
  MutexLock lock(&mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? 0 : it->second->version;
}

std::vector<RelationId> Catalog::AllRelationIds() const {
  MutexLock lock(&mu_);
  std::vector<RelationId> out;
  out.reserve(by_id_.size());
  for (const auto& [id, desc] : by_id_) out.push_back(id);
  return out;
}

}  // namespace dmx
