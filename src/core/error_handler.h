// ErrorHandler: the database-wide fault taxonomy, the degraded read-only
// mode state machine, and the background auto-recovery thread.
//
// Every I/O failure is classified at the Env/WAL/PageFile boundary (the
// only layers allowed to construct IOError — see tools/dmx_lint.py
// raw-ioerror) into one of three classes:
//
//   * transient-retryable — the same call may succeed if repeated (ENOSPC
//     that clears, EAGAIN, injected transient faults). The RetryingEnv
//     absorbs short bursts with bounded backoff; what outlives the retry
//     budget reaches this handler.
//   * transient-fatal-to-op — the operation fails and its transaction must
//     abort, but the database itself is not suspect (e.g. a foreign server
//     that is unreachable).
//   * hard — evidence of data damage (CRC mismatch → kCorruption). These
//     keep routing to the PR 4 quarantine machinery and never trip
//     degraded mode: refusing all writes would not make damaged bytes any
//     safer, and quarantine already fences the damaged component.
//
// State machine (full diagram in DESIGN.md §11):
//
//   kHealthy --ReportWriteFailure(IOError on WAL force / checkpoint)-->
//   kDegraded --recover_fn() succeeds--> kHealthy
//
// While degraded: CheckWritable() returns a descriptive Busy (the Database
// gates every write and DDL path on it), reads and read-only commits keep
// serving, and the recovery thread retries recover_fn() with exponential
// backoff until the fault clears or Stop(). The transition is visible as
// the `db.degraded` gauge, in DESCRIBE output, and to test listeners.

#ifndef DMX_CORE_ERROR_HANDLER_H_
#define DMX_CORE_ERROR_HANDLER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "src/util/metrics.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace dmx {

/// The error taxonomy (tentpole contract; see file comment).
enum class FaultClass : uint8_t {
  kTransientRetryable,
  kTransientFatalToOp,
  kHard,
};

class ErrorHandler {
 public:
  struct Options {
    /// Backoff between background recovery attempts; doubles per failure
    /// from initial to max. Tests shrink these to keep the torture cycle
    /// fast.
    uint64_t initial_backoff_ms = 10;
    uint64_t max_backoff_ms = 1000;
  };

  /// Repairs the fault and probes the write path; OK means full service
  /// can resume. Runs on the recovery thread with no ErrorHandler lock
  /// held.
  using RecoverFn = std::function<Status()>;

  /// Test hook fired after every recovery attempt (success flag, 1-based
  /// attempt number within the current outage). Called with no lock held.
  using RecoveryListener = std::function<void(bool success, uint64_t attempt)>;

  ErrorHandler();  // default Options
  explicit ErrorHandler(Options opts);
  ~ErrorHandler();  // stops the recovery thread

  ErrorHandler(const ErrorHandler&) = delete;
  ErrorHandler& operator=(const ErrorHandler&) = delete;

  /// Classify a non-OK status per the taxonomy above.
  static FaultClass Classify(const Status& s);

  /// Install the recovery callback, then start the background thread.
  /// Without Start() the handler still tracks degraded state (benches and
  /// unit tests exercise the gate without a thread).
  void SetRecoverFn(RecoverFn fn) { recover_ = std::move(fn); }
  void Start();
  /// Idempotent; joins the recovery thread.
  void Stop();

  /// Lock-free fast path for the write gates: one relaxed-ish load when
  /// healthy.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  /// OK when healthy; a descriptive Busy naming the failing operation and
  /// its root cause while degraded.
  Status CheckWritable() const;

  /// Where/why of the current outage ("" when healthy).
  std::string degraded_reason() const;

  /// A WAL force, checkpoint, or relation-modification write path failed
  /// with `cause`. Hard faults (kCorruption) and non-I/O statuses are
  /// ignored — they are the quarantine machinery's and the caller's
  /// business; an IOError enters degraded mode and wakes the recovery
  /// thread.
  void ReportWriteFailure(const std::string& where, const Status& cause);

  void SetRecoveryListener(RecoveryListener l);

  /// Block until the handler leaves degraded mode; false on timeout.
  bool WaitUntilHealthy(std::chrono::milliseconds timeout);

 private:
  void RecoveryLoop();

  const Options opts_;
  RecoverFn recover_;  // set before Start(), then read-only

  std::atomic<bool> degraded_{false};
  mutable Mutex mu_;
  CondVar cv_{&mu_};  // recovery thread + WaitUntilHealthy waiters
  bool stop_ GUARDED_BY(mu_) = false;
  bool started_ GUARDED_BY(mu_) = false;
  std::string reason_ GUARDED_BY(mu_);
  Status cause_ GUARDED_BY(mu_);
  uint64_t attempt_ GUARDED_BY(mu_) = 0;  // within the current outage
  RecoveryListener listener_ GUARDED_BY(mu_);
  std::thread thread_;

  // Registry metrics: db.degraded is a 0/1 gauge (Reset/Increment),
  // db.degraded_entries counts outages, recovery.* count the thread's
  // probe attempts and the ones that restored service.
  Counter* metric_degraded_;
  Counter* metric_degraded_entries_;
  Counter* metric_attempts_;
  Counter* metric_successes_;
};

}  // namespace dmx

#endif  // DMX_CORE_ERROR_HANDLER_H_
