// Online backup manifest and offline verification, shared by
// Database::Backup, Database::Restore, and the dmx_backup_verify tool.
//
// A backup directory holds a fuzzy copy of the page file, the catalog,
// storage-method snapshots, every retained WAL segment, the live log's
// durable prefix, and — written last, atomically — a MANIFEST:
//
//   dmx-backup-manifest v1
//   begin_lsn <n>
//   end_lsn <n>
//   pages <n>
//   file <name> <size> <crc32c-hex>
//   ...
//   crc <crc32c-hex>
//
// `begin_lsn` is where WAL replay can start (the head of the captured
// chain); `end_lsn` is the backup's consistency point — every page-copy
// byte is explained by WAL at or below it, so restore must replay at least
// through it. The trailing `crc` covers every preceding byte of the
// manifest, and the manifest is the commit point of the whole backup: a
// crash mid-backup leaves a directory without a (valid) manifest, which
// restore and the verifier refuse — an interrupted backup can never be
// mistaken for a complete one.

#ifndef DMX_CORE_BACKUP_H_
#define DMX_CORE_BACKUP_H_

#include <string>
#include <vector>

#include "src/util/common.h"
#include "src/util/env.h"
#include "src/util/status.h"

namespace dmx {

/// Name of the manifest file inside a backup directory.
inline constexpr char kBackupManifestName[] = "MANIFEST";

struct BackupManifest {
  struct FileEntry {
    std::string name;  // relative to the backup directory
    uint64_t size = 0;
    uint32_t crc = 0;  // CRC32C of the file's bytes
  };

  Lsn begin_lsn = 0;
  Lsn end_lsn = 0;
  uint32_t pages = 0;
  std::vector<FileEntry> files;
};

/// Serialize `m`, including the trailing self-checksum line.
std::string EncodeBackupManifest(const BackupManifest& m);

/// Parse and verify a serialized manifest. InvalidArgument on malformed
/// input, Corruption on a checksum mismatch (torn or tampered manifest).
Status ParseBackupManifest(const std::string& data, BackupManifest* out);

/// Read and parse `<dir>/MANIFEST`. A missing manifest is reported as
/// InvalidArgument ("not a backup, or an interrupted one").
Status LoadBackupManifest(Env* env, const std::string& dir,
                          BackupManifest* out);

/// Full offline verification of a backup directory: manifest self-check,
/// every listed file present with the recorded size and CRC32C, structural
/// verification of each WAL segment and of the live log copy, and
/// contiguity of the captured WAL chain through the backup's end LSN.
/// `report` (optional) receives one human-readable line per check.
Status VerifyBackupDir(Env* env, const std::string& dir, std::string* report);

}  // namespace dmx

#endif  // DMX_CORE_BACKUP_H_
