#include "src/core/authorization.h"

namespace dmx {

void AuthorizationManager::Grant(const std::string& user, RelationId rel,
                                 uint8_t privileges) {
  MutexLock lock(&mu_);
  enabled_ = true;
  grants_[{user, rel}] |= privileges;
}

void AuthorizationManager::Revoke(const std::string& user, RelationId rel,
                                  uint8_t privileges) {
  MutexLock lock(&mu_);
  auto it = grants_.find({user, rel});
  if (it == grants_.end()) return;
  it->second &= static_cast<uint8_t>(~privileges);
  if (it->second == 0) grants_.erase(it);
}

void AuthorizationManager::Clear(RelationId rel) {
  MutexLock lock(&mu_);
  for (auto it = grants_.begin(); it != grants_.end();) {
    if (it->first.second == rel) {
      it = grants_.erase(it);
    } else {
      ++it;
    }
  }
}

Status AuthorizationManager::Check(const std::string& user, RelationId rel,
                                   Privilege needed) const {
  MutexLock lock(&mu_);
  if (!enabled_ || user.empty()) return Status::OK();
  auto it = grants_.find({user, rel});
  if (it != grants_.end() &&
      (it->second & static_cast<uint8_t>(needed)) != 0) {
    return Status::OK();
  }
  return Status::Constraint("user '" + user + "' lacks " +
                            PrivilegeName(needed) + " on relation " +
                            std::to_string(rel));
}

}  // namespace dmx
