#include "src/core/scan_manager.h"

namespace dmx {

ManagedScan::ManagedScan(ScanManager* mgr, Transaction* txn,
                         std::unique_ptr<Scan> inner)
    : mgr_(mgr), txn_id_(txn->id()), inner_(std::move(inner)) {
  mgr_->Register(txn_id_, this);
}

ManagedScan::~ManagedScan() { mgr_->Deregister(txn_id_, this); }

Status ManagedScan::Next(ScanItem* out) {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Aborted("scan closed at transaction termination");
  }
  return inner_->Next(out);
}

Status ManagedScan::SavePosition(std::string* out) const {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Aborted("scan closed");
  }
  return inner_->SavePosition(out);
}

Status ManagedScan::RestorePosition(const Slice& pos) {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Aborted("scan closed");
  }
  return inner_->RestorePosition(pos);
}

void ScanManager::Register(TxnId txn, ManagedScan* scan) {
  MutexLock lock(&mu_);
  open_[txn].insert(scan);
}

void ScanManager::Deregister(TxnId txn, ManagedScan* scan) {
  MutexLock lock(&mu_);
  auto it = open_.find(txn);
  if (it != open_.end()) {
    it->second.erase(scan);
    if (it->second.empty()) open_.erase(it);
  }
  // Drop any saved positions referencing this scan.
  for (auto& [key, positions] : saved_) positions.erase(scan);
}

void ScanManager::OnTransactionEnd(Transaction* txn, bool /*committed*/) {
  MutexLock lock(&mu_);
  auto it = open_.find(txn->id());
  if (it != open_.end()) {
    // Close (do not destroy: the user still owns the object).
    for (ManagedScan* scan : it->second) {
      scan->closed_.store(true, std::memory_order_release);
    }
    open_.erase(it);
  }
  // Saved positions die with the transaction.
  for (auto sit = saved_.begin(); sit != saved_.end();) {
    if (sit->first.first == txn->id()) {
      sit = saved_.erase(sit);
    } else {
      ++sit;
    }
  }
}

void ScanManager::OnSavepoint(Transaction* txn, const std::string& name) {
  MutexLock lock(&mu_);
  auto& positions = saved_[{txn->id(), name}];
  positions.clear();
  auto it = open_.find(txn->id());
  if (it == open_.end()) return;
  for (ManagedScan* scan : it->second) {
    std::string pos;
    if (scan->inner_->SavePosition(&pos).ok()) positions[scan] = pos;
  }
}

void ScanManager::OnPartialRollback(Transaction* txn,
                                    const std::string& name) {
  MutexLock lock(&mu_);
  auto sit = saved_.find({txn->id(), name});
  if (sit == saved_.end()) return;
  for (auto& [scan, pos] : sit->second) {
    // A scan that cannot re-establish its saved position would keep
    // serving rows relative to the rolled-back state; close it so the
    // owner sees kAborted instead of wrong answers.
    if (!scan->inner_->RestorePosition(Slice(pos)).ok()) {
      scan->closed_.store(true, std::memory_order_release);
    }
  }
  // Positions are retained: the savepoint itself survives the rollback.
}

size_t ScanManager::OpenScanCount(TxnId txn) const {
  MutexLock lock(&mu_);
  auto it = open_.find(txn);
  return it == open_.end() ? 0 : it->second.size();
}

}  // namespace dmx
