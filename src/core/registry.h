// ExtensionRegistry: the procedure vectors.
//
// "For each generic operation on stored relations, there is a vector of
// procedures with an entry for each relation storage method. For generic
// operations on attachments, there is a vector of procedures with an entry
// for each attachment type... Storage method and attachment internal
// identifiers are small integers that serve as indexes into the vectors of
// procedures. This approach makes the activation of the appropriate
// extension quite efficient."
//
// Registration happens "at the factory": extensions are compiled and linked
// into the binary and install their operation tables at database startup.
// Identifiers are assigned in registration order; the registry is frozen
// before transactions run, so dispatch needs no synchronization.

#ifndef DMX_CORE_REGISTRY_H_
#define DMX_CORE_REGISTRY_H_

#include <string>
#include <vector>

#include "src/core/extension.h"

namespace dmx {

class ExtensionRegistry {
 public:
  ExtensionRegistry() = default;

  /// Install a storage method's entry points; returns its SmId (its index
  /// in the storage-method procedure vectors).
  SmId RegisterStorageMethod(const SmOps& ops);

  /// Install an attachment type's entry points; returns its AtId (its
  /// procedure-vector index *and* its relation-descriptor field number).
  AtId RegisterAttachmentType(const AtOps& ops);

  /// O(1) dispatch: index the vector with the identifier from the relation
  /// descriptor.
  const SmOps& sm_ops(SmId id) const { return sm_ops_[id]; }
  const AtOps& at_ops(AtId id) const { return at_ops_[id]; }

  size_t num_storage_methods() const { return sm_ops_.size(); }
  size_t num_attachment_types() const { return at_ops_.size(); }

  /// Name lookup, used only by DDL parsing (never on data paths).
  int FindStorageMethod(const std::string& name) const;
  int FindAttachmentType(const std::string& name) const;

 private:
  std::vector<SmOps> sm_ops_;
  std::vector<AtOps> at_ops_;
};

}  // namespace dmx

#endif  // DMX_CORE_REGISTRY_H_
