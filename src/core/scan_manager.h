// ScanManager: common service coordinating key-sequential access positions
// with transaction events.
//
// The paper: "all key-sequential accesses must be terminated at transaction
// termination... A common service facility will notify all storage methods
// and attachments which used key-sequential accesses during the transaction
// when the transaction completes so that they can clean up (i.e., close)
// any open scans." And for partial rollback: "when a transaction rollback
// point is established, the storage methods and attachments are driven by
// the system to obtain their key-sequential access positions. The scan
// positions are retained until the rollback point is canceled or until they
// are used to restore the key-sequential positions following a partial
// rollback." (Scan moves are not logged, for performance — hence the
// save/restore protocol.)

#ifndef DMX_CORE_SCAN_MANAGER_H_
#define DMX_CORE_SCAN_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>

#include "src/core/extension.h"
#include "src/txn/transaction_manager.h"
#include "src/util/thread_annotations.h"

namespace dmx {

class ScanManager;

/// Wrapper handed to users by Database::OpenScan. Forwards to the
/// extension's scan; refuses further access once the owning transaction has
/// terminated (the manager closes it); deregisters itself on destruction.
class ManagedScan : public Scan {
 public:
  ManagedScan(ScanManager* mgr, Transaction* txn,
              std::unique_ptr<Scan> inner);
  ~ManagedScan() override;

  Status Next(ScanItem* out) override;
  Status SavePosition(std::string* out) const override;
  Status RestorePosition(const Slice& pos) override;

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  friend class ScanManager;
  ScanManager* mgr_;
  // Id, not Transaction*: the scan object may legally outlive its
  // transaction (the user still owns it after commit), so the destructor
  // must not dereference the transaction.
  TxnId txn_id_;
  std::unique_ptr<Scan> inner_;
  // Atomic, not GUARDED_BY the manager's mutex: the owning thread reads it
  // on every Next() while the transaction manager may set it concurrently
  // at transaction end.
  std::atomic<bool> closed_{false};
};

class ScanManager : public TxnObserver {
 public:
  // TxnObserver:
  void OnTransactionEnd(Transaction* txn, bool committed) override;
  void OnSavepoint(Transaction* txn, const std::string& name) override;
  void OnPartialRollback(Transaction* txn, const std::string& name) override;

  /// Number of open scans for `txn` (tests).
  size_t OpenScanCount(TxnId txn) const;

 private:
  friend class ManagedScan;

  void Register(TxnId txn, ManagedScan* scan);
  void Deregister(TxnId txn, ManagedScan* scan);

  mutable Mutex mu_;
  std::map<TxnId, std::set<ManagedScan*>> open_ GUARDED_BY(mu_);
  // Saved positions: (txn, savepoint) -> scan -> encoded position.
  std::map<std::pair<TxnId, std::string>, std::map<ManagedScan*, std::string>>
      saved_ GUARDED_BY(mu_);
};

}  // namespace dmx

#endif  // DMX_CORE_SCAN_MANAGER_H_
