// Registration of the built-in extensions — the "at the factory" step.
//
// Identifiers are assigned in registration order; note that the temporary
// storage method receives internal identifier 1, matching the paper's
// worked example ("the base database system has a storage method for
// implementing temporary relations and that storage method is assigned the
// internal identifier 1").

#include "src/attach/btree_index.h"
#include "src/attach/check_constraint.h"
#include "src/attach/deferred_check.h"
#include "src/attach/hash_index.h"
#include "src/attach/join_index.h"
#include "src/attach/ref_integrity.h"
#include "src/attach/rtree_index.h"
#include "src/attach/stats.h"
#include "src/attach/trigger.h"
#include "src/attach/unique_constraint.h"
#include "src/core/database.h"
#include "src/sm/appendonly.h"
#include "src/sm/btree_sm.h"
#include "src/sm/foreign.h"
#include "src/sm/heap.h"
#include "src/sm/memory.h"

namespace dmx {

void RegisterBuiltinExtensions(ExtensionRegistry* registry) {
  // Storage methods: heap = 0, temp = 1 (as in the paper), ...
  registry->RegisterStorageMethod(HeapStorageMethodOps());
  registry->RegisterStorageMethod(TempStorageMethodOps());
  registry->RegisterStorageMethod(MainMemoryStorageMethodOps());
  registry->RegisterStorageMethod(BTreeStorageMethodOps());
  registry->RegisterStorageMethod(AppendOnlyStorageMethodOps());
  registry->RegisterStorageMethod(ForeignStorageMethodOps());

  // Attachment types (identifier = relation-descriptor field number).
  registry->RegisterAttachmentType(BTreeIndexOps());
  registry->RegisterAttachmentType(HashIndexOps());
  registry->RegisterAttachmentType(RTreeIndexOps());
  registry->RegisterAttachmentType(CheckConstraintOps());
  registry->RegisterAttachmentType(UniqueConstraintOps());
  registry->RegisterAttachmentType(RefIntegrityOps());
  registry->RegisterAttachmentType(TriggerOps());
  registry->RegisterAttachmentType(JoinIndexOps());
  registry->RegisterAttachmentType(StatsOps());
  registry->RegisterAttachmentType(DeferredCheckOps());
}

}  // namespace dmx
