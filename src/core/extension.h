// The generic abstractions of the data management extension architecture.
//
// Two extension families, exactly as the paper defines them:
//
//   * Storage methods (SmOps) — alternative implementations of relation
//     storage. "A storage method implementation must support a well-defined
//     set of relation operations such as delete, insert, destroy relation,
//     and estimate access costs... must define the notion of a record key
//     and support direct-by-key and key-sequential record accesses."
//
//   * Attachments (AtOps) — access paths, integrity constraints, and
//     triggers. "Attachment modification interfaces are invoked only as
//     side effects of modification operations on relations... Any
//     attachment can abort the relation operation."
//
// Implementations register their operation tables with the
// ExtensionRegistry (registry.h); dispatch happens by indexing vectors of
// entry points with the small-integer extension identifiers stored in the
// relation descriptor.
//
// Entry points are plain function pointers (not virtual members) to mirror
// the paper's "vector of addresses for the procedures that implement the
// corresponding operation". Per-relation runtime state is opaque
// (void*-style, owned via the open/close pair); descriptors carry all
// persistent extension metadata.

#ifndef DMX_CORE_EXTENSION_H_
#define DMX_CORE_EXTENSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/catalog/attr_list.h"
#include "src/catalog/descriptor.h"
#include "src/expr/expr.h"
#include "src/types/record.h"
#include "src/txn/transaction.h"
#include "src/util/common.h"
#include "src/wal/log_record.h"

namespace dmx {

class Database;

/// Opaque per-relation extension runtime state. Extensions subclass this;
/// the core owns instances and destroys them via the virtual destructor.
class ExtState {
 public:
  virtual ~ExtState() = default;
};

/// Execution context for a storage-method entry point.
struct SmContext {
  Database* db = nullptr;
  Transaction* txn = nullptr;  // null during restart redo/undo dispatch
  const RelationDescriptor* desc = nullptr;
  ExtState* state = nullptr;
};

/// Execution context for an attachment entry point.
struct AtContext {
  Database* db = nullptr;
  Transaction* txn = nullptr;  // null during restart redo/undo dispatch
  const RelationDescriptor* desc = nullptr;
  AtId at_id = 0;
  ExtState* state = nullptr;
  /// This attachment type's field of the relation descriptor.
  Slice at_desc;
};

/// Cost estimate returned to the query planner. "Given a list of 'eligible'
/// predicates supplied by the query planner, the storage method or access
/// attachment can determine the 'relevance' of the predicates to the access
/// path instance and then estimate the I/O and CPU costs."
struct AccessCost {
  bool usable = false;      // can this path serve the access at all?
  double io_cost = 0;       // estimated page reads
  double cpu_cost = 0;      // estimated per-record work
  double selectivity = 1.0; // fraction of the relation expected to qualify
  /// Portion of io_cost attributable to fetching qualifying records from
  /// the storage method; the planner subtracts it when an index-only
  /// access can answer from the access-path key alone.
  double fetch_cost = 0;
  /// Indexes (into the eligible-predicate list) of predicates this path
  /// evaluates itself; the executor need not re-check them.
  std::vector<int> handled_predicates;

  double total() const { return io_cost + cpu_cost; }
};

/// Parameters of a key-sequential or direct access.
struct ScanSpec {
  /// Optional key range in the extension's own key encoding. Unset bounds
  /// are open.
  std::optional<std::string> low_key;
  bool low_inclusive = true;
  std::optional<std::string> high_key;
  bool high_inclusive = true;

  /// Filter predicate evaluated by the extension against records still in
  /// its buffer pool (common predicate-evaluation service). May be null.
  ExprPtr filter;

  /// Fields the caller needs (projection pushdown); empty = all.
  std::vector<int> fields;

  /// Opaque partition descriptor produced by the same storage method's
  /// `partition_scan` and interpreted only by it (e.g. a page-chain
  /// segment for heaps). Unset = scan the whole key range. Callers never
  /// construct these; they pass back what partition_scan returned.
  std::optional<std::string> partition;
};

/// One item returned by a scan.
struct ScanItem {
  /// The storage-method record key (for access-path scans this is the
  /// *mapped* record key, used to fetch the record from the storage
  /// method).
  std::string record_key;
  /// Zero-copy view of the record, valid only until the next Next()/close;
  /// invalid() for access-path scans that return keys only.
  RecordView view;
  /// For access-path scans: the access-path key of the entry (e.g. the
  /// encoded index key). Enables index-only access — "some access path
  /// attachments may be able to return record fields when the access path
  /// key is a multi-field value".
  std::string access_key;
};

/// A key-sequential access. "A scan may be on, after, or before an item...
/// If an item at the scan position is deleted, the scan will be positioned
/// just after the deleted item. Key-sequential access operations always
/// access the next item after the current scan position."
///
/// Implementations realize those semantics by keying the position on the
/// last-returned item's ordering value, so deletions at the position
/// naturally leave the scan "just after" it.
class Scan {
 public:
  virtual ~Scan() = default;

  /// Advance to and return the next item after the current position.
  /// Returns NotFound at end of scan.
  virtual Status Next(ScanItem* out) = 0;

  /// Serialize the current position (savepoint support: "the storage
  /// methods and attachments are driven by the system to obtain their
  /// key-sequential access positions").
  virtual Status SavePosition(std::string* out) const = 0;

  /// Restore a previously saved position after a partial rollback.
  virtual Status RestorePosition(const Slice& pos) = 0;
};

/// Findings of a consistency sweep (SmOps::verify / AtOps::verify).
/// Implementations record structural damage as problems instead of
/// returning kCorruption: a verify pass must survey the whole structure,
/// not stop at the first bad page.
struct VerifyReport {
  /// Human-readable findings; empty = structure is consistent.
  std::vector<std::string> problems;
  /// Items inspected (records, index entries) — for progress/metrics.
  uint64_t items = 0;

  void Problem(std::string p) { problems.push_back(std::move(p)); }
  bool clean() const { return problems.empty(); }
};

/// Storage method operation vector ("generic operations ... must be
/// provided in order to add a new storage method to the system").
struct SmOps {
  const char* name = nullptr;

  /// DDL: validate the CREATE attribute list and produce the initial
  /// storage-method descriptor encoding (no storage built yet).
  Status (*validate)(const Schema& schema, const AttrList& attrs,
                     std::string* sm_desc) = nullptr;

  /// DDL: build initial storage for a new relation instance. May rewrite
  /// *sm_desc (e.g. to record an allocated anchor page).
  Status (*create)(SmContext& ctx, std::string* sm_desc) = nullptr;

  /// DDL: release all storage (invoked as a deferred action at commit of
  /// the dropping transaction).
  Status (*drop)(SmContext& ctx) = nullptr;

  /// Derive runtime state from the descriptor (file handles, cached
  /// anchors). Called when the relation is first touched after open/DDL.
  Status (*open)(SmContext& ctx, std::unique_ptr<ExtState>* state) = nullptr;

  /// Relation modification. Implementations log their changes through the
  /// common log so the recovery driver can undo/redo them.
  Status (*insert)(SmContext& ctx, const Slice& record,
                   std::string* record_key) = nullptr;
  /// Update may move the record; the (possibly changed) key is returned in
  /// *new_key ("the old record and record key will be used to determine
  /// which key to delete ... the new record and record key ... form the key
  /// to be inserted").
  Status (*update)(SmContext& ctx, const Slice& record_key,
                   const Slice& old_record, const Slice& new_record,
                   std::string* new_key) = nullptr;
  Status (*erase)(SmContext& ctx, const Slice& record_key,
                  const Slice& old_record) = nullptr;

  /// Direct-by-key access: selected fields (here: whole record image) of
  /// the record with `record_key`.
  Status (*fetch)(SmContext& ctx, const Slice& record_key,
                  std::string* record) = nullptr;

  /// Key-sequential access over the stored relation.
  Status (*open_scan)(SmContext& ctx, const ScanSpec& spec,
                      std::unique_ptr<Scan>* scan) = nullptr;

  /// Optional intra-query parallelism hook: split `spec` into up to
  /// `target` disjoint sub-specs whose scans together return exactly the
  /// records of a serial scan of `spec` (each record in exactly one
  /// partition; no cross-partition ordering promised). A method that
  /// cannot partition the given spec returns OK with a single element
  /// (the caller falls back to a serial scan). Null = the method never
  /// partitions; every scan is serial. Implementations encode any
  /// physical placement hints in ScanSpec::partition.
  Status (*partition_scan)(SmContext& ctx, const ScanSpec& spec, int target,
                           std::vector<ScanSpec>* partitions) = nullptr;

  /// Planner support: cost of scanning via this storage method given the
  /// eligible predicates.
  Status (*cost)(SmContext& ctx, const std::vector<ExprPtr>& predicates,
                 AccessCost* out) = nullptr;

  /// Recovery: reverse / reapply one logged action of this storage method.
  /// `apply_lsn` stamps any page images touched (CLR LSN for undo).
  Status (*undo)(SmContext& ctx, const LogRecord& rec, Lsn apply_lsn) = nullptr;
  Status (*redo)(SmContext& ctx, const LogRecord& rec, Lsn apply_lsn) = nullptr;

  /// Approximate record count for costing (0 if unknown).
  Status (*count)(SmContext& ctx, uint64_t* records) = nullptr;

  /// Checkpoint hook: make the current committed state durable without the
  /// log (page-based methods are covered by the buffer-pool flush; memory-
  /// resident methods snapshot their state, enabling log truncation).
  /// Null = nothing to do.
  Status (*checkpoint)(SmContext& ctx) = nullptr;

  /// Consistency sweep over the stored relation (CHECK): walk the physical
  /// structure — page chains, slot directories, tree invariants — and
  /// record every inconsistency in `report`. Internal kCorruption from
  /// page reads is recorded as a problem, not propagated; a non-OK return
  /// means the sweep itself could not run. Null = no structural check.
  Status (*verify)(SmContext& ctx, VerifyReport* report) = nullptr;
};

/// Attachment operation vector. The modification hooks (`on_*`) are the
/// paper's procedurally attached, indirect operations: invoked once per
/// attachment *type* per relation modification, servicing every instance of
/// the type on that relation; any may veto (Status::Veto / ::Constraint).
struct AtOps {
  const char* name = nullptr;

  /// DDL: validate CREATE attributes for a new instance and merge it into
  /// the (possibly empty) existing type descriptor, producing the new
  /// field-N encoding. `instance_no` receives the new instance's number.
  Status (*create_instance)(AtContext& ctx, const AttrList& attrs,
                            std::string* new_desc,
                            uint32_t* instance_no) = nullptr;

  /// DDL: remove instance `instance_no` from the type descriptor. Storage
  /// release is deferred to commit via `release_instance`.
  Status (*drop_instance)(AtContext& ctx, uint32_t instance_no,
                          std::string* new_desc) = nullptr;

  /// Deferred storage release for a dropped instance (or all instances
  /// when the relation is dropped: instance_no = UINT32_MAX).
  Status (*release_instance)(AtContext& ctx, uint32_t instance_no) = nullptr;

  /// Runtime state lifecycle (parse descriptor, open auxiliary storage).
  Status (*open)(AtContext& ctx, std::unique_ptr<ExtState>* state) = nullptr;

  /// Attached procedures: side effects of relation modification. The old
  /// record value is available on updates and deletes, the new value on
  /// updates and inserts, and the record key on all (paper, Mechanisms).
  Status (*on_insert)(AtContext& ctx, const Slice& record_key,
                      const Slice& new_record) = nullptr;
  Status (*on_update)(AtContext& ctx, const Slice& old_key,
                      const Slice& new_key, const Slice& old_record,
                      const Slice& new_record) = nullptr;
  Status (*on_delete)(AtContext& ctx, const Slice& record_key,
                      const Slice& old_record) = nullptr;

  /// Access-path interface (null for pure constraints/triggers). Scans
  /// yield storage-method record keys; "access path zero is interpreted as
  /// an access to the storage method" (selection happens in the core).
  Status (*open_scan)(AtContext& ctx, uint32_t instance_no,
                      const ScanSpec& spec,
                      std::unique_ptr<Scan>* scan) = nullptr;

  /// Direct-by-key probe: map an access-path key to record keys.
  Status (*lookup)(AtContext& ctx, uint32_t instance_no, const Slice& key,
                   std::vector<std::string>* record_keys) = nullptr;

  /// Planner support for access-path selection.
  Status (*cost)(AtContext& ctx, uint32_t instance_no,
                 const std::vector<ExprPtr>& predicates,
                 AccessCost* out) = nullptr;

  /// Recovery dispatch, as for storage methods.
  Status (*undo)(AtContext& ctx, const LogRecord& rec, Lsn apply_lsn) = nullptr;
  Status (*redo)(AtContext& ctx, const LogRecord& rec, Lsn apply_lsn) = nullptr;

  /// Rebuild derived in-memory structures from the base relation after
  /// restart (extensions exercising the paper's "wide latitude in the
  /// selection of recovery techniques" by rebuilding instead of paged
  /// redo). Null if not needed.
  Status (*rebuild)(AtContext& ctx) = nullptr;

  /// Number of instances encoded in a type descriptor (for iteration).
  uint32_t (*instance_count)(const Slice& at_desc) = nullptr;

  /// Enumerate the instance numbers in a type descriptor (the query
  /// planner probes each as a candidate access path). Null = attachment is
  /// never an access path.
  Status (*list_instances)(const Slice& at_desc,
                           std::vector<uint32_t>* out) = nullptr;

  /// Record fields composing an instance's access-path key, in key order
  /// (for key-range construction, probe-key composition, and index-only
  /// access). Null if the access key is not composed from record fields.
  Status (*instance_fields)(const Slice& at_desc, uint32_t instance,
                            std::vector<int>* fields) = nullptr;

  /// Consistency cross-check of one instance against the base relation
  /// (CHECK): dual enumeration for indexes (every entry maps to a live
  /// record with matching key fields and vice versa), re-validation for
  /// constraints, recount for statistics. Findings go into `report`;
  /// internal kCorruption is recorded, not propagated. Null = no check.
  Status (*verify)(AtContext& ctx, uint32_t instance_no,
                   VerifyReport* report) = nullptr;

  /// Rebuild one damaged instance from scratch off the base relation
  /// (REPAIR): allocate fresh storage, bulk-load via the storage method's
  /// scan, and return the updated type-descriptor encoding in *new_desc.
  /// Must NOT touch the old storage — the caller swaps the descriptor in
  /// transactionally and releases the old storage (via release_instance
  /// with the pre-repair descriptor) only at commit, so an abort or crash
  /// mid-rebuild leaves the old state intact. Null = instance is repaired
  /// by `rebuild`/reopen alone (purely derived in-memory state) or is not
  /// repairable.
  Status (*repair_instance)(AtContext& ctx, uint32_t instance_no,
                            std::string* new_desc) = nullptr;

  /// Does this instance guard data integrity (unique/check/referential
  /// constraints)? While such an instance is quarantined the core refuses
  /// writes to the relation — the constraint can no longer be enforced.
  /// Quarantined non-guarding instances (plain indexes, stats) merely stop
  /// serving reads and skip maintenance until repaired. Null = false.
  bool (*guards_integrity)(const Slice& at_desc, uint32_t instance_no) =
      nullptr;
};

}  // namespace dmx

#endif  // DMX_CORE_EXTENSION_H_
