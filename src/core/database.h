// Database: the data management facility — the paper's central dispatcher
// plus the common services environment (log, locks, buffer pool, catalog,
// predicate evaluation, scan coordination, deferred actions).
//
// Relation modifications execute in the paper's two steps: (1) the storage
// method routine, selected through the storage-method procedure vectors by
// the identifier in the relation descriptor header; (2) the attached
// procedures of every attachment type with instances on the relation,
// selected through the attachment procedure vectors by descriptor field
// presence. Any step may veto; the common log then drives the partial
// rollback of the already-executed effects.

#ifndef DMX_CORE_DATABASE_H_
#define DMX_CORE_DATABASE_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/core/authorization.h"
#include "src/core/error_handler.h"
#include "src/core/extension.h"
#include "src/core/registry.h"
#include "src/core/scan_manager.h"
#include "src/expr/evaluator.h"
#include "src/storage/buffer_pool.h"
#include "src/txn/transaction_manager.h"
#include "src/util/env_retry.h"
#include "src/wal/log_manager.h"

namespace dmx {

class ThreadPool;
class WalArchiver;

/// Commit-durability contract. kStrict: COMMIT returns only after the
/// commit record is fsynced (shared with concurrent committers via group
/// commit). kRelaxed: COMMIT returns at WAL-append; a background group
/// flusher makes it durable within ~group_flush_interval_us, and a crash
/// inside that window loses the commit. Overridable per session with
/// `SET DURABILITY { STRICT | RELAXED }`.
enum class Durability : uint8_t { kStrict = 0, kRelaxed = 1 };

struct DatabaseOptions {
  /// Directory holding db.pages, wal, and catalog files. Created if absent.
  std::string dir;
  size_t buffer_pool_pages = 256;
  /// Worker threads available for intra-query parallel scans (the shared
  /// ThreadPool, created lazily on first parallel scan). 0 = hardware
  /// concurrency. 1 disables parallelism entirely.
  size_t worker_threads = 0;
  /// Environment for all file I/O (Env::Default() when null). Not owned;
  /// must outlive the Database. Tests plug in a FaultInjectionEnv here.
  Env* env = nullptr;
  /// How long a lock request waits before giving up with Busy. The timeout
  /// message names the first conflicting holder's transaction id.
  uint64_t lock_timeout_ms = 2000;
  /// Hook to register user extensions "at the factory" — runs after the
  /// built-ins are registered and before restart recovery, so recovery can
  /// dispatch into them.
  std::function<void(ExtensionRegistry*)> register_extensions;
  /// Bounded retry for transient I/O failures (ENOSPC bursts, injected
  /// transient faults) at the Env layer; options.env is wrapped in a
  /// RetryingEnv with this many total attempts. 1 disables retrying.
  int io_retry_attempts = 4;
  /// Backoff schedule of the background auto-recovery thread while the
  /// database is degraded (doubles per failed attempt). Tests shrink these
  /// to keep the degrade → recover cycle fast.
  uint64_t recovery_initial_backoff_ms = 10;
  uint64_t recovery_max_backoff_ms = 1000;
  /// When false, no background recovery thread is started: the database
  /// stays degraded until reopened. Benches and unit tests use this to
  /// hold the degraded state steady.
  bool auto_recovery = true;
  /// Default commit-durability contract for new transactions.
  Durability durability = Durability::kStrict;
  /// Group commit (leader/follower shared fsync) on the strict commit
  /// path. Off = the legacy fsync-per-commit protocol (benchmarks use
  /// this as the baseline; there is no other reason to disable it).
  bool group_commit = true;
  /// How long a group-commit leader lingers for stragglers before paying
  /// the fsync, and the batch size that ends the wait early. 0 (default)
  /// = no artificial delay: batches form naturally from fsync latency.
  uint64_t group_commit_window_us = 0;
  uint32_t group_commit_max_batch = 64;
  /// Cadence of the background flusher that makes relaxed commits
  /// durable. 0 disables the flusher thread (relaxed commits then become
  /// durable only when a strict flush or checkpoint happens to run).
  uint64_t group_flush_interval_us = 500;
  /// WAL archiving: when non-empty, sealed log segments are copied
  /// (CRC-verified) into this directory by a background archiver before
  /// checkpoint truncation may reclaim them, enabling point-in-time
  /// recovery from a backup. Empty (default) keeps the pre-archiving
  /// behavior: checkpoints discard log history.
  std::string wal_archive_dir;
  /// Rotate the live WAL into a sealed segment once its flushed frames
  /// exceed this many bytes (only meaningful with archiving on).
  uint64_t wal_segment_bytes = 4ull << 20;
  /// Poll cadence of the background archiver thread.
  uint64_t wal_archive_poll_us = 20000;
};

/// Summary of a completed online backup (Database::Backup).
struct BackupResult {
  Lsn begin_lsn = 0;  // WAL replay available from here
  Lsn end_lsn = 0;    // backup is consistent as of this LSN
  uint32_t pages = 0;
  uint64_t files = 0;  // files recorded in the manifest
};

/// Inputs to offline point-in-time recovery (Database::Restore).
struct RestoreOptions {
  std::string backup_dir;
  std::string target_dir;  // created; must be empty
  /// Optional WAL archive to roll forward past the backup's end LSN.
  std::string archive_dir;
  /// Replay through this LSN (a record whose frame ends past it is not
  /// applied). 0 = everything available. Must be >= the backup's end LSN
  /// — page copies can already contain updates up to that point.
  Lsn target_lsn = 0;
  /// Env for all restore I/O (Env::Default() when null).
  Env* env = nullptr;
  /// User extensions the WAL may dispatch into during replay (same
  /// contract as DatabaseOptions::register_extensions).
  std::function<void(ExtensionRegistry*)> register_extensions;
};

/// Identifies an access path for data access operations. "Access path
/// extensions are selected using their attachment identifier plus an
/// instance number (e.g. access via B-tree number 3). Access path zero is
/// interpreted as an access to the storage method."
struct AccessPathId {
  uint16_t path = 0;  // 0 = storage method, else attachment type id + 1
  uint32_t instance = 0;

  static AccessPathId StorageMethod() { return {}; }
  static AccessPathId Attachment(AtId at, uint32_t instance) {
    return {static_cast<uint16_t>(at + 1), instance};
  }
  bool is_storage_method() const { return path == 0; }
  AtId at_id() const { return static_cast<AtId>(path - 1); }
};

/// One problem surfaced by a consistency check. `component` names the
/// structure ("storage" for the storage method, "<at_name>#<instance>" for
/// an attachment instance); `detail` is the extension's finding text.
struct CheckFinding {
  std::string component;
  std::string detail;
};

/// Result of CheckRelation: every finding across the storage method and all
/// attachment instances, plus the components newly quarantined by this run.
struct CheckResult {
  bool clean = true;
  uint64_t items = 0;  // entries/records swept (scale indicator)
  std::vector<CheckFinding> findings;
  std::vector<std::string> quarantined;  // components quarantined this run
  std::vector<std::string> cleared;      // quarantines lifted (verified clean)
};

/// Result of RepairRelation over the currently-quarantined components.
struct RepairResult {
  std::vector<std::string> repaired;    // components restored + cleared
  std::vector<std::string> unrepaired;  // components still quarantined (why)
};

/// Dispatch counters (the tuple-at-a-time call-volume experiments).
/// Atomic so concurrent workers can bump them while another thread reads;
/// existing comparisons keep working through Counter's uint64_t conversion.
struct DatabaseStats {
  Counter sm_calls;       // storage-method entry-point activations
  Counter at_calls;       // attached-procedure activations
  Counter vetoes;         // relation modifications vetoed
  Counter partial_rollbacks;

  void Reset() {
    sm_calls.Reset();
    at_calls.Reset();
    vetoes.Reset();
    partial_rollbacks.Reset();
  }
};

class Database {
 public:
  /// Open (creating if necessary) the database in options.dir, register
  /// built-in and user extensions, and run restart recovery.
  static Status Open(const DatabaseOptions& options,
                     std::unique_ptr<Database>* out);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // -- transactions ----------------------------------------------------------
  Transaction* Begin() { return txn_mgr_->Begin(); }
  /// Begin as a specific user (uniform authorization facility); the empty
  /// user is the superuser.
  Transaction* BeginAs(const std::string& user) {
    Transaction* txn = txn_mgr_->Begin();
    txn->set_user(user);
    return txn;
  }
  Status Commit(Transaction* txn) { return txn_mgr_->Commit(txn); }
  Status Abort(Transaction* txn) { return txn_mgr_->Abort(txn); }
  Status Savepoint(Transaction* txn, const std::string& name) {
    return txn_mgr_->Savepoint(txn, name);
  }
  Status RollbackToSavepoint(Transaction* txn, const std::string& name) {
    return txn_mgr_->RollbackToSavepoint(txn, name);
  }

  // -- data definition --------------------------------------------------------
  /// CREATE TABLE ... USING <sm_name> WITH (<attrs>).
  Status CreateRelation(Transaction* txn, const std::string& name,
                        const Schema& schema, const std::string& sm_name,
                        const AttrList& attrs);
  /// DROP TABLE. Storage release is deferred to commit; an abort restores
  /// the catalog entry (the paper's undoable drop without state logging).
  Status DropRelation(Transaction* txn, const std::string& name);
  /// CREATE INDEX / CONSTRAINT / TRIGGER ... ON rel USING <at_name>
  /// WITH (<attrs>). Returns the new instance number.
  Status CreateAttachment(Transaction* txn, const std::string& rel,
                          const std::string& at_name, const AttrList& attrs,
                          uint32_t* instance_no = nullptr);
  /// DROP the given instance of attachment type `at_name` on `rel`.
  Status DropAttachment(Transaction* txn, const std::string& rel,
                        const std::string& at_name, uint32_t instance_no);

  /// Migrate a relation to a different storage method in place — the
  /// paper's motivation of installing "improved, but representation
  /// incompatible, versions of data storage ... without impacting existing
  /// applications". Data is copied row by row through the generic
  /// interfaces; the relation keeps its name (bound plans invalidate via
  /// the dependency versions). Attachments are NOT carried over — recreate
  /// them on the new relation as needed.
  Status ChangeStorageMethod(Transaction* txn, const std::string& rel,
                             const std::string& new_sm,
                             const AttrList& attrs);

  // -- relation modification (direct generic operations) ----------------------
  Status Insert(Transaction* txn, const std::string& rel,
                const std::vector<Value>& values,
                std::string* record_key = nullptr);
  Status Update(Transaction* txn, const std::string& rel,
                const Slice& record_key, const std::vector<Value>& new_values,
                std::string* new_key = nullptr);
  Status Delete(Transaction* txn, const std::string& rel,
                const Slice& record_key);

  /// Raw-record variants used by executors and cascading attachments.
  Status InsertRecord(Transaction* txn, const RelationDescriptor* desc,
                      const Slice& record, std::string* record_key);
  Status UpdateRecord(Transaction* txn, const RelationDescriptor* desc,
                      const Slice& record_key, const Slice& new_record,
                      std::string* new_key);
  Status DeleteRecord(Transaction* txn, const RelationDescriptor* desc,
                      const Slice& record_key);

  // -- data access -------------------------------------------------------------
  /// Direct-by-key fetch through the storage method.
  Status Fetch(Transaction* txn, const std::string& rel,
               const Slice& record_key, Record* out);
  Status FetchRecord(Transaction* txn, const RelationDescriptor* desc,
                     const Slice& record_key, std::string* record);

  /// Key-sequential access via the selected access path (0 = storage
  /// method). The returned scan participates in savepoint save/restore and
  /// is closed at transaction termination.
  Status OpenScan(Transaction* txn, const std::string& rel,
                  const AccessPathId& path, const ScanSpec& spec,
                  std::unique_ptr<Scan>* out);
  Status OpenScanOn(Transaction* txn, const RelationDescriptor* desc,
                    const AccessPathId& path, const ScanSpec& spec,
                    std::unique_ptr<Scan>* out);

  /// Split a storage-method scan into up to `target` disjoint sub-specs
  /// via the method's optional `partition_scan` entry point (NotSupported
  /// when the method has none). Open each returned spec with OpenScanOn;
  /// a single-element result means the method declined to partition.
  Status PartitionScan(Transaction* txn, const RelationDescriptor* desc,
                       const ScanSpec& spec, int target,
                       std::vector<ScanSpec>* partitions);

  // -- corruption containment --------------------------------------------------
  /// CHECK <relation>: run the storage method's `verify` sweep and every
  /// attachment instance's `verify` cross-check. Components that fail are
  /// quarantined in the catalog (persisted immediately — a maintenance
  /// action, not part of the transaction); components that verify clean
  /// have any stale quarantine lifted. Requires kSelect.
  Status CheckRelation(Transaction* txn, const std::string& rel,
                       CheckResult* out);

  /// REPAIR <relation>: rebuild every quarantined attachment instance from
  /// the base relation (via the type's `repair_instance` op, or by
  /// re-priming + re-verifying derived in-memory state) and lift the
  /// quarantines that now verify clean. The descriptor swap commits with
  /// the transaction; a crash mid-rebuild recovers to the old (still
  /// quarantined) state. Requires kUpdate.
  Status RepairRelation(Transaction* txn, const std::string& rel,
                        RepairResult* out);

  /// Direct access-path probe: map an access-path key to record keys.
  Status Lookup(Transaction* txn, const std::string& rel,
                const AccessPathId& path, const Slice& key,
                std::vector<std::string>* record_keys);

  /// Cost estimation for the planner: ask one access path to judge the
  /// eligible predicates.
  Status EstimateCost(Transaction* txn, const RelationDescriptor* desc,
                      const AccessPathId& path,
                      const std::vector<ExprPtr>& predicates, AccessCost* out);
  /// Approximate record count via the storage method.
  Status CountRecords(Transaction* txn, const RelationDescriptor* desc,
                      uint64_t* count);

  // -- common services exposed to extensions -----------------------------------
  Catalog* catalog() { return &catalog_; }
  BufferPool* buffer_pool() { return buffer_pool_.get(); }
  LogManager* log() { return &log_; }
  LockManager* lock_manager() { return &lock_mgr_; }
  TransactionManager* txn_manager() { return txn_mgr_.get(); }
  ExtensionRegistry* registry() { return &registry_; }
  ScanManager* scan_manager() { return &scan_mgr_; }
  ExprEvaluator* evaluator() { return &evaluator_; }
  /// The uniform authorization facility: privileges are granted per
  /// (user, relation) and enforced identically for every storage method
  /// and access path. Checks also apply to cascaded modifications.
  AuthorizationManager* authorization() { return &auth_; }
  /// The environment all durable state goes through (never null once open).
  /// Extensions writing snapshots must use this instead of raw file APIs.
  /// It is the RetryingEnv wrapper, so extension I/O shares the transient
  /// retry budget.
  Env* env() { return env_; }
  /// The fault taxonomy / degraded-mode / auto-recovery subsystem.
  ErrorHandler* error_handler() { return error_handler_.get(); }
  /// True while the database is in degraded read-only mode.
  bool degraded() const { return error_handler_->degraded(); }
  /// Relaxed-durability commits acknowledged but not yet on disk (the
  /// window a crash would lose; DESCRIBE shows it as
  /// db.unflushed_commits).
  uint64_t unflushed_commits() const { return log_.unflushed_commits(); }
  /// Size of the intra-query worker pool (resolved from
  /// DatabaseOptions::worker_threads at open; >= 1).
  size_t worker_threads() const { return worker_threads_; }
  /// The shared worker pool, created on first use.
  ThreadPool* thread_pool();
  const DatabaseStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// JSON document of every process-wide counter and latency histogram
  /// (buffer pool, WAL, locks, transactions, per-extension dispatch).
  /// Safe to call while transactions are running.
  std::string MetricsSnapshot() const {
    return MetricsRegistry::Global()->ToJson();
  }

  /// Flush everything (buffer pool, log, catalog) — a clean shutdown point.
  Status Flush();

  /// Incremental checkpoint. Phase 1 flushes all state (pages, catalog,
  /// memory-resident storage-method snapshots) WITHOUT quiescing writers —
  /// the group-commit log never holds its mutex across the fsync, so
  /// committers keep running behind the flush. Phase 2 truncates the
  /// common log — bounding restart-recovery work — and is the only step
  /// that returns Busy while transactions are active; the phase-1 work is
  /// kept, so a retry only flushes the delta.
  Status Checkpoint();

  // -- backup / point-in-time recovery -----------------------------------------
  /// Online fuzzy backup into `dest_dir` (created; must be empty). Writers
  /// keep running: the WAL is pinned (rotation/truncation return Busy for
  /// the duration), a phase-1 checkpoint flush bounds replay work, the
  /// page file is copied with per-page checksum-retry, and every retained
  /// WAL segment plus the live log's durable prefix is captured. A MANIFEST
  /// with per-file sizes and CRC32Cs (itself checksummed) is written last,
  /// so an interrupted backup is never mistaken for a complete one.
  /// Implemented in core/backup.cc.
  Status Backup(const std::string& dest_dir, BackupResult* result = nullptr);

  /// Offline restore: rebuild a database directory from a backup, rolling
  /// the WAL forward through archived segments to `target_lsn` (point-in-
  /// time recovery), then run normal restart recovery on the result.
  /// Refuses — with a descriptive Status and without writing a usable
  /// target — on manifest/CRC mismatches, a non-empty target, a target LSN
  /// before the backup's end, or a gap in the archived segment chain.
  static Status Restore(const RestoreOptions& options,
                        Lsn* replayed_to = nullptr);

  /// End LSN of the most recent successful Backup() of this instance
  /// (0 = none this process lifetime). DESCRIBE shows it as
  /// db.last_backup_lsn.
  Lsn last_backup_lsn() const {
    return last_backup_lsn_.load(std::memory_order_acquire);
  }
  /// Sealed-but-unarchived WAL segments (archive lag). Nonzero while the
  /// archiver is behind or its volume is unreachable; those segments are
  /// retained — never reclaimed — until archived.
  uint64_t archive_lag() const { return log_.sealed_unarchived(); }
  /// The background segment archiver (null when wal_archive_dir is unset).
  WalArchiver* archiver() { return archiver_.get(); }

  /// Database directory (extensions derive snapshot paths from it).
  const std::string& dir() const { return dir_; }

  /// Test hook: when set, the destructor performs no flush at all, so
  /// closing the Database behaves like a process crash (the log keeps only
  /// what was explicitly forced).
  void SimulateCrashOnClose() { crash_on_close_ = true; }

  /// Descriptor lookup helper returning InvalidArgument for unknown names.
  Status FindRelation(const std::string& name,
                      const RelationDescriptor** desc) const;

  /// Build an SmContext/AtContext for `desc` with lazily-opened state.
  /// Public so extension implementations can reach other relations (e.g.
  /// referential-integrity cascades) and the recovery path can dispatch.
  Status MakeSmContext(Transaction* txn, const RelationDescriptor* desc,
                       SmContext* ctx);
  Status MakeAtContext(Transaction* txn, const RelationDescriptor* desc,
                       AtId at, AtContext* ctx);

  /// Drop all cached runtime state for a relation (relation created or
  /// dropped). For memory-resident storage methods the SM state *is* the
  /// data, so this is only safe when the relation's storage itself is new
  /// or gone.
  void InvalidateRuntime(RelationId id);

  /// Drop only the cached attachment states (attachment DDL): descriptors
  /// changed, but the storage method's state — possibly the data itself —
  /// remains valid.
  void InvalidateAttachmentRuntime(RelationId id);

 private:
  Database();

  /// The recovery driver's dispatch callback.
  Status ApplyLogRecord(const LogRecord& rec, bool undo, Lsn apply_lsn);

  /// Ensure every attachment type with instances on the relation has its
  /// runtime state open *before* the storage-method step runs — states
  /// that prime themselves by scanning the relation (unique, hash, rtree,
  /// stats, join) must not first open mid-modification, or they would see
  /// the half-applied operation.
  Status EnsureAttachmentStates(Transaction* txn,
                                const RelationDescriptor* desc);

  /// Invoke attached procedures of all attachment types with instances on
  /// the relation. `op`: 0 insert, 1 update, 2 delete.
  Status NotifyAttachments(Transaction* txn, const RelationDescriptor* desc,
                           int op, const Slice& old_key, const Slice& new_key,
                           const Slice& old_rec, const Slice& new_rec);

  /// Refuse the modification when the relation's storage is quarantined or
  /// a quarantined attachment instance guards integrity (its maintenance
  /// would be skipped, silently breaking the guarantee it enforces).
  Status CheckWritable(const RelationDescriptor* desc);

  /// Gate every write and DDL path: Busy while the database is degraded,
  /// and the transaction's deferred begin-append error (if its begin hit a
  /// poisoned log) surfaces here — on the first write — instead of at
  /// commit.
  Status CheckTxnWritable(Transaction* txn) const;

  /// Route a failed relation-modification Status to the ErrorHandler when
  /// it shows the local environment failing (a retry-exhausted transient
  /// IOError). Plain IOErrors stay with the operation — e.g. an
  /// unreachable foreign server must not degrade the local database.
  void MaybeReportWriteFailure(const char* where, const Status& s);

  /// The ErrorHandler's recovery callback: repair/probe the WAL in place
  /// (LogManager::Resume), then push out everything still buffered.
  Status RecoverWritePath();

  /// Checkpoint phase 1: flush WAL/pages/catalog/storage-method snapshots
  /// without quiescing writers (the incremental bulk of the work).
  Status DoCheckpointFlush();

  /// Full checkpoint body (phase 1 + log truncation), after the
  /// degraded-mode gate; the truncation requires quiescence.
  Status DoCheckpoint();

  /// Persist a quarantine for (at, instance) after kCorruption surfaced
  /// during normal access — the planner skips the path from now on.
  void QuarantineOnAccess(const RelationDescriptor* desc, AtId at,
                          uint32_t instance, const std::string& reason);

  /// Durably save the catalog after a quarantine change. A failure leaves
  /// the damage record memory-only: it is counted
  /// (`quarantine.save_failures`) and retried on the next
  /// quarantine-related access so the record eventually reaches disk.
  Status PersistQuarantineRecord();

  struct RelationRuntime {
    std::unique_ptr<ExtState> sm_state;
    std::array<std::unique_ptr<ExtState>, kMaxAttachmentTypes> at_state;
  };
  RelationRuntime* GetRuntime(RelationId id);

  /// Per-extension dispatch metrics ("sm.<id>.<name>.*" /
  /// "at.<id>.<name>.*"), indexed by the small-integer extension id —
  /// resolved once in Open() after all procedure vectors are installed, so
  /// dispatch pays an array index, never a registry lookup.
  struct DispatchMetrics {
    Counter* calls;
    Histogram* call_ns;
  };
  void ResolveDispatchMetrics();

  std::string dir_;
  Env* env_ = nullptr;  // == retry_env_.get() once open
  std::unique_ptr<RetryingEnv> retry_env_;
  std::unique_ptr<ErrorHandler> error_handler_;
  PageFile page_file_;
  LogManager log_;
  std::unique_ptr<BufferPool> buffer_pool_;
  LockManager lock_mgr_;
  std::unique_ptr<TransactionManager> txn_mgr_;
  std::unique_ptr<WalArchiver> archiver_;
  std::atomic<Lsn> last_backup_lsn_{0};
  Catalog catalog_;
  ExtensionRegistry registry_;
  AuthorizationManager auth_;
  ScanManager scan_mgr_;
  ExprEvaluator evaluator_;
  DatabaseStats stats_;
  std::vector<DispatchMetrics> sm_metrics_;  // indexed by SmId
  std::vector<DispatchMetrics> at_metrics_;  // indexed by AtId
  Counter* metric_vetoes_ = nullptr;
  Counter* metric_partial_rollbacks_ = nullptr;
  Counter* metric_check_runs_ = nullptr;
  Counter* metric_check_failures_ = nullptr;
  Counter* metric_repair_runs_ = nullptr;
  Counter* metric_repair_rebuilt_ = nullptr;
  Counter* metric_quarantine_events_ = nullptr;
  Counter* metric_quarantine_save_failures_ = nullptr;
  /// Set when a quarantine's catalog save failed; the next
  /// quarantine-related access retries the save.
  std::atomic<bool> quarantine_save_pending_{false};

  size_t worker_threads_ = 1;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> thread_pool_;
  Counter* metric_parallel_partitions_ = nullptr;

  Mutex runtime_mu_;
  std::map<RelationId, std::unique_ptr<RelationRuntime>> runtimes_
      GUARDED_BY(runtime_mu_);
  bool crash_on_close_ = false;
};

/// Registers the built-in storage methods and attachment types shipped with
/// the library (heap, temp, mainmemory, btree, appendonly, foreign; btree
/// index, hash index, rtree index, check constraint, unique, refint,
/// trigger, join index, stats, deferred check). Implemented across the
/// sm/ and attach/ modules.
void RegisterBuiltinExtensions(ExtensionRegistry* registry);

}  // namespace dmx

#endif  // DMX_CORE_DATABASE_H_
