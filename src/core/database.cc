#include "src/core/database.h"

#include <cassert>
#include <thread>

#include "src/util/thread_pool.h"
#include "src/wal/archiver.h"

namespace dmx {

namespace {
constexpr uint32_t kAllInstances = UINT32_MAX;

std::string ComponentName(const AtOps& ops, uint32_t instance) {
  return std::string(ops.name != nullptr ? ops.name : "attachment") + "#" +
         std::to_string(instance);
}
}  // namespace

Status Database::Open(const DatabaseOptions& options,
                      std::unique_ptr<Database>* out) {
  auto db = std::unique_ptr<Database>(new Database());
  db->dir_ = options.dir;
  db->worker_threads_ = options.worker_threads != 0
                            ? options.worker_threads
                            : std::thread::hardware_concurrency();
  if (db->worker_threads_ == 0) db->worker_threads_ = 1;
  // All durable I/O goes through the retry wrapper: short transient bursts
  // (EINTR, ENOSPC, injected transient faults) are absorbed here and never
  // surface as operation failures.
  RetryPolicy retry_policy;
  retry_policy.max_attempts = options.io_retry_attempts > 0
                                  ? options.io_retry_attempts
                                  : 1;
  db->retry_env_ = std::make_unique<RetryingEnv>(
      options.env != nullptr ? options.env : Env::Default(), retry_policy);
  db->env_ = db->retry_env_.get();
  db->lock_mgr_.set_timeout(
      std::chrono::milliseconds(options.lock_timeout_ms));
  DMX_RETURN_IF_ERROR(db->env_->CreateDir(options.dir));

  DMX_RETURN_IF_ERROR(
      db->page_file_.Open(options.dir + "/db.pages", true, db->env_));
  // Retention must be decided before Open() so segment discovery keeps
  // (rather than discards) sealed segments left by a prior incarnation.
  db->log_.SetRetainSegments(!options.wal_archive_dir.empty());
  DMX_RETURN_IF_ERROR(db->log_.Open(options.dir + "/wal", true, db->env_));
  db->log_.SetGroupCommit(options.group_commit);
  db->log_.SetGroupCommitWindow(options.group_commit_window_us,
                                options.group_commit_max_batch);
  LogManager* log = &db->log_;
  db->buffer_pool_ = std::make_unique<BufferPool>(
      &db->page_file_, options.buffer_pool_pages,
      [log](Lsn lsn) { return log->FlushTo(lsn); });
  db->txn_mgr_ =
      std::make_unique<TransactionManager>(&db->log_, &db->lock_mgr_);
  db->txn_mgr_->set_default_relaxed_durability(options.durability ==
                                               Durability::kRelaxed);
  Database* raw = db.get();
  db->txn_mgr_->SetApplyFn(
      [raw](const LogRecord& rec, bool undo, Lsn apply_lsn) {
        return raw->ApplyLogRecord(rec, undo, apply_lsn);
      });
  db->txn_mgr_->AddObserver(&db->scan_mgr_);

  // Graceful degradation: transient write-path outages flip the database
  // into read-only degraded mode; the background thread probes the fault
  // and restores full service in place.
  ErrorHandler::Options eh_opts;
  eh_opts.initial_backoff_ms = options.recovery_initial_backoff_ms;
  eh_opts.max_backoff_ms = options.recovery_max_backoff_ms;
  db->error_handler_ = std::make_unique<ErrorHandler>(eh_opts);
  db->error_handler_->SetRecoverFn([raw] { return raw->RecoverWritePath(); });
  db->txn_mgr_->set_wal_failure_handler(
      [raw](const std::string& where, const Status& cause) {
        raw->error_handler_->ReportWriteFailure(where, cause);
      });

  // "At the factory": install procedure vectors before any dispatch.
  RegisterBuiltinExtensions(&db->registry_);
  if (options.register_extensions) options.register_extensions(&db->registry_);
  db->ResolveDispatchMetrics();

  DMX_RETURN_IF_ERROR(db->catalog_.Load(options.dir + "/catalog", db->env_));

  // Restart recovery: redo (page-LSN gated), undo losers, then let
  // extensions rebuild derived in-memory structures from base relations.
  DMX_RETURN_IF_ERROR(db->txn_mgr_->driver()->Restart());
  // Transaction ids continue above everything in the log: reusing an id of
  // a committed transaction would make a future crash treat an unfinished
  // transaction as a winner.
  db->txn_mgr_->EnsureTxnIdAbove(db->txn_mgr_->driver()->max_txn_seen());
  for (RelationId rel : db->catalog_.AllRelationIds()) {
    const RelationDescriptor* desc = db->catalog_.Find(rel);
    if (desc == nullptr) continue;
    for (AtId at = 0; at < db->registry_.num_attachment_types(); ++at) {
      if (!desc->HasAttachment(at)) continue;
      const AtOps& ops = db->registry_.at_ops(at);
      if (ops.rebuild == nullptr) continue;
      AtContext ctx;
      DMX_RETURN_IF_ERROR(db->MakeAtContext(nullptr, desc, at, &ctx));
      DMX_RETURN_IF_ERROR(ops.rebuild(ctx));
    }
  }

  if (options.auto_recovery) db->error_handler_->Start();

  // Background group flusher: makes relaxed-durability commits durable on
  // a short cadence; a flush failure degrades the database through the
  // same ErrorHandler path as a failed strict commit force.
  if (options.group_flush_interval_us > 0) {
    db->log_.StartFlusher(
        options.group_flush_interval_us, [raw](const Status& cause) {
          raw->error_handler_->ReportWriteFailure("wal group flush", cause);
        });
  }

  // WAL archiver: rotates the live log into sealed segments and copies
  // them (CRC-verified) into the archive before checkpoint truncation may
  // reclaim them. An archive failure degrades the database like any other
  // write-path outage; RecoverWritePath drains the backlog.
  if (!options.wal_archive_dir.empty()) {
    WalArchiver::Options arch_opts;
    arch_opts.archive_dir = options.wal_archive_dir;
    arch_opts.segment_target_bytes = options.wal_segment_bytes;
    arch_opts.poll_interval_us = options.wal_archive_poll_us;
    db->archiver_ =
        std::make_unique<WalArchiver>(&db->log_, db->env_, arch_opts);
    DMX_RETURN_IF_ERROR(
        db->archiver_->Start([raw](const Status& cause) {
          raw->error_handler_->ReportWriteFailure("wal archive", cause);
        }));
  }

  *out = std::move(db);
  return Status::OK();
}

Database::Database() : txn_mgr_(nullptr) {}

Database::~Database() {
  // Stop the background threads before tearing anything down: the group
  // flusher's failure callback touches the error handler, and the
  // recovery thread's callback touches the log manager.
  if (archiver_) archiver_->Stop();
  log_.StopFlusher();
  if (error_handler_) error_handler_->Stop();
  // Best-effort write-back; errors are unreportable in a destructor.
  if (!crash_on_close_) (void)Flush();
}

void Database::ResolveDispatchMetrics() {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  sm_metrics_.clear();
  for (size_t id = 0; id < registry_.num_storage_methods(); ++id) {
    const char* name = registry_.sm_ops(static_cast<SmId>(id)).name;
    std::string base = "sm." + std::to_string(id) + "." +
                       (name != nullptr ? name : "anonymous");
    sm_metrics_.push_back({metrics->GetCounter(base + ".calls"),
                           metrics->GetHistogram(base + ".call_ns")});
  }
  at_metrics_.clear();
  for (size_t id = 0; id < registry_.num_attachment_types(); ++id) {
    const char* name = registry_.at_ops(static_cast<AtId>(id)).name;
    std::string base = "at." + std::to_string(id) + "." +
                       (name != nullptr ? name : "anonymous");
    at_metrics_.push_back({metrics->GetCounter(base + ".calls"),
                           metrics->GetHistogram(base + ".call_ns")});
  }
  metric_vetoes_ = metrics->GetCounter("db.vetoes");
  metric_partial_rollbacks_ = metrics->GetCounter("db.partial_rollbacks");
  metric_parallel_partitions_ = metrics->GetCounter("parallel.partitions");
  metric_check_runs_ = metrics->GetCounter("check.runs");
  metric_check_failures_ = metrics->GetCounter("check.failures");
  metric_repair_runs_ = metrics->GetCounter("repair.runs");
  metric_repair_rebuilt_ = metrics->GetCounter("repair.rebuilt_instances");
  metric_quarantine_events_ = metrics->GetCounter("quarantine.events");
  metric_quarantine_save_failures_ =
      metrics->GetCounter("quarantine.save_failures");
}

ThreadPool* Database::thread_pool() {
  std::call_once(pool_once_, [this] {
    thread_pool_ = std::make_unique<ThreadPool>(worker_threads_);
  });
  return thread_pool_.get();
}

Status Database::PartitionScan(Transaction* txn,
                               const RelationDescriptor* desc,
                               const ScanSpec& spec, int target,
                               std::vector<ScanSpec>* partitions) {
  const SmOps& sm = registry_.sm_ops(desc->sm_id);
  if (sm.partition_scan == nullptr) {
    return Status::NotSupported("storage method cannot partition scans");
  }
  SmContext ctx;
  DMX_RETURN_IF_ERROR(MakeSmContext(txn, desc, &ctx));
  stats_.sm_calls.Increment();
  sm_metrics_[desc->sm_id].calls->Increment();
  ScopedTimer timer(sm_metrics_[desc->sm_id].call_ns);
  DMX_RETURN_IF_ERROR(sm.partition_scan(ctx, spec, target, partitions));
  metric_parallel_partitions_->Increment(partitions->size());
  return Status::OK();
}

Status Database::Flush() {
  DMX_RETURN_IF_ERROR(log_.FlushAll());
  if (buffer_pool_) DMX_RETURN_IF_ERROR(buffer_pool_->FlushAll());
  return catalog_.Save();
}

Status Database::Checkpoint() {
  // A checkpoint while degraded would re-drive the failing write path (and
  // Truncate a log the recovery thread is mid-repair on).
  DMX_RETURN_IF_ERROR(error_handler_->CheckWritable());
  // Phase 1 — incremental: push out the bulk of the dirty state (WAL,
  // pages, catalog, storage-method snapshots) while writers keep running.
  // The group-commit log releases its mutex during the fsync, so
  // committers append and form their next batch behind this flush instead
  // of stalling on it.
  Status s = DoCheckpointFlush();
  if (!s.ok()) {
    // A checkpoint's own write failure is a write-path outage like any
    // other: degrade instead of leaving the next caller to trip over it.
    error_handler_->ReportWriteFailure("checkpoint", s);
    return s;
  }
  // Phase 2 — the only step that needs quiescence is the log truncation
  // (no record an active transaction might still undo may be discarded).
  // The phase-1 work is kept either way, so a Busy retry only has the
  // small delta accumulated since to flush.
  if (txn_mgr_->ActiveTransactionCount() > 0) {
    return Status::Busy("active transactions block the checkpoint");
  }
  s = DoCheckpoint();
  if (!s.ok()) error_handler_->ReportWriteFailure("checkpoint", s);
  return s;
}

Status Database::DoCheckpointFlush() {
  DMX_RETURN_IF_ERROR(log_.FlushAll());
  DMX_RETURN_IF_ERROR(buffer_pool_->FlushAll());
  DMX_RETURN_IF_ERROR(catalog_.Save());
  // Give every storage method a chance to snapshot state the buffer pool
  // does not cover (the mainmemory method writes its table image).
  for (RelationId rel : catalog_.AllRelationIds()) {
    const RelationDescriptor* desc = catalog_.Find(rel);
    if (desc == nullptr) continue;
    const SmOps& ops = registry_.sm_ops(desc->sm_id);
    if (ops.checkpoint == nullptr) continue;
    SmContext ctx;
    DMX_RETURN_IF_ERROR(MakeSmContext(nullptr, desc, &ctx));
    DMX_RETURN_IF_ERROR(ops.checkpoint(ctx));
  }
  return Status::OK();
}

Status Database::DoCheckpoint() {
  DMX_RETURN_IF_ERROR(DoCheckpointFlush());
  // With archiving on this seals the live log into a segment and reclaims
  // only the already-archived prefix (archive-before-truncate); without
  // archiving it is the plain truncation.
  return log_.CheckpointTruncate();
}

Status Database::FindRelation(const std::string& name,
                              const RelationDescriptor** desc) const {
  const RelationDescriptor* d = catalog_.Find(name);
  if (d == nullptr) {
    return Status::InvalidArgument("no relation named '" + name + "'");
  }
  *desc = d;
  return Status::OK();
}

Database::RelationRuntime* Database::GetRuntime(RelationId id) {
  MutexLock lock(&runtime_mu_);
  auto it = runtimes_.find(id);
  if (it != runtimes_.end()) return it->second.get();
  auto rt = std::make_unique<RelationRuntime>();
  RelationRuntime* raw = rt.get();
  runtimes_[id] = std::move(rt);
  return raw;
}

void Database::InvalidateRuntime(RelationId id) {
  MutexLock lock(&runtime_mu_);
  runtimes_.erase(id);
}

void Database::InvalidateAttachmentRuntime(RelationId id) {
  MutexLock lock(&runtime_mu_);
  auto it = runtimes_.find(id);
  if (it == runtimes_.end()) return;
  for (auto& state : it->second->at_state) state.reset();
}

Status Database::MakeSmContext(Transaction* txn,
                               const RelationDescriptor* desc,
                               SmContext* ctx) {
  RelationRuntime* rt = GetRuntime(desc->id);
  ctx->db = this;
  ctx->txn = txn;
  ctx->desc = desc;
  if (rt->sm_state == nullptr) {
    const SmOps& ops = registry_.sm_ops(desc->sm_id);
    if (ops.open != nullptr) {
      SmContext open_ctx = *ctx;
      open_ctx.state = nullptr;
      DMX_RETURN_IF_ERROR(ops.open(open_ctx, &rt->sm_state));
    }
  }
  ctx->state = rt->sm_state.get();
  return Status::OK();
}

Status Database::MakeAtContext(Transaction* txn,
                               const RelationDescriptor* desc, AtId at,
                               AtContext* ctx) {
  RelationRuntime* rt = GetRuntime(desc->id);
  ctx->db = this;
  ctx->txn = txn;
  ctx->desc = desc;
  ctx->at_id = at;
  ctx->at_desc = Slice(desc->at_desc[at]);
  if (rt->at_state[at] == nullptr) {
    const AtOps& ops = registry_.at_ops(at);
    if (ops.open != nullptr) {
      AtContext open_ctx = *ctx;
      open_ctx.state = nullptr;
      DMX_RETURN_IF_ERROR(ops.open(open_ctx, &rt->at_state[at]));
    }
  }
  ctx->state = rt->at_state[at].get();
  return Status::OK();
}

Status Database::ApplyLogRecord(const LogRecord& rec, bool undo,
                                Lsn apply_lsn) {
  const RelationDescriptor* desc = catalog_.Find(rec.relation);
  if (desc == nullptr) return Status::OK();  // relation dropped since
  if (rec.ext_kind == ExtKind::kStorageMethod) {
    const SmOps& ops = registry_.sm_ops(rec.ext_id);
    SmContext ctx;
    DMX_RETURN_IF_ERROR(MakeSmContext(nullptr, desc, &ctx));
    return undo ? ops.undo(ctx, rec, apply_lsn)
                : ops.redo(ctx, rec, apply_lsn);
  }
  const AtOps& ops = registry_.at_ops(rec.ext_id);
  AtContext ctx;
  DMX_RETURN_IF_ERROR(
      MakeAtContext(nullptr, desc, static_cast<AtId>(rec.ext_id), &ctx));
  if (undo) {
    return ops.undo ? ops.undo(ctx, rec, apply_lsn) : Status::OK();
  }
  return ops.redo ? ops.redo(ctx, rec, apply_lsn) : Status::OK();
}

// -- data definition -----------------------------------------------------------

Status Database::CreateRelation(Transaction* txn, const std::string& name,
                                const Schema& schema,
                                const std::string& sm_name,
                                const AttrList& attrs) {
  DMX_RETURN_IF_ERROR(CheckTxnWritable(txn));
  int sm = registry_.FindStorageMethod(sm_name);
  if (sm < 0) {
    return Status::InvalidArgument("no storage method '" + sm_name + "'");
  }
  const SmOps& ops = registry_.sm_ops(static_cast<SmId>(sm));

  RelationDescriptor desc;
  desc.name = name;
  desc.schema = schema;
  desc.sm_id = static_cast<SmId>(sm);
  DMX_RETURN_IF_ERROR(ops.validate(schema, attrs, &desc.sm_desc));

  RelationId id;
  DMX_RETURN_IF_ERROR(catalog_.AddRelation(desc, &id));
  const RelationDescriptor* stored = catalog_.Find(id);

  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(), LockNames::Relation(id),
                                     LockMode::kX));

  // Build initial storage; the storage method may refine its descriptor
  // (e.g. record an allocated anchor page). The context carries no runtime
  // state yet — state can only be derived once the descriptor is final.
  SmContext ctx;
  ctx.db = this;
  ctx.txn = txn;
  ctx.desc = stored;
  ctx.state = nullptr;
  std::string sm_desc = stored->sm_desc;
  Status s = ops.create(ctx, &sm_desc);
  if (!s.ok()) {
    // Undo our own just-added entry; the create failure takes precedence.
    (void)catalog_.RemoveRelation(id, nullptr);
    InvalidateRuntime(id);
    return s;
  }
  RelationDescriptor updated = *stored;
  updated.sm_desc = sm_desc;
  DMX_RETURN_IF_ERROR(catalog_.UpdateRelation(updated));
  InvalidateRuntime(id);  // state derived from the old descriptor

  // Undoable DDL: abort destroys the storage and the catalog entry;
  // commit persists the catalog.
  txn->Defer(TxnEvent::kAbort, [this, id](Transaction* t) {
    const RelationDescriptor* d = catalog_.Find(id);
    if (d == nullptr) return Status::OK();
    const SmOps& sm_ops = registry_.sm_ops(d->sm_id);
    SmContext drop_ctx;
    Status st = MakeSmContext(t, d, &drop_ctx);
    if (st.ok() && sm_ops.drop != nullptr) st = sm_ops.drop(drop_ctx);
    // Undoing our own add: the entry is present, so this cannot fail in a
    // way the abort could act on.
    (void)catalog_.RemoveRelation(id, nullptr);
    InvalidateRuntime(id);
    return st;
  });
  txn->Defer(TxnEvent::kCommit,
             [this](Transaction*) { return catalog_.Save(); });
  return Status::OK();
}

Status Database::DropRelation(Transaction* txn, const std::string& name) {
  DMX_RETURN_IF_ERROR(CheckTxnWritable(txn));
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(FindRelation(name, &desc));
  RelationId id = desc->id;
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(), LockNames::Relation(id),
                                     LockMode::kX));
  RelationDescriptor saved;
  DMX_RETURN_IF_ERROR(catalog_.RemoveRelation(id, &saved));

  // "The actual release of the relation or access path state is deferred
  // until the transaction commits", making the drop undoable without
  // logging the relation's entire state.
  txn->Defer(TxnEvent::kCommit, [this, saved](Transaction* t) {
    // Release attachment storage first, then the relation storage.
    // A temporary descriptor is restored into the catalog so contexts can
    // be built, then finally removed.
    RelationDescriptor tmp = saved;
    tmp.name = "#dropping#" + std::to_string(saved.id);
    // Reuse the original id so runtime state and log records line up.
    Status st = catalog_.RestoreRelation(tmp);
    // First release failure; surfaced through Commit's deferred-action
    // status so a storage leak is never silent.
    Status release = Status::OK();
    if (st.ok()) {
      const RelationDescriptor* d = catalog_.Find(saved.id);
      for (AtId at = 0; at < registry_.num_attachment_types(); ++at) {
        if (!d->HasAttachment(at)) continue;
        const AtOps& aops = registry_.at_ops(at);
        if (aops.release_instance != nullptr) {
          AtContext actx;
          if (MakeAtContext(t, d, at, &actx).ok()) {
            Status rs = aops.release_instance(actx, kAllInstances);
            if (release.ok()) release = rs;
          }
        }
      }
      const SmOps& sops = registry_.sm_ops(d->sm_id);
      if (sops.drop != nullptr) {
        SmContext sctx;
        if (MakeSmContext(t, d, &sctx).ok()) {
          Status ds = sops.drop(sctx);
          if (release.ok()) release = ds;
        }
      }
      // Removing the #dropping# descriptor we just restored cannot fail
      // in a way the commit could act on.
      (void)catalog_.RemoveRelation(saved.id, nullptr);
    }
    auth_.Clear(saved.id);
    InvalidateRuntime(saved.id);
    Status save = catalog_.Save();
    return release.ok() ? save : release;
  });
  txn->Defer(TxnEvent::kAbort, [this, saved](Transaction*) {
    return catalog_.RestoreRelation(saved);
  });
  InvalidateRuntime(id);
  return Status::OK();
}

Status Database::CreateAttachment(Transaction* txn, const std::string& rel,
                                  const std::string& at_name,
                                  const AttrList& attrs,
                                  uint32_t* instance_no) {
  DMX_RETURN_IF_ERROR(CheckTxnWritable(txn));
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(FindRelation(rel, &desc));
  int at = registry_.FindAttachmentType(at_name);
  if (at < 0) {
    return Status::InvalidArgument("no attachment type '" + at_name + "'");
  }
  const AtOps& ops = registry_.at_ops(static_cast<AtId>(at));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(), LockNames::Relation(desc->id),
                                     LockMode::kX));

  std::string old_desc = desc->at_desc[at];
  AtContext ctx;
  DMX_RETURN_IF_ERROR(
      MakeAtContext(txn, desc, static_cast<AtId>(at), &ctx));
  std::string new_desc;
  uint32_t inst = 0;
  DMX_RETURN_IF_ERROR(ops.create_instance(ctx, attrs, &new_desc, &inst));
  if (instance_no != nullptr) *instance_no = inst;

  RelationDescriptor updated = *desc;
  updated.at_desc[at] = new_desc;
  DMX_RETURN_IF_ERROR(catalog_.UpdateRelation(updated));
  InvalidateAttachmentRuntime(desc->id);

  RelationId id = desc->id;
  txn->Defer(TxnEvent::kAbort,
             [this, id, at, old_desc, inst](Transaction* t) {
               const RelationDescriptor* d = catalog_.Find(id);
               if (d == nullptr) return Status::OK();
               const AtOps& aops = registry_.at_ops(static_cast<AtId>(at));
               if (aops.release_instance != nullptr) {
                 AtContext actx;
                 if (MakeAtContext(t, d, static_cast<AtId>(at), &actx).ok()) {
                   // Abort-path cleanup: the instance was never visible, so a
                   // failed release only leaks its storage.
                   (void)aops.release_instance(actx, inst);
                 }
               }
               RelationDescriptor reverted = *d;
               reverted.at_desc[at] = old_desc;
               Status st = catalog_.UpdateRelation(reverted);
               InvalidateAttachmentRuntime(id);
               return st;
             });
  txn->Defer(TxnEvent::kCommit,
             [this](Transaction*) { return catalog_.Save(); });
  return Status::OK();
}

Status Database::DropAttachment(Transaction* txn, const std::string& rel,
                                const std::string& at_name,
                                uint32_t instance_no) {
  DMX_RETURN_IF_ERROR(CheckTxnWritable(txn));
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(FindRelation(rel, &desc));
  int at = registry_.FindAttachmentType(at_name);
  if (at < 0) {
    return Status::InvalidArgument("no attachment type '" + at_name + "'");
  }
  if (!desc->HasAttachment(static_cast<AtId>(at))) {
    return Status::NotFound("no '" + at_name + "' attachment on " + rel);
  }
  const AtOps& ops = registry_.at_ops(static_cast<AtId>(at));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(), LockNames::Relation(desc->id),
                                     LockMode::kX));

  std::string old_desc = desc->at_desc[at];
  AtContext ctx;
  DMX_RETURN_IF_ERROR(
      MakeAtContext(txn, desc, static_cast<AtId>(at), &ctx));
  std::string new_desc;
  DMX_RETURN_IF_ERROR(ops.drop_instance(ctx, instance_no, &new_desc));

  RelationDescriptor updated = *desc;
  updated.at_desc[at] = new_desc;
  DMX_RETURN_IF_ERROR(catalog_.UpdateRelation(updated));
  InvalidateAttachmentRuntime(desc->id);

  RelationId id = desc->id;
  // Deferred release at commit; catalog restore on abort.
  txn->Defer(TxnEvent::kCommit,
             [this, id, at, instance_no, old_desc](Transaction* t) {
               const RelationDescriptor* d = catalog_.Find(id);
               if (d != nullptr) {
                 const AtOps& aops = registry_.at_ops(static_cast<AtId>(at));
                 if (aops.release_instance != nullptr) {
                   AtContext actx;
                   if (MakeAtContext(t, d, static_cast<AtId>(at), &actx)
                           .ok()) {
                     // Hand the release the *pre-drop* descriptor so it can
                     // locate the dropped instance's storage. Dropping a
                     // quarantined instance is a remediation path: the walk
                     // may trip over the damage itself, and the drop must
                     // still commit — a failed release only leaks pages.
                     actx.at_desc = Slice(old_desc);
                     // Leak-only on failure (see above).
                     (void)aops.release_instance(actx, instance_no);
                   }
                 }
               }
               return catalog_.Save();
             });
  txn->Defer(TxnEvent::kAbort, [this, id, at, old_desc](Transaction*) {
    const RelationDescriptor* d = catalog_.Find(id);
    if (d == nullptr) return Status::OK();
    RelationDescriptor reverted = *d;
    reverted.at_desc[at] = old_desc;
    Status st = catalog_.UpdateRelation(reverted);
    InvalidateAttachmentRuntime(id);
    return st;
  });
  return Status::OK();
}

Status Database::ChangeStorageMethod(Transaction* txn,
                                     const std::string& rel,
                                     const std::string& new_sm,
                                     const AttrList& attrs) {
  const RelationDescriptor* old_desc;
  DMX_RETURN_IF_ERROR(FindRelation(rel, &old_desc));
  const std::string tmp_name = "#migrate#" + rel;
  DMX_RETURN_IF_ERROR(
      CreateRelation(txn, tmp_name, old_desc->schema, new_sm, attrs));
  const RelationDescriptor* new_desc;
  DMX_RETURN_IF_ERROR(FindRelation(tmp_name, &new_desc));

  // Copy every record through the generic interfaces.
  {
    std::unique_ptr<Scan> scan;
    DMX_RETURN_IF_ERROR(OpenScanOn(txn, old_desc,
                                   AccessPathId::StorageMethod(), ScanSpec{},
                                   &scan));
    ScanItem item;
    while (true) {
      Status s = scan->Next(&item);
      if (s.IsNotFound()) break;
      DMX_RETURN_IF_ERROR(s);
      std::string key;
      DMX_RETURN_IF_ERROR(
          InsertRecord(txn, new_desc, item.view.raw(), &key));
    }
  }

  // Swap: drop the old relation (deferred release; abort restores it),
  // then take over its name. On abort the rename reverts harmlessly: the
  // new relation is destroyed by CreateRelation's abort action, which runs
  // first (deferred actions execute in enqueue order).
  DMX_RETURN_IF_ERROR(DropRelation(txn, rel));
  RelationId new_id = new_desc->id;
  DMX_RETURN_IF_ERROR(catalog_.RenameRelation(new_id, rel));
  InvalidateAttachmentRuntime(new_id);
  txn->Defer(TxnEvent::kCommit,
             [this](Transaction*) { return catalog_.Save(); });
  return Status::OK();
}

// -- relation modification -------------------------------------------------------

Status Database::Insert(Transaction* txn, const std::string& rel,
                        const std::vector<Value>& values,
                        std::string* record_key) {
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(FindRelation(rel, &desc));
  Record rec;
  DMX_RETURN_IF_ERROR(Record::Encode(desc->schema, values, &rec));
  return InsertRecord(txn, desc, rec.slice(), record_key);
}

Status Database::InsertRecord(Transaction* txn,
                              const RelationDescriptor* desc,
                              const Slice& record, std::string* record_key) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  DMX_RETURN_IF_ERROR(CheckTxnWritable(txn));
  DMX_RETURN_IF_ERROR(CheckWritable(desc));
  DMX_RETURN_IF_ERROR(auth_.Check(txn->user(), desc->id, Privilege::kInsert));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(),
                                     LockNames::Relation(desc->id),
                                     LockMode::kIX));
  DMX_RETURN_IF_ERROR(EnsureAttachmentStates(txn, desc));
  const Lsn before = txn->last_lsn();

  // Step 1: storage method, via the procedure vectors.
  const SmOps& sm = registry_.sm_ops(desc->sm_id);
  SmContext ctx;
  DMX_RETURN_IF_ERROR(MakeSmContext(txn, desc, &ctx));
  std::string key;
  stats_.sm_calls.Increment();
  sm_metrics_[desc->sm_id].calls->Increment();
  Status s;
  {
    ScopedTimer timer(sm_metrics_[desc->sm_id].call_ns);
    s = sm.insert(ctx, record, &key);
  }
  if (s.ok()) {
    s = lock_mgr_.Lock(txn->id(), LockNames::Record(desc->id, key),
                       LockMode::kX);
  }
  // Step 2: attached procedures (once per attachment type with instances).
  if (s.ok()) {
    s = NotifyAttachments(txn, desc, /*op=*/0, Slice(), Slice(key), Slice(),
                          record);
  }
  if (!s.ok()) {
    // Veto or failure: common log drives undo of the partial effects.
    if (s.IsVeto()) {
      stats_.vetoes.Increment();
      metric_vetoes_->Increment();
    }
    stats_.partial_rollbacks.Increment();
    metric_partial_rollbacks_->Increment();
    MaybeReportWriteFailure("relation insert", s);
    Status rb = txn_mgr_->RollbackTo(txn, before);
    if (!rb.ok()) return rb;
    return s;
  }
  if (record_key != nullptr) *record_key = std::move(key);
  return Status::OK();
}

Status Database::Update(Transaction* txn, const std::string& rel,
                        const Slice& record_key,
                        const std::vector<Value>& new_values,
                        std::string* new_key) {
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(FindRelation(rel, &desc));
  Record rec;
  DMX_RETURN_IF_ERROR(Record::Encode(desc->schema, new_values, &rec));
  return UpdateRecord(txn, desc, record_key, rec.slice(), new_key);
}

Status Database::UpdateRecord(Transaction* txn,
                              const RelationDescriptor* desc,
                              const Slice& record_key,
                              const Slice& new_record, std::string* new_key) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  DMX_RETURN_IF_ERROR(CheckTxnWritable(txn));
  DMX_RETURN_IF_ERROR(CheckWritable(desc));
  DMX_RETURN_IF_ERROR(auth_.Check(txn->user(), desc->id, Privilege::kUpdate));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(),
                                     LockNames::Relation(desc->id),
                                     LockMode::kIX));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(
      txn->id(), LockNames::Record(desc->id, record_key), LockMode::kX));
  DMX_RETURN_IF_ERROR(EnsureAttachmentStates(txn, desc));

  const SmOps& sm = registry_.sm_ops(desc->sm_id);
  SmContext ctx;
  DMX_RETURN_IF_ERROR(MakeSmContext(txn, desc, &ctx));

  // The old record value is needed by the attached procedures.
  std::string old_record;
  stats_.sm_calls.Increment();
  sm_metrics_[desc->sm_id].calls->Increment();
  {
    ScopedTimer timer(sm_metrics_[desc->sm_id].call_ns);
    DMX_RETURN_IF_ERROR(sm.fetch(ctx, record_key, &old_record));
  }

  const Lsn before = txn->last_lsn();
  std::string moved_key;
  stats_.sm_calls.Increment();
  sm_metrics_[desc->sm_id].calls->Increment();
  Status s;
  {
    ScopedTimer timer(sm_metrics_[desc->sm_id].call_ns);
    s = sm.update(ctx, record_key, Slice(old_record), new_record,
                  &moved_key);
  }
  if (s.ok() && Slice(moved_key) != record_key) {
    s = lock_mgr_.Lock(txn->id(), LockNames::Record(desc->id, moved_key),
                       LockMode::kX);
  }
  if (s.ok()) {
    s = NotifyAttachments(txn, desc, /*op=*/1, record_key, Slice(moved_key),
                          Slice(old_record), new_record);
  }
  if (!s.ok()) {
    if (s.IsVeto()) {
      stats_.vetoes.Increment();
      metric_vetoes_->Increment();
    }
    stats_.partial_rollbacks.Increment();
    metric_partial_rollbacks_->Increment();
    MaybeReportWriteFailure("relation update", s);
    Status rb = txn_mgr_->RollbackTo(txn, before);
    if (!rb.ok()) return rb;
    return s;
  }
  if (new_key != nullptr) *new_key = std::move(moved_key);
  return Status::OK();
}

Status Database::Delete(Transaction* txn, const std::string& rel,
                        const Slice& record_key) {
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(FindRelation(rel, &desc));
  return DeleteRecord(txn, desc, record_key);
}

Status Database::DeleteRecord(Transaction* txn,
                              const RelationDescriptor* desc,
                              const Slice& record_key) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  DMX_RETURN_IF_ERROR(CheckTxnWritable(txn));
  DMX_RETURN_IF_ERROR(CheckWritable(desc));
  DMX_RETURN_IF_ERROR(auth_.Check(txn->user(), desc->id, Privilege::kDelete));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(),
                                     LockNames::Relation(desc->id),
                                     LockMode::kIX));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(
      txn->id(), LockNames::Record(desc->id, record_key), LockMode::kX));
  DMX_RETURN_IF_ERROR(EnsureAttachmentStates(txn, desc));

  const SmOps& sm = registry_.sm_ops(desc->sm_id);
  SmContext ctx;
  DMX_RETURN_IF_ERROR(MakeSmContext(txn, desc, &ctx));

  std::string old_record;
  stats_.sm_calls.Increment();
  sm_metrics_[desc->sm_id].calls->Increment();
  {
    ScopedTimer timer(sm_metrics_[desc->sm_id].call_ns);
    DMX_RETURN_IF_ERROR(sm.fetch(ctx, record_key, &old_record));
  }

  const Lsn before = txn->last_lsn();
  stats_.sm_calls.Increment();
  sm_metrics_[desc->sm_id].calls->Increment();
  Status s;
  {
    ScopedTimer timer(sm_metrics_[desc->sm_id].call_ns);
    s = sm.erase(ctx, record_key, Slice(old_record));
  }
  if (s.ok()) {
    s = NotifyAttachments(txn, desc, /*op=*/2, record_key, Slice(),
                          Slice(old_record), Slice());
  }
  if (!s.ok()) {
    if (s.IsVeto()) {
      stats_.vetoes.Increment();
      metric_vetoes_->Increment();
    }
    stats_.partial_rollbacks.Increment();
    metric_partial_rollbacks_->Increment();
    MaybeReportWriteFailure("relation delete", s);
    Status rb = txn_mgr_->RollbackTo(txn, before);
    if (!rb.ok()) return rb;
    return s;
  }
  return Status::OK();
}

Status Database::EnsureAttachmentStates(Transaction* txn,
                                        const RelationDescriptor* desc) {
  for (AtId at = 0; at < registry_.num_attachment_types(); ++at) {
    if (!desc->HasAttachment(at)) continue;
    AtContext ctx;
    DMX_RETURN_IF_ERROR(MakeAtContext(txn, desc, at, &ctx));
  }
  return Status::OK();
}

Status Database::NotifyAttachments(Transaction* txn,
                                   const RelationDescriptor* desc, int op,
                                   const Slice& old_key, const Slice& new_key,
                                   const Slice& old_rec,
                                   const Slice& new_rec) {
  // "The relation descriptor is consulted to determine which attachment
  // types have instances on the relation and must, therefore, be notified
  // of the relation modification." Each type is invoked at most once and
  // services all of its instances.
  for (AtId at = 0; at < registry_.num_attachment_types(); ++at) {
    if (!desc->HasAttachment(at)) continue;
    const AtOps& ops = registry_.at_ops(at);
    AtContext ctx;
    DMX_RETURN_IF_ERROR(MakeAtContext(txn, desc, at, &ctx));
    Status s;
    switch (op) {
      case 0:
        if (ops.on_insert == nullptr) continue;
        stats_.at_calls.Increment();
        at_metrics_[at].calls->Increment();
        {
          ScopedTimer timer(at_metrics_[at].call_ns);
          s = ops.on_insert(ctx, new_key, new_rec);
        }
        break;
      case 1:
        if (ops.on_update == nullptr) continue;
        stats_.at_calls.Increment();
        at_metrics_[at].calls->Increment();
        {
          ScopedTimer timer(at_metrics_[at].call_ns);
          s = ops.on_update(ctx, old_key, new_key, old_rec, new_rec);
        }
        break;
      default:
        if (ops.on_delete == nullptr) continue;
        stats_.at_calls.Increment();
        at_metrics_[at].calls->Increment();
        {
          ScopedTimer timer(at_metrics_[at].call_ns);
          s = ops.on_delete(ctx, old_key, old_rec);
        }
        break;
    }
    DMX_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

// -- data access ------------------------------------------------------------------

Status Database::Fetch(Transaction* txn, const std::string& rel,
                       const Slice& record_key, Record* out) {
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(FindRelation(rel, &desc));
  std::string rec;
  DMX_RETURN_IF_ERROR(FetchRecord(txn, desc, record_key, &rec));
  *out = Record(std::move(rec));
  return Status::OK();
}

Status Database::FetchRecord(Transaction* txn,
                             const RelationDescriptor* desc,
                             const Slice& record_key, std::string* record) {
  DMX_RETURN_IF_ERROR(auth_.Check(txn->user(), desc->id, Privilege::kSelect));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(),
                                     LockNames::Relation(desc->id),
                                     LockMode::kIS));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(
      txn->id(), LockNames::Record(desc->id, record_key), LockMode::kS));
  const SmOps& sm = registry_.sm_ops(desc->sm_id);
  SmContext ctx;
  DMX_RETURN_IF_ERROR(MakeSmContext(txn, desc, &ctx));
  stats_.sm_calls.Increment();
  sm_metrics_[desc->sm_id].calls->Increment();
  ScopedTimer timer(sm_metrics_[desc->sm_id].call_ns);
  return sm.fetch(ctx, record_key, record);
}

Status Database::OpenScan(Transaction* txn, const std::string& rel,
                          const AccessPathId& path, const ScanSpec& spec,
                          std::unique_ptr<Scan>* out) {
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(FindRelation(rel, &desc));
  return OpenScanOn(txn, desc, path, spec, out);
}

Status Database::OpenScanOn(Transaction* txn, const RelationDescriptor* desc,
                            const AccessPathId& path, const ScanSpec& spec,
                            std::unique_ptr<Scan>* out) {
  DMX_RETURN_IF_ERROR(auth_.Check(txn->user(), desc->id, Privilege::kSelect));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(),
                                     LockNames::Relation(desc->id),
                                     LockMode::kS));
  std::unique_ptr<Scan> inner;
  if (path.is_storage_method()) {
    const SmOps& sm = registry_.sm_ops(desc->sm_id);
    SmContext ctx;
    DMX_RETURN_IF_ERROR(MakeSmContext(txn, desc, &ctx));
    stats_.sm_calls.Increment();
    sm_metrics_[desc->sm_id].calls->Increment();
    ScopedTimer timer(sm_metrics_[desc->sm_id].call_ns);
    DMX_RETURN_IF_ERROR(sm.open_scan(ctx, spec, &inner));
  } else {
    AtId at = path.at_id();
    if (at >= registry_.num_attachment_types() ||
        !desc->HasAttachment(at)) {
      return Status::InvalidArgument("no such access path");
    }
    const AtOps& ops = registry_.at_ops(at);
    if (ops.open_scan == nullptr) {
      return Status::NotSupported("attachment is not an access path");
    }
    // The planner already skips quarantined paths; a direct probe must be
    // refused the same way, or a damaged-but-readable structure that fell
    // behind its base relation would answer with stale rows and OK.
    if (desc->IsQuarantined(at, path.instance)) {
      return Status::Corruption(
          "access path " + ComponentName(ops, path.instance) + " on '" +
          desc->name + "' is quarantined; run REPAIR " + desc->name +
          " to rebuild it");
    }
    AtContext ctx;
    DMX_RETURN_IF_ERROR(MakeAtContext(txn, desc, at, &ctx));
    stats_.at_calls.Increment();
    at_metrics_[at].calls->Increment();
    Status s;
    {
      ScopedTimer timer(at_metrics_[at].call_ns);
      s = ops.open_scan(ctx, path.instance, spec, &inner);
    }
    if (s.IsCorruption()) {
      QuarantineOnAccess(desc, at, path.instance, s.ToString());
    }
    DMX_RETURN_IF_ERROR(s);
  }
  *out = std::make_unique<ManagedScan>(&scan_mgr_, txn, std::move(inner));
  return Status::OK();
}

Status Database::Lookup(Transaction* txn, const std::string& rel,
                        const AccessPathId& path, const Slice& key,
                        std::vector<std::string>* record_keys) {
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(FindRelation(rel, &desc));
  DMX_RETURN_IF_ERROR(auth_.Check(txn->user(), desc->id, Privilege::kSelect));
  if (path.is_storage_method()) {
    return Status::InvalidArgument("Lookup requires an access path");
  }
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(),
                                     LockNames::Relation(desc->id),
                                     LockMode::kIS));
  AtId at = path.at_id();
  if (at >= registry_.num_attachment_types() || !desc->HasAttachment(at)) {
    return Status::InvalidArgument("no such access path");
  }
  const AtOps& ops = registry_.at_ops(at);
  if (ops.lookup == nullptr) {
    return Status::NotSupported("attachment has no direct-by-key access");
  }
  if (desc->IsQuarantined(at, path.instance)) {
    return Status::Corruption(
        "access path " + ComponentName(ops, path.instance) + " on '" +
        desc->name + "' is quarantined; run REPAIR " + desc->name +
        " to rebuild it");
  }
  AtContext ctx;
  DMX_RETURN_IF_ERROR(MakeAtContext(txn, desc, at, &ctx));
  stats_.at_calls.Increment();
  at_metrics_[at].calls->Increment();
  Status s;
  {
    ScopedTimer timer(at_metrics_[at].call_ns);
    s = ops.lookup(ctx, path.instance, key, record_keys);
  }
  if (s.IsCorruption()) {
    QuarantineOnAccess(desc, at, path.instance, s.ToString());
  }
  return s;
}

Status Database::EstimateCost(Transaction* txn,
                              const RelationDescriptor* desc,
                              const AccessPathId& path,
                              const std::vector<ExprPtr>& predicates,
                              AccessCost* out) {
  if (path.is_storage_method()) {
    const SmOps& sm = registry_.sm_ops(desc->sm_id);
    SmContext ctx;
    DMX_RETURN_IF_ERROR(MakeSmContext(txn, desc, &ctx));
    if (sm.cost == nullptr) {
      return Status::NotSupported("storage method has no cost estimator");
    }
    return sm.cost(ctx, predicates, out);
  }
  AtId at = path.at_id();
  if (at >= registry_.num_attachment_types() || !desc->HasAttachment(at)) {
    out->usable = false;
    return Status::OK();
  }
  const AtOps& ops = registry_.at_ops(at);
  if (ops.cost == nullptr) {
    out->usable = false;
    return Status::OK();
  }
  AtContext ctx;
  DMX_RETURN_IF_ERROR(MakeAtContext(txn, desc, at, &ctx));
  return ops.cost(ctx, path.instance, predicates, out);
}

Status Database::CountRecords(Transaction* txn,
                              const RelationDescriptor* desc,
                              uint64_t* count) {
  const SmOps& sm = registry_.sm_ops(desc->sm_id);
  if (sm.count == nullptr) {
    *count = 0;
    return Status::OK();
  }
  SmContext ctx;
  DMX_RETURN_IF_ERROR(MakeSmContext(txn, desc, &ctx));
  return sm.count(ctx, count);
}

// -- corruption containment ------------------------------------------------------

Status Database::CheckWritable(const RelationDescriptor* desc) {
  if (!desc->AnyQuarantined()) return Status::OK();
  if (desc->sm_quarantined) {
    return Status::Corruption(
        "relation '" + desc->name + "' storage is quarantined (" +
        desc->sm_quarantine_reason + "); writes refused until REPAIR " +
        desc->name + " succeeds");
  }
  for (const RelationDescriptor::QuarantineEntry& q : desc->quarantined) {
    AtId at = static_cast<AtId>(q.at);
    if (at >= registry_.num_attachment_types()) continue;
    if (!desc->HasAttachment(at)) continue;
    const AtOps& ops = registry_.at_ops(at);
    if (ops.guards_integrity == nullptr ||
        !ops.guards_integrity(Slice(desc->at_desc[at]), q.instance)) {
      continue;  // plain index/stats: maintenance skips it; writes proceed
    }
    return Status::Corruption(
        "relation '" + desc->name + "' has quarantined integrity guard " +
        ComponentName(ops, q.instance) + " (" + q.reason +
        "); writes refused until REPAIR " + desc->name + " succeeds");
  }
  return Status::OK();
}

// -- graceful degradation --------------------------------------------------------

Status Database::CheckTxnWritable(Transaction* txn) const {
  // A transaction that began while the log was refusing appends carries a
  // deferred error; surface it on its first write, with the original
  // cause — more specific than the generic degraded-mode Busy below.
  if (txn != nullptr && !txn->log_error().ok()) return txn->log_error();
  // Degraded read-only mode: new write work is refused with Busy while
  // reads keep serving.
  return error_handler_->CheckWritable();
}

void Database::MaybeReportWriteFailure(const char* where, const Status& s) {
  // Only a retry-exhausted transient fault proves the *local* environment
  // is the problem. A plain IOError may come from anywhere — notably a
  // foreign server attachment — and must stay scoped to the operation.
  if (s.IsIOError() && s.IsRetryable()) {
    error_handler_->ReportWriteFailure(where, s);
  }
}

Status Database::RecoverWritePath() {
  // Un-poison / probe the log in place (header rewrite or stale-tail
  // truncation as needed), then prove the write path works end to end by
  // forcing out everything still buffered.
  DMX_RETURN_IF_ERROR(log_.Resume());
  DMX_RETURN_IF_ERROR(log_.FlushAll());
  if (archiver_) {
    // If the degradation came from an unreachable archive, recovery is not
    // done until the sealed-segment backlog has actually landed there.
    DMX_RETURN_IF_ERROR(archiver_->ArchivePending());
    archiver_->Kick();  // un-park the background loop
  }
  return Status::OK();
}

Status Database::PersistQuarantineRecord() {
  Status save = catalog_.Save();
  if (save.ok()) {
    quarantine_save_pending_.store(false, std::memory_order_relaxed);
    return save;
  }
  metric_quarantine_save_failures_->Increment();
  quarantine_save_pending_.store(true, std::memory_order_relaxed);
  return save;
}

void Database::QuarantineOnAccess(const RelationDescriptor* desc, AtId at,
                                  uint32_t instance,
                                  const std::string& reason) {
  // Callers hold only a shared relation lock, so the descriptor is flipped
  // through the catalog's copy-on-write mutate: concurrent scans keep
  // reading their (now retired) snapshot, and concurrent quarantines merge
  // instead of overwriting each other.
  bool added = false;
  Status us = catalog_.MutateRelation(
      desc->id, [&](RelationDescriptor& d) {
        if (d.IsQuarantined(at, instance)) return false;
        d.Quarantine(at, instance, reason);
        added = true;
        return true;
      });
  if (!us.ok()) return;
  if (added) metric_quarantine_events_->Increment();
  // A maintenance action, persisted immediately — if the process dies the
  // damage record must survive so the planner keeps avoiding the path.
  if (added || quarantine_save_pending_.load(std::memory_order_relaxed)) {
    PersistQuarantineRecord().ok();
  }
}

Status Database::CheckRelation(Transaction* txn, const std::string& rel,
                               CheckResult* out) {
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(FindRelation(rel, &desc));
  DMX_RETURN_IF_ERROR(auth_.Check(txn->user(), desc->id, Privilege::kSelect));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(), LockNames::Relation(desc->id),
                                     LockMode::kS));
  metric_check_runs_->Increment();
  out->clean = true;
  out->items = 0;
  out->findings.clear();
  out->quarantined.clear();
  out->cleared.clear();

  // CHECK runs under a shared lock, so concurrent readers may hold
  // pointers into the live descriptor and a concurrent access may
  // quarantine a path mid-sweep. Decisions are therefore buffered against
  // the snapshot and applied at the end through the catalog's atomic
  // copy-on-write mutate, which merges with concurrently-recorded entries
  // instead of overwriting them.
  struct PendingOp {
    bool storage;  // storage-method flag vs. attachment entry
    bool set;      // quarantine vs. clear
    AtId at;
    uint32_t instance;
    std::string reason;
  };
  std::vector<PendingOp> pending;

  // Storage-method structural sweep.
  const SmOps& sm = registry_.sm_ops(desc->sm_id);
  if (sm.verify != nullptr) {
    SmContext ctx;
    DMX_RETURN_IF_ERROR(MakeSmContext(txn, desc, &ctx));
    VerifyReport report;
    stats_.sm_calls.Increment();
    sm_metrics_[desc->sm_id].calls->Increment();
    Status vs;
    {
      ScopedTimer timer(sm_metrics_[desc->sm_id].call_ns);
      vs = sm.verify(ctx, &report);
    }
    if (!vs.ok()) {
      out->findings.push_back({"storage",
                               "verify could not run: " + vs.ToString()});
    } else {
      out->items += report.items;
      for (const std::string& p : report.problems) {
        out->findings.push_back({"storage", p});
      }
      if (!report.clean()) {
        if (!desc->sm_quarantined) {
          metric_quarantine_events_->Increment();
          out->quarantined.push_back("storage");
          pending.push_back({true, true, 0, 0, report.problems.front()});
        }
      } else if (desc->sm_quarantined) {
        out->cleared.push_back("storage");
        pending.push_back({true, false, 0, 0, ""});
      }
    }
  }

  // Per-attachment, per-instance cross-checks.
  for (AtId at = 0; at < registry_.num_attachment_types(); ++at) {
    if (!desc->HasAttachment(at)) continue;
    const AtOps& ops = registry_.at_ops(at);
    if (ops.verify == nullptr) continue;
    std::vector<uint32_t> instances;
    if (ops.list_instances != nullptr) {
      Status ls = ops.list_instances(Slice(desc->at_desc[at]), &instances);
      if (!ls.ok()) {
        out->findings.push_back(
            {std::string(ops.name != nullptr ? ops.name : "attachment"),
             "cannot enumerate instances: " + ls.ToString()});
        continue;
      }
    } else if (ops.instance_count != nullptr &&
               ops.instance_count(Slice(desc->at_desc[at])) == 0) {
      continue;
    } else {
      instances.push_back(kAllInstances);
    }
    AtContext ctx;
    DMX_RETURN_IF_ERROR(MakeAtContext(txn, desc, at, &ctx));
    for (uint32_t inst : instances) {
      const std::string component = ComponentName(ops, inst);
      VerifyReport report;
      stats_.at_calls.Increment();
      at_metrics_[at].calls->Increment();
      Status vs;
      {
        ScopedTimer timer(at_metrics_[at].call_ns);
        vs = ops.verify(ctx, inst, &report);
      }
      if (!vs.ok()) {
        out->findings.push_back(
            {component, "verify could not run: " + vs.ToString()});
        continue;
      }
      out->items += report.items;
      for (const std::string& p : report.problems) {
        out->findings.push_back({component, p});
      }
      if (!report.clean()) {
        if (!desc->IsQuarantined(at, inst)) {
          metric_quarantine_events_->Increment();
          out->quarantined.push_back(component);
          pending.push_back({false, true, at, inst, report.problems.front()});
        }
      } else if (desc->IsQuarantined(at, inst)) {
        // Verified consistent again (repair finished, or the damage record
        // was stale) — lift the quarantine.
        out->cleared.push_back(component);
        pending.push_back({false, false, at, inst, ""});
      }
    }
  }

  out->clean = out->findings.empty();
  if (!out->clean) metric_check_failures_->Increment();

  bool changed = false;
  DMX_RETURN_IF_ERROR(catalog_.MutateRelation(
      desc->id, [&](RelationDescriptor& d) {
        for (const PendingOp& op : pending) {
          if (op.storage) {
            if (op.set == d.sm_quarantined) continue;
            d.sm_quarantined = op.set;
            d.sm_quarantine_reason = op.reason;
            changed = true;
          } else if (op.set) {
            if (d.IsQuarantined(op.at, op.instance)) continue;
            d.Quarantine(op.at, op.instance, op.reason);
            changed = true;
          } else if (d.IsQuarantined(op.at, op.instance)) {
            d.ClearQuarantine(op.at, op.instance);
            changed = true;
          }
        }
        // Drop damage records whose attachment type/instances no longer
        // exist.
        for (size_t i = d.quarantined.size(); i-- > 0;) {
          AtId qat = static_cast<AtId>(d.quarantined[i].at);
          if (qat >= registry_.num_attachment_types() ||
              !d.HasAttachment(qat)) {
            d.quarantined.erase(d.quarantined.begin() +
                                static_cast<ptrdiff_t>(i));
            changed = true;
          }
        }
        return changed;
      }));
  if (changed) {
    // Quarantine is a maintenance action, not transactional state: persist
    // immediately so a crash cannot lose the damage record.
    DMX_RETURN_IF_ERROR(PersistQuarantineRecord());
  } else if (quarantine_save_pending_.load(std::memory_order_relaxed)) {
    PersistQuarantineRecord().ok();  // retry an earlier failed save
  }
  return Status::OK();
}

Status Database::RepairRelation(Transaction* txn, const std::string& rel,
                                RepairResult* out) {
  DMX_RETURN_IF_ERROR(CheckTxnWritable(txn));
  const RelationDescriptor* desc;
  DMX_RETURN_IF_ERROR(FindRelation(rel, &desc));
  DMX_RETURN_IF_ERROR(auth_.Check(txn->user(), desc->id, Privilege::kUpdate));
  DMX_RETURN_IF_ERROR(lock_mgr_.Lock(txn->id(), LockNames::Relation(desc->id),
                                     LockMode::kX));
  metric_repair_runs_->Increment();
  out->repaired.clear();
  out->unrepaired.clear();
  const RelationId id = desc->id;

  // Base storage: there is no redundant copy to rebuild from; re-verify
  // and lift the quarantine only if the sweep now comes back clean.
  if (desc->sm_quarantined) {
    const SmOps& sm = registry_.sm_ops(desc->sm_id);
    VerifyReport report;
    Status vs = Status::NotSupported("storage method has no verify");
    if (sm.verify != nullptr) {
      SmContext ctx;
      DMX_RETURN_IF_ERROR(MakeSmContext(txn, desc, &ctx));
      vs = sm.verify(ctx, &report);
    }
    if (vs.ok() && report.clean()) {
      const std::string reason = desc->sm_quarantine_reason;
      DMX_RETURN_IF_ERROR(
          catalog_.MutateRelation(id, [](RelationDescriptor& d) {
            d.sm_quarantined = false;
            d.sm_quarantine_reason.clear();
            return true;
          }));
      txn->Defer(TxnEvent::kCommit,
                 [this](Transaction*) { return catalog_.Save(); });
      // A rollback must resurrect the damage record, or the in-memory
      // catalog would say clean while the durable one still says
      // quarantined — and the quarantine would silently return on restart.
      txn->Defer(TxnEvent::kAbort, [this, id, reason](Transaction*) {
        return catalog_.MutateRelation(id, [&](RelationDescriptor& d) {
          if (d.sm_quarantined) return false;
          d.sm_quarantined = true;
          d.sm_quarantine_reason = reason;
          return true;
        });
      });
      out->repaired.push_back("storage");
    } else {
      out->unrepaired.push_back(
          "storage: base relation storage cannot be rebuilt from itself; "
          "restore from backup");
    }
  }

  // Quarantined attachment instances: rebuild each from the base relation.
  const std::vector<RelationDescriptor::QuarantineEntry> targets =
      desc->quarantined;
  for (const RelationDescriptor::QuarantineEntry& q : targets) {
    const AtId at = static_cast<AtId>(q.at);
    const uint32_t inst = q.instance;
    // Catalog mutations retire the previous descriptor object; re-fetch
    // the live one so this entry sees any swap an earlier iteration made.
    desc = catalog_.Find(id);
    if (desc == nullptr) break;
    if (at >= registry_.num_attachment_types() || !desc->HasAttachment(at)) {
      // The damaged instance is gone; nothing left to repair.
      DMX_RETURN_IF_ERROR(
          catalog_.MutateRelation(id, [&](RelationDescriptor& d) {
            d.ClearQuarantine(at, inst);
            return true;
          }));
      txn->Defer(TxnEvent::kCommit,
                 [this](Transaction*) { return catalog_.Save(); });
      txn->Defer(TxnEvent::kAbort,
                 [this, id, at, inst, reason = q.reason](Transaction*) {
                   return catalog_.MutateRelation(
                       id, [&](RelationDescriptor& d) {
                         if (d.IsQuarantined(at, inst)) return false;
                         d.Quarantine(at, inst, reason);
                         return true;
                       });
                 });
      out->repaired.push_back("attachment " + std::to_string(q.at) + "#" +
                              std::to_string(inst) + " (dropped)");
      continue;
    }
    const AtOps& ops = registry_.at_ops(at);
    const std::string component = ComponentName(ops, inst);

    if (ops.repair_instance != nullptr) {
      // Persistent storage: build a fresh structure off the base relation.
      // The old storage stays untouched until commit, so an abort (or a
      // crash before the deferred catalog save) recovers to the old, still
      // quarantined state and REPAIR can simply run again.
      const std::string old_desc = desc->at_desc[at];
      AtContext ctx;
      DMX_RETURN_IF_ERROR(MakeAtContext(txn, desc, at, &ctx));
      std::string new_desc;
      stats_.at_calls.Increment();
      at_metrics_[at].calls->Increment();
      Status rs;
      {
        ScopedTimer timer(at_metrics_[at].call_ns);
        rs = ops.repair_instance(ctx, inst, &new_desc);
      }
      if (!rs.ok()) {
        out->unrepaired.push_back(component + ": rebuild failed: " +
                                  rs.ToString());
        continue;
      }
      DMX_RETURN_IF_ERROR(
          catalog_.MutateRelation(id, [&](RelationDescriptor& d) {
            d.at_desc[at] = new_desc;
            d.ClearQuarantine(at, inst);
            return true;
          }));
      InvalidateAttachmentRuntime(id);
      metric_repair_rebuilt_->Increment();
      out->repaired.push_back(component);
      txn->Defer(TxnEvent::kCommit,
                 [this, id, at, inst, old_desc](Transaction* t) {
                   // The rebuilt structure's pages are not WAL-logged;
                   // flush them (and sync), then durably publish the new
                   // anchor, and only then free the old storage. A crash
                   // before the save recovers to the old, still-
                   // quarantined descriptor with its pages intact; a
                   // crash after the save merely leaks the old pages. The
                   // old storage must never be freed before the save: the
                   // flushed frees would outlive a crash whose recovery
                   // still points at them, double-freeing on the next
                   // release.
                   DMX_RETURN_IF_ERROR(buffer_pool_->FlushAll());
                   DMX_RETURN_IF_ERROR(catalog_.Save());
                   const RelationDescriptor* d = catalog_.Find(id);
                   if (d != nullptr) {
                     const AtOps& aops = registry_.at_ops(at);
                     if (aops.release_instance != nullptr) {
                       AtContext actx;
                       if (MakeAtContext(t, d, at, &actx).ok()) {
                         // Hand the release the *pre-repair* descriptor so
                         // it can locate the damaged storage. The walk may
                         // trip over the very corruption being repaired;
                         // the rebuild is already durably published, so a
                         // failed release only leaks the damaged pages.
                         actx.at_desc = Slice(old_desc);
                         // Leak-only on failure (see above).
                         (void)aops.release_instance(actx, inst);
                       }
                     }
                   }
                   // Make the frees durable too; losing them in a crash
                   // only leaks pages.
                   return buffer_pool_->FlushAll();
                 });
      txn->Defer(TxnEvent::kAbort,
                 [this, id, at, inst, old_desc, new_desc,
                  reason = q.reason](Transaction* t) {
                   const RelationDescriptor* d = catalog_.Find(id);
                   if (d == nullptr) return Status::OK();
                   const AtOps& aops = registry_.at_ops(at);
                   if (aops.release_instance != nullptr) {
                     AtContext actx;
                     if (MakeAtContext(t, d, at, &actx).ok()) {
                       actx.at_desc = Slice(new_desc);
                       // Abort-path cleanup: the rebuilt structure was never
                       // published, so a failed release only leaks it.
                       (void)aops.release_instance(actx, inst);
                     }
                   }
                   Status st =
                       catalog_.MutateRelation(id, [&](RelationDescriptor& r) {
                         r.at_desc[at] = old_desc;
                         r.Quarantine(at, inst, reason);
                         return true;
                       });
                   InvalidateAttachmentRuntime(id);
                   return st;
                 });
    } else {
      // Purely derived in-memory state: drop the runtime and reopen (open
      // re-primes from the base relation), then demand a clean re-verify.
      InvalidateAttachmentRuntime(id);
      AtContext ctx;
      DMX_RETURN_IF_ERROR(MakeAtContext(txn, desc, at, &ctx));
      VerifyReport report;
      Status vs = ops.verify != nullptr
                      ? ops.verify(ctx, inst, &report)
                      : Status::NotSupported("no verify procedure");
      if (vs.ok() && report.clean()) {
        DMX_RETURN_IF_ERROR(
            catalog_.MutateRelation(id, [&](RelationDescriptor& d) {
              d.ClearQuarantine(at, inst);
              return true;
            }));
        txn->Defer(TxnEvent::kCommit,
                   [this](Transaction*) { return catalog_.Save(); });
        txn->Defer(TxnEvent::kAbort,
                   [this, id, at, inst, reason = q.reason](Transaction*) {
                     Status st = catalog_.MutateRelation(
                         id, [&](RelationDescriptor& d) {
                           if (d.IsQuarantined(at, inst)) return false;
                           d.Quarantine(at, inst, reason);
                           return true;
                         });
                     // The re-primed runtime may reflect rolled-back
                     // data; drop it so the next open re-derives.
                     InvalidateAttachmentRuntime(id);
                     return st;
                   });
        out->repaired.push_back(component);
      } else if (!vs.ok()) {
        out->unrepaired.push_back(component + ": " + vs.ToString());
      } else {
        out->unrepaired.push_back(component +
                                  ": still inconsistent after rebuild: " +
                                  report.problems.front());
      }
    }
  }
  return Status::OK();
}

}  // namespace dmx
