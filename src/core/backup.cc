// Online backup (Database::Backup), offline point-in-time restore
// (Database::Restore), and the manifest/verification helpers of backup.h.

#include "src/core/backup.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/core/database.h"
#include "src/storage/page_file.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"
#include "src/util/metrics.h"
#include "src/wal/archiver.h"
#include "src/wal/wal_format.h"

namespace dmx {

namespace {

std::string BasenameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string HexCrc(uint32_t crc) {
  char buf[16];
  snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

bool ParseHex32(const std::string& s, uint32_t* out) {
  if (s.empty() || s.size() > 8) return false;
  char* end = nullptr;
  const unsigned long long v = strtoull(s.c_str(), &end, 16);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

bool ParseDec64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  char* end = nullptr;
  const unsigned long long v = strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > start) out.push_back(line.substr(start, pos - start));
  }
  return out;
}

/// Write `data` to a fresh file at `path` and sync it (not its directory
/// entry — batches of files share one SyncDir).
Status WriteFileSynced(Env* env, const std::string& path,
                       const std::string& data) {
  std::unique_ptr<RandomAccessFile> file;
  DMX_RETURN_IF_ERROR(env->NewRandomAccessFile(path, /*create=*/true, &file));
  Status s = file->Truncate(0);
  if (s.ok() && !data.empty()) s = file->Write(0, data.data(), data.size());
  if (s.ok()) s = file->Sync(/*data_only=*/false);
  Status c = file->Close();
  return s.ok() ? c : s;
}

/// Copy `from` into the backup, recording its size and CRC32C. Reads the
/// whole file in one pass, so an atomically-replaced source (catalog,
/// storage-method snapshots) yields a complete old or new version.
Status CopyFileWithCrc(Env* env, const std::string& from,
                       const std::string& to, uint64_t* size, uint32_t* crc) {
  std::string data;
  DMX_RETURN_IF_ERROR(env->ReadFileToString(from, &data));
  DMX_RETURN_IF_ERROR(WriteFileSynced(env, to, data));
  *size = data.size();
  *crc = Crc32c(data.data(), data.size());
  return Status::OK();
}

}  // namespace

// -- manifest -----------------------------------------------------------------

std::string EncodeBackupManifest(const BackupManifest& m) {
  std::string out = "dmx-backup-manifest v1\n";
  out += "begin_lsn " + std::to_string(m.begin_lsn) + "\n";
  out += "end_lsn " + std::to_string(m.end_lsn) + "\n";
  out += "pages " + std::to_string(m.pages) + "\n";
  for (const BackupManifest::FileEntry& e : m.files) {
    out += "file " + e.name + " " + std::to_string(e.size) + " " +
           HexCrc(e.crc) + "\n";
  }
  out += "crc " + HexCrc(Crc32c(out.data(), out.size())) + "\n";
  return out;
}

Status ParseBackupManifest(const std::string& data, BackupManifest* out) {
  BackupManifest m;
  bool saw_header = false;
  bool saw_crc = false;
  size_t pos = 0;
  while (pos < data.size()) {
    const size_t eol = data.find('\n', pos);
    if (eol == std::string::npos) {
      return Status::InvalidArgument("backup manifest: unterminated line");
    }
    const size_t line_start = pos;
    const std::string line = data.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != "dmx-backup-manifest v1") {
        return Status::InvalidArgument(
            "not a dmx backup manifest (unrecognized first line)");
      }
      saw_header = true;
      continue;
    }
    if (saw_crc) {
      return Status::Corruption("backup manifest: data after checksum line");
    }
    const std::vector<std::string> tok = SplitWs(line);
    if (tok.empty()) continue;
    uint64_t v64 = 0;
    uint32_t v32 = 0;
    if (tok[0] == "begin_lsn" && tok.size() == 2 && ParseDec64(tok[1], &v64)) {
      m.begin_lsn = v64;
    } else if (tok[0] == "end_lsn" && tok.size() == 2 &&
               ParseDec64(tok[1], &v64)) {
      m.end_lsn = v64;
    } else if (tok[0] == "pages" && tok.size() == 2 &&
               ParseDec64(tok[1], &v64)) {
      m.pages = static_cast<uint32_t>(v64);
    } else if (tok[0] == "file" && tok.size() == 4 &&
               ParseDec64(tok[2], &v64) && ParseHex32(tok[3], &v32)) {
      m.files.push_back({tok[1], v64, v32});
    } else if (tok[0] == "crc" && tok.size() == 2 && ParseHex32(tok[1], &v32)) {
      const uint32_t actual = Crc32c(data.data(), line_start);
      if (v32 != actual) {
        return Status::Corruption(
            "backup manifest checksum mismatch (torn or tampered manifest)");
      }
      saw_crc = true;
    } else {
      return Status::InvalidArgument("backup manifest: bad line '" + line +
                                     "'");
    }
  }
  if (!saw_header || !saw_crc) {
    return Status::InvalidArgument(
        "backup manifest incomplete (missing header or checksum line)");
  }
  if (m.end_lsn < m.begin_lsn) {
    return Status::InvalidArgument("backup manifest lsn range inverted");
  }
  *out = std::move(m);
  return Status::OK();
}

Status LoadBackupManifest(Env* env, const std::string& dir,
                          BackupManifest* out) {
  std::string data;
  Status s =
      env->ReadFileToString(dir + "/" + kBackupManifestName, &data);
  if (s.IsNotFound()) {
    return Status::InvalidArgument(
        "'" + dir + "' has no " + kBackupManifestName +
        " — not a backup directory, or an interrupted backup");
  }
  DMX_RETURN_IF_ERROR(s);
  return ParseBackupManifest(data, out);
}

Status VerifyBackupDir(Env* env, const std::string& dir, std::string* report) {
  const auto note = [report](const std::string& line) {
    if (report != nullptr) {
      report->append(line);
      report->push_back('\n');
    }
  };
  BackupManifest m;
  DMX_RETURN_IF_ERROR(LoadBackupManifest(env, dir, &m));
  note("manifest ok: begin_lsn=" + std::to_string(m.begin_lsn) +
       " end_lsn=" + std::to_string(m.end_lsn) +
       " pages=" + std::to_string(m.pages) +
       " files=" + std::to_string(m.files.size()));

  struct Seg {
    SegmentHeader hdr;
    std::string name;
  };
  std::vector<Seg> segs;
  bool have_pages = false;
  bool have_live = false;
  Lsn live_base = 0;
  Lsn live_end = 0;
  uint32_t live_gen = 0;
  for (const BackupManifest::FileEntry& e : m.files) {
    const std::string path = dir + "/" + e.name;
    std::string data;
    Status rs = env->ReadFileToString(path, &data);
    if (rs.IsNotFound()) {
      return Status::Corruption("backup file '" + e.name + "' is missing");
    }
    DMX_RETURN_IF_ERROR(rs);
    if (data.size() != e.size) {
      return Status::Corruption("backup file '" + e.name + "' is " +
                                std::to_string(data.size()) +
                                " bytes; the manifest recorded " +
                                std::to_string(e.size));
    }
    if (Crc32c(data.data(), data.size()) != e.crc) {
      return Status::Corruption("backup file '" + e.name +
                                "' fails its manifest checksum");
    }
    if (e.name == "db.pages") {
      have_pages = true;
      if (e.size != static_cast<uint64_t>(m.pages) * kDiskPageSize) {
        return Status::Corruption(
            "page file size disagrees with the manifest page count");
      }
    } else if (e.name == "wal") {
      have_live = true;
      if (data.size() < kLogHeaderSize) {
        return Status::Corruption("live log copy shorter than its header");
      }
      Status hs = DecodeLiveHeader(data.data(), &live_base, &live_gen);
      if (!hs.ok()) {
        return Status::Corruption(hs.message() + " in the live log copy");
      }
      size_t p = kLogHeaderSize;
      while (p < data.size()) {
        if (p + kFrameHeaderSize > data.size()) {
          return Status::Corruption("torn frame header in the live log copy");
        }
        const uint32_t len = DecodeFixed32(data.data() + p);
        if (p + kFrameHeaderSize + len > data.size()) {
          return Status::Corruption("torn frame body in the live log copy");
        }
        const uint32_t crc = DecodeFixed32(data.data() + p + 4);
        if (crc !=
            WalFrameCrc(live_gen, data.data() + p + kFrameHeaderSize, len)) {
          return Status::Corruption(
              "frame checksum mismatch at offset " + std::to_string(p) +
              " in the live log copy");
        }
        p += kFrameHeaderSize + len;
      }
      live_end = live_base + (data.size() - kLogHeaderSize);
    } else if (e.name.size() > 4 &&
               e.name.compare(e.name.size() - 4, 4, ".seg") == 0) {
      SegmentHeader hdr;
      DMX_RETURN_IF_ERROR(VerifySegmentFile(env, path, &hdr));
      segs.push_back({hdr, e.name});
    }
    note("ok " + e.name + " (" + std::to_string(e.size) + " bytes, crc " +
         HexCrc(e.crc) + ")");
  }
  if (!have_pages || !have_live) {
    return Status::Corruption(
        "backup manifest lists no page file or no live log copy");
  }
  std::sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
    return a.hdr.base_lsn < b.hdr.base_lsn;
  });
  Lsn cur = m.begin_lsn;
  for (const Seg& seg : segs) {
    if (seg.hdr.base_lsn != cur) {
      return Status::Corruption(
          "wal chain gap: segment '" + seg.name + "' begins at lsn " +
          std::to_string(seg.hdr.base_lsn) + ", expected lsn " +
          std::to_string(cur));
    }
    cur = seg.hdr.end_lsn;
  }
  if (live_base != cur) {
    return Status::Corruption(
        "wal chain gap: the live log copy begins at lsn " +
        std::to_string(live_base) + ", expected lsn " + std::to_string(cur));
  }
  if (live_end < m.end_lsn) {
    return Status::Corruption("captured wal ends at lsn " +
                              std::to_string(live_end) +
                              ", before the backup's end lsn " +
                              std::to_string(m.end_lsn));
  }
  note("wal chain contiguous: lsn " + std::to_string(m.begin_lsn) + " .. " +
       std::to_string(live_end));
  return Status::OK();
}

// -- online backup ------------------------------------------------------------

Status Database::Backup(const std::string& dest_dir, BackupResult* result) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  Status s = [&]() -> Status {
    // A degraded database cannot flush, so it cannot produce a backup whose
    // end LSN actually covers its page copies.
    DMX_RETURN_IF_ERROR(error_handler_->CheckWritable());
    DMX_RETURN_IF_ERROR(env_->CreateDir(dest_dir));
    std::vector<std::string> existing;
    DMX_RETURN_IF_ERROR(env_->ListDir(dest_dir, &existing));
    if (!existing.empty()) {
      return Status::InvalidArgument("backup target '" + dest_dir +
                                     "' is not empty");
    }

    // Pin the WAL for the duration: rotation, truncation, and segment
    // reclaim return Busy, so the history range this backup captures
    // cannot vanish or shift mid-copy. Writers keep appending freely.
    log_.PinWal();
    struct Unpin {
      LogManager* log;
      ~Unpin() { log->UnpinWal(); }
    } unpin{&log_};

    BackupManifest m;
    // Phase-1 checkpoint flush (no quiescence): bounds the WAL replay a
    // restore must do and writes the storage-method snapshots we copy.
    DMX_RETURN_IF_ERROR(DoCheckpointFlush());
    {
      const std::vector<LogManager::SegmentInfo> segs = log_.segments();
      m.begin_lsn = segs.empty() ? log_.base_lsn() : segs.front().base_lsn;
    }

    // Fuzzy page copy: allocation structure frozen, record writers live,
    // torn reads absorbed by per-page checksum retry.
    uint32_t pages = 0;
    uint32_t pages_crc = 0;
    DMX_RETURN_IF_ERROR(
        page_file_.SnapshotTo(dest_dir + "/db.pages", &pages, &pages_crc));
    m.pages = pages;
    m.files.push_back(
        {"db.pages", static_cast<uint64_t>(pages) * kDiskPageSize, pages_crc});

    // Catalog and storage-method snapshot files. Both are replaced only via
    // WriteFileAtomic, so a single-pass read observes a complete version;
    // WAL replay reconciles whichever version we caught.
    uint64_t size = 0;
    uint32_t crc = 0;
    DMX_RETURN_IF_ERROR(CopyFileWithCrc(env_, dir_ + "/catalog",
                                        dest_dir + "/catalog", &size, &crc));
    m.files.push_back({"catalog", size, crc});
    std::vector<std::string> names;
    DMX_RETURN_IF_ERROR(env_->ListDir(dir_, &names));
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      if (name.rfind("mm_", 0) == 0 && name.size() > 12 &&
          name.compare(name.size() - 9, 9, ".snapshot") == 0) {
        DMX_RETURN_IF_ERROR(CopyFileWithCrc(env_, dir_ + "/" + name,
                                            dest_dir + "/" + name, &size,
                                            &crc));
        m.files.push_back({name, size, crc});
      }
    }

    // Everything appended so far becomes part of the backup; the flushed
    // LSN after this force is the consistency point.
    DMX_RETURN_IF_ERROR(log_.FlushAll());
    m.end_lsn = log_.flushed_lsn();

    // The retained segment chain (stable: reclaim is pinned out).
    for (const LogManager::SegmentInfo& seg : log_.segments()) {
      const std::string name = BasenameOf(seg.path);
      DMX_RETURN_IF_ERROR(CopyFileWithCrc(env_, seg.path,
                                          dest_dir + "/" + name, &size, &crc));
      m.files.push_back({name, size, crc});
    }
    // The live log's durable prefix (covers at least up to end_lsn).
    DMX_RETURN_IF_ERROR(log_.SnapshotLiveTo(dest_dir + "/wal"));
    std::string wal_copy;
    DMX_RETURN_IF_ERROR(env_->ReadFileToString(dest_dir + "/wal", &wal_copy));
    m.files.push_back(
        {"wal", wal_copy.size(), Crc32c(wal_copy.data(), wal_copy.size())});

    // Make every entry durable, then publish the manifest — the backup's
    // atomic commit point — last.
    DMX_RETURN_IF_ERROR(env_->SyncDir(dest_dir));
    DMX_RETURN_IF_ERROR(env_->WriteFileAtomic(
        dest_dir + "/" + kBackupManifestName, EncodeBackupManifest(m)));

    last_backup_lsn_.store(m.end_lsn, std::memory_order_release);
    Counter* last = metrics->GetCounter("backup.last_lsn");
    last->Reset();
    last->Increment(m.end_lsn);
    if (result != nullptr) {
      result->begin_lsn = m.begin_lsn;
      result->end_lsn = m.end_lsn;
      result->pages = m.pages;
      result->files = m.files.size();
    }
    return Status::OK();
  }();
  // A backup failure stays with the operation: the destination is often a
  // different (possibly remote) volume, and its faults must not degrade
  // the live database the way a local write-path fault would.
  metrics->GetCounter(s.ok() ? "backup.runs" : "backup.failures")->Increment();
  return s;
}

// -- offline restore ----------------------------------------------------------

Status Database::Restore(const RestoreOptions& options, Lsn* replayed_to) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  if (options.backup_dir.empty() || options.target_dir.empty()) {
    return Status::InvalidArgument(
        "restore requires a backup and a target directory");
  }
  BackupManifest m;
  DMX_RETURN_IF_ERROR(LoadBackupManifest(env, options.backup_dir, &m));
  DMX_RETURN_IF_ERROR(env->CreateDir(options.target_dir));
  std::vector<std::string> existing;
  DMX_RETURN_IF_ERROR(env->ListDir(options.target_dir, &existing));
  if (!existing.empty()) {
    return Status::InvalidArgument("restore target '" + options.target_dir +
                                   "' is not empty");
  }
  if (options.target_lsn != 0 && options.target_lsn < m.end_lsn) {
    return Status::InvalidArgument(
        "target lsn " + std::to_string(options.target_lsn) +
        " predates the backup's consistency point (end lsn " +
        std::to_string(m.end_lsn) +
        "): its page copies may already contain effects past the target");
  }

  // Verify and install every manifest file except the live log copy; the
  // WAL tail is materialized separately below (possibly trimmed, possibly
  // superseded by archived segments).
  std::string live_body;
  Lsn live_base = 0;
  uint32_t live_gen = 0;
  bool have_live = false;
  for (const BackupManifest::FileEntry& e : m.files) {
    std::string data;
    Status rs = env->ReadFileToString(options.backup_dir + "/" + e.name,
                                      &data);
    if (rs.IsNotFound()) {
      return Status::Corruption("backup file '" + e.name + "' is missing");
    }
    DMX_RETURN_IF_ERROR(rs);
    if (data.size() != e.size ||
        Crc32c(data.data(), data.size()) != e.crc) {
      return Status::Corruption("backup file '" + e.name +
                                "' fails verification against the manifest");
    }
    if (e.name == "wal") {
      if (data.size() < kLogHeaderSize) {
        return Status::Corruption("live log copy shorter than its header");
      }
      Status hs = DecodeLiveHeader(data.data(), &live_base, &live_gen);
      if (!hs.ok()) {
        return Status::Corruption(hs.message() + " in the live log copy");
      }
      live_body = data.substr(kLogHeaderSize);
      have_live = true;
      continue;
    }
    DMX_RETURN_IF_ERROR(
        WriteFileSynced(env, options.target_dir + "/" + e.name, data));
  }
  if (!have_live) {
    return Status::Corruption("backup manifest lists no live log copy");
  }
  const Lsn live_avail = live_base + live_body.size();

  // Choose the WAL tail past the backup's sealed segments: the backup's
  // own live log copy, or — when the target lies beyond it — a contiguous
  // chain of archived segments beginning at the same base LSN (the first
  // segment sealed after the backup supersedes the live copy: it is the
  // same history, extended).
  Lsn target = options.target_lsn;
  struct TailPiece {
    Lsn base = 0;
    Lsn end = 0;
    uint32_t gen = 0;
    std::string path;  // empty: the backup's live log copy
  };
  std::vector<TailPiece> tail;
  if (target != 0 && target <= live_avail) {
    tail.push_back({live_base, live_avail, live_gen, ""});
  } else {
    std::map<Lsn, TailPiece> archived;  // base lsn -> candidate
    if (!options.archive_dir.empty()) {
      std::vector<std::string> names;
      Status ls = env->ListDir(options.archive_dir, &names);
      if (!ls.ok() && !ls.IsNotFound()) return ls;
      if (ls.ok()) {
        for (const std::string& name : names) {
          uint32_t seqno = 0;
          if (!ParseSegmentName(name, "wal", &seqno)) continue;
          const std::string path = options.archive_dir + "/" + name;
          // Header-only peek for indexing; the chosen pieces get a full
          // structural verification before installation.
          std::unique_ptr<RandomAccessFile> file;
          DMX_RETURN_IF_ERROR(
              env->NewRandomAccessFile(path, /*create=*/false, &file));
          char hdr[kSegHeaderSize];
          size_t n = 0;
          Status hr = file->Read(0, kSegHeaderSize, hdr, &n);
          // Read-only header probe; hr carries the outcome.
          (void)file->Close();
          DMX_RETURN_IF_ERROR(hr);
          SegmentHeader parsed;
          if (n != kSegHeaderSize ||
              !DecodeSegmentHeader(hdr, &parsed).ok()) {
            continue;  // unusable file; a gap error below names the lsn
          }
          auto it = archived.find(parsed.base_lsn);
          if (it == archived.end() || parsed.end_lsn > it->second.end) {
            archived[parsed.base_lsn] =
                {parsed.base_lsn, parsed.end_lsn, parsed.gen, path};
          }
        }
      }
    }
    Lsn cur = live_base;
    while (target == 0 || cur < target) {
      auto it = archived.find(cur);
      if (it == archived.end()) break;
      tail.push_back(it->second);
      cur = it->second.end;
    }
    if (tail.empty() || cur < live_avail) {
      // No archived continuation (or one ending before the backup's own
      // copy): fall back to the captured live log.
      tail.clear();
      tail.push_back({live_base, live_avail, live_gen, ""});
      cur = live_avail;
    }
    if (target == 0) target = cur;
    if (target > cur) {
      return Status::InvalidArgument(
          "wal history ends at lsn " + std::to_string(cur) +
          "; cannot reach target lsn " + std::to_string(target) +
          " (no archived segment begins at lsn " + std::to_string(cur) + ")");
    }
  }

  // Install the tail: every piece but the last lands verbatim as a sealed
  // segment; the last is trimmed at the highest frame boundary at or below
  // the target and becomes the live log file.
  for (size_t i = 0; i + 1 < tail.size(); ++i) {
    const TailPiece& p = tail[i];
    DMX_RETURN_IF_ERROR(VerifySegmentFile(env, p.path, nullptr));
    std::string data;
    DMX_RETURN_IF_ERROR(env->ReadFileToString(p.path, &data));
    DMX_RETURN_IF_ERROR(WriteFileSynced(
        env, options.target_dir + "/" + BasenameOf(p.path), data));
  }
  const TailPiece& final_piece = tail.back();
  std::string body;
  if (!final_piece.path.empty()) {
    DMX_RETURN_IF_ERROR(VerifySegmentFile(env, final_piece.path, nullptr));
    std::string data;
    DMX_RETURN_IF_ERROR(env->ReadFileToString(final_piece.path, &data));
    body = data.substr(kSegHeaderSize);
  } else {
    body = std::move(live_body);
  }
  const uint64_t limit = target - final_piece.base;
  size_t keep = 0;
  while (keep + kFrameHeaderSize <= body.size()) {
    const uint32_t len = DecodeFixed32(body.data() + keep);
    const size_t next = keep + kFrameHeaderSize + len;
    if (next > body.size()) {
      return Status::Corruption(
          "torn frame at offset " + std::to_string(keep) +
          " in the restored wal tail");
    }
    if (next > limit) break;
    const uint32_t crc = DecodeFixed32(body.data() + keep + 4);
    if (crc != WalFrameCrc(final_piece.gen,
                           body.data() + keep + kFrameHeaderSize, len)) {
      return Status::Corruption(
          "frame checksum mismatch at lsn " +
          std::to_string(final_piece.base + keep + 1) +
          " in the restored wal tail");
    }
    keep = next;
  }
  std::string live;
  EncodeLiveHeader(final_piece.base, final_piece.gen, &live);
  live.append(body.data(), keep);
  DMX_RETURN_IF_ERROR(WriteFileSynced(env, options.target_dir + "/wal", live));
  DMX_RETURN_IF_ERROR(env->SyncDir(options.target_dir));
  const Lsn replay_end = final_piece.base + keep;

  // Normal restart recovery over the rebuilt directory: redo through the
  // trimmed WAL, undo every transaction without a commit record at or
  // below the target, and rebuild derived in-memory structures. A clean
  // close flushes the recovered image.
  DatabaseOptions dbo;
  dbo.dir = options.target_dir;
  dbo.env = env;
  dbo.register_extensions = options.register_extensions;
  dbo.auto_recovery = false;  // offline: fail loudly, no background repair
  dbo.group_flush_interval_us = 0;  // no background threads needed
  std::unique_ptr<Database> db;
  DMX_RETURN_IF_ERROR(Database::Open(dbo, &db));
  db.reset();
  if (replayed_to != nullptr) *replayed_to = replay_end;
  return Status::OK();
}

}  // namespace dmx
