#include "src/core/error_handler.h"

#include <algorithm>
#include <utility>

namespace dmx {

ErrorHandler::ErrorHandler() : ErrorHandler(Options()) {}

ErrorHandler::ErrorHandler(Options opts) : opts_(opts) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metric_degraded_ = metrics->GetCounter("db.degraded");
  metric_degraded_entries_ = metrics->GetCounter("db.degraded_entries");
  metric_attempts_ = metrics->GetCounter("recovery.attempts");
  metric_successes_ = metrics->GetCounter("recovery.successes");
  // The registry is process-global; a previous Database that died degraded
  // must not leak a stale gauge value into this instance.
  metric_degraded_->Reset();
}

ErrorHandler::~ErrorHandler() { Stop(); }

FaultClass ErrorHandler::Classify(const Status& s) {
  if (s.IsCorruption()) return FaultClass::kHard;
  if (s.IsRetryable()) return FaultClass::kTransientRetryable;
  return FaultClass::kTransientFatalToOp;
}

void ErrorHandler::Start() {
  MutexLock lock(&mu_);
  if (started_ || stop_) return;
  started_ = true;
  thread_ = std::thread([this] { RecoveryLoop(); });
}

void ErrorHandler::Stop() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
}

Status ErrorHandler::CheckWritable() const {
  if (!degraded_.load(std::memory_order_acquire)) return Status::OK();
  MutexLock lock(&mu_);
  return Status::Busy(
      "database is degraded (write-path failure at " + reason_ + ": " +
      cause_.ToString() +
      "); reads keep serving, writes are refused until background recovery "
      "restores the log");
}

std::string ErrorHandler::degraded_reason() const {
  MutexLock lock(&mu_);
  if (!degraded_.load(std::memory_order_relaxed)) return "";
  return reason_ + ": " + cause_.ToString();
}

void ErrorHandler::ReportWriteFailure(const std::string& where,
                                      const Status& cause) {
  if (!cause.IsIOError()) return;  // vetoes, Busy, corruption: not ours
  if (Classify(cause) == FaultClass::kHard) return;  // quarantine's job
  MutexLock lock(&mu_);
  if (stop_ || degraded_.load(std::memory_order_relaxed)) return;
  reason_ = where;
  cause_ = cause;
  attempt_ = 0;
  degraded_.store(true, std::memory_order_release);
  metric_degraded_entries_->Increment();
  metric_degraded_->Reset();
  metric_degraded_->Increment();  // gauge: 1 while degraded
  cv_.NotifyAll();                // wake the recovery thread
}

void ErrorHandler::SetRecoveryListener(RecoveryListener l) {
  MutexLock lock(&mu_);
  listener_ = std::move(l);
}

bool ErrorHandler::WaitUntilHealthy(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(&mu_);
  while (degraded_.load(std::memory_order_relaxed)) {
    if (!cv_.WaitUntil(deadline) &&
        degraded_.load(std::memory_order_relaxed)) {
      return false;
    }
  }
  return true;
}

void ErrorHandler::RecoveryLoop() {
  uint64_t backoff_ms = opts_.initial_backoff_ms;
  while (true) {
    {
      MutexLock lock(&mu_);
      while (!stop_ && !degraded_.load(std::memory_order_relaxed)) {
        backoff_ms = opts_.initial_backoff_ms;  // fresh outage, fresh ramp
        cv_.Wait();
      }
      if (stop_) return;
    }

    metric_attempts_->Increment();
    Status s = recover_ ? recover_()
                        : Status::Internal("no recovery callback installed");

    RecoveryListener listener;
    uint64_t attempt_no;
    {
      MutexLock lock(&mu_);
      attempt_no = ++attempt_;
      listener = listener_;
      if (s.ok()) {
        degraded_.store(false, std::memory_order_release);
        reason_.clear();
        cause_ = Status::OK();
        metric_successes_->Increment();
        metric_degraded_->Reset();  // gauge: back to 0
        cv_.NotifyAll();            // release WaitUntilHealthy callers
      }
    }
    if (listener) listener(s.ok(), attempt_no);
    if (s.ok()) continue;

    // The fault persists: back off (interruptibly) before the next probe.
    {
      MutexLock lock(&mu_);
      if (stop_) return;
      // Timed backoff; a timeout wake is the expected case.
      (void)cv_.WaitUntil(std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(backoff_ms));
      if (stop_) return;
    }
    backoff_ms = std::min(backoff_ms * 2, opts_.max_backoff_ms);
  }
}

}  // namespace dmx
