// Uniform authorization facility.
//
// The paper: "Because extensions are alternative implementations of a
// common relation abstraction, a uniform authorization facility can be
// used to control user access to relations of all storage methods."
//
// Privileges are granted per (user, relation) and checked by the data
// management facility on every generic operation — the checks are entirely
// independent of which storage method or attachments implement the
// relation. Authorization is off until the first grant is issued; the
// empty user ("") is the superuser.

#ifndef DMX_CORE_AUTHORIZATION_H_
#define DMX_CORE_AUTHORIZATION_H_

#include <map>
#include <string>

#include "src/util/common.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace dmx {

enum class Privilege : uint8_t {
  kSelect = 1,
  kInsert = 2,
  kUpdate = 4,
  kDelete = 8,
};

constexpr uint8_t kAllPrivileges = 15;

inline const char* PrivilegeName(Privilege p) {
  switch (p) {
    case Privilege::kSelect: return "SELECT";
    case Privilege::kInsert: return "INSERT";
    case Privilege::kUpdate: return "UPDATE";
    case Privilege::kDelete: return "DELETE";
  }
  return "?";
}

class AuthorizationManager {
 public:
  /// Grant privileges (a bitwise OR of Privilege values) on a relation.
  /// The first grant enables enforcement.
  void Grant(const std::string& user, RelationId rel, uint8_t privileges);

  /// Revoke the given privileges; no-op if not held.
  void Revoke(const std::string& user, RelationId rel, uint8_t privileges);

  /// Drop all grants on a relation (when it is dropped).
  void Clear(RelationId rel);

  /// OK if `user` holds `needed` on `rel` (or is the superuser, or
  /// enforcement is off). Veto-style Constraint status otherwise.
  Status Check(const std::string& user, RelationId rel,
               Privilege needed) const;

  bool enabled() const {
    MutexLock lock(&mu_);
    return enabled_;
  }

 private:
  mutable Mutex mu_;
  bool enabled_ GUARDED_BY(mu_) = false;
  std::map<std::pair<std::string, RelationId>, uint8_t> grants_
      GUARDED_BY(mu_);
};

}  // namespace dmx

#endif  // DMX_CORE_AUTHORIZATION_H_
