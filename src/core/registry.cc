#include "src/core/registry.h"

#include <cassert>

namespace dmx {

SmId ExtensionRegistry::RegisterStorageMethod(const SmOps& ops) {
  assert(ops.name != nullptr);
  assert(FindStorageMethod(ops.name) < 0);
  sm_ops_.push_back(ops);
  return static_cast<SmId>(sm_ops_.size() - 1);
}

AtId ExtensionRegistry::RegisterAttachmentType(const AtOps& ops) {
  assert(ops.name != nullptr);
  assert(FindAttachmentType(ops.name) < 0);
  assert(at_ops_.size() < kMaxAttachmentTypes);
  at_ops_.push_back(ops);
  return static_cast<AtId>(at_ops_.size() - 1);
}

int ExtensionRegistry::FindStorageMethod(const std::string& name) const {
  for (size_t i = 0; i < sm_ops_.size(); ++i) {
    if (name == sm_ops_[i].name) return static_cast<int>(i);
  }
  return -1;
}

int ExtensionRegistry::FindAttachmentType(const std::string& name) const {
  for (size_t i = 0; i < at_ops_.size(); ++i) {
    if (name == at_ops_[i].name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace dmx
