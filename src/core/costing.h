// Shared selectivity heuristics used by storage-method and access-path
// cost estimators. Deliberately simple, System-R-style magic numbers: the
// architecture's point is *where* costing lives (inside each extension),
// not the sophistication of the estimates.

#ifndef DMX_CORE_COSTING_H_
#define DMX_CORE_COSTING_H_

#include "src/expr/expr.h"

namespace dmx {

/// Cost of fetching one record by key through the storage method (record
/// lock + buffer-pool fetch + record copy), in units of one sequentially
/// scanned record. Calibrated against this engine: a keyed fetch measures
/// ~150x a scan step (see bench_access_select), so access paths charge it
/// per qualifying record and lose to a full scan once selectivity is high
/// enough — giving the planner a realistic crossover.
constexpr double kRecordFetchCost = 150.0;

/// Rough selectivity of one predicate conjunct.
inline double EstimateSelectivity(const ExprPtr& pred) {
  if (!pred) return 1.0;
  switch (pred->op()) {
    case ExprOp::kEq: return 0.005;
    case ExprOp::kNe: return 0.95;
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: return 0.33;
    case ExprOp::kLike: return 0.25;
    case ExprOp::kIsNull: return 0.1;
    case ExprOp::kEncloses:
    case ExprOp::kWithin:
    case ExprOp::kOverlaps: return 0.005;
    case ExprOp::kAnd: {
      double s = 1.0;
      for (const auto& c : pred->children()) s *= EstimateSelectivity(c);
      return s;
    }
    case ExprOp::kOr: {
      double s = 1.0;
      for (const auto& c : pred->children()) s *= 1.0 - EstimateSelectivity(c);
      return 1.0 - s;
    }
    case ExprOp::kNot:
      return 1.0 - EstimateSelectivity(pred->child(0));
    default:
      return 0.5;
  }
}

/// Combined selectivity of a conjunct list.
inline double EstimateSelectivity(const std::vector<ExprPtr>& preds) {
  double s = 1.0;
  for (const auto& p : preds) s *= EstimateSelectivity(p);
  return s;
}

}  // namespace dmx

#endif  // DMX_CORE_COSTING_H_
