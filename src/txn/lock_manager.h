// LockManager: the system-supplied locking-based concurrency controller.
//
// The paper: "the architecture assumes that all storage method and
// attachment implementations will use a locking-based concurrency
// controller... a system-supplied lock manager will be available...
// all lock controllers must be able to participate in transaction commit
// and system-wide deadlock detection events."
//
// Hierarchical modes (IS/IX/S/SIX/X) over named resources; relation- and
// record-granularity names are composed with the LockNames helpers.
// Deadlocks are detected with a waits-for graph check when a request is
// about to block; the cycle participant holding the fewest locks (ties
// broken toward the youngest transaction) is chosen as the victim, so the
// cheapest work is redone.

#ifndef DMX_TXN_LOCK_MANAGER_H_
#define DMX_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/util/common.h"
#include "src/util/metrics.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace dmx {

enum class LockMode : uint8_t { kIS = 0, kIX = 1, kS = 2, kSIX = 3, kX = 4 };

/// True if a holder in `held` permits another transaction to acquire `req`.
bool LockCompatible(LockMode held, LockMode req);

/// Least mode that dominates both (lattice join), e.g. S ∨ IX = SIX.
LockMode LockSupremum(LockMode a, LockMode b);

/// Canonical lock resource names.
struct LockNames {
  static std::string Relation(RelationId rel) {
    return "rel:" + std::to_string(rel);
  }
  static std::string Record(RelationId rel, const Slice& key) {
    return "rec:" + std::to_string(rel) + ":" + key.ToString();
  }
};

class LockManager {
 public:
  LockManager();

  /// Acquire (or upgrade to) `mode` on `resource` for `txn`. Blocks while
  /// incompatible; returns Deadlock if granting would require waiting on a
  /// cycle, Busy on timeout.
  Status Lock(TxnId txn, const std::string& resource, LockMode mode);

  /// Non-blocking acquire; Busy if it would wait.
  Status TryLock(TxnId txn, const std::string& resource, LockMode mode);

  /// Release all locks held by `txn` (at commit/abort: strict 2PL).
  void UnlockAll(TxnId txn);

  /// True if `txn` holds `resource` at a mode dominating `mode`.
  bool Holds(TxnId txn, const std::string& resource, LockMode mode) const;

  /// Number of distinct resources currently locked (tests).
  size_t LockedResourceCount() const;

  /// How long to wait before declaring Busy (deadlocks are detected
  /// eagerly; the timeout is a safety net).
  void set_timeout(std::chrono::milliseconds t) {
    MutexLock lock(&mu_);
    timeout_ = t;
  }

 private:
  struct Entry {
    std::map<TxnId, LockMode> granted;
    // Transactions currently blocked on this resource and the mode needed.
    std::map<TxnId, LockMode> waiting;
  };

  bool CanGrant(const Entry& e, TxnId txn, LockMode mode) const
      REQUIRES(mu_);
  // True if waiting would close a cycle; fills `cycle` with its members.
  bool FindDeadlockCycle(TxnId waiter, const std::string& resource,
                         LockMode mode, std::set<TxnId>* cycle) const
      REQUIRES(mu_);
  // Cycle member holding the fewest locks; ties go to the youngest txn.
  TxnId ChooseVictim(const std::set<TxnId>& cycle) const REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_{&mu_};
  std::map<std::string, Entry> table_ GUARDED_BY(mu_);
  std::map<TxnId, std::set<std::string>> by_txn_ GUARDED_BY(mu_);
  // Waiters condemned by another request's deadlock detection; each returns
  // Deadlock from its own Lock() call on next wake.
  std::set<TxnId> victims_ GUARDED_BY(mu_);
  std::chrono::milliseconds timeout_ GUARDED_BY(mu_){2000};
  // Registry metrics ("lock.*"), resolved once at construction. Waits are
  // counted and timed only when a request actually blocks, so the
  // uncontended fast path pays one counter increment.
  Counter* metric_acquisitions_;
  Counter* metric_waits_;
  Histogram* metric_wait_ns_;
  Counter* metric_deadlocks_;
  Counter* metric_deadlock_victims_;
  Counter* metric_timeouts_;
};

}  // namespace dmx

#endif  // DMX_TXN_LOCK_MANAGER_H_
