#include "src/txn/transaction_manager.h"

namespace dmx {

TransactionManager::TransactionManager(LogManager* log, LockManager* locks)
    : log_(log), locks_(locks) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metric_begins_ = metrics->GetCounter("txn.begins");
  metric_commits_ = metrics->GetCounter("txn.commits");
  metric_commit_ns_ = metrics->GetHistogram("txn.commit_ns");
  metric_aborts_ = metrics->GetCounter("txn.aborts");
  metric_abort_ns_ = metrics->GetHistogram("txn.abort_ns");
}

Transaction* TransactionManager::Begin() {
  metric_begins_->Increment();
  TxnId id = next_txn_id_.fetch_add(1);
  auto txn = std::unique_ptr<Transaction>(new Transaction(id));
  txn->set_relaxed_durability(default_relaxed_);
  LogRecord rec;
  rec.type = LogRecType::kBegin;
  rec.txn = id;
  rec.prev_lsn = kInvalidLsn;
  // Begin cannot report a Status. A failed append (poisoned log) is
  // deferred on the transaction instead: reads proceed, and the Database
  // returns this Status on the transaction's first write attempt.
  Status s = log_->Append(&rec);
  if (s.ok()) {
    txn->set_last_lsn(rec.lsn);
    txn->begin_lsn_ = rec.lsn;
  } else {
    txn->log_error_ = s;
  }
  Transaction* raw = txn.get();
  MutexLock lock(&mu_);
  live_[id] = std::move(txn);
  return raw;
}

Status TransactionManager::FinishTxn(Transaction* txn, bool committed) {
  for (TxnObserver* obs : observers_) {
    obs->OnTransactionEnd(txn, committed);
  }
  locks_->UnlockAll(txn->id());
  // A transaction that logged no effects needs no end record: recovery
  // treats its lone begin as a loser with nothing to undo. Skipping keeps
  // read-only transactions entirely off the disk — which is also what
  // lets them finish while the database is degraded.
  if (txn->last_lsn() != txn->begin_lsn()) {
    LogRecord end;
    end.type = LogRecType::kEnd;
    end.txn = txn->id();
    end.prev_lsn = txn->last_lsn();
    DMX_RETURN_IF_ERROR(log_->Append(&end));
    txn->set_last_lsn(end.lsn);
  }
  MutexLock lock(&mu_);
  live_.erase(txn->id());  // frees the Transaction
  return Status::OK();
}

Status TransactionManager::Commit(Transaction* txn) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  ScopedTimer timer(metric_commit_ns_);

  // Deferred integrity constraints run now; a failure aborts.
  Status pre = txn->RunDeferred(TxnEvent::kBeforePrepare,
                                /*stop_on_error=*/true);
  if (!pre.ok()) {
    Status abort_status = Abort(txn);
    if (!abort_status.ok()) return abort_status;
    return pre;
  }

  // Read-only transactions (nothing logged past the begin record) commit
  // without touching the log: no commit record, no force. This keeps reads
  // serving while the database is degraded.
  if (txn->last_lsn() != txn->begin_lsn()) {
    LogRecord commit;
    commit.type = LogRecType::kCommit;
    commit.txn = txn->id();
    commit.prev_lsn = txn->last_lsn();
    // Strict: append + force as one unit (sharing the group-commit fsync
    // with concurrent committers); on failure the commit record is
    // removed from the buffer again where possible, so the transaction is
    // still cleanly abortable. Relaxed: acknowledge at append — the
    // background group flusher makes it durable shortly after; a crash in
    // that window loses the commit, which is the contract the session
    // opted into. Either way the caller decides between retrying and
    // Abort; we only report the outage so the ErrorHandler can degrade
    // and start recovery.
    Status forced;
    if (txn->relaxed_durability()) {
      forced = log_->AppendCommitRelaxed(&commit);
      if (!forced.ok() && wal_failure_) {
        wal_failure_("wal commit append", forced);
      }
    } else {
      forced = log_->AppendAndFlush(&commit);
      if (!forced.ok() && wal_failure_) {
        wal_failure_("wal commit force", forced);
      }
    }
    if (!forced.ok()) return forced;
    txn->set_last_lsn(commit.lsn);
  }
  txn->state_ = TxnState::kCommitted;

  // Complete deferred work (e.g. release storage of dropped relations).
  Status post = txn->RunDeferred(TxnEvent::kCommit, /*stop_on_error=*/false);

  DMX_RETURN_IF_ERROR(FinishTxn(txn, /*committed=*/true));
  metric_commits_->Increment();
  return post;
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn->state() == TxnState::kAborted) return Status::OK();
  if (txn->state() == TxnState::kCommitted) {
    return Status::Aborted("cannot abort a committed transaction");
  }
  ScopedTimer timer(metric_abort_ns_);
  metric_aborts_->Increment();
  // Nothing logged: nothing to undo, and no abort record needed (the
  // matching FinishTxn skips the end record too). This is what makes the
  // abort of an in-flight writer whose commit force failed — and of any
  // read-only transaction — safe while the log is refusing writes.
  if (txn->last_lsn() != txn->begin_lsn()) {
    LogRecord abort_rec;
    abort_rec.type = LogRecType::kAbort;
    abort_rec.txn = txn->id();
    abort_rec.prev_lsn = txn->last_lsn();
    DMX_RETURN_IF_ERROR(log_->Append(&abort_rec));
    txn->set_last_lsn(abort_rec.lsn);

    Lsn last = txn->last_lsn();
    DMX_RETURN_IF_ERROR(driver_->Rollback(txn->id(), kInvalidLsn, &last));
    txn->set_last_lsn(last);
  }

  // Abort-time deferred actions are best-effort: a failure cannot change
  // the outcome — the transaction is rolling back regardless.
  (void)txn->RunDeferred(TxnEvent::kAbort, /*stop_on_error=*/false);
  txn->state_ = TxnState::kAborted;
  return FinishTxn(txn, /*committed=*/false);
}

Status TransactionManager::Savepoint(Transaction* txn,
                                     const std::string& name) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  LogRecord rec;
  rec.type = LogRecType::kSavepoint;
  rec.txn = txn->id();
  rec.prev_lsn = txn->last_lsn();
  rec.savepoint_name = name;
  DMX_RETURN_IF_ERROR(log_->Append(&rec));
  txn->set_last_lsn(rec.lsn);
  // Replace an existing savepoint of the same name.
  auto& sps = txn->savepoints_;
  for (auto it = sps.begin(); it != sps.end(); ++it) {
    if (it->first == name) {
      sps.erase(it);
      break;
    }
  }
  sps.emplace_back(name, rec.lsn);
  // Drive common services to capture their positions (scan manager).
  for (TxnObserver* obs : observers_) obs->OnSavepoint(txn, name);
  return Status::OK();
}

Status TransactionManager::RollbackToSavepoint(Transaction* txn,
                                               const std::string& name) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  auto& sps = txn->savepoints_;
  Lsn target = kInvalidLsn;
  size_t keep = 0;
  for (size_t i = 0; i < sps.size(); ++i) {
    if (sps[i].first == name) {
      target = sps[i].second;
      keep = i + 1;  // keep this savepoint and all earlier ones
    }
  }
  if (target == kInvalidLsn) {
    return Status::NotFound("savepoint '" + name + "'");
  }
  Lsn last = txn->last_lsn();
  DMX_RETURN_IF_ERROR(driver_->Rollback(txn->id(), target, &last));
  txn->set_last_lsn(last);
  sps.resize(keep);
  txn->DropDeferredAfter(target);
  for (TxnObserver* obs : observers_) obs->OnPartialRollback(txn, name);
  return Status::OK();
}

Status TransactionManager::RollbackTo(Transaction* txn, Lsn to_lsn) {
  Lsn last = txn->last_lsn();
  DMX_RETURN_IF_ERROR(driver_->Rollback(txn->id(), to_lsn, &last));
  txn->set_last_lsn(last);
  return Status::OK();
}

}  // namespace dmx
