// Transaction state, deferred-action queues, and savepoints.
//
// The paper's common services let an attachment "place an entry on the
// queue that will cause an indicated attachment procedure to be invoked
// with the indicated data when the event occurs" — here a DeferredAction —
// for events such as "before transaction enters the prepared state" and
// transaction commit (used for deferred integrity constraints and for
// deferring the release of dropped relation/attachment storage).

#ifndef DMX_TXN_TRANSACTION_H_
#define DMX_TXN_TRANSACTION_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/util/common.h"
#include "src/util/status.h"

namespace dmx {

class Transaction;

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

/// Transaction events extensions can defer actions to.
enum class TxnEvent : uint8_t {
  kBeforePrepare = 0,  // after all modifications, before commit is decided;
                       // a failing action here aborts the transaction
  kCommit = 1,         // commit is durable; complete deferred work
  kAbort = 2,          // rollback finished; discard deferred state
};

/// A queued deferred action: the modern form of the paper's "address of the
/// attachment routine ... and a pointer to data".
using DeferredAction = std::function<Status(Transaction*)>;

/// A transaction. Created via TransactionManager::Begin; single-threaded
/// use per transaction (the usual embedded-DBMS contract).
class Transaction {
 public:
  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  bool active() const { return state_ == TxnState::kActive; }

  /// User identity for the uniform authorization facility; "" = superuser.
  const std::string& user() const { return user_; }
  void set_user(std::string user) { user_ = std::move(user); }

  Lsn last_lsn() const { return last_lsn_; }
  void set_last_lsn(Lsn lsn) { last_lsn_ = lsn; }

  /// LSN of this transaction's begin record (kInvalidLsn if the begin
  /// append failed). last_lsn() == begin_lsn() means the transaction has
  /// logged no effects — a read-only transaction, whose commit needs no
  /// log force and whose abort has nothing to roll back.
  Lsn begin_lsn() const { return begin_lsn_; }

  /// Deferred error from a failed begin-record append (the log was
  /// poisoned when this transaction started). Reads may proceed; the
  /// Database surfaces this Status on the transaction's first write
  /// instead of letting the commit fail mysteriously later.
  const Status& log_error() const { return log_error_; }

  /// Durability mode for this transaction's commit. Strict (default):
  /// Commit returns only after the commit record is fsynced (sharing the
  /// group-commit fsync with concurrent committers). Relaxed: Commit
  /// returns at WAL-append; the background group flusher makes it durable
  /// shortly after, and a crash inside that window loses the commit.
  bool relaxed_durability() const { return relaxed_durability_; }
  void set_relaxed_durability(bool relaxed) {
    relaxed_durability_ = relaxed;
  }

  /// Enqueue `action` to run when `event` fires. Actions enqueued after a
  /// savepoint are discarded if the transaction rolls back to it.
  void Defer(TxnEvent event, DeferredAction action);

  /// Number of actions pending for `event` (tests).
  size_t DeferredCount(TxnEvent event) const;

  const std::vector<std::pair<std::string, Lsn>>& savepoints() const {
    return savepoints_;
  }

 private:
  friend class TransactionManager;

  explicit Transaction(TxnId id) : id_(id) {}

  struct QueuedAction {
    DeferredAction action;
    Lsn enqueue_lsn;  // txn's last_lsn at enqueue time
  };

  // Runs and clears the queue for `event`. If `stop_on_error`, the first
  // failure is returned with the rest of the queue untouched.
  Status RunDeferred(TxnEvent event, bool stop_on_error);

  // Discard queued actions enqueued after `lsn` (partial rollback).
  void DropDeferredAfter(Lsn lsn);

  TxnId id_;
  std::string user_;
  TxnState state_ = TxnState::kActive;
  Lsn last_lsn_ = kInvalidLsn;
  Lsn begin_lsn_ = kInvalidLsn;
  bool relaxed_durability_ = false;
  Status log_error_;
  std::vector<std::pair<std::string, Lsn>> savepoints_;
  std::map<TxnEvent, std::vector<QueuedAction>> deferred_;
};

}  // namespace dmx

#endif  // DMX_TXN_TRANSACTION_H_
