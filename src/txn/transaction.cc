#include "src/txn/transaction.h"

namespace dmx {

void Transaction::Defer(TxnEvent event, DeferredAction action) {
  deferred_[event].push_back({std::move(action), last_lsn_});
}

size_t Transaction::DeferredCount(TxnEvent event) const {
  auto it = deferred_.find(event);
  return it == deferred_.end() ? 0 : it->second.size();
}

Status Transaction::RunDeferred(TxnEvent event, bool stop_on_error) {
  auto it = deferred_.find(event);
  if (it == deferred_.end()) return Status::OK();
  std::vector<QueuedAction> queue;
  queue.swap(it->second);
  Status first_error;
  for (QueuedAction& qa : queue) {
    Status s = qa.action(this);
    if (!s.ok()) {
      if (stop_on_error) return s;
      if (first_error.ok()) first_error = s;
    }
  }
  return first_error;
}

void Transaction::DropDeferredAfter(Lsn lsn) {
  for (auto& [event, queue] : deferred_) {
    std::vector<QueuedAction> kept;
    for (QueuedAction& qa : queue) {
      if (qa.enqueue_lsn <= lsn) kept.push_back(std::move(qa));
    }
    queue.swap(kept);
  }
}

}  // namespace dmx
