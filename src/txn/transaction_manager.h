// TransactionManager: begin/commit/abort, savepoints, and the event
// notification fan-out to common-service observers (e.g. the scan manager,
// which must close scans at transaction termination and save/restore scan
// positions around savepoints).

#ifndef DMX_TXN_TRANSACTION_MANAGER_H_
#define DMX_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/txn/lock_manager.h"
#include "src/txn/transaction.h"
#include "src/util/thread_annotations.h"
#include "src/wal/recovery.h"

namespace dmx {

/// Common-service observer of transaction lifecycle events.
///
/// The paper: "a common service facility will notify all storage methods
/// and attachments which used key-sequential accesses during the
/// transaction when the transaction completes so that they can clean up
/// (i.e., close) any open scans", and "when a transaction rollback point is
/// established, the storage methods and attachments are driven by the
/// system to obtain their key-sequential access positions".
class TxnObserver {
 public:
  virtual ~TxnObserver() = default;
  /// Fired after commit is durable or rollback is complete, before locks
  /// are released.
  virtual void OnTransactionEnd(Transaction* txn, bool committed) = 0;
  /// Fired when a savepoint is established: capture positions.
  virtual void OnSavepoint(Transaction* txn, const std::string& name) = 0;
  /// Fired after a partial rollback: restore positions captured at `name`.
  virtual void OnPartialRollback(Transaction* txn,
                                 const std::string& name) = 0;
};

class TransactionManager {
 public:
  TransactionManager(LogManager* log, LockManager* locks);

  /// Install the recovery apply callback (set by the data manager after the
  /// procedure vectors exist). Must be called before any transactions run.
  void SetApplyFn(ApplyLogFn apply) {
    driver_ = std::make_unique<RecoveryDriver>(log_, std::move(apply));
  }
  RecoveryDriver* driver() { return driver_.get(); }

  void AddObserver(TxnObserver* obs) { observers_.push_back(obs); }

  /// Install the Database's hook for WAL forces that fail on the commit
  /// path (the ErrorHandler enters degraded mode and starts background
  /// recovery). Installed once at open, before transactions run.
  void set_wal_failure_handler(
      std::function<void(const std::string&, const Status&)> fn) {
    wal_failure_ = std::move(fn);
  }

  /// Database-wide default durability for new transactions (from
  /// DatabaseOptions::durability; a session SQL toggle overrides it per
  /// transaction). Installed at open, before transactions run.
  void set_default_relaxed_durability(bool relaxed) {
    default_relaxed_ = relaxed;
  }
  bool default_relaxed_durability() const { return default_relaxed_; }

  /// Start a new transaction. The returned pointer stays valid until the
  /// transaction ends (manager-owned).
  Transaction* Begin();

  /// Commit: runs before-prepare deferred actions (a failure here aborts
  /// and returns that failure), forces the log, runs commit deferred
  /// actions, notifies observers, releases locks.
  Status Commit(Transaction* txn);

  /// Abort: log-driven rollback of all effects, then cleanup as above.
  Status Abort(Transaction* txn);

  /// Establish a named rollback point. Re-using a name replaces it.
  Status Savepoint(Transaction* txn, const std::string& name);

  /// Partial rollback: undo effects after the savepoint, discard deferred
  /// actions enqueued since, and restore observer state (scan positions).
  /// The savepoint itself remains usable.
  Status RollbackToSavepoint(Transaction* txn, const std::string& name);

  /// Internal rollback used for vetoed relation modifications: undo
  /// strictly past `to_lsn` without touching savepoints/observers.
  Status RollbackTo(Transaction* txn, Lsn to_lsn);

  LockManager* lock_manager() { return locks_; }
  LogManager* log() { return log_; }

  /// Count of transactions ever begun (tests).
  uint64_t transactions_started() const { return next_txn_id_ - 1; }

  /// Transactions currently live (quiesced-checkpoint precondition).
  size_t ActiveTransactionCount() {
    MutexLock lock(&mu_);
    return live_.size();
  }

  /// Raise the next transaction id (restart: ids must not collide with
  /// transactions already in the log).
  void EnsureTxnIdAbove(TxnId floor) {
    TxnId current = next_txn_id_.load();
    while (current <= floor &&
           !next_txn_id_.compare_exchange_weak(current, floor + 1)) {
    }
  }

 private:
  Status FinishTxn(Transaction* txn, bool committed);

  LogManager* log_;
  LockManager* locks_;
  std::unique_ptr<RecoveryDriver> driver_;
  // Installed at startup before transactions run, then read-only on the
  // commit/abort paths — not guarded (AddObserver is not thread-safe).
  std::vector<TxnObserver*> observers_;
  std::function<void(const std::string&, const Status&)> wal_failure_;
  // Set once at open before transactions run, then read-only.
  bool default_relaxed_ = false;
  std::atomic<TxnId> next_txn_id_{1};
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> live_
      GUARDED_BY(mu_);
  Mutex mu_;
  // Registry metrics ("txn.*"), resolved once at construction. Commit
  // latency includes the log force and deferred actions; abort latency
  // includes the log-driven rollback.
  Counter* metric_begins_;
  Counter* metric_commits_;
  Histogram* metric_commit_ns_;
  Counter* metric_aborts_;
  Histogram* metric_abort_ns_;
};

}  // namespace dmx

#endif  // DMX_TXN_TRANSACTION_MANAGER_H_
