#include "src/txn/lock_manager.h"

#include <functional>

namespace dmx {

namespace {

// compat[held][req]
constexpr bool kCompat[5][5] = {
    //            IS     IX     S      SIX    X
    /* IS  */ {true, true, true, true, false},
    /* IX  */ {true, true, false, false, false},
    /* S   */ {true, false, true, false, false},
    /* SIX */ {true, false, false, false, false},
    /* X   */ {false, false, false, false, false},
};

}  // namespace

bool LockCompatible(LockMode held, LockMode req) {
  return kCompat[static_cast<int>(held)][static_cast<int>(req)];
}

LockMode LockSupremum(LockMode a, LockMode b) {
  if (a == b) return a;
  if (a == LockMode::kX || b == LockMode::kX) return LockMode::kX;
  auto has = [&](LockMode m) { return a == m || b == m; };
  if (has(LockMode::kSIX)) return LockMode::kSIX;
  if (has(LockMode::kS) && has(LockMode::kIX)) return LockMode::kSIX;
  if (has(LockMode::kS)) return LockMode::kS;   // S ∨ IS
  if (has(LockMode::kIX)) return LockMode::kIX; // IX ∨ IS
  return LockMode::kIS;
}

LockManager::LockManager() {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metric_acquisitions_ = metrics->GetCounter("lock.acquisitions");
  metric_waits_ = metrics->GetCounter("lock.waits");
  metric_wait_ns_ = metrics->GetHistogram("lock.wait_ns");
  metric_deadlocks_ = metrics->GetCounter("lock.deadlocks");
  metric_deadlock_victims_ = metrics->GetCounter("lock.deadlock_victims");
  metric_timeouts_ = metrics->GetCounter("lock.timeouts");
}

bool LockManager::CanGrant(const Entry& e, TxnId txn, LockMode mode) const {
  for (const auto& [holder, held] : e.granted) {
    if (holder == txn) continue;
    if (!LockCompatible(held, mode)) return false;
  }
  return true;
}

bool LockManager::FindDeadlockCycle(TxnId waiter, const std::string& resource,
                                    LockMode mode,
                                    std::set<TxnId>* cycle) const {
  // DFS over the waits-for graph: waiter -> {incompatible holders of the
  // resource it waits on} -> resources those are waiting on -> ...
  // `path` tracks the chain of blocked transactions so that when an edge
  // closes back on the original waiter, the cycle membership is known.
  std::set<TxnId> visited;
  std::vector<TxnId> path{waiter};
  std::function<bool(const std::string&, LockMode)> blocked_by_waiter =
      [&](const std::string& res, LockMode m) -> bool {
    TxnId w = path.back();
    auto it = table_.find(res);
    if (it == table_.end()) return false;
    for (const auto& [holder, held] : it->second.granted) {
      if (holder == w) continue;
      if (LockCompatible(held, m)) continue;
      if (holder == waiter) {  // cycle back to original waiter
        cycle->insert(path.begin(), path.end());
        return true;
      }
      if (!visited.insert(holder).second) continue;
      // What is `holder` itself waiting on?
      for (const auto& [res2, entry2] : table_) {
        auto wit = entry2.waiting.find(holder);
        if (wit != entry2.waiting.end()) {
          path.push_back(holder);
          if (blocked_by_waiter(res2, wit->second)) return true;
          path.pop_back();
        }
      }
    }
    return false;
  };
  return blocked_by_waiter(resource, mode);
}

TxnId LockManager::ChooseVictim(const std::set<TxnId>& cycle) const {
  TxnId victim = kInvalidTxnId;
  size_t victim_locks = 0;
  for (TxnId t : cycle) {
    auto it = by_txn_.find(t);
    size_t locks = it == by_txn_.end() ? 0 : it->second.size();
    // Fewest locks held loses; among equals the youngest (largest id)
    // transaction loses, since it has done the least work.
    if (victim == kInvalidTxnId || locks < victim_locks ||
        (locks == victim_locks && t > victim)) {
      victim = t;
      victim_locks = locks;
    }
  }
  return victim;
}

Status LockManager::Lock(TxnId txn, const std::string& resource,
                         LockMode mode) {
  MutexLock lock(&mu_);
  Entry& e = table_[resource];
  auto mine = e.granted.find(txn);
  LockMode needed = mode;
  if (mine != e.granted.end()) {
    needed = LockSupremum(mine->second, mode);
    if (needed == mine->second) return Status::OK();  // already dominated
  }
  auto deadline = std::chrono::steady_clock::now() + timeout_;
  uint64_t wait_start = 0;
  while (!CanGrant(e, txn, needed)) {
    std::set<TxnId> cycle;
    if (FindDeadlockCycle(txn, resource, needed, &cycle)) {
      TxnId victim = ChooseVictim(cycle);
      if (victim == txn) {
        metric_deadlocks_->Increment();
        metric_deadlock_victims_->Increment();
        return Status::Deadlock("lock '" + resource + "'");
      }
      // Condemn the cheaper participant; it aborts from its own wait and
      // releases its locks. insert() guards against re-counting the same
      // cycle while the victim is still winding down.
      if (victims_.insert(victim).second) {
        metric_deadlocks_->Increment();
        metric_deadlock_victims_->Increment();
        cv_.NotifyAll();
      }
    }
    if (wait_start == 0) {
      metric_waits_->Increment();
      wait_start = MetricsNowNanos();
    }
    e.waiting[txn] = needed;
    const bool notified = cv_.WaitUntil(deadline);
    e.waiting.erase(txn);
    if (victims_.erase(txn) > 0) {
      metric_wait_ns_->Record(MetricsNowNanos() - wait_start);
      return Status::Deadlock("lock '" + resource +
                              "' (chosen as deadlock victim)");
    }
    if (!notified) {
      TxnId blocker = kInvalidTxnId;
      for (const auto& [holder, held] : e.granted) {
        if (holder != txn && !LockCompatible(held, needed)) {
          blocker = holder;
          break;
        }
      }
      metric_timeouts_->Increment();
      metric_wait_ns_->Record(MetricsNowNanos() - wait_start);
      std::string msg = "lock timeout on '" + resource + "'";
      if (blocker != kInvalidTxnId) {
        msg += " (blocked by txn " + std::to_string(blocker) + ")";
      }
      return Status::Busy(msg);
    }
  }
  if (wait_start != 0) {
    metric_wait_ns_->Record(MetricsNowNanos() - wait_start);
  }
  e.granted[txn] = needed;
  by_txn_[txn].insert(resource);
  metric_acquisitions_->Increment();
  return Status::OK();
}

Status LockManager::TryLock(TxnId txn, const std::string& resource,
                            LockMode mode) {
  MutexLock lock(&mu_);
  Entry& e = table_[resource];
  auto mine = e.granted.find(txn);
  LockMode needed = mode;
  if (mine != e.granted.end()) {
    needed = LockSupremum(mine->second, mode);
    if (needed == mine->second) return Status::OK();
  }
  if (!CanGrant(e, txn, needed)) {
    return Status::Busy("lock '" + resource + "' held incompatibly");
  }
  e.granted[txn] = needed;
  by_txn_[txn].insert(resource);
  metric_acquisitions_->Increment();
  return Status::OK();
}

void LockManager::UnlockAll(TxnId txn) {
  MutexLock lock(&mu_);
  auto it = by_txn_.find(txn);
  if (it == by_txn_.end()) return;
  for (const std::string& res : it->second) {
    auto tit = table_.find(res);
    if (tit == table_.end()) continue;
    tit->second.granted.erase(txn);
    if (tit->second.granted.empty() && tit->second.waiting.empty()) {
      table_.erase(tit);
    }
  }
  by_txn_.erase(it);
  cv_.NotifyAll();
}

bool LockManager::Holds(TxnId txn, const std::string& resource,
                        LockMode mode) const {
  MutexLock lock(&mu_);
  auto it = table_.find(resource);
  if (it == table_.end()) return false;
  auto g = it->second.granted.find(txn);
  if (g == it->second.granted.end()) return false;
  return LockSupremum(g->second, mode) == g->second;
}

size_t LockManager::LockedResourceCount() const {
  MutexLock lock(&mu_);
  return table_.size();
}

}  // namespace dmx
