// Binary encoding helpers: fixed-width little-endian integers, varints, and
// length-prefixed strings. Every persistent encoding in the system (records,
// record keys, log payloads, descriptors) is built from these primitives so
// that extension descriptor blobs remain portable byte strings.

#ifndef DMX_UTIL_CODING_H_
#define DMX_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/util/slice.h"

namespace dmx {

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  memcpy(buf, &v, 2);
  dst->append(buf, 2);
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutDouble(std::string* dst, double v) {
  char buf[8];
  memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint16_t DecodeFixed16(const char* p) {
  uint16_t v;
  memcpy(&v, p, 2);
  return v;
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  memcpy(&v, p, 8);
  return v;
}

inline double DecodeDouble(const char* p) {
  double v;
  memcpy(&v, p, 8);
  return v;
}

/// Append a varint32 to `dst`.
void PutVarint32(std::string* dst, uint32_t v);
/// Append a varint64 to `dst`.
void PutVarint64(std::string* dst, uint64_t v);

/// Parse a varint32 from the front of `input`, advancing it.
/// Returns false on truncated/overlong input.
bool GetVarint32(Slice* input, uint32_t* value);
/// Parse a varint64 from the front of `input`, advancing it.
bool GetVarint64(Slice* input, uint64_t* value);

/// Append a varint length prefix followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
/// Parse a length-prefixed slice from the front of `input`, advancing it.
/// The returned slice aliases `input`'s underlying storage.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Parse fixed-width values from the front of `input`, advancing it.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetDouble(Slice* input, double* value);

/// Order-preserving encoding of an int64 (flips the sign bit, big-endian)
/// so that memcmp order on the encoding equals numeric order. Used for
/// composing index keys from integer fields.
void PutOrderedInt64(std::string* dst, int64_t v);
int64_t DecodeOrderedInt64(const char* p);

/// Order-preserving encoding of a double (IEEE-754 bit tricks).
void PutOrderedDouble(std::string* dst, double v);
double DecodeOrderedDouble(const char* p);

}  // namespace dmx

#endif  // DMX_UTIL_CODING_H_
