// RetryingEnv: bounded retry with exponential backoff + jitter for
// transient I/O failures.
//
// Wraps any Env (the real PosixEnv or a FaultInjectionEnv) and re-issues
// an operation when it fails with a Status whose retryable bit is set —
// the Env boundary classifies ENOSPC/EDQUOT/EAGAIN/EBUSY/ENOMEM and the
// injected transient faults that way (see PosixError and
// FaultInjectionEnv::SetTransient*Faults). Hard errors (EIO, corruption)
// and every non-retryable Status pass through untouched on the first
// attempt, so the wrapper never masks real damage or changes the
// semantics of the dead-disk fault model the torture tests rely on.
//
// The backoff is deliberately small (microseconds, capped at a few
// milliseconds): the wrapper sits under the WAL mutex on the commit path,
// so a retry burst must not stall unrelated transactions for long. Faults
// that outlive the retry budget surface to the caller with the retryable
// bit still set; the Database's ErrorHandler then takes over with degraded
// mode and background recovery on a much longer backoff schedule.
//
// Metrics: `io.retries` counts every re-issued operation, and
// `io.retry_exhausted` counts operations that failed retryably even after
// the final attempt.

#ifndef DMX_UTIL_ENV_RETRY_H_
#define DMX_UTIL_ENV_RETRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/util/env.h"
#include "src/util/metrics.h"
#include "src/util/status.h"

namespace dmx {

/// Bounded-retry schedule: attempt, then up to (max_attempts - 1) retries
/// with exponential backoff starting at base_backoff_us, capped at
/// max_backoff_us, each sleep jittered to half-to-full of its nominal
/// value so concurrent retriers do not stampede in lockstep.
struct RetryPolicy {
  int max_attempts = 4;
  uint64_t base_backoff_us = 100;
  uint64_t max_backoff_us = 5000;
};

class RetryingEnv : public Env {
 public:
  /// Wraps `base` (Env::Default() when null). Not owned; must outlive this.
  explicit RetryingEnv(Env* base = nullptr, RetryPolicy policy = {});

  Env* base() const { return base_; }
  const RetryPolicy& policy() const { return policy_; }

  /// Run `op`, retrying per the policy while it fails retryably.
  /// Public so non-file operations (atomic snapshot writes) can share the
  /// schedule.
  Status WithRetry(const std::function<Status()>& op) const;

  // -- Env --------------------------------------------------------------------
  Status NewRandomAccessFile(const std::string& path, bool create,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status FileExists(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* out) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* out) override;
  Status LinkOrCopyFile(const std::string& from,
                        const std::string& to) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  Status WriteFileAtomic(const std::string& path, const Slice& data) override;

 private:
  Env* base_;
  RetryPolicy policy_;
  // Registry metrics ("io.*"), resolved once at construction.
  Counter* metric_retries_;
  Counter* metric_exhausted_;
};

}  // namespace dmx

#endif  // DMX_UTIL_ENV_RETRY_H_
