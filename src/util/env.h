// Env: pluggable operating-system environment for all file I/O.
//
// The kernel's durable state (page file, WAL, catalog, storage-method
// snapshots) is read and written exclusively through an Env, so tests can
// substitute a FaultInjectionEnv that simulates crashes, torn writes, and
// failing disks without touching the real filesystem semantics. The default
// Env is a thin POSIX wrapper whose read/write primitives retry EINTR and
// resume short transfers, so callers above never see partial I/O.

#ifndef DMX_UTIL_ENV_H_
#define DMX_UTIL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace dmx {

/// A file supporting positional reads and writes (pread/pwrite style).
/// Implementations must be safe for concurrent calls on distinct offsets;
/// callers serialize conflicting accesses themselves.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Read up to `n` bytes at `offset` into `scratch`. `*out_n` is the byte
  /// count actually read; it is smaller than `n` only at end of file.
  virtual Status Read(uint64_t offset, size_t n, char* scratch,
                      size_t* out_n) = 0;

  /// Write exactly `n` bytes at `offset` (extending the file if needed).
  virtual Status Write(uint64_t offset, const char* data, size_t n) = 0;

  /// Truncate (or extend with zeros) to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Force written data to stable storage. `data_only` permits fdatasync.
  virtual Status Sync(bool data_only) = 0;

  /// Current file size.
  virtual Status Size(uint64_t* out) = 0;

  /// Close the underlying handle (also done by the destructor).
  virtual Status Close() = 0;
};

/// Factory and filesystem namespace operations. Stateless and long-lived;
/// one Env may serve many databases concurrently. Not owned by callers.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never deleted).
  static Env* Default();

  /// Open `path` for random-access reads and writes; `create` adds O_CREAT.
  virtual Status NewRandomAccessFile(const std::string& path, bool create,
                                     std::unique_ptr<RandomAccessFile>* out) = 0;

  /// OK if `path` exists, NotFound otherwise.
  virtual Status FileExists(const std::string& path) = 0;
  virtual Status GetFileSize(const std::string& path, uint64_t* out) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  /// Create a directory; OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;
  /// fsync a directory so that entries created/renamed inside it survive a
  /// crash. Required after creating the page file or WAL file.
  virtual Status SyncDir(const std::string& path) = 0;
  /// Append the names (not paths) of the entries of directory `path` to
  /// `*out`, excluding "." and "..", in unspecified order. NotFound if the
  /// directory does not exist. WAL segment discovery and restore use this.
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* out) = 0;

  /// Make `to` a durable-content replica of `from`: either a hard link
  /// (same bytes, no extra space — the POSIX env when the filesystem
  /// allows it) or a synced byte copy. `to` must not exist. The *entry*
  /// for `to` still needs a SyncDir to survive power loss. The default
  /// implementation copies through the virtual NewRandomAccessFile
  /// primitives, so wrapper envs inject faults and track durability
  /// without extra code.
  virtual Status LinkOrCopyFile(const std::string& from,
                                const std::string& to);

  /// Read an entire file into `*out`. NotFound if it does not exist.
  virtual Status ReadFileToString(const std::string& path, std::string* out);

  /// Durably replace `path` with `data`: write a temp file, sync it,
  /// rename over `path`, and sync the parent directory. After an OK
  /// return the new content survives a crash; on failure the old content
  /// (if any) is still intact — never a torn mixture.
  virtual Status WriteFileAtomic(const std::string& path, const Slice& data);
};

/// Directory component of `path` ("." when there is no slash).
std::string DirnameOf(const std::string& path);

}  // namespace dmx

#endif  // DMX_UTIL_ENV_H_
