#include "src/util/thread_pool.h"

namespace dmx {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { Loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace dmx
