#include "src/util/thread_pool.h"

namespace dmx {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { Loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::Loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && tasks_.empty()) cv_.Wait();
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace dmx
