#include "src/util/metrics.h"

#include <time.h>

#include <cinttypes>
#include <cstdio>
#include <vector>

namespace dmx {

uint64_t MetricsNowNanos() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

#if DMX_METRICS_ENABLED

namespace {

// Nearest-rank percentile with linear interpolation inside the winning
// bucket. `q` in (0, 1]; counts/total are a relaxed-load snapshot.
double PercentileOf(const std::vector<uint64_t>& counts, uint64_t total,
                    double q) {
  if (total == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t cum = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    if (cum + counts[b] >= rank) {
      double low = static_cast<double>(Histogram::BucketLow(b));
      double high = static_cast<double>(Histogram::BucketHigh(b));
      double pos = static_cast<double>(rank - cum) /
                   static_cast<double>(counts[b]);
      return low + (high - low) * pos;
    }
    cum += counts[b];
  }
  return static_cast<double>(Histogram::BucketHigh(counts.size() - 1));
}

}  // namespace

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  std::vector<uint64_t> counts(kNumBuckets);
  // Bucket totals are read first; the aggregate count is clamped to their
  // sum so a Record racing the snapshot can't put the rank past the data.
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    bucket_total += counts[b];
  }
  snap.count = count_.load(std::memory_order_relaxed);
  if (snap.count > bucket_total) snap.count = bucket_total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.p50 = PercentileOf(counts, bucket_total, 0.50);
  snap.p95 = PercentileOf(counts, bucket_total, 0.95);
  snap.p99 = PercentileOf(counts, bucket_total, 0.99);
  return snap;
}

#endif  // DMX_METRICS_ENABLED

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%" PRIu64, counter->value());
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot s = hist->Snapshot();
    char buf[256];
    snprintf(buf, sizeof(buf),
             "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
             ",\"mean\":%.1f,\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
             s.count, s.sum, s.mean(), s.p50, s.p95, s.p99);
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + buf;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace dmx
