#include "src/util/crc32c.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define DMX_CRC32C_X86 1
#include <nmmintrin.h>
#endif

namespace dmx {
namespace {

struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

#ifdef DMX_CRC32C_X86
__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const char* data,
                                                          size_t n) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t l = crc ^ 0xFFFFFFFFu;
  // Align to 8 bytes, then consume 8 at a time.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    l = _mm_crc32_u8(l, *p++);
    --n;
  }
  uint64_t l64 = l;
  while (n >= 8) {
    uint64_t chunk;
    memcpy(&chunk, p, 8);
    l64 = _mm_crc32_u64(l64, chunk);
    p += 8;
    n -= 8;
  }
  l = static_cast<uint32_t>(l64);
  while (n > 0) {
    l = _mm_crc32_u8(l, *p++);
    --n;
  }
  return l ^ 0xFFFFFFFFu;
}
#endif  // DMX_CRC32C_X86

using ExtendFn = uint32_t (*)(uint32_t, const char*, size_t);

ExtendFn ChooseExtend() {
#ifdef DMX_CRC32C_X86
  if (__builtin_cpu_supports("sse4.2")) return &ExtendHardware;
#endif
  return &internal::Crc32cExtendSoftware;
}

ExtendFn DispatchedExtend() {
  static const ExtendFn fn = ChooseExtend();
  return fn;
}

}  // namespace

namespace internal {

uint32_t Crc32cExtendSoftware(uint32_t crc, const char* data, size_t n) {
  const uint32_t* table = Table().t;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t l = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    l = table[(l ^ p[i]) & 0xFF] ^ (l >> 8);
  }
  return l ^ 0xFFFFFFFFu;
}

}  // namespace internal

uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n) {
  return DispatchedExtend()(crc, data, n);
}

bool Crc32cHardwareAccelerated() {
#ifdef DMX_CRC32C_X86
  return DispatchedExtend() == &ExtendHardware;
#else
  return false;
#endif
}

}  // namespace dmx
