// Status: lightweight result type for fallible operations.
//
// Follows the RocksDB/Arrow idiom: operations return a Status (or fill an
// output parameter and return Status); exceptions are not used on data
// paths. A Status is cheap to construct in the OK case (no allocation).

#ifndef DMX_UTIL_STATUS_H_
#define DMX_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace dmx {

/// Result of a fallible operation.
///
/// `Veto` is a distinguished code used by attachment implementations to
/// reject a relation modification (the paper: "any attachment can veto the
/// entire record modification operation"); the data manager converts a veto
/// into a partial rollback of the already-executed effects.
///
/// [[nodiscard]]: a dropped Status is a swallowed failure. Callers that
/// genuinely cannot act on an error (destructors, best-effort cleanup)
/// must say so with `(void)Call();` and a comment giving the reason.
class [[nodiscard]] Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kIOError,
    kNotSupported,
    kBusy,          // lock not granted / would block
    kDeadlock,      // chosen as deadlock victim
    kVeto,          // attachment vetoed a relation modification
    kConstraint,    // integrity constraint violated (a kind of veto)
    kAborted,       // transaction already aborted / rollback in progress
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  /// An I/O failure worth retrying (ENOSPC that may clear, EAGAIN, an
  /// injected transient fault). Only the Env/WAL boundary should decide
  /// retryability — everything above propagates the Status unchanged, so
  /// the bit survives DMX_RETURN_IF_ERROR chains up to the retry layer
  /// and the ErrorHandler taxonomy.
  static Status RetryableIOError(std::string msg = "") {
    Status s(Code::kIOError, std::move(msg));
    s.retryable_ = true;
    return s;
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status Veto(std::string msg = "") {
    return Status(Code::kVeto, std::move(msg));
  }
  static Status Constraint(std::string msg = "") {
    return Status(Code::kConstraint, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsVeto() const {
    return code_ == Code::kVeto || code_ == Code::kConstraint;
  }
  bool IsConstraint() const { return code_ == Code::kConstraint; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  /// True when the failure is transient and the same call may succeed if
  /// repeated (the ErrorHandler's "transient-retryable" class).
  bool IsRetryable() const { return retryable_; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string for logs and error reports.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  bool retryable_ = false;
  std::string msg_;
};

/// Early-return helper: propagate a non-OK Status to the caller.
#define DMX_RETURN_IF_ERROR(expr)           \
  do {                                      \
    ::dmx::Status _s = (expr);              \
    if (!_s.ok()) return _s;                \
  } while (0)

}  // namespace dmx

#endif  // DMX_UTIL_STATUS_H_
