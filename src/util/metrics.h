// Metrics: the common accounting service. The paper's common services
// include cost estimation and accounting for every storage method and
// attachment type; this module is the process-wide measurement substrate
// those services (and every perf experiment) read from.
//
// Three primitives:
//
//   * Counter — a lock-free monotonic counter (relaxed atomic increments).
//     Counters are ALWAYS live, independent of the DMX_METRICS switch: an
//     uncontended relaxed fetch_add costs about as much as the plain
//     `++stat` it replaces, and the atomicity is what makes concurrent
//     stats reads race-free (TSan-clean).
//
//   * Histogram — fixed exponential buckets (bucket i holds values whose
//     bit width is i, i.e. [2^(i-1), 2^i)), atomic per-bucket counts, and
//     a snapshot that estimates p50/p95/p99 by linear interpolation inside
//     the winning bucket. Recording is one bit-scan plus three relaxed
//     adds; a percentile estimate is off by at most the bucket width (2x).
//     Compiled to a no-op when DMX_METRICS_ENABLED is 0.
//
//   * ScopedTimer — RAII wall-clock measurement into a Histogram. The two
//     clock reads are the dominant instrumentation cost, so the
//     DMX_METRICS=OFF build removes them entirely; ultra-hot call sites
//     (WAL append) additionally sample 1-in-N even when ON.
//
// The MetricsRegistry maps stable names ("<layer>.<object>.<metric>") to
// Counter/Histogram instances. Registration takes a mutex; the returned
// pointers are stable for the process lifetime, so hot paths resolve their
// metrics once (constructor / Database::Open) and then increment without
// any lookup or lock. Snapshot() serializes everything to JSON while
// writers keep writing — reads are relaxed atomic loads, so the snapshot
// is a consistent-enough, tear-free view.

#ifndef DMX_UTIL_METRICS_H_
#define DMX_UTIL_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/util/thread_annotations.h"

#ifndef DMX_METRICS_ENABLED
#define DMX_METRICS_ENABLED 1
#endif

namespace dmx {

/// Lock-free named counter. Always live (see file comment).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

  /// Stats structs expose Counter fields directly; existing readers
  /// compare them as plain integers.
  operator uint64_t() const { return value(); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time view of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;  // of recorded values (ns for latency histograms)
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;

  double mean() const {
    return count == 0 ? 0 : static_cast<double>(sum) / count;
  }
};

/// Fixed-bucket exponential latency histogram (values in nanoseconds by
/// convention, but any uint64 works). Lock-free increments.
class Histogram {
 public:
  /// Bucket i (i >= 1) covers [2^(i-1), 2^i); bucket 0 covers the value 0.
  /// 48 buckets reach ~78 hours in ns — far past any latency we record.
  static constexpr size_t kNumBuckets = 48;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

#if DMX_METRICS_ENABLED
  void Record(uint64_t value) {
    size_t b = BucketOf(value);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }
#else
  void Record(uint64_t) {}
  HistogramSnapshot Snapshot() const { return {}; }
  void Reset() {}
#endif

  static size_t BucketOf(uint64_t value) {
    size_t w = static_cast<size_t>(std::bit_width(value));
    return w < kNumBuckets ? w : kNumBuckets - 1;
  }
  /// Inclusive lower bound of bucket `b`.
  static uint64_t BucketLow(size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }
  /// Exclusive upper bound of bucket `b`.
  static uint64_t BucketHigh(size_t b) { return uint64_t{1} << b; }

 private:
#if DMX_METRICS_ENABLED
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
#endif
};

/// Monotonic clock for latency measurement.
uint64_t MetricsNowNanos();

/// RAII wall-time recorder. A null histogram (or the DMX_METRICS=OFF
/// build) makes it free. Passing a per-site `stride` counter with a
/// `sample_mask` (2^k - 1) times only 1-in-2^k calls: use mask 63 at call
/// sites too hot to afford two clock reads per operation.
class ScopedTimer {
 public:
#if DMX_METRICS_ENABLED
  explicit ScopedTimer(Histogram* h, std::atomic<uint64_t>* stride = nullptr,
                       uint64_t sample_mask = 0)
      : h_(h) {
    if (h_ == nullptr) return;
    if (stride != nullptr &&
        (stride->fetch_add(1, std::memory_order_relaxed) & sample_mask) !=
            0) {
      h_ = nullptr;  // not this call's turn to pay for the clock reads
      return;
    }
    start_ = MetricsNowNanos();
  }
  ~ScopedTimer() {
    if (h_ != nullptr) h_->Record(MetricsNowNanos() - start_);
  }

 private:
  Histogram* h_;
  uint64_t start_ = 0;
#else
  explicit ScopedTimer(Histogram*, std::atomic<uint64_t>* = nullptr,
                       uint64_t = 0) {}
#endif
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

/// Process-wide registry of named metrics. Lookup is mutex-guarded; the
/// returned pointers are stable, so resolve once and cache.
class MetricsRegistry {
 public:
  static MetricsRegistry* Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Never returns null.
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// JSON document: {"counters":{...},"histograms":{name:{count,sum,mean,
  /// p50,p95,p99}}}. Safe to call while writers are active.
  std::string ToJson() const;

  /// Zero every registered metric (benchmarks isolate phases with this).
  void ResetAll();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace dmx

#endif  // DMX_UTIL_METRICS_H_
