// FaultInjectionEnv: an Env wrapper that misbehaves on demand.
//
// Supports three families of disk faults, driving the crash-recovery
// torture tests:
//   * injected errors — reads, writes, and syncs fail by probability or
//     after a countdown; a countdown expiry "kills the disk" (every later
//     write/sync fails until ClearFaults), modelling a device that dies
//     and takes the process down with it;
//   * corrupted writes — the next write is bit-flipped or torn (only a
//     prefix reaches the file), which the per-page and per-WAL-frame
//     checksums must catch on the way back in;
//   * power loss — DropUnsyncedWrites() reverts every tracked file to its
//     state at the last successful Sync, and deletes files whose creation
//     was never made durable by a parent-directory sync.
//
// The wrapper tracks only files opened/written through it. Close all
// wrapped files (e.g. destroy the Database) before DropUnsyncedWrites.
// The env must outlive every file handle it returned.

#ifndef DMX_UTIL_FAULT_ENV_H_
#define DMX_UTIL_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <random>
#include <string>

#include "src/util/env.h"
#include "src/util/thread_annotations.h"

namespace dmx {

class FaultInjectionEnv : public Env {
 public:
  enum class CorruptMode { kNone, kBitFlip, kTornWrite };

  /// Wraps `base` (Env::Default() when null).
  explicit FaultInjectionEnv(Env* base = nullptr);

  // -- fault configuration ----------------------------------------------------
  void SetSeed(uint64_t seed);
  /// After `n` more successful writes/truncates, every subsequent write,
  /// truncate, and sync fails until ClearFaults() ("the disk died").
  /// n == 0 fails the very next one. Negative disables.
  void SetWriteFailAfter(int64_t n);
  /// Same countdown for syncs.
  void SetSyncFailAfter(int64_t n);
  /// Independent per-call failure probabilities (transient errors).
  void SetReadErrorProb(double p);
  void SetWriteErrorProb(double p);
  void SetSyncErrorProb(double p);
  /// The next `n` writes/truncates fail with a *retryable* IOError (a
  /// simulated ENOSPC burst); the fault then auto-clears — no ClearFaults
  /// needed, the disk "finds space again". Unlike the countdown faults,
  /// the disk never dies. n <= 0 disarms.
  void SetTransientWriteFaults(int64_t n);
  /// Same auto-clearing burst for syncs (including directory syncs).
  void SetTransientSyncFaults(int64_t n);
  /// Same auto-clearing burst for reads.
  void SetTransientReadFaults(int64_t n);
  /// Corrupt the next write that is not rejected: flip one random bit, or
  /// tear it (persist only the first half).
  void SetCorruptNextWrite(CorruptMode mode);
  /// Disarm everything (including a dead disk).
  void ClearFaults();
  /// True once a countdown expired and the disk is dead.
  bool dead_disk() const;

  // -- crash simulation -------------------------------------------------------
  /// Simulate power loss: every tracked file reverts to its content at the
  /// last successful Sync; files never made durable are deleted. Call with
  /// no wrapped file handles open.
  Status DropUnsyncedWrites();

  // -- counters ---------------------------------------------------------------
  uint64_t writes() const;
  uint64_t syncs() const;
  uint64_t injected_faults() const;
  /// Transient-burst injections still pending (all three families); tests
  /// use this to see how far a retry/recovery loop has drained the burst.
  int64_t transient_faults_remaining() const;

  // -- Env --------------------------------------------------------------------
  Status NewRandomAccessFile(const std::string& path, bool create,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status FileExists(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* out) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* out) override;
  // LinkOrCopyFile is deliberately NOT overridden: the base-class copy
  // routes every byte through this env's NewRandomAccessFile / Write /
  // Sync, so archive copies hit the same fault triggers and power-loss
  // tracking as any other file — a "hard link" under fault injection is
  // just a copy whose durability is modelled honestly.
  /// Atomic + durable once OK (old content intact on failure); counts as
  /// one write plus one sync against the fault triggers.
  Status WriteFileAtomic(const std::string& path, const Slice& data) override;

 private:
  friend class FaultFile;

  struct FileState {
    std::string synced_content;  // content at the last successful Sync
    bool created_durable = false;  // directory entry survives power loss
  };

  struct State {
    mutable Mutex mu;
    std::mt19937_64 rng GUARDED_BY(mu){0xD3F4A17u};
    bool dead GUARDED_BY(mu) = false;
    int64_t write_fail_after GUARDED_BY(mu) = -1;
    int64_t sync_fail_after GUARDED_BY(mu) = -1;
    double read_error_prob GUARDED_BY(mu) = 0;
    double write_error_prob GUARDED_BY(mu) = 0;
    double sync_error_prob GUARDED_BY(mu) = 0;
    int64_t transient_write_left GUARDED_BY(mu) = 0;
    int64_t transient_sync_left GUARDED_BY(mu) = 0;
    int64_t transient_read_left GUARDED_BY(mu) = 0;
    CorruptMode corrupt_next GUARDED_BY(mu) = CorruptMode::kNone;
    uint64_t writes GUARDED_BY(mu) = 0;
    uint64_t syncs GUARDED_BY(mu) = 0;
    uint64_t injected GUARDED_BY(mu) = 0;
    std::map<std::string, FileState> files GUARDED_BY(mu);
  };

  /// How an operation must fail: not at all, with a plain IOError (dead
  /// disk / probability fault), or with a retryable IOError (transient
  /// burst).
  enum class Fail { kNone, kHard, kTransient };

  // All decide the next operation's fate (mu held by caller).
  Fail CheckWriteLocked() REQUIRES(state_.mu);
  Fail CheckSyncLocked() REQUIRES(state_.mu);
  Fail CheckReadLocked() REQUIRES(state_.mu);
  bool CoinLocked(double p) REQUIRES(state_.mu);

  // Record the real file's current content as the synced snapshot.
  void SnapshotSynced(const std::string& path);

  Env* base_;
  State state_;
};

}  // namespace dmx

#endif  // DMX_UTIL_FAULT_ENV_H_
