#include "src/util/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace dmx {

namespace {

Status PosixError(const std::string& context, int err) {
  std::string msg = context + ": " + strerror(err);
  switch (err) {
    // Conditions that clear on their own (space freed, pressure passes):
    // worth a bounded retry at the RetryingEnv layer. EINTR never gets
    // here — the read/write loops resume it inline.
    case ENOSPC:
    case EDQUOT:
    case EAGAIN:
    case EBUSY:
    case ENOMEM:
      return Status::RetryableIOError(std::move(msg));
    default:
      return Status::IOError(std::move(msg));
  }
}

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* out_n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, scratch + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;  // interrupted: resume
        return PosixError("pread '" + path_ + "'", errno);
      }
      if (r == 0) break;  // end of file
      done += static_cast<size_t>(r);
    }
    *out_n = done;
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t w = ::pwrite(fd_, data + done, n - done,
                           static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;  // interrupted: resume
        return PosixError("pwrite '" + path_ + "'", errno);
      }
      done += static_cast<size_t>(w);  // short write: resume the rest
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return PosixError("ftruncate '" + path_ + "'", errno);
    }
    return Status::OK();
  }

  Status Sync(bool data_only) override {
    int r = data_only ? ::fdatasync(fd_) : ::fsync(fd_);
    if (r != 0) return PosixError("fsync '" + path_ + "'", errno);
    return Status::OK();
  }

  Status Size(uint64_t* out) override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return PosixError("fstat '" + path_ + "'", errno);
    }
    *out = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return PosixError("close '" + path_ + "'", errno);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Status NewRandomAccessFile(const std::string& path, bool create,
                             std::unique_ptr<RandomAccessFile>* out) override {
    int flags = O_RDWR;
    if (create) flags |= O_CREAT;
    int fd;
    do {
      fd = ::open(path.c_str(), flags, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return PosixError("open '" + path + "'", errno);
    *out = std::make_unique<PosixRandomAccessFile>(path, fd);
    return Status::OK();
  }

  Status FileExists(const std::string& path) override {
    if (::access(path.c_str(), F_OK) == 0) return Status::OK();
    return Status::NotFound("'" + path + "' does not exist");
  }

  Status GetFileSize(const std::string& path, uint64_t* out) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound("'" + path + "'");
      return PosixError("stat '" + path + "'", errno);
    }
    *out = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("'" + path + "'");
      return PosixError("unlink '" + path + "'", errno);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename '" + from + "' -> '" + to + "'", errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError("mkdir '" + path + "'", errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd;
    do {
      fd = ::open(path.c_str(), O_RDONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return PosixError("open dir '" + path + "'", errno);
    int r = ::fsync(fd);
    int saved = errno;
    ::close(fd);
    if (r != 0) return PosixError("fsync dir '" + path + "'", saved);
    return Status::OK();
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* out) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      if (errno == ENOENT) return Status::NotFound("'" + path + "'");
      return PosixError("opendir '" + path + "'", errno);
    }
    errno = 0;
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") out->push_back(name);
      errno = 0;
    }
    int saved = errno;
    ::closedir(dir);
    if (saved != 0) return PosixError("readdir '" + path + "'", saved);
    return Status::OK();
  }

  Status LinkOrCopyFile(const std::string& from,
                        const std::string& to) override {
    if (::link(from.c_str(), to.c_str()) == 0) return Status::OK();
    if (errno == ENOENT || errno == EEXIST) {
      return PosixError("link '" + from + "' -> '" + to + "'", errno);
    }
    // EXDEV / EPERM / EMLINK / filesystems without hard links: real copy.
    return Env::LinkOrCopyFile(from, to);
  }
};

}  // namespace

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  DMX_RETURN_IF_ERROR(FileExists(path));
  std::unique_ptr<RandomAccessFile> file;
  DMX_RETURN_IF_ERROR(NewRandomAccessFile(path, /*create=*/false, &file));
  uint64_t size;
  DMX_RETURN_IF_ERROR(file->Size(&size));
  out->resize(size);
  size_t got = 0;
  DMX_RETURN_IF_ERROR(file->Read(0, size, out->data(), &got));
  if (got != size) {
    return Status::IOError("short read of '" + path + "'");
  }
  return Status::OK();
}

Status Env::WriteFileAtomic(const std::string& path, const Slice& data) {
  const std::string tmp = path + ".tmp";
  {
    std::unique_ptr<RandomAccessFile> file;
    DMX_RETURN_IF_ERROR(NewRandomAccessFile(tmp, /*create=*/true, &file));
    DMX_RETURN_IF_ERROR(file->Truncate(0));
    DMX_RETURN_IF_ERROR(file->Write(0, data.data(), data.size()));
    DMX_RETURN_IF_ERROR(file->Sync(/*data_only=*/false));
    DMX_RETURN_IF_ERROR(file->Close());
  }
  DMX_RETURN_IF_ERROR(RenameFile(tmp, path));
  return SyncDir(DirnameOf(path));
}

Status Env::LinkOrCopyFile(const std::string& from, const std::string& to) {
  if (FileExists(to).ok()) {
    return Status::IOError("copy target '" + to + "' already exists");
  }
  std::unique_ptr<RandomAccessFile> src;
  DMX_RETURN_IF_ERROR(NewRandomAccessFile(from, /*create=*/false, &src));
  uint64_t size = 0;
  DMX_RETURN_IF_ERROR(src->Size(&size));
  std::unique_ptr<RandomAccessFile> dst;
  DMX_RETURN_IF_ERROR(NewRandomAccessFile(to, /*create=*/true, &dst));
  DMX_RETURN_IF_ERROR(dst->Truncate(0));
  constexpr size_t kChunk = 1 << 16;
  std::string buf(kChunk, '\0');
  for (uint64_t off = 0; off < size;) {
    const size_t want = static_cast<size_t>(
        size - off < kChunk ? size - off : kChunk);
    size_t got = 0;
    DMX_RETURN_IF_ERROR(src->Read(off, want, buf.data(), &got));
    if (got == 0) return Status::IOError("short read copying '" + from + "'");
    DMX_RETURN_IF_ERROR(dst->Write(off, buf.data(), got));
    off += got;
  }
  DMX_RETURN_IF_ERROR(dst->Sync(/*data_only=*/false));
  DMX_RETURN_IF_ERROR(dst->Close());
  return src->Close();
}

std::string DirnameOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // leaked singleton
  return env;
}

}  // namespace dmx
