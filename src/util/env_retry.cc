#include "src/util/env_retry.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>
#include <utility>

namespace dmx {

namespace {

// Jitter: sleep between half and the full nominal backoff. A per-thread
// generator keeps concurrent retriers decorrelated without locking.
uint64_t Jittered(uint64_t nominal_us) {
  if (nominal_us <= 1) return nominal_us;
  thread_local std::minstd_rand rng(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
  return nominal_us / 2 + rng() % (nominal_us / 2 + 1);
}

/// Wraps a base file: every operation that can fail transiently goes
/// through the env's retry schedule.
class RetryingFile : public RandomAccessFile {
 public:
  RetryingFile(const RetryingEnv* env, std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* out_n) override {
    return env_->WithRetry(
        [&] { return base_->Read(offset, n, scratch, out_n); });
  }
  Status Write(uint64_t offset, const char* data, size_t n) override {
    return env_->WithRetry([&] { return base_->Write(offset, data, n); });
  }
  Status Truncate(uint64_t size) override {
    return env_->WithRetry([&] { return base_->Truncate(size); });
  }
  Status Sync(bool data_only) override {
    // Retried like writes: our files are unbuffered pwrite + f(data)sync,
    // so re-issuing the sync re-forces the same already-written bytes (no
    // fsyncgate-style silent page-cache drop to worry about at this layer;
    // the fault model is "the call failed", not "dirty pages vanished").
    return env_->WithRetry([&] { return base_->Sync(data_only); });
  }
  Status Size(uint64_t* out) override { return base_->Size(out); }
  Status Close() override { return base_->Close(); }

 private:
  const RetryingEnv* env_;
  std::unique_ptr<RandomAccessFile> base_;
};

}  // namespace

RetryingEnv::RetryingEnv(Env* base, RetryPolicy policy)
    : base_(base != nullptr ? base : Env::Default()), policy_(policy) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metric_retries_ = metrics->GetCounter("io.retries");
  metric_exhausted_ = metrics->GetCounter("io.retry_exhausted");
}

Status RetryingEnv::WithRetry(const std::function<Status()>& op) const {
  Status s = op();
  uint64_t backoff = policy_.base_backoff_us;
  for (int attempt = 1;
       !s.ok() && s.IsRetryable() && attempt < policy_.max_attempts;
       ++attempt) {
    metric_retries_->Increment();
    std::this_thread::sleep_for(std::chrono::microseconds(Jittered(backoff)));
    backoff = std::min(backoff * 2, policy_.max_backoff_us);
    s = op();
  }
  if (!s.ok() && s.IsRetryable()) metric_exhausted_->Increment();
  return s;
}

Status RetryingEnv::NewRandomAccessFile(
    const std::string& path, bool create,
    std::unique_ptr<RandomAccessFile>* out) {
  std::unique_ptr<RandomAccessFile> base_file;
  DMX_RETURN_IF_ERROR(WithRetry(
      [&] { return base_->NewRandomAccessFile(path, create, &base_file); }));
  *out = std::make_unique<RetryingFile>(this, std::move(base_file));
  return Status::OK();
}

Status RetryingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status RetryingEnv::GetFileSize(const std::string& path, uint64_t* out) {
  return base_->GetFileSize(path, out);
}

Status RetryingEnv::DeleteFile(const std::string& path) {
  return WithRetry([&] { return base_->DeleteFile(path); });
}

Status RetryingEnv::RenameFile(const std::string& from,
                               const std::string& to) {
  return WithRetry([&] { return base_->RenameFile(from, to); });
}

Status RetryingEnv::CreateDir(const std::string& path) {
  return WithRetry([&] { return base_->CreateDir(path); });
}

Status RetryingEnv::SyncDir(const std::string& path) {
  return WithRetry([&] { return base_->SyncDir(path); });
}

Status RetryingEnv::ListDir(const std::string& path,
                            std::vector<std::string>* out) {
  return WithRetry([&] {
    out->clear();
    return base_->ListDir(path, out);
  });
}

Status RetryingEnv::LinkOrCopyFile(const std::string& from,
                                   const std::string& to) {
  return WithRetry([&] {
    // A failed copy attempt may have left a partial target behind; the
    // base refuses to overwrite, so clear it before re-issuing.
    if (base_->FileExists(to).ok()) {
      DMX_RETURN_IF_ERROR(base_->DeleteFile(to));
    }
    return base_->LinkOrCopyFile(from, to);
  });
}

Status RetryingEnv::ReadFileToString(const std::string& path,
                                     std::string* out) {
  // Delegate to the base so its bookkeeping (fault-injection snapshots)
  // sees the read; the base's own files do the per-call retries.
  return base_->ReadFileToString(path, out);
}

Status RetryingEnv::WriteFileAtomic(const std::string& path,
                                    const Slice& data) {
  // The base's override is the atomic unit (temp file + rename + dir
  // sync); retry the whole unit — after any failure the old content is
  // intact, so a re-run is safe.
  return WithRetry([&] { return base_->WriteFileAtomic(path, data); });
}

}  // namespace dmx
