// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) for
// end-to-end corruption detection on pages and WAL record frames.
//
// Dispatches at first use to the SSE4.2 CRC32 instruction when the CPU has
// it, falling back to a table-driven software implementation. Extend-style
// chaining holds: Crc32cExtend(Crc32c(a, n), b, m) == crc of a||b.

#ifndef DMX_UTIL_CRC32C_H_
#define DMX_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dmx {

/// Continue a CRC over `n` more bytes. `crc` is a finalized value from a
/// previous call (or 0 to start).
uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n);

/// CRC32C of a buffer.
inline uint32_t Crc32c(const char* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// True when the SSE4.2 hardware path is in use.
bool Crc32cHardwareAccelerated();

namespace internal {
/// Software path, exported so tests and benchmarks can cross-check the
/// hardware path against it.
uint32_t Crc32cExtendSoftware(uint32_t crc, const char* data, size_t n);
}  // namespace internal

}  // namespace dmx

#endif  // DMX_UTIL_CRC32C_H_
