// ThreadPool: the shared worker-thread service backing intra-query
// parallelism. One pool per Database (sized from
// DatabaseOptions::worker_threads), shared by every concurrent parallel
// scan: partitions are submitted as independent tasks, so a pool smaller
// than the total partition count degrades gracefully to queuing instead of
// oversubscribing the machine.
//
// Tasks must not assume which pool thread runs them and must provide their
// own completion signalling (the pool has no join-one-task primitive; the
// destructor drains the queue and joins all threads).

#ifndef DMX_UTIL_THREAD_POOL_H_
#define DMX_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/thread_annotations.h"

namespace dmx {

class ThreadPool {
 public:
  /// Starts `threads` workers (minimum 1).
  explicit ThreadPool(size_t threads);

  /// Runs every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution on some pool thread.
  void Submit(std::function<void()> task);

  size_t size() const { return threads_.size(); }

 private:
  void Loop();

  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar cv_{&mu_};
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace dmx

#endif  // DMX_UTIL_THREAD_POOL_H_
