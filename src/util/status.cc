#include "src/util/status.h"

namespace dmx {

std::string Status::ToString() const {
  const char* name = "UNKNOWN";
  switch (code_) {
    case Code::kOk: name = "OK"; break;
    case Code::kNotFound: name = "NOT_FOUND"; break;
    case Code::kCorruption: name = "CORRUPTION"; break;
    case Code::kInvalidArgument: name = "INVALID_ARGUMENT"; break;
    case Code::kIOError: name = "IO_ERROR"; break;
    case Code::kNotSupported: name = "NOT_SUPPORTED"; break;
    case Code::kBusy: name = "BUSY"; break;
    case Code::kDeadlock: name = "DEADLOCK"; break;
    case Code::kVeto: name = "VETO"; break;
    case Code::kConstraint: name = "CONSTRAINT"; break;
    case Code::kAborted: name = "ABORTED"; break;
    case Code::kInternal: name = "INTERNAL"; break;
  }
  std::string out = name;
  if (retryable_) out += " (retryable)";
  if (!msg_.empty()) out += ": " + msg_;
  return out;
}

}  // namespace dmx
