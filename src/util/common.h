// Common identifier types shared across the system.

#ifndef DMX_UTIL_COMMON_H_
#define DMX_UTIL_COMMON_H_

#include <cstdint>

namespace dmx {

/// Page number within the database file. Page 0 is the file header.
using PageId = uint32_t;
constexpr PageId kInvalidPageId = 0;

/// Log sequence number. 0 means "none".
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = 0;

/// Transaction identifier. 0 means "no transaction".
using TxnId = uint64_t;
constexpr TxnId kInvalidTxnId = 0;

/// Relation (table) identifier assigned by the catalog.
using RelationId = uint32_t;
constexpr RelationId kInvalidRelationId = 0;

/// Storage-method type identifier: a small integer indexing the storage
/// method procedure vectors (the paper: "storage method and attachment
/// internal identifiers are small integers that serve as indexes into the
/// vectors of procedures").
using SmId = uint16_t;

/// Attachment type identifier: indexes the attachment procedure vectors and
/// selects field N of the extensible relation descriptor.
using AtId = uint16_t;

/// The paper notes the record-oriented relation descriptor format
/// "effectively limits the number of different attachment types to a few
/// dozen"; we adopt the same bound.
constexpr AtId kMaxAttachmentTypes = 32;

constexpr size_t kPageSize = 8192;

}  // namespace dmx

#endif  // DMX_UTIL_COMMON_H_
