#include "src/util/fault_env.h"

#include <vector>

namespace dmx {

/// Wraps a base file; consults the env's shared fault state on every call.
/// At namespace scope (not anonymous) so the friend declaration binds.
class FaultFile : public RandomAccessFile {
 public:
  FaultFile(FaultInjectionEnv* env, std::string path,
            std::unique_ptr<RandomAccessFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* out_n) override {
    {
      MutexLock lock(&env_->state_.mu);
      switch (env_->CheckReadLocked()) {
        case FaultInjectionEnv::Fail::kHard:
          return Status::IOError("injected read fault on '" + path_ + "'");
        case FaultInjectionEnv::Fail::kTransient:
          return Status::RetryableIOError(
              "injected transient read fault on '" + path_ + "'");
        case FaultInjectionEnv::Fail::kNone:
          break;
      }
    }
    return base_->Read(offset, n, scratch, out_n);
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    FaultInjectionEnv::CorruptMode corrupt;
    {
      MutexLock lock(&env_->state_.mu);
      switch (env_->CheckWriteLocked()) {
        case FaultInjectionEnv::Fail::kHard:
          return Status::IOError("injected write fault on '" + path_ + "'");
        case FaultInjectionEnv::Fail::kTransient:
          return Status::RetryableIOError(
              "injected transient write fault (ENOSPC) on '" + path_ + "'");
        case FaultInjectionEnv::Fail::kNone:
          break;
      }
      corrupt = env_->state_.corrupt_next;
      env_->state_.corrupt_next = FaultInjectionEnv::CorruptMode::kNone;
      ++env_->state_.writes;
    }
    switch (corrupt) {
      case FaultInjectionEnv::CorruptMode::kNone:
        return base_->Write(offset, data, n);
      case FaultInjectionEnv::CorruptMode::kBitFlip: {
        std::vector<char> copy(data, data + n);
        if (n > 0) {
          uint64_t bit;
          {
            MutexLock lock(&env_->state_.mu);
            bit = env_->state_.rng() % (n * 8);
          }
          copy[bit / 8] = static_cast<char>(copy[bit / 8] ^ (1u << (bit % 8)));
        }
        // The caller believes the write succeeded; the medium lies.
        return base_->Write(offset, copy.data(), n);
      }
      case FaultInjectionEnv::CorruptMode::kTornWrite:
        // Only a prefix reaches the platter; the caller is not told.
        return base_->Write(offset, data, n / 2);
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    {
      MutexLock lock(&env_->state_.mu);
      switch (env_->CheckWriteLocked()) {
        case FaultInjectionEnv::Fail::kHard:
          return Status::IOError("injected truncate fault on '" + path_ +
                                 "'");
        case FaultInjectionEnv::Fail::kTransient:
          return Status::RetryableIOError(
              "injected transient truncate fault (ENOSPC) on '" + path_ +
              "'");
        case FaultInjectionEnv::Fail::kNone:
          break;
      }
      ++env_->state_.writes;
    }
    return base_->Truncate(size);
  }

  Status Sync(bool data_only) override {
    {
      MutexLock lock(&env_->state_.mu);
      switch (env_->CheckSyncLocked()) {
        case FaultInjectionEnv::Fail::kHard:
          return Status::IOError("injected sync fault on '" + path_ + "'");
        case FaultInjectionEnv::Fail::kTransient:
          return Status::RetryableIOError(
              "injected transient sync fault (ENOSPC) on '" + path_ + "'");
        case FaultInjectionEnv::Fail::kNone:
          break;
      }
      ++env_->state_.syncs;
    }
    DMX_RETURN_IF_ERROR(base_->Sync(data_only));
    env_->SnapshotSynced(path_);
    return Status::OK();
  }

  Status Size(uint64_t* out) override { return base_->Size(out); }
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<RandomAccessFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectionEnv::SetSeed(uint64_t seed) {
  MutexLock lock(&state_.mu);
  state_.rng.seed(seed);
}

void FaultInjectionEnv::SetWriteFailAfter(int64_t n) {
  MutexLock lock(&state_.mu);
  state_.write_fail_after = n;
}

void FaultInjectionEnv::SetSyncFailAfter(int64_t n) {
  MutexLock lock(&state_.mu);
  state_.sync_fail_after = n;
}

void FaultInjectionEnv::SetReadErrorProb(double p) {
  MutexLock lock(&state_.mu);
  state_.read_error_prob = p;
}

void FaultInjectionEnv::SetWriteErrorProb(double p) {
  MutexLock lock(&state_.mu);
  state_.write_error_prob = p;
}

void FaultInjectionEnv::SetSyncErrorProb(double p) {
  MutexLock lock(&state_.mu);
  state_.sync_error_prob = p;
}

void FaultInjectionEnv::SetCorruptNextWrite(CorruptMode mode) {
  MutexLock lock(&state_.mu);
  state_.corrupt_next = mode;
}

void FaultInjectionEnv::SetTransientWriteFaults(int64_t n) {
  MutexLock lock(&state_.mu);
  state_.transient_write_left = n;
}

void FaultInjectionEnv::SetTransientSyncFaults(int64_t n) {
  MutexLock lock(&state_.mu);
  state_.transient_sync_left = n;
}

void FaultInjectionEnv::SetTransientReadFaults(int64_t n) {
  MutexLock lock(&state_.mu);
  state_.transient_read_left = n;
}

void FaultInjectionEnv::ClearFaults() {
  MutexLock lock(&state_.mu);
  state_.dead = false;
  state_.write_fail_after = -1;
  state_.sync_fail_after = -1;
  state_.read_error_prob = 0;
  state_.write_error_prob = 0;
  state_.sync_error_prob = 0;
  state_.transient_write_left = 0;
  state_.transient_sync_left = 0;
  state_.transient_read_left = 0;
  state_.corrupt_next = CorruptMode::kNone;
}

bool FaultInjectionEnv::dead_disk() const {
  MutexLock lock(&state_.mu);
  return state_.dead;
}

uint64_t FaultInjectionEnv::writes() const {
  MutexLock lock(&state_.mu);
  return state_.writes;
}

uint64_t FaultInjectionEnv::syncs() const {
  MutexLock lock(&state_.mu);
  return state_.syncs;
}

uint64_t FaultInjectionEnv::injected_faults() const {
  MutexLock lock(&state_.mu);
  return state_.injected;
}

int64_t FaultInjectionEnv::transient_faults_remaining() const {
  MutexLock lock(&state_.mu);
  return state_.transient_write_left + state_.transient_sync_left +
         state_.transient_read_left;
}

bool FaultInjectionEnv::CoinLocked(double p) {
  if (p <= 0) return false;
  return std::uniform_real_distribution<double>(0, 1)(state_.rng) < p;
}

FaultInjectionEnv::Fail FaultInjectionEnv::CheckWriteLocked() {
  if (state_.dead) {
    ++state_.injected;
    return Fail::kHard;
  }
  if (state_.write_fail_after == 0) {
    state_.dead = true;
    ++state_.injected;
    return Fail::kHard;
  }
  if (state_.write_fail_after > 0) --state_.write_fail_after;
  if (state_.transient_write_left > 0) {
    --state_.transient_write_left;
    ++state_.injected;
    return Fail::kTransient;
  }
  if (CoinLocked(state_.write_error_prob)) {
    ++state_.injected;
    return Fail::kHard;
  }
  return Fail::kNone;
}

FaultInjectionEnv::Fail FaultInjectionEnv::CheckSyncLocked() {
  if (state_.dead) {
    ++state_.injected;
    return Fail::kHard;
  }
  if (state_.sync_fail_after == 0) {
    state_.dead = true;
    ++state_.injected;
    return Fail::kHard;
  }
  if (state_.sync_fail_after > 0) --state_.sync_fail_after;
  if (state_.transient_sync_left > 0) {
    --state_.transient_sync_left;
    ++state_.injected;
    return Fail::kTransient;
  }
  if (CoinLocked(state_.sync_error_prob)) {
    ++state_.injected;
    return Fail::kHard;
  }
  return Fail::kNone;
}

FaultInjectionEnv::Fail FaultInjectionEnv::CheckReadLocked() {
  if (state_.transient_read_left > 0) {
    --state_.transient_read_left;
    ++state_.injected;
    return Fail::kTransient;
  }
  if (CoinLocked(state_.read_error_prob)) {
    ++state_.injected;
    return Fail::kHard;
  }
  return Fail::kNone;
}

void FaultInjectionEnv::SnapshotSynced(const std::string& path) {
  std::string content;
  if (!base_->ReadFileToString(path, &content).ok()) return;
  MutexLock lock(&state_.mu);
  state_.files[path].synced_content = std::move(content);
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& path, bool create,
    std::unique_ptr<RandomAccessFile>* out) {
  const bool existed = base_->FileExists(path).ok();
  std::string initial;
  if (existed) base_->ReadFileToString(path, &initial).ok();
  std::unique_ptr<RandomAccessFile> base_file;
  DMX_RETURN_IF_ERROR(base_->NewRandomAccessFile(path, create, &base_file));
  {
    MutexLock lock(&state_.mu);
    if (state_.files.find(path) == state_.files.end()) {
      FileState fs;
      if (existed) {
        // Pre-existing files are durable with their current content.
        fs.created_durable = true;
        fs.synced_content = std::move(initial);
      }
      state_.files[path] = std::move(fs);
    }
  }
  *out = std::make_unique<FaultFile>(this, path, std::move(base_file));
  return Status::OK();
}

Status FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::GetFileSize(const std::string& path, uint64_t* out) {
  return base_->GetFileSize(path, out);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  Status s = base_->DeleteFile(path);
  if (s.ok()) {
    MutexLock lock(&state_.mu);
    state_.files.erase(path);
  }
  return s;
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  DMX_RETURN_IF_ERROR(base_->RenameFile(from, to));
  MutexLock lock(&state_.mu);
  auto it = state_.files.find(from);
  FileState moved;
  if (it != state_.files.end()) {
    moved = std::move(it->second);
    state_.files.erase(it);
  }
  // Simplification: a completed rename is treated as durable (callers that
  // need strict semantics follow with SyncDir, as WriteFileAtomic does).
  moved.created_durable = true;
  state_.files[to] = std::move(moved);
  return Status::OK();
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status FaultInjectionEnv::ListDir(const std::string& path,
                                  std::vector<std::string>* out) {
  return base_->ListDir(path, out);
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  {
    MutexLock lock(&state_.mu);
    switch (CheckSyncLocked()) {
      case Fail::kHard:
        return Status::IOError("injected dir-sync fault on '" + path + "'");
      case Fail::kTransient:
        return Status::RetryableIOError(
            "injected transient dir-sync fault on '" + path + "'");
      case Fail::kNone:
        break;
    }
    ++state_.syncs;
  }
  DMX_RETURN_IF_ERROR(base_->SyncDir(path));
  MutexLock lock(&state_.mu);
  for (auto& [file_path, fs] : state_.files) {
    if (DirnameOf(file_path) == path) fs.created_durable = true;
  }
  return Status::OK();
}

Status FaultInjectionEnv::WriteFileAtomic(const std::string& path,
                                          const Slice& data) {
  {
    MutexLock lock(&state_.mu);
    // Write check first; the sync check runs only when the write passes
    // (matching the two real operations an atomic replace performs).
    Fail f = CheckWriteLocked();
    if (f == Fail::kNone) f = CheckSyncLocked();
    switch (f) {
      case Fail::kHard:
        return Status::IOError("injected atomic-write fault on '" + path +
                               "'");
      case Fail::kTransient:
        return Status::RetryableIOError(
            "injected transient atomic-write fault (ENOSPC) on '" + path +
            "'");
      case Fail::kNone:
        break;
    }
    ++state_.writes;
    ++state_.syncs;
  }
  DMX_RETURN_IF_ERROR(base_->WriteFileAtomic(path, data));
  MutexLock lock(&state_.mu);
  FileState& fs = state_.files[path];
  fs.synced_content.assign(data.data(), data.size());
  fs.created_durable = true;
  return Status::OK();
}

Status FaultInjectionEnv::DropUnsyncedWrites() {
  // Copy the plan under the lock, then touch the base filesystem.
  std::vector<std::pair<std::string, FileState>> keep;
  std::vector<std::string> doomed;
  {
    MutexLock lock(&state_.mu);
    for (auto& [path, fs] : state_.files) {
      if (fs.created_durable) {
        keep.emplace_back(path, fs);
      } else {
        doomed.push_back(path);
      }
    }
    for (const std::string& path : doomed) state_.files.erase(path);
  }
  for (const std::string& path : doomed) {
    base_->DeleteFile(path).ok();  // may already be gone
  }
  for (auto& [path, fs] : keep) {
    std::unique_ptr<RandomAccessFile> file;
    DMX_RETURN_IF_ERROR(
        base_->NewRandomAccessFile(path, /*create=*/true, &file));
    DMX_RETURN_IF_ERROR(file->Truncate(0));
    DMX_RETURN_IF_ERROR(
        file->Write(0, fs.synced_content.data(), fs.synced_content.size()));
    DMX_RETURN_IF_ERROR(file->Sync(/*data_only=*/false));
    DMX_RETURN_IF_ERROR(file->Close());
  }
  return Status::OK();
}

}  // namespace dmx
