#include "src/util/coding.h"

namespace dmx {

void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int i = 0;
  while (v >= 0x80) {
    buf[i++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), i);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int i = 0;
  while (v >= 0x80) {
    buf[i++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), i);
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && !input->empty(); shift += 7) {
    uint32_t byte = static_cast<unsigned char>((*input)[0]);
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>((*input)[0]);
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len = 0;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

bool GetDouble(Slice* input, double* value) {
  if (input->size() < 8) return false;
  *value = DecodeDouble(input->data());
  input->remove_prefix(8);
  return true;
}

void PutOrderedInt64(std::string* dst, int64_t v) {
  // Flip the sign bit so negatives sort below positives, then big-endian.
  uint64_t u = static_cast<uint64_t>(v) ^ (1ull << 63);
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(u & 0xff);
    u >>= 8;
  }
  dst->append(buf, 8);
}

int64_t DecodeOrderedInt64(const char* p) {
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u = (u << 8) | static_cast<unsigned char>(p[i]);
  }
  return static_cast<int64_t>(u ^ (1ull << 63));
}

void PutOrderedDouble(std::string* dst, double v) {
  uint64_t bits;
  memcpy(&bits, &v, 8);
  // For non-negative doubles set the sign bit; for negative flip all bits.
  if (bits & (1ull << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ull << 63);
  }
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(bits & 0xff);
    bits >>= 8;
  }
  dst->append(buf, 8);
}

double DecodeOrderedDouble(const char* p) {
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits = (bits << 8) | static_cast<unsigned char>(p[i]);
  }
  if (bits & (1ull << 63)) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  double v;
  memcpy(&v, &bits, 8);
  return v;
}

}  // namespace dmx
