// Thread-safety annotations and annotated synchronization primitives.
//
// Wraps Clang's Thread Safety Analysis ("C/C++ Thread Safety Analysis",
// Hutchins et al., CGO 2014) so the locking protocols of every concurrent
// subsystem — which mutex guards which members, which functions must be
// called with which locks held — are stated in the code and checked at
// compile time. Under clang with -Wthread-safety (the DMX_THREAD_SAFETY
// CMake option promotes it to -Werror=thread-safety) a read of a
// GUARDED_BY member outside its mutex, a forgotten unlock, or a call to a
// REQUIRES function without the lock is a build error. Under other
// compilers the attributes expand to nothing and the wrappers cost exactly
// what the std primitives they wrap cost.
//
// Conventions (enforced by tools/dmx_lint.py):
//   * Never declare a raw std::mutex member — use dmx::Mutex so the
//     analysis sees lock/unlock operations.
//   * Every Mutex member must have at least one GUARDED_BY companion (or a
//     `dmx-lint: allow-unguarded` comment explaining why not).
//   * Lock with MutexLock (RAII); internal helpers that assume the lock is
//     held are annotated REQUIRES(mu_) — the historical *Locked suffix
//     becomes machine-checked.

#ifndef DMX_UTIL_THREAD_ANNOTATIONS_H_
#define DMX_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define DMX_TSA_HAS(x) __has_attribute(x)
#else
#define DMX_TSA_HAS(x) 0
#endif

#if DMX_TSA_HAS(guarded_by)
#define DMX_TSA(x) __attribute__((x))
#else
#define DMX_TSA(x)  // no-op outside clang
#endif

/// Declares a type to be a capability (lockable).
#define CAPABILITY(name) DMX_TSA(capability(name))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY DMX_TSA(scoped_lockable)

/// Member may only be accessed while `mu` is held.
#define GUARDED_BY(mu) DMX_TSA(guarded_by(mu))

/// Pointer member: the *pointee* may only be accessed while `mu` is held.
#define PT_GUARDED_BY(mu) DMX_TSA(pt_guarded_by(mu))

/// Function must be called with the capability held (and it stays held).
#define REQUIRES(...) DMX_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) DMX_TSA(requires_shared_capability(__VA_ARGS__))

/// Historical alias used by existing thread-safety literature.
#define EXCLUSIVE_LOCKS_REQUIRED(...) REQUIRES(__VA_ARGS__)

/// Function acquires / releases the capability.
#define ACQUIRE(...) DMX_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) DMX_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DMX_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) DMX_TSA(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `result`.
#define TRY_ACQUIRE(result, ...) \
  DMX_TSA(try_acquire_capability(result, __VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define EXCLUDES(...) DMX_TSA(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability.
#define ASSERT_CAPABILITY(x) DMX_TSA(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) DMX_TSA(lock_returned(x))

/// Escape hatch: disable analysis for one function (e.g. lock juggling the
/// analysis cannot follow). Always pair with a comment saying why.
#define NO_THREAD_SAFETY_ANALYSIS DMX_TSA(no_thread_safety_analysis)

namespace dmx {

/// Annotated exclusive mutex. A thin std::mutex wrapper whose lock/unlock
/// operations are visible to the analysis.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// For code paths the analysis cannot follow: tells it (without runtime
  /// cost) that this thread holds the mutex.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a Mutex; the analysis treats the enclosing scope as
/// holding the mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to one Mutex for its lifetime (the
/// std::condition_variable requirement that all waiters use the same mutex
/// becomes structural). Wait members are annotated REQUIRES(mu) so the
/// analysis checks the caller holds the mutex — and models the fact that
/// the mutex is held again when the wait returns.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release the mutex and block; re-acquires before returning.
  void Wait() REQUIRES(mu_) {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }

  /// Wait with a deadline; false if `deadline` passed without a notify.
  template <class Clock, class Duration>
  bool WaitUntil(const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu_) {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    bool ok = cv_.wait_until(lock, deadline) == std::cv_status::no_timeout;
    lock.release();
    return ok;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

}  // namespace dmx

#endif  // DMX_UTIL_THREAD_ANNOTATIONS_H_
