#include "src/storage/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace dmx {

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    page_id_ = o.page_id_;
    page_ = o.page_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  if (pool_ == nullptr) return;
  MutexLock lock(&pool_->mu_);
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ == nullptr) return;
  pool_->Unpin(frame_, page_id_);
  pool_ = nullptr;
  page_ = nullptr;
}

BufferPool::BufferPool(PageFile* file, size_t capacity,
                       std::function<Status(Lsn)> wal_flush)
    : file_(file), capacity_(capacity), wal_flush_(std::move(wal_flush)) {
  frames_.resize(capacity_);
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metric_hits_ = metrics->GetCounter("bufferpool.hits");
  metric_misses_ = metrics->GetCounter("bufferpool.misses");
  metric_evictions_ = metrics->GetCounter("bufferpool.evictions");
  metric_flushes_ = metrics->GetCounter("bufferpool.writebacks");
}

BufferPool::~BufferPool() {
  (void)FlushAll();  // best-effort write-back; errors unreportable here
}

void BufferPool::Unpin(size_t frame, PageId pid) {
  MutexLock lock(&mu_);
  Frame& f = frames_[frame];
  assert(f.in_use && f.pid == pid && f.pin_count > 0);
  (void)pid;
  --f.pin_count;
  f.referenced = true;
}

Status BufferPool::FlushFrame(Frame& f) {
  if (!f.dirty) return Status::OK();
  if (wal_flush_) {
    Lsn lsn = PageLsn(f.page);
    if (lsn != kInvalidLsn) DMX_RETURN_IF_ERROR(wal_flush_(lsn));
  }
  DMX_RETURN_IF_ERROR(file_->Write(f.pid, f.page));
  f.dirty = false;
  stats_.flushes.Increment();
  metric_flushes_->Increment();
  return Status::OK();
}

Status BufferPool::GetFreeFrame(size_t* frame) {
  // First pass: any unused frame.
  for (size_t i = 0; i < capacity_; ++i) {
    if (!frames_[i].in_use) {
      *frame = i;
      return Status::OK();
    }
  }
  // Clock sweep over unpinned frames; two full rounds then give up.
  for (size_t step = 0; step < 2 * capacity_; ++step) {
    Frame& f = frames_[clock_hand_];
    size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % capacity_;
    if (f.pin_count > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    DMX_RETURN_IF_ERROR(FlushFrame(f));
    table_.erase(f.pid);
    f.in_use = false;
    stats_.evictions.Increment();
    metric_evictions_->Increment();
    *frame = idx;
    return Status::OK();
  }
  return Status::Busy("buffer pool exhausted: all frames pinned");
}

Status BufferPool::Fetch(PageId id, PageHandle* out) {
  MutexLock lock(&mu_);
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.referenced = true;
    stats_.hits.Increment();
    metric_hits_->Increment();
    *out = PageHandle(this, it->second, id, &f.page);
    return Status::OK();
  }
  stats_.misses.Increment();
  metric_misses_->Increment();
  size_t frame;
  DMX_RETURN_IF_ERROR(GetFreeFrame(&frame));
  Frame& f = frames_[frame];
  DMX_RETURN_IF_ERROR(file_->Read(id, &f.page));
  f.pid = id;
  f.pin_count = 1;
  f.dirty = false;
  f.referenced = true;
  f.in_use = true;
  table_[id] = frame;
  *out = PageHandle(this, frame, id, &f.page);
  return Status::OK();
}

Status BufferPool::New(PageId* id, PageHandle* out) {
  DMX_RETURN_IF_ERROR(file_->Allocate(id));
  MutexLock lock(&mu_);
  size_t frame;
  DMX_RETURN_IF_ERROR(GetFreeFrame(&frame));
  Frame& f = frames_[frame];
  memset(f.page.data, 0, kPageSize);
  f.pid = *id;
  f.pin_count = 1;
  f.dirty = true;
  f.referenced = true;
  f.in_use = true;
  table_[*id] = frame;
  *out = PageHandle(this, frame, *id, &f.page);
  return Status::OK();
}

Status BufferPool::FreePage(PageId id) {
  {
    MutexLock lock(&mu_);
    auto it = table_.find(id);
    if (it != table_.end()) {
      Frame& f = frames_[it->second];
      if (f.pin_count > 0) {
        return Status::Busy("freeing pinned page " + std::to_string(id));
      }
      f.in_use = false;
      f.dirty = false;
      table_.erase(it);
    }
  }
  return file_->Free(id);
}

Status BufferPool::FlushAll() {
  MutexLock lock(&mu_);
  for (Frame& f : frames_) {
    if (f.in_use) DMX_RETURN_IF_ERROR(FlushFrame(f));
  }
  return file_->Sync();
}

}  // namespace dmx
