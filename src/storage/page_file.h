// PageFile: page-granular file storage with an embedded free list.
//
// One PageFile backs all page-based structures of a database (heap segments,
// B-tree segments, catalog). Page 0 is the file header:
//   u32 magic | u32 page_count | u32 freelist_head
// Free pages form a singly linked list threaded through their first 4 bytes
// after the LSN word.

#ifndef DMX_STORAGE_PAGE_FILE_H_
#define DMX_STORAGE_PAGE_FILE_H_

#include <mutex>
#include <string>

#include "src/util/common.h"
#include "src/util/status.h"

namespace dmx {

/// An 8 KiB page image. By convention the first 8 bytes of every data page
/// hold the page LSN (see PageLsn/SetPageLsn) so the buffer pool can enforce
/// the WAL rule.
struct Page {
  char data[kPageSize];
};

/// Read the page LSN from a page image.
Lsn PageLsn(const Page& p);
/// Stamp the page LSN on a page image.
void SetPageLsn(Page* p, Lsn lsn);

/// Thread-safe page-granular file. All methods may be called concurrently.
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Open (or create) the file at `path`.
  Status Open(const std::string& path, bool create);
  Status Close();
  bool is_open() const { return fd_ >= 0; }

  /// Allocate a fresh page (zeroed). Reuses freed pages first.
  Status Allocate(PageId* id);
  /// Return a page to the free list.
  Status Free(PageId id);

  Status Read(PageId id, Page* page);
  Status Write(PageId id, const Page& page);

  /// Total pages including header and free pages.
  uint32_t page_count() const { return page_count_; }

  /// fsync the file.
  Status Sync();

 private:
  Status ReadHeader();
  Status WriteHeader();
  Status ReadRaw(PageId id, char* buf);
  Status WriteRaw(PageId id, const char* buf);

  int fd_ = -1;
  std::string path_;
  uint32_t page_count_ = 0;
  PageId freelist_head_ = kInvalidPageId;
  std::mutex mu_;  // guards allocation metadata
};

}  // namespace dmx

#endif  // DMX_STORAGE_PAGE_FILE_H_
