// PageFile: page-granular file storage with an embedded free list and
// end-to-end page checksums.
//
// One PageFile backs all page-based structures of a database (heap segments,
// B-tree segments, catalog). Page 0 is the file header:
//   u32 magic | u32 page_count | u32 freelist_head
// Free pages form a singly linked list threaded through their first 4 bytes
// after the LSN word.
//
// On disk every 8 KiB page image is followed by an 8-byte trailer holding a
// CRC32C of the image (plus 4 reserved bytes), so a torn or bit-flipped
// page is detected on read (Status::kCorruption) instead of being silently
// interpreted. All I/O goes through a pluggable Env, which is how the fault
// injection tests simulate crashes and bad disks.

#ifndef DMX_STORAGE_PAGE_FILE_H_
#define DMX_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <memory>
#include <string>

#include "src/util/common.h"
#include "src/util/env.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace dmx {

/// An 8 KiB page image. By convention the first 8 bytes of every data page
/// hold the page LSN (see PageLsn/SetPageLsn) so the buffer pool can enforce
/// the WAL rule.
struct Page {
  char data[kPageSize];
};

/// Bytes appended to each page on disk: u32 CRC32C of the page image,
/// u32 reserved (zero).
constexpr size_t kPageTrailerSize = 8;
/// On-disk footprint of one page (image + checksum trailer).
constexpr size_t kDiskPageSize = kPageSize + kPageTrailerSize;

/// Read the page LSN from a page image.
Lsn PageLsn(const Page& p);
/// Stamp the page LSN on a page image.
void SetPageLsn(Page* p, Lsn lsn);

/// Thread-safe page-granular file. All methods may be called concurrently.
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Open (or create) the file at `path` through `env` (Env::Default()
  /// when null). Creation syncs the file and its parent directory so the
  /// new file survives a crash.
  Status Open(const std::string& path, bool create, Env* env = nullptr);
  Status Close();
  bool is_open() const { return file_ != nullptr; }

  /// Allocate a fresh page (zeroed). Reuses freed pages first. The header
  /// and the new page are synced before the page is handed out, so a crash
  /// can never resurrect an allocated page as free.
  Status Allocate(PageId* id);
  /// Return a page to the free list.
  Status Free(PageId id);

  /// Read a page, verifying its checksum (kCorruption on mismatch).
  Status Read(PageId id, Page* page);
  Status Write(PageId id, const Page& page);

  /// Total pages including header and free pages.
  uint32_t page_count() const {
    return page_count_.load(std::memory_order_acquire);
  }

  /// fsync the file.
  Status Sync();

  /// Online backup copy: write every page (image + checksum trailer) to
  /// `dest_path` through the same Env and sync it. Holds the allocation
  /// mutex for the duration, so the page *structure* (page count, free
  /// list, header) is a consistent snapshot while record-level writers
  /// keep running — their in-flight pwrites can tear a concurrent read,
  /// which the per-page checksum catches and a bounded re-read resolves;
  /// a persistent mismatch is reported as the corruption it is. Page
  /// contents remain fuzzy (some older, some newer); WAL replay from the
  /// backup's begin LSN reconciles them. Returns the copied page count
  /// and a CRC32C over the copied bytes for the backup manifest.
  Status SnapshotTo(const std::string& dest_path, uint32_t* out_pages,
                    uint32_t* out_crc);

 private:
  Status ReadHeader() REQUIRES(mu_);
  Status WriteHeader() REQUIRES(mu_);
  Status ReadRaw(PageId id, char* buf);
  Status WriteRaw(PageId id, const char* buf);

  // env_/file_/path_ are set at Open and cleared at Close — both quiesced
  // (no concurrent page I/O) — and are otherwise read-only; the pread/
  // pwrite-style RandomAccessFile calls are themselves thread-safe.
  Env* env_ = nullptr;
  std::unique_ptr<RandomAccessFile> file_;
  std::string path_;
  // Written only under mu_ (allocation), read lock-free by page_count()
  // and the Read/Write bounds checks.
  std::atomic<uint32_t> page_count_{0};
  PageId freelist_head_ GUARDED_BY(mu_) = kInvalidPageId;
  mutable Mutex mu_;  // guards allocation metadata
};

}  // namespace dmx

#endif  // DMX_STORAGE_PAGE_FILE_H_
