// SlottedPage: classic slot-array record page used by the heap storage
// method and the catalog.
//
// Layout within an 8 KiB page:
//   [0..8)    page LSN (see PageLsn)
//   [8..10)   slot count (u16)
//   [10..12)  data start pointer (u16, grows down from kPageSize)
//   [12..16)  next page id (u32, heap chain)
//   [16..)    slot array, 4 bytes per slot: u16 offset | u16 length
//   ...free...
//   [data start..kPageSize) record payloads
//
// A slot with offset 0 is a tombstone; slot numbers are stable so a RID
// (page, slot) remains a valid record key for the life of the record.

#ifndef DMX_STORAGE_SLOTTED_PAGE_H_
#define DMX_STORAGE_SLOTTED_PAGE_H_

#include "src/storage/page_file.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dmx {

/// Thin operator view over a Page image; does not own the page.
class SlottedPage {
 public:
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Format an empty slotted page.
  void Init();

  uint16_t num_slots() const;
  PageId next_page() const;
  void set_next_page(PageId id);

  /// Bytes available for one more insert (accounts for the slot entry).
  size_t FreeSpaceForInsert() const;

  /// Insert `data`, returning the slot number. Fails with Busy if the page
  /// cannot hold the payload even after compaction. `reserve` bytes are
  /// kept free beyond the payload (callers reserve slack for future
  /// in-place growth and undo restores).
  Status Insert(const Slice& data, uint16_t* slot, size_t reserve = 0);

  /// Place `data` at a specific slot (recovery: undo of a delete must
  /// revive the exact RID). The slot must be a tombstone or lie at/past
  /// the end of the slot array (intermediate slots become tombstones).
  Status InsertAt(uint16_t slot, const Slice& data);

  /// Tombstone the slot. The slot number is not reused until the page is
  /// reformatted, keeping RIDs stable.
  Status Delete(uint16_t slot);

  /// Replace the payload of `slot`. Tries in place, then compaction;
  /// fails with Busy if the new payload cannot fit on this page.
  Status Update(uint16_t slot, const Slice& data);

  /// Read the payload of `slot`. The returned slice aliases the page image
  /// (zero-copy); it is valid while the page stays pinned. Returns NotFound
  /// for tombstones.
  Status Get(uint16_t slot, Slice* out) const;

  /// True if the slot exists and is live.
  bool IsLive(uint16_t slot) const;

 private:
  static constexpr size_t kSlotCountOff = 8;
  static constexpr size_t kDataStartOff = 10;
  static constexpr size_t kNextPageOff = 12;
  static constexpr size_t kSlotArrayOff = 16;

  uint16_t slot_offset(uint16_t slot) const;
  uint16_t slot_length(uint16_t slot) const;
  void set_slot(uint16_t slot, uint16_t offset, uint16_t length);
  uint16_t data_start() const;
  void set_data_start(uint16_t v);
  void set_num_slots(uint16_t v);

  /// Rewrite the data area to squeeze out holes.
  void Compact();

  Page* page_;
};

}  // namespace dmx

#endif  // DMX_STORAGE_SLOTTED_PAGE_H_
