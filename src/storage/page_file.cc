#include "src/storage/page_file.h"

#include <cstdio>
#include <cstring>
#include <thread>

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace dmx {

namespace {
constexpr uint32_t kMagic = 0x444D5831;  // "DMX1"
}  // namespace

Lsn PageLsn(const Page& p) { return DecodeFixed64(p.data); }

void SetPageLsn(Page* p, Lsn lsn) {
  char buf[8];
  memcpy(buf, &lsn, 8);
  memcpy(p->data, buf, 8);
}

PageFile::~PageFile() {
  (void)Close();  // best-effort header write; errors unreportable here
}

// Cold open: the header must be durable before the file is shared, and
// mu_ is private until Open returns.
// deeplint: allow(blocking-under-lock, cold open precedes sharing)
Status PageFile::Open(const std::string& path, bool create, Env* env) {
  MutexLock lock(&mu_);
  env_ = env != nullptr ? env : Env::Default();
  const bool existed = env_->FileExists(path).ok();
  DMX_RETURN_IF_ERROR(env_->NewRandomAccessFile(path, create, &file_));
  path_ = path;
  uint64_t size = 0;
  Status s = file_->Size(&size);
  if (s.ok() && size == 0) {
    // Fresh file: write the header page, then make it durable — the file
    // itself and, if we just created it, its directory entry.
    page_count_ = 1;
    freelist_head_ = kInvalidPageId;
    s = WriteHeader();
    if (s.ok()) s = file_->Sync(/*data_only=*/false);
    if (s.ok() && !existed) s = env_->SyncDir(DirnameOf(path));
  } else if (s.ok()) {
    s = ReadHeader();
  }
  if (!s.ok()) {
    (void)file_->Close();  // the open failure takes precedence
    file_.reset();
  }
  return s;
}

// Teardown: the final header write must not interleave with a late
// Allocate/Free.
// deeplint: allow(blocking-under-lock, teardown serializes final header)
Status PageFile::Close() {
  MutexLock lock(&mu_);
  if (!file_) return Status::OK();
  Status s = WriteHeader();
  Status c = file_->Close();
  file_.reset();
  return s.ok() ? c : s;
}

Status PageFile::ReadRaw(PageId id, char* buf) {
  char frame[kDiskPageSize];
  size_t n = 0;
  DMX_RETURN_IF_ERROR(file_->Read(
      static_cast<uint64_t>(id) * kDiskPageSize, kDiskPageSize, frame, &n));
  if (n != kDiskPageSize) {
    return Status::Corruption("short read of page " + std::to_string(id) +
                              " in '" + path_ + "'");
  }
  const uint32_t expected = DecodeFixed32(frame + kPageSize);
  const uint32_t actual = Crc32c(frame, kPageSize);
  if (expected != actual) {
    char crcs[48];
    snprintf(crcs, sizeof(crcs), " (stored 0x%08x, computed 0x%08x)",
             expected, actual);
    return Status::Corruption("page " + std::to_string(id) +
                              " checksum mismatch in '" + path_ + "'" + crcs);
  }
  memcpy(buf, frame, kPageSize);
  return Status::OK();
}

Status PageFile::WriteRaw(PageId id, const char* buf) {
  char frame[kDiskPageSize];
  memcpy(frame, buf, kPageSize);
  const uint32_t crc = Crc32c(buf, kPageSize);
  memcpy(frame + kPageSize, &crc, 4);
  memset(frame + kPageSize + 4, 0, 4);
  return file_->Write(static_cast<uint64_t>(id) * kDiskPageSize, frame,
                      kDiskPageSize);
}

Status PageFile::ReadHeader() {
  char buf[kPageSize];
  DMX_RETURN_IF_ERROR(ReadRaw(0, buf));
  if (DecodeFixed32(buf) != kMagic) {
    return Status::Corruption("bad magic in '" + path_ + "'");
  }
  page_count_ = DecodeFixed32(buf + 4);
  freelist_head_ = DecodeFixed32(buf + 8);
  return Status::OK();
}

Status PageFile::WriteHeader() {
  char buf[kPageSize];
  memset(buf, 0, kPageSize);
  std::string hdr;
  PutFixed32(&hdr, kMagic);
  PutFixed32(&hdr, page_count_);
  PutFixed32(&hdr, freelist_head_);
  memcpy(buf, hdr.data(), hdr.size());
  return WriteRaw(0, buf);
}

// The freelist unlink/growth must be durable atomically with the
// allocation metadata that publishes it.
// deeplint: allow(blocking-under-lock, freelist sync atomic with alloc)
Status PageFile::Allocate(PageId* id) {
  MutexLock lock(&mu_);
  if (freelist_head_ != kInvalidPageId) {
    PageId reused = freelist_head_;
    char buf[kPageSize];
    DMX_RETURN_IF_ERROR(ReadRaw(reused, buf));
    freelist_head_ = DecodeFixed32(buf + 8);  // next ptr after LSN word
    memset(buf, 0, kPageSize);
    DMX_RETURN_IF_ERROR(WriteRaw(reused, buf));
    DMX_RETURN_IF_ERROR(WriteHeader());
    // Make the unlink durable: after a crash the page must not come back
    // as both allocated (to our caller) and head of the free list.
    DMX_RETURN_IF_ERROR(file_->Sync(/*data_only=*/true));
    *id = reused;
    return Status::OK();
  }
  PageId fresh = page_count_++;
  char buf[kPageSize];
  memset(buf, 0, kPageSize);
  DMX_RETURN_IF_ERROR(WriteRaw(fresh, buf));
  DMX_RETURN_IF_ERROR(WriteHeader());
  // Make the growth durable so the new page id is never handed out twice
  // across a crash.
  DMX_RETURN_IF_ERROR(file_->Sync(/*data_only=*/true));
  *id = fresh;
  return Status::OK();
}

Status PageFile::Free(PageId id) {
  MutexLock lock(&mu_);
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("free of invalid page " +
                                   std::to_string(id));
  }
  char buf[kPageSize];
  memset(buf, 0, kPageSize);
  std::string next;
  PutFixed32(&next, freelist_head_);
  memcpy(buf + 8, next.data(), 4);
  DMX_RETURN_IF_ERROR(WriteRaw(id, buf));
  freelist_head_ = id;
  // No sync: losing a Free across a crash merely leaks the page.
  return WriteHeader();
}

Status PageFile::Read(PageId id, Page* page) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("read of invalid page " +
                                   std::to_string(id));
  }
  return ReadRaw(id, page->data);
}

Status PageFile::Write(PageId id, const Page& page) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("write of invalid page " +
                                   std::to_string(id));
  }
  return WriteRaw(id, page.data);
}

Status PageFile::Sync() { return file_->Sync(/*data_only=*/false); }

// mu_ freezes the allocation structure for the copy; record writes
// proceed, and reads are page-sized and bounded. The attempt loop is a
// torn-read CRC retry under concurrent writers, not an I/O-status retry:
// real I/O failures break it unretried.
// deeplint: allow(blocking-under-lock, mu_ freezes allocation for copy)
// deeplint: allow(status-discipline, torn-read CRC retry, not I/O retry)
Status PageFile::SnapshotTo(const std::string& dest_path, uint32_t* out_pages,
                            uint32_t* out_crc) {
  MutexLock lock(&mu_);  // freeze allocation structure, not record writes
  if (!file_) return Status::InvalidArgument("page file not open");
  std::unique_ptr<RandomAccessFile> dest;
  DMX_RETURN_IF_ERROR(
      env_->NewRandomAccessFile(dest_path, /*create=*/true, &dest));
  Status s = dest->Truncate(0);
  const uint32_t pages = page_count_.load(std::memory_order_relaxed);
  uint32_t crc = 0;
  char frame[kDiskPageSize];
  for (PageId id = 0; s.ok() && id < pages; ++id) {
    // Bounded checksum-retry: a concurrent record-level pwrite can tear
    // this read; re-reading lands before or after the writer. A mismatch
    // that survives every attempt is stable on-disk damage, not a race.
    constexpr int kAttempts = 64;
    for (int attempt = 0;; ++attempt) {
      size_t n = 0;
      s = file_->Read(static_cast<uint64_t>(id) * kDiskPageSize,
                      kDiskPageSize, frame, &n);
      if (s.ok() && n != kDiskPageSize) {
        s = Status::Corruption("short read of page " + std::to_string(id) +
                               " during backup of '" + path_ + "'");
      }
      if (!s.ok()) break;
      if (DecodeFixed32(frame + kPageSize) == Crc32c(frame, kPageSize)) break;
      if (attempt + 1 >= kAttempts) {
        s = Status::Corruption("page " + std::to_string(id) +
                               " checksum mismatch persisted across " +
                               std::to_string(kAttempts) +
                               " backup reads of '" + path_ + "'");
        break;
      }
      std::this_thread::yield();
    }
    if (!s.ok()) break;
    s = dest->Write(static_cast<uint64_t>(id) * kDiskPageSize, frame,
                    kDiskPageSize);
    if (s.ok()) crc = Crc32cExtend(crc, frame, kDiskPageSize);
  }
  if (s.ok()) s = dest->Sync(/*data_only=*/false);
  Status c = dest->Close();
  if (s.ok()) s = c;
  if (!s.ok()) {
    // Best-effort: the partial snapshot is garbage; s names the real error.
  (void)env_->DeleteFile(dest_path);
    return s;
  }
  *out_pages = pages;
  *out_crc = crc;
  return Status::OK();
}

}  // namespace dmx
