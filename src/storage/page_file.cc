#include "src/storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/coding.h"

namespace dmx {

namespace {
constexpr uint32_t kMagic = 0x444D5831;  // "DMX1"
}  // namespace

Lsn PageLsn(const Page& p) { return DecodeFixed64(p.data); }

void SetPageLsn(Page* p, Lsn lsn) {
  char buf[8];
  memcpy(buf, &lsn, 8);
  memcpy(p->data, buf, 8);
}

PageFile::~PageFile() {
  if (fd_ >= 0) Close();
}

Status PageFile::Open(const std::string& path, bool create) {
  int flags = O_RDWR;
  if (create) flags |= O_CREAT;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open '" + path + "': " + strerror(errno));
  }
  fd_ = fd;
  path_ = path;
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size == 0) {
    // Fresh file: write the header page.
    page_count_ = 1;
    freelist_head_ = kInvalidPageId;
    return WriteHeader();
  }
  return ReadHeader();
}

Status PageFile::Close() {
  if (fd_ < 0) return Status::OK();
  Status s = WriteHeader();
  ::close(fd_);
  fd_ = -1;
  return s;
}

Status PageFile::ReadRaw(PageId id, char* buf) {
  ssize_t n = ::pread(fd_, buf, kPageSize,
                      static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pread page " + std::to_string(id));
  }
  return Status::OK();
}

Status PageFile::WriteRaw(PageId id, const char* buf) {
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite page " + std::to_string(id));
  }
  return Status::OK();
}

Status PageFile::ReadHeader() {
  char buf[kPageSize];
  DMX_RETURN_IF_ERROR(ReadRaw(0, buf));
  if (DecodeFixed32(buf) != kMagic) {
    return Status::Corruption("bad magic in '" + path_ + "'");
  }
  page_count_ = DecodeFixed32(buf + 4);
  freelist_head_ = DecodeFixed32(buf + 8);
  return Status::OK();
}

Status PageFile::WriteHeader() {
  char buf[kPageSize];
  memset(buf, 0, kPageSize);
  std::string hdr;
  PutFixed32(&hdr, kMagic);
  PutFixed32(&hdr, page_count_);
  PutFixed32(&hdr, freelist_head_);
  memcpy(buf, hdr.data(), hdr.size());
  return WriteRaw(0, buf);
}

Status PageFile::Allocate(PageId* id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (freelist_head_ != kInvalidPageId) {
    PageId reused = freelist_head_;
    char buf[kPageSize];
    DMX_RETURN_IF_ERROR(ReadRaw(reused, buf));
    freelist_head_ = DecodeFixed32(buf + 8);  // next ptr after LSN word
    memset(buf, 0, kPageSize);
    DMX_RETURN_IF_ERROR(WriteRaw(reused, buf));
    DMX_RETURN_IF_ERROR(WriteHeader());
    *id = reused;
    return Status::OK();
  }
  PageId fresh = page_count_++;
  char buf[kPageSize];
  memset(buf, 0, kPageSize);
  DMX_RETURN_IF_ERROR(WriteRaw(fresh, buf));
  DMX_RETURN_IF_ERROR(WriteHeader());
  *id = fresh;
  return Status::OK();
}

Status PageFile::Free(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("free of invalid page " +
                                   std::to_string(id));
  }
  char buf[kPageSize];
  memset(buf, 0, kPageSize);
  std::string next;
  PutFixed32(&next, freelist_head_);
  memcpy(buf + 8, next.data(), 4);
  DMX_RETURN_IF_ERROR(WriteRaw(id, buf));
  freelist_head_ = id;
  return WriteHeader();
}

Status PageFile::Read(PageId id, Page* page) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("read of invalid page " +
                                   std::to_string(id));
  }
  return ReadRaw(id, page->data);
}

Status PageFile::Write(PageId id, const Page& page) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("write of invalid page " +
                                   std::to_string(id));
  }
  return WriteRaw(id, page.data);
}

Status PageFile::Sync() {
  if (::fsync(fd_) != 0) return Status::IOError("fsync");
  return Status::OK();
}

}  // namespace dmx
