// BufferPool: fixed set of in-memory frames over a PageFile with clock
// eviction, pin counts, and WAL-before-write enforcement.
//
// Extensions (heap and B-tree structures) access pages only through pinned
// PageHandles; RecordViews handed to the common predicate evaluator alias
// the pinned frame, which is how filtering happens "while the field values
// ... are still in the buffer pool" (paper, Common Services).

#ifndef DMX_STORAGE_BUFFER_POOL_H_
#define DMX_STORAGE_BUFFER_POOL_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "src/storage/page_file.h"
#include "src/util/common.h"
#include "src/util/metrics.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace dmx {

class BufferPool;

/// RAII pin on a buffer frame. Move-only; unpins on destruction.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle() { Release(); }

  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }
  Page* page() { return page_; }
  const Page* page() const { return page_; }

  /// Mark the frame dirty (call after mutating the page image).
  void MarkDirty();

  /// Unpin early (before destruction).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId pid, Page* page)
      : pool_(pool), frame_(frame), page_id_(pid), page_(page) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
  Page* page_ = nullptr;
};

/// Statistics counters (for tests and benchmarks). Atomic so concurrent
/// scans can read them while other threads fault pages in.
struct BufferPoolStats {
  Counter hits;
  Counter misses;
  Counter evictions;
  Counter flushes;  // dirty write-backs

  void Reset() {
    hits.Reset();
    misses.Reset();
    evictions.Reset();
    flushes.Reset();
  }
};

/// Buffer manager over one PageFile. Thread-safe (single internal mutex;
/// page content latching is the caller's concern — the lock manager
/// serializes record-level access above this layer).
class BufferPool {
 public:
  /// `wal_flush` is invoked with a page's LSN before that page is written
  /// back, enforcing write-ahead logging; pass nullptr for WAL-less use.
  BufferPool(PageFile* file, size_t capacity,
             std::function<Status(Lsn)> wal_flush = nullptr);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pin an existing page.
  Status Fetch(PageId id, PageHandle* out);
  /// Allocate and pin a fresh zeroed page.
  Status New(PageId* id, PageHandle* out);
  /// Drop a page: must not be pinned; discards the frame and frees the page.
  Status FreePage(PageId id);

  /// Write back all dirty frames (does not evict).
  Status FlushAll();

  size_t capacity() const { return capacity_; }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  friend class PageHandle;

  struct Frame {
    Page page;
    PageId pid = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool referenced = false;
    bool in_use = false;
  };

  void Unpin(size_t frame, PageId pid);
  // Finds a victim frame, writing it back if dirty.
  Status GetFreeFrame(size_t* frame) REQUIRES(mu_);
  Status FlushFrame(Frame& f) REQUIRES(mu_);

  PageFile* file_;
  size_t capacity_;
  std::function<Status(Lsn)> wal_flush_;
  std::vector<Frame> frames_ GUARDED_BY(mu_);
  std::unordered_map<PageId, size_t> table_ GUARDED_BY(mu_);
  size_t clock_hand_ GUARDED_BY(mu_) = 0;
  BufferPoolStats stats_;  // atomic counters, written under mu_
  // Process-wide mirrors of stats_ ("bufferpool.*" in the registry).
  Counter* metric_hits_;
  Counter* metric_misses_;
  Counter* metric_evictions_;
  Counter* metric_flushes_;
  Mutex mu_;
};

}  // namespace dmx

#endif  // DMX_STORAGE_BUFFER_POOL_H_
