#include "src/storage/slotted_page.h"

#include <cstring>
#include <vector>

#include "src/util/coding.h"

namespace dmx {

void SlottedPage::Init() {
  memset(page_->data + 8, 0, kPageSize - 8);
  set_num_slots(0);
  set_data_start(static_cast<uint16_t>(kPageSize));
  set_next_page(kInvalidPageId);
}

uint16_t SlottedPage::num_slots() const {
  return DecodeFixed16(page_->data + kSlotCountOff);
}

void SlottedPage::set_num_slots(uint16_t v) {
  memcpy(page_->data + kSlotCountOff, &v, 2);
}

uint16_t SlottedPage::data_start() const {
  // kPageSize (8192) fits in u16, so the pointer is stored directly.
  return DecodeFixed16(page_->data + kDataStartOff);
}

void SlottedPage::set_data_start(uint16_t v) {
  memcpy(page_->data + kDataStartOff, &v, 2);
}

PageId SlottedPage::next_page() const {
  return DecodeFixed32(page_->data + kNextPageOff);
}

void SlottedPage::set_next_page(PageId id) {
  memcpy(page_->data + kNextPageOff, &id, 4);
}

uint16_t SlottedPage::slot_offset(uint16_t slot) const {
  return DecodeFixed16(page_->data + kSlotArrayOff + 4 * slot);
}

uint16_t SlottedPage::slot_length(uint16_t slot) const {
  return DecodeFixed16(page_->data + kSlotArrayOff + 4 * slot + 2);
}

void SlottedPage::set_slot(uint16_t slot, uint16_t offset, uint16_t length) {
  memcpy(page_->data + kSlotArrayOff + 4 * slot, &offset, 2);
  memcpy(page_->data + kSlotArrayOff + 4 * slot + 2, &length, 2);
}

size_t SlottedPage::FreeSpaceForInsert() const {
  const size_t slot_array_end = kSlotArrayOff + 4 * num_slots();
  const size_t ds = data_start();
  if (ds < slot_array_end + 4) return 0;
  return ds - slot_array_end - 4;  // reserve room for one new slot entry
}

Status SlottedPage::Insert(const Slice& data, uint16_t* slot,
                           size_t reserve) {
  if (data.size() > kPageSize / 2) {
    return Status::InvalidArgument("record larger than half a page");
  }
  // Find a tombstoned slot to reuse, else append a new slot entry.
  uint16_t target = num_slots();
  bool reuse = false;
  for (uint16_t i = 0; i < num_slots(); ++i) {
    if (slot_offset(i) == 0) {
      target = i;
      reuse = true;
      break;
    }
  }
  size_t need = data.size() + (reuse ? 0 : 4) + reserve;
  const size_t slot_array_end = kSlotArrayOff + 4 * num_slots();
  size_t avail =
      data_start() > slot_array_end ? data_start() - slot_array_end : 0;
  if (avail < need) {
    Compact();
    avail = data_start() > slot_array_end ? data_start() - slot_array_end : 0;
    if (avail < need) return Status::Busy("page full");
  }
  uint16_t new_start = static_cast<uint16_t>(data_start() - data.size());
  memcpy(page_->data + new_start, data.data(), data.size());
  set_data_start(new_start);
  if (!reuse) set_num_slots(static_cast<uint16_t>(num_slots() + 1));
  set_slot(target, new_start, static_cast<uint16_t>(data.size()));
  *slot = target;
  return Status::OK();
}

Status SlottedPage::InsertAt(uint16_t slot, const Slice& data) {
  if (slot < num_slots() && slot_offset(slot) != 0) {
    return Status::InvalidArgument("slot occupied");
  }
  const uint16_t new_slots = slot >= num_slots()
                                 ? static_cast<uint16_t>(slot + 1)
                                 : num_slots();
  const size_t grow = 4 * (new_slots - num_slots());
  size_t need = data.size() + grow;
  const size_t slot_array_end = kSlotArrayOff + 4 * num_slots();
  size_t avail =
      data_start() > slot_array_end ? data_start() - slot_array_end : 0;
  if (avail < need) {
    Compact();
    avail = data_start() > slot_array_end ? data_start() - slot_array_end : 0;
    if (avail < need) return Status::Busy("page full");
  }
  // Extend the slot array; new intermediate slots become tombstones.
  for (uint16_t i = num_slots(); i < new_slots; ++i) set_slot(i, 0, 0);
  set_num_slots(new_slots);
  uint16_t new_start = static_cast<uint16_t>(data_start() - data.size());
  memcpy(page_->data + new_start, data.data(), data.size());
  set_data_start(new_start);
  set_slot(slot, new_start, static_cast<uint16_t>(data.size()));
  return Status::OK();
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= num_slots() || slot_offset(slot) == 0) {
    return Status::NotFound("slot " + std::to_string(slot));
  }
  set_slot(slot, 0, 0);
  return Status::OK();
}

Status SlottedPage::Update(uint16_t slot, const Slice& data) {
  if (slot >= num_slots() || slot_offset(slot) == 0) {
    return Status::NotFound("slot " + std::to_string(slot));
  }
  uint16_t off = slot_offset(slot);
  uint16_t len = slot_length(slot);
  if (data.size() <= len) {
    // In place; shrinking leaves a hole reclaimed by later compaction.
    memcpy(page_->data + off, data.data(), data.size());
    set_slot(slot, off, static_cast<uint16_t>(data.size()));
    return Status::OK();
  }
  // Tombstone, compact, re-insert into the same slot.
  set_slot(slot, 0, 0);
  Compact();
  const size_t slot_array_end = kSlotArrayOff + 4 * num_slots();
  size_t avail =
      data_start() > slot_array_end ? data_start() - slot_array_end : 0;
  if (avail < data.size()) {
    // Restore impossible (old bytes were compacted away); caller must treat
    // Busy as "record must move" and will have logged the old image.
    return Status::Busy("updated record does not fit");
  }
  uint16_t new_start = static_cast<uint16_t>(data_start() - data.size());
  memcpy(page_->data + new_start, data.data(), data.size());
  set_data_start(new_start);
  set_slot(slot, new_start, static_cast<uint16_t>(data.size()));
  return Status::OK();
}

Status SlottedPage::Get(uint16_t slot, Slice* out) const {
  if (slot >= num_slots() || slot_offset(slot) == 0) {
    return Status::NotFound("slot " + std::to_string(slot));
  }
  *out = Slice(page_->data + slot_offset(slot), slot_length(slot));
  return Status::OK();
}

bool SlottedPage::IsLive(uint16_t slot) const {
  return slot < num_slots() && slot_offset(slot) != 0;
}

void SlottedPage::Compact() {
  struct Live {
    uint16_t slot;
    uint16_t len;
    std::string data;
  };
  std::vector<Live> live;
  for (uint16_t i = 0; i < num_slots(); ++i) {
    if (slot_offset(i) != 0) {
      live.push_back({i, slot_length(i),
                      std::string(page_->data + slot_offset(i),
                                  slot_length(i))});
    }
  }
  uint16_t ds = static_cast<uint16_t>(kPageSize);
  for (const Live& l : live) {
    ds = static_cast<uint16_t>(ds - l.len);
    memcpy(page_->data + ds, l.data.data(), l.len);
    set_slot(l.slot, ds, l.len);
  }
  set_data_start(ds);
}

}  // namespace dmx
