// Value: the common field value representation shared by all extensions.
//
// The paper requires "common record and field value representations needed
// to allow communication with the generic operations comprising the storage
// method and attachment extensions". Value is that representation in its
// decoded form; Record (record.h) is the packed on-page form.

#ifndef DMX_TYPES_VALUE_H_
#define DMX_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace dmx {

/// Field data types understood by the common services.
enum class TypeId : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

/// Name of a type for error messages and catalog display.
const char* TypeName(TypeId t);

/// A decoded field value. Small, copyable; strings own their bytes.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : type_(TypeId::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = TypeId::kBool;
    v.rep_ = b;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = TypeId::kInt64;
    v.rep_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = TypeId::kDouble;
    v.rep_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = TypeId::kString;
    v.rep_ = std::move(s);
    return v;
  }
  static Value String(const Slice& s) { return String(s.ToString()); }
  static Value String(const char* s) { return String(std::string(s)); }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }

  /// Numeric view: int64 and double both usable as double in comparisons
  /// and arithmetic.
  double AsDouble() const {
    if (type_ == TypeId::kInt64) return static_cast<double>(int_value());
    return double_value();
  }

  bool is_numeric() const {
    return type_ == TypeId::kInt64 || type_ == TypeId::kDouble;
  }

  /// Three-way comparison. NULL compares less than any non-NULL; numeric
  /// types compare cross-type by value. Comparing string with numeric is
  /// an error surfaced as InvalidArgument by callers that validate types;
  /// here it falls back to type-id order for total-order container use.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Display form for examples and error messages.
  std::string ToString() const;

 private:
  TypeId type_;
  std::variant<bool, int64_t, double, std::string> rep_;
};

}  // namespace dmx

#endif  // DMX_TYPES_VALUE_H_
