#include "src/types/value.h"

#include <cstdio>

namespace dmx {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return "BOOL";
    case TypeId::kInt64: return "INT";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kString: return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  // NULL sorts first.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Numeric cross-type comparison by value.
  if (is_numeric() && other.is_numeric()) {
    if (type_ == TypeId::kInt64 && other.type_ == TypeId::kInt64) {
      int64_t a = int_value(), b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case TypeId::kBool: {
      bool a = bool_value(), b = other.bool_value();
      return a == b ? 0 : (a ? 1 : -1);
    }
    case TypeId::kString:
      return string_value().compare(other.string_value()) < 0
                 ? -1
                 : (string_value() == other.string_value() ? 0 : 1);
    default:
      return 0;
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return bool_value() ? "true" : "false";
    case TypeId::kInt64: return std::to_string(int_value());
    case TypeId::kDouble: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%g", double_value());
      return buf;
    }
    case TypeId::kString: return "'" + string_value() + "'";
  }
  return "?";
}

}  // namespace dmx
