#include "src/types/record.h"

#include <cassert>

#include "src/util/coding.h"

namespace dmx {

namespace {
size_t BitmapBytes(size_t ncols) { return (ncols + 7) / 8; }
size_t HeaderBytes(size_t ncols) {
  return 2 + 4 * (ncols + 1) + BitmapBytes(ncols);
}
}  // namespace

uint16_t RecordView::num_fields() const {
  if (data_.size() < 2) return 0;
  return DecodeFixed16(data_.data());
}

const char* RecordView::data_area() const {
  return data_.data() + HeaderBytes(num_fields());
}

void RecordView::FieldRange(size_t i, uint32_t* begin, uint32_t* end) const {
  const char* offsets = data_.data() + 2;
  *begin = DecodeFixed32(offsets + 4 * i);
  *end = DecodeFixed32(offsets + 4 * (i + 1));
}

bool RecordView::IsNull(size_t i) const {
  const size_t ncols = num_fields();
  assert(i < ncols);
  const char* bitmap = data_.data() + 2 + 4 * (ncols + 1);
  return (static_cast<unsigned char>(bitmap[i / 8]) >> (i % 8)) & 1;
}

int64_t RecordView::GetInt(size_t i) const {
  uint32_t b, e;
  FieldRange(i, &b, &e);
  assert(e - b == 8);
  return static_cast<int64_t>(DecodeFixed64(data_area() + b));
}

double RecordView::GetDouble(size_t i) const {
  uint32_t b, e;
  FieldRange(i, &b, &e);
  assert(e - b == 8);
  return DecodeDouble(data_area() + b);
}

bool RecordView::GetBool(size_t i) const {
  uint32_t b, e;
  FieldRange(i, &b, &e);
  assert(e - b == 1);
  return data_area()[b] != 0;
}

Slice RecordView::GetStringSlice(size_t i) const {
  uint32_t b, e;
  FieldRange(i, &b, &e);
  return Slice(data_area() + b, e - b);
}

Value RecordView::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (schema_->column(i).type) {
    case TypeId::kBool: return Value::Bool(GetBool(i));
    case TypeId::kInt64: return Value::Int(GetInt(i));
    case TypeId::kDouble: return Value::Double(GetDouble(i));
    case TypeId::kString: return Value::String(GetStringSlice(i));
    case TypeId::kNull: return Value::Null();
  }
  return Value::Null();
}

std::vector<Value> RecordView::GetValues() const {
  std::vector<Value> out;
  const size_t n = schema_ ? schema_->num_columns() : num_fields();
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(GetValue(i));
  return out;
}

Status RecordView::Validate() const {
  if (data_.size() < 2) return Status::Corruption("record too short");
  const size_t ncols = num_fields();
  if (schema_ && ncols != schema_->num_columns()) {
    return Status::Corruption("record column count mismatch");
  }
  const size_t header = HeaderBytes(ncols);
  if (data_.size() < header) return Status::Corruption("record header");
  uint32_t prev = 0;
  const char* offsets = data_.data() + 2;
  for (size_t i = 0; i <= ncols; ++i) {
    uint32_t off = DecodeFixed32(offsets + 4 * i);
    if (i == 0 && off != 0) return Status::Corruption("first offset");
    if (off < prev) return Status::Corruption("offsets not monotone");
    prev = off;
  }
  if (header + prev != data_.size()) {
    return Status::Corruption("record size mismatch");
  }
  return Status::OK();
}

Status Record::Encode(const Schema& schema, const std::vector<Value>& values,
                      Record* out) {
  DMX_RETURN_IF_ERROR(schema.ValidateRow(values));
  const size_t ncols = values.size();
  std::string data;
  std::vector<uint32_t> offsets(ncols + 1, 0);
  std::string bitmap(BitmapBytes(ncols), 0);
  for (size_t i = 0; i < ncols; ++i) {
    offsets[i] = static_cast<uint32_t>(data.size());
    const Value& v = values[i];
    if (v.is_null()) {
      bitmap[i / 8] |= static_cast<char>(1 << (i % 8));
      continue;
    }
    switch (schema.column(i).type) {
      case TypeId::kBool:
        data.push_back(v.bool_value() ? 1 : 0);
        break;
      case TypeId::kInt64:
        PutFixed64(&data, static_cast<uint64_t>(v.int_value()));
        break;
      case TypeId::kDouble:
        PutDouble(&data, v.AsDouble());  // widens int literals
        break;
      case TypeId::kString:
        data.append(v.string_value());
        break;
      case TypeId::kNull:
        break;
    }
  }
  offsets[ncols] = static_cast<uint32_t>(data.size());

  std::string buf;
  buf.reserve(HeaderBytes(ncols) + data.size());
  PutFixed16(&buf, static_cast<uint16_t>(ncols));
  for (uint32_t off : offsets) PutFixed32(&buf, off);
  buf.append(bitmap);
  buf.append(data);
  *out = Record(std::move(buf));
  return Status::OK();
}

}  // namespace dmx
