// Record: the packed row representation, and RecordView, a zero-copy reader.
//
// Layout (all little-endian):
//   u16                 column count
//   u32[ncols + 1]      field offsets relative to the start of the data
//                       area; offsets[ncols] is the data-area length
//   u8[ceil(ncols/8)]   null bitmap (bit set = NULL)
//   bytes               data area (fields packed back to back)
//
// Field encodings: BOOL = 1 byte; INT = 8-byte LE; DOUBLE = 8-byte IEEE LE;
// STRING = raw bytes. A NULL field occupies zero data bytes.
//
// RecordView reads fields directly out of any byte buffer (typically a
// buffer-pool page), which is what lets the common predicate evaluator run
// "while the field values from the relation storage or access path are
// still in the buffer pool" (paper, Common Services).

#ifndef DMX_TYPES_RECORD_H_
#define DMX_TYPES_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/types/schema.h"
#include "src/types/value.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dmx {

/// Zero-copy reader over a packed record image. Does not own the bytes;
/// the underlying buffer (e.g. a pinned page) must outlive the view.
class RecordView {
 public:
  RecordView() = default;
  RecordView(Slice data, const Schema* schema)
      : data_(data), schema_(schema) {}

  bool valid() const { return schema_ != nullptr && !data_.empty(); }
  const Schema* schema() const { return schema_; }
  Slice raw() const { return data_; }

  uint16_t num_fields() const;

  bool IsNull(size_t i) const;
  int64_t GetInt(size_t i) const;
  double GetDouble(size_t i) const;
  bool GetBool(size_t i) const;
  /// Returns a slice aliasing the record buffer (no copy).
  Slice GetStringSlice(size_t i) const;

  /// Decode field `i` into an owning Value (copies string bytes).
  Value GetValue(size_t i) const;

  /// Decode every field.
  std::vector<Value> GetValues() const;

  /// Structural sanity check: offsets in range and monotone, bitmap fits.
  Status Validate() const;

 private:
  // Byte range of field i within the data area.
  void FieldRange(size_t i, uint32_t* begin, uint32_t* end) const;
  const char* data_area() const;

  Slice data_;
  const Schema* schema_ = nullptr;
};

/// An owning packed record. Encode from values once, then pass around as
/// bytes; wrap in RecordView (with the relation schema) to read fields.
class Record {
 public:
  Record() = default;
  explicit Record(std::string buf) : buf_(std::move(buf)) {}

  /// Pack `values` (one per schema column, in order) into a Record.
  /// Performs numeric widening for int-where-double-expected.
  static Status Encode(const Schema& schema, const std::vector<Value>& values,
                       Record* out);

  const std::string& buffer() const { return buf_; }
  Slice slice() const { return Slice(buf_); }
  bool empty() const { return buf_.empty(); }

  RecordView View(const Schema* schema) const {
    return RecordView(slice(), schema);
  }

 private:
  std::string buf_;
};

}  // namespace dmx

#endif  // DMX_TYPES_RECORD_H_
