#include "src/types/schema.h"

#include "src/util/coding.h"

namespace dmx {

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::ValidateRow(const std::vector<Value>& values) const {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const Column& col = columns_[i];
    const Value& v = values[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return Status::Constraint("column '" + col.name + "' is NOT NULL");
      }
      continue;
    }
    if (v.type() == col.type) continue;
    // Allow int literal where double expected.
    if (col.type == TypeId::kDouble && v.type() == TypeId::kInt64) continue;
    return Status::InvalidArgument("column '" + col.name + "' expects " +
                                   TypeName(col.type) + ", got " +
                                   TypeName(v.type()));
  }
  return Status::OK();
}

void Schema::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(columns_.size()));
  for (const Column& c : columns_) {
    PutLengthPrefixedSlice(dst, c.name);
    dst->push_back(static_cast<char>(c.type));
    dst->push_back(c.nullable ? 1 : 0);
  }
}

Status Schema::DecodeFrom(Slice* input, Schema* out) {
  uint32_t n = 0;
  if (!GetVarint32(input, &n)) return Status::Corruption("schema count");
  // Each column needs at least 3 bytes (name length + type + nullable), so
  // a count exceeding the remaining bytes is corrupt — never trust a wire
  // count enough to reserve unbounded memory.
  if (n > input->size()) return Status::Corruption("schema count absurd");
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice name;
    if (!GetLengthPrefixedSlice(input, &name) || input->size() < 2) {
      return Status::Corruption("schema column");
    }
    Column c;
    c.name = name.ToString();
    c.type = static_cast<TypeId>((*input)[0]);
    c.nullable = (*input)[1] != 0;
    input->remove_prefix(2);
    cols.push_back(std::move(c));
  }
  *out = Schema(std::move(cols));
  return Status::OK();
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type ||
        columns_[i].nullable != other.columns_[i].nullable) {
      return false;
    }
  }
  return true;
}

}  // namespace dmx
