// Schema: ordered, typed column list of a relation.

#ifndef DMX_TYPES_SCHEMA_H_
#define DMX_TYPES_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/types/value.h"
#include "src/util/status.h"

namespace dmx {

/// A single column definition.
struct Column {
  std::string name;
  TypeId type = TypeId::kNull;
  bool nullable = true;
};

/// Ordered column list of a relation. Immutable once attached to a relation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 if absent.
  int FindColumn(const std::string& name) const;

  /// Checks that `values` (one per column, in order) match the column types;
  /// NULLs allowed only for nullable columns. Numeric widening (int given
  /// where double expected) is accepted and normalized by Record encoding.
  Status ValidateRow(const std::vector<Value>& values) const;

  /// Serialize for the catalog.
  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, Schema* out);

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace dmx

#endif  // DMX_TYPES_SCHEMA_H_
