#include "src/query/executor.h"

#include "src/sm/key_codec.h"
#include "src/util/thread_pool.h"

namespace dmx {

AccessSource::AccessSource(Database* db, Transaction* txn,
                           const BoundPlan* plan)
    : db_(db), txn_(txn), plan_(plan) {}

Status AccessSource::Open() {
  opened_ = true;
  const AccessPlan& access = plan_->access;
  if (access.probe_key.has_value()) {
    probe_results_.clear();
    probe_pos_ = 0;
    DMX_RETURN_IF_ERROR(db_->Lookup(txn_, plan_->relation.name, access.path,
                                    Slice(*access.probe_key),
                                    &probe_results_));
    return Status::OK();
  }
  return db_->OpenScanOn(txn_, &plan_->relation, access.path, access.spec,
                         &scan_);
}

Status AccessSource::Next(Row* row) {
  if (!opened_) DMX_RETURN_IF_ERROR(Open());
  const AccessPlan& access = plan_->access;
  const Schema* schema = &plan_->relation.schema;
  while (true) {
    std::string record_key;
    std::string access_key;
    RecordView direct_view;
    if (access.probe_key.has_value()) {
      if (probe_pos_ >= probe_results_.size()) {
        return Status::NotFound("end of probe");
      }
      record_key = probe_results_[probe_pos_++];
    } else {
      ScanItem item;
      Status s = scan_->Next(&item);
      if (s.IsNotFound()) return Status::NotFound("end of scan");
      DMX_RETURN_IF_ERROR(s);
      record_key = std::move(item.record_key);
      access_key = std::move(item.access_key);
      direct_view = item.view;
    }

    if (direct_view.valid() && !access.needs_fetch) {
      // Storage-method scan: the filter already ran in the buffer pool.
      // Materialize only the fields the query reads ("returns selected
      // data fields"); unread fields stay NULL.
      if (access.needed_fields.empty()) {
        row->values = direct_view.GetValues();
      } else {
        row->values.assign(schema->num_columns(), Value());
        for (int f : access.needed_fields) {
          row->values[static_cast<size_t>(f)] =
              direct_view.GetValue(static_cast<size_t>(f));
        }
      }
      row->record_key = std::move(record_key);
      return Status::OK();
    }

    if (access.index_only) {
      // Decode the needed fields straight from the access-path key — the
      // storage method is never touched.
      std::vector<TypeId> types;
      types.reserve(access.key_fields.size());
      for (int f : access.key_fields) {
        types.push_back(
            schema->column(static_cast<size_t>(f)).type);
      }
      std::vector<Value> decoded;
      DMX_RETURN_IF_ERROR(
          DecodeFieldKey(Slice(access_key), types, &decoded));
      std::vector<Value> values(schema->num_columns());
      for (size_t i = 0; i < access.key_fields.size(); ++i) {
        values[static_cast<size_t>(access.key_fields[i])] =
            std::move(decoded[i]);
      }
      if (access.residual != nullptr) {
        bool passes = false;
        DMX_RETURN_IF_ERROR(db_->evaluator()->EvalPredicate(
            *access.residual, values, &passes));
        if (!passes) continue;
      }
      row->values = std::move(values);
      row->record_key = std::move(record_key);
      return Status::OK();
    }

    // Access-path protocol: fetch the record via the storage method, then
    // re-check the residual predicate.
    std::string record;
    Status fs = db_->FetchRecord(txn_, &plan_->relation, Slice(record_key),
                                 &record);
    if (fs.IsNotFound()) continue;  // key raced a delete; skip
    DMX_RETURN_IF_ERROR(fs);
    RecordView view{Slice(record), schema};
    if (access.residual != nullptr) {
      bool passes = false;
      DMX_RETURN_IF_ERROR(
          db_->evaluator()->EvalPredicate(*access.residual, view, &passes));
      if (!passes) continue;
    }
    row->values = view.GetValues();
    row->record_key = std::move(record_key);
    return Status::OK();
  }
}

Status FilterSource::Next(Row* row) {
  while (true) {
    Status s = child_->Next(row);
    if (!s.ok()) return s;
    if (predicate_ == nullptr) return Status::OK();
    bool passes = false;
    DMX_RETURN_IF_ERROR(
        db_->evaluator()->EvalPredicate(*predicate_, row->values, &passes));
    if (passes) return Status::OK();
  }
}

Status ProjectSource::Next(Row* row) {
  Row child_row;
  Status s = child_->Next(&child_row);
  if (!s.ok()) return s;
  row->values.clear();
  row->values.reserve(columns_.size());
  for (int c : columns_) {
    row->values.push_back(child_row.values[static_cast<size_t>(c)]);
  }
  row->record_key = std::move(child_row.record_key);
  return Status::OK();
}

Status NestedLoopJoinSource::Next(Row* row) {
  while (true) {
    if (!outer_valid_) {
      Status s = outer_->Next(&outer_row_);
      if (!s.ok()) return s;  // NotFound ends the join
      outer_valid_ = true;
      DMX_RETURN_IF_ERROR(inner_factory_(&inner_));
    }
    Row inner_row;
    Status s = inner_->Next(&inner_row);
    if (s.IsNotFound()) {
      outer_valid_ = false;  // next outer row
      continue;
    }
    DMX_RETURN_IF_ERROR(s);
    row->values = outer_row_.values;
    row->values.insert(row->values.end(), inner_row.values.begin(),
                       inner_row.values.end());
    row->record_key.clear();
    if (predicate_ != nullptr) {
      bool passes = false;
      DMX_RETURN_IF_ERROR(
          db_->evaluator()->EvalPredicate(*predicate_, row->values, &passes));
      if (!passes) continue;
    }
    return Status::OK();
  }
}

Status IndexJoinSource::Next(Row* row) {
  while (true) {
    if (!outer_valid_) {
      Status s = outer_->Next(&outer_row_);
      if (!s.ok()) return s;
      outer_valid_ = true;
      // Compose the probe key from the outer row's join columns.
      std::vector<Value> key_values;
      for (int c : outer_key_columns_) {
        key_values.push_back(outer_row_.values[static_cast<size_t>(c)]);
      }
      std::string key;
      DMX_RETURN_IF_ERROR(EncodeValueKey(key_values, &key));
      matches_.clear();
      match_pos_ = 0;
      DMX_RETURN_IF_ERROR(db_->Lookup(txn_, inner_->name, inner_path_,
                                      Slice(key), &matches_));
    }
    if (match_pos_ >= matches_.size()) {
      outer_valid_ = false;
      continue;
    }
    const std::string& record_key = matches_[match_pos_++];
    std::string record;
    Status fs = db_->FetchRecord(txn_, inner_, Slice(record_key), &record);
    if (fs.IsNotFound()) continue;
    DMX_RETURN_IF_ERROR(fs);
    RecordView view{Slice(record), &inner_->schema};
    row->values = outer_row_.values;
    std::vector<Value> inner_values = view.GetValues();
    row->values.insert(row->values.end(), inner_values.begin(),
                       inner_values.end());
    row->record_key.clear();
    return Status::OK();
  }
}

Status AggregateSource::Next(Row* row) {
  if (done_) return Status::NotFound("aggregate consumed");
  done_ = true;
  uint64_t count = 0;
  double sum = 0;
  Value min_v, max_v;
  Row child_row;
  while (true) {
    Status s = child_->Next(&child_row);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    ++count;
    if (kind_ == AggKind::kCount) continue;
    const Value& v = child_row.values[static_cast<size_t>(column_)];
    if (v.is_null()) continue;
    sum += v.AsDouble();
    if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
    if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
  }
  row->record_key.clear();
  row->values.clear();
  switch (kind_) {
    case AggKind::kCount:
      row->values.push_back(Value::Int(static_cast<int64_t>(count)));
      break;
    case AggKind::kSum:
      row->values.push_back(Value::Double(sum));
      break;
    case AggKind::kAvg:
      row->values.push_back(
          count == 0 ? Value::Null()
                     : Value::Double(sum / static_cast<double>(count)));
      break;
    case AggKind::kMin:
      row->values.push_back(min_v);
      break;
    case AggKind::kMax:
      row->values.push_back(max_v);
      break;
  }
  return Status::OK();
}

// -- parallel scan ------------------------------------------------------------

namespace {

// Tuning: morsels big enough to amortise a queue handoff, queue bounded so
// fast workers cannot run arbitrarily ahead of a slow consumer.
constexpr size_t kMorselRows = 256;
constexpr size_t kMaxQueuedMorsels = 16;

Counter* ParallelScansCounter() {
  static Counter* c = MetricsRegistry::Global()->GetCounter("parallel.scans");
  return c;
}

Counter* ParallelMorselsCounter() {
  static Counter* c =
      MetricsRegistry::Global()->GetCounter("parallel.morsels");
  return c;
}

Histogram* QueueWaitHistogram() {
  static Histogram* h =
      MetricsRegistry::Global()->GetHistogram("parallel.queue_wait_ns");
  return h;
}

}  // namespace

ParallelScanSource::ParallelScanSource(Database* db, Transaction* txn,
                                       const BoundPlan* plan, int workers)
    : db_(db), txn_(txn), plan_(plan), target_workers_(workers) {}

ParallelScanSource::~ParallelScanSource() {
  MutexLock lock(&mu_);
  cancel_.store(true, std::memory_order_relaxed);
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
  while (active_ != 0) not_empty_.Wait();
}

void ParallelScanSource::EnablePartialAggregate(AggKind kind, int column) {
  agg_enabled_ = true;
  agg_kind_ = kind;
  agg_column_ = column;
}

void ParallelScanSource::EnableProfile(PlanProfile* profile,
                                       std::vector<size_t> worker_nodes) {
  profile_ = profile;
  profile_nodes_ = std::move(worker_nodes);
}

Status ParallelScanSource::Open() {
  opened_ = true;
  const AccessPlan& access = plan_->access;
  std::vector<ScanSpec> partitions;
  Status ps = db_->PartitionScan(txn_, &plan_->relation, access.spec,
                                 target_workers_, &partitions);
  if (ps.IsNotSupported() || partitions.empty()) {
    partitions.assign(1, access.spec);  // serial fallback, same machinery
  } else if (!ps.ok()) {
    return ps;
  }
  // Scans open serially on the consumer thread: OpenScanOn takes
  // transaction locks, and the lock manager tracks them per transaction,
  // not per thread.
  scans_.clear();
  for (const ScanSpec& sub : partitions) {
    std::unique_ptr<Scan> scan;
    DMX_RETURN_IF_ERROR(
        db_->OpenScanOn(txn_, &plan_->relation, access.path, sub, &scan));
    scans_.push_back(std::move(scan));
  }
  ParallelScansCounter()->Increment();
  {
    MutexLock lock(&mu_);
    active_ = scans_.size();
  }
  for (size_t i = 0; i < scans_.size(); ++i) {
    db_->thread_pool()->Submit([this, i] { RunWorker(i); });
  }
  return Status::OK();
}

bool ParallelScanSource::PushMorsel(Morsel m) {
  {
    MutexLock lock(&mu_);
    if (queue_.size() >= kMaxQueuedMorsels) {
      const uint64_t start = MetricsNowNanos();
      while (!cancel_.load(std::memory_order_relaxed) &&
             queue_.size() >= kMaxQueuedMorsels) {
        not_full_.Wait();
      }
      QueueWaitHistogram()->Record(MetricsNowNanos() - start);
    }
    if (cancel_.load(std::memory_order_relaxed)) return false;
    queue_.push_back(std::move(m));
  }
  not_empty_.NotifyOne();
  ParallelMorselsCounter()->Increment();
  return true;
}

void ParallelScanSource::RunWorker(size_t idx) {
  const uint64_t start = MetricsNowNanos();
  Scan* scan = scans_[idx].get();
  const AccessPlan& access = plan_->access;
  const Schema* schema = &plan_->relation.schema;
  uint64_t produced = 0;

  // Partial-aggregate state, mirroring AggregateSource exactly: count
  // counts every row, sum/min/max skip nulls.
  uint64_t count = 0;
  double sum = 0;
  Value min_v, max_v;

  Morsel morsel;
  Status error;
  while (!cancel_.load(std::memory_order_relaxed)) {
    ScanItem item;
    Status s = scan->Next(&item);
    if (s.IsNotFound()) break;
    if (!s.ok()) {
      error = s;
      break;
    }
    // Materialize exactly as AccessSource does for storage-method scans:
    // the filter already ran in the buffer pool; only needed fields.
    Row row;
    if (access.needed_fields.empty()) {
      row.values = item.view.GetValues();
    } else {
      row.values.assign(schema->num_columns(), Value());
      for (int f : access.needed_fields) {
        row.values[static_cast<size_t>(f)] =
            item.view.GetValue(static_cast<size_t>(f));
      }
    }
    row.record_key = std::move(item.record_key);
    if (agg_enabled_) {
      ++count;
      if (agg_kind_ != AggKind::kCount) {
        const Value& v = row.values[static_cast<size_t>(agg_column_)];
        if (!v.is_null()) {
          sum += v.AsDouble();
          if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
          if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
        }
      }
      continue;
    }
    ++produced;
    morsel.rows.push_back(std::move(row));
    if (morsel.rows.size() >= kMorselRows) {
      if (!PushMorsel(std::move(morsel))) break;
      morsel = Morsel();
    }
  }
  if (error.ok() && agg_enabled_ &&
      !cancel_.load(std::memory_order_relaxed)) {
    Row partial;
    partial.values = {Value::Int(static_cast<int64_t>(count)),
                      Value::Double(sum), min_v, max_v};
    morsel.rows.push_back(std::move(partial));
    produced = count;  // profile the scan side, not the 1-row partial
  }
  if (error.ok() && !morsel.rows.empty()) PushMorsel(std::move(morsel));

  if (profile_ != nullptr && idx < profile_nodes_.size()) {
    // One node per worker, this worker the only writer; the queue mutex
    // below publishes the stores before the consumer reads the profile.
    OperatorStats& st = profile_->ops[profile_nodes_[idx]];
    st.rows_out = produced;
    st.wall_ns = MetricsNowNanos() - start;
  }

  {
    MutexLock lock(&mu_);
    if (!error.ok() && error_.ok()) {
      error_ = error;
      cancel_.store(true, std::memory_order_relaxed);
    }
    --active_;
    // Wake the consumer (stream may be over) and siblings blocked on a
    // full queue after a cancel. Notified under the mutex: once active_
    // hits zero the destructor may tear the condvars down, so the last
    // worker must not touch them outside the lock.
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }
}

Status ParallelScanSource::Next(Row* row) {
  if (!opened_) DMX_RETURN_IF_ERROR(Open());
  while (true) {
    if (current_pos_ < current_.size()) {
      *row = std::move(current_[current_pos_++]);
      return Status::OK();
    }
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && active_ != 0 && error_.ok()) {
        not_empty_.Wait();
      }
      if (!error_.ok()) return error_;  // first worker failure wins
      if (queue_.empty()) return Status::NotFound("end of parallel scan");
      current_ = std::move(queue_.front().rows);
      queue_.pop_front();
      current_pos_ = 0;
    }
    not_full_.NotifyOne();
  }
}

Status ParallelAggregateMergeSource::Next(Row* row) {
  if (done_) return Status::NotFound("aggregate consumed");
  done_ = true;
  uint64_t count = 0;
  double sum = 0;
  Value min_v, max_v;
  Row partial;
  while (true) {
    Status s = child_->Next(&partial);
    if (s.IsNotFound()) break;
    DMX_RETURN_IF_ERROR(s);
    count += static_cast<uint64_t>(partial.values[0].int_value());
    sum += partial.values[1].AsDouble();
    const Value& pmin = partial.values[2];
    const Value& pmax = partial.values[3];
    if (!pmin.is_null() && (min_v.is_null() || pmin.Compare(min_v) < 0)) {
      min_v = pmin;
    }
    if (!pmax.is_null() && (max_v.is_null() || pmax.Compare(max_v) > 0)) {
      max_v = pmax;
    }
  }
  row->record_key.clear();
  row->values.clear();
  switch (kind_) {
    case AggKind::kCount:
      row->values.push_back(Value::Int(static_cast<int64_t>(count)));
      break;
    case AggKind::kSum:
      row->values.push_back(Value::Double(sum));
      break;
    case AggKind::kAvg:
      row->values.push_back(
          count == 0 ? Value::Null()
                     : Value::Double(sum / static_cast<double>(count)));
      break;
    case AggKind::kMin:
      row->values.push_back(min_v);
      break;
    case AggKind::kMax:
      row->values.push_back(max_v);
      break;
  }
  return Status::OK();
}

Status CollectRows(RowSource* source, std::vector<Row>* rows) {
  rows->clear();
  Row row;
  while (true) {
    Status s = source->Next(&row);
    if (s.IsNotFound()) return Status::OK();
    DMX_RETURN_IF_ERROR(s);
    rows->push_back(std::move(row));
  }
}

size_t PlanProfile::Add(std::string name, std::vector<size_t> children) {
  OperatorStats st;
  st.name = std::move(name);
  st.children = std::move(children);
  ops.push_back(std::move(st));
  return ops.size() - 1;
}

void PlanProfile::FinalizeRowsIn() {
  for (OperatorStats& op : ops) {
    op.rows_in = 0;
    for (size_t child : op.children) op.rows_in += ops[child].rows_out;
  }
}

Status ProfiledSource::Next(Row* row) {
  OperatorStats& st = profile_->ops[index_];
  const uint64_t start = MetricsNowNanos();
  Status s = inner_->Next(row);
  st.wall_ns += MetricsNowNanos() - start;
  if (s.ok()) ++st.rows_out;
  return s;
}

}  // namespace dmx
