// Access-path planner: the query-planning side of the architecture.
//
// "Given a list of 'eligible' predicates supplied by the query planner, the
// storage method or access attachment can determine the 'relevance' of the
// predicates to the access path instance and then estimate the I/O and CPU
// costs to return the record fields or keys that satisfy the predicates."
//
// The planner enumerates access path 0 (the storage method) plus every
// instance of every access-path attachment on the relation, asks each for a
// cost, and picks the cheapest usable one. The chosen AccessPlan carries
// everything the executor needs: the path id, a ScanSpec (with key range
// and pushed filter for paths that evaluate predicates themselves), an
// optional direct probe key (hash paths have no ordered scans), and the
// residual predicate the executor re-checks after fetching records.

#ifndef DMX_QUERY_PLANNER_H_
#define DMX_QUERY_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/database.h"

namespace dmx {

/// A planned single-relation access.
struct AccessPlan {
  AccessPathId path;
  AccessCost cost;
  ScanSpec spec;
  /// For probe-only access paths (hash): the direct-by-key lookup key.
  std::optional<std::string> probe_key;
  /// Predicate the executor evaluates against fetched records; null when
  /// the access path evaluates everything itself (storage-method scans).
  ExprPtr residual;
  /// True when the path returns record keys that must be fetched from the
  /// storage method ("First the access path is accessed to obtain a record
  /// key, which is then used to access the relation record").
  bool needs_fetch = false;
  /// Index-only access: every needed field is part of the access-path key,
  /// so the executor decodes field values from the key and never touches
  /// the storage method ("some access path attachments may be able to
  /// return record fields when the access path key is a multi-field
  /// value").
  bool index_only = false;
  /// Record fields composing the access key, in key order (set for
  /// attachment paths with field-composed keys).
  std::vector<int> key_fields;
  /// Fields the caller reads (from PlanAccess's needed_fields); empty =
  /// all. Sources materialize only these ("returns selected data fields
  /// from a record"); unread fields surface as NULL.
  std::vector<int> needed_fields;

  /// >= 2 when the planner judged the scan worth parallelising (storage
  /// method implements partition_scan, the pool has threads to spare, and
  /// the estimated cardinality amortises the exchange overhead). Only the
  /// read-only SELECT path acts on it; modification statements scan
  /// serially regardless.
  int parallel_workers = 0;

  /// Display form for examples/tests, e.g. "btree_index#1" or "heap scan".
  std::string DebugString(const ExtensionRegistry* registry) const;
};

/// Choose the cheapest access path for `predicate` (may be null = full
/// scan) on `desc`. `needed_fields` (optional) lists the record fields the
/// caller will read — enabling index-only plans when an access-path key
/// covers them.
Status PlanAccess(Database* db, Transaction* txn,
                  const RelationDescriptor* desc, const ExprPtr& predicate,
                  AccessPlan* out,
                  const std::vector<int>* needed_fields = nullptr);

/// All candidate costs, for tests/benches that inspect planner behaviour.
struct AccessCandidate {
  AccessPathId path;
  AccessCost cost;
};
Status EnumerateAccessPaths(Database* db, Transaction* txn,
                            const RelationDescriptor* desc,
                            const std::vector<ExprPtr>& conjuncts,
                            std::vector<AccessCandidate>* out);

}  // namespace dmx

#endif  // DMX_QUERY_PLANNER_H_
