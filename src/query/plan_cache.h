// PlanCache: bound query plans with dependency-based invalidation.
//
// "It is important to retain the translations of queries into query
// execution plans that directly invoke the relation and access path
// operations, and to use the saved query execution plans whenever the
// queries are subsequently executed. This query binding approach avoids the
// non-trivial costs of accessing the relation descriptions and optimizing
// the query at query execution time... A uniform mechanism for recording
// the dependencies of execution plans on the relations they use allows the
// system to invalidate any plans which depend upon relations or access
// paths that have been deleted. Invalidated execution plans are
// automatically re-translated, by the common system, the next time the
// query is invoked."
//
// A bound plan embeds a *snapshot* of the relation descriptor (so execution
// touches no catalogs) plus (relation id, version) dependencies; any DDL on
// a dependency bumps its version and the next lookup re-translates.

#ifndef DMX_QUERY_PLAN_CACHE_H_
#define DMX_QUERY_PLAN_CACHE_H_

#include <functional>
#include <map>
#include <memory>

#include "src/query/planner.h"
#include "src/util/metrics.h"
#include "src/util/thread_annotations.h"

namespace dmx {

/// A retained translation of a query.
struct BoundPlan {
  /// Descriptor snapshot taken at bind time; the executor reads this, not
  /// the catalog.
  RelationDescriptor relation;
  AccessPlan access;
  /// (relation id, catalog version at bind time) — validity certificate.
  std::vector<std::pair<RelationId, uint64_t>> dependencies;
};

class PlanCache {
 public:
  explicit PlanCache(Database* db);

  using Builder = std::function<Status(BoundPlan* plan)>;

  /// Fetch the plan bound under `key`, validating its dependencies; on a
  /// miss or a stale plan, invoke `builder` to (re-)translate and cache the
  /// result. The returned shared_ptr stays valid even if the entry is later
  /// invalidated.
  Status Get(const std::string& key, const Builder& builder,
             std::shared_ptr<const BoundPlan>* out);

  /// Bind helper: single-relation access plan for (relation, predicate).
  /// `needed_fields` (optional) enables index-only plans (see PlanAccess).
  Status GetAccessPlan(Transaction* txn, const std::string& relation,
                       const ExprPtr& predicate, const std::string& key,
                       std::shared_ptr<const BoundPlan>* out,
                       const std::vector<int>* needed_fields = nullptr);

  struct Stats {
    Counter hits;
    Counter misses;
    Counter retranslations;  // stale plans rebuilt

    void Reset() {
      hits.Reset();
      misses.Reset();
      retranslations.Reset();
    }
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  size_t size() const;

 private:
  bool IsValid(const BoundPlan& plan) const;

  Database* db_;
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<const BoundPlan>> plans_
      GUARDED_BY(mu_);
  Stats stats_;
  // Process-wide mirrors of stats_ ("plancache.*" in the registry).
  Counter* metric_hits_;
  Counter* metric_misses_;
  Counter* metric_retranslations_;
};

}  // namespace dmx

#endif  // DMX_QUERY_PLAN_CACHE_H_
