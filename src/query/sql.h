// A small SQL front end over the data management extension architecture.
//
// Supported statements (case-insensitive keywords):
//   CREATE TABLE t (col TYPE [NOT NULL], ...) [USING sm [WITH (k=v, ...)]]
//   DROP TABLE t
//   CREATE [UNIQUE] INDEX ON t (col, ...) [USING btree_index|hash_index]
//   CREATE ATTACHMENT ON t USING type [WITH (k = v, ...)]
//   ALTER TABLE t ADD [DEFERRED] CHECK (expr) [NAME ident]
//   ALTER TABLE t SET STORAGE sm [WITH (k = v, ...)]   (live migration)
//   DESCRIBE t
//   INSERT INTO t VALUES (v, ...), (v, ...) ...
//   SELECT * | cols | COUNT(*) | SUM(c)|AVG(c)|MIN(c)|MAX(c)
//     FROM t [, u] [WHERE expr] [ORDER BY col [ASC|DESC]] [LIMIT n]
//   UPDATE t SET col = expr, ... [WHERE expr]
//   DELETE FROM t [WHERE expr]
//   EXPLAIN SELECT ...                 (reports the chosen access path)
//   GRANT priv[, priv] ON t TO user    (priv: SELECT|INSERT|UPDATE|DELETE|ALL)
//   REVOKE priv[, priv] ON t FROM user
//   SET USER name                      (identity for authorization checks)
//   SET DURABILITY STRICT|RELAXED      (commit ack at fsync vs WAL-append)
//   CHECKPOINT                         (incremental checkpoint + truncation)
//   BACKUP TO 'dir'                    (online fuzzy backup; superuser only)
//   RESTORE FROM 'backup' INTO 'dir' [ARCHIVE 'dir'] [TO LSN n]
//                                      (offline point-in-time recovery;
//                                       superuser only)
//   BEGIN / COMMIT / ROLLBACK / SAVEPOINT name / ROLLBACK TO name
//
// Types: INT, DOUBLE, STRING (or TEXT), BOOL. Expressions support
// comparisons, AND/OR/NOT, arithmetic, LIKE, BETWEEN, IN (...), IS [NOT]
// NULL, literals
// (integers, decimals, 'strings', TRUE/FALSE, NULL), and `?` runtime
// parameters (bind values via Session::Execute's params overload).
//
// Two-table SELECTs run a join; when the WHERE clause contains an equality
// between a column of each table and the inner table has a B-tree or hash
// access path on its column, the session picks an index nested-loop join,
// otherwise a plain nested loop.
//
// SELECT statements are bound through the session's PlanCache: repeated
// queries reuse their translation until DDL invalidates it (the paper's
// query-binding model).

#ifndef DMX_QUERY_SQL_H_
#define DMX_QUERY_SQL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/query/executor.h"

namespace dmx {

/// Result of one statement.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  /// For DDL/DML: affected-row count (-1 when not applicable).
  int64_t affected = -1;
  std::string message;

  /// Render as an ASCII table (examples).
  std::string ToString() const;
};

/// A connection-like object: owns the current transaction (autocommit when
/// no BEGIN is active) and a plan cache.
class Session {
 public:
  explicit Session(Database* db) : db_(db), plans_(db) {}
  ~Session();

  /// Execute one SQL statement.
  Status Execute(const std::string& sql, QueryResult* result);

  /// Execute with runtime parameters bound to `?` placeholders, in order
  /// (the common evaluator's "variable data"). The statement's bound plan
  /// is cached by SQL text, so repeated executions with different
  /// parameters reuse one translation.
  Status Execute(const std::string& sql, const std::vector<Value>& params,
                 QueryResult* result);

  PlanCache* plan_cache() { return &plans_; }
  Database* db() { return db_; }

  /// User identity for the uniform authorization facility (also settable
  /// via the SET USER statement); "" = superuser.
  void set_user(std::string user) { user_ = std::move(user); }
  const std::string& user() const { return user_; }

  /// The transaction opened by BEGIN, or null (autocommit mode).
  Transaction* current_txn() { return txn_; }

 private:
  friend class SqlExecutor;

  Database* db_;
  PlanCache plans_;
  Transaction* txn_ = nullptr;
  std::string user_;
  // SET DURABILITY { STRICT | RELAXED }: per-session override of the
  // database's default commit-durability contract. Unset = inherit
  // DatabaseOptions::durability.
  bool has_durability_override_ = false;
  bool relaxed_durability_ = false;
};

}  // namespace dmx

#endif  // DMX_QUERY_SQL_H_
