// Tuple-at-a-time execution operators over the generic data management
// interfaces. "The interfaces to storage methods and attachments are
// tuple-at-a-time interfaces" — each operator pulls one row at a time, and
// access-path operators follow the paper's protocol: probe the access path
// for a record key, then fetch the record through the storage method.

#ifndef DMX_QUERY_EXECUTOR_H_
#define DMX_QUERY_EXECUTOR_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>

#include "src/query/plan_cache.h"

namespace dmx {

/// One materialized row flowing between operators.
struct Row {
  std::vector<Value> values;
  std::string record_key;  // of the base record (single-relation sources)
};

/// Pull-based operator interface.
class RowSource {
 public:
  virtual ~RowSource() = default;
  /// Produce the next row; NotFound at end of stream.
  virtual Status Next(Row* row) = 0;
};

/// Executes a planned single-relation access: storage-method scan with
/// pushed filter, ordered access-path scan + fetch, or direct probe +
/// fetch; applies the residual predicate.
class AccessSource : public RowSource {
 public:
  /// `plan` must outlive the source (hold the shared_ptr at the call site).
  AccessSource(Database* db, Transaction* txn, const BoundPlan* plan);
  Status Next(Row* row) override;

 private:
  Status Open();

  Database* db_;
  Transaction* txn_;
  const BoundPlan* plan_;
  bool opened_ = false;
  std::unique_ptr<Scan> scan_;               // scan-shaped paths
  std::vector<std::string> probe_results_;   // probe-shaped paths
  size_t probe_pos_ = 0;
};

/// Keeps rows satisfying `predicate` (field indexes refer to child rows).
class FilterSource : public RowSource {
 public:
  FilterSource(Database* db, std::unique_ptr<RowSource> child,
               ExprPtr predicate)
      : db_(db), child_(std::move(child)), predicate_(std::move(predicate)) {}
  Status Next(Row* row) override;

 private:
  Database* db_;
  std::unique_ptr<RowSource> child_;
  ExprPtr predicate_;
};

/// Projects child rows onto the given column indexes.
class ProjectSource : public RowSource {
 public:
  ProjectSource(std::unique_ptr<RowSource> child, std::vector<int> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}
  Status Next(Row* row) override;

 private:
  std::unique_ptr<RowSource> child_;
  std::vector<int> columns_;
};

/// Nested-loop join: re-opens the inner source for every outer row (the
/// join that "can easily result in thousands of calls to storage method and
/// attachment routines"). The join predicate sees outer columns first, then
/// inner columns.
class NestedLoopJoinSource : public RowSource {
 public:
  using InnerFactory = std::function<Status(std::unique_ptr<RowSource>*)>;

  NestedLoopJoinSource(Database* db, std::unique_ptr<RowSource> outer,
                       InnerFactory inner_factory, ExprPtr predicate)
      : db_(db),
        outer_(std::move(outer)),
        inner_factory_(std::move(inner_factory)),
        predicate_(std::move(predicate)) {}
  Status Next(Row* row) override;

 private:
  Database* db_;
  std::unique_ptr<RowSource> outer_;
  InnerFactory inner_factory_;
  ExprPtr predicate_;
  Row outer_row_;
  bool outer_valid_ = false;
  std::unique_ptr<RowSource> inner_;
};

/// Index nested-loop join: for each outer row, probes an access path on the
/// inner relation with a key composed from outer columns, fetches the
/// matching records, and emits combined rows.
class IndexJoinSource : public RowSource {
 public:
  IndexJoinSource(Database* db, Transaction* txn,
                  std::unique_ptr<RowSource> outer,
                  const RelationDescriptor* inner, AccessPathId inner_path,
                  std::vector<int> outer_key_columns)
      : db_(db),
        txn_(txn),
        outer_(std::move(outer)),
        inner_(inner),
        inner_path_(inner_path),
        outer_key_columns_(std::move(outer_key_columns)) {}
  Status Next(Row* row) override;

 private:
  Database* db_;
  Transaction* txn_;
  std::unique_ptr<RowSource> outer_;
  const RelationDescriptor* inner_;
  AccessPathId inner_path_;
  std::vector<int> outer_key_columns_;
  Row outer_row_;
  std::vector<std::string> matches_;
  size_t match_pos_ = 0;
  bool outer_valid_ = false;
};

/// Simple aggregates over the whole child stream.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

class AggregateSource : public RowSource {
 public:
  /// `column` is ignored for kCount.
  AggregateSource(std::unique_ptr<RowSource> child, AggKind kind, int column)
      : child_(std::move(child)), kind_(kind), column_(column) {}
  Status Next(Row* row) override;

 private:
  std::unique_ptr<RowSource> child_;
  AggKind kind_;
  int column_;
  bool done_ = false;
};

struct PlanProfile;

/// Morsel-driven parallel storage-method scan: an exchange operator. The
/// storage method's optional `partition_scan` entry point splits the scan
/// spec into disjoint sub-specs; one ManagedScan per partition runs on the
/// Database's shared ThreadPool, filtering (and optionally pre-aggregating)
/// below the exchange, and the consumer merges fixed-size morsels through a
/// bounded queue. The first non-OK worker Status cancels the siblings and
/// surfaces from Next(). Row order across partitions is nondeterministic.
///
/// Falls back to a single worker when the method declines to partition
/// (single-element result) or has no partition_scan at all.
class ParallelScanSource : public RowSource {
 public:
  /// `plan` must outlive the source. `workers` is the planner's target
  /// partition count (>= 2); the storage method may return fewer.
  ParallelScanSource(Database* db, Transaction* txn, const BoundPlan* plan,
                     int workers);
  ~ParallelScanSource() override;

  /// Push a simple aggregate below the exchange: each worker emits one
  /// partial row [count(all rows), sum(non-null), min, max] instead of its
  /// scan output. Merge with ParallelAggregateMergeSource. Must be called
  /// before the first Next().
  void EnablePartialAggregate(AggKind kind, int column);

  /// EXPLAIN ANALYZE: worker i records its produced rows and wall time
  /// into profile->ops[worker_nodes[i]] (one node per worker, single
  /// writer; results are published by the queue mutex before the consumer
  /// reads them). Must be called before the first Next().
  void EnableProfile(PlanProfile* profile, std::vector<size_t> worker_nodes);

  Status Next(Row* row) override;

 private:
  struct Morsel {
    std::vector<Row> rows;
  };

  Status Open();
  void RunWorker(size_t idx);
  /// Blocks until the queue has room; returns false when cancelled.
  bool PushMorsel(Morsel m);

  Database* db_;
  Transaction* txn_;
  const BoundPlan* plan_;
  const int target_workers_;
  bool opened_ = false;

  bool agg_enabled_ = false;
  AggKind agg_kind_ = AggKind::kCount;
  int agg_column_ = 0;

  PlanProfile* profile_ = nullptr;
  std::vector<size_t> profile_nodes_;

  std::vector<std::unique_ptr<Scan>> scans_;  // one per partition

  Mutex mu_;
  CondVar not_empty_{&mu_};
  CondVar not_full_{&mu_};
  std::deque<Morsel> queue_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;  // workers not yet finished
  std::atomic<bool> cancel_{false};
  Status error_ GUARDED_BY(mu_);  // first worker failure wins

  std::vector<Row> current_;  // morsel being drained by the consumer
  size_t current_pos_ = 0;
};

/// Merges the per-worker partial aggregate rows a ParallelScanSource emits
/// (EnablePartialAggregate) into the single row AggregateSource would have
/// produced over the same input — byte-identical, including null handling.
class ParallelAggregateMergeSource : public RowSource {
 public:
  ParallelAggregateMergeSource(std::unique_ptr<RowSource> child, AggKind kind)
      : child_(std::move(child)), kind_(kind) {}
  Status Next(Row* row) override;

 private:
  std::unique_ptr<RowSource> child_;
  AggKind kind_;
  bool done_ = false;
};

/// Drain a source into a vector (tests, examples).
Status CollectRows(RowSource* source, std::vector<Row>* rows);

// -- EXPLAIN ANALYZE ----------------------------------------------------------

/// Runtime statistics for one operator in an executed plan.
struct OperatorStats {
  std::string name;       // e.g. "access(parts): heap scan"
  uint64_t rows_in = 0;   // rows consumed from children (FinalizeRowsIn)
  uint64_t rows_out = 0;  // rows produced
  uint64_t wall_ns = 0;   // inclusive wall time inside Next()
  std::vector<size_t> children;  // indices into PlanProfile::ops
};

/// Profile of one executed plan tree. Children are added before their
/// parents, so the last node is the root. A nested-loop inner that is
/// re-created per outer row shares one node, accumulating across rescans.
struct PlanProfile {
  std::vector<OperatorStats> ops;

  size_t Add(std::string name, std::vector<size_t> children = {});
  /// Derive every node's rows_in as the sum of its children's rows_out.
  void FinalizeRowsIn();
};

/// Wraps an operator, recording produced rows and inclusive wall time into
/// profile->ops[index]. Created only under EXPLAIN ANALYZE, so normal
/// execution pays nothing.
class ProfiledSource : public RowSource {
 public:
  ProfiledSource(std::unique_ptr<RowSource> inner, PlanProfile* profile,
                 size_t index)
      : inner_(std::move(inner)), profile_(profile), index_(index) {}
  Status Next(Row* row) override;

 private:
  std::unique_ptr<RowSource> inner_;
  PlanProfile* profile_;
  size_t index_;
};

}  // namespace dmx

#endif  // DMX_QUERY_EXECUTOR_H_
