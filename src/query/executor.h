// Tuple-at-a-time execution operators over the generic data management
// interfaces. "The interfaces to storage methods and attachments are
// tuple-at-a-time interfaces" — each operator pulls one row at a time, and
// access-path operators follow the paper's protocol: probe the access path
// for a record key, then fetch the record through the storage method.

#ifndef DMX_QUERY_EXECUTOR_H_
#define DMX_QUERY_EXECUTOR_H_

#include <functional>
#include <memory>

#include "src/query/plan_cache.h"

namespace dmx {

/// One materialized row flowing between operators.
struct Row {
  std::vector<Value> values;
  std::string record_key;  // of the base record (single-relation sources)
};

/// Pull-based operator interface.
class RowSource {
 public:
  virtual ~RowSource() = default;
  /// Produce the next row; NotFound at end of stream.
  virtual Status Next(Row* row) = 0;
};

/// Executes a planned single-relation access: storage-method scan with
/// pushed filter, ordered access-path scan + fetch, or direct probe +
/// fetch; applies the residual predicate.
class AccessSource : public RowSource {
 public:
  /// `plan` must outlive the source (hold the shared_ptr at the call site).
  AccessSource(Database* db, Transaction* txn, const BoundPlan* plan);
  Status Next(Row* row) override;

 private:
  Status Open();

  Database* db_;
  Transaction* txn_;
  const BoundPlan* plan_;
  bool opened_ = false;
  std::unique_ptr<Scan> scan_;               // scan-shaped paths
  std::vector<std::string> probe_results_;   // probe-shaped paths
  size_t probe_pos_ = 0;
};

/// Keeps rows satisfying `predicate` (field indexes refer to child rows).
class FilterSource : public RowSource {
 public:
  FilterSource(Database* db, std::unique_ptr<RowSource> child,
               ExprPtr predicate)
      : db_(db), child_(std::move(child)), predicate_(std::move(predicate)) {}
  Status Next(Row* row) override;

 private:
  Database* db_;
  std::unique_ptr<RowSource> child_;
  ExprPtr predicate_;
};

/// Projects child rows onto the given column indexes.
class ProjectSource : public RowSource {
 public:
  ProjectSource(std::unique_ptr<RowSource> child, std::vector<int> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}
  Status Next(Row* row) override;

 private:
  std::unique_ptr<RowSource> child_;
  std::vector<int> columns_;
};

/// Nested-loop join: re-opens the inner source for every outer row (the
/// join that "can easily result in thousands of calls to storage method and
/// attachment routines"). The join predicate sees outer columns first, then
/// inner columns.
class NestedLoopJoinSource : public RowSource {
 public:
  using InnerFactory = std::function<Status(std::unique_ptr<RowSource>*)>;

  NestedLoopJoinSource(Database* db, std::unique_ptr<RowSource> outer,
                       InnerFactory inner_factory, ExprPtr predicate)
      : db_(db),
        outer_(std::move(outer)),
        inner_factory_(std::move(inner_factory)),
        predicate_(std::move(predicate)) {}
  Status Next(Row* row) override;

 private:
  Database* db_;
  std::unique_ptr<RowSource> outer_;
  InnerFactory inner_factory_;
  ExprPtr predicate_;
  Row outer_row_;
  bool outer_valid_ = false;
  std::unique_ptr<RowSource> inner_;
};

/// Index nested-loop join: for each outer row, probes an access path on the
/// inner relation with a key composed from outer columns, fetches the
/// matching records, and emits combined rows.
class IndexJoinSource : public RowSource {
 public:
  IndexJoinSource(Database* db, Transaction* txn,
                  std::unique_ptr<RowSource> outer,
                  const RelationDescriptor* inner, AccessPathId inner_path,
                  std::vector<int> outer_key_columns)
      : db_(db),
        txn_(txn),
        outer_(std::move(outer)),
        inner_(inner),
        inner_path_(inner_path),
        outer_key_columns_(std::move(outer_key_columns)) {}
  Status Next(Row* row) override;

 private:
  Database* db_;
  Transaction* txn_;
  std::unique_ptr<RowSource> outer_;
  const RelationDescriptor* inner_;
  AccessPathId inner_path_;
  std::vector<int> outer_key_columns_;
  Row outer_row_;
  std::vector<std::string> matches_;
  size_t match_pos_ = 0;
  bool outer_valid_ = false;
};

/// Simple aggregates over the whole child stream.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

class AggregateSource : public RowSource {
 public:
  /// `column` is ignored for kCount.
  AggregateSource(std::unique_ptr<RowSource> child, AggKind kind, int column)
      : child_(std::move(child)), kind_(kind), column_(column) {}
  Status Next(Row* row) override;

 private:
  std::unique_ptr<RowSource> child_;
  AggKind kind_;
  int column_;
  bool done_ = false;
};

/// Drain a source into a vector (tests, examples).
Status CollectRows(RowSource* source, std::vector<Row>* rows);

// -- EXPLAIN ANALYZE ----------------------------------------------------------

/// Runtime statistics for one operator in an executed plan.
struct OperatorStats {
  std::string name;       // e.g. "access(parts): heap scan"
  uint64_t rows_in = 0;   // rows consumed from children (FinalizeRowsIn)
  uint64_t rows_out = 0;  // rows produced
  uint64_t wall_ns = 0;   // inclusive wall time inside Next()
  std::vector<size_t> children;  // indices into PlanProfile::ops
};

/// Profile of one executed plan tree. Children are added before their
/// parents, so the last node is the root. A nested-loop inner that is
/// re-created per outer row shares one node, accumulating across rescans.
struct PlanProfile {
  std::vector<OperatorStats> ops;

  size_t Add(std::string name, std::vector<size_t> children = {});
  /// Derive every node's rows_in as the sum of its children's rows_out.
  void FinalizeRowsIn();
};

/// Wraps an operator, recording produced rows and inclusive wall time into
/// profile->ops[index]. Created only under EXPLAIN ANALYZE, so normal
/// execution pays nothing.
class ProfiledSource : public RowSource {
 public:
  ProfiledSource(std::unique_ptr<RowSource> inner, PlanProfile* profile,
                 size_t index)
      : inner_(std::move(inner)), profile_(profile), index_(index) {}
  Status Next(Row* row) override;

 private:
  std::unique_ptr<RowSource> inner_;
  PlanProfile* profile_;
  size_t index_;
};

}  // namespace dmx

#endif  // DMX_QUERY_EXECUTOR_H_
