#include "src/query/plan_cache.h"

namespace dmx {

PlanCache::PlanCache(Database* db) : db_(db) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metric_hits_ = metrics->GetCounter("plancache.hits");
  metric_misses_ = metrics->GetCounter("plancache.misses");
  metric_retranslations_ = metrics->GetCounter("plancache.retranslations");
}

bool PlanCache::IsValid(const BoundPlan& plan) const {
  for (const auto& [rel, version] : plan.dependencies) {
    if (db_->catalog()->VersionOf(rel) != version) return false;
  }
  return true;
}

Status PlanCache::Get(const std::string& key, const Builder& builder,
                      std::shared_ptr<const BoundPlan>* out) {
  {
    MutexLock lock(&mu_);
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      if (IsValid(*it->second)) {
        stats_.hits.Increment();
        metric_hits_->Increment();
        *out = it->second;
        return Status::OK();
      }
      // Stale: drop and re-translate below.
      plans_.erase(it);
      stats_.retranslations.Increment();
      metric_retranslations_->Increment();
    } else {
      stats_.misses.Increment();
      metric_misses_->Increment();
    }
  }
  auto plan = std::make_shared<BoundPlan>();
  DMX_RETURN_IF_ERROR(builder(plan.get()));
  MutexLock lock(&mu_);
  plans_[key] = plan;
  *out = std::move(plan);
  return Status::OK();
}

Status PlanCache::GetAccessPlan(Transaction* txn, const std::string& relation,
                                const ExprPtr& predicate,
                                const std::string& key,
                                std::shared_ptr<const BoundPlan>* out,
                                const std::vector<int>* needed_fields) {
  return Get(key, [&](BoundPlan* plan) -> Status {
    const RelationDescriptor* desc;
    DMX_RETURN_IF_ERROR(db_->FindRelation(relation, &desc));
    plan->relation = *desc;  // descriptor embedded in the plan
    plan->dependencies = {{desc->id, desc->version}};
    return PlanAccess(db_, txn, desc, predicate, &plan->access,
                      needed_fields);
  }, out);
}

size_t PlanCache::size() const {
  MutexLock lock(&mu_);
  return plans_.size();
}

}  // namespace dmx
