#include "src/query/planner.h"

#include <algorithm>
#include <limits>

#include "src/sm/key_codec.h"

namespace dmx {

namespace {
// Parallel scans only pay off past a cardinality floor, and each worker
// needs enough rows that partitioning beats the exchange overhead.
constexpr uint64_t kParallelRowThreshold = 8192;
constexpr uint64_t kParallelMinRowsPerWorker = 4096;
}  // namespace

std::string AccessPlan::DebugString(const ExtensionRegistry* registry) const {
  if (path.is_storage_method()) return "storage-method scan";
  std::string name = registry->at_ops(path.at_id()).name;
  std::string out = name + "#" + std::to_string(path.instance);
  if (index_only) out += " (index-only)";
  return out;
}

Status EnumerateAccessPaths(Database* db, Transaction* txn,
                            const RelationDescriptor* desc,
                            const std::vector<ExprPtr>& conjuncts,
                            std::vector<AccessCandidate>* out) {
  out->clear();
  // Access path zero: the storage method.
  {
    AccessCandidate c;
    c.path = AccessPathId::StorageMethod();
    DMX_RETURN_IF_ERROR(db->EstimateCost(txn, desc, c.path, conjuncts,
                                         &c.cost));
    out->push_back(std::move(c));
  }
  // Every instance of every access-path attachment type present.
  const ExtensionRegistry* registry = db->registry();
  for (AtId at = 0; at < registry->num_attachment_types(); ++at) {
    if (!desc->HasAttachment(at)) continue;
    const AtOps& ops = registry->at_ops(at);
    if (ops.cost == nullptr || ops.list_instances == nullptr) continue;
    std::vector<uint32_t> instances;
    DMX_RETURN_IF_ERROR(
        ops.list_instances(Slice(desc->at_desc[at]), &instances));
    for (uint32_t inst : instances) {
      // Quarantined instances never become access paths: queries degrade
      // to the base-relation scan until REPAIR clears the damage record.
      if (desc->IsQuarantined(at, inst)) continue;
      AccessCandidate c;
      c.path = AccessPathId::Attachment(at, inst);
      DMX_RETURN_IF_ERROR(
          db->EstimateCost(txn, desc, c.path, conjuncts, &c.cost));
      if (c.cost.usable) out->push_back(std::move(c));
    }
  }
  return Status::OK();
}

namespace {

// Compose key bounds for an ordered multi-field access path: the longest
// equality prefix over the leading key fields, then range predicates on
// the next field (the paper's partial-key access).
void BuildKeyRange(const std::vector<ExprPtr>& conjuncts,
                   const std::vector<int>& key_fields, ScanSpec* spec) {
  // Equality value per field, if any.
  auto eq_value = [&](int field, Value* out) {
    for (const ExprPtr& c : conjuncts) {
      int f;
      ExprOp op;
      Value constant;
      if (MatchFieldCompare(c, &f, &op, &constant) && f == field &&
          op == ExprOp::kEq) {
        *out = std::move(constant);
        return true;
      }
    }
    return false;
  };

  std::string prefix;
  size_t depth = 0;
  for (int field : key_fields) {
    Value v;
    if (!eq_value(field, &v)) break;
    if (!EncodeKeyValue(v, &prefix).ok()) break;
    ++depth;
  }

  std::string low = prefix;
  std::string high = prefix;
  bool have_range = false;
  if (depth < key_fields.size()) {
    // Range predicates on the field following the prefix tighten the
    // bounds within the prefix.
    int next = key_fields[depth];
    std::optional<Value> lo_v, hi_v;
    for (const ExprPtr& c : conjuncts) {
      int f;
      ExprOp op;
      Value constant;
      if (!MatchFieldCompare(c, &f, &op, &constant) || f != next) continue;
      switch (op) {
        case ExprOp::kGt:
        case ExprOp::kGe:
          if (!lo_v || constant.Compare(*lo_v) > 0) lo_v = constant;
          break;
        case ExprOp::kLt:
        case ExprOp::kLe:
          if (!hi_v || constant.Compare(*hi_v) < 0) hi_v = constant;
          break;
        default:
          break;
      }
    }
    if (lo_v) {
      EncodeKeyValue(*lo_v, &low).ok();
      have_range = true;
    }
    if (hi_v) {
      EncodeKeyValue(*hi_v, &high).ok();
      high += '\xff';  // include multi-field extensions of the bound
      have_range = true;
    }
  }

  if (depth == 0 && !have_range) return;  // nothing to bound
  if (low != prefix || depth > 0) {
    spec->low_key = low;
    spec->low_inclusive = true;  // residual re-checks strictness
  }
  if (high != prefix || depth > 0) {
    if (high == prefix) high += '\xff';  // pure prefix: cover extensions
    spec->high_key = high;
    spec->high_inclusive = true;
  }
}

// Compose the hash probe key: equality values in hashed-field order.
bool BuildProbeKey(const std::vector<ExprPtr>& conjuncts,
                   const std::vector<int>& key_fields, std::string* probe) {
  probe->clear();
  for (int field : key_fields) {
    bool found = false;
    for (const ExprPtr& c : conjuncts) {
      int f;
      ExprOp op;
      Value constant;
      if (MatchFieldCompare(c, &f, &op, &constant) && f == field &&
          op == ExprOp::kEq) {
        if (!EncodeKeyValue(constant, probe).ok()) return false;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Does `needed` (field indexes) fall entirely inside `key_fields`?
bool CoveredBy(const std::vector<int>& needed,
               const std::vector<int>& key_fields) {
  for (int f : needed) {
    bool found = false;
    for (int k : key_fields) found |= (k == f);
    if (!found) return false;
  }
  return true;
}

}  // namespace

Status PlanAccess(Database* db, Transaction* txn,
                  const RelationDescriptor* desc, const ExprPtr& predicate,
                  AccessPlan* out, const std::vector<int>* needed_fields) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(predicate, &conjuncts);

  std::vector<AccessCandidate> candidates;
  DMX_RETURN_IF_ERROR(
      EnumerateAccessPaths(db, txn, desc, conjuncts, &candidates));

  const ExtensionRegistry* registry = db->registry();

  // Effective cost of a candidate: index-only plans (all needed fields in
  // the access key) skip the record fetches.
  auto key_fields_of = [&](const AccessCandidate& c,
                           std::vector<int>* fields) {
    if (c.path.is_storage_method()) return false;
    const AtOps& ops = registry->at_ops(c.path.at_id());
    if (ops.instance_fields == nullptr) return false;
    return ops.instance_fields(Slice(desc->at_desc[c.path.at_id()]),
                               c.path.instance, fields)
        .ok();
  };
  auto can_cover = [&](const AccessCandidate& c) {
    if (needed_fields == nullptr || c.path.is_storage_method()) return false;
    std::vector<int> key_fields;
    if (!key_fields_of(c, &key_fields)) return false;
    // The residual predicate also runs against the decoded key fields, so
    // every field the predicate touches must be covered too.
    std::vector<int> all_needed = *needed_fields;
    if (predicate != nullptr) predicate->CollectFields(&all_needed);
    return CoveredBy(all_needed, key_fields);
  };
  auto effective_total = [&](const AccessCandidate& c) {
    double total = c.cost.total();
    if (can_cover(c)) total -= c.cost.fetch_cost;
    return total;
  };

  const AccessCandidate* best = nullptr;
  double best_total = std::numeric_limits<double>::infinity();
  for (const AccessCandidate& c : candidates) {
    if (!c.cost.usable) continue;
    double total = effective_total(c);
    if (best == nullptr || total < best_total) {
      best = &c;
      best_total = total;
    }
  }
  if (best == nullptr) {
    return Status::Internal("no usable access path");
  }

  out->path = best->path;
  out->cost = best->cost;
  out->spec = ScanSpec();
  out->probe_key.reset();
  out->residual = nullptr;
  out->needs_fetch = false;
  out->index_only = false;
  out->key_fields.clear();
  out->needed_fields.clear();
  out->parallel_workers = 0;
  if (needed_fields != nullptr) {
    out->needed_fields = *needed_fields;
    if (predicate != nullptr) predicate->CollectFields(&out->needed_fields);
    out->spec.fields = out->needed_fields;
  }

  if (best->path.is_storage_method()) {
    // The storage-method scan evaluates the whole predicate itself, while
    // the record bytes are still in the buffer pool.
    out->spec.filter = predicate;
    // Parallel eligibility: the method must know how to partition, the
    // pool must have at least two threads, and the scan must be large
    // enough that the exchange overhead amortises. cpu_cost for a full
    // storage-method scan is the record count.
    const SmOps& sm = db->registry()->sm_ops(desc->sm_id);
    uint64_t est_rows = static_cast<uint64_t>(best->cost.cpu_cost);
    if (sm.partition_scan != nullptr && db->worker_threads() >= 2 &&
        est_rows >= kParallelRowThreshold) {
      out->parallel_workers = static_cast<int>(
          std::min<uint64_t>(db->worker_threads(),
                             est_rows / kParallelMinRowsPerWorker));
    }
    return Status::OK();
  }

  // Access-path scans return keys; the executor re-checks the whole
  // predicate (correct even where the key range already guarantees some
  // conjuncts).
  out->residual = predicate;
  std::vector<int> key_fields;
  key_fields_of(*best, &key_fields);
  out->key_fields = key_fields;
  if (can_cover(*best)) {
    out->index_only = true;
    out->needs_fetch = false;
  } else {
    out->needs_fetch = true;
  }

  const AtOps& ops = registry->at_ops(best->path.at_id());
  const std::string name = ops.name;
  if (name == "hash_index") {
    std::string probe;
    if (!BuildProbeKey(conjuncts, key_fields, &probe)) {
      return Status::Internal("hash path chosen without equality cover");
    }
    out->probe_key = std::move(probe);
    // Probe results carry no access key, so hash paths always fetch.
    out->index_only = false;
    out->needs_fetch = true;
    return Status::OK();
  }
  if (name == "rtree_index") {
    // The rtree scan extracts its query rectangle from the pushed filter;
    // it returns record keys only.
    out->spec.filter = predicate;
    out->index_only = false;
    out->needs_fetch = true;
    return Status::OK();
  }
  // Ordered paths (btree_index and future ordered access paths).
  BuildKeyRange(conjuncts, key_fields, &out->spec);
  return Status::OK();
}

}  // namespace dmx
