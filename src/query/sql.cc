#include "src/query/sql.h"

#include <algorithm>
#include <cctype>

#include "src/sm/key_codec.h"

namespace dmx {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

namespace {

enum class TokType { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokType type = TokType::kEnd;
  std::string text;  // identifiers upper-cased only for keyword checks

  bool IsKw(const char* kw) const {
    if (type != TokType::kIdent) return false;
    if (text.size() != strlen(kw)) return false;
    for (size_t i = 0; i < text.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text[i])) != kw[i]) {
        return false;
      }
    }
    return true;
  }
  bool IsSym(const char* s) const {
    return type == TokType::kSymbol && text == s;
  }
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    while (i < in_.size()) {
      char c = in_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t b = i;
        while (i < in_.size() &&
               (std::isalnum(static_cast<unsigned char>(in_[i])) ||
                in_[i] == '_')) {
          ++i;
        }
        out->push_back({TokType::kIdent, in_.substr(b, i - b)});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[i + 1])) &&
           NumberContext(out))) {
        size_t b = i;
        if (c == '-') ++i;
        bool has_dot = false;
        while (i < in_.size() &&
               (std::isdigit(static_cast<unsigned char>(in_[i])) ||
                (in_[i] == '.' && !has_dot))) {
          if (in_[i] == '.') has_dot = true;
          ++i;
        }
        out->push_back({TokType::kNumber, in_.substr(b, i - b)});
        continue;
      }
      if (c == '\'') {
        std::string s;
        ++i;
        while (i < in_.size()) {
          if (in_[i] == '\'') {
            if (i + 1 < in_.size() && in_[i + 1] == '\'') {
              s.push_back('\'');
              i += 2;
              continue;
            }
            break;
          }
          s.push_back(in_[i++]);
        }
        if (i >= in_.size()) return Status::InvalidArgument("unclosed string");
        ++i;  // closing quote
        out->push_back({TokType::kString, std::move(s)});
        continue;
      }
      // Multi-char operators first.
      if (i + 1 < in_.size()) {
        std::string two = in_.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          out->push_back({TokType::kSymbol, two == "!=" ? "<>" : two});
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "(),.*=<>+-/;?";
      if (kSingles.find(c) != std::string::npos) {
        out->push_back({TokType::kSymbol, std::string(1, c)});
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "'");
    }
    out->push_back({TokType::kEnd, ""});
    return Status::OK();
  }

 private:
  // A leading '-' is a numeric sign only if the previous token cannot end
  // an operand (crude but sufficient for this grammar).
  bool NumberContext(const std::vector<Token>* out) const {
    if (out->empty()) return true;
    const Token& prev = out->back();
    if (prev.type == TokType::kNumber || prev.type == TokType::kString) {
      return false;
    }
    if (prev.type == TokType::kIdent) return prev.IsKw("VALUES") ? true : false;
    return !prev.IsSym(")");
  }

  const std::string& in_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

// Column binding context for expression parsing: maps (optionally
// qualified) names to field indexes in the row flowing through execution.
struct NameScope {
  // (qualifier, column) -> index; unqualified lookups match any qualifier
  // if unambiguous.
  std::vector<std::pair<std::pair<std::string, std::string>, int>> names;

  void Add(const std::string& table, const Schema& schema, int base) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      names.push_back(
          {{table, schema.column(i).name}, base + static_cast<int>(i)});
    }
  }

  Status Resolve(const std::string& qualifier, const std::string& column,
                 int* out) const {
    int found = -1;
    for (const auto& [key, index] : names) {
      if (key.second != column) continue;
      if (!qualifier.empty() && key.first != qualifier) continue;
      if (found >= 0) {
        return Status::InvalidArgument("ambiguous column '" + column + "'");
      }
      found = index;
    }
    if (found < 0) {
      return Status::InvalidArgument("unknown column '" + column + "'");
    }
    *out = found;
    return Status::OK();
  }
};

class Parser {
 public:
  Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  Token Take() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  bool TakeKw(const char* kw) {
    if (Peek().IsKw(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool TakeSym(const char* s) {
    if (Peek().IsSym(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKw(const char* kw) {
    if (!TakeKw(kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw +
                                     " near '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectSym(const char* s) {
    if (!TakeSym(s)) {
      return Status::InvalidArgument(std::string("expected '") + s +
                                     "' near '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectIdent(std::string* out) {
    if (Peek().type != TokType::kIdent) {
      return Status::InvalidArgument("expected identifier near '" +
                                     Peek().text + "'");
    }
    *out = Take().text;
    return Status::OK();
  }
  bool AtEnd() {
    TakeSym(";");
    return Peek().type == TokType::kEnd;
  }

  // expr := or; standard precedence OR < AND < NOT < cmp < add < mul.
  Status ParseExpr(const NameScope& scope, ExprPtr* out) {
    return ParseOr(scope, out);
  }

 private:
  Status ParseOr(const NameScope& scope, ExprPtr* out) {
    ExprPtr left;
    DMX_RETURN_IF_ERROR(ParseAnd(scope, &left));
    while (TakeKw("OR")) {
      ExprPtr right;
      DMX_RETURN_IF_ERROR(ParseAnd(scope, &right));
      left = Expr::Or(left, right);
    }
    *out = left;
    return Status::OK();
  }

  Status ParseAnd(const NameScope& scope, ExprPtr* out) {
    ExprPtr left;
    DMX_RETURN_IF_ERROR(ParseNot(scope, &left));
    while (TakeKw("AND")) {
      ExprPtr right;
      DMX_RETURN_IF_ERROR(ParseNot(scope, &right));
      left = Expr::And(left, right);
    }
    *out = left;
    return Status::OK();
  }

  Status ParseNot(const NameScope& scope, ExprPtr* out) {
    if (TakeKw("NOT")) {
      ExprPtr inner;
      DMX_RETURN_IF_ERROR(ParseNot(scope, &inner));
      *out = Expr::Unary(ExprOp::kNot, inner);
      return Status::OK();
    }
    return ParseComparison(scope, out);
  }

  Status ParseComparison(const NameScope& scope, ExprPtr* out) {
    ExprPtr left;
    DMX_RETURN_IF_ERROR(ParseAdditive(scope, &left));
    if (TakeKw("IS")) {
      bool negated = TakeKw("NOT");
      DMX_RETURN_IF_ERROR(ExpectKw("NULL"));
      ExprPtr test = Expr::Unary(ExprOp::kIsNull, left);
      *out = negated ? Expr::Unary(ExprOp::kNot, test) : test;
      return Status::OK();
    }
    if (TakeKw("LIKE")) {
      ExprPtr right;
      DMX_RETURN_IF_ERROR(ParseAdditive(scope, &right));
      *out = Expr::Binary(ExprOp::kLike, left, right);
      return Status::OK();
    }
    if (TakeKw("BETWEEN")) {
      ExprPtr lo, hi;
      DMX_RETURN_IF_ERROR(ParseAdditive(scope, &lo));
      DMX_RETURN_IF_ERROR(ExpectKw("AND"));
      DMX_RETURN_IF_ERROR(ParseAdditive(scope, &hi));
      *out = Expr::And(Expr::Binary(ExprOp::kGe, left, lo),
                       Expr::Binary(ExprOp::kLe, left, hi));
      return Status::OK();
    }
    if (TakeKw("IN")) {
      DMX_RETURN_IF_ERROR(ExpectSym("("));
      std::vector<ExprPtr> alternatives;
      while (true) {
        ExprPtr option;
        DMX_RETURN_IF_ERROR(ParseAdditive(scope, &option));
        alternatives.push_back(Expr::Binary(ExprOp::kEq, left, option));
        if (TakeSym(",")) continue;
        DMX_RETURN_IF_ERROR(ExpectSym(")"));
        break;
      }
      ExprPtr any = alternatives[0];
      for (size_t i = 1; i < alternatives.size(); ++i) {
        any = Expr::Or(any, alternatives[i]);
      }
      *out = any;
      return Status::OK();
    }
    struct {
      const char* sym;
      ExprOp op;
    } kOps[] = {{"<=", ExprOp::kLe}, {">=", ExprOp::kGe},
                {"<>", ExprOp::kNe}, {"=", ExprOp::kEq},
                {"<", ExprOp::kLt},  {">", ExprOp::kGt}};
    for (const auto& candidate : kOps) {
      if (TakeSym(candidate.sym)) {
        ExprPtr right;
        DMX_RETURN_IF_ERROR(ParseAdditive(scope, &right));
        *out = Expr::Binary(candidate.op, left, right);
        return Status::OK();
      }
    }
    *out = left;
    return Status::OK();
  }

  Status ParseAdditive(const NameScope& scope, ExprPtr* out) {
    ExprPtr left;
    DMX_RETURN_IF_ERROR(ParseMultiplicative(scope, &left));
    while (true) {
      if (TakeSym("+")) {
        ExprPtr right;
        DMX_RETURN_IF_ERROR(ParseMultiplicative(scope, &right));
        left = Expr::Binary(ExprOp::kAdd, left, right);
      } else if (TakeSym("-")) {
        ExprPtr right;
        DMX_RETURN_IF_ERROR(ParseMultiplicative(scope, &right));
        left = Expr::Binary(ExprOp::kSub, left, right);
      } else {
        break;
      }
    }
    *out = left;
    return Status::OK();
  }

  Status ParseMultiplicative(const NameScope& scope, ExprPtr* out) {
    ExprPtr left;
    DMX_RETURN_IF_ERROR(ParsePrimary(scope, &left));
    while (true) {
      if (TakeSym("*")) {
        ExprPtr right;
        DMX_RETURN_IF_ERROR(ParsePrimary(scope, &right));
        left = Expr::Binary(ExprOp::kMul, left, right);
      } else if (TakeSym("/")) {
        ExprPtr right;
        DMX_RETURN_IF_ERROR(ParsePrimary(scope, &right));
        left = Expr::Binary(ExprOp::kDiv, left, right);
      } else {
        break;
      }
    }
    *out = left;
    return Status::OK();
  }

  Status ParsePrimary(const NameScope& scope, ExprPtr* out) {
    const Token& t = Peek();
    if (t.IsSym("(")) {
      Take();
      DMX_RETURN_IF_ERROR(ParseExpr(scope, out));
      return ExpectSym(")");
    }
    if (t.type == TokType::kNumber) {
      std::string text = Take().text;
      if (text.find('.') != std::string::npos) {
        *out = Expr::Const(Value::Double(std::stod(text)));
      } else {
        *out = Expr::Const(Value::Int(std::stoll(text)));
      }
      return Status::OK();
    }
    if (t.type == TokType::kString) {
      *out = Expr::Const(Value::String(Take().text));
      return Status::OK();
    }
    if (t.IsKw("TRUE")) {
      Take();
      *out = Expr::Const(Value::Bool(true));
      return Status::OK();
    }
    if (t.IsKw("FALSE")) {
      Take();
      *out = Expr::Const(Value::Bool(false));
      return Status::OK();
    }
    if (t.IsKw("NULL")) {
      Take();
      *out = Expr::Const(Value::Null());
      return Status::OK();
    }
    if (t.IsSym("?")) {
      Take();
      *out = Expr::Param(next_param_++);
      return Status::OK();
    }
    if (t.type == TokType::kIdent) {
      std::string first = Take().text;
      std::string qualifier, column;
      if (TakeSym(".")) {
        qualifier = first;
        DMX_RETURN_IF_ERROR(ExpectIdent(&column));
      } else {
        column = first;
      }
      int index;
      DMX_RETURN_IF_ERROR(scope.Resolve(qualifier, column, &index));
      *out = Expr::Field(index);
      return Status::OK();
    }
    return Status::InvalidArgument("unexpected token '" + t.text + "'");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  int next_param_ = 0;
};

// Parse a literal Value (INSERT tuples).
Status ParseLiteral(Parser* p, Value* out) {
  const Token& t = p->Peek();
  if (t.type == TokType::kNumber) {
    std::string text = p->Take().text;
    if (text.find('.') != std::string::npos) {
      *out = Value::Double(std::stod(text));
    } else {
      *out = Value::Int(std::stoll(text));
    }
    return Status::OK();
  }
  if (t.type == TokType::kString) {
    *out = Value::String(p->Take().text);
    return Status::OK();
  }
  if (t.IsKw("TRUE")) {
    p->Take();
    *out = Value::Bool(true);
    return Status::OK();
  }
  if (t.IsKw("FALSE")) {
    p->Take();
    *out = Value::Bool(false);
    return Status::OK();
  }
  if (t.IsKw("NULL")) {
    p->Take();
    *out = Value::Null();
    return Status::OK();
  }
  return Status::InvalidArgument("expected literal near '" + t.text + "'");
}

std::string Upper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// Friend of Session; implements each statement kind.
class SqlExecutor {
 public:
  SqlExecutor(Session* session, const std::string& sql)
      : session_(session), db_(session->db_), sql_(sql) {}

  Status Run(QueryResult* result) {
    std::vector<Token> tokens;
    DMX_RETURN_IF_ERROR(Lexer(sql_).Tokenize(&tokens));
    parser_ = std::make_unique<Parser>(std::move(tokens));
    Parser& p = *parser_;

    if (p.TakeKw("EXPLAIN")) {
      // EXPLAIN shows the bound plan without running it; EXPLAIN ANALYZE
      // runs the query and reports per-operator row counts and wall time.
      analyze_ = p.TakeKw("ANALYZE");
      explain_ = !analyze_;
      DMX_RETURN_IF_ERROR(p.ExpectKw("SELECT"));
      return Select(result);
    }
    if (p.TakeKw("GRANT")) return GrantStmt(result, /*grant=*/true);
    if (p.TakeKw("REVOKE")) return GrantStmt(result, /*grant=*/false);
    if (p.TakeKw("SET")) {
      if (p.TakeKw("DURABILITY")) {
        bool relaxed;
        if (p.TakeKw("STRICT")) {
          relaxed = false;
        } else if (p.TakeKw("RELAXED")) {
          relaxed = true;
        } else {
          return Status::InvalidArgument(
              "expected STRICT or RELAXED after SET DURABILITY");
        }
        session_->has_durability_override_ = true;
        session_->relaxed_durability_ = relaxed;
        // The open transaction's commit is what the user is about to run:
        // apply the new mode to it as well, not just to future begins.
        if (session_->txn_ != nullptr) {
          session_->txn_->set_relaxed_durability(relaxed);
        }
        result->message =
            std::string("SET DURABILITY ") + (relaxed ? "RELAXED" : "STRICT");
        return Status::OK();
      }
      DMX_RETURN_IF_ERROR(p.ExpectKw("USER"));
      std::string user;
      DMX_RETURN_IF_ERROR(p.ExpectIdent(&user));
      session_->set_user(user);
      result->message = "SET USER " + user;
      return Status::OK();
    }
    if (p.TakeKw("CHECKPOINT")) {
      DMX_RETURN_IF_ERROR(db_->Checkpoint());
      result->message = "CHECKPOINT";
      return Status::OK();
    }
    if (p.TakeKw("BACKUP")) return BackupStmt(result);
    if (p.TakeKw("RESTORE")) return RestoreStmt(result);
    if (p.TakeKw("CHECK")) return CheckStmt(result);
    if (p.TakeKw("REPAIR")) return RepairStmt(result);
    if (p.TakeKw("BEGIN")) return Begin(result);
    if (p.TakeKw("COMMIT")) return Commit(result);
    if (p.TakeKw("ROLLBACK")) {
      if (p.TakeKw("TO")) return RollbackTo(result);
      return Rollback(result);
    }
    if (p.TakeKw("SAVEPOINT")) return SavepointStmt(result);
    if (p.TakeKw("CREATE")) {
      if (p.TakeKw("TABLE")) return CreateTable(result);
      if (p.TakeKw("ATTACHMENT")) return CreateAttachmentStmt(result);
      bool unique = p.TakeKw("UNIQUE");
      if (p.TakeKw("INDEX")) return CreateIndex(unique, result);
      return Status::InvalidArgument(
          "expected TABLE, INDEX, or ATTACHMENT after CREATE");
    }
    if (p.TakeKw("ALTER")) {
      DMX_RETURN_IF_ERROR(p.ExpectKw("TABLE"));
      return AlterTable(result);
    }
    if (p.TakeKw("DESCRIBE")) return Describe(result);
    if (p.TakeKw("DROP")) {
      DMX_RETURN_IF_ERROR(p.ExpectKw("TABLE"));
      return DropTable(result);
    }
    if (p.TakeKw("INSERT")) return Insert(result);
    if (p.TakeKw("SELECT")) return Select(result);
    if (p.TakeKw("UPDATE")) return Update(result);
    if (p.TakeKw("DELETE")) return Delete(result);
    return Status::InvalidArgument("unrecognized statement");
  }

 private:
  // Runs `fn` in the session transaction, or an autocommit one.
  // Begins a transaction as the session user, applying the session's
  // SET DURABILITY override (when set) over the database default.
  Transaction* BeginSessionTxn() {
    Transaction* txn = db_->BeginAs(session_->user());
    if (session_->has_durability_override_) {
      txn->set_relaxed_durability(session_->relaxed_durability_);
    }
    return txn;
  }

  template <typename Fn>
  Status InTxn(Fn&& fn) {
    if (session_->txn_ != nullptr) return fn(session_->txn_);
    Transaction* txn = BeginSessionTxn();
    Status s = fn(txn);
    if (s.ok()) {
      s = db_->Commit(txn);
      if (s.ok()) return s;
      // A failed commit (e.g. WAL I/O failure degrading the database) leaves
      // the transaction active and holding locks; release them — the commit
      // error is what the caller must see, and the txn cannot be retried.
    }
    // Drop the failed txn's locks; s already records the commit error.
    if (txn->active()) (void)db_->Abort(txn);
    return s;
  }

  Status Begin(QueryResult* result) {
    if (session_->txn_ != nullptr) {
      return Status::InvalidArgument("transaction already open");
    }
    session_->txn_ = BeginSessionTxn();
    result->message = "BEGIN";
    return Status::OK();
  }

  Status Commit(QueryResult* result) {
    if (session_->txn_ == nullptr) {
      return Status::InvalidArgument("no open transaction");
    }
    Transaction* txn = session_->txn_;
    session_->txn_ = nullptr;
    Status s = db_->Commit(txn);
    if (!s.ok()) {
      // The session has already detached the txn and a failed commit cannot
      // be retried; abort so its locks don't outlive the statement.
      if (txn->active()) (void)db_->Abort(txn);
      return s;
    }
    result->message = "COMMIT";
    return Status::OK();
  }

  Status Rollback(QueryResult* result) {
    if (session_->txn_ == nullptr) {
      return Status::InvalidArgument("no open transaction");
    }
    Transaction* txn = session_->txn_;
    session_->txn_ = nullptr;
    DMX_RETURN_IF_ERROR(db_->Abort(txn));
    result->message = "ROLLBACK";
    return Status::OK();
  }

  Status SavepointStmt(QueryResult* result) {
    std::string name;
    DMX_RETURN_IF_ERROR(parser_->ExpectIdent(&name));
    if (session_->txn_ == nullptr) {
      return Status::InvalidArgument("no open transaction");
    }
    DMX_RETURN_IF_ERROR(db_->Savepoint(session_->txn_, name));
    result->message = "SAVEPOINT " + name;
    return Status::OK();
  }

  Status RollbackTo(QueryResult* result) {
    parser_->TakeKw("SAVEPOINT");
    std::string name;
    DMX_RETURN_IF_ERROR(parser_->ExpectIdent(&name));
    if (session_->txn_ == nullptr) {
      return Status::InvalidArgument("no open transaction");
    }
    DMX_RETURN_IF_ERROR(db_->RollbackToSavepoint(session_->txn_, name));
    result->message = "ROLLBACK TO " + name;
    return Status::OK();
  }

  Status GrantStmt(QueryResult* result, bool grant) {
    Parser& p = *parser_;
    uint8_t privileges = 0;
    while (true) {
      if (p.TakeKw("ALL")) {
        privileges |= kAllPrivileges;
      } else if (p.TakeKw("SELECT")) {
        privileges |= static_cast<uint8_t>(Privilege::kSelect);
      } else if (p.TakeKw("INSERT")) {
        privileges |= static_cast<uint8_t>(Privilege::kInsert);
      } else if (p.TakeKw("UPDATE")) {
        privileges |= static_cast<uint8_t>(Privilege::kUpdate);
      } else if (p.TakeKw("DELETE")) {
        privileges |= static_cast<uint8_t>(Privilege::kDelete);
      } else {
        return Status::InvalidArgument("expected privilege name");
      }
      if (!p.TakeSym(",")) break;
    }
    DMX_RETURN_IF_ERROR(p.ExpectKw("ON"));
    std::string table;
    DMX_RETURN_IF_ERROR(p.ExpectIdent(&table));
    DMX_RETURN_IF_ERROR(p.ExpectKw(grant ? "TO" : "FROM"));
    std::string user;
    DMX_RETURN_IF_ERROR(p.ExpectIdent(&user));
    const RelationDescriptor* desc;
    DMX_RETURN_IF_ERROR(db_->FindRelation(table, &desc));
    if (grant) {
      db_->authorization()->Grant(user, desc->id, privileges);
      result->message = "GRANT";
    } else {
      db_->authorization()->Revoke(user, desc->id, privileges);
      result->message = "REVOKE";
    }
    return Status::OK();
  }

  // CREATE ATTACHMENT ON t USING type [WITH (k = v, ...)] — the generic
  // DDL shape of the paper: a type name plus an attribute/value list
  // validated by the extension itself.
  Status CreateAttachmentStmt(QueryResult* result) {
    Parser& p = *parser_;
    DMX_RETURN_IF_ERROR(p.ExpectKw("ON"));
    std::string table, at_type;
    DMX_RETURN_IF_ERROR(p.ExpectIdent(&table));
    DMX_RETURN_IF_ERROR(p.ExpectKw("USING"));
    DMX_RETURN_IF_ERROR(p.ExpectIdent(&at_type));
    AttrList attrs;
    if (p.TakeKw("WITH")) {
      DMX_RETURN_IF_ERROR(p.ExpectSym("("));
      while (true) {
        std::string k;
        DMX_RETURN_IF_ERROR(p.ExpectIdent(&k));
        DMX_RETURN_IF_ERROR(p.ExpectSym("="));
        const Token& v = p.Peek();
        if (v.type != TokType::kIdent && v.type != TokType::kString &&
            v.type != TokType::kNumber) {
          return Status::InvalidArgument("bad attribute value");
        }
        attrs.Add(k, p.Take().text);
        if (p.TakeSym(",")) continue;
        DMX_RETURN_IF_ERROR(p.ExpectSym(")"));
        break;
      }
    }
    DMX_RETURN_IF_ERROR(InTxn([&](Transaction* txn) {
      return db_->CreateAttachment(txn, table, at_type, attrs);
    }));
    result->message = "CREATE ATTACHMENT ON " + table;
    return Status::OK();
  }

  // ALTER TABLE t ADD [DEFERRED] CHECK (expr) [NAME ident]
  //           | SET STORAGE sm [WITH (k = v, ...)]
  Status AlterTable(QueryResult* result) {
    Parser& p = *parser_;
    std::string table;
    DMX_RETURN_IF_ERROR(p.ExpectIdent(&table));
    if (p.TakeKw("SET")) {
      DMX_RETURN_IF_ERROR(p.ExpectKw("STORAGE"));
      std::string sm;
      DMX_RETURN_IF_ERROR(p.ExpectIdent(&sm));
      AttrList attrs;
      if (p.TakeKw("WITH")) {
        DMX_RETURN_IF_ERROR(p.ExpectSym("("));
        while (true) {
          std::string k;
          DMX_RETURN_IF_ERROR(p.ExpectIdent(&k));
          DMX_RETURN_IF_ERROR(p.ExpectSym("="));
          const Token& v = p.Peek();
          if (v.type != TokType::kIdent && v.type != TokType::kString &&
              v.type != TokType::kNumber) {
            return Status::InvalidArgument("bad attribute value");
          }
          attrs.Add(k, p.Take().text);
          if (p.TakeSym(",")) continue;
          DMX_RETURN_IF_ERROR(p.ExpectSym(")"));
          break;
        }
      }
      DMX_RETURN_IF_ERROR(InTxn([&](Transaction* txn) {
        return db_->ChangeStorageMethod(txn, table, sm, attrs);
      }));
      result->message = "ALTER TABLE " + table + " SET STORAGE " + sm;
      return Status::OK();
    }
    DMX_RETURN_IF_ERROR(p.ExpectKw("ADD"));
    bool deferred = p.TakeKw("DEFERRED");
    DMX_RETURN_IF_ERROR(p.ExpectKw("CHECK"));
    const RelationDescriptor* desc;
    DMX_RETURN_IF_ERROR(db_->FindRelation(table, &desc));
    NameScope scope;
    scope.Add(table, desc->schema, 0);
    DMX_RETURN_IF_ERROR(p.ExpectSym("("));
    ExprPtr predicate;
    DMX_RETURN_IF_ERROR(p.ParseExpr(scope, &predicate));
    DMX_RETURN_IF_ERROR(p.ExpectSym(")"));
    AttrList attrs;
    std::string encoded;
    predicate->EncodeTo(&encoded);
    attrs.Add("predicate", encoded);
    if (p.TakeKw("NAME")) {
      std::string name;
      DMX_RETURN_IF_ERROR(p.ExpectIdent(&name));
      attrs.Add("name", name);
    }
    const char* at_type = deferred ? "deferred_check" : "check";
    DMX_RETURN_IF_ERROR(InTxn([&](Transaction* txn) {
      return db_->CreateAttachment(txn, table, at_type, attrs);
    }));
    result->message = std::string("ALTER TABLE ") + table + " ADD " +
                      (deferred ? "DEFERRED CHECK" : "CHECK");
    return Status::OK();
  }

  // Administrative statements (BACKUP/RESTORE) are superuser-only: they
  // move whole-database state, which per-relation privileges cannot scope.
  Status RequireSuperuser(const char* what) {
    if (!session_->user().empty()) {
      return Status::Constraint("user '" + session_->user() + "' may not " +
                                what + " (superuser only)");
    }
    return Status::OK();
  }

  Status ExpectStringLit(const char* what, std::string* out) {
    if (parser_->Peek().type != TokType::kString) {
      return Status::InvalidArgument(std::string("expected a quoted ") + what +
                                     " near '" + parser_->Peek().text + "'");
    }
    *out = parser_->Take().text;
    return Status::OK();
  }

  // BACKUP TO 'dir': online fuzzy backup (writers keep running).
  Status BackupStmt(QueryResult* result) {
    DMX_RETURN_IF_ERROR(parser_->ExpectKw("TO"));
    std::string dir;
    DMX_RETURN_IF_ERROR(ExpectStringLit("directory", &dir));
    DMX_RETURN_IF_ERROR(RequireSuperuser("BACKUP"));
    BackupResult backup;
    DMX_RETURN_IF_ERROR(db_->Backup(dir, &backup));
    result->message = "BACKUP TO " + dir + ": " +
                      std::to_string(backup.files) + " file(s), " +
                      std::to_string(backup.pages) + " page(s), lsn " +
                      std::to_string(backup.begin_lsn) + " .. " +
                      std::to_string(backup.end_lsn);
    return Status::OK();
  }

  // RESTORE FROM 'backup' INTO 'dir' [ARCHIVE 'dir'] [TO LSN n]:
  // offline point-in-time recovery into a fresh directory.
  Status RestoreStmt(QueryResult* result) {
    DMX_RETURN_IF_ERROR(parser_->ExpectKw("FROM"));
    RestoreOptions opts;
    DMX_RETURN_IF_ERROR(ExpectStringLit("backup directory", &opts.backup_dir));
    DMX_RETURN_IF_ERROR(parser_->ExpectKw("INTO"));
    DMX_RETURN_IF_ERROR(ExpectStringLit("target directory", &opts.target_dir));
    if (parser_->TakeKw("ARCHIVE")) {
      DMX_RETURN_IF_ERROR(
          ExpectStringLit("archive directory", &opts.archive_dir));
    }
    if (parser_->TakeKw("TO")) {
      DMX_RETURN_IF_ERROR(parser_->ExpectKw("LSN"));
      if (parser_->Peek().type != TokType::kNumber) {
        return Status::InvalidArgument("expected an LSN near '" +
                                       parser_->Peek().text + "'");
      }
      const std::string text = parser_->Take().text;
      if (text.find('.') != std::string::npos) {
        return Status::InvalidArgument("LSN must be an integer");
      }
      opts.target_lsn = static_cast<Lsn>(std::stoull(text));
    }
    DMX_RETURN_IF_ERROR(RequireSuperuser("RESTORE"));
    opts.env = db_->env();
    Lsn replayed = 0;
    DMX_RETURN_IF_ERROR(Database::Restore(opts, &replayed));
    result->message = "RESTORE FROM " + opts.backup_dir + " INTO " +
                      opts.target_dir + ": replayed through lsn " +
                      std::to_string(replayed);
    return Status::OK();
  }

  // DESCRIBE t: render the extensible relation descriptor.
  Status Describe(QueryResult* result) {
    std::string table;
    DMX_RETURN_IF_ERROR(parser_->ExpectIdent(&table));
    const RelationDescriptor* desc;
    DMX_RETURN_IF_ERROR(db_->FindRelation(table, &desc));
    result->columns = {"property", "value"};
    auto add = [&](const std::string& k, const std::string& v) {
      result->rows.push_back({Value::String(k), Value::String(v)});
    };
    add("relation", desc->name + " (id " + std::to_string(desc->id) +
                        ", version " + std::to_string(desc->version) + ")");
    add("storage method",
        std::string(db_->registry()->sm_ops(desc->sm_id).name) + " (id " +
            std::to_string(desc->sm_id) + ", descriptor " +
            std::to_string(desc->sm_desc.size()) + " bytes)");
    for (size_t i = 0; i < desc->schema.num_columns(); ++i) {
      const Column& col = desc->schema.column(i);
      add("column " + std::to_string(i),
          col.name + " " + TypeName(col.type) +
              (col.nullable ? "" : " NOT NULL"));
    }
    for (AtId at = 0; at < db_->registry()->num_attachment_types(); ++at) {
      if (!desc->HasAttachment(at)) continue;
      const AtOps& ops = db_->registry()->at_ops(at);
      std::string detail = "descriptor field " + std::to_string(at);
      if (ops.instance_count != nullptr) {
        detail += ", " +
                  std::to_string(ops.instance_count(
                      Slice(desc->at_desc[at]))) +
                  " instance(s)";
      }
      add(std::string("attachment ") + ops.name, detail);
    }
    if (desc->sm_quarantined) {
      add("quarantine", "storage: " + desc->sm_quarantine_reason);
    }
    for (const RelationDescriptor::QuarantineEntry& q : desc->quarantined) {
      add("quarantine",
          std::string(db_->registry()->at_ops(q.at).name) + "#" +
              std::to_string(q.instance) + ": " + q.reason);
    }
    if (db_->degraded()) {
      add("db.degraded",
          "read-only (" + db_->error_handler()->degraded_reason() +
              "); background recovery in progress");
    }
    const uint64_t unflushed = db_->unflushed_commits();
    if (unflushed > 0) {
      add("db.unflushed_commits",
          std::to_string(unflushed) +
              " relaxed commit(s) acknowledged, not yet durable");
    }
    if (db_->last_backup_lsn() > 0) {
      add("db.last_backup_lsn", std::to_string(db_->last_backup_lsn()));
    }
    if (db_->archiver() != nullptr) {
      const uint64_t lag = db_->archive_lag();
      add("db.archive_lag",
          std::to_string(lag) + " sealed segment(s) awaiting archive" +
              (lag > 0 ? " (retained until archived)" : ""));
    }
    return Status::OK();
  }

  // CHECK t: run every registered verify op and report findings.
  Status CheckStmt(QueryResult* result) {
    std::string table;
    DMX_RETURN_IF_ERROR(parser_->ExpectIdent(&table));
    CheckResult check;
    DMX_RETURN_IF_ERROR(InTxn([&](Transaction* txn) {
      return db_->CheckRelation(txn, table, &check);
    }));
    result->columns = {"component", "status", "detail"};
    auto add = [&](const std::string& c, const std::string& s,
                   const std::string& d) {
      result->rows.push_back(
          {Value::String(c), Value::String(s), Value::String(d)});
    };
    for (const CheckFinding& f : check.findings) {
      add(f.component, "damaged", f.detail);
    }
    for (const std::string& q : check.quarantined) {
      add(q, "quarantined", "access path disabled until REPAIR");
    }
    for (const std::string& c : check.cleared) {
      add(c, "cleared", "verified clean; quarantine lifted");
    }
    result->message =
        check.clean
            ? "CHECK " + table + ": clean (" + std::to_string(check.items) +
                  " items verified)"
            : "CHECK " + table + ": " +
                  std::to_string(check.findings.size()) + " finding(s)";
    return Status::OK();
  }

  // REPAIR t: rebuild quarantined attachment instances from the base
  // relation and lift their quarantine on success.
  Status RepairStmt(QueryResult* result) {
    std::string table;
    DMX_RETURN_IF_ERROR(parser_->ExpectIdent(&table));
    RepairResult rep;
    DMX_RETURN_IF_ERROR(InTxn([&](Transaction* txn) {
      return db_->RepairRelation(txn, table, &rep);
    }));
    result->columns = {"component", "status"};
    for (const std::string& r : rep.repaired) {
      result->rows.push_back({Value::String(r), Value::String("repaired")});
    }
    for (const std::string& u : rep.unrepaired) {
      result->rows.push_back({Value::String(u), Value::String("unrepaired")});
    }
    result->message =
        rep.unrepaired.empty()
            ? "REPAIR " + table + ": " + std::to_string(rep.repaired.size()) +
                  " component(s) repaired"
            : "REPAIR " + table + ": " +
                  std::to_string(rep.unrepaired.size()) +
                  " component(s) still damaged";
    return Status::OK();
  }

  Status CreateTable(QueryResult* result) {
    Parser& p = *parser_;
    std::string name;
    DMX_RETURN_IF_ERROR(p.ExpectIdent(&name));
    DMX_RETURN_IF_ERROR(p.ExpectSym("("));
    std::vector<Column> columns;
    while (true) {
      Column col;
      DMX_RETURN_IF_ERROR(p.ExpectIdent(&col.name));
      std::string type;
      DMX_RETURN_IF_ERROR(p.ExpectIdent(&type));
      std::string ut = Upper(type);
      if (ut == "INT" || ut == "INTEGER" || ut == "BIGINT") {
        col.type = TypeId::kInt64;
      } else if (ut == "DOUBLE" || ut == "FLOAT" || ut == "REAL") {
        col.type = TypeId::kDouble;
      } else if (ut == "STRING" || ut == "TEXT" || ut == "VARCHAR") {
        col.type = TypeId::kString;
        // Tolerate VARCHAR(n).
        if (p.TakeSym("(")) {
          p.Take();
          DMX_RETURN_IF_ERROR(p.ExpectSym(")"));
        }
      } else if (ut == "BOOL" || ut == "BOOLEAN") {
        col.type = TypeId::kBool;
      } else {
        return Status::InvalidArgument("unknown type '" + type + "'");
      }
      if (p.TakeKw("NOT")) {
        DMX_RETURN_IF_ERROR(p.ExpectKw("NULL"));
        col.nullable = false;
      }
      columns.push_back(std::move(col));
      if (p.TakeSym(",")) continue;
      DMX_RETURN_IF_ERROR(p.ExpectSym(")"));
      break;
    }
    std::string sm = "heap";
    AttrList attrs;
    if (p.TakeKw("USING")) {
      DMX_RETURN_IF_ERROR(p.ExpectIdent(&sm));
      if (p.TakeKw("WITH")) {
        DMX_RETURN_IF_ERROR(p.ExpectSym("("));
        while (true) {
          std::string k;
          DMX_RETURN_IF_ERROR(p.ExpectIdent(&k));
          DMX_RETURN_IF_ERROR(p.ExpectSym("="));
          const Token& v = p.Peek();
          if (v.type != TokType::kIdent && v.type != TokType::kString &&
              v.type != TokType::kNumber) {
            return Status::InvalidArgument("bad attribute value");
          }
          attrs.Add(k, p.Take().text);
          if (p.TakeSym(",")) continue;
          DMX_RETURN_IF_ERROR(p.ExpectSym(")"));
          break;
        }
      }
    }
    DMX_RETURN_IF_ERROR(InTxn([&](Transaction* txn) {
      return db_->CreateRelation(txn, name, Schema(std::move(columns)), sm,
                                 attrs);
    }));
    result->message = "CREATE TABLE " + name;
    return Status::OK();
  }

  Status DropTable(QueryResult* result) {
    std::string name;
    DMX_RETURN_IF_ERROR(parser_->ExpectIdent(&name));
    DMX_RETURN_IF_ERROR(InTxn(
        [&](Transaction* txn) { return db_->DropRelation(txn, name); }));
    result->message = "DROP TABLE " + name;
    return Status::OK();
  }

  Status CreateIndex(bool unique, QueryResult* result) {
    Parser& p = *parser_;
    DMX_RETURN_IF_ERROR(p.ExpectKw("ON"));
    std::string table;
    DMX_RETURN_IF_ERROR(p.ExpectIdent(&table));
    DMX_RETURN_IF_ERROR(p.ExpectSym("("));
    std::string fields;
    while (true) {
      std::string col;
      DMX_RETURN_IF_ERROR(p.ExpectIdent(&col));
      if (!fields.empty()) fields += ",";
      fields += col;
      if (p.TakeSym(",")) continue;
      DMX_RETURN_IF_ERROR(p.ExpectSym(")"));
      break;
    }
    std::string at_type = "btree_index";
    if (p.TakeKw("USING")) {
      DMX_RETURN_IF_ERROR(p.ExpectIdent(&at_type));
    }
    AttrList attrs;
    attrs.Add("fields", fields);
    if (unique) attrs.Add("unique", "1");
    DMX_RETURN_IF_ERROR(InTxn([&](Transaction* txn) {
      return db_->CreateAttachment(txn, table, at_type, attrs);
    }));
    result->message = "CREATE INDEX ON " + table;
    return Status::OK();
  }

  Status Insert(QueryResult* result) {
    Parser& p = *parser_;
    DMX_RETURN_IF_ERROR(p.ExpectKw("INTO"));
    std::string table;
    DMX_RETURN_IF_ERROR(p.ExpectIdent(&table));
    DMX_RETURN_IF_ERROR(p.ExpectKw("VALUES"));
    std::vector<std::vector<Value>> tuples;
    while (true) {
      DMX_RETURN_IF_ERROR(p.ExpectSym("("));
      std::vector<Value> tuple;
      while (true) {
        Value v;
        DMX_RETURN_IF_ERROR(ParseLiteral(&p, &v));
        tuple.push_back(std::move(v));
        if (p.TakeSym(",")) continue;
        DMX_RETURN_IF_ERROR(p.ExpectSym(")"));
        break;
      }
      tuples.push_back(std::move(tuple));
      if (!p.TakeSym(",")) break;
    }
    int64_t inserted = 0;
    DMX_RETURN_IF_ERROR(InTxn([&](Transaction* txn) -> Status {
      for (const auto& tuple : tuples) {
        DMX_RETURN_IF_ERROR(db_->Insert(txn, table, tuple));
        ++inserted;
      }
      return Status::OK();
    }));
    result->affected = inserted;
    result->message = "INSERT " + std::to_string(inserted);
    return Status::OK();
  }

  // SELECT --------------------------------------------------------------

  struct SelectItem {
    bool star = false;
    AggKind agg = AggKind::kCount;
    bool is_agg = false;
    std::string qualifier, column;
    std::string label;
  };

  Status Select(QueryResult* result) {
    Parser& p = *parser_;
    std::vector<SelectItem> items;
    DMX_RETURN_IF_ERROR(ParseSelectList(&items));
    DMX_RETURN_IF_ERROR(p.ExpectKw("FROM"));
    std::string t1, t2;
    DMX_RETURN_IF_ERROR(p.ExpectIdent(&t1));
    bool join = p.TakeSym(",");
    if (join) DMX_RETURN_IF_ERROR(p.ExpectIdent(&t2));

    const RelationDescriptor *d1, *d2 = nullptr;
    DMX_RETURN_IF_ERROR(db_->FindRelation(t1, &d1));
    NameScope scope;
    scope.Add(t1, d1->schema, 0);
    if (join) {
      DMX_RETURN_IF_ERROR(db_->FindRelation(t2, &d2));
      scope.Add(t2, d2->schema, static_cast<int>(d1->schema.num_columns()));
    }

    ExprPtr where;
    if (p.TakeKw("WHERE")) {
      DMX_RETURN_IF_ERROR(p.ParseExpr(scope, &where));
    }
    int order_col = -1;
    bool order_desc = false;
    if (p.TakeKw("ORDER")) {
      DMX_RETURN_IF_ERROR(p.ExpectKw("BY"));
      std::string first, column, qualifier;
      DMX_RETURN_IF_ERROR(p.ExpectIdent(&first));
      if (p.TakeSym(".")) {
        qualifier = first;
        DMX_RETURN_IF_ERROR(p.ExpectIdent(&column));
      } else {
        column = first;
      }
      DMX_RETURN_IF_ERROR(scope.Resolve(qualifier, column, &order_col));
      if (p.TakeKw("DESC")) {
        order_desc = true;
      } else {
        p.TakeKw("ASC");
      }
    }
    int64_t limit = -1;
    if (p.TakeKw("LIMIT")) {
      if (p.Peek().type != TokType::kNumber) {
        return Status::InvalidArgument("LIMIT expects a number");
      }
      limit = std::stoll(p.Take().text);
    }
    if (!p.AtEnd()) {
      return Status::InvalidArgument("trailing tokens near '" +
                                     p.Peek().text + "'");
    }

    // Which record fields does this query read? (projection + predicate +
    // order column). A '*' or COUNT(*) needs everything -> no list.
    std::vector<int> needed;
    bool needed_known = true;
    for (const SelectItem& item : items) {
      if (item.star && !item.is_agg) {
        needed_known = false;
        break;
      }
      if (item.star) continue;  // COUNT(*): no field read
      int index;
      DMX_RETURN_IF_ERROR(scope.Resolve(item.qualifier, item.column, &index));
      needed.push_back(index);
    }
    if (order_col >= 0) needed.push_back(order_col);

    return InTxn([&](Transaction* txn) -> Status {
      std::unique_ptr<RowSource> source;
      std::shared_ptr<const BoundPlan> plan_holder;
      if (!join) {
        DMX_RETURN_IF_ERROR(BuildSingle(txn, t1, where,
                                        needed_known ? &needed : nullptr,
                                        &plan_holder, &source));
      } else {
        DMX_RETURN_IF_ERROR(
            BuildJoin(txn, d1, d2, where, &plan_holder, &source));
      }
      if (explain_) {
        result->columns = {"access_path", "est_cost", "selectivity"};
        const AccessPlan& access = plan_holder->access;
        result->rows.push_back(
            {Value::String(access.DebugString(db_->registry())),
             Value::Double(access.cost.total()),
             Value::Double(access.cost.selectivity)});
        if (join) {
          result->rows.push_back(
              {Value::String("join method: " + join_method_), Value::Null(),
               Value::Null()});
        }
        if (access.parallel_workers >= 2) {
          result->rows.push_back(
              {Value::String("parallel workers: " +
                             std::to_string(access.parallel_workers)),
               Value::Null(), Value::Null()});
        }
        // Surface degraded plans: quarantined access paths were skipped
        // during enumeration, so the chosen path routes around damage.
        for (const RelationDescriptor* d : {d1, d2}) {
          if (d == nullptr) continue;
          for (const RelationDescriptor::QuarantineEntry& q : d->quarantined) {
            result->rows.push_back(
                {Value::String(
                     "quarantined (not considered): " +
                     std::string(db_->registry()->at_ops(q.at).name) + "#" +
                     std::to_string(q.instance) + " on " + d->name),
                 Value::Null(), Value::Null()});
          }
        }
        return Status::OK();
      }
      if (analyze_) {
        // Run the query to completion, then report the operator tree
        // (root first, children indented) instead of the result rows.
        QueryResult scratch;
        DMX_RETURN_IF_ERROR(Materialize(std::move(source), items, scope, d1,
                                        d2, order_col, order_desc, limit,
                                        &scratch));
        profile_.FinalizeRowsIn();
        result->columns = {"operator", "rows_in", "rows_out", "time_ms"};
        if (!profile_.ops.empty()) {
          EmitProfileNode(profile_.ops.size() - 1, 0, result);
        }
        result->affected = scratch.affected;
        return Status::OK();
      }
      return Materialize(std::move(source), items, scope, d1, d2,
                         order_col, order_desc, limit, result);
    });
  }

  Status ParseSelectList(std::vector<SelectItem>* items) {
    Parser& p = *parser_;
    if (p.TakeSym("*")) {
      SelectItem star_item;
      star_item.star = true;
      items->push_back(std::move(star_item));
      return Status::OK();
    }
    while (true) {
      SelectItem item;
      const Token& t = p.Peek();
      auto agg_of = [](const Token& tok, AggKind* kind) {
        if (tok.IsKw("COUNT")) *kind = AggKind::kCount;
        else if (tok.IsKw("SUM")) *kind = AggKind::kSum;
        else if (tok.IsKw("AVG")) *kind = AggKind::kAvg;
        else if (tok.IsKw("MIN")) *kind = AggKind::kMin;
        else if (tok.IsKw("MAX")) *kind = AggKind::kMax;
        else return false;
        return true;
      };
      AggKind kind;
      if (t.type == TokType::kIdent && p.Peek(1).IsSym("(") &&
          agg_of(t, &kind)) {
        item.is_agg = true;
        item.agg = kind;
        item.label = Upper(t.text);
        p.Take();
        p.Take();  // '('
        if (kind == AggKind::kCount && p.TakeSym("*")) {
          item.star = true;
        } else {
          std::string first;
          DMX_RETURN_IF_ERROR(p.ExpectIdent(&first));
          if (p.TakeSym(".")) {
            item.qualifier = first;
            DMX_RETURN_IF_ERROR(p.ExpectIdent(&item.column));
          } else {
            item.column = first;
          }
          item.label += "(" + item.column + ")";
        }
        DMX_RETURN_IF_ERROR(p.ExpectSym(")"));
      } else {
        std::string first;
        DMX_RETURN_IF_ERROR(p.ExpectIdent(&first));
        if (p.TakeSym(".")) {
          item.qualifier = first;
          DMX_RETURN_IF_ERROR(p.ExpectIdent(&item.column));
        } else {
          item.column = first;
        }
        item.label = item.column;
      }
      items->push_back(std::move(item));
      if (!p.TakeSym(",")) break;
    }
    return Status::OK();
  }

  Status BuildSingle(Transaction* txn, const std::string& table,
                     const ExprPtr& where,
                     const std::vector<int>* needed_fields,
                     std::shared_ptr<const BoundPlan>* plan_holder,
                     std::unique_ptr<RowSource>* source) {
    DMX_RETURN_IF_ERROR(session_->plans_.GetAccessPlan(
        txn, table, where, /*key=*/sql_, plan_holder, needed_fields));
    const AccessPlan& access = (*plan_holder)->access;
    if (access.parallel_workers >= 2) {
      // Exchange operator over the storage method's partitioned scan; the
      // filter runs below the exchange inside each worker's scan.
      auto psrc = std::make_unique<ParallelScanSource>(
          db_, txn, plan_holder->get(), access.parallel_workers);
      parallel_src_ = psrc.get();
      std::vector<size_t> worker_nodes;
      if (analyze_) {
        for (int i = 0; i < access.parallel_workers; ++i) {
          worker_nodes.push_back(
              profile_.Add("worker " + std::to_string(i)));
        }
        psrc->EnableProfile(&profile_, worker_nodes);
      }
      *source = std::move(psrc);
      *source = Profiled(
          std::move(*source),
          "parallel_scan(" + table + "): " +
              access.DebugString(db_->registry()) + " [" +
              std::to_string(access.parallel_workers) + " workers]",
          std::move(worker_nodes));
      return Status::OK();
    }
    *source = std::make_unique<AccessSource>(db_, txn, plan_holder->get());
    *source = Profiled(
        std::move(*source),
        "access(" + table + "): " +
            (*plan_holder)->access.DebugString(db_->registry()));
    return Status::OK();
  }

  // Find an equality conjunct t1.col = t2.col between the two relations.
  static bool FindEquiJoin(const ExprPtr& where, size_t left_width,
                           int* left_col, int* right_col,
                           std::vector<ExprPtr>* rest) {
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(where, &conjuncts);
    bool found = false;
    for (const ExprPtr& c : conjuncts) {
      if (!found && c->op() == ExprOp::kEq && c->children().size() == 2 &&
          c->child(0)->op() == ExprOp::kField &&
          c->child(1)->op() == ExprOp::kField) {
        int a = c->child(0)->field_index();
        int b = c->child(1)->field_index();
        int lw = static_cast<int>(left_width);
        if (a < lw && b >= lw) {
          *left_col = a;
          *right_col = b - lw;
          found = true;
          continue;
        }
        if (b < lw && a >= lw) {
          *left_col = b;
          *right_col = a - lw;
          found = true;
          continue;
        }
      }
      rest->push_back(c);
    }
    return found;
  }

  // Pick an index access path on `desc` keyed by exactly `field`.
  bool FindJoinIndexPath(Transaction* txn, const RelationDescriptor* desc,
                         int field, AccessPathId* out) {
    const ExtensionRegistry* registry = db_->registry();
    for (const char* name : {"hash_index", "btree_index"}) {
      int at = registry->FindAttachmentType(name);
      if (at < 0 || !desc->HasAttachment(static_cast<AtId>(at))) continue;
      const AtOps& ops = registry->at_ops(static_cast<AtId>(at));
      if (ops.list_instances == nullptr || ops.cost == nullptr) continue;
      std::vector<uint32_t> instances;
      if (!ops.list_instances(Slice(desc->at_desc[at]), &instances).ok()) {
        continue;
      }
      // Probe relevance with a synthetic equality predicate on the field.
      std::vector<ExprPtr> probe = {
          Expr::Cmp(ExprOp::kEq, field, Value::Int(0))};
      for (uint32_t inst : instances) {
        AccessCost cost;
        AccessPathId path = AccessPathId::Attachment(static_cast<AtId>(at),
                                                     inst);
        if (db_->EstimateCost(txn, desc, path, probe, &cost).ok() &&
            cost.usable) {
          *out = path;
          return true;
        }
      }
    }
    return false;
  }

  Status BuildJoin(Transaction* txn, const RelationDescriptor* d1,
                   const RelationDescriptor* d2, const ExprPtr& where,
                   std::shared_ptr<const BoundPlan>* plan_holder,
                   std::unique_ptr<RowSource>* source) {
    int left_col = -1, right_col = -1;
    std::vector<ExprPtr> rest;
    bool equi = FindEquiJoin(where, d1->schema.num_columns(), &left_col,
                             &right_col, &rest);

    // Outer side: full scan of d1 with its single-relation conjuncts...
    // (kept simple: outer scans everything; residual applies post-join).
    auto outer_plan = std::make_shared<BoundPlan>();
    outer_plan->relation = *d1;
    outer_plan->dependencies = {{d1->id, d1->version}};
    DMX_RETURN_IF_ERROR(
        PlanAccess(db_, txn, d1, nullptr, &outer_plan->access));
    *plan_holder = outer_plan;
    std::unique_ptr<RowSource> outer =
        std::make_unique<AccessSource>(db_, txn, outer_plan.get());
    outer = Profiled(std::move(outer),
                     "access(" + d1->name + "): " +
                         outer_plan->access.DebugString(db_->registry()));
    const size_t outer_idx = top_idx_;

    if (equi) {
      AccessPathId inner_path;
      if (FindJoinIndexPath(txn, d2, right_col, &inner_path)) {
        join_method_ = std::string("index nested loop (inner ") +
                       db_->registry()->at_ops(inner_path.at_id()).name +
                       "#" + std::to_string(inner_path.instance) + ")";
        std::unique_ptr<RowSource> join = std::make_unique<IndexJoinSource>(
            db_, txn, std::move(outer), d2, inner_path,
            std::vector<int>{left_col});
        join = Profiled(std::move(join),
                        "index_join(" + d2->name + "): " + join_method_,
                        {outer_idx});
        ExprPtr residual = JoinConjuncts(rest);
        if (residual != nullptr) {
          const size_t join_idx = top_idx_;
          *source = std::make_unique<FilterSource>(db_, std::move(join),
                                                   residual);
          *source = Profiled(std::move(*source), "filter(residual)",
                             {join_idx});
        } else {
          *source = std::move(join);
        }
        return Status::OK();
      }
    }

    // Plain nested loop with the whole predicate on combined rows.
    join_method_ = "nested loop (inner rescanned per outer row)";
    Database* db = db_;
    const RelationDescriptor* inner_desc = d2;
    auto inner_plan = std::make_shared<BoundPlan>();
    inner_plan->relation = *d2;
    inner_plan->dependencies = {{d2->id, d2->version}};
    DMX_RETURN_IF_ERROR(
        PlanAccess(db_, txn, d2, nullptr, &inner_plan->access));
    // Every rescan of the inner accumulates into one profile node, so the
    // paper's call-amplification shows up as rows_out >> the table size.
    size_t inner_idx = 0;
    if (analyze_) {
      inner_idx = profile_.Add(
          "access(" + d2->name + "): " +
          inner_plan->access.DebugString(db_->registry()) +
          " [rescanned per outer row]");
    }
    const bool analyze = analyze_;
    PlanProfile* profile = &profile_;
    auto factory = [db, txn, inner_plan, analyze, profile, inner_idx](
                       std::unique_ptr<RowSource>* out) -> Status {
      *out = std::make_unique<AccessSource>(db, txn, inner_plan.get());
      if (analyze) {
        *out = std::make_unique<ProfiledSource>(std::move(*out), profile,
                                                inner_idx);
      }
      return Status::OK();
    };
    (void)inner_desc;
    *source = std::make_unique<NestedLoopJoinSource>(
        db_, std::move(outer), std::move(factory), where);
    *source = Profiled(std::move(*source), "nested_loop_join",
                       {outer_idx, inner_idx});
    return Status::OK();
  }

  Status Materialize(std::unique_ptr<RowSource> source,
                     const std::vector<SelectItem>& items,
                     const NameScope& scope, const RelationDescriptor* d1,
                     const RelationDescriptor* d2, int order_col,
                     bool order_desc, int64_t limit, QueryResult* result) {
    // Aggregates: single aggregate item supported.
    if (items.size() == 1 && items[0].is_agg) {
      int column = 0;
      if (!items[0].star) {
        DMX_RETURN_IF_ERROR(
            scope.Resolve(items[0].qualifier, items[0].column, &column));
      }
      std::unique_ptr<RowSource> agg;
      if (parallel_src_ != nullptr && d2 == nullptr) {
        // Push the aggregation below the exchange: workers pre-aggregate
        // their partitions, the merge combines one partial row each.
        parallel_src_->EnablePartialAggregate(items[0].agg, column);
        agg = std::make_unique<ParallelAggregateMergeSource>(
            std::move(source), items[0].agg);
        agg = Profiled(std::move(agg),
                       "aggregate(" + items[0].label + ") [partial merge]",
                       {top_idx_});
      } else {
        agg = std::make_unique<AggregateSource>(std::move(source),
                                                items[0].agg, column);
        agg = Profiled(std::move(agg), "aggregate(" + items[0].label + ")",
                       {top_idx_});
      }
      std::vector<Row> rows;
      DMX_RETURN_IF_ERROR(CollectRows(agg.get(), &rows));
      result->columns = {items[0].label};
      for (Row& row : rows) result->rows.push_back(std::move(row.values));
      return Status::OK();
    }
    (void)order_desc;
    // Column projection (or *).
    std::vector<int> projection;
    if (items.size() == 1 && items[0].star) {
      for (const auto& col : d1->schema.columns()) {
        result->columns.push_back(col.name);
      }
      if (d2 != nullptr) {
        for (const auto& col : d2->schema.columns()) {
          result->columns.push_back(col.name);
        }
      }
      for (size_t i = 0; i < result->columns.size(); ++i) {
        projection.push_back(static_cast<int>(i));
      }
    } else {
      for (const SelectItem& item : items) {
        if (item.is_agg || item.star) {
          return Status::InvalidArgument(
              "aggregates cannot mix with plain columns");
        }
        int index;
        DMX_RETURN_IF_ERROR(
            scope.Resolve(item.qualifier, item.column, &index));
        projection.push_back(index);
        result->columns.push_back(item.label);
      }
    }
    // ORDER BY sorts on the *pre-projection* column index, so sort the
    // child rows before projecting.
    std::unique_ptr<RowSource> ordered;
    if (order_col >= 0) {
      std::vector<Row> all;
      DMX_RETURN_IF_ERROR(CollectRows(source.get(), &all));
      std::stable_sort(all.begin(), all.end(),
                       [order_col, order_desc](const Row& a, const Row& b) {
                         int c = a.values[static_cast<size_t>(order_col)]
                                     .Compare(b.values[static_cast<size_t>(
                                         order_col)]);
                         return order_desc ? c > 0 : c < 0;
                       });
      class VectorSource : public RowSource {
       public:
        explicit VectorSource(std::vector<Row> rows)
            : rows_(std::move(rows)) {}
        Status Next(Row* row) override {
          if (pos_ >= rows_.size()) return Status::NotFound("end");
          *row = std::move(rows_[pos_++]);
          return Status::OK();
        }

       private:
        std::vector<Row> rows_;
        size_t pos_ = 0;
      };
      ordered = std::make_unique<VectorSource>(std::move(all));
      ordered = Profiled(std::move(ordered),
                         "sort(column " + std::to_string(order_col) + ")",
                         {top_idx_});
    } else {
      ordered = std::move(source);
    }
    std::unique_ptr<RowSource> project =
        std::make_unique<ProjectSource>(std::move(ordered), projection);
    project = Profiled(std::move(project), "project", {top_idx_});
    std::vector<Row> rows;
    Row row;
    while (limit < 0 ||
           static_cast<int64_t>(rows.size()) < limit) {
      Status s = project->Next(&row);
      if (s.IsNotFound()) break;
      DMX_RETURN_IF_ERROR(s);
      rows.push_back(std::move(row));
    }
    for (Row& r : rows) result->rows.push_back(std::move(r.values));
    result->affected = static_cast<int64_t>(result->rows.size());
    return Status::OK();
  }

  // UPDATE / DELETE -------------------------------------------------------

  Status Update(QueryResult* result) {
    Parser& p = *parser_;
    std::string table;
    DMX_RETURN_IF_ERROR(p.ExpectIdent(&table));
    const RelationDescriptor* desc;
    DMX_RETURN_IF_ERROR(db_->FindRelation(table, &desc));
    NameScope scope;
    scope.Add(table, desc->schema, 0);

    DMX_RETURN_IF_ERROR(p.ExpectKw("SET"));
    std::vector<std::pair<int, ExprPtr>> sets;
    while (true) {
      std::string col;
      DMX_RETURN_IF_ERROR(p.ExpectIdent(&col));
      int index;
      DMX_RETURN_IF_ERROR(scope.Resolve("", col, &index));
      DMX_RETURN_IF_ERROR(p.ExpectSym("="));
      ExprPtr value;
      DMX_RETURN_IF_ERROR(p.ParseExpr(scope, &value));
      sets.emplace_back(index, std::move(value));
      if (!p.TakeSym(",")) break;
    }
    ExprPtr where;
    if (p.TakeKw("WHERE")) DMX_RETURN_IF_ERROR(p.ParseExpr(scope, &where));

    int64_t updated = 0;
    DMX_RETURN_IF_ERROR(InTxn([&](Transaction* txn) -> Status {
      // Collect target keys first (avoid scanning while mutating).
      std::vector<std::pair<std::string, std::vector<Value>>> targets;
      {
        AccessPlan access;
        DMX_RETURN_IF_ERROR(PlanAccess(db_, txn, desc, where, &access));
        BoundPlan plan;
        plan.relation = *desc;
        plan.access = access;
        AccessSource source(db_, txn, &plan);
        Row row;
        while (true) {
          Status s = source.Next(&row);
          if (s.IsNotFound()) break;
          DMX_RETURN_IF_ERROR(s);
          targets.emplace_back(row.record_key, row.values);
        }
      }
      for (auto& [key, values] : targets) {
        std::vector<Value> new_values = values;
        for (const auto& [index, expr] : sets) {
          Value v;
          DMX_RETURN_IF_ERROR(db_->evaluator()->Eval(*expr, values, &v));
          new_values[static_cast<size_t>(index)] = std::move(v);
        }
        DMX_RETURN_IF_ERROR(
            db_->Update(txn, table, Slice(key), new_values));
        ++updated;
      }
      return Status::OK();
    }));
    result->affected = updated;
    result->message = "UPDATE " + std::to_string(updated);
    return Status::OK();
  }

  Status Delete(QueryResult* result) {
    Parser& p = *parser_;
    DMX_RETURN_IF_ERROR(p.ExpectKw("FROM"));
    std::string table;
    DMX_RETURN_IF_ERROR(p.ExpectIdent(&table));
    const RelationDescriptor* desc;
    DMX_RETURN_IF_ERROR(db_->FindRelation(table, &desc));
    NameScope scope;
    scope.Add(table, desc->schema, 0);
    ExprPtr where;
    if (p.TakeKw("WHERE")) DMX_RETURN_IF_ERROR(p.ParseExpr(scope, &where));

    int64_t deleted = 0;
    DMX_RETURN_IF_ERROR(InTxn([&](Transaction* txn) -> Status {
      std::vector<std::string> keys;
      {
        AccessPlan access;
        DMX_RETURN_IF_ERROR(PlanAccess(db_, txn, desc, where, &access));
        BoundPlan plan;
        plan.relation = *desc;
        plan.access = access;
        AccessSource source(db_, txn, &plan);
        Row row;
        while (true) {
          Status s = source.Next(&row);
          if (s.IsNotFound()) break;
          DMX_RETURN_IF_ERROR(s);
          keys.push_back(row.record_key);
        }
      }
      for (const std::string& key : keys) {
        Status s = db_->Delete(txn, table, Slice(key));
        if (s.IsNotFound()) continue;  // cascaded away already
        DMX_RETURN_IF_ERROR(s);
        ++deleted;
      }
      return Status::OK();
    }));
    result->affected = deleted;
    result->message = "DELETE " + std::to_string(deleted);
    return Status::OK();
  }

  // Wrap `src` in a profiling recorder under EXPLAIN ANALYZE; `children`
  // are the profile indices of the operators `src` pulls from. Updates
  // top_idx_ to the new node so the caller can chain wrappers upward.
  std::unique_ptr<RowSource> Profiled(std::unique_ptr<RowSource> src,
                                      std::string name,
                                      std::vector<size_t> children = {}) {
    if (!analyze_) return src;
    top_idx_ = profile_.Add(std::move(name), std::move(children));
    return std::make_unique<ProfiledSource>(std::move(src), &profile_,
                                            top_idx_);
  }

  void EmitProfileNode(size_t idx, int depth, QueryResult* result) {
    const OperatorStats& op = profile_.ops[idx];
    result->rows.push_back(
        {Value::String(std::string(static_cast<size_t>(2 * depth), ' ') +
                       op.name),
         Value::Int(static_cast<int64_t>(op.rows_in)),
         Value::Int(static_cast<int64_t>(op.rows_out)),
         Value::Double(static_cast<double>(op.wall_ns) / 1e6)});
    for (size_t child : op.children) {
      EmitProfileNode(child, depth + 1, result);
    }
  }

  Session* session_;
  Database* db_;
  const std::string& sql_;
  std::unique_ptr<Parser> parser_;
  bool explain_ = false;
  bool analyze_ = false;
  PlanProfile profile_;
  size_t top_idx_ = 0;  // profile index of the current plan-tree root
  std::string join_method_;
  /// Set by BuildSingle when the plan runs a parallel scan, so Materialize
  /// can push a single aggregate below the exchange. Joins never set it.
  ParallelScanSource* parallel_src_ = nullptr;
};

Session::~Session() {
  // Destructor cleanup; errors are unreportable here.
  if (txn_ != nullptr) (void)db_->Abort(txn_);
}

Status Session::Execute(const std::string& sql, QueryResult* result) {
  return Execute(sql, {}, result);
}

Status Session::Execute(const std::string& sql,
                        const std::vector<Value>& params,
                        QueryResult* result) {
  *result = QueryResult();
  db_->evaluator()->SetParams(params);
  SqlExecutor executor(this, sql);
  Status s = executor.Run(result);
  db_->evaluator()->SetParams({});
  return s;
}

std::string QueryResult::ToString() const {
  std::string out;
  if (!columns.empty()) {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i) out += " | ";
      out += columns[i];
    }
    out += "\n";
    out += std::string(out.size() > 1 ? out.size() - 1 : 0, '-');
    out += "\n";
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  if (!message.empty()) out += message + "\n";
  return out;
}

}  // namespace dmx
