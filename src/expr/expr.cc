#include "src/expr/expr.h"

#include <algorithm>

#include "src/util/coding.h"

namespace dmx {

namespace {

bool IsComparison(ExprOp op) {
  return op >= ExprOp::kEq && op <= ExprOp::kGe;
}

ExprOp MirrorComparison(ExprOp op) {
  switch (op) {
    case ExprOp::kLt: return ExprOp::kGt;
    case ExprOp::kLe: return ExprOp::kGe;
    case ExprOp::kGt: return ExprOp::kLt;
    case ExprOp::kGe: return ExprOp::kLe;
    default: return op;  // Eq / Ne are symmetric
  }
}

const char* OpSymbol(ExprOp op) {
  switch (op) {
    case ExprOp::kAnd: return "AND";
    case ExprOp::kOr: return "OR";
    case ExprOp::kNot: return "NOT";
    case ExprOp::kEq: return "=";
    case ExprOp::kNe: return "<>";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kLike: return "LIKE";
    case ExprOp::kIsNull: return "IS NULL";
    case ExprOp::kEncloses: return "ENCLOSES";
    case ExprOp::kWithin: return "WITHIN";
    case ExprOp::kOverlaps: return "OVERLAPS";
    default: return "?";
  }
}

}  // namespace

ExprPtr Expr::Const(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kConst;
  e->constant_ = std::move(v);
  return e;
}

ExprPtr Expr::Field(int index) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kField;
  e->field_index_ = index;
  return e;
}

ExprPtr Expr::Param(int index) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kParam;
  e->param_index_ = index;
  return e;
}

ExprPtr Expr::Call(std::string func_name, std::vector<ExprPtr> args) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kCall;
  e->func_name_ = std::move(func_name);
  e->children_ = std::move(args);
  return e;
}

ExprPtr Expr::Unary(ExprOp op, ExprPtr a) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = op;
  e->children_ = {std::move(a)};
  return e;
}

ExprPtr Expr::Binary(ExprOp op, ExprPtr a, ExprPtr b) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = op;
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::Nary(ExprOp op, std::vector<ExprPtr> children) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = op;
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Spatial(ExprOp op, std::vector<ExprPtr> record_rect,
                      std::vector<ExprPtr> query_rect) {
  std::vector<ExprPtr> kids = std::move(record_rect);
  for (auto& q : query_rect) kids.push_back(std::move(q));
  return Nary(op, std::move(kids));
}

void Expr::CollectFields(std::vector<int>* fields) const {
  if (op_ == ExprOp::kField) {
    if (std::find(fields->begin(), fields->end(), field_index_) ==
        fields->end()) {
      fields->push_back(field_index_);
    }
    return;
  }
  for (const auto& c : children_) c->CollectFields(fields);
}

void Expr::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(op_));
  switch (op_) {
    case ExprOp::kConst: {
      dst->push_back(static_cast<char>(constant_.type()));
      switch (constant_.type()) {
        case TypeId::kNull: break;
        case TypeId::kBool: dst->push_back(constant_.bool_value()); break;
        case TypeId::kInt64:
          PutFixed64(dst, static_cast<uint64_t>(constant_.int_value()));
          break;
        case TypeId::kDouble: PutDouble(dst, constant_.double_value()); break;
        case TypeId::kString:
          PutLengthPrefixedSlice(dst, constant_.string_value());
          break;
      }
      return;
    }
    case ExprOp::kField:
      PutVarint32(dst, static_cast<uint32_t>(field_index_));
      return;
    case ExprOp::kParam:
      PutVarint32(dst, static_cast<uint32_t>(param_index_));
      return;
    case ExprOp::kCall:
      PutLengthPrefixedSlice(dst, func_name_);
      break;
    default:
      break;
  }
  PutVarint32(dst, static_cast<uint32_t>(children_.size()));
  for (const auto& c : children_) c->EncodeTo(dst);
}

Status Expr::DecodeFrom(Slice* input, ExprPtr* out) {
  if (input->empty()) return Status::Corruption("expr truncated");
  ExprOp op = static_cast<ExprOp>((*input)[0]);
  input->remove_prefix(1);
  switch (op) {
    case ExprOp::kConst: {
      if (input->empty()) return Status::Corruption("const type");
      TypeId t = static_cast<TypeId>((*input)[0]);
      input->remove_prefix(1);
      Value v;
      switch (t) {
        case TypeId::kNull:
          v = Value::Null();
          break;
        case TypeId::kBool:
          if (input->empty()) return Status::Corruption("const bool");
          v = Value::Bool((*input)[0] != 0);
          input->remove_prefix(1);
          break;
        case TypeId::kInt64: {
          uint64_t u;
          if (!GetFixed64(input, &u)) return Status::Corruption("const int");
          v = Value::Int(static_cast<int64_t>(u));
          break;
        }
        case TypeId::kDouble: {
          double d;
          if (!GetDouble(input, &d)) return Status::Corruption("const double");
          v = Value::Double(d);
          break;
        }
        case TypeId::kString: {
          Slice s;
          if (!GetLengthPrefixedSlice(input, &s)) {
            return Status::Corruption("const string");
          }
          v = Value::String(s);
          break;
        }
      }
      *out = Const(std::move(v));
      return Status::OK();
    }
    case ExprOp::kField: {
      uint32_t idx;
      if (!GetVarint32(input, &idx)) return Status::Corruption("field index");
      *out = Field(static_cast<int>(idx));
      return Status::OK();
    }
    case ExprOp::kParam: {
      uint32_t idx;
      if (!GetVarint32(input, &idx)) return Status::Corruption("param index");
      *out = Param(static_cast<int>(idx));
      return Status::OK();
    }
    default:
      break;
  }
  std::string func_name;
  if (op == ExprOp::kCall) {
    Slice name;
    if (!GetLengthPrefixedSlice(input, &name)) {
      return Status::Corruption("call name");
    }
    func_name = name.ToString();
  }
  uint32_t n;
  if (!GetVarint32(input, &n)) return Status::Corruption("child count");
  // Every child consumes at least one byte.
  if (n > input->size()) return Status::Corruption("child count absurd");
  std::vector<ExprPtr> kids;
  kids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ExprPtr c;
    DMX_RETURN_IF_ERROR(DecodeFrom(input, &c));
    kids.push_back(std::move(c));
  }
  if (op == ExprOp::kCall) {
    *out = Call(std::move(func_name), std::move(kids));
  } else {
    *out = Nary(op, std::move(kids));
  }
  return Status::OK();
}

std::string Expr::ToString() const {
  switch (op_) {
    case ExprOp::kConst: return constant_.ToString();
    case ExprOp::kField: return "f" + std::to_string(field_index_);
    case ExprOp::kParam: return "$" + std::to_string(param_index_);
    case ExprOp::kCall: {
      std::string s = func_name_ + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) s += ", ";
        s += children_[i]->ToString();
      }
      return s + ")";
    }
    case ExprOp::kNot:
      return std::string("NOT ") + children_[0]->ToString();
    case ExprOp::kIsNull:
      return children_[0]->ToString() + " IS NULL";
    case ExprOp::kEncloses:
    case ExprOp::kWithin:
    case ExprOp::kOverlaps: {
      std::string s = std::string(OpSymbol(op_)) + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) s += ", ";
        s += children_[i]->ToString();
      }
      return s + ")";
    }
    default: {
      if (children_.size() == 2) {
        return "(" + children_[0]->ToString() + " " + OpSymbol(op_) + " " +
               children_[1]->ToString() + ")";
      }
      std::string s = std::string("(") + OpSymbol(op_);
      for (const auto& c : children_) s += " " + c->ToString();
      return s + ")";
    }
  }
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (!e) return;
  if (e->op() == ExprOp::kAnd) {
    for (const auto& c : e->children()) SplitConjuncts(c, out);
    return;
  }
  out->push_back(e);
}

ExprPtr JoinConjuncts(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Expr::And(acc, conjuncts[i]);
  }
  return acc;
}

bool MatchFieldCompare(const ExprPtr& e, int* field, ExprOp* op,
                       Value* constant) {
  if (!e || !IsComparison(e->op()) || e->children().size() != 2) return false;
  const ExprPtr& l = e->child(0);
  const ExprPtr& r = e->child(1);
  if (l->op() == ExprOp::kField && r->op() == ExprOp::kConst) {
    *field = l->field_index();
    *op = e->op();
    *constant = r->constant();
    return true;
  }
  if (l->op() == ExprOp::kConst && r->op() == ExprOp::kField) {
    *field = r->field_index();
    *op = MirrorComparison(e->op());
    *constant = l->constant();
    return true;
  }
  return false;
}

bool MatchSpatial(const ExprPtr& e, const int rect_fields[4], ExprOp* op,
                  double query_rect[4]) {
  if (!e) return false;
  if (e->op() != ExprOp::kEncloses && e->op() != ExprOp::kWithin &&
      e->op() != ExprOp::kOverlaps) {
    return false;
  }
  if (e->children().size() != 8) return false;
  for (int i = 0; i < 4; ++i) {
    const ExprPtr& c = e->child(i);
    if (c->op() != ExprOp::kField || c->field_index() != rect_fields[i]) {
      return false;
    }
  }
  for (int i = 0; i < 4; ++i) {
    const ExprPtr& c = e->child(4 + i);
    if (c->op() != ExprOp::kConst || !c->constant().is_numeric()) return false;
    query_rect[i] = c->constant().AsDouble();
  }
  *op = e->op();
  return true;
}

}  // namespace dmx
