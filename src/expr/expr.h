// Expression trees for the common predicate evaluation service.
//
// The paper's common services include a filter-predicate evaluator that is
// shared by storage methods, access-path attachments, integrity-constraint
// attachments, and the query execution engine. It "will be able to call
// functions that are passed to it, and use any combination of fields from a
// record as operands. Additionally, both constant and variable data can be
// used". Expressions are serializable so that constraint attachments can
// store "a (Common Service) encoding of the predicate" in their descriptor.

#ifndef DMX_EXPR_EXPR_H_
#define DMX_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/types/record.h"
#include "src/types/value.h"
#include "src/util/status.h"

namespace dmx {

/// Expression node kinds.
enum class ExprOp : uint8_t {
  kConst = 0,   // literal Value
  kField = 1,   // record field by index
  kParam = 2,   // runtime parameter ("variable data")
  kCall = 3,    // user function registered with the evaluator
  kAnd = 4,
  kOr = 5,
  kNot = 6,
  kEq = 7,
  kNe = 8,
  kLt = 9,
  kLe = 10,
  kGt = 11,
  kGe = 12,
  kAdd = 13,
  kSub = 14,
  kMul = 15,
  kDiv = 16,
  kLike = 17,     // SQL LIKE with % and _
  kIsNull = 18,
  kEncloses = 19,  // spatial: record rect encloses query rect
  kWithin = 20,    // spatial: record rect within query rect
  kOverlaps = 21,  // spatial: record rect overlaps query rect
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression tree node. Build with the factory functions below.
///
/// Spatial nodes have exactly 8 children: children 0..3 are the *record*
/// rectangle (xmin, ymin, xmax, ymax — typically field refs) and children
/// 4..7 are the *query* rectangle (typically constants or params).
class Expr {
 public:
  ExprOp op() const { return op_; }
  const Value& constant() const { return constant_; }
  int field_index() const { return field_index_; }
  int param_index() const { return param_index_; }
  const std::string& func_name() const { return func_name_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }

  /// Collect the set of record field indexes this expression reads. The
  /// paper's access procedures use this "list of fields needed from the
  /// current record" to isolate fields before invoking the evaluator.
  void CollectFields(std::vector<int>* fields) const;

  /// Serialize to a portable byte string (descriptor encoding).
  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, ExprPtr* out);

  /// Display form, e.g. "(f0 >= 10 AND f2 = 'x')".
  std::string ToString() const;

  // -- factories ------------------------------------------------------------
  static ExprPtr Const(Value v);
  static ExprPtr Field(int index);
  static ExprPtr Param(int index);
  static ExprPtr Call(std::string func_name, std::vector<ExprPtr> args);
  static ExprPtr Unary(ExprOp op, ExprPtr a);
  static ExprPtr Binary(ExprOp op, ExprPtr a, ExprPtr b);
  static ExprPtr Nary(ExprOp op, std::vector<ExprPtr> children);
  /// Spatial predicate over a record rectangle (4 exprs, usually fields)
  /// and a query rectangle (4 exprs, usually constants).
  static ExprPtr Spatial(ExprOp op, std::vector<ExprPtr> record_rect,
                         std::vector<ExprPtr> query_rect);

  // Convenience builders for the common cases.
  static ExprPtr Eq(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kEq, a, b); }
  static ExprPtr And(ExprPtr a, ExprPtr b) {
    return Binary(ExprOp::kAnd, a, b);
  }
  static ExprPtr Or(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kOr, a, b); }
  static ExprPtr Cmp(ExprOp op, int field, Value v) {
    return Binary(op, Field(field), Const(std::move(v)));
  }

 private:
  Expr() = default;

  ExprOp op_ = ExprOp::kConst;
  Value constant_;
  int field_index_ = -1;
  int param_index_ = -1;
  std::string func_name_;
  std::vector<ExprPtr> children_;
};

/// Split a conjunctive expression into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

/// Re-join conjuncts with AND; returns nullptr for an empty list.
ExprPtr JoinConjuncts(const std::vector<ExprPtr>& conjuncts);

/// If `e` is of the form `field OP const` (or `const OP field`, with OP
/// mirrored), report the normalized parts and return true. Used by access
/// path implementations to judge predicate relevance.
bool MatchFieldCompare(const ExprPtr& e, int* field, ExprOp* op, Value* constant);

/// If `e` is a spatial predicate whose record rectangle is exactly the four
/// given field indexes, return true. Used by the R-tree attachment.
bool MatchSpatial(const ExprPtr& e, const int rect_fields[4], ExprOp* op,
                  double query_rect[4]);

}  // namespace dmx

#endif  // DMX_EXPR_EXPR_H_
