#include "src/expr/evaluator.h"

#include <cmath>

namespace dmx {

namespace {

// Kleene logic encoding: Value() (NULL) = unknown.
Value TriNot(const Value& v) {
  if (v.is_null()) return Value::Null();
  return Value::Bool(!v.bool_value());
}

}  // namespace

bool LikeMatch(const Slice& text, const Slice& pattern) {
  // Iterative two-pointer match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

void ExprEvaluator::RegisterFunction(const std::string& name,
                                     UserFunction fn) {
  functions_[name] = std::move(fn);
}

Status ExprEvaluator::EvalPredicate(const Expr& e, const TupleAccessor& row,
                                    bool* passes) const {
  Value v;
  DMX_RETURN_IF_ERROR(Eval(e, row, &v));
  *passes = !v.is_null() && v.type() == TypeId::kBool && v.bool_value();
  return Status::OK();
}

Status ExprEvaluator::Eval(const Expr& e, const TupleAccessor& row,
                           Value* result) const {
  switch (e.op()) {
    case ExprOp::kConst:
      *result = e.constant();
      return Status::OK();
    case ExprOp::kField:
      if (!row.valid()) {
        return Status::InvalidArgument("field reference without a row");
      }
      if (e.field_index() < 0 ||
          static_cast<size_t>(e.field_index()) >= row.num_fields()) {
        return Status::InvalidArgument("field index out of range");
      }
      return row.GetField(e.field_index(), result);
    case ExprOp::kParam:
      if (e.param_index() < 0 ||
          static_cast<size_t>(e.param_index()) >= params_.size()) {
        return Status::InvalidArgument("parameter not bound");
      }
      *result = params_[static_cast<size_t>(e.param_index())];
      return Status::OK();
    case ExprOp::kCall: {
      auto it = functions_.find(e.func_name());
      if (it == functions_.end()) {
        return Status::NotFound("function '" + e.func_name() + "'");
      }
      std::vector<Value> args;
      args.reserve(e.children().size());
      for (const auto& c : e.children()) {
        Value v;
        DMX_RETURN_IF_ERROR(Eval(*c, row, &v));
        args.push_back(std::move(v));
      }
      return it->second(args, result);
    }
    case ExprOp::kAnd: {
      // Kleene AND: FALSE dominates, short-circuits.
      bool saw_null = false;
      for (const auto& c : e.children()) {
        Value v;
        DMX_RETURN_IF_ERROR(Eval(*c, row, &v));
        if (v.is_null()) {
          saw_null = true;
        } else if (v.type() != TypeId::kBool) {
          return Status::InvalidArgument("AND operand not boolean");
        } else if (!v.bool_value()) {
          *result = Value::Bool(false);
          return Status::OK();
        }
      }
      *result = saw_null ? Value::Null() : Value::Bool(true);
      return Status::OK();
    }
    case ExprOp::kOr: {
      bool saw_null = false;
      for (const auto& c : e.children()) {
        Value v;
        DMX_RETURN_IF_ERROR(Eval(*c, row, &v));
        if (v.is_null()) {
          saw_null = true;
        } else if (v.type() != TypeId::kBool) {
          return Status::InvalidArgument("OR operand not boolean");
        } else if (v.bool_value()) {
          *result = Value::Bool(true);
          return Status::OK();
        }
      }
      *result = saw_null ? Value::Null() : Value::Bool(false);
      return Status::OK();
    }
    case ExprOp::kNot: {
      Value v;
      DMX_RETURN_IF_ERROR(Eval(*e.child(0), row, &v));
      if (!v.is_null() && v.type() != TypeId::kBool) {
        return Status::InvalidArgument("NOT operand not boolean");
      }
      *result = TriNot(v);
      return Status::OK();
    }
    case ExprOp::kIsNull: {
      Value v;
      DMX_RETURN_IF_ERROR(Eval(*e.child(0), row, &v));
      *result = Value::Bool(v.is_null());
      return Status::OK();
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return EvalComparison(e, row, result);
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv:
      return EvalArithmetic(e, row, result);
    case ExprOp::kLike: {
      Value text, pat;
      DMX_RETURN_IF_ERROR(Eval(*e.child(0), row, &text));
      DMX_RETURN_IF_ERROR(Eval(*e.child(1), row, &pat));
      if (text.is_null() || pat.is_null()) {
        *result = Value::Null();
        return Status::OK();
      }
      if (text.type() != TypeId::kString || pat.type() != TypeId::kString) {
        return Status::InvalidArgument("LIKE operands must be strings");
      }
      *result = Value::Bool(
          LikeMatch(Slice(text.string_value()), Slice(pat.string_value())));
      return Status::OK();
    }
    case ExprOp::kEncloses:
    case ExprOp::kWithin:
    case ExprOp::kOverlaps:
      return EvalSpatial(e, row, result);
  }
  return Status::Internal("unhandled expression op");
}

Status ExprEvaluator::EvalComparison(const Expr& e, const TupleAccessor& row,
                                     Value* result) const {
  Value a, b;
  DMX_RETURN_IF_ERROR(Eval(*e.child(0), row, &a));
  DMX_RETURN_IF_ERROR(Eval(*e.child(1), row, &b));
  if (a.is_null() || b.is_null()) {
    *result = Value::Null();
    return Status::OK();
  }
  const bool comparable = (a.is_numeric() && b.is_numeric()) ||
                          a.type() == b.type();
  if (!comparable) {
    return Status::InvalidArgument(
        std::string("cannot compare ") + TypeName(a.type()) + " with " +
        TypeName(b.type()));
  }
  int c = a.Compare(b);
  bool r = false;
  switch (e.op()) {
    case ExprOp::kEq: r = c == 0; break;
    case ExprOp::kNe: r = c != 0; break;
    case ExprOp::kLt: r = c < 0; break;
    case ExprOp::kLe: r = c <= 0; break;
    case ExprOp::kGt: r = c > 0; break;
    case ExprOp::kGe: r = c >= 0; break;
    default: break;
  }
  *result = Value::Bool(r);
  return Status::OK();
}

Status ExprEvaluator::EvalArithmetic(const Expr& e, const TupleAccessor& row,
                                     Value* result) const {
  Value a, b;
  DMX_RETURN_IF_ERROR(Eval(*e.child(0), row, &a));
  DMX_RETURN_IF_ERROR(Eval(*e.child(1), row, &b));
  if (a.is_null() || b.is_null()) {
    *result = Value::Null();
    return Status::OK();
  }
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric value");
  }
  const bool both_int =
      a.type() == TypeId::kInt64 && b.type() == TypeId::kInt64;
  switch (e.op()) {
    case ExprOp::kAdd:
      *result = both_int ? Value::Int(a.int_value() + b.int_value())
                         : Value::Double(a.AsDouble() + b.AsDouble());
      break;
    case ExprOp::kSub:
      *result = both_int ? Value::Int(a.int_value() - b.int_value())
                         : Value::Double(a.AsDouble() - b.AsDouble());
      break;
    case ExprOp::kMul:
      *result = both_int ? Value::Int(a.int_value() * b.int_value())
                         : Value::Double(a.AsDouble() * b.AsDouble());
      break;
    case ExprOp::kDiv:
      if (both_int) {
        if (b.int_value() == 0) return Status::InvalidArgument("div by zero");
        *result = Value::Int(a.int_value() / b.int_value());
      } else {
        if (b.AsDouble() == 0.0) {
          return Status::InvalidArgument("div by zero");
        }
        *result = Value::Double(a.AsDouble() / b.AsDouble());
      }
      break;
    default:
      break;
  }
  return Status::OK();
}

Status ExprEvaluator::EvalSpatial(const Expr& e, const TupleAccessor& row,
                                  Value* result) const {
  if (e.children().size() != 8) {
    return Status::InvalidArgument("spatial predicate needs 8 operands");
  }
  double rect[8];
  for (int i = 0; i < 8; ++i) {
    Value v;
    DMX_RETURN_IF_ERROR(Eval(*e.child(i), row, &v));
    if (v.is_null()) {
      *result = Value::Null();
      return Status::OK();
    }
    if (!v.is_numeric()) {
      return Status::InvalidArgument("spatial operand not numeric");
    }
    rect[i] = v.AsDouble();
  }
  // rect[0..3] = record rect, rect[4..7] = query rect; (xmin,ymin,xmax,ymax).
  const double* rrec = rect;
  const double* qry = rect + 4;
  bool r = false;
  switch (e.op()) {
    case ExprOp::kEncloses:  // record rect encloses query rect
      r = rrec[0] <= qry[0] && rrec[1] <= qry[1] && rrec[2] >= qry[2] &&
          rrec[3] >= qry[3];
      break;
    case ExprOp::kWithin:  // record rect within query rect
      r = qry[0] <= rrec[0] && qry[1] <= rrec[1] && qry[2] >= rrec[2] &&
          qry[3] >= rrec[3];
      break;
    case ExprOp::kOverlaps:
      r = rrec[0] <= qry[2] && qry[0] <= rrec[2] && rrec[1] <= qry[3] &&
          qry[1] <= rrec[3];
      break;
    default:
      break;
  }
  *result = Value::Bool(r);
  return Status::OK();
}

}  // namespace dmx
