// ExprEvaluator: the common-service predicate evaluation facility.
//
// Shared by the query execution engine, storage-method and access-path
// filtering, and integrity-constraint attachments. Evaluates directly
// against a RecordView, i.e. against field bytes that may still live in an
// extension's buffer pool — no copy-out of the record is required.

#ifndef DMX_EXPR_EVALUATOR_H_
#define DMX_EXPR_EVALUATOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/types/record.h"

namespace dmx {

/// A user function callable from expressions ("the predicate evaluator will
/// be able to call functions that are passed to it").
using UserFunction =
    std::function<Status(const std::vector<Value>& args, Value* result)>;

/// Field source abstraction: lets the evaluator run against packed records
/// (zero-copy, in the buffer pool) and against materialized value rows
/// (joined tuples in the executor) through one code path.
class TupleAccessor {
 public:
  virtual ~TupleAccessor() = default;
  virtual bool valid() const = 0;
  virtual size_t num_fields() const = 0;
  virtual Status GetField(int index, Value* out) const = 0;
};

/// Accessor over a packed record image.
class RecordAccessor : public TupleAccessor {
 public:
  explicit RecordAccessor(const RecordView& view) : view_(view) {}
  bool valid() const override { return view_.valid(); }
  size_t num_fields() const override {
    return view_.schema()->num_columns();
  }
  Status GetField(int index, Value* out) const override {
    *out = view_.GetValue(static_cast<size_t>(index));
    return Status::OK();
  }

 private:
  const RecordView& view_;
};

/// Accessor over a materialized row of values.
class ValuesAccessor : public TupleAccessor {
 public:
  explicit ValuesAccessor(const std::vector<Value>& values)
      : values_(values) {}
  bool valid() const override { return true; }
  size_t num_fields() const override { return values_.size(); }
  Status GetField(int index, Value* out) const override {
    *out = values_[static_cast<size_t>(index)];
    return Status::OK();
  }

 private:
  const std::vector<Value>& values_;
};

/// Evaluates expression trees with SQL-style three-valued NULL semantics.
///
/// Thread-compatible: one evaluator per execution context; the function
/// registry may be shared after setup.
class ExprEvaluator {
 public:
  ExprEvaluator() = default;

  /// Register a function callable via ExprOp::kCall nodes.
  void RegisterFunction(const std::string& name, UserFunction fn);

  /// Bind runtime parameters referenced by ExprOp::kParam nodes
  /// ("variable data can be used by the predicate evaluator").
  void SetParams(std::vector<Value> params) { params_ = std::move(params); }

  /// Evaluate `e` against a tuple. NULL inputs propagate per SQL semantics.
  Status Eval(const Expr& e, const TupleAccessor& row, Value* result) const;

  /// Zero-copy convenience: evaluate against a packed record image.
  Status Eval(const Expr& e, const RecordView& row, Value* result) const {
    RecordAccessor acc(row);
    return Eval(e, acc, result);
  }
  /// Convenience: evaluate against a materialized value row.
  Status Eval(const Expr& e, const std::vector<Value>& row,
              Value* result) const {
    ValuesAccessor acc(row);
    return Eval(e, acc, result);
  }

  /// Evaluate a filter predicate: `*passes` is true iff the result is the
  /// non-NULL boolean TRUE (a NULL predicate result filters the row out).
  Status EvalPredicate(const Expr& e, const TupleAccessor& row,
                       bool* passes) const;
  Status EvalPredicate(const Expr& e, const RecordView& row,
                       bool* passes) const {
    RecordAccessor acc(row);
    return EvalPredicate(e, acc, passes);
  }
  Status EvalPredicate(const Expr& e, const std::vector<Value>& row,
                       bool* passes) const {
    ValuesAccessor acc(row);
    return EvalPredicate(e, acc, passes);
  }

  /// Evaluate with no row (constants/params/calls only).
  Status EvalConst(const Expr& e, Value* result) const {
    RecordView none;
    return Eval(e, none, result);
  }

 private:
  Status EvalComparison(const Expr& e, const TupleAccessor& row,
                        Value* result) const;
  Status EvalArithmetic(const Expr& e, const TupleAccessor& row,
                        Value* result) const;
  Status EvalSpatial(const Expr& e, const TupleAccessor& row,
                     Value* result) const;

  std::map<std::string, UserFunction> functions_;
  std::vector<Value> params_;
};

/// SQL LIKE matcher with `%` (any run) and `_` (any single char).
bool LikeMatch(const Slice& text, const Slice& pattern);

}  // namespace dmx

#endif  // DMX_EXPR_EVALUATOR_H_
