# Runs `clang-format --dry-run --Werror` over the formatted directories
# (same scope as the CI lint lane). Invoked by the root `lint` target:
#   cmake -DCLANG_FORMAT=... -DSOURCE_DIR=... -P tools/format_check.cmake

file(GLOB_RECURSE files
     "${SOURCE_DIR}/src/*.cc" "${SOURCE_DIR}/src/*.h"
     "${SOURCE_DIR}/tests/*.cc" "${SOURCE_DIR}/tests/*.h"
     "${SOURCE_DIR}/bench/*.cc" "${SOURCE_DIR}/bench/*.h")
execute_process(
  COMMAND "${CLANG_FORMAT}" --dry-run --Werror ${files}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clang-format found unformatted files (rc=${rc})")
endif()
