#!/usr/bin/env python3
"""dmx-lint: paper-specific invariant checks the C++ compiler can't see.

The extension architecture hangs off two contracts that are easy to break
silently: (1) every storage method / attachment type must register a
complete procedure vector — a missing entry point is a nullptr call at
dispatch time, possibly months later; (2) all cross-extension work must go
through a registered vector, never by calling into a sibling extension
directly. On top of that the concurrency hardening pass requires (3) no
naked std::mutex (use dmx::Mutex so Clang Thread Safety Analysis sees the
lock) and every member Mutex must guard something via GUARDED_BY/REQUIRES.

Rules (findings print as `path:line: [rule] message`, exit 1 if any):

  sm-incomplete      an SmOps registration misses a required entry point
  at-incomplete      an AtOps registration misses a required entry point
  undo-redo-pair     a vector registers undo without redo or vice versa
  lookup-needs-list  an AtOps with lookup/open_scan lacks list_instances
                     (REPAIR and the planner enumerate instances)
  repair-needs-release  repair_instance without release_instance (REPAIR
                     must drop the cached state it rebuilds)
  guard-needs-verify guards_integrity without a verify entry point (the
                     quarantine path has nothing to re-check)
  direct-dispatch    invoking a sibling vector's entry point through its
                     accessor (`HeapStorageMethodOps().insert(...)`);
                     copying a vector to inherit from it is fine
  raw-mutex          std::mutex / std::condition_variable / lock_guard /
                     unique_lock outside src/util/thread_annotations.h
  unguarded-mutex    a member `Mutex m;` with no GUARDED_BY(m)/REQUIRES(m)
                     in the same file
  raw-ioerror        Status::IOError / Status::RetryableIOError constructed
                     outside src/util and src/wal — only the Env/WAL
                     boundary may classify I/O failures, or the error
                     taxonomy (retryability, degraded-mode routing) silently
                     loses its meaning. Extensions must propagate the
                     Status they got from the Env.

Suppress a finding with `// dmx-lint: allow-<rule-suffix>` on its line,
e.g. `Mutex mu;  // dmx-lint: allow-unguarded (reason)`, or on a comment
line directly above when the flagged line has no room.
"""

import argparse
import re
import sys
from pathlib import Path

# Entry points every storage method must provide. partition_scan and
# checkpoint are genuinely optional (the kernel probes for nullptr).
SM_REQUIRED = {
    "name", "validate", "create", "drop", "open", "insert", "update",
    "erase", "fetch", "open_scan", "cost", "undo", "redo", "count",
    "verify",
}

# Entry points every attachment type must provide. on_delete is optional
# (pure-validation attachments have nothing to maintain on delete);
# lookup/open_scan/cost are what makes an attachment an access path.
AT_REQUIRED = {
    "name", "create_instance", "drop_instance", "open", "instance_count",
    "on_insert", "on_update",
}

SUPPRESS_RE = re.compile(r"//\s*dmx-lint:\s*allow-([\w-]+)")

findings = []
_current_lines = []  # lint_file sets this; report() peeks one line up


def report(path, lineno, rule, message, line=""):
    above = _current_lines[lineno - 2] if 2 <= lineno - 1 <= \
        len(_current_lines) else ""
    if not above.lstrip().startswith("//"):
        above = ""  # only a comment line above can carry the waiver
    for candidate in (line, above):
        m = SUPPRESS_RE.search(candidate)
        if m and m.group(1) in rule:
            return
    findings.append(f"{path}:{lineno}: [{rule}] {message}")


# -- procedure-vector completeness --------------------------------------------

REG_RE = re.compile(
    r"\b(SmOps|AtOps)\s+(\w+)\s*(?:=\s*(\w+)\s*\(\s*\)\s*)?;")


def check_vectors(path, text):
    lines = text.splitlines()
    for m in REG_RE.finditer(text):
        kind, var, base = m.group(1), m.group(2), m.group(3)
        start_line = text.count("\n", 0, m.start()) + 1
        # Collect `var.field = ...` assignments up to `return var;`.
        tail = text[m.end():]
        end = re.search(r"\breturn\s+%s\s*;" % re.escape(var), tail)
        if end is None:
            continue  # a declaration that is not a registration body
        body = tail[: end.start()]
        fields = set(re.findall(r"\b%s\s*\.\s*(\w+)\s*=" % re.escape(var),
                                body))
        inherited = base is not None
        required = SM_REQUIRED if kind == "SmOps" else AT_REQUIRED
        rule = "sm-incomplete" if kind == "SmOps" else "at-incomplete"
        if not inherited:
            missing = sorted(required - fields)
            if missing:
                report(path, start_line, rule,
                       f"{kind} registration leaves required entry points "
                       f"unset: {', '.join(missing)}",
                       lines[start_line - 1])
        # Pair/conditional rules (on an inherited vector only the
        # overridden fields are visible; the base already passed).
        if not inherited and ("undo" in fields) != ("redo" in fields):
            report(path, start_line, "undo-redo-pair",
                   f"{kind} registers "
                   f"{'undo without redo' if 'undo' in fields else 'redo without undo'}"
                   " — recovery needs both directions",
                   lines[start_line - 1])
        if kind == "AtOps" and not inherited:
            if ("lookup" in fields or "open_scan" in fields) \
                    and "list_instances" not in fields:
                report(path, start_line, "lookup-needs-list",
                       "access-path AtOps (lookup/open_scan) must provide "
                       "list_instances", lines[start_line - 1])
            if "repair_instance" in fields \
                    and "release_instance" not in fields:
                report(path, start_line, "repair-needs-release",
                       "repair_instance without release_instance: REPAIR "
                       "cannot drop the stale cached state",
                       lines[start_line - 1])
            if "guards_integrity" in fields and "verify" not in fields:
                report(path, start_line, "guard-needs-verify",
                       "guards_integrity without verify: quarantine has "
                       "nothing to re-check", lines[start_line - 1])


# -- dispatch discipline ------------------------------------------------------

DIRECT_RE = re.compile(
    r"\b\w+(?:StorageMethod|Attachment(?:Type)?)Ops\(\)\s*\.\s*\w+\s*\(")


def check_dispatch(path, text):
    for i, line in enumerate(text.splitlines(), 1):
        if DIRECT_RE.search(line):
            report(path, i, "direct-dispatch",
                   "entry points must be dispatched through the registered "
                   "vector (registry->sm_ops/at_ops), not by calling a "
                   "sibling's accessor directly", line)


# -- mutex discipline ---------------------------------------------------------

RAW_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock)\b")
# Indented (= member) declaration of an annotated Mutex. File-scope
# mutexes guarding function-local statics can't carry GUARDED_BY.
MEMBER_MUTEX_RE = re.compile(r"^\s+(?:mutable\s+)?Mutex\s+(\w+)\s*[;{]")


def check_mutexes(path, text, exempt):
    lines = text.splitlines()
    for i, line in enumerate(lines, 1):
        if exempt:
            break
        m = RAW_RE.search(line)
        if m:
            report(path, i, "raw-mutex",
                   f"std::{m.group(1)} is invisible to thread-safety "
                   "analysis; use dmx::Mutex / MutexLock / CondVar from "
                   "src/util/thread_annotations.h", line)
    for i, line in enumerate(lines, 1):
        m = MEMBER_MUTEX_RE.match(line)
        if not m:
            continue
        name = m.group(1)
        guarded = re.search(
            r"\b(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|"
            r"EXCLUSIVE_LOCKS_REQUIRED|ACQUIRE|RELEASE)\(\s*(?:\w+(?:\.|->))?"
            + re.escape(name) + r"\s*\)", text)
        if not guarded:
            report(path, i, "unguarded-mutex",
                   f"member Mutex '{name}' guards nothing: annotate the "
                   "protected members with GUARDED_BY or the helper methods "
                   f"with REQUIRES({name})", line)


# -- I/O error discipline -----------------------------------------------------

IOERROR_RE = re.compile(r"\bStatus::(?:Retryable)?IOError\s*\(")
# Only the layers that sit on the OS / device boundary may decide what an
# I/O failure is (and whether it is retryable). Everyone else propagates.
IOERROR_EXEMPT = ("src/util/", "src/wal/")


def check_ioerror(path, text):
    posix = str(path).replace("\\", "/")
    if any(part in posix for part in IOERROR_EXEMPT):
        return
    for i, line in enumerate(text.splitlines(), 1):
        if IOERROR_RE.search(line):
            report(path, i, "raw-ioerror",
                   "IOError may only be constructed at the Env/WAL boundary "
                   "(src/util, src/wal); propagate the Status the "
                   "environment returned so fault classification survives",
                   line)


def lint_file(path):
    global _current_lines
    text = path.read_text(encoding="utf-8", errors="replace")
    _current_lines = text.splitlines()
    exempt = path.name == "thread_annotations.h"
    check_vectors(path, text)
    check_dispatch(path, text)
    check_mutexes(path, text, exempt)
    check_ioerror(path, text)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: src/, "
                         "tools/, bench/, examples/ under the repo root)")
    args = ap.parse_args()

    roots = [Path(p) for p in args.paths]
    if not roots:
        repo = Path(__file__).resolve().parent.parent
        roots = [repo / d for d in ("src", "tools", "bench", "examples")
                 if (repo / d).is_dir()]

    files = []
    for root in roots:
        if root.is_dir():
            files += sorted(root.rglob("*.h")) + sorted(root.rglob("*.cc"))
        else:
            files.append(root)

    if not files:
        print("dmx-lint: no input files", file=sys.stderr)
        return 2
    for f in files:
        lint_file(f)
    for finding in findings:
        print(finding)
    if findings:
        print(f"dmx-lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"dmx-lint: OK ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
